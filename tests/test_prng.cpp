// Tests for the SpookyHash-style hash and the Rng wrapper: determinism,
// avalanche behaviour, uniformity of derived streams.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "prng/rng.hpp"
#include "prng/spooky.hpp"
#include "testing.hpp"

namespace kagen {
namespace {

TEST(Spooky, DeterministicAcrossCalls) {
    const u64 words[] = {1, 2, 3};
    const auto a = spooky::hash128(words, sizeof(words), 42, 43);
    const auto b = spooky::hash128(words, sizeof(words), 42, 43);
    EXPECT_EQ(a.h1, b.h1);
    EXPECT_EQ(a.h2, b.h2);
}

TEST(Spooky, SeedChangesHash) {
    const u64 words[] = {1, 2, 3};
    EXPECT_NE(spooky::hash64(words, sizeof(words), 1),
              spooky::hash64(words, sizeof(words), 2));
}

TEST(Spooky, LengthIsSignificant) {
    // A prefix must not hash to the same value as the full message.
    const u64 words[] = {7, 7};
    EXPECT_NE(spooky::hash64(words, 8, 0), spooky::hash64(words, 16, 0));
}

TEST(Spooky, AllShortLengthsDistinct) {
    // Hash every prefix length 0..64 of a fixed buffer; all must differ.
    std::array<u8, 64> buf{};
    for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<u8>(i * 37 + 1);
    std::set<u64> seen;
    for (std::size_t len = 0; len <= buf.size(); ++len) {
        seen.insert(spooky::hash64(buf.data(), len, 9));
    }
    EXPECT_EQ(seen.size(), buf.size() + 1);
}

TEST(Spooky, AvalancheSingleBitFlip) {
    // Flipping any single input bit should flip ~32 of 64 output bits.
    u64 word        = 0x0123456789abcdefULL;
    const u64 base  = spooky::hash64(&word, sizeof(word), 0);
    double mean_pop = 0.0;
    for (int bit = 0; bit < 64; ++bit) {
        u64 flipped  = word ^ (u64{1} << bit);
        const u64 h  = spooky::hash64(&flipped, sizeof(flipped), 0);
        mean_pop += static_cast<double>(__builtin_popcountll(h ^ base));
    }
    mean_pop /= 64.0;
    EXPECT_GT(mean_pop, 26.0);
    EXPECT_LT(mean_pop, 38.0);
}

TEST(Spooky, HashWordsMatchesRawHash) {
    const u64 words[] = {11, 22};
    EXPECT_EQ(spooky::hash_words(5, {11, 22}),
              spooky::hash64(words, sizeof(words), 5));
}

TEST(Rng, ForIdsIsDeterministicAndIdSensitive) {
    Rng a = Rng::for_ids(1, {2, 3});
    Rng b = Rng::for_ids(1, {2, 3});
    Rng c = Rng::for_ids(1, {2, 4});
    EXPECT_EQ(a.bits(), b.bits());
    EXPECT_NE(a.bits(), c.bits()); // overwhelmingly likely for a real hash
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(123);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformPosNeverZero) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.uniform_pos(), 0.0);
}

TEST(Rng, RangeIsUnbiased) {
    // Chi-square over a bound that does not divide 2^64.
    Rng rng(99);
    constexpr u64 kBound   = 13;
    constexpr u64 kSamples = 130000;
    std::vector<double> observed(kBound, 0.0);
    for (u64 i = 0; i < kSamples; ++i) observed[rng.range(kBound)] += 1.0;
    const std::vector<double> expected(kBound, static_cast<double>(kSamples) / kBound);
    const double stat = testing::chi_square(observed, expected);
    EXPECT_LT(stat, testing::chi_square_critical(kBound - 1));
}

TEST(Rng, Range128HandlesLargeBounds) {
    Rng rng(5);
    const u128 bound = (static_cast<u128>(1) << 100) + 12345;
    for (int i = 0; i < 100; ++i) {
        EXPECT_LT(rng.range128(bound), bound);
    }
}

TEST(Rng, RangeBoundOneAlwaysZero) {
    Rng rng(5);
    EXPECT_EQ(rng.range(1), 0u);
}

} // namespace
} // namespace kagen
