// Morton codes and the deterministic PointGrid substrate: roundtrips,
// occupancy distribution (multinomial), prefix/id consistency, determinism.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "geometry/morton.hpp"
#include "geometry/point_grid.hpp"
#include "testing.hpp"

namespace kagen {
namespace {

TEST(Morton, RoundTrip2D) {
    for (u64 x = 0; x < 32; ++x) {
        for (u64 y = 0; y < 32; ++y) {
            const u64 code = Morton<2>::encode({x, y});
            const auto dec = Morton<2>::decode(code);
            EXPECT_EQ(dec[0], x);
            EXPECT_EQ(dec[1], y);
        }
    }
}

TEST(Morton, RoundTrip3D) {
    for (u64 x = 0; x < 16; ++x) {
        for (u64 y = 0; y < 16; ++y) {
            for (u64 z = 0; z < 16; ++z) {
                const u64 code = Morton<3>::encode({x, y, z});
                const auto dec = Morton<3>::decode(code);
                EXPECT_EQ(dec[0], x);
                EXPECT_EQ(dec[1], y);
                EXPECT_EQ(dec[2], z);
            }
        }
    }
}

TEST(Morton, CodesAreDenseAndUnique) {
    std::set<u64> codes;
    for (u64 x = 0; x < 8; ++x) {
        for (u64 y = 0; y < 8; ++y) codes.insert(Morton<2>::encode({x, y}));
    }
    EXPECT_EQ(codes.size(), 64u);
    EXPECT_EQ(*codes.rbegin(), 63u); // dense: exactly [0, 64)
}

TEST(Morton, LargeCoordinates) {
    const std::array<u64, 2> c2{(u64{1} << 28) - 3, (u64{1} << 28) - 7};
    EXPECT_EQ(Morton<2>::decode(Morton<2>::encode(c2)), c2);
    const std::array<u64, 3> c3{(u64{1} << 18) - 1, 12345, 54321};
    EXPECT_EQ(Morton<3>::decode(Morton<3>::encode(c3)), c3);
}

TEST(PointGrid, CountsSumToN) {
    for (u32 levels : {0u, 1u, 2u, 4u}) {
        PointGrid<2> grid(7, 1000, levels);
        u64 total = 0;
        for (u64 c = 0; c < grid.num_cells(); ++c) total += grid.count_in_cell(c);
        EXPECT_EQ(total, 1000u) << "levels=" << levels;
    }
}

TEST(PointGrid, PrefixMatchesCumulativeCounts) {
    PointGrid<3> grid(13, 5000, 2);
    u64 acc = 0;
    for (u64 c = 0; c < grid.num_cells(); ++c) {
        EXPECT_EQ(grid.first_id(c), acc);
        acc += grid.count_in_cell(c);
    }
    EXPECT_EQ(grid.first_id(grid.num_cells()), 5000u);
}

TEST(PointGrid, GlobalIdsAreContiguousPermutation) {
    PointGrid<2> grid(99, 2048, 3);
    const auto pts = grid.all_points();
    ASSERT_EQ(pts.size(), 2048u);
    std::set<VertexId> ids;
    for (const auto& p : pts) ids.insert(p.id);
    EXPECT_EQ(ids.size(), 2048u);
    EXPECT_EQ(*ids.begin(), 0u);
    EXPECT_EQ(*ids.rbegin(), 2047u);
}

TEST(PointGrid, PointsLieInTheirCellBox) {
    PointGrid<2> grid(5, 4000, 4);
    const double side = grid.cell_side();
    for (u64 c = 0; c < grid.num_cells(); ++c) {
        const auto coords = Morton<2>::decode(c);
        for (const auto& p : grid.cell_points(c)) {
            for (int d = 0; d < 2; ++d) {
                EXPECT_GE(p.pos[d], static_cast<double>(coords[d]) * side);
                EXPECT_LT(p.pos[d], static_cast<double>(coords[d] + 1) * side);
            }
        }
    }
}

TEST(PointGrid, DeterministicAcrossInstances) {
    PointGrid<3> a(21, 3000, 2), b(21, 3000, 2);
    for (u64 c = 0; c < a.num_cells(); ++c) {
        const auto pa = a.cell_points(c);
        const auto pb = b.cell_points(c);
        ASSERT_EQ(pa.size(), pb.size());
        for (std::size_t i = 0; i < pa.size(); ++i) {
            EXPECT_EQ(pa[i].id, pb[i].id);
            EXPECT_EQ(pa[i].pos, pb[i].pos);
        }
    }
}

TEST(PointGrid, OccupancyIsUniformMultinomial) {
    // Aggregate occupancy over many seeds; each of the 16 cells must hold
    // n/16 of the mass.
    constexpr u64 kN = 256, kRuns = 2000;
    std::vector<double> mass(16, 0.0);
    for (u64 seed = 0; seed < kRuns; ++seed) {
        PointGrid<2> grid(seed, kN, 2);
        for (u64 c = 0; c < 16; ++c) {
            mass[c] += static_cast<double>(grid.count_in_cell(c));
        }
    }
    const std::vector<double> expected(16, static_cast<double>(kN * kRuns) / 16.0);
    EXPECT_LT(testing::chi_square(mass, expected), testing::chi_square_critical(15));
}

TEST(PointGrid, CoordinatesAreUniformGlobally) {
    // Histogram x-coordinates across the whole unit interval.
    PointGrid<2> grid(3, 200000, 3);
    std::vector<double> bins(20, 0.0);
    for (const auto& p : grid.all_points()) {
        bins[std::min<std::size_t>(static_cast<std::size_t>(p.pos[0] * 20), 19)] += 1.0;
    }
    const std::vector<double> expected(20, 200000.0 / 20);
    EXPECT_LT(testing::chi_square(bins, expected), testing::chi_square_critical(19));
}

TEST(PointGrid, SingleCellGrid) {
    PointGrid<2> grid(1, 100, 0);
    EXPECT_EQ(grid.num_cells(), 1u);
    EXPECT_EQ(grid.count_in_cell(0), 100u);
    EXPECT_EQ(grid.cell_points(0).size(), 100u);
}

TEST(PointGrid, EmptyGrid) {
    PointGrid<3> grid(1, 0, 2);
    for (u64 c = 0; c < grid.num_cells(); ++c) EXPECT_EQ(grid.count_in_cell(c), 0u);
}

} // namespace
} // namespace kagen
