// Hot-path I/O (DESIGN.md §9): bulk-batched BinaryFileSink writes,
// fileio::copy_bytes (copy_file_range + userspace fallback), and the
// byte-identity acceptance sweep — the recycled-buffer + bulk-write +
// copy_file_range pipeline must produce files identical to the per-chunk
// reference stream across all models x P x K x ranks x edge semantics.
// ctest label: io (re-run under ASan in CI).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/fileio.hpp"
#include "graph/io.hpp"
#include "kagen.hpp"
#include "pe/pe.hpp"
#include "sink/sinks.hpp"

namespace kagen {
namespace {

std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

EdgeList some_edges(u64 count, u64 salt = 0) {
    EdgeList edges;
    edges.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        edges.emplace_back(i * 7 + salt, (i * 31 + salt * 13 + 5) % 1000);
    }
    return edges;
}

class BulkIoTest : public ::testing::Test {
protected:
    std::string path(const std::string& name) {
        return ::testing::TempDir() + "kagen_bulk_io_" + name;
    }
    void TearDown() override {
        for (const auto& p : created_) std::remove(p.c_str());
    }
    std::string track(std::string p) {
        created_.push_back(p);
        return p;
    }

private:
    std::vector<std::string> created_;
};

// ---------------------------------------------------------------------------
// BinaryFileSink: bulk writes, tunable emit buffer, bytes_written
// ---------------------------------------------------------------------------

TEST_F(BulkIoTest, BulkWritesMatchReferenceWriterForAnyBufferCapacity) {
    const EdgeList edges = some_edges(10000, 3);
    const auto ref_path  = track(path("sink_ref.bin"));
    io::write_edge_list_binary(ref_path, edges);
    const std::string reference = slurp(ref_path);

    // Capacities straddling every interesting boundary: single-edge
    // batches, non-power-of-two, default, larger than the stream.
    for (const std::size_t capacity : {std::size_t{1}, std::size_t{3},
                                       std::size_t{0} /* default */,
                                       std::size_t{100000}}) {
        const auto p = track(path("sink_" + std::to_string(capacity) + ".bin"));
        BinaryFileSink sink(p, capacity);
        for (const auto& e : edges) sink.emit(e);
        sink.finish();
        EXPECT_EQ(sink.num_edges(), edges.size());
        EXPECT_EQ(slurp(p), reference) << "capacity=" << capacity;
    }
}

TEST_F(BulkIoTest, DeliverWritesWholeChunksInOneBatch) {
    // deliver() hands a whole chunk to one consume -> one bulk fwrite; the
    // result must still equal the per-edge emit stream byte for byte.
    const EdgeList edges = some_edges(5000, 9);
    const auto a = track(path("deliver_bulk.bin"));
    const auto b = track(path("deliver_emit.bin"));
    {
        BinaryFileSink sink(a);
        sink.deliver(edges.data(), edges.size());
        sink.finish();
    }
    {
        BinaryFileSink sink(b);
        for (const auto& e : edges) sink.emit(e);
        sink.finish();
    }
    EXPECT_EQ(slurp(a), slurp(b));
}

TEST_F(BulkIoTest, BytesWrittenAccountsHeaderPayloadAndBackpatch) {
    const EdgeList edges = some_edges(123);
    const auto p = track(path("bytes_written.bin"));
    BinaryFileSink sink(p);
    EXPECT_EQ(sink.bytes_written(), 8u) << "header placeholder";
    sink.deliver(edges.data(), edges.size());
    sink.flush();
    EXPECT_EQ(sink.bytes_written(), 8u + 16u * edges.size());
    sink.finish();
    EXPECT_EQ(sink.bytes_written(), 16u + 16u * edges.size())
        << "finish() back-patches the header";
    EXPECT_EQ(sink.buffer_capacity(), EdgeSink::kDefaultBufferEdges);
}

// ---------------------------------------------------------------------------
// fileio::copy_bytes — kernel path and forced fallback
// ---------------------------------------------------------------------------

class CopyBytesTest : public BulkIoTest,
                      public ::testing::WithParamInterface<bool> {};

TEST_P(CopyBytesTest, CopiesExactRangeFromCurrentOffsets) {
    const bool allow_cfr = GetParam();
    const std::string payload(3 << 20, 'x'); // > the fallback's 1 MiB buffer
    const auto in_path  = track(path("copy_in.bin"));
    const auto out_path = track(path("copy_out.bin"));
    {
        std::ofstream out(in_path, std::ios::binary);
        out << "HDR!" << payload;
    }
    const int in_fd = ::open(in_path.c_str(), O_RDONLY | O_CLOEXEC);
    ASSERT_GE(in_fd, 0);
    const int out_fd =
        ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    ASSERT_GE(out_fd, 0);

    // Skip the 4-byte header on the input; pre-write a prefix on the
    // output: copy_bytes must append at both current offsets.
    ASSERT_EQ(::lseek(in_fd, 4, SEEK_SET), 4);
    fileio::write_all(out_fd, "PRE", 3);

    const fileio::CopyStats stats =
        fileio::copy_bytes(in_fd, out_fd, payload.size(), allow_cfr);
    EXPECT_EQ(stats.bytes_copied, payload.size());
    if (!allow_cfr) {
        EXPECT_EQ(stats.cfr_bytes, 0u) << "fallback must not touch the kernel path";
    }
    ::close(in_fd);
    ASSERT_EQ(::close(out_fd), 0);
    EXPECT_EQ(slurp(out_path), "PRE" + payload);
}

TEST_P(CopyBytesTest, ThrowsOnPrematureSourceEof) {
    const bool allow_cfr = GetParam();
    const auto in_path   = track(path("eof_in.bin"));
    const auto out_path  = track(path("eof_out.bin"));
    {
        std::ofstream out(in_path, std::ios::binary);
        out << "short";
    }
    const int in_fd = ::open(in_path.c_str(), O_RDONLY | O_CLOEXEC);
    const int out_fd =
        ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    ASSERT_GE(in_fd, 0);
    ASSERT_GE(out_fd, 0);
    EXPECT_THROW(fileio::copy_bytes(in_fd, out_fd, 1000, allow_cfr),
                 std::runtime_error);
    ::close(in_fd);
    ::close(out_fd);
}

TEST_F(CopyBytesTest, ZeroLengthIsANoOp) {
    const fileio::CopyStats stats = fileio::copy_bytes(-1, -1, 0);
    EXPECT_EQ(stats.bytes_copied, 0u);
    EXPECT_EQ(stats.cfr_bytes, 0u);
}

TEST_F(CopyBytesTest, UnsupportedDescriptorPairFallsBackTransparently) {
    // A pipe as destination: copy_file_range refuses (EINVAL on most
    // kernels) and the userspace fallback must take over silently.
    const auto in_path = track(path("pipe_in.bin"));
    const std::string payload = "fallback-payload-0123456789";
    {
        std::ofstream out(in_path, std::ios::binary);
        out << payload;
    }
    const int in_fd = ::open(in_path.c_str(), O_RDONLY | O_CLOEXEC);
    ASSERT_GE(in_fd, 0);
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const fileio::CopyStats stats =
        fileio::copy_bytes(in_fd, fds[1], payload.size());
    EXPECT_EQ(stats.bytes_copied, payload.size());
    std::string read_back(payload.size(), '\0');
    ASSERT_EQ(::read(fds[0], read_back.data(), read_back.size()),
              static_cast<ssize_t>(read_back.size()));
    EXPECT_EQ(read_back, payload);
    ::close(in_fd);
    ::close(fds[0]);
    ::close(fds[1]);
}

INSTANTIATE_TEST_SUITE_P(KernelAndFallback, CopyBytesTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                             return info.param ? "copy_file_range" : "fallback";
                         });

// ---------------------------------------------------------------------------
// Byte-identity acceptance sweep: all models x P x K x semantics, in-process
// ---------------------------------------------------------------------------

Config matrix_config(Model model, u64 n = 400) {
    Config cfg;
    cfg.model     = model;
    cfg.n         = n;
    cfg.m         = 5 * n;
    cfg.p         = 0.01;
    cfg.r         = 0.08;
    cfg.avg_deg   = 8;
    cfg.gamma     = 2.8;
    cfg.ba_degree = 3;
    cfg.seed      = 99;
    return cfg;
}

constexpr Model kAllModels[] = {
    Model::GnmDirected,   Model::GnmUndirected, Model::GnpDirected,
    Model::GnpUndirected, Model::Rgg2D,         Model::Rgg3D,
    Model::Rdg2D,         Model::Rdg3D,         Model::Rhg,
    Model::RhgStreaming,  Model::Ba,            Model::Rmat};

class HotPathIdentity : public ::testing::TestWithParam<Model> {
protected:
    std::string path(const std::string& name) {
        return ::testing::TempDir() + "kagen_hot_path_" +
               model_name(GetParam()) + "_" + name;
    }
};

TEST_P(HotPathIdentity, FileSinkMatchesPerChunkReferenceAcrossPesChunksThreads) {
    // Oracle: the canonical chunk stream materialized chunk by chunk
    // through the unchanged per-PE API, written by the reference writer.
    // The chunked engine — direct streaming (threads=1) and recycled
    // pool delivery (threads=3) alike — must reproduce it byte for byte
    // under both edge semantics for every (P, K).
    pe::ThreadPool pool(2);
    for (const EdgeSemantics semantics :
         {EdgeSemantics::as_generated, EdgeSemantics::exact_once}) {
        Config base          = matrix_config(GetParam());
        base.edge_semantics  = semantics;
        for (const u64 P : {u64{1}, u64{2}, u64{5}}) {
            for (const u64 K : {u64{1}, u64{3}}) {
                Config cfg        = base;
                cfg.chunks_per_pe = K;
                const u64 C       = P * K;

                EdgeList all;
                for (u64 c = 0; c < C; ++c) {
                    append(all, generate(cfg, c, C).edges);
                }
                const std::string ref_path = path("ref.bin");
                io::write_edge_list_binary(ref_path, all);
                const std::string reference = slurp(ref_path);
                std::remove(ref_path.c_str());

                for (const u64 threads : {u64{1}, u64{3}}) {
                    const std::string p = path("run.bin");
                    BinaryFileSink sink(p);
                    generate_chunked(cfg, P, sink, threads, &pool);
                    sink.finish();
                    const std::string got = slurp(p);
                    std::remove(p.c_str());
                    ASSERT_EQ(got, reference)
                        << "P=" << P << " K=" << K << " threads=" << threads
                        << " semantics=" << semantics_name(semantics);
                }
            }
        }
    }
}

TEST_P(HotPathIdentity, DistributedMergeMatchesInProcessAcrossRanks) {
    // ranks in {1, 4} over the merged copy_file_range path: output must
    // equal the in-process chunked file byte for byte, under both
    // semantics. (The forced-fallback merge is pinned separately below;
    // the kernel path runs here.)
    for (const EdgeSemantics semantics :
         {EdgeSemantics::as_generated, EdgeSemantics::exact_once}) {
        Config cfg          = matrix_config(GetParam(), 300);
        cfg.edge_semantics  = semantics;
        cfg.chunks_per_pe   = 3;
        const u64 P         = 2;

        const std::string inproc = path("inproc.bin");
        {
            BinaryFileSink sink(inproc);
            generate_chunked(cfg, P, sink);
            sink.finish();
        }
        const std::string reference = slurp(inproc);
        std::remove(inproc.c_str());

        for (const u64 ranks : {u64{1}, u64{4}}) {
            dist::DistOptions opts;
            opts.num_ranks   = ranks;
            opts.num_pes     = P;
            opts.output_path = path("ranks.bin");
            const dist::DistResult res = generate_distributed(cfg, opts);
            const std::string got      = slurp(opts.output_path);
            std::remove(opts.output_path.c_str());
            ASSERT_EQ(got, reference)
                << "ranks=" << ranks
                << " semantics=" << semantics_name(semantics);
            EXPECT_EQ(res.merged_bytes, reference.size() - 8)
                << "merge accounting must cover every payload byte";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, HotPathIdentity,
                         ::testing::ValuesIn(kAllModels),
                         [](const ::testing::TestParamInfo<Model>& info) {
                             return model_name(info.param);
                         });

TEST_F(BulkIoTest, DistributedMergeFallbackPathIsByteIdentical) {
    // KAGEN_DISABLE_COPY_FILE_RANGE forces the coordinator onto the
    // read/write fallback; the merged file must not change by a byte and
    // the cfr counter must stay zero.
    Config cfg        = matrix_config(Model::GnmUndirected, 500);
    cfg.chunks_per_pe = 4;

    dist::DistOptions opts;
    opts.num_ranks   = 3;
    opts.num_pes     = 2;
    opts.output_path = track(path("merge_cfr.bin"));
    const dist::DistResult with_cfr = generate_distributed(cfg, opts);
    const std::string reference     = slurp(opts.output_path);

    ASSERT_EQ(::setenv("KAGEN_DISABLE_COPY_FILE_RANGE", "1", 1), 0);
    opts.output_path = track(path("merge_fallback.bin"));
    const dist::DistResult fallback = generate_distributed(cfg, opts);
    ASSERT_EQ(::unsetenv("KAGEN_DISABLE_COPY_FILE_RANGE"), 0);

    EXPECT_EQ(slurp(opts.output_path), reference);
    EXPECT_EQ(fallback.copy_file_range_bytes, 0u);
    EXPECT_FALSE(fallback.copy_file_range_used());
    EXPECT_EQ(fallback.merged_bytes, with_cfr.merged_bytes);
#ifdef __linux__
    EXPECT_EQ(with_cfr.copy_file_range_bytes, with_cfr.merged_bytes)
        << "kernel path should have carried the whole merge on Linux";
    EXPECT_TRUE(with_cfr.copy_file_range_used());
#endif
}

} // namespace
} // namespace kagen
