// Statistical correctness of the non-uniform variate samplers: exact
// chi-square tests against the true pmfs for both the inversion and the
// rejection code paths, plus edge cases and determinism. The FastMath /
// ExpFill / BatchedVariates suites pin the sampler-v2 kernel accuracy
// contract (fast_math.hpp: every kernel within ~1e-9 of libm over its
// stated domain) and the buffer/stream bookkeeping of the batched engine.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>

#include "common/math.hpp"
#include "testing.hpp"
#include "variates/batch.hpp"
#include "variates/exp_fill.hpp"
#include "variates/fast_math.hpp"
#include "variates/variates.hpp"

namespace kagen {
namespace {

std::vector<double> binomial_pmf(u64 n, double p) {
    // Exact pmf over the full support via log-space recurrence.
    std::vector<double> pmf(n + 1);
    const double logp = std::log(p), logq = std::log1p(-p);
    double logf       = static_cast<double>(n) * logq; // log P(X=0)
    for (u64 k = 0; k <= n; ++k) {
        pmf[k] = std::exp(logf);
        if (k < n) {
            logf += std::log(static_cast<double>(n - k) / static_cast<double>(k + 1)) +
                    logp - logq;
        }
    }
    return pmf;
}

std::vector<double> hypergeometric_pmf(u64 total, u64 success, u64 n, u64& kmin_out) {
    const u64 fail = total - success;
    const u64 kmin = n > fail ? n - fail : 0;
    const u64 kmax = std::min(n, success);
    kmin_out       = kmin;
    auto lc        = [](double a, double b) { // log C(a, b)
        return std::lgamma(a + 1) - std::lgamma(b + 1) - std::lgamma(a - b + 1);
    };
    std::vector<double> pmf;
    for (u64 k = kmin; k <= kmax; ++k) {
        const double lp = lc(success, k) + lc(fail, n - k) - lc(total, n);
        pmf.push_back(std::exp(lp));
    }
    return pmf;
}

struct BinomialCase {
    u64 n;
    double p;
};

class BinomialChiSquare : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialChiSquare, MatchesExactPmf) {
    const auto [n, p]      = GetParam();
    constexpr u64 kSamples = 40000;
    Rng rng(4242);
    std::map<u64, u64> hist;
    for (u64 i = 0; i < kSamples; ++i) ++hist[binomial(rng, n, p)];
    const auto pmf = binomial_pmf(n, p);
    const auto r   = testing::binned_chi_square(hist, pmf, 0, kSamples);
    ASSERT_GT(r.df, 1.0);
    EXPECT_LT(r.statistic, testing::chi_square_critical(r.df))
        << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    SmallAndLarge, BinomialChiSquare,
    ::testing::Values(BinomialCase{20, 0.5},    // inversion
                      BinomialCase{100, 0.07},  // inversion, small mean
                      BinomialCase{50, 0.9},    // symmetry + inversion
                      BinomialCase{400, 0.25},  // BTRS
                      BinomialCase{1000, 0.5},  // BTRS, symmetric
                      BinomialCase{2000, 0.85}, // symmetry + BTRS
                      BinomialCase{64, 0.5},    // the RGG splitter's case
                      BinomialCase{5000, 0.02}  // BTRS, skewed
                      ));

TEST(Binomial, EdgeCases) {
    Rng rng(1);
    EXPECT_EQ(binomial(rng, 0, 0.5), 0u);
    EXPECT_EQ(binomial(rng, 100, 0.0), 0u);
    EXPECT_EQ(binomial(rng, 100, 1.0), 100u);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LE(binomial(rng, 17, 0.3), 17u);
    }
}

TEST(Binomial, LargeNMeanAndVariance) {
    // n too large for exact pmf enumeration: check the first two moments.
    constexpr u64 n        = u64{1} << 40;
    constexpr double p     = 0.3;
    constexpr u64 kSamples = 3000;
    Rng rng(7);
    double sum = 0.0, sum_sq = 0.0;
    for (u64 i = 0; i < kSamples; ++i) {
        const double x = static_cast<double>(binomial(rng, n, p));
        sum += x;
        sum_sq += x * x;
    }
    const double mean     = sum / kSamples;
    const double var      = sum_sq / kSamples - mean * mean;
    const double exp_mean = static_cast<double>(n) * p;
    const double exp_var  = exp_mean * (1 - p);
    const double mean_tol = 6 * std::sqrt(exp_var / kSamples);
    EXPECT_NEAR(mean, exp_mean, mean_tol);
    EXPECT_NEAR(var, exp_var, 0.15 * exp_var);
}

TEST(Binomial, DeterministicGivenRngState) {
    Rng a(99), b(99);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(binomial(a, 1000, 0.37), binomial(b, 1000, 0.37));
    }
}

struct HyperCase {
    u64 total;
    u64 success;
    u64 n;
};

class HypergeometricChiSquare : public ::testing::TestWithParam<HyperCase> {};

TEST_P(HypergeometricChiSquare, MatchesExactPmf) {
    const auto [total, success, n] = GetParam();
    constexpr u64 kSamples         = 40000;
    Rng rng(31337);
    std::map<u64, u64> hist;
    for (u64 i = 0; i < kSamples; ++i) ++hist[hypergeometric(rng, total, success, n)];
    u64 kmin       = 0;
    const auto pmf = hypergeometric_pmf(total, success, n, kmin);
    const auto r   = testing::binned_chi_square(hist, pmf, kmin, kSamples);
    ASSERT_GT(r.df, 1.0);
    EXPECT_LT(r.statistic, testing::chi_square_critical(r.df))
        << "N=" << total << " K=" << success << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    SmallAndLarge, HypergeometricChiSquare,
    ::testing::Values(HyperCase{100, 30, 20},        // inversion, tiny
                      HyperCase{1000, 500, 100},     // inversion (span small)
                      HyperCase{500, 480, 150},      // tight support (kmin > 0)
                      HyperCase{20000, 8000, 4000},  // HRUA
                      HyperCase{100000, 50000, 2000},// HRUA, symmetric p
                      HyperCase{50000, 45000, 30000},// HRUA after reductions
                      HyperCase{30000, 1000, 15000}  // success small, n huge
                      ));

TEST(Hypergeometric, EdgeCases) {
    Rng rng(1);
    EXPECT_EQ(hypergeometric(rng, 100, 0, 50), 0u);
    EXPECT_EQ(hypergeometric(rng, 100, 100, 50), 50u);
    EXPECT_EQ(hypergeometric(rng, 100, 30, 0), 0u);
    EXPECT_EQ(hypergeometric(rng, 100, 30, 100), 30u); // drawing everything
    for (int i = 0; i < 1000; ++i) {
        const u64 k = hypergeometric(rng, 50, 20, 25);
        EXPECT_LE(k, 20u);
        EXPECT_GE(k + 30, 25u); // k >= n - fail
    }
}

TEST(Hypergeometric, HugePopulationMoments) {
    // 128-bit population (the undirected adjacency-matrix regime).
    const u128 total   = static_cast<u128>(1) << 80;
    const u128 success = total / 3;
    constexpr u64 n    = 1u << 20;
    Rng rng(5);
    double sum = 0.0;
    constexpr int kSamples = 400;
    for (int i = 0; i < kSamples; ++i) {
        sum += static_cast<double>(hypergeometric(rng, total, success, n));
    }
    const double mean     = sum / kSamples;
    const double exp_mean = static_cast<double>(n) / 3.0;
    // sd of the sample mean ~ sqrt(n*p*q / kSamples)
    const double tol = 6 * std::sqrt(exp_mean * (2.0 / 3.0) / kSamples);
    EXPECT_NEAR(mean, exp_mean, tol);
}

TEST(Multinomial, CountsSumToN) {
    Rng rng(3);
    const std::vector<double> probs{0.1, 0.2, 0.3, 0.4};
    for (int i = 0; i < 200; ++i) {
        const auto counts = multinomial(rng, 1000, probs);
        EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), u64{0}), 1000u);
    }
}

TEST(Multinomial, MarginalsMatch) {
    Rng rng(17);
    const std::vector<double> probs{0.15, 0.35, 0.5};
    constexpr u64 kTrials = 5000;
    constexpr u64 kN      = 200;
    std::vector<double> sums(probs.size(), 0.0);
    for (u64 t = 0; t < kTrials; ++t) {
        const auto counts = multinomial(rng, kN, probs);
        for (std::size_t i = 0; i < counts.size(); ++i) {
            sums[i] += static_cast<double>(counts[i]);
        }
    }
    for (std::size_t i = 0; i < probs.size(); ++i) {
        const double mean = sums[i] / kTrials;
        const double exp  = kN * probs[i];
        const double tol  = 6 * std::sqrt(exp * (1 - probs[i]) / kTrials);
        EXPECT_NEAR(mean, exp, tol) << "bucket " << i;
    }
}

TEST(Multinomial, EmptyAndSingleBucket) {
    Rng rng(1);
    EXPECT_TRUE(multinomial(rng, 10, {}).empty());
    const std::vector<double> one{1.0};
    const auto counts = multinomial(rng, 10, one);
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts[0], 10u);
}

TEST(FastMath, LogMatchesLibmOverWideRange) {
    // fast_log domain: finite normal positive; the sampler feeds it
    // uniforms in [2^-53, 1], but the contract covers the wide range.
    Rng rng(12);
    double worst = 0.0;
    for (int e = -1000; e <= 1000; e += 7) {
        for (int i = 0; i < 64; ++i) {
            const double x = std::ldexp(1.0 + rng.uniform(), e);
            const double err = std::abs(fast_log(x) - std::log(x));
            // Absolute error dominates near log(x) ~ 0; relative elsewhere.
            const double scale = std::max(1.0, std::abs(std::log(x)));
            worst = std::max(worst, err / scale);
        }
    }
    EXPECT_LT(worst, 1e-10);
}

TEST(FastMath, ExpTiersMatchLibm) {
    Rng rng(13);
    double worst_full = 0.0, worst_small = 0.0, worst_tiny = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double xf = rng.uniform(-700.0, 700.0);
        worst_full = std::max(worst_full,
                              std::abs(fast_exp(xf) - std::exp(xf)) / std::exp(xf));
        const double xs = rng.uniform(-kSmallExpRadius, kSmallExpRadius);
        worst_small = std::max(
            worst_small, std::abs(fast_exp_small(xs) - std::exp(xs)) / std::exp(xs));
        const double xt = rng.uniform(-kTinyExpRadius, kTinyExpRadius);
        worst_tiny = std::max(
            worst_tiny, std::abs(fast_exp_tiny(xt) - std::exp(xt)) / std::exp(xt));
        // The dispatcher must agree with whichever tier covers the input.
        EXPECT_DOUBLE_EQ(fast_exp_auto(xt), fast_exp_tiny(xt));
    }
    EXPECT_LT(worst_full, 1e-9);  // degree-8 tail at |r| = ln2/2
    EXPECT_LT(worst_small, 1e-11);
    EXPECT_LT(worst_tiny, 1e-9); // quartic tail at the 0.01 radius
}

TEST(FastMath, NegLog1pMatchesLibm) {
    Rng rng(14);
    double worst = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double t = rng.uniform() * kNegLog1pMax;
        const double exact = -std::log1p(-t);
        const double err   = std::abs(neg_log1p(t) - exact);
        worst = std::max(worst, err / std::max(exact, 1e-300));
    }
    EXPECT_LT(worst, 1e-10); // t^9 series tail at the 0.08 domain edge
}

TEST(ExpFill, MatchesNegLogOfSameDraws) {
    // fill_exponential must consume exactly n draws and produce -log of the
    // same uniforms a scalar replay would see — whichever ISA clone ran.
    constexpr std::size_t kN = 509; // deliberately not a multiple of 8
    Rng a(777), b(777);
    std::vector<double> exps(kN), unis(kN);
    fill_exponential(a, exps.data(), kN);
    b.fill_uniform_pos(unis.data(), kN);
    double worst = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
        const double exact = -std::log(unis[i]);
        worst = std::max(worst, std::abs(exps[i] - exact) /
                                    std::max(std::abs(exact), 1e-12));
    }
    EXPECT_LT(worst, 1e-10);
    // State bookkeeping: both Rngs advanced by exactly kN draws.
    EXPECT_EQ(a.bits(), b.bits());
}

TEST(ExpFill, VariatesAreExponential) {
    // Moment + KS check on a large fill: Exp(1) has mean 1, var 1.
    constexpr std::size_t kN = 1u << 16;
    Rng rng(31);
    std::vector<double> buf(kN);
    fill_exponential(rng, buf.data(), kN);
    double sum = 0.0;
    for (double x : buf) {
        ASSERT_GT(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / kN, 1.0, 6.0 / std::sqrt(static_cast<double>(kN)));
    EXPECT_LT(testing::ks_statistic(buf, [](double x) { return -std::expm1(-x); }),
              testing::ks_critical(kN));
}

TEST(BatchedVariates, UniformStreamMatchesScalarDraws) {
    // The uniform buffer refills via fill_uniform_pos, which is
    // sequence-identical to scalar uniform_pos calls.
    Rng a(55), b(55);
    BatchedVariates var(a);
    for (int i = 0; i < 700; ++i) {
        EXPECT_EQ(var.uniform_pos(), b.uniform_pos()) << "draw " << i;
    }
}

TEST(BatchedVariates, ExponentialStreamIsDeterministic) {
    Rng a(56), b(56);
    BatchedVariates va(a), vb(b);
    for (int i = 0; i < 700; ++i) {
        EXPECT_EQ(va.exponential(), vb.exponential()) << "draw " << i;
    }
}

// Regression for the signgam data race (DESIGN.md §12): the hypergeometric
// samplers switched from std::lgamma/std::lgammal — which write the shared
// libm `signgam` global on every call, a TSan-reported race across worker
// threads — to lgamma_threadsafe (glibc lgamma_r family). The swap is only
// sound for the frozen golden fixtures if the return values are
// bit-identical over the samplers' argument domain (positive reals), which
// this sweep pins for both precisions.
TEST(LgammaThreadsafe, BitIdenticalToLibmOnPositiveDomain) {
    for (double x : {0.5, 1.0, 1.5, 2.0, 9.0, 10.0, 256.75, 1e4, 1e8,
                     1.125e15, 9.0071992547409925e15}) {
        const double ours  = lgamma_threadsafe(x);
        const double libms = std::lgamma(x);
        EXPECT_EQ(ours, libms) << "double x=" << x;

        const auto xl     = static_cast<long double>(x);
        const auto oursl  = lgamma_threadsafe(xl);
        const auto libmsl = std::lgamma(xl);
        EXPECT_EQ(oursl, libmsl) << "long double x=" << x;
    }
    // Dense sweep across the small-argument region the inversion sampler
    // hits hardest (lgamma(k + 1) for support walks).
    for (int i = 1; i <= 4096; ++i) {
        const auto x = static_cast<long double>(i) * 0.25L;
        EXPECT_EQ(lgamma_threadsafe(x), std::lgamma(x)) << "x=" << x;
    }
}

} // namespace
} // namespace kagen
