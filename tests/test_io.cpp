// Graph I/O: text/binary round trips, METIS format structure, error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "er/er.hpp"
#include "graph/io.hpp"

namespace kagen {
namespace {

class IoTest : public ::testing::Test {
protected:
    std::string path(const char* name) {
        return ::testing::TempDir() + "kagen_io_" + name;
    }

    void TearDown() override {
        for (const auto& p : created_) std::remove(p.c_str());
    }

    std::string track(std::string p) {
        created_.push_back(p);
        return p;
    }

    std::vector<std::string> created_;
};

TEST_F(IoTest, TextRoundTrip) {
    const EdgeList edges = er::gnm_directed(100, 500, 1, 0, 1);
    const auto p         = track(path("text.el"));
    io::write_edge_list(p, edges, "test graph");
    EXPECT_EQ(io::read_edge_list(p), edges);
}

TEST_F(IoTest, TextSkipsCommentsAndBlankLines) {
    const auto p = track(path("comments.el"));
    {
        std::ofstream out(p);
        out << "% header\n\n1 2\n% mid comment\n3 4\n";
    }
    const EdgeList expected{{1, 2}, {3, 4}};
    EXPECT_EQ(io::read_edge_list(p), expected);
}

TEST_F(IoTest, BinaryRoundTrip) {
    const EdgeList edges = er::gnm_undirected(200, 1500, 2, 0, 1);
    const auto p         = track(path("bin.el"));
    io::write_edge_list_binary(p, edges);
    EXPECT_EQ(io::read_edge_list_binary(p), edges);
}

TEST_F(IoTest, BinaryEmptyList) {
    const auto p = track(path("empty.bin"));
    io::write_edge_list_binary(p, {});
    EXPECT_TRUE(io::read_edge_list_binary(p).empty());
}

TEST_F(IoTest, MetisFormatStructure) {
    // Triangle 0-1-2 plus pendant 3 attached to 0.
    const EdgeList edges{{0, 1}, {1, 2}, {0, 2}, {0, 3}};
    const auto p = track(path("graph.metis"));
    io::write_metis(p, edges, 4);
    std::ifstream in(p);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "4 4"); // n=4, m=4
    std::getline(in, line);
    EXPECT_EQ(line, "2 3 4"); // vertex 1's neighbours (1-indexed): 2,3,4
    std::getline(in, line);
    EXPECT_EQ(line, "1 3");
    std::getline(in, line);
    EXPECT_EQ(line, "1 2");
    std::getline(in, line);
    EXPECT_EQ(line, "1");
}

TEST_F(IoTest, MissingFileThrows) {
    EXPECT_THROW(io::read_edge_list("/nonexistent/definitely/missing"),
                 std::runtime_error);
    EXPECT_THROW(io::read_edge_list_binary("/nonexistent/definitely/missing"),
                 std::runtime_error);
}

TEST_F(IoTest, TruncatedBinaryThrows) {
    const auto p = track(path("trunc.bin"));
    {
        std::ofstream out(p, std::ios::binary);
        const u64 claimed = 100; // claims 100 edges, provides none
        out.write(reinterpret_cast<const char*>(&claimed), sizeof(claimed));
    }
    EXPECT_THROW(io::read_edge_list_binary(p), std::runtime_error);
}

namespace {

/// Collects nothing; used to drive stream_edge_list_binary's error paths.
class NullSink final : public EdgeSink {
protected:
    void consume(const Edge*, std::size_t) override {}
};

} // namespace

TEST_F(IoTest, TruncatedBinaryHeaderThrows) {
    // Fewer than 8 header bytes: both readers must fail cleanly.
    const auto p = track(path("short_header.bin"));
    {
        std::ofstream out(p, std::ios::binary);
        out.write("\x03\x00\x00", 3);
    }
    EXPECT_THROW(io::read_edge_list_binary(p), std::runtime_error);
    NullSink sink;
    EXPECT_THROW(io::stream_edge_list_binary(p, sink), std::runtime_error);
}

TEST_F(IoTest, OversizedHeaderCountThrowsInsteadOfReserving) {
    // Regression: a corrupt header (0xFFFF...) used to drive a
    // multi-exabyte reserve / a ~2^64-iteration read loop. The count must
    // be validated against the file size (8 + 16*count) up front.
    const auto p = track(path("oversized.bin"));
    {
        std::ofstream out(p, std::ios::binary);
        const u64 claimed = ~u64{0};
        out.write(reinterpret_cast<const char*>(&claimed), sizeof(claimed));
        const u64 pair[2] = {1, 2}; // one real edge behind the lying header
        out.write(reinterpret_cast<const char*>(pair), sizeof(pair));
    }
    EXPECT_THROW(io::read_edge_list_binary(p), std::runtime_error);
    NullSink sink;
    EXPECT_THROW(io::stream_edge_list_binary(p, sink), std::runtime_error);

    // One edge short of the claim is just as corrupt as 2^64 short.
    const auto q = track(path("off_by_one.bin"));
    {
        std::ofstream out(q, std::ios::binary);
        const u64 claimed = 2;
        out.write(reinterpret_cast<const char*>(&claimed), sizeof(claimed));
        const u64 pair[2] = {1, 2};
        out.write(reinterpret_cast<const char*>(pair), sizeof(pair));
    }
    EXPECT_THROW(io::read_edge_list_binary(q), std::runtime_error);
    EXPECT_THROW(io::stream_edge_list_binary(q, sink), std::runtime_error);
}

TEST_F(IoTest, BinaryWriteFailureThrowsInsteadOfTruncating) {
    // Regression: write_edge_list_binary ignored every fwrite result, so
    // ENOSPC produced a truncated file with a header claiming all edges.
    // /dev/full fails every flushed write with ENOSPC.
    if (!std::ofstream("/dev/full").good()) {
        GTEST_SKIP() << "/dev/full not available";
    }
    const EdgeList edges = er::gnm_directed(100, 500, 1, 0, 1);
    EXPECT_THROW(io::write_edge_list_binary("/dev/full", edges),
                 std::runtime_error);
}

} // namespace
} // namespace kagen
