// Graph I/O: text/binary round trips, METIS format structure, error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "er/er.hpp"
#include "graph/io.hpp"

namespace kagen {
namespace {

class IoTest : public ::testing::Test {
protected:
    std::string path(const char* name) {
        return ::testing::TempDir() + "kagen_io_" + name;
    }

    void TearDown() override {
        for (const auto& p : created_) std::remove(p.c_str());
    }

    std::string track(std::string p) {
        created_.push_back(p);
        return p;
    }

    std::vector<std::string> created_;
};

TEST_F(IoTest, TextRoundTrip) {
    const EdgeList edges = er::gnm_directed(100, 500, 1, 0, 1);
    const auto p         = track(path("text.el"));
    io::write_edge_list(p, edges, "test graph");
    EXPECT_EQ(io::read_edge_list(p), edges);
}

TEST_F(IoTest, TextSkipsCommentsAndBlankLines) {
    const auto p = track(path("comments.el"));
    {
        std::ofstream out(p);
        out << "% header\n\n1 2\n% mid comment\n3 4\n";
    }
    const EdgeList expected{{1, 2}, {3, 4}};
    EXPECT_EQ(io::read_edge_list(p), expected);
}

TEST_F(IoTest, BinaryRoundTrip) {
    const EdgeList edges = er::gnm_undirected(200, 1500, 2, 0, 1);
    const auto p         = track(path("bin.el"));
    io::write_edge_list_binary(p, edges);
    EXPECT_EQ(io::read_edge_list_binary(p), edges);
}

TEST_F(IoTest, BinaryEmptyList) {
    const auto p = track(path("empty.bin"));
    io::write_edge_list_binary(p, {});
    EXPECT_TRUE(io::read_edge_list_binary(p).empty());
}

TEST_F(IoTest, MetisFormatStructure) {
    // Triangle 0-1-2 plus pendant 3 attached to 0.
    const EdgeList edges{{0, 1}, {1, 2}, {0, 2}, {0, 3}};
    const auto p = track(path("graph.metis"));
    io::write_metis(p, edges, 4);
    std::ifstream in(p);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "4 4"); // n=4, m=4
    std::getline(in, line);
    EXPECT_EQ(line, "2 3 4"); // vertex 1's neighbours (1-indexed): 2,3,4
    std::getline(in, line);
    EXPECT_EQ(line, "1 3");
    std::getline(in, line);
    EXPECT_EQ(line, "1 2");
    std::getline(in, line);
    EXPECT_EQ(line, "1");
}

TEST_F(IoTest, MissingFileThrows) {
    EXPECT_THROW(io::read_edge_list("/nonexistent/definitely/missing"),
                 std::runtime_error);
    EXPECT_THROW(io::read_edge_list_binary("/nonexistent/definitely/missing"),
                 std::runtime_error);
}

TEST_F(IoTest, TruncatedBinaryThrows) {
    const auto p = track(path("trunc.bin"));
    {
        std::ofstream out(p, std::ios::binary);
        const u64 claimed = 100; // claims 100 edges, provides none
        out.write(reinterpret_cast<const char*>(&claimed), sizeof(claimed));
    }
    EXPECT_THROW(io::read_edge_list_binary(p), std::runtime_error);
}

} // namespace
} // namespace kagen
