// Direct unit coverage for the graph utility substrate: union-find, CSR
// construction, BFS corner cases, and edge-list helpers.
#include <gtest/gtest.h>

#include <limits>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/union_find.hpp"

namespace kagen {
namespace {

TEST(UnionFind, SingletonsAndUnions) {
    UnionFind uf(5);
    EXPECT_EQ(uf.components(), 5u);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_FALSE(uf.unite(1, 0)) << "already joined";
    EXPECT_TRUE(uf.unite(2, 3));
    EXPECT_EQ(uf.components(), 3u);
    EXPECT_EQ(uf.find(0), uf.find(1));
    EXPECT_NE(uf.find(0), uf.find(2));
    EXPECT_TRUE(uf.unite(1, 3));
    EXPECT_EQ(uf.find(0), uf.find(2));
    EXPECT_EQ(uf.components(), 2u); // {0,1,2,3} and {4}
}

TEST(UnionFind, LongChainCompresses) {
    constexpr u64 n = 10000;
    UnionFind uf(n);
    for (u64 i = 1; i < n; ++i) uf.unite(i - 1, i);
    EXPECT_EQ(uf.components(), 1u);
    for (u64 i = 0; i < n; i += 997) EXPECT_EQ(uf.find(i), uf.find(0));
}

TEST(Csr, DirectedConstruction) {
    const EdgeList edges{{0, 1}, {0, 2}, {2, 1}};
    const Csr g = build_csr(edges, 3, /*symmetrize=*/false);
    EXPECT_EQ(g.num_vertices(), 3u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 0u);
    EXPECT_EQ(g.degree(2), 1u);
    EXPECT_EQ(*g.begin(2), 1u);
}

TEST(Csr, SymmetrizedConstruction) {
    const EdgeList edges{{0, 1}};
    const Csr g = build_csr(edges, 2, /*symmetrize=*/true);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(*g.begin(1), 0u);
}

TEST(Csr, EmptyGraph) {
    const Csr g = build_csr({}, 4, true);
    EXPECT_EQ(g.num_vertices(), 4u);
    for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Bfs, DistancesOnCycle) {
    // 6-cycle: distance to the opposite vertex is 3.
    EdgeList edges;
    for (u64 v = 0; v < 6; ++v) edges.emplace_back(v, (v + 1) % 6);
    const Csr g = build_csr(edges, 6, true);
    u64 reached = 0;
    const auto dist = bfs(g, 0, &reached);
    EXPECT_EQ(reached, 6u);
    EXPECT_EQ(dist[3], 3u);
    EXPECT_EQ(dist[5], 1u);
}

TEST(Bfs, UnreachedVerticesAreMarked) {
    const Csr g = build_csr({{0, 1}}, 3, true);
    u64 reached = 0;
    const auto dist = bfs(g, 0, &reached);
    EXPECT_EQ(reached, 2u);
    EXPECT_EQ(dist[2], std::numeric_limits<u64>::max());
}

TEST(EdgeListHelpers, CanonicalizeSortUnique) {
    EdgeList edges{{3, 1}, {1, 3}, {2, 5}};
    canonicalize(edges);
    EXPECT_EQ(edges[0], Edge(1, 3));
    EXPECT_EQ(edges[1], Edge(1, 3));
    sort_unique(edges);
    EXPECT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges, (EdgeList{{1, 3}, {2, 5}}));
}

TEST(EdgeListHelpers, SelfLoopDetection) {
    EXPECT_FALSE(has_self_loop({{1, 2}, {2, 3}}));
    EXPECT_TRUE(has_self_loop({{1, 2}, {4, 4}}));
    EXPECT_FALSE(has_self_loop({}));
}

TEST(EdgeListHelpers, UndirectedSetIdempotent) {
    const EdgeList raw{{2, 1}, {1, 2}, {3, 0}, {0, 3}, {1, 2}};
    const EdgeList once  = undirected_set(raw);
    const EdgeList twice = undirected_set(once);
    EXPECT_EQ(once, twice);
    EXPECT_EQ(once, (EdgeList{{0, 3}, {1, 2}}));
}

} // namespace
} // namespace kagen
