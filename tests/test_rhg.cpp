// Random hyperbolic graphs: both generators must reproduce the brute-force
// edge set on the identical point structure; model-level statistics
// (average degree, power-law exponent) must match the parameters.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "graph/stats.hpp"
#include "hyperbolic/hyperbolic.hpp"
#include "pe/pe.hpp"
#include "rhg/rhg.hpp"
#include "testing.hpp"

namespace kagen {
namespace {

struct RhgCase {
    u64 n;
    double avg_deg;
    double gamma;
    u64 P;
};

class RhgBoth : public ::testing::TestWithParam<RhgCase> {};

TEST_P(RhgBoth, InMemoryUnionEqualsBruteForce) {
    const auto [n, d, g, P] = GetParam();
    const hyp::Params params{n, d, g, /*seed=*/5};
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return rhg::generate_inmemory(params, rank, size);
    });
    EXPECT_EQ(pe::union_undirected(per_pe), rhg::brute_force(params, P));
}

TEST_P(RhgBoth, StreamingUnionEqualsBruteForce) {
    const auto [n, d, g, P] = GetParam();
    const hyp::Params params{n, d, g, /*seed=*/5};
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return rhg::generate_streaming(params, rank, size);
    });
    EXPECT_EQ(pe::union_undirected(per_pe), rhg::brute_force(params, P));
}

INSTANTIATE_TEST_SUITE_P(
    Spectrum, RhgBoth,
    ::testing::Values(RhgCase{500, 8, 3.0, 1},    //
                      RhgCase{500, 8, 3.0, 4},    //
                      RhgCase{500, 8, 3.0, 7},    // non-power-of-two PEs
                      RhgCase{1500, 16, 2.6, 8},  //
                      RhgCase{1500, 16, 2.2, 8},  // heavy tail
                      RhgCase{1000, 64, 3.0, 4},  // dense
                      RhgCase{2000, 4, 4.0, 16},  // sparse, light tail
                      RhgCase{50, 8, 3.0, 4},     // tiny: everything global
                      RhgCase{2, 4, 3.0, 2}       // degenerate
                      ));

TEST(RhgPoints, StructureIsDeterministicAndComplete) {
    const hyp::Params params{3000, 12, 2.8, 9};
    const hyp::HypGrid a(params, 4), b(params, 4);
    ASSERT_EQ(a.num_annuli(), b.num_annuli());
    u64 total = 0;
    std::set<VertexId> ids;
    for (u32 an = 0; an < a.num_annuli(); ++an) {
        EXPECT_EQ(a.annulus_count(an), b.annulus_count(an));
        for (u64 c = 0; c < 4; ++c) {
            const auto pa = a.chunk_points(an, c);
            const auto pb = b.chunk_points(an, c);
            ASSERT_EQ(pa.size(), pb.size());
            for (std::size_t i = 0; i < pa.size(); ++i) {
                EXPECT_EQ(pa[i].id, pb[i].id);
                EXPECT_EQ(pa[i].r, pb[i].r);
                EXPECT_EQ(pa[i].theta, pb[i].theta);
                ids.insert(pa[i].id);
                ++total;
            }
        }
    }
    EXPECT_EQ(total, params.n);
    EXPECT_EQ(ids.size(), params.n); // ids are a permutation of [0, n)
    EXPECT_EQ(*ids.rbegin(), params.n - 1);
}

TEST(RhgPoints, PointsLieInTheirAnnulusAndChunk) {
    const hyp::Params params{2000, 10, 3.0, 3};
    const hyp::HypGrid grid(params, 5);
    for (u32 a = 0; a < grid.num_annuli(); ++a) {
        for (u64 c = 0; c < 5; ++c) {
            double prev_theta = -1.0;
            for (const auto& p : grid.chunk_points(a, c)) {
                EXPECT_GE(p.r, grid.annulus_lower(a));
                EXPECT_LT(p.r, grid.annulus_upper(a) + 1e-12);
                EXPECT_GE(p.theta, grid.chunk_begin(c));
                EXPECT_LT(p.theta, grid.chunk_begin(c + 1));
                EXPECT_GE(p.theta, prev_theta) << "angle order within chunk";
                prev_theta = p.theta;
            }
        }
    }
}

TEST(RhgPoints, AngularDistributionIsUniform) {
    const hyp::Params params{100000, 8, 2.9, 77};
    const hyp::HypGrid grid(params, 8);
    std::vector<double> bins(16, 0.0);
    for (const auto& p : grid.all_points()) {
        const auto b = static_cast<std::size_t>(p.theta / (2 * std::numbers::pi) * 16);
        bins[std::min<std::size_t>(b, 15)] += 1.0;
    }
    const std::vector<double> expected(16, static_cast<double>(params.n) / 16);
    EXPECT_LT(testing::chi_square(bins, expected), testing::chi_square_critical(15));
}

TEST(RhgPoints, RadialDistributionMatchesDensity) {
    // Bin radii and compare against the analytic cdf (Eq. 3/A.2).
    const hyp::Params params{200000, 8, 2.5, 3};
    const hyp::HypGrid grid(params, 4);
    const auto& space = grid.space();
    constexpr int kBins = 12;
    std::vector<double> observed(kBins, 0.0);
    for (const auto& p : grid.all_points()) {
        const auto b =
            static_cast<std::size_t>(p.r / space.radius() * kBins);
        observed[std::min<std::size_t>(b, kBins - 1)] += 1.0;
    }
    std::vector<double> expected(kBins);
    for (int b = 0; b < kBins; ++b) {
        const double lo = space.radius() * b / kBins;
        const double hi = space.radius() * (b + 1) / kBins;
        expected[b] = (space.radial_cdf(hi) - space.radial_cdf(lo)) *
                      static_cast<double>(params.n);
    }
    // Merge tiny inner bins (tail mass) into one.
    std::vector<double> obs_m, exp_m;
    double oa = 0, ea = 0;
    for (int b = 0; b < kBins; ++b) {
        oa += observed[b];
        ea += expected[b];
        if (ea >= 8.0) {
            obs_m.push_back(oa);
            exp_m.push_back(ea);
            oa = ea = 0;
        }
    }
    EXPECT_LT(testing::chi_square(obs_m, exp_m),
              testing::chi_square_critical(static_cast<double>(obs_m.size() - 1)));
}

TEST(RhgSpace, EdgePredicateMatchesDistance) {
    // The trig-free Eq. 9 test must agree with the direct Eq. 4 distance.
    const hyp::Params params{5000, 16, 2.7, 13};
    const hyp::HypGrid grid(params, 2);
    const auto& space = grid.space();
    const auto pts    = grid.all_points();
    Rng rng(99);
    for (int t = 0; t < 200000; ++t) {
        const auto& p = pts[rng.range(pts.size())];
        const auto& q = pts[rng.range(pts.size())];
        if (p.id == q.id) continue;
        const bool fast = space.edge(p, q);
        const bool slow = space.distance(p, q) < space.radius();
        EXPECT_EQ(fast, slow) << "r_p=" << p.r << " r_q=" << q.r;
    }
}

TEST(RhgStats, AverageDegreeTracksTarget) {
    // Eq. (2) is asymptotic; allow a generous band but require the right
    // scale and monotonicity in the target degree.
    const u64 n = 30000;
    double prev = 0.0;
    for (const double target : {8.0, 16.0, 32.0}) {
        const hyp::Params params{n, target, 2.9, 4242};
        const auto per_pe = pe::run_all(8, [&](u64 rank, u64 size) {
            return rhg::generate_streaming(params, rank, size);
        });
        const auto edges  = pe::union_undirected(per_pe);
        const double mean = 2.0 * static_cast<double>(edges.size()) /
                            static_cast<double>(n);
        EXPECT_GT(mean, 0.55 * target);
        EXPECT_LT(mean, 1.8 * target);
        EXPECT_GT(mean, prev); // monotone in the target
        prev = mean;
    }
}

TEST(RhgStats, PowerLawExponentNearGamma) {
    const hyp::Params params{60000, 12, 2.6, 31};
    const auto per_pe = pe::run_all(8, [&](u64 rank, u64 size) {
        return rhg::generate_streaming(params, rank, size);
    });
    const auto degs = degrees(pe::union_undirected(per_pe), params.n);
    const double est = power_law_exponent_mle(degs, 12);
    EXPECT_NEAR(est, params.gamma, 0.45);
}

TEST(RhgStats, HighDegreeVerticesSitAtSmallRadii) {
    const hyp::Params params{20000, 16, 2.5, 7};
    const hyp::HypGrid grid(params, 4);
    const auto per_pe = pe::run_all(4, [&](u64 rank, u64 size) {
        return rhg::generate_inmemory(params, rank, size);
    });
    const auto degs = degrees(pe::union_undirected(per_pe), params.n);
    // Compare mean radius of the top-decile degree vertices vs the rest.
    std::vector<double> radius(params.n);
    for (const auto& p : grid.all_points()) radius[p.id] = p.r;
    std::vector<u64> order(params.n);
    std::iota(order.begin(), order.end(), u64{0});
    std::sort(order.begin(), order.end(),
              [&](u64 a, u64 b) { return degs[a] > degs[b]; });
    double hub_r = 0, rest_r = 0;
    const u64 top = params.n / 10;
    for (u64 i = 0; i < params.n; ++i) {
        (i < top ? hub_r : rest_r) += radius[order[i]];
    }
    hub_r /= static_cast<double>(top);
    rest_r /= static_cast<double>(params.n - top);
    EXPECT_LT(hub_r, rest_r - 1.0) << "hubs must concentrate near the center";
}

TEST(RhgGenerators, DeterministicPerRank) {
    const hyp::Params params{2000, 8, 2.8, 3};
    EXPECT_EQ(rhg::generate_inmemory(params, 2, 4),
              rhg::generate_inmemory(params, 2, 4));
    EXPECT_EQ(rhg::generate_streaming(params, 2, 4),
              rhg::generate_streaming(params, 2, 4));
}

TEST(RhgGenerators, InMemoryOutputIsPartitioned) {
    // §7.1: the in-memory generator emits every edge incident to a local
    // vertex on that vertex's PE.
    const hyp::Params params{1500, 10, 2.9, 17};
    constexpr u64 P = 4;
    const hyp::HypGrid grid(params, P);
    std::vector<u64> owner(params.n);
    for (u32 a = 0; a < grid.num_annuli(); ++a) {
        for (u64 c = 0; c < P; ++c) {
            for (const auto& p : grid.chunk_points(a, c)) owner[p.id] = c;
        }
    }
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return rhg::generate_inmemory(params, rank, size);
    });
    std::vector<std::set<Edge>> sets(P);
    for (u64 r = 0; r < P; ++r) sets[r].insert(per_pe[r].begin(), per_pe[r].end());
    for (const auto& e : pe::union_undirected(per_pe)) {
        EXPECT_TRUE(sets[owner[e.first]].count(e));
        EXPECT_TRUE(sets[owner[e.second]].count(e));
    }
}

TEST(RhgGrid, GlobalStreamingSplitRespondsToPeCount) {
    // More PEs -> narrower chunks -> more annuli classified as global.
    const hyp::Params params{100000, 16, 2.9, 1};
    const hyp::HypGrid g2(params, 2);
    const hyp::HypGrid g64(params, 64);
    EXPECT_LE(rhg::first_streaming_annulus(g2), rhg::first_streaming_annulus(g64));
    EXPECT_LT(rhg::first_streaming_annulus(g64), g64.num_annuli())
        << "some annuli must stream at this size";
}

} // namespace
} // namespace kagen
