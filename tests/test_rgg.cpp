// RGG generator: exact equivalence with the brute-force reference on the
// same deterministic point set, structural invariants, expected degree.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "common/math.hpp"
#include "graph/stats.hpp"
#include "pe/pe.hpp"
#include "rgg/rgg.hpp"

namespace kagen {
namespace {

struct RggCase {
    u64 n;
    double r;
    u64 P;
};

class Rgg2D : public ::testing::TestWithParam<RggCase> {};
class Rgg3D : public ::testing::TestWithParam<RggCase> {};

TEST_P(Rgg2D, UnionEqualsBruteForce) {
    const auto [n, r, P] = GetParam();
    const rgg::Params params{n, r, /*seed=*/42};
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return rgg::generate<2>(params, rank, size);
    });
    const EdgeList got  = pe::union_undirected(per_pe);
    const EdgeList want = undirected_set(rgg::brute_force<2>(params, P));
    EXPECT_EQ(got, want);
}

TEST_P(Rgg3D, UnionEqualsBruteForce) {
    const auto [n, r, P] = GetParam();
    const rgg::Params params{n, r, /*seed=*/43};
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return rgg::generate<3>(params, rank, size);
    });
    const EdgeList got  = pe::union_undirected(per_pe);
    const EdgeList want = undirected_set(rgg::brute_force<3>(params, P));
    EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Spectrum, Rgg2D,
    ::testing::Values(RggCase{500, 0.05, 1},   //
                      RggCase{500, 0.05, 4},   //
                      RggCase{500, 0.05, 7},   // non-power-of-two PEs
                      RggCase{1000, 0.02, 16}, //
                      RggCase{200, 0.5, 4},    // r wider than a chunk: big halo
                      RggCase{100, 1.5, 3},    // r > 1: complete graph
                      RggCase{50, 0.001, 8},   // ultra sparse
                      RggCase{0, 0.1, 2},      // empty graph
                      RggCase{1, 0.1, 2}       // single vertex
                      ));

INSTANTIATE_TEST_SUITE_P(
    Spectrum, Rgg3D,
    ::testing::Values(RggCase{400, 0.1, 1},  //
                      RggCase{400, 0.1, 8},  //
                      RggCase{400, 0.1, 5},  // non-power-of-eight PEs
                      RggCase{800, 0.3, 16}, // halo spans chunks
                      RggCase{100, 2.0, 3}   // complete graph
                      ));

TEST(Rgg, EdgesRespectRadiusExactly) {
    const rgg::Params params{800, 0.07, 7};
    const auto grid = rgg::point_grid<2>(params, 4);
    std::vector<Vec2> pos(params.n);
    for (const auto& p : grid.all_points()) pos[p.id] = p.pos;
    const auto per_pe = pe::run_all(4, [&](u64 rank, u64 size) {
        return rgg::generate<2>(params, rank, size);
    });
    for (const auto& [u, v] : pe::union_undirected(per_pe)) {
        EXPECT_LE(distance(pos[u], pos[v]), params.r * 1.0000001);
    }
}

TEST(Rgg, NoSelfLoopsNoDuplicatesPerPe) {
    const rgg::Params params{2000, 0.03, 123};
    const auto per_pe = pe::run_all(8, [&](u64 rank, u64 size) {
        return rgg::generate<2>(params, rank, size);
    });
    for (const auto& part : per_pe) {
        EXPECT_FALSE(has_self_loop(part));
        std::set<Edge> set(part.begin(), part.end());
        EXPECT_EQ(set.size(), part.size()) << "intra-PE duplicate edges";
    }
}

TEST(Rgg, CrossPeEdgesAppearOnBothOwners) {
    const rgg::Params params{1000, 0.08, 5};
    constexpr u64 P = 4;
    const auto grid = rgg::point_grid<2>(params, P);
    // vertex -> owning PE, derived from the chunk/Morton assignment.
    const u32 b       = rgg::chunk_levels<2>(P);
    const u32 shift   = (grid.levels() - b) * 2;
    const u64 nchunks = u64{1} << (2 * b);
    std::vector<u64> owner(params.n);
    for (u64 cell = 0; cell < grid.num_cells(); ++cell) {
        const u64 pe = block_owner(nchunks, P, cell >> shift);
        for (const auto& p : grid.cell_points(cell)) owner[p.id] = pe;
    }
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return rgg::generate<2>(params, rank, size);
    });
    std::vector<std::set<Edge>> sets(P);
    for (u64 r = 0; r < P; ++r) sets[r].insert(per_pe[r].begin(), per_pe[r].end());
    for (const auto& e : pe::union_undirected(per_pe)) {
        EXPECT_TRUE(sets[owner[e.first]].count(e));
        EXPECT_TRUE(sets[owner[e.second]].count(e));
    }
}

TEST(Rgg, DeterministicPerRank) {
    const rgg::Params params{3000, 0.02, 77};
    EXPECT_EQ(rgg::generate<2>(params, 2, 8), rgg::generate<2>(params, 2, 8));
    EXPECT_EQ(rgg::generate<3>(params, 3, 8), rgg::generate<3>(params, 3, 8));
}

TEST(Rgg, ExpectedDegreeMatchesTheory2D) {
    // Interior vertices have expected degree n*pi*r^2 (paper §2.1.2).
    const rgg::Params params{20000, 0.02, 9};
    const auto per_pe = pe::run_all(4, [&](u64 rank, u64 size) {
        return rgg::generate<2>(params, rank, size);
    });
    const auto edges = pe::union_undirected(per_pe);
    const auto grid  = rgg::point_grid<2>(params, 4);
    const auto degs  = degrees(edges, params.n);
    // Average over interior vertices only (border effects shrink degrees).
    double sum = 0.0;
    u64 count  = 0;
    for (const auto& p : grid.all_points()) {
        bool interior = true;
        for (int d = 0; d < 2; ++d) {
            if (p.pos[d] < params.r || p.pos[d] > 1 - params.r) interior = false;
        }
        if (interior) {
            sum += static_cast<double>(degs[p.id]);
            ++count;
        }
    }
    const double mean     = sum / static_cast<double>(count);
    const double expected = static_cast<double>(params.n) * std::numbers::pi *
                            params.r * params.r;
    EXPECT_NEAR(mean, expected, 0.05 * expected);
}

TEST(Rgg, ExpectedDegreeMatchesTheory3D) {
    // d_bar = n * (4/3) pi r^3 for interior vertices.
    const rgg::Params params{20000, 0.06, 11};
    const auto per_pe = pe::run_all(8, [&](u64 rank, u64 size) {
        return rgg::generate<3>(params, rank, size);
    });
    const auto edges = pe::union_undirected(per_pe);
    const auto grid  = rgg::point_grid<3>(params, 8);
    const auto degs  = degrees(edges, params.n);
    double sum = 0.0;
    u64 count  = 0;
    for (const auto& p : grid.all_points()) {
        bool interior = true;
        for (int d = 0; d < 3; ++d) {
            if (p.pos[d] < params.r || p.pos[d] > 1 - params.r) interior = false;
        }
        if (interior) {
            sum += static_cast<double>(degs[p.id]);
            ++count;
        }
    }
    const double mean     = sum / static_cast<double>(count);
    const double expected = static_cast<double>(params.n) * (4.0 / 3.0) *
                            std::numbers::pi * std::pow(params.r, 3);
    EXPECT_NEAR(mean, expected, 0.08 * expected);
}

TEST(Rgg, GiantComponentAtThresholdRadius) {
    // r = 0.55*sqrt(ln n / n) is the paper's benchmark radius (§8.4, [45]).
    // At n = 5000 the graph sits right at the connectivity threshold, so we
    // assert the robust consequence: a dominating giant component (few
    // leftover components, all tiny).
    constexpr u64 n = 5000;
    const double r  = 0.55 * std::sqrt(std::log(static_cast<double>(n)) / n);
    const rgg::Params params{n, r, 2024};
    const auto per_pe = pe::run_all(4, [&](u64 rank, u64 size) {
        return rgg::generate<2>(params, rank, size);
    });
    const u64 components = connected_components(pe::union_undirected(per_pe), n);
    EXPECT_LE(components, n / 500) << "expected a giant component plus stragglers";
}

} // namespace
} // namespace kagen
