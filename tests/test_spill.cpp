// Bounded-memory ordered delivery: SpillFile/SpillSink units, the
// designated-drainer + spill-window property tests (byte-identical output
// across budgets and thread counts, peak-memory bound, forced completion
// skew), and the external-memory sort/dedup pass vs union_undirected.
// ctest label: spill (re-run under ASan in CI).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "graph/em_sort.hpp"
#include "graph/io.hpp"
#include "kagen.hpp"
#include "pe/pe.hpp"
#include "sink/sinks.hpp"
#include "sink/spill.hpp"

namespace kagen {
namespace {

EdgeList some_edges(u64 count, u64 salt = 0) {
    EdgeList edges;
    edges.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        edges.emplace_back((i * 7 + salt) % 101, (i * 31 + salt * 13 + 5) % 97);
    }
    return edges;
}

std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

class SpillTest : public ::testing::Test {
protected:
    std::string path(const char* name) {
        return ::testing::TempDir() + "kagen_spill_test_" + name;
    }
    void TearDown() override {
        for (const auto& p : created_) std::remove(p.c_str());
    }
    std::string track(std::string p) {
        created_.push_back(p);
        return p;
    }
    std::vector<std::string> created_;
};

// ---------------------------------------------------------------------------
// SpillFile / SpillSink units
// ---------------------------------------------------------------------------

TEST(SpillFile, AppendReadRoundTrip) {
    spill::SpillFile file;
    const EdgeList a = some_edges(1000, 1);
    const EdgeList b = some_edges(3000, 2);
    const auto seg_a = file.append(a.data(), a.size());
    const auto seg_b = file.append(b.data(), b.size());
    EXPECT_EQ(file.bytes_spilled(), (a.size() + b.size()) * sizeof(Edge));

    MemorySink back_b;
    file.replay(seg_b, back_b);
    EXPECT_EQ(back_b.take(), b);
    MemorySink back_a;
    file.replay(seg_a, back_a);
    EXPECT_EQ(back_a.take(), a);
}

TEST(SpillFile, PartialReadsAndEmptySegment) {
    spill::SpillFile file;
    const EdgeList edges = some_edges(100);
    const auto seg       = file.append(edges.data(), edges.size());
    const auto empty     = file.append(nullptr, 0);

    Edge buf[7];
    u64 pos = 0;
    EdgeList collected;
    while (std::size_t got = file.read(seg, pos, buf, 7)) {
        collected.insert(collected.end(), buf, buf + got);
        pos += got;
    }
    EXPECT_EQ(collected, edges);
    EXPECT_EQ(file.read(empty, 0, buf, 7), 0u);
    MemorySink none;
    file.replay(empty, none);
    EXPECT_TRUE(none.take().empty());
}

TEST(SpillFile, ConcurrentAppendsStayDisjoint) {
    spill::SpillFile file;
    constexpr u64 kThreads = 8;
    std::vector<spill::SpillFile::Segment> segs(kThreads);
    std::vector<EdgeList> payloads(kThreads);
    std::vector<std::thread> threads;
    for (u64 t = 0; t < kThreads; ++t) {
        payloads[t] = some_edges(500 + 100 * t, t);
        threads.emplace_back([&, t] {
            segs[t] = file.append(payloads[t].data(), payloads[t].size());
        });
    }
    for (auto& t : threads) t.join();
    for (u64 t = 0; t < kThreads; ++t) {
        MemorySink back;
        file.replay(segs[t], back);
        EXPECT_EQ(back.take(), payloads[t]) << "thread " << t;
    }
}

TEST(SpillSink, ReplaysEmissionOrderAcrossBufferBoundaries) {
    // 2500 emits straddle multiple internal flushes (buffer is 1024), so
    // the sink parks several segments and must replay them in order.
    spill::SpillFile file;
    spill::SpillSink sink(file);
    const EdgeList edges = some_edges(2500);
    for (const auto& e : edges) sink.emit(e);
    sink.finish();
    EXPECT_EQ(sink.num_edges(), edges.size());

    MemorySink back;
    sink.replay(back);
    EXPECT_EQ(back.take(), edges);
}

TEST_F(SpillTest, NamedSpillFileIsRemovedOnDestruction) {
    const auto p = path("named_scratch");
    {
        spill::SpillFile file(p);
        const EdgeList edges = some_edges(10);
        file.append(edges.data(), edges.size());
        EXPECT_TRUE(std::ifstream(p).good());
    }
    EXPECT_FALSE(std::ifstream(p).good());
}

// ---------------------------------------------------------------------------
// Bounded ordered delivery through pe::run_chunked
// ---------------------------------------------------------------------------

/// Deterministic per-chunk payload of varying size.
EdgeList chunk_payload(u64 chunk, u64 scale = 50) {
    return some_edges(scale + (chunk * 37) % 120, chunk);
}

/// Chunk body whose completion order is deliberately skewed: chunk 0 sleeps
/// long enough that (with >1 worker) every other chunk completes first, so
/// the delivery cursor stays pinned at 0 and all other chunks must park.
pe::ChunkFn skewed_fn(u64 scale = 50) {
    return [scale](u64 chunk, u64 /*num_chunks*/, EdgeSink& sink) {
        if (chunk == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        for (const auto& e : chunk_payload(chunk, scale)) sink.emit(e);
    };
}

TEST_F(SpillTest, SkewedCompletionSpillsAndStaysByteIdentical) {
    constexpr u64 kChunks = 16;
    pe::ThreadPool pool(3);

    const auto unbounded_path = track(path("skew_unbounded.bin"));
    const auto bounded_path   = track(path("skew_bounded.bin"));
    const auto seq_path       = track(path("skew_seq.bin"));

    pe::ChunkOptions opt;
    opt.num_pes      = kChunks;
    opt.total_chunks = kChunks;
    opt.pool         = &pool;

    // Sequential reference: canonical order by construction.
    {
        pe::ChunkOptions seq = opt;
        seq.threads          = 1;
        BinaryFileSink sink(seq_path);
        pe::run_chunked(seq, skewed_fn(), sink);
        sink.finish();
    }
    // Unbounded threaded run.
    {
        opt.threads = 4;
        BinaryFileSink sink(unbounded_path);
        const auto stats = pe::run_chunked(opt, skewed_fn(), sink);
        sink.finish();
        EXPECT_EQ(stats.spilled_chunks, 0u);
        EXPECT_EQ(stats.spilled_bytes, 0u);
    }
    // Budget far below one chunk: every parked chunk must go to disk, and
    // resident bytes must stay within budget + the one in-flight chunk.
    u64 max_chunk_bytes = 0;
    for (u64 c = 0; c < kChunks; ++c) {
        max_chunk_bytes =
            std::max<u64>(max_chunk_bytes, chunk_payload(c).size() * sizeof(Edge));
    }
    {
        opt.max_buffered_bytes = 64;
        BinaryFileSink sink(bounded_path);
        const auto stats = pe::run_chunked(opt, skewed_fn(), sink);
        sink.finish();
        EXPECT_GT(stats.spilled_chunks, 0u) << "skew did not engage the window";
        EXPECT_GT(stats.spilled_bytes, 0u);
        EXPECT_LE(stats.peak_buffered_bytes, opt.max_buffered_bytes + max_chunk_bytes);
    }
    const std::string reference = slurp(seq_path);
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(slurp(unbounded_path), reference);
    EXPECT_EQ(slurp(bounded_path), reference);
}

TEST_F(SpillTest, BudgetSweepIsByteIdenticalAcrossThreadCounts) {
    // Property: for any budget and any worker count, the delivered stream
    // equals the sequential unbounded run byte for byte.
    constexpr u64 kChunks = 32;
    pe::ThreadPool pool(3);

    const auto ref_path = track(path("sweep_ref.bin"));
    {
        pe::ChunkOptions opt;
        opt.num_pes      = kChunks;
        opt.total_chunks = kChunks;
        opt.threads      = 1;
        opt.pool         = &pool;
        BinaryFileSink sink(ref_path);
        pe::run_chunked(opt, skewed_fn(20), sink);
        sink.finish();
    }
    const std::string reference = slurp(ref_path);

    int variant = 0;
    for (const u64 budget : {u64{0}, u64{16}, u64{1024}, u64{1} << 20}) {
        for (const u64 threads : {u64{2}, u64{4}}) {
            pe::ChunkOptions opt;
            opt.num_pes            = kChunks;
            opt.total_chunks       = kChunks;
            opt.threads            = threads;
            opt.pool               = &pool;
            opt.max_buffered_bytes = budget;
            const auto p =
                track(path(("sweep_" + std::to_string(variant++)).c_str()));
            BinaryFileSink sink(p);
            pe::run_chunked(opt, skewed_fn(20), sink);
            sink.finish();
            EXPECT_EQ(slurp(p), reference)
                << "budget=" << budget << " threads=" << threads;
        }
    }
}

TEST_F(SpillTest, NamedSpillPathIsUsedAndCleanedUp) {
    constexpr u64 kChunks = 8;
    pe::ThreadPool pool(3);
    const auto scratch = path("window_scratch");
    pe::ChunkOptions opt;
    opt.num_pes            = kChunks;
    opt.total_chunks       = kChunks;
    opt.threads            = 4;
    opt.pool               = &pool;
    opt.max_buffered_bytes = 16;
    opt.spill_path         = scratch;
    MemorySink sink;
    pe::run_chunked(opt, skewed_fn(), sink);
    sink.finish();
    EXPECT_FALSE(std::ifstream(scratch).good()) << "scratch file leaked";
}

TEST(SpillDelivery, SinkFailureDuringDrainPropagatesAndPoolSurvives) {
    // A sink that fails mid-stream (the ENOSPC shape) must surface as the
    // thrown exception — not as a hang behind a phantom drainer — and the
    // pool must stay usable for the next run.
    class FailingSink final : public EdgeSink {
    protected:
        void consume(const Edge*, std::size_t) override {
            throw std::runtime_error("disk full");
        }
    };

    pe::ThreadPool pool(3);
    pe::ChunkOptions opt;
    opt.num_pes            = 8;
    opt.total_chunks       = 8;
    opt.threads            = 4;
    opt.pool               = &pool;
    opt.max_buffered_bytes = 16;

    FailingSink failing;
    EXPECT_THROW(pe::run_chunked(opt, skewed_fn(), failing), std::runtime_error);

    MemorySink ok;
    pe::run_chunked(opt, skewed_fn(), ok);
    ok.finish();
    EXPECT_FALSE(ok.edges().empty());

    // Inverse skew: chunk 0 completes (and its delivery fails) while every
    // other chunk is still generating. Those chunks finish during the
    // unwind and must park quietly — re-entering the drain would replay
    // the already-consumed cursor slot (a null spill payload).
    const pe::ChunkFn late_others = [](u64 chunk, u64, EdgeSink& sink) {
        if (chunk != 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
        }
        for (const auto& e : chunk_payload(chunk)) sink.emit(e);
    };
    FailingSink failing_again;
    EXPECT_THROW(pe::run_chunked(opt, late_others, failing_again),
                 std::runtime_error);
    MemorySink ok_again;
    pe::run_chunked(opt, late_others, ok_again);
    ok_again.finish();
    EXPECT_FALSE(ok_again.edges().empty());
}

// ---------------------------------------------------------------------------
// Whole-model matrix: bounded file output == unbounded file output
// ---------------------------------------------------------------------------

Config matrix_config(Model model, u64 n = 400) {
    Config cfg;
    cfg.model     = model;
    cfg.n         = n;
    cfg.m         = 5 * n;
    cfg.p         = 0.01;
    cfg.r         = 0.08;
    cfg.avg_deg   = 8;
    cfg.gamma     = 2.8;
    cfg.ba_degree = 3;
    cfg.seed      = 99;
    return cfg;
}

constexpr Model kAllModels[] = {
    Model::GnmDirected,   Model::GnmUndirected, Model::GnpDirected,
    Model::GnpUndirected, Model::Rgg2D,         Model::Rgg3D,
    Model::Rdg2D,         Model::Rdg3D,         Model::Rhg,
    Model::RhgStreaming,  Model::Ba,            Model::Rmat};

class BoundedDelivery : public ::testing::TestWithParam<Model> {};

TEST_P(BoundedDelivery, FileOutputMatchesUnboundedAcrossPesAndChunks) {
    // The acceptance matrix: with max_buffered_bytes far below the total
    // edge bytes, file-sink output is bit-identical to the unbounded run
    // for P in {2,5} x K in {1,3}, on a real multi-worker pool.
    pe::ThreadPool pool(3);
    const std::string base =
        ::testing::TempDir() + "kagen_bounded_" + model_name(GetParam());
    std::vector<std::string> created;
    for (const u64 P : {u64{2}, u64{5}}) {
        for (const u64 K : {u64{1}, u64{3}}) {
            Config cfg        = matrix_config(GetParam());
            cfg.chunks_per_pe = K;

            const auto unbounded = base + "_u.bin";
            const auto bounded   = base + "_b.bin";
            created.push_back(unbounded);
            created.push_back(bounded);
            {
                BinaryFileSink sink(unbounded);
                generate_chunked(cfg, P, sink, /*threads=*/4, &pool);
                sink.finish();
            }
            cfg.max_buffered_bytes = 256; // far below total edge bytes
            ChunkStats stats;
            {
                BinaryFileSink sink(bounded);
                stats = generate_chunked(cfg, P, sink, /*threads=*/4, &pool);
                sink.finish();
            }
            EXPECT_EQ(slurp(bounded), slurp(unbounded))
                << model_name(cfg.model) << " P=" << P << " K=" << K;
            // Peak stays within budget + one chunk — the acceptance bound.
            // The largest single chunk is computable exactly: chunk c of C
            // is the pure function generate(cfg, c, C).
            const u64 C = P * K;
            u64 max_chunk_bytes = 0;
            for (u64 c = 0; c < C; ++c) {
                max_chunk_bytes = std::max<u64>(
                    max_chunk_bytes,
                    generate(cfg, c, C).edges.size() * sizeof(Edge));
            }
            EXPECT_LE(stats.peak_buffered_bytes,
                      cfg.max_buffered_bytes + max_chunk_bytes)
                << model_name(cfg.model) << " P=" << P << " K=" << K;
        }
    }
    for (const auto& p : created) std::remove(p.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllModels, BoundedDelivery,
                         ::testing::ValuesIn(kAllModels),
                         [](const ::testing::TestParamInfo<Model>& info) {
                             return model_name(info.param);
                         });

// ---------------------------------------------------------------------------
// External-memory sort/dedup
// ---------------------------------------------------------------------------

TEST_F(SpillTest, EmSortMatchesUnionUndirectedBitForBit) {
    // as_generated chunked file (intentional duplicates included) -> EM
    // sort/dedup at a budget small enough to force many runs == the
    // materialized union_undirected pipeline, byte for byte.
    Config cfg       = matrix_config(Model::GnmUndirected, 600);
    cfg.total_chunks = 12;

    std::vector<EdgeList> per_chunk;
    for (u64 c = 0; c < cfg.total_chunks; ++c) {
        per_chunk.push_back(generate(cfg, c, cfg.total_chunks).edges);
    }
    const auto ref_path = track(path("em_ref.bin"));
    io::write_edge_list_binary(ref_path, pe::union_undirected(per_chunk));

    const auto gen_path = track(path("em_gen.bin"));
    {
        cfg.max_buffered_bytes = 512; // bounded generation feeding the sort
        BinaryFileSink sink(gen_path);
        pe::ThreadPool pool(3);
        generate_chunked(cfg, 4, sink, /*threads=*/4, &pool);
        sink.finish();
    }
    const auto sorted_path = track(path("em_sorted.bin"));
    // 1024-edge runs (the internal floor): forces run formation + k-way
    // merge rather than a single in-memory sort.
    const em::SortStats stats = em::sort_dedup_file(gen_path, sorted_path, 1);
    EXPECT_GT(stats.runs, 1u) << "budget did not force external runs";
    EXPECT_GT(stats.input_edges, stats.output_edges)
        << "as_generated duplicates should have been removed";
    EXPECT_EQ(slurp(sorted_path), slurp(ref_path));
}

TEST_F(SpillTest, EmSortGeometricModelMatchesUnionUndirected) {
    Config cfg       = matrix_config(Model::Rgg2D, 500);
    cfg.total_chunks = 8;

    std::vector<EdgeList> per_chunk;
    for (u64 c = 0; c < cfg.total_chunks; ++c) {
        per_chunk.push_back(generate(cfg, c, cfg.total_chunks).edges);
    }
    const auto ref_path = track(path("em_rgg_ref.bin"));
    io::write_edge_list_binary(ref_path, pe::union_undirected(per_chunk));

    const auto gen_path = track(path("em_rgg_gen.bin"));
    {
        BinaryFileSink sink(gen_path);
        generate_chunked(cfg, 4, sink);
        sink.finish();
    }
    const auto sorted_path = track(path("em_rgg_sorted.bin"));
    em::sort_dedup_file(gen_path, sorted_path, 1);
    EXPECT_EQ(slurp(sorted_path), slurp(ref_path));
}

TEST_F(SpillTest, EmSortDirectedKeepsOrientation) {
    Config cfg       = matrix_config(Model::GnmDirected, 500);
    cfg.total_chunks = 8;

    std::vector<EdgeList> per_chunk;
    for (u64 c = 0; c < cfg.total_chunks; ++c) {
        per_chunk.push_back(generate(cfg, c, cfg.total_chunks).edges);
    }
    const auto ref_path = track(path("em_dir_ref.bin"));
    io::write_edge_list_binary(ref_path, pe::union_directed(per_chunk));

    const auto gen_path = track(path("em_dir_gen.bin"));
    {
        BinaryFileSink sink(gen_path);
        generate_chunked(cfg, 4, sink);
        sink.finish();
    }
    const auto sorted_path = track(path("em_dir_sorted.bin"));
    const em::SortStats stats =
        em::sort_dedup_file(gen_path, sorted_path, 1, /*canonicalize=*/false);
    EXPECT_EQ(stats.output_edges, pe::union_directed(per_chunk).size());
    EXPECT_EQ(slurp(sorted_path), slurp(ref_path));
}

TEST_F(SpillTest, EmSortEmptyAndIdempotent) {
    const auto empty_in  = track(path("em_empty_in.bin"));
    const auto empty_out = track(path("em_empty_out.bin"));
    io::write_edge_list_binary(empty_in, {});
    const em::SortStats stats = em::sort_dedup_file(empty_in, empty_out, 1 << 20);
    EXPECT_EQ(stats.input_edges, 0u);
    EXPECT_EQ(stats.output_edges, 0u);
    EXPECT_EQ(slurp(empty_out), slurp(empty_in));

    // Sorting a sorted, deduplicated file is the identity.
    const EdgeList edges = undirected_set(some_edges(5000));
    const auto once      = track(path("em_idem_once.bin"));
    const auto twice     = track(path("em_idem_twice.bin"));
    io::write_edge_list_binary(once, edges);
    em::sort_dedup_file(once, twice, 1);
    EXPECT_EQ(slurp(twice), slurp(once));
}

} // namespace
} // namespace kagen
