// Stochastic block model (the paper's §9 future-work extension): density
// per block pair, degeneration to G(n,p), cross-PE redundancy, determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/math.hpp"
#include "er/er.hpp"
#include "graph/stats.hpp"
#include "pe/pe.hpp"
#include "sbm/sbm.hpp"
#include "testing.hpp"

namespace kagen {
namespace {

class SbmPeCounts : public ::testing::TestWithParam<u64> {};

TEST_P(SbmPeCounts, UnionIndependentOfPeCount) {
    const u64 P       = GetParam();
    const auto params = sbm::planted_partition(300, 4, 0.1, 0.01, 7);
    const auto seq    = pe::union_undirected(pe::run_all(1, [&](u64 r, u64 s) {
        return sbm::generate(params, r, s);
    }));
    const auto par    = pe::union_undirected(pe::run_all(P, [&](u64 r, u64 s) {
        return sbm::generate(params, r, s);
    }));
    // Region seeds depend only on global matrix coordinates of the overlay,
    // but the overlay itself depends on P; equality therefore holds at the
    // *distribution* level, not bitwise. Here we check the structural
    // invariants that must hold for every P.
    EXPECT_FALSE(has_self_loop(par));
    for (const auto& [u, v] : par) { // canonical form after union
        EXPECT_LT(u, v);
        EXPECT_LT(v, sbm::num_vertices(params));
    }
    // The raw per-PE outputs use the lower-triangle convention (u > v).
    for (const auto& part : pe::run_all(P, [&](u64 r, u64 s) {
             return sbm::generate(params, r, s);
         })) {
        for (const auto& [u, v] : part) EXPECT_GT(u, v);
    }
    // Densities should be statistically close (same model): compare total
    // edge counts loosely.
    const double tol = 6 * std::sqrt(static_cast<double>(seq.size()));
    EXPECT_NEAR(static_cast<double>(par.size()), static_cast<double>(seq.size()), tol);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, SbmPeCounts, ::testing::Values(2, 3, 8));

TEST(Sbm, BlockPairDensitiesMatchProbabilities) {
    // 3 blocks with a full probability matrix; measure each pair's density.
    sbm::Params params;
    params.block_sizes = {200, 300, 100};
    params.probs       = {{0.20, 0.02, 0.05},
                          {0.02, 0.10, 0.01},
                          {0.05, 0.01, 0.30}};
    params.seed        = 3;
    const u64 n        = sbm::num_vertices(params);

    // Average counts over several seeds for tight bounds.
    constexpr int kRuns = 30;
    double counts[3][3] = {};
    for (int run = 0; run < kRuns; ++run) {
        params.seed       = 100 + run;
        const auto per_pe = pe::run_all(4, [&](u64 r, u64 s) {
            return sbm::generate(params, r, s);
        });
        auto block_of = [&](u64 v) { return v < 200 ? 0 : (v < 500 ? 1 : 2); };
        for (const auto& [u, v] : pe::union_undirected(per_pe)) {
            const int bu = block_of(u);
            const int bv = block_of(v);
            counts[std::max(bu, bv)][std::min(bu, bv)] += 1.0;
        }
    }
    const double sizes[3] = {200, 300, 100};
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j <= i; ++j) {
            const double pairs =
                i == j ? sizes[i] * (sizes[i] - 1) / 2 : sizes[i] * sizes[j];
            const double expected = pairs * params.probs[i][j];
            const double tol      = 6 * std::sqrt(expected / kRuns) + 1;
            EXPECT_NEAR(counts[i][j] / kRuns, expected, tol)
                << "block pair (" << i << "," << j << ")";
        }
    }
}

TEST(Sbm, SingleBlockMatchesGnpDistribution) {
    // One block with probability p is exactly G(n,p); compare mean counts.
    constexpr u64 n    = 400;
    constexpr double p = 0.03;
    double sbm_sum = 0, gnp_sum = 0;
    constexpr int kRuns = 40;
    for (int run = 0; run < kRuns; ++run) {
        sbm::Params params;
        params.block_sizes = {n};
        params.probs       = {{p}};
        params.seed        = 500 + run;
        sbm_sum += static_cast<double>(
            pe::union_undirected(pe::run_all(3, [&](u64 r, u64 s) {
                return sbm::generate(params, r, s);
            })).size());
        gnp_sum += static_cast<double>(
            pe::union_undirected(pe::run_all(3, [&](u64 r, u64 s) {
                return er::gnp_undirected(n, p, 500 + run, r, s);
            })).size());
    }
    const double expected = static_cast<double>(n) * (n - 1) / 2 * p;
    const double tol      = 6 * std::sqrt(expected / kRuns);
    EXPECT_NEAR(sbm_sum / kRuns, expected, tol);
    EXPECT_NEAR(gnp_sum / kRuns, expected, tol);
}

TEST(Sbm, RedundancyAcrossOwners) {
    const auto params = sbm::planted_partition(240, 3, 0.2, 0.02, 11);
    const u64 n       = sbm::num_vertices(params);
    constexpr u64 P   = 5;
    const auto per_pe = pe::run_all(P, [&](u64 r, u64 s) {
        return sbm::generate(params, r, s);
    });
    // Compare in canonical (min, max) form: the generator emits (u > v).
    std::vector<std::set<Edge>> sets(P);
    for (u64 r = 0; r < P; ++r) {
        for (const auto& [u, v] : per_pe[r]) {
            sets[r].insert({std::min(u, v), std::max(u, v)});
        }
    }
    for (const auto& e : pe::union_undirected(per_pe)) {
        EXPECT_TRUE(sets[block_owner(n, P, e.first)].count(e));
        EXPECT_TRUE(sets[block_owner(n, P, e.second)].count(e));
    }
}

TEST(Sbm, CommunityStructureIsDetectable) {
    // Strong planted partition: intra-block degree must dominate.
    const auto params = sbm::planted_partition(600, 3, 0.2, 0.002, 13);
    const auto edges  = pe::union_undirected(pe::run_all(4, [&](u64 r, u64 s) {
        return sbm::generate(params, r, s);
    }));
    u64 intra = 0, inter = 0;
    for (const auto& [u, v] : edges) {
        (u / 200 == v / 200 ? intra : inter) += 1;
    }
    EXPECT_GT(intra, 10 * inter);
}

TEST(Sbm, ZeroAndOneProbabilities) {
    sbm::Params params;
    params.block_sizes = {10, 10};
    params.probs       = {{1.0, 0.0}, {0.0, 1.0}};
    params.seed        = 1;
    const auto edges   = pe::union_undirected(pe::run_all(2, [&](u64 r, u64 s) {
        return sbm::generate(params, r, s);
    }));
    // Two disjoint cliques of 10: 2 * C(10,2) = 90 edges, none crossing.
    EXPECT_EQ(edges.size(), 90u);
    for (const auto& [u, v] : edges) EXPECT_EQ(u / 10, v / 10);
}

TEST(Sbm, DeterministicPerRank) {
    const auto params = sbm::planted_partition(500, 5, 0.05, 0.01, 21);
    EXPECT_EQ(sbm::generate(params, 2, 4), sbm::generate(params, 2, 4));
}

TEST(Sbm, UnevenBlockAndChunkBoundaries) {
    // Blocks that straddle chunk boundaries in awkward ways.
    sbm::Params params;
    params.block_sizes = {7, 13, 31, 5};
    params.probs.assign(4, std::vector<double>(4, 0.15));
    params.seed = 9;
    const u64 n = sbm::num_vertices(params);
    const auto edges = pe::union_undirected(pe::run_all(7, [&](u64 r, u64 s) {
        return sbm::generate(params, r, s);
    }));
    EXPECT_FALSE(has_self_loop(edges));
    for (const auto& [u, v] : edges) {
        EXPECT_LT(u, n);
        EXPECT_LT(v, n);
    }
    // Uniform 0.15 over all pairs == G(n, 0.15): sanity-check the count.
    const double expected = static_cast<double>(n) * (n - 1) / 2 * 0.15;
    EXPECT_NEAR(static_cast<double>(edges.size()), expected, 6 * std::sqrt(expected));
}

} // namespace
} // namespace kagen
