// Erdős–Rényi generators: exact edge counts, structural invariants,
// cross-PE redundancy consistency, uniformity over the pair universe.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/math.hpp"
#include "er/er.hpp"
#include "graph/stats.hpp"
#include "pe/pe.hpp"
#include "testing.hpp"

namespace kagen {
namespace {

class GnmDirected : public ::testing::TestWithParam<u64> {};

TEST_P(GnmDirected, ExactCountNoLoopsDisjointChunks) {
    const u64 P = GetParam();
    constexpr u64 n = 200, m = 3000;
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return er::gnm_directed(n, m, /*seed=*/7, rank, size);
    });
    u64 total = 0;
    std::set<Edge> all;
    for (u64 rank = 0; rank < P; ++rank) {
        const u64 row_lo = block_begin(n, P, rank);
        const u64 row_hi = block_begin(n, P, rank + 1);
        for (const auto& [u, v] : per_pe[rank]) {
            EXPECT_NE(u, v);
            EXPECT_LT(u, n);
            EXPECT_LT(v, n);
            EXPECT_GE(u, row_lo); // edges start at local rows only
            EXPECT_LT(u, row_hi);
            all.insert({u, v});
            ++total;
        }
    }
    EXPECT_EQ(total, m);            // chunk counts sum to m
    EXPECT_EQ(all.size(), m);       // and no duplicates anywhere
}

INSTANTIATE_TEST_SUITE_P(PeCounts, GnmDirected, ::testing::Values(1, 2, 3, 8, 16));

TEST(GnmDirectedStat, UniformOverPairUniverse) {
    // Every ordered pair must be sampled equally often across seeds.
    constexpr u64 n = 20, m = 40, kRuns = 20000;
    std::map<Edge, double> hits;
    for (u64 seed = 0; seed < kRuns; ++seed) {
        for (const auto& e : er::gnm_directed(n, m, seed, 0, 1)) hits[e] += 1.0;
    }
    std::vector<double> observed;
    for (u64 u = 0; u < n; ++u) {
        for (u64 v = 0; v < n; ++v) {
            if (u == v) continue;
            observed.push_back(hits[{u, v}]);
        }
    }
    const double per_pair = static_cast<double>(kRuns) * m / (n * (n - 1));
    const std::vector<double> expected(observed.size(), per_pair);
    EXPECT_LT(testing::chi_square(observed, expected),
              testing::chi_square_critical(static_cast<double>(observed.size() - 1)));
}

TEST(GnmDirected, DeterministicPerRank) {
    const auto a = er::gnm_directed(500, 2000, 3, 2, 4);
    const auto b = er::gnm_directed(500, 2000, 3, 2, 4);
    EXPECT_EQ(a, b);
}

TEST(GnmDirected, FullUniverse) {
    // m = n(n-1): every ordered pair exactly once.
    constexpr u64 n = 40;
    const u64 m     = n * (n - 1);
    const auto edges = er::gnm_directed(n, m, 1, 0, 1);
    std::set<Edge> set(edges.begin(), edges.end());
    EXPECT_EQ(set.size(), m);
}

class GnmUndirected : public ::testing::TestWithParam<u64> {};

TEST_P(GnmUndirected, UnionHasExactlyMEdges) {
    const u64 P = GetParam();
    constexpr u64 n = 150, m = 2000;
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return er::gnm_undirected(n, m, 11, rank, size);
    });
    const auto uni = pe::union_undirected(per_pe);
    EXPECT_EQ(uni.size(), m);
    EXPECT_FALSE(has_self_loop(uni));
    for (const auto& [u, v] : uni) {
        EXPECT_LT(u, n);
        EXPECT_LT(v, n);
    }
}

INSTANTIATE_TEST_SUITE_P(PeCounts, GnmUndirected, ::testing::Values(1, 2, 3, 5, 8, 16));

TEST_P(GnmUndirected, EveryEdgeOnBothOwners) {
    const u64 P = GetParam();
    if (P == 1) GTEST_SKIP() << "redundancy only exists for P > 1";
    constexpr u64 n = 120, m = 1500;
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return er::gnm_undirected(n, m, 13, rank, size);
    });
    std::vector<std::set<Edge>> sets(P);
    for (u64 r = 0; r < P; ++r) sets[r].insert(per_pe[r].begin(), per_pe[r].end());
    for (u64 r = 0; r < P; ++r) {
        for (const auto& e : per_pe[r]) {
            const u64 owner_u = block_owner(n, P, e.first);
            const u64 owner_v = block_owner(n, P, e.second);
            EXPECT_TRUE(sets[owner_u].count(e)) << "missing on owner of u";
            EXPECT_TRUE(sets[owner_v].count(e)) << "missing on owner of v";
        }
    }
}

TEST(GnmUndirected, ChunkIdenticalFromBothOwners) {
    constexpr u64 n = 100, m = 1200, P = 5;
    for (u64 i = 0; i < P; ++i) {
        for (u64 j = 0; j <= i; ++j) {
            // Extract chunk (i, j) from PE i's run and PE j's run; the
            // pseudorandom recomputation must give identical edges.
            const auto from_i = er::gnm_undirected_chunk(n, m, 17, P, i, j);
            EdgeList from_j_all = er::gnm_undirected(n, m, 17, j, P);
            EdgeList from_j;
            for (const auto& [u, v] : from_j_all) {
                if (block_owner(n, P, u) == i && block_owner(n, P, v) == j) {
                    from_j.push_back({u, v});
                }
            }
            sort_unique(from_j);
            EdgeList lhs = from_i;
            sort_unique(lhs);
            EXPECT_EQ(lhs, from_j) << "chunk (" << i << "," << j << ")";
        }
    }
}

TEST(GnmUndirected, LowerTriangleConvention) {
    const auto edges = er::gnm_undirected(300, 4000, 23, 0, 1);
    for (const auto& [u, v] : edges) EXPECT_GT(u, v);
}

TEST(GnmUndirectedStat, UniformOverPairUniverse) {
    constexpr u64 n = 20, m = 30, kRuns = 20000, P = 3;
    std::map<Edge, double> hits;
    for (u64 seed = 0; seed < kRuns; ++seed) {
        const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
            return er::gnm_undirected(n, m, seed, rank, size);
        });
        for (const auto& e : pe::union_undirected(per_pe)) hits[e] += 1.0;
    }
    std::vector<double> observed;
    for (u64 v = 0; v < n; ++v) {
        for (u64 u = v + 1; u < n; ++u) observed.push_back(hits[{v, u}]);
    }
    const double per_pair = static_cast<double>(kRuns) * m / (n * (n - 1) / 2);
    const std::vector<double> expected(observed.size(), per_pair);
    EXPECT_LT(testing::chi_square(observed, expected),
              testing::chi_square_critical(static_cast<double>(observed.size() - 1)));
}

TEST(GnmUndirected, SaturatedGraphIsComplete) {
    constexpr u64 n = 30;
    const u64 m = static_cast<u64>(er::undirected_universe(n));
    const auto per_pe = pe::run_all(4, [&](u64 rank, u64 size) {
        return er::gnm_undirected(n, m, 1, rank, size);
    });
    EXPECT_EQ(pe::union_undirected(per_pe).size(), m);
}

class GnpBothKinds : public ::testing::TestWithParam<u64> {};

TEST_P(GnpBothKinds, EdgeCountConcentratesAroundMean) {
    const u64 P = GetParam();
    constexpr u64 n = 400;
    constexpr double p = 0.01;
    double dir_sum = 0.0, undir_sum = 0.0;
    constexpr u64 kRuns = 60;
    for (u64 seed = 0; seed < kRuns; ++seed) {
        const auto dir = pe::run_all(P, [&](u64 rank, u64 size) {
            return er::gnp_directed(n, p, seed, rank, size);
        });
        u64 dir_edges = 0;
        for (const auto& part : dir) dir_edges += part.size();
        dir_sum += static_cast<double>(dir_edges);
        const auto undir = pe::run_all(P, [&](u64 rank, u64 size) {
            return er::gnp_undirected(n, p, seed, rank, size);
        });
        undir_sum += static_cast<double>(pe::union_undirected(undir).size());
    }
    const double dir_mean    = dir_sum / kRuns;
    const double undir_mean  = undir_sum / kRuns;
    const double dir_expect  = static_cast<double>(n) * (n - 1) * p;
    const double undir_expect = dir_expect / 2;
    EXPECT_NEAR(dir_mean, dir_expect, 6 * std::sqrt(dir_expect / kRuns) + 1);
    EXPECT_NEAR(undir_mean, undir_expect, 6 * std::sqrt(undir_expect / kRuns) + 1);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, GnpBothKinds, ::testing::Values(1, 4, 7));

TEST(GnpUndirected, RedundancyAcrossOwners) {
    constexpr u64 n = 90, P = 6;
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return er::gnp_undirected(n, 0.1, 99, rank, size);
    });
    std::vector<std::set<Edge>> sets(P);
    for (u64 r = 0; r < P; ++r) sets[r].insert(per_pe[r].begin(), per_pe[r].end());
    for (u64 r = 0; r < P; ++r) {
        for (const auto& e : per_pe[r]) {
            EXPECT_TRUE(sets[block_owner(n, P, e.first)].count(e));
            EXPECT_TRUE(sets[block_owner(n, P, e.second)].count(e));
        }
    }
}

TEST(GnpDirected, NoSelfLoopsNoDuplicates) {
    const auto edges = er::gnp_directed(1000, 0.01, 5, 0, 1);
    EXPECT_FALSE(has_self_loop(edges));
    std::set<Edge> set(edges.begin(), edges.end());
    EXPECT_EQ(set.size(), edges.size());
}

TEST(ErDegrees, GnmDegreeDistributionIsBinomialLike) {
    // In G(n,m) the expected average degree is 2m/n.
    constexpr u64 n = 4000, m = 40000;
    const auto edges = er::gnm_undirected(n, m, 21, 0, 1);
    const auto degs  = degrees(undirected_set(edges), n);
    EXPECT_NEAR(average_degree(degs), 2.0 * m / n, 0.01);
}

} // namespace
} // namespace kagen
