// Steady-state allocation gate (DESIGN.md §14): the arena-backed chunk
// pipeline must perform ZERO malloc/free per chunk and per edge in the
// emit→deliver→write loop. Counting absolute allocations is brittle (the
// registry mirror and per-run scaffolding make a small constant number of
// allocations per *run*), so the gate asserts the sharp property instead:
// with a warm external arena, the interposed global-new count is
// **independent of the chunk count and of the edge count** — i.e. the
// per-chunk and per-edge marginal allocation cost is exactly zero.
//
// Measurement: all operator new/delete variants are interposed in this
// binary. Counts are compared as the MAX over several samples per config,
// with a small fixed schedule slack: the one legitimate per-run variance is
// `ParticipantStats::flush` (pe.cpp), which builds a handful of heap string
// temporaries per *flushing participant*, and which of the 3 participants
// flush depends on the steal schedule — at most ~7 allocations × 3
// participants of jitter, independent of chunk and edge counts. The slack
// (kScheduleSlack) covers that full span; a real per-chunk leak costs at
// least one allocation per added chunk (84 across the 12→96 sweep), an
// order of magnitude above it.
//
// Generator internals are out of the pipeline's scope (some models allocate
// per chunk inside `generate`); the model runs suppress counting inside the
// generator call only — emit/consume/deliver on the worker threads outside
// it stay measured. The synthetic run uses an allocation-free ChunkFn with
// no suppression at all, gating the full engine end to end.
//
// Skipped under ASan/TSan: sanitizer runtimes replace operator new and
// allocate internally, so interposition counts would measure the sanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include <unistd.h>

#include "kagen.hpp"
#include "pe/arena.hpp"
#include "pe/chunk_pool.hpp"
#include "pe/pe.hpp"
#include "sink/sinks.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define KAGEN_ALLOC_GATE_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#ifndef KAGEN_ALLOC_GATE_DISABLED
#define KAGEN_ALLOC_GATE_DISABLED 1
#endif
#endif
#endif

namespace alloc_gate {

std::atomic<unsigned long long> g_count{0};
std::atomic<bool> g_armed{false};
thread_local bool t_suppress = false;

inline void note() {
    if (g_armed.load(std::memory_order_relaxed) && !t_suppress) {
        g_count.fetch_add(1, std::memory_order_relaxed);
    }
}

/// Scopes out generator-internal allocations on the calling thread.
struct SuppressGuard {
    SuppressGuard() { t_suppress = true; }
    ~SuppressGuard() { t_suppress = false; }
};

} // namespace alloc_gate

#ifndef KAGEN_ALLOC_GATE_DISABLED

void* operator new(std::size_t size) {
    alloc_gate::note();
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    alloc_gate::note();
    return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
    return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
    alloc_gate::note();
    const std::size_t a =
        std::max(static_cast<std::size_t>(align), sizeof(void*));
    void* p = nullptr;
    if (posix_memalign(&p, a, size ? size : a) != 0) throw std::bad_alloc();
    return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
    std::free(p);
}

#endif // !KAGEN_ALLOC_GATE_DISABLED

namespace kagen {
namespace {

#ifdef KAGEN_ALLOC_GATE_DISABLED
#define KAGEN_ALLOC_GATE_SKIP() \
    GTEST_SKIP() << "allocation interposition disabled under sanitizers"
#else
#define KAGEN_ALLOC_GATE_SKIP() (void)0
#endif

constexpr int kSamples = 8;

/// Permitted per-run jitter from the participant-stats flush (see file
/// comment): ≤ ~7 string temporaries × 3 participants, rounded up.
constexpr unsigned long long kScheduleSlack = 24;

::testing::AssertionResult counts_close(unsigned long long a,
                                        unsigned long long b) {
    const unsigned long long diff = a > b ? a - b : b - a;
    if (diff <= kScheduleSlack) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " vs " << b << " differ by " << diff
           << " allocations (> schedule slack " << kScheduleSlack << ")";
}

/// Pre-reserves `slabs` arena slabs (unarmed), so armed runs never take the
/// fresh-mapping path: every acquire is a freelist hit and the arena's
/// bookkeeping vector never grows mid-measurement.
void prewarm_arena(pe::ChunkBufferPool& pool, u64 slabs) {
    std::vector<pe::Slab*> held;
    held.reserve(slabs);
    for (u64 i = 0; i < slabs; ++i) held.push_back(pool.arena().acquire());
    for (pe::Slab* s : held) pool.arena().release(s);
}

/// One armed run on the warm external arena: P=4, K=3, threads=3 per the
/// gate's pinned configuration; `total_chunks` scales the chunk count
/// without touching anything else.
unsigned long long armed_run(pe::ThreadPool& pool, pe::ChunkBufferPool& arena,
                             u64 total_chunks, const pe::ChunkFn& fn,
                             EdgeSink& sink) {
    pe::ChunkOptions opt;
    opt.num_pes       = 4;
    opt.chunks_per_pe = 3;
    opt.total_chunks  = total_chunks;
    opt.threads       = 3;
    opt.pool          = &pool;
    opt.arena         = &arena;
    alloc_gate::g_count.store(0);
    alloc_gate::g_armed.store(true);
    pe::run_chunked(opt, fn, sink);
    alloc_gate::g_armed.store(false);
    return alloc_gate::g_count.load();
}

/// Deterministic all-participants-flushed ceiling for one configuration.
template <typename MakeSinkFn>
unsigned long long max_count(pe::ThreadPool& pool, pe::ChunkBufferPool& arena,
                             u64 total_chunks, const pe::ChunkFn& fn,
                             MakeSinkFn&& make_sink) {
    unsigned long long best = 0;
    for (int i = 0; i < kSamples; ++i) {
        auto sink = make_sink();
        best      = std::max(best, armed_run(pool, arena, total_chunks, fn, *sink));
        sink->finish();
    }
    return best;
}

/// Ordered sink with no per-batch work but a data dependency on the
/// delivered payload (so delivery cannot be elided).
class OrderedTouchSink final : public EdgeSink {
public:
    u64 checksum = 0;

protected:
    void consume(const Edge* edges, std::size_t count) override {
        for (std::size_t i = 0; i < count; ++i) {
            checksum += edges[i].first ^ edges[i].second;
        }
    }
};

/// ChunkFn wrapping the real generators with generator-internal
/// allocations suppressed (see file comment).
pe::ChunkFn model_fn(Config cfg) {
    return [cfg](u64 chunk, u64 num_chunks, EdgeSink& sink) {
        alloc_gate::SuppressGuard guard;
        generate(cfg, chunk, num_chunks, sink);
    };
}

TEST(AllocGate, SyntheticPipelineZeroMarginalAllocations) {
    KAGEN_ALLOC_GATE_SKIP();
    pe::ThreadPool pool(2); // 3 participants = opt.threads
    pe::ChunkBufferPool arena;
    prewarm_arena(arena, 128);

    // Allocation-free body, NOT suppressed: the armed count covers the
    // whole engine including emit/consume on the worker threads.
    const pe::ChunkFn fn = [](u64 chunk, u64 /*num_chunks*/, EdgeSink& sink) {
        const u64 n = 300 + (chunk * 97) % 500;
        for (u64 i = 0; i < n; ++i) {
            sink.emit((chunk * 1315423911ull + i) % 4096,
                      (i * 2654435761ull + chunk) % 4096);
        }
    };
    const auto make_sink = [] { return std::make_unique<OrderedTouchSink>(); };

    // Warm-up at the largest scale (slabs mapped, registry keys interned,
    // worker TLS up), unarmed.
    {
        OrderedTouchSink warm;
        pe::ChunkOptions opt;
        opt.num_pes       = 4;
        opt.chunks_per_pe = 3;
        opt.total_chunks  = 96;
        opt.threads       = 3;
        opt.pool          = &pool;
        opt.arena         = &arena;
        pe::run_chunked(opt, fn, warm);
        warm.finish();
    }

    const auto small = max_count(pool, arena, 12, fn, make_sink);
    const auto big   = max_count(pool, arena, 96, fn, make_sink);
    EXPECT_TRUE(counts_close(small, big))
        << "8x the chunks changed the allocation count: the pipeline "
           "allocates per chunk (steady state must be zero)";
    const auto again = max_count(pool, arena, 96, fn, make_sink);
    EXPECT_TRUE(counts_close(big, again))
        << "allocation count must be reproducible";
}

TEST(AllocGate, GnmPipelineIndependentOfChunksAndEdges) {
    KAGEN_ALLOC_GATE_SKIP();
    pe::ThreadPool pool(2);
    pe::ChunkBufferPool arena;
    prewarm_arena(arena, 128);

    Config cfg;
    cfg.model = Model::GnmUndirected;
    cfg.n     = 4000;
    cfg.m     = 16000;
    cfg.seed  = 7;
    Config cfg4m = cfg;
    cfg4m.m      = 64000;

    const std::string path = std::string("/tmp/kagen_alloc_gate_") +
                             std::to_string(::getpid()) + ".bin";
    const auto make_sink = [&path] {
        return std::make_unique<BinaryFileSink>(path);
    };

    const pe::ChunkFn fn    = model_fn(cfg);
    const pe::ChunkFn fn_4m = model_fn(cfg4m);

    { // warm-up at the largest scale, unarmed
        BinaryFileSink warm(path);
        pe::ChunkOptions opt;
        opt.num_pes       = 4;
        opt.chunks_per_pe = 3;
        opt.total_chunks  = 48;
        opt.threads       = 3;
        opt.pool          = &pool;
        opt.arena         = &arena;
        pe::run_chunked(opt, fn_4m, warm);
        warm.finish();
    }

    const auto base        = max_count(pool, arena, 12, fn, make_sink);
    const auto more_chunks = max_count(pool, arena, 48, fn, make_sink);
    const auto more_edges  = max_count(pool, arena, 12, fn_4m, make_sink);
    EXPECT_TRUE(counts_close(base, more_chunks))
        << "G(n,m): allocations scale with chunks";
    EXPECT_TRUE(counts_close(base, more_edges))
        << "G(n,m): allocations scale with edges";
    std::remove(path.c_str());
}

TEST(AllocGate, Rgg2DPipelineIndependentOfChunks) {
    KAGEN_ALLOC_GATE_SKIP();
    pe::ThreadPool pool(2);
    pe::ChunkBufferPool arena;
    prewarm_arena(arena, 128);

    Config cfg;
    cfg.model = Model::Rgg2D;
    cfg.n     = 3000;
    cfg.r     = 0.02;
    cfg.seed  = 11;

    const std::string path = std::string("/tmp/kagen_alloc_gate_rgg_") +
                             std::to_string(::getpid()) + ".bin";
    const auto make_sink = [&path] {
        return std::make_unique<BinaryFileSink>(path);
    };
    const pe::ChunkFn fn = model_fn(cfg);

    { // warm-up at the largest scale, unarmed
        BinaryFileSink warm(path);
        pe::ChunkOptions opt;
        opt.num_pes       = 4;
        opt.chunks_per_pe = 3;
        opt.total_chunks  = 48;
        opt.threads       = 3;
        opt.pool          = &pool;
        opt.arena         = &arena;
        pe::run_chunked(opt, fn, warm);
        warm.finish();
    }

    const auto base        = max_count(pool, arena, 12, fn, make_sink);
    const auto more_chunks = max_count(pool, arena, 48, fn, make_sink);
    const auto again       = max_count(pool, arena, 12, fn, make_sink);
    EXPECT_TRUE(counts_close(base, more_chunks))
        << "RGG2D: allocations scale with chunks";
    EXPECT_TRUE(counts_close(base, again))
        << "RGG2D: allocation count must be reproducible";
    std::remove(path.c_str());
}

} // namespace
} // namespace kagen
