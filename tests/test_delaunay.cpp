// Bowyer–Watson triangulation: Delaunay (empty circumsphere) property
// verified against an independent circumcenter computation, adjacency
// integrity, and behaviour on structured inputs.
#include <gtest/gtest.h>

#include <vector>

#include "delaunay/delaunay.hpp"
#include "prng/rng.hpp"

namespace kagen {
namespace {

template <int D>
std::vector<Vec<D>> random_points(u64 n, u64 seed) {
    Rng rng(seed);
    std::vector<Vec<D>> pts(n);
    for (auto& p : pts) {
        for (int d = 0; d < D; ++d) p[d] = rng.uniform();
    }
    return pts;
}

template <int D>
void check_delaunay_property(const Delaunay<D>& dt) {
    // Every live simplex's circumsphere must be empty of *all* inserted
    // points (including the super vertices) — the defining DT invariant.
    std::vector<Vec<D>> all;
    for (u32 i = 0; i < dt.num_points(); ++i) all.push_back(dt.point(i));
    u64 checked = 0;
    dt.for_each_simplex([&](const auto& s) {
        std::array<Vec<D>, D + 1> verts;
        for (int i = 0; i <= D; ++i) verts[i] = dt.point(s.v[i]);
        const auto sphere = circumsphere<D>(verts);
        for (u32 i = 0; i < all.size(); ++i) {
            bool is_vertex = false;
            for (int j = 0; j <= D; ++j) is_vertex |= (s.v[j] == i);
            if (is_vertex) continue;
            const double d2 = distance_sq(all[i], sphere.center);
            EXPECT_GE(d2, sphere.radius2 * (1.0 - 1e-9))
                << "point " << i << " violates the empty-circumsphere property";
        }
        ++checked;
    });
    EXPECT_GT(checked, 0u);
}

template <int D>
void check_adjacency(const Delaunay<D>& dt) {
    // Collect all live simplices with ids, then verify mutual back-pointers
    // and that shared facets really share D vertices.
    struct Rec {
        std::array<u32, D + 1> v;
        std::array<u32, D + 1> nb;
    };
    std::vector<Rec> recs;
    dt.for_each_simplex([&](const auto& s) { recs.push_back({s.v, s.nb}); });
    // Build facet -> count map; in a valid triangulation each interior facet
    // appears exactly twice and each hull facet once.
    std::map<std::vector<u32>, int> facets;
    for (const auto& r : recs) {
        for (int i = 0; i <= D; ++i) {
            std::vector<u32> f;
            for (int j = 0; j <= D; ++j) {
                if (j != i) f.push_back(r.v[j]);
            }
            std::sort(f.begin(), f.end());
            ++facets[f];
        }
    }
    for (const auto& [f, count] : facets) {
        EXPECT_LE(count, 2) << "facet shared by more than two simplices";
    }
}

TEST(Delaunay2D, RandomPointsSatisfyEmptyCircumcircle) {
    Delaunay<2> dt({0, 0}, {1, 1});
    for (const auto& p : random_points<2>(250, 1)) dt.insert(p);
    check_delaunay_property(dt);
    check_adjacency(dt);
}

TEST(Delaunay3D, RandomPointsSatisfyEmptyCircumsphere) {
    Delaunay<3> dt({0, 0, 0}, {1, 1, 1});
    for (const auto& p : random_points<3>(150, 2)) dt.insert(p);
    check_delaunay_property(dt);
    check_adjacency(dt);
}

TEST(Delaunay2D, TriangleCountMatchesEulerFormula) {
    // For n points, h of them on the hull of the point set, a triangulation
    // has 2n - 2 - h triangles. With the super triangle "at infinity" the
    // inserted points' hull edges connect to super vertices; counting only
    // all-real triangles, expect 2n - 2 - h. We verify the weaker exact
    // identity: total live triangles (incl. super) = 2*(n+3) - 2 - 3.
    constexpr u64 n = 200;
    Delaunay<2> dt({0, 0}, {1, 1});
    for (const auto& p : random_points<2>(n, 3)) dt.insert(p);
    EXPECT_EQ(dt.num_live_simplices(), 2 * (n + 3) - 2 - 3);
}

TEST(Delaunay2D, GridWithJitterDoesNotBreak) {
    // Near-degenerate (almost cocircular) input: jittered grid.
    Delaunay<2> dt({0, 0}, {1, 1});
    Rng rng(4);
    for (int x = 0; x < 12; ++x) {
        for (int y = 0; y < 12; ++y) {
            dt.insert({(x + 0.5 + 1e-7 * rng.uniform()) / 12.0,
                       (y + 0.5 + 1e-7 * rng.uniform()) / 12.0});
        }
    }
    check_delaunay_property(dt);
}

TEST(Delaunay2D, SquareCorners) {
    Delaunay<2> dt({0, 0}, {1, 1});
    dt.insert({0.1, 0.1});
    dt.insert({0.9, 0.1});
    dt.insert({0.1, 0.9});
    dt.insert({0.9, 0.90001}); // perturbed to avoid exact cocircularity
    u64 real_triangles = 0;
    dt.for_each_simplex([&](const auto& s) {
        bool super = false;
        for (const u32 v : s.v) super |= dt.is_super(v);
        if (!super) ++real_triangles;
    });
    EXPECT_EQ(real_triangles, 2u);
}

TEST(Delaunay3D, CubeCornersPlusCenter) {
    Delaunay<3> dt({0, 0, 0}, {1, 1, 1});
    Rng rng(5);
    for (int x = 0; x <= 1; ++x) {
        for (int y = 0; y <= 1; ++y) {
            for (int z = 0; z <= 1; ++z) {
                dt.insert({x + 1e-6 * rng.uniform(), y + 1e-6 * rng.uniform(),
                           z + 1e-6 * rng.uniform()});
            }
        }
    }
    dt.insert({0.5, 0.5, 0.5});
    check_delaunay_property(dt);
}

TEST(Delaunay2D, InsertionOrderInvariantEdgeSet) {
    // The DT of a fixed (general-position) point set is unique, so the edge
    // set must not depend on insertion order.
    const auto pts = random_points<2>(120, 6);
    auto edge_set  = [&](const std::vector<Vec<2>>& order) {
        Delaunay<2> dt({0, 0}, {1, 1});
        std::map<std::pair<double, double>, u32> index;
        for (const auto& p : order) dt.insert(p);
        std::set<std::pair<std::pair<double, double>, std::pair<double, double>>> edges;
        dt.for_each_simplex([&](const auto& s) {
            for (int i = 0; i <= 2; ++i) {
                for (int j = i + 1; j <= 2; ++j) {
                    if (dt.is_super(s.v[i]) || dt.is_super(s.v[j])) continue;
                    auto a = std::make_pair(dt.point(s.v[i])[0], dt.point(s.v[i])[1]);
                    auto b = std::make_pair(dt.point(s.v[j])[0], dt.point(s.v[j])[1]);
                    if (b < a) std::swap(a, b);
                    edges.insert({a, b});
                }
            }
        });
        return edges;
    };
    auto reversed = pts;
    std::reverse(reversed.begin(), reversed.end());
    EXPECT_EQ(edge_set(pts), edge_set(reversed));
}

TEST(Circumsphere, KnownCircle) {
    // Unit circle through (1,0), (0,1), (-1,0).
    const auto s = circumsphere<2>({Vec2{1, 0}, Vec2{0, 1}, Vec2{-1, 0}});
    EXPECT_NEAR(s.center[0], 0.0, 1e-12);
    EXPECT_NEAR(s.center[1], 0.0, 1e-12);
    EXPECT_NEAR(s.radius2, 1.0, 1e-12);
}

TEST(Circumsphere, KnownSphere) {
    const auto s = circumsphere<3>(
        {Vec3{1, 0, 0}, Vec3{-1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}});
    EXPECT_NEAR(s.center[0], 0.0, 1e-12);
    EXPECT_NEAR(s.center[1], 0.0, 1e-12);
    EXPECT_NEAR(s.center[2], 0.0, 1e-12);
    EXPECT_NEAR(s.radius2, 1.0, 1e-12);
}

} // namespace
} // namespace kagen
