// Multi-node TCP backend: frame/codec round-trips over real sockets, torn
// frames and deadline expiry, localhost coordinator + worker threads
// byte-identical to both the in-process chunked engine and the forked
// backend, partitioned (manifest) output, and the injected transport
// failures — dead worker, torn report frame, never-connects — all erroring
// fast and naming the rank, with no partial output left behind.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "kagen.hpp"
#include "net/coordinator.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "net/worker.hpp"
#include "obs/trace.hpp"

namespace kagen {
namespace {

std::string tmp_path(const std::string& name) {
    return ::testing::TempDir() + "kagen_net_" + std::to_string(::getpid()) +
           "_" + name;
}

std::string read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

bool file_exists(const std::string& path) {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

Config model_config(Model model) {
    Config cfg;
    cfg.model = model;
    cfg.n     = 1500;
    cfg.seed  = 7;
    switch (model) {
        case Model::GnmDirected:
        case Model::GnmUndirected:
            cfg.m = 9000;
            break;
        case Model::Rgg2D:
            cfg.r = 0.05;
            break;
        default:
            break;
    }
    return cfg;
}

/// Single-process reference: generate_chunked into a BinaryFileSink.
std::string single_process_file(const Config& cfg, u64 pes, const std::string& tag) {
    const std::string path = tmp_path(tag + ".ref.bin");
    BinaryFileSink sink(path);
    generate_chunked(cfg, pes, sink);
    sink.finish();
    return path;
}

/// A connected AF_UNIX stream pair wrapped in two framed Sockets — the
/// frame layer is transport-agnostic, so unix sockets exercise it fully
/// without ports.
struct SocketPair {
    net::Socket a, b;
    SocketPair() {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = net::Socket(fds[0]);
        b = net::Socket(fds[1]);
    }
};

/// Spawns `count` worker threads dialing 127.0.0.1:`port`, each running the
/// real `run_net_worker`. Transport errors are captured, not thrown out of
/// the thread (failure tests tear the coordinator down mid-conversation).
class WorkerFleet {
public:
    WorkerFleet(std::uint16_t port, u64 count,
                net::NetWorkerOptions opts = {}) {
        if (opts.scratch_dir.empty()) opts.scratch_dir = ::testing::TempDir();
        errors_.resize(count);
        const std::string spec = "127.0.0.1:" + std::to_string(port);
        for (u64 i = 0; i < count; ++i) {
            threads_.emplace_back([this, spec, opts, i] {
                try {
                    net::run_net_worker(spec, opts);
                } catch (const std::exception& e) {
                    errors_[i] = e.what();
                }
            });
        }
    }
    ~WorkerFleet() { join(); }
    void join() {
        for (auto& t : threads_) {
            if (t.joinable()) t.join();
        }
    }
    const std::vector<std::string>& errors() const { return errors_; }

private:
    std::vector<std::thread> threads_;
    std::vector<std::string> errors_;
};

// ---------------------------------------------------------------------------
// Endpoints and the frame layer
// ---------------------------------------------------------------------------

TEST(NetEndpoint, ParsesHostPortAndWildcard) {
    const net::Endpoint ep = net::parse_endpoint("example.org:5555");
    EXPECT_EQ(ep.host, "example.org");
    EXPECT_EQ(ep.port, 5555);
    const net::Endpoint wild = net::parse_endpoint(":80");
    EXPECT_TRUE(wild.host.empty());
    EXPECT_EQ(wild.port, 80);
    // IPv6 literals keep their colons; the LAST colon splits the port.
    EXPECT_EQ(net::parse_endpoint("::1:4242").port, 4242);
}

TEST(NetEndpoint, RejectsMalformedSpecs) {
    EXPECT_THROW(net::parse_endpoint(""), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoint("no-port"), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoint("host:"), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoint("host:banana"), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoint("host:70000"), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoint("host:-1"), std::invalid_argument);
}

TEST(NetFrame, RoundTripsPayloads) {
    SocketPair pair;
    for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                   std::size_t{4096}, std::size_t{100000}}) {
        std::vector<u8> sent(size);
        for (std::size_t i = 0; i < size; ++i) sent[i] = static_cast<u8>(i * 31);
        pair.a.send_frame(sent);
        std::vector<u8> got;
        ASSERT_TRUE(pair.b.recv_frame(got, 2000));
        EXPECT_EQ(got, sent);
    }
}

TEST(NetFrame, CleanEofBetweenFramesReturnsFalse) {
    SocketPair pair;
    pair.a.close();
    std::vector<u8> got;
    EXPECT_FALSE(pair.b.recv_frame(got, 2000));
}

TEST(NetFrame, TornFrameThrows) {
    SocketPair pair;
    // A valid header announcing 100 payload bytes, then death after 10.
    std::vector<u8> partial;
    bytes::put_u64(partial, dist::kFrameMagic);
    bytes::put_u64(partial, 100);
    partial.resize(partial.size() + 10, u8{0xab});
    ASSERT_EQ(::send(pair.a.fd(), partial.data(), partial.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(partial.size()));
    pair.a.close();
    std::vector<u8> got;
    try {
        pair.b.recv_frame(got, 2000);
        FAIL() << "torn frame must throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("torn"), std::string::npos)
            << e.what();
    }
}

TEST(NetFrame, BadMagicThrows) {
    SocketPair pair;
    std::vector<u8> junk;
    bytes::put_u64(junk, 0xdeadbeefdeadbeefULL);
    bytes::put_u64(junk, 4);
    ASSERT_EQ(::send(pair.a.fd(), junk.data(), junk.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(junk.size()));
    std::vector<u8> got;
    EXPECT_THROW(pair.b.recv_frame(got, 2000), std::runtime_error);
}

TEST(NetFrame, DeadlineExpiresInsteadOfHanging) {
    SocketPair pair; // peer stays alive but silent
    std::vector<u8> got;
    const auto start = std::chrono::steady_clock::now();
    try {
        pair.b.recv_frame(got, 150);
        FAIL() << "silent peer must time out";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
            << e.what();
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
              5000);
}

// ---------------------------------------------------------------------------
// Config + message codecs
// ---------------------------------------------------------------------------

TEST(NetCodec, ConfigRoundTripsEveryField) {
    Config cfg;
    cfg.model              = Model::Rhg;
    cfg.n                  = 123456;
    cfg.m                  = 789;
    cfg.p                  = 0.25;
    cfg.r                  = 0.0625;
    cfg.avg_deg            = 6.5;
    cfg.gamma              = 2.9;
    cfg.ba_degree          = 3;
    cfg.rmat_a             = 0.5;
    cfg.rmat_b             = 0.3;
    cfg.rmat_c             = 0.1;
    cfg.seed               = 424242;
    cfg.chunks_per_pe      = 5;
    cfg.total_chunks       = 40;
    cfg.max_buffered_bytes = 1 << 20;
    cfg.spill_path         = "/tmp/spill.scratch";
    cfg.sink_buffer_edges  = 512;
    cfg.pin_threads        = true;
    cfg.num_processes      = 3;
    cfg.sampler_version    = SamplerVersion::v2;
    cfg.edge_semantics     = EdgeSemantics::exact_once;

    std::vector<u8> buf;
    encode_config(buf, cfg);
    const u8* p       = buf.data();
    const u8* end     = p + buf.size();
    const Config back = decode_config(p, end);
    EXPECT_EQ(p, end) << "decode must consume the encoding exactly";
    EXPECT_EQ(back.model, cfg.model);
    EXPECT_EQ(back.n, cfg.n);
    EXPECT_EQ(back.m, cfg.m);
    EXPECT_EQ(back.p, cfg.p);
    EXPECT_EQ(back.r, cfg.r);
    EXPECT_EQ(back.avg_deg, cfg.avg_deg);
    EXPECT_EQ(back.gamma, cfg.gamma);
    EXPECT_EQ(back.ba_degree, cfg.ba_degree);
    EXPECT_EQ(back.rmat_a, cfg.rmat_a);
    EXPECT_EQ(back.rmat_b, cfg.rmat_b);
    EXPECT_EQ(back.rmat_c, cfg.rmat_c);
    EXPECT_EQ(back.seed, cfg.seed);
    EXPECT_EQ(back.chunks_per_pe, cfg.chunks_per_pe);
    EXPECT_EQ(back.total_chunks, cfg.total_chunks);
    EXPECT_EQ(back.max_buffered_bytes, cfg.max_buffered_bytes);
    EXPECT_EQ(back.spill_path, cfg.spill_path);
    EXPECT_EQ(back.sink_buffer_edges, cfg.sink_buffer_edges);
    EXPECT_EQ(back.pin_threads, cfg.pin_threads);
    EXPECT_EQ(back.num_processes, cfg.num_processes);
    EXPECT_EQ(back.sampler_version, cfg.sampler_version);
    EXPECT_EQ(back.edge_semantics, cfg.edge_semantics);
}

TEST(NetCodec, ConfigRejectsUnknownVersionAndEnums) {
    Config cfg;
    std::vector<u8> buf;
    encode_config(buf, cfg);
    {
        std::vector<u8> bad = buf;
        bad[0] ^= 0xff; // corrupt the version word
        const u8* p   = bad.data();
        const u8* end = p + bad.size();
        EXPECT_THROW(decode_config(p, end), std::runtime_error);
    }
    {
        std::vector<u8> bad = buf;
        bad[8] = 0xee; // model id far outside the enum
        const u8* p   = bad.data();
        const u8* end = p + bad.size();
        EXPECT_THROW(decode_config(p, end), std::runtime_error);
    }
    { // truncation must throw, not read past the end
        const u8* p   = buf.data();
        const u8* end = p + buf.size() / 2;
        EXPECT_THROW(decode_config(p, end), std::runtime_error);
    }
}

TEST(NetCodec, JobAndReportRoundTrip) {
    net::JobSpec job;
    job.cfg          = model_config(Model::GnmUndirected);
    job.rank         = 2;
    job.num_workers  = 4;
    job.num_chunks   = 16;
    job.chunk_begin  = 8;
    job.chunk_end    = 12;
    job.threads      = 3;
    job.want_file    = true;
    job.send_file    = false;
    job.degree_stats = true;
    job.want_trace   = true;
    const net::JobSpec back = net::decode_job(net::encode_job(job));
    EXPECT_EQ(back.want_trace, job.want_trace);
    EXPECT_EQ(back.rank, job.rank);
    EXPECT_EQ(back.num_workers, job.num_workers);
    EXPECT_EQ(back.num_chunks, job.num_chunks);
    EXPECT_EQ(back.chunk_begin, job.chunk_begin);
    EXPECT_EQ(back.chunk_end, job.chunk_end);
    EXPECT_EQ(back.threads, job.threads);
    EXPECT_EQ(back.want_file, job.want_file);
    EXPECT_EQ(back.send_file, job.send_file);
    EXPECT_EQ(back.degree_stats, job.degree_stats);
    EXPECT_EQ(back.cfg.n, job.cfg.n);
    EXPECT_EQ(back.cfg.seed, job.cfg.seed);

    dist::RankReport report;
    report.rank        = 2;
    report.ok          = false;
    report.error       = "injected";
    report.chunk_begin = 8;
    report.chunk_end   = 12;
    const dist::RankReport rback =
        net::decode_report(net::encode_report(report));
    EXPECT_EQ(rback.rank, report.rank);
    EXPECT_EQ(rback.ok, report.ok);
    EXPECT_EQ(rback.error, report.error);

    net::JobSpec bad = job;
    bad.chunk_end    = 99; // past num_chunks
    EXPECT_THROW(net::decode_job(net::encode_job(bad)), std::runtime_error);

    // A job frame must never decode as a report and vice versa.
    EXPECT_THROW(net::decode_report(net::encode_job(job)), std::runtime_error);
    EXPECT_THROW(net::decode_job(net::encode_report(report)),
                 std::runtime_error);
}

TEST(NetCodec, TelemetryMessageRoundTripsAndRejectsCorruption) {
    obs::RankTelemetry t;
    t.rank          = 1;
    t.clock_base_ns = 123456;
    obs::TraceEvent ev;
    ev.begin_ns = 10;
    ev.dur_ns   = 5;
    ev.phase    = obs::Phase::generate;
    t.events.push_back(ev);
    t.metrics.counters["pe.chunks"] = {4, obs::MergeKind::sum};

    const std::vector<u8> wire    = net::encode_telemetry(t);
    const obs::RankTelemetry back = net::decode_telemetry(wire);
    EXPECT_EQ(back.rank, 1u);
    EXPECT_EQ(back.clock_base_ns, 123456u);
    ASSERT_EQ(back.events.size(), 1u);
    EXPECT_EQ(back.events[0].phase, obs::Phase::generate);
    EXPECT_EQ(back.metrics.counter_or("pe.chunks"), 4u);

    // Wrong message type behind the tag.
    dist::RankReport report;
    report.rank = 1;
    EXPECT_THROW(net::decode_telemetry(net::encode_report(report)),
                 std::runtime_error);
    EXPECT_THROW(net::decode_report(net::encode_telemetry(t)),
                 std::runtime_error);

    // Torn frame: every proper prefix must be rejected, not mis-decoded.
    for (const std::size_t cut :
         {wire.size() - 1, wire.size() / 2, std::size_t{12}}) {
        const std::vector<u8> torn(wire.begin(),
                                   wire.begin() + static_cast<long>(cut));
        EXPECT_THROW(net::decode_telemetry(torn), std::runtime_error)
            << "cut at " << cut;
    }
    // Trailing garbage after a well-formed telemetry body.
    std::vector<u8> oversized = wire;
    oversized.insert(oversized.end(), 64, u8{0});
    EXPECT_THROW(net::decode_telemetry(oversized), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Byte-identity: TCP workers == forked ranks == single process
// ---------------------------------------------------------------------------

class NetByteIdentity
    : public ::testing::TestWithParam<std::tuple<Model, EdgeSemantics>> {};

TEST_P(NetByteIdentity, MatchesSingleProcessAndForkBackend) {
    const auto [model, semantics] = GetParam();
    Config cfg          = model_config(model);
    cfg.chunks_per_pe   = 2;
    cfg.edge_semantics  = semantics;
    const u64 pes       = 4;
    const std::string tag = std::string(model_name(model)) + "_" +
                            semantics_name(semantics);
    const std::string ref_path = single_process_file(cfg, pes, tag);
    const std::string ref      = read_bytes(ref_path);
    ASSERT_GE(ref.size(), 8u);

    net::Listener listener(net::parse_endpoint("127.0.0.1:0"));
    net::NetOptions opts;
    opts.listener       = &listener;
    opts.expect_workers = 4;
    opts.num_pes        = pes;
    opts.output_path    = tmp_path(tag + ".net.bin");
    WorkerFleet fleet(listener.port(), 4);
    const net::NetResult res = net::run_net_coordinator(cfg, opts);
    fleet.join();
    for (const auto& err : fleet.errors()) EXPECT_TRUE(err.empty()) << err;

    EXPECT_EQ(res.num_workers, 4u);
    EXPECT_EQ(res.num_chunks, cfg.chunks_per_pe * pes);
    EXPECT_EQ(read_bytes(opts.output_path), ref)
        << model_name(model) << " over TCP diverged from single-process";
    EXPECT_EQ(res.edges_written * 16 + 8, ref.size());
    EXPECT_EQ(res.merged_bytes, ref.size() - 8);
    EXPECT_EQ(res.count.semantics, semantics);

    // Triangulate against the fork backend too: same cfg, same P.
    dist::DistOptions fork;
    fork.num_ranks   = 4;
    fork.num_pes     = pes;
    fork.output_path = tmp_path(tag + ".fork.bin");
    generate_distributed(cfg, fork);
    EXPECT_EQ(read_bytes(fork.output_path), ref)
        << model_name(model) << " forked backend diverged";

    std::remove(opts.output_path.c_str());
    std::remove(fork.output_path.c_str());
    std::remove(ref_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSemantics, NetByteIdentity,
    ::testing::Combine(::testing::Values(Model::GnmUndirected, Model::Rgg2D),
                       ::testing::Values(EdgeSemantics::as_generated,
                                         EdgeSemantics::exact_once)));

TEST(NetTelemetry, TelemetryRunStaysByteIdenticalAndMergesEveryRank) {
    Config cfg        = model_config(Model::GnmUndirected);
    cfg.chunks_per_pe = 2;
    const u64 pes     = 4;
    const std::string ref_path = single_process_file(cfg, pes, "telemetry");
    const std::string ref      = read_bytes(ref_path);

    cfg.trace_path   = tmp_path("net.trace.json");
    cfg.metrics_path = tmp_path("net.metrics.json");

    net::Listener listener(net::parse_endpoint("127.0.0.1:0"));
    net::NetOptions opts;
    opts.listener       = &listener;
    opts.expect_workers = 2;
    opts.num_pes        = pes;
    opts.output_path    = tmp_path("telemetry.net.bin");
    WorkerFleet fleet(listener.port(), 2);
    const net::NetResult res = net::run_net_coordinator(cfg, opts);
    fleet.join();
    for (const auto& err : fleet.errors()) EXPECT_TRUE(err.empty()) << err;

    // Telemetry must not change one output byte.
    EXPECT_EQ(read_bytes(opts.output_path), ref);

    // The TCP summary no longer drops the engine stats the ranks reported.
    u64 recycled = 0;
    for (const auto& rep : res.ranks) recycled += rep.stats.buffers_recycled;
    EXPECT_EQ(res.buffers_recycled, recycled);
    EXPECT_EQ(res.spilled_chunks, 0u);

    // Merged timeline names every rank plus the coordinator.
    const std::string trace = read_bytes(cfg.trace_path);
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"rank 0\""), std::string::npos);
    EXPECT_NE(trace.find("\"rank 1\""), std::string::npos);
    EXPECT_NE(trace.find("\"coordinator\""), std::string::npos);

    const std::string metrics = read_bytes(cfg.metrics_path);
    EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
    EXPECT_NE(metrics.find("\"pe.chunks\""), std::string::npos);

    std::remove(opts.output_path.c_str());
    std::remove(ref_path.c_str());
    std::remove(cfg.trace_path.c_str());
    std::remove(cfg.metrics_path.c_str());
}

TEST(NetCoordinator, StatsOnlyRunMergesExactly) {
    Config cfg        = model_config(Model::GnmUndirected);
    cfg.chunks_per_pe = 2;

    // In-process reference summary.
    CountingSink ref_sink(cfg.edge_semantics);
    generate_chunked(cfg, 4, ref_sink);
    ref_sink.finish();
    const CountingSummary ref = ref_sink.summarize();

    net::Listener listener(net::parse_endpoint("127.0.0.1:0"));
    net::NetOptions opts;
    opts.listener       = &listener;
    opts.expect_workers = 3;
    opts.num_pes        = 4;
    opts.degree_stats   = true;
    WorkerFleet fleet(listener.port(), 3);
    const net::NetResult res = net::run_net_coordinator(cfg, opts);
    fleet.join();

    EXPECT_EQ(res.count.num_edges, ref.num_edges);
    EXPECT_EQ(res.count.num_self_loops, ref.num_self_loops);
    EXPECT_TRUE(res.has_degrees);
    EXPECT_EQ(res.degrees.degrees.size(), res.n);
    EXPECT_EQ(res.edges_written, 0u) << "stats-only run must write no file";
}

TEST(NetCoordinator, ManifestModeKeepsRankFilesAndNamesThem) {
    Config cfg        = model_config(Model::GnmUndirected);
    cfg.chunks_per_pe = 2;
    const u64 pes     = 4;
    const std::string ref_path = single_process_file(cfg, pes, "manifest");
    const std::string ref      = read_bytes(ref_path);

    net::Listener listener(net::parse_endpoint("127.0.0.1:0"));
    net::NetOptions opts;
    opts.listener       = &listener;
    opts.expect_workers = 2;
    opts.num_pes        = pes;
    opts.manifest_path  = tmp_path("run.manifest");
    WorkerFleet fleet(listener.port(), 2);
    const net::NetResult res = net::run_net_coordinator(cfg, opts);
    fleet.join();

    ASSERT_EQ(res.manifest.size(), 2u);
    EXPECT_TRUE(file_exists(opts.manifest_path));
    // The rank files named by the manifest, concatenated in rank order with
    // their 8-byte headers stripped, are exactly the reference payload.
    std::string payload;
    u64 manifest_edges = 0;
    for (u64 w = 0; w < res.manifest.size(); ++w) {
        const net::NetManifestEntry& entry = res.manifest[w];
        EXPECT_EQ(entry.rank, w);
        ASSERT_TRUE(file_exists(entry.path)) << entry.path;
        const std::string bytes = read_bytes(entry.path);
        EXPECT_EQ(bytes.size(), entry.bytes);
        payload += bytes.substr(8);
        manifest_edges += entry.edges;
        std::remove(entry.path.c_str());
    }
    EXPECT_EQ(payload, ref.substr(8));
    EXPECT_EQ(manifest_edges, res.count.num_edges);
    std::remove(opts.manifest_path.c_str());
    std::remove(ref_path.c_str());
}

// ---------------------------------------------------------------------------
// Failure containment: fail fast, name the rank, leave no partial files
// ---------------------------------------------------------------------------

TEST(NetFailure, WorkerNeverConnectsWithinDeadline) {
    Config cfg = model_config(Model::GnmUndirected);
    net::Listener listener(net::parse_endpoint("127.0.0.1:0"));
    net::NetOptions opts;
    opts.listener           = &listener;
    opts.expect_workers     = 1;
    opts.connect_timeout_ms = 200;
    const auto start = std::chrono::steady_clock::now();
    try {
        net::run_net_coordinator(cfg, opts);
        FAIL() << "no worker ever connected; the coordinator must not hang";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("never connected"), std::string::npos) << msg;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
              10000);
}

TEST(NetFailure, FailingRankIsNamedAndOutputRemoved) {
    Config cfg        = model_config(Model::GnmUndirected);
    cfg.chunks_per_pe = 2;
    net::Listener listener(net::parse_endpoint("127.0.0.1:0"));
    net::NetOptions opts;
    opts.listener       = &listener;
    opts.expect_workers = 3;
    opts.num_pes        = 4;
    opts.output_path    = tmp_path("failing.bin");
    net::NetWorkerOptions wopts;
    wopts.rank_hook = [](u64 rank) {
        if (rank == 1) throw std::runtime_error("injected rank-1 fault");
    };
    WorkerFleet fleet(listener.port(), 3, wopts);
    try {
        net::run_net_coordinator(cfg, opts);
        FAIL() << "a failing rank must fail the run";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("injected rank-1 fault"), std::string::npos) << msg;
    }
    fleet.join();
    EXPECT_FALSE(file_exists(opts.output_path))
        << "failed run left a partial output file";
}

/// A fake worker that handshakes, accepts the job, then misbehaves —
/// injecting the exact wire-level failures a real network produces.
enum class Sabotage { die_silently, torn_report };

void sabotaged_worker(std::uint16_t port, Sabotage mode) {
    net::Socket sock =
        net::connect_to(net::parse_endpoint("127.0.0.1:" + std::to_string(port)),
                        2000);
    sock.send_frame(net::encode_hello());
    std::vector<u8> payload;
    ASSERT_TRUE(sock.recv_frame(payload, 2000));
    net::decode_hello(payload);
    ASSERT_TRUE(sock.recv_frame(payload, 2000)); // the job
    if (mode == Sabotage::die_silently) {
        sock.close(); // killed mid-job: RST/EOF instead of a report
        return;
    }
    // torn_report: a valid header promising a report that never finishes.
    std::vector<u8> partial;
    bytes::put_u64(partial, dist::kFrameMagic);
    bytes::put_u64(partial, 1000);
    partial.resize(partial.size() + 17, u8{0x5a});
    ASSERT_EQ(::send(sock.fd(), partial.data(), partial.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(partial.size()));
    sock.close();
}

class NetSabotage : public ::testing::TestWithParam<Sabotage> {};

TEST_P(NetSabotage, DeadOrTornWorkerErrorsFastNamingTheRank) {
    Config cfg = model_config(Model::GnmUndirected);
    net::Listener listener(net::parse_endpoint("127.0.0.1:0"));
    net::NetOptions opts;
    opts.listener       = &listener;
    opts.expect_workers = 1;
    opts.output_path    = tmp_path("sabotage.bin");
    std::thread saboteur(sabotaged_worker, listener.port(), GetParam());
    const auto start = std::chrono::steady_clock::now();
    try {
        net::run_net_coordinator(cfg, opts);
        FAIL() << "a dead worker must fail the run";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
    }
    saboteur.join();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
              10000)
        << "dead socket must surface via EOF, not a hang";
    EXPECT_FALSE(file_exists(opts.output_path));
}

INSTANTIATE_TEST_SUITE_P(Modes, NetSabotage,
                         ::testing::Values(Sabotage::die_silently,
                                           Sabotage::torn_report));

TEST(NetFailure, SilentWorkerHitsTheJobDeadline) {
    Config cfg = model_config(Model::GnmUndirected);
    net::Listener listener(net::parse_endpoint("127.0.0.1:0"));
    net::NetOptions opts;
    opts.listener        = &listener;
    opts.expect_workers  = 1;
    opts.job_deadline_ms = 300;
    // Alive-but-silent worker: handshakes, takes the job, then stalls past
    // the deadline without closing the socket.
    std::thread stalled([port = listener.port()] {
        net::Socket sock = net::connect_to(
            net::parse_endpoint("127.0.0.1:" + std::to_string(port)), 2000);
        sock.send_frame(net::encode_hello());
        std::vector<u8> payload;
        ASSERT_TRUE(sock.recv_frame(payload, 2000));
        ASSERT_TRUE(sock.recv_frame(payload, 2000)); // the job
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    });
    try {
        net::run_net_coordinator(cfg, opts);
        FAIL() << "a stalled worker must hit the job deadline";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("timed out"), std::string::npos) << msg;
    }
    stalled.join();
}

TEST(NetCoordinator, RejectsContradictoryOptions) {
    const Config cfg = model_config(Model::GnmUndirected);
    {
        net::NetOptions opts; // neither listen nor connect
        EXPECT_THROW(net::run_net_coordinator(cfg, opts), std::invalid_argument);
    }
    {
        net::NetOptions opts;
        opts.listen = ":0"; // listen without expect_workers
        EXPECT_THROW(net::run_net_coordinator(cfg, opts), std::invalid_argument);
    }
    {
        net::NetOptions opts;
        opts.connect        = {"127.0.0.1:1", "127.0.0.1:2"};
        opts.expect_workers = 3; // contradicts connect.size()
        EXPECT_THROW(net::run_net_coordinator(cfg, opts), std::invalid_argument);
    }
    {
        net::NetOptions opts;
        opts.listen         = ":0";
        opts.expect_workers = 1;
        opts.output_path    = tmp_path("x.bin");
        opts.manifest_path  = tmp_path("x.manifest"); // both output modes
        EXPECT_THROW(net::run_net_coordinator(cfg, opts), std::invalid_argument);
    }
}

} // namespace
} // namespace kagen
