// Exact-once edge ownership: the cross-model property-test harness.
//
// The duplicate-carrying models (undirected ER/Gnp, RGG, RDG, in-memory
// RHG) intentionally emit every cross-chunk edge on both owning chunks;
// `EdgeSemantics::exact_once` tie-breaks each edge to the chunk owning its
// canonical lower endpoint. This suite pins the whole contract:
//   * for every duplicate-carrying model x (P, K) shape, the exact-once
//     engine stream — counts, degree stats, binary file — equals the
//     canonicalized union_undirected of the legacy per-chunk outputs;
//   * non-duplicating models (directed ER/Gnp, streaming RHG, BA, R-MAT)
//     are byte-identical under both semantics;
//   * exact-once output is bit-deterministic across PE counts, chunks-per-
//     PE, and thread counts once total_chunks is pinned;
//   * the ownership interval tables partition the vertex ids;
//   * io::stream_edge_list_binary round-trips exact-once files, including
//     the empty-graph and single-chunk edge cases;
//   * the ownership layer composes with the non-facade sbm module.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "kagen.hpp"
#include "pe/pe.hpp"
#include "sbm/sbm.hpp"
#include "sink/ownership.hpp"
#include "sink/sinks.hpp"
#include "testing.hpp"

namespace kagen {
namespace {

Config property_config(Model model, u64 n = 420) {
    Config cfg;
    cfg.model     = model;
    cfg.n         = n;
    cfg.m         = 4 * n;
    cfg.p         = 0.012;
    cfg.r         = 0.09;
    cfg.avg_deg   = 8;
    cfg.gamma     = 2.8;
    cfg.ba_degree = 3;
    cfg.seed      = 31;
    return cfg;
}

constexpr Model kDuplicateCarrying[] = {
    Model::GnmUndirected, Model::GnpUndirected, Model::Rgg2D, Model::Rgg3D,
    Model::Rdg2D,         Model::Rdg3D,         Model::Rhg};

constexpr Model kExactByConstruction[] = {Model::GnmDirected, Model::GnpDirected,
                                          Model::RhgStreaming, Model::Ba,
                                          Model::Rmat};

/// The (P, K) shape matrix of the ISSUE: every P in {1, 2, 5} crossed with
/// every K in {1, 3}; C = P·K canonical chunks when total_chunks is unset.
struct Shape {
    u64 P;
    u64 K;
};
constexpr Shape kShapes[] = {{1, 1}, {1, 3}, {2, 1}, {2, 3}, {5, 1}, {5, 3}};

/// Legacy per-chunk outputs: generate(cfg, c, C) under as_generated — the
/// pre-ownership streams whose canonicalized union is the reference graph.
std::vector<EdgeList> legacy_per_chunk(Config cfg, u64 num_chunks) {
    cfg.edge_semantics = EdgeSemantics::as_generated;
    std::vector<EdgeList> out;
    out.reserve(num_chunks);
    for (u64 c = 0; c < num_chunks; ++c) {
        out.push_back(generate(cfg, c, num_chunks).edges);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Tentpole property: exact_once == union_undirected(legacy), per shape
// ---------------------------------------------------------------------------

class ExactOnceProperty : public ::testing::TestWithParam<Model> {};

TEST_P(ExactOnceProperty, EngineStreamEqualsCanonicalizedLegacyUnion) {
    Config cfg = property_config(GetParam());
    for (const auto& [P, K] : kShapes) {
        cfg.chunks_per_pe = K;
        const u64 C       = P * K;
        SCOPED_TRACE(std::string(model_name(cfg.model)) + " P=" + std::to_string(P) +
                     " K=" + std::to_string(K));

        const auto legacy       = legacy_per_chunk(cfg, C);
        const EdgeList reference = pe::union_undirected(legacy);
        ASSERT_FALSE(reference.empty());
        const u64 duplicates = testing::duplicate_excess(legacy);

        cfg.edge_semantics = EdgeSemantics::exact_once;
        MemorySink mem;
        generate_chunked(cfg, P, mem);
        mem.finish();

        // Multiset equality with the reference: same size (no duplicate
        // survived, nothing was dropped) and same canonical set.
        EXPECT_TRUE(testing::total_matches_semantics(mem.edges().size(),
                                                     reference.size(), 0));
        EXPECT_EQ(undirected_set(mem.edges()), reference);

        // The as_generated stream must still carry exactly the legacy
        // duplicates — the filter must not leak into the default semantics.
        cfg.edge_semantics = EdgeSemantics::as_generated;
        CountingSink as_gen(EdgeSemantics::as_generated);
        generate_chunked(cfg, P, as_gen);
        as_gen.finish();
        EXPECT_TRUE(testing::total_matches_semantics(as_gen.num_edges(),
                                                     reference.size(), duplicates));
        cfg.edge_semantics = EdgeSemantics::exact_once;

        // Streaming statistic sinks see the true graph: counts and the full
        // degree sequence agree with the materialized reference.
        CountingSink count(EdgeSemantics::exact_once);
        generate_chunked(cfg, P, count);
        count.finish();
        EXPECT_EQ(count.num_edges(), reference.size());

        DegreeStatsSink stats(num_vertices(cfg), EdgeSemantics::exact_once);
        generate_chunked(cfg, P, stats);
        stats.finish();
        EXPECT_EQ(stats.num_edges(), reference.size());
        EXPECT_EQ(stats.degrees(), degrees(reference, num_vertices(cfg)));
    }
}

TEST_P(ExactOnceProperty, PerRankStreamsArePartitioned) {
    // Under exact_once the per-rank API emits globally disjoint streams
    // whose concatenation is the graph — the partitioned output an MPI
    // consumer would want from each rank.
    Config cfg         = property_config(GetParam(), 300);
    cfg.edge_semantics = EdgeSemantics::exact_once;
    const u64 P        = 4;
    std::vector<EdgeList> per_pe;
    u64 total = 0;
    for (u64 r = 0; r < P; ++r) {
        per_pe.push_back(generate(cfg, r, P).edges);
        total += per_pe.back().size();
    }
    EXPECT_EQ(testing::duplicate_excess(per_pe), 0u);
    EXPECT_EQ(total, pe::union_undirected(per_pe).size());
}

INSTANTIATE_TEST_SUITE_P(DuplicateCarrying, ExactOnceProperty,
                         ::testing::ValuesIn(kDuplicateCarrying),
                         [](const ::testing::TestParamInfo<Model>& info) {
                             return model_name(info.param);
                         });

// ---------------------------------------------------------------------------
// Non-duplicating models: both semantics are the same bytes
// ---------------------------------------------------------------------------

class ExactByConstruction : public ::testing::TestWithParam<Model> {};

TEST_P(ExactByConstruction, ByteIdenticalUnderBothSemantics) {
    Config cfg = property_config(GetParam());
    ASSERT_FALSE(carries_duplicates(cfg.model));
    for (const auto& [P, K] : kShapes) {
        cfg.chunks_per_pe = K;
        SCOPED_TRACE(std::string(model_name(cfg.model)) + " P=" + std::to_string(P) +
                     " K=" + std::to_string(K));
        cfg.edge_semantics = EdgeSemantics::as_generated;
        MemorySink as_gen;
        generate_chunked(cfg, P, as_gen);
        as_gen.finish();

        cfg.edge_semantics = EdgeSemantics::exact_once;
        MemorySink exact;
        generate_chunked(cfg, P, exact);
        exact.finish();
        EXPECT_EQ(exact.edges(), as_gen.edges());
    }
}

INSTANTIATE_TEST_SUITE_P(NonDuplicating, ExactByConstruction,
                         ::testing::ValuesIn(kExactByConstruction),
                         [](const ::testing::TestParamInfo<Model>& info) {
                             return model_name(info.param);
                         });

TEST(ExactByConstruction, StreamingRhgPerPeOutputsAreGloballyDisjoint) {
    // The classification above rests on this: the request-centric sRHG
    // (§7.2) already hands every edge to exactly one PE — global pairs to
    // the lower-id endpoint's angular chunk, global/streaming pairs to the
    // streaming target's chunk, streaming pairs to the request source's
    // chunk — so it needs no ownership filter.
    for (const u64 P : {u64{1}, u64{4}, u64{7}}) {
        const hyp::Params params{700, 10, 2.6, 11};
        std::vector<EdgeList> per_pe;
        u64 total = 0;
        for (u64 r = 0; r < P; ++r) {
            per_pe.push_back(rhg::generate_streaming(params, r, P));
            total += per_pe.back().size();
        }
        EXPECT_EQ(total, pe::union_undirected(per_pe).size()) << "P=" << P;
    }
}

// ---------------------------------------------------------------------------
// Determinism: pinned chunks make exact_once a pure function of (seed, params)
// ---------------------------------------------------------------------------

TEST(ExactOnceDeterminism, BitIdenticalAcrossPesChunksAndThreads) {
    for (const Model model : {Model::GnmUndirected, Model::Rgg2D, Model::Rhg}) {
        Config cfg         = property_config(model, 300);
        cfg.total_chunks   = 12;
        cfg.edge_semantics = EdgeSemantics::exact_once;
        EdgeList reference;
        bool have_reference = false;
        pe::ThreadPool pool(3);
        for (const u64 P : {u64{1}, u64{3}, u64{8}}) {
            for (const u64 K : {u64{1}, u64{4}}) {
                for (const u64 threads : {u64{1}, u64{4}}) {
                    cfg.chunks_per_pe = K;
                    MemorySink sink;
                    const ChunkStats stats =
                        generate_chunked(cfg, P, sink, threads, &pool);
                    sink.finish();
                    ASSERT_EQ(stats.num_chunks, 12u);
                    if (!have_reference) {
                        reference      = sink.edges();
                        have_reference = true;
                        EXPECT_FALSE(reference.empty()) << model_name(model);
                    } else {
                        ASSERT_EQ(sink.edges(), reference)
                            << model_name(model) << " P=" << P << " K=" << K
                            << " threads=" << threads;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ownership interval tables
// ---------------------------------------------------------------------------

TEST(OwnershipIntervals, PartitionTheVertexIdsForEveryDuplicateCarrier) {
    // Exactness of the tie-break needs the per-chunk tables to cover every
    // vertex id exactly once — otherwise edges would vanish (uncovered
    // lower endpoint) or stay duplicated (doubly covered).
    for (const Model model : kDuplicateCarrying) {
        const Config cfg = property_config(model);
        for (const u64 C : {u64{1}, u64{5}}) {
            std::vector<u64> cover(num_vertices(cfg), 0);
            for (u64 c = 0; c < C; ++c) {
                for (const auto& iv : owned_vertex_intervals(cfg, c, C)) {
                    ASSERT_LE(iv.lo, iv.hi);
                    ASSERT_LE(iv.hi, cover.size());
                    for (u64 id = iv.lo; id < iv.hi; ++id) ++cover[id];
                }
            }
            for (u64 id = 0; id < cover.size(); ++id) {
                ASSERT_EQ(cover[id], 1u)
                    << model_name(model) << " C=" << C << " vertex " << id;
            }
        }
    }
}

TEST(OwnershipIntervals, OwnsVertexRespectsHalfOpenBounds) {
    const IdIntervals intervals{{2, 5}, {9, 10}, {20, 24}};
    EXPECT_FALSE(owns_vertex(intervals, 0));
    EXPECT_FALSE(owns_vertex(intervals, 1));
    EXPECT_TRUE(owns_vertex(intervals, 2));
    EXPECT_TRUE(owns_vertex(intervals, 4));
    EXPECT_FALSE(owns_vertex(intervals, 5));
    EXPECT_TRUE(owns_vertex(intervals, 9));
    EXPECT_FALSE(owns_vertex(intervals, 10));
    EXPECT_FALSE(owns_vertex(intervals, 19));
    EXPECT_TRUE(owns_vertex(intervals, 23));
    EXPECT_FALSE(owns_vertex(intervals, 24));
    EXPECT_FALSE(owns_vertex({}, 0));
}

TEST(OwnershipFilter, KeepsOwnedLowerEndpointsAndCountsDrops) {
    MemorySink target;
    OwnershipFilterSink filter({{10, 20}}, target);
    filter.emit(10, 3);  // lower endpoint 3: foreign
    filter.emit(15, 30); // lower endpoint 15: owned
    filter.emit(5, 25);  // lower endpoint 5: foreign
    filter.emit(19, 19); // self-loop on owned vertex: kept
    filter.finish();     // flushes into (but does not finish) the target
    EXPECT_EQ(target.edges(), (EdgeList{{15, 30}, {19, 19}}));
    EXPECT_EQ(filter.num_filtered(), 2u);
}

TEST(OwnershipSemantics, ParseAndNameRoundTrip) {
    EdgeSemantics semantics = EdgeSemantics::as_generated;
    EXPECT_TRUE(parse_semantics("exact_once", &semantics));
    EXPECT_EQ(semantics, EdgeSemantics::exact_once);
    EXPECT_TRUE(parse_semantics("as_generated", &semantics));
    EXPECT_EQ(semantics, EdgeSemantics::as_generated);
    EXPECT_FALSE(parse_semantics("dedup", &semantics));
    EXPECT_STREQ(semantics_name(EdgeSemantics::exact_once), "exact_once");
}

TEST(SinkSemanticsLabels, SummariesStateWhatTheTotalsMean) {
    CountingSink count(EdgeSemantics::exact_once);
    count.emit(0, 1);
    count.finish();
    EXPECT_NE(count.summary().find("edges[exact_once]=1"), std::string::npos);
    count.set_semantics(EdgeSemantics::as_generated);
    EXPECT_NE(count.summary().find("edges[as_generated]=1"), std::string::npos);

    DegreeStatsSink stats(4); // defaults to the legacy as_generated label
    stats.emit(0, 1);
    stats.finish();
    EXPECT_EQ(stats.semantics(), EdgeSemantics::as_generated);
    EXPECT_NE(stats.summary().find("edges[as_generated]=1"), std::string::npos);
    stats.set_semantics(EdgeSemantics::exact_once);
    EXPECT_NE(stats.summary().find("edges[exact_once]=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Binary file round-trip under exact_once
// ---------------------------------------------------------------------------

class ExactOnceFileTest : public ::testing::Test {
protected:
    std::string path(const char* name) {
        return ::testing::TempDir() + "kagen_exact_once_" + name;
    }
    void TearDown() override {
        for (const auto& p : created_) std::remove(p.c_str());
    }
    std::string track(std::string p) {
        created_.push_back(p);
        return p;
    }
    std::vector<std::string> created_;
};

TEST_F(ExactOnceFileTest, BinaryStreamRoundTripsThroughSinks) {
    Config cfg         = property_config(Model::Rgg2D);
    cfg.chunks_per_pe  = 3;
    cfg.edge_semantics = EdgeSemantics::exact_once;

    MemorySink mem;
    generate_chunked(cfg, 4, mem);
    mem.finish();

    const auto file = track(path("rgg2d.bin"));
    BinaryFileSink sink(file);
    generate_chunked(cfg, 4, sink);
    sink.finish();
    EXPECT_EQ(sink.num_edges(), mem.edges().size());

    // Replay the file: contents, order, and count must match the in-memory
    // reference bit for bit.
    MemorySink replay;
    EXPECT_EQ(io::stream_edge_list_binary(file, replay), mem.edges().size());
    EXPECT_EQ(replay.take(), mem.edges());

    CountingSink count(EdgeSemantics::exact_once);
    io::stream_edge_list_binary(file, count);
    count.finish();
    EXPECT_EQ(count.num_edges(), mem.edges().size());
}

TEST_F(ExactOnceFileTest, EmptyGraphRoundTrips) {
    Config cfg         = property_config(Model::GnmUndirected);
    cfg.m              = 0; // no edges at all
    cfg.edge_semantics = EdgeSemantics::exact_once;
    const auto file    = track(path("empty.bin"));
    BinaryFileSink sink(file);
    generate_chunked(cfg, 3, sink);
    sink.finish();
    EXPECT_EQ(sink.num_edges(), 0u);

    MemorySink replay;
    EXPECT_EQ(io::stream_edge_list_binary(file, replay), 0u);
    EXPECT_TRUE(replay.take().empty());
}

TEST_F(ExactOnceFileTest, SingleChunkRoundTrips) {
    // P = 1, K = 1: the filter owns everything, so exact_once must be the
    // unfiltered single-chunk stream — and survive the file round-trip.
    Config cfg        = property_config(Model::Rdg2D, 200);
    cfg.chunks_per_pe = 1;

    cfg.edge_semantics = EdgeSemantics::as_generated;
    MemorySink raw;
    generate_chunked(cfg, 1, raw);
    raw.finish();

    cfg.edge_semantics = EdgeSemantics::exact_once;
    const auto file = track(path("single.bin"));
    BinaryFileSink sink(file);
    generate_chunked(cfg, 1, sink);
    sink.finish();

    MemorySink replay;
    io::stream_edge_list_binary(file, replay);
    EXPECT_EQ(replay.take(), raw.edges());
}

// ---------------------------------------------------------------------------
// Composition with the non-facade sbm module
// ---------------------------------------------------------------------------

TEST(SbmOwnership, FilterComposesWithModuleLevelGenerate) {
    // The sbm module shares the undirected G(n,p) chunk geometry but is not
    // reachable through Config; the ownership layer still applies by
    // wrapping each rank's sink directly.
    const sbm::Params params = sbm::planted_partition(360, 4, 0.05, 0.004, 17);
    const u64 P              = 5;
    std::vector<EdgeList> raw, filtered;
    u64 filtered_total = 0;
    for (u64 r = 0; r < P; ++r) {
        raw.push_back(sbm::generate(params, r, P));
        MemorySink mem;
        OwnershipFilterSink filter(sbm::owned_vertex_range(params, r, P), mem);
        sbm::generate(params, r, P, filter);
        filter.finish();
        filtered.push_back(mem.take());
        filtered_total += filtered.back().size();
    }
    const EdgeList reference = pe::union_undirected(raw);
    EXPECT_GT(testing::duplicate_excess(raw), 0u) << "sbm must carry duplicates";
    EXPECT_TRUE(
        testing::total_matches_semantics(filtered_total, reference.size(), 0));
    EXPECT_EQ(pe::union_undirected(filtered), reference);
    EXPECT_EQ(testing::duplicate_excess(filtered), 0u);
}

// ---------------------------------------------------------------------------
// Classification sanity: the carries_duplicates table matches reality
// ---------------------------------------------------------------------------

TEST(Classification, DuplicateCarriersActuallyCarryDuplicates) {
    // Every model the facade filters must exhibit cross-chunk duplicates in
    // its legacy streams at this scale — otherwise the classification (and
    // the filter) would be dead code for it.
    for (const Model model : kDuplicateCarrying) {
        ASSERT_TRUE(carries_duplicates(model)) << model_name(model);
        Config cfg        = property_config(model);
        const auto legacy = legacy_per_chunk(cfg, 5);
        EXPECT_GT(testing::duplicate_excess(legacy), 0u) << model_name(model);
    }
    for (const Model model : kExactByConstruction) {
        ASSERT_FALSE(carries_duplicates(model)) << model_name(model);
        EXPECT_TRUE(owned_vertex_intervals(property_config(model), 0, 4).empty())
            << model_name(model);
    }
}

} // namespace
} // namespace kagen
