// Golden-file byte-identity: the v1 sampler stream is a *format*, not just
// a distribution — PR after PR may rearrange the engines, but the default
// (v1) output for a pinned (model, params, seed, rank, size) must never
// move by a single byte, or silently re-generated datasets stop matching
// published ones. These fixtures freeze small instances of the ER family
// and one geometric model; the byte-identity sweeps in test_er/test_dist
// cover self-consistency, this suite covers consistency *across commits*.
//
// Fixture format: u64 edge count, then count x (u64 u, u64 v), little
// endian, exactly as the edge list falls out of generate().
//
// Regeneration (only when intentionally changing the v1 stream, which is
// an API break and needs calling out in DESIGN.md):
//   KAGEN_GOLDEN_REGEN=1 ./build/test_golden
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "kagen.hpp"

namespace kagen {
namespace {

struct GoldenCase {
    const char* file;
    Model model;
    u64 n;
    u64 m;       // gnm models
    double p;    // gnp models
    double r;    // rgg models
    u64 seed;
    u64 rank;
    u64 size;
};

// Small on purpose: a few thousand edges pin the stream just as hard as a
// few million, and the fixtures live in git.
const GoldenCase kCases[] = {
    {"gnm_directed_n2048_m4096_s7_r0of2.bin", Model::GnmDirected, 2048, 4096,
     0.0, 0.0, 7, 0, 2},
    {"gnm_undirected_n2048_m4096_s7_r1of2.bin", Model::GnmUndirected, 2048,
     4096, 0.0, 0.0, 7, 1, 2},
    {"gnp_directed_n2048_p0.001_s11_r0of2.bin", Model::GnpDirected, 2048, 0,
     0.001, 0.0, 11, 0, 2},
    {"rgg2d_n4096_r0.02_s13_r0of2.bin", Model::Rgg2D, 4096, 0, 0.0, 0.02, 13,
     0, 2},
};

std::string golden_path(const char* file) {
    return std::string(GOLDEN_DIR) + "/" + file;
}

std::vector<unsigned char> serialize(const EdgeList& edges) {
    std::vector<unsigned char> bytes;
    bytes.reserve(8 + edges.size() * 16);
    const auto push_u64 = [&](u64 v) {
        for (int b = 0; b < 8; ++b) bytes.push_back((v >> (8 * b)) & 0xff);
    };
    push_u64(edges.size());
    for (const auto& [u, v] : edges) {
        push_u64(u);
        push_u64(v);
    }
    return bytes;
}

EdgeList generate_case(const GoldenCase& c) {
    Config cfg;
    cfg.model = c.model;
    cfg.n     = c.n;
    cfg.m     = c.m;
    cfg.p     = c.p;
    cfg.r     = c.r;
    cfg.seed  = c.seed;
    // sampler_version stays at the default: golden files pin v1.
    return generate(cfg, c.rank, c.size).edges;
}

class Golden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(Golden, ByteIdentical) {
    const GoldenCase c = GetParam();
    const auto bytes   = serialize(generate_case(c));
    ASSERT_GT(bytes.size(), 8u) << "fixture instance generated no edges";

    const std::string path = golden_path(c.file);
    if (std::getenv("KAGEN_GOLDEN_REGEN") != nullptr) {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr) << "cannot write " << path;
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
        std::fclose(f);
        GTEST_SKIP() << "regenerated " << path << " (" << bytes.size()
                     << " bytes)";
    }

    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << "missing fixture " << path
                          << " (run with KAGEN_GOLDEN_REGEN=1 to create)";
    std::vector<unsigned char> expect;
    unsigned char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
        expect.insert(expect.end(), buf, buf + got);
    }
    std::fclose(f);

    ASSERT_EQ(bytes.size(), expect.size())
        << c.file << ": edge count moved — the v1 stream changed";
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        ASSERT_EQ(bytes[i], expect[i])
            << c.file << ": first divergence at byte " << i
            << " — the v1 stream is no longer bit-identical";
    }
}

INSTANTIATE_TEST_SUITE_P(PinnedStreams, Golden, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<GoldenCase>& info) {
                             std::string name = info.param.file;
                             for (char& ch : name) {
                                 if (!std::isalnum(static_cast<unsigned char>(ch))) {
                                     ch = '_';
                                 }
                             }
                             return name;
                         });

} // namespace
} // namespace kagen
