// Hot-path scheduling + slab recycling (DESIGN.md §9, §14): arena-backed
// ChunkBufferPool units, recycled multi-worker ordered delivery
// (byte-identical to sequential, recycling engaged — including in
// bounded-memory mode, where released slabs decommit instead of the pool
// switching off), affinity-aware deal granularity (every task exactly
// once, group-aligned initial deal, identical output), and worker pinning.
// ctest label: pool (re-run under ASan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <vector>

#include "kagen.hpp"
#include "pe/chunk_pool.hpp"
#include "pe/pe.hpp"
#include "sink/sinks.hpp"

namespace kagen {
namespace {

EdgeList some_edges(u64 count, u64 salt = 0) {
    EdgeList edges;
    edges.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        edges.emplace_back((i * 7 + salt) % 101, (i * 31 + salt * 13 + 5) % 97);
    }
    return edges;
}

// ---------------------------------------------------------------------------
// ChunkBufferPool units
// ---------------------------------------------------------------------------

TEST(ChunkBufferPool, RecyclesSlabsAndCountsHits) {
    pe::ChunkBufferPool pool;

    pe::ChunkBuffer a = pool.acquire();
    EXPECT_EQ(pool.buffers_allocated(), 0u) << "no slab until first write";

    const EdgeList src = some_edges(1000);
    a.append(src.data(), src.size());
    EXPECT_EQ(pool.buffers_allocated(), 1u);
    EXPECT_EQ(pool.buffers_recycled(), 0u);
    const Edge* data = nullptr;
    a.for_each_segment([&](EdgeSpan seg) { data = seg.data; });
    ASSERT_NE(data, nullptr);
    pool.release(a);
    EXPECT_EQ(pool.buffers_retained(), 1u);

    pe::ChunkBuffer b = pool.acquire();
    b.append(src.data(), src.size());
    EXPECT_EQ(pool.buffers_recycled(), 1u);
    EXPECT_EQ(pool.buffers_allocated(), 1u) << "reuse must not map a new slab";
    const Edge* data2 = nullptr;
    b.for_each_segment([&](EdgeSpan seg) { data2 = seg.data; });
    EXPECT_EQ(data2, data) << "freelist must hand back the same slab";
}

TEST(ChunkBufferPool, FreelistHoldsAllReleasedSlabs) {
    // The arena has no retention cap: a released slab keeps its mapping on
    // the freelist for the lifetime of the arena (bounded-memory runs
    // decommit the payload pages instead of unmapping — see below).
    pe::ChunkBufferPool pool;
    const EdgeList src = some_edges(16);
    std::vector<pe::ChunkBuffer> bufs;
    for (int i = 0; i < 5; ++i) {
        pe::ChunkBuffer b = pool.acquire();
        b.append(src.data(), src.size());
        bufs.push_back(std::move(b));
    }
    for (auto& b : bufs) pool.release(b);
    EXPECT_EQ(pool.buffers_retained(), 5u);
    EXPECT_EQ(pool.buffers_allocated(), 5u);
}

TEST(ChunkBufferPool, DecommitModeStillRecycles) {
    // Bounded-memory mode: released slabs give their payload pages back to
    // the kernel but keep the mapping, so recycling stays on — the
    // pre-arena pool had to switch itself off here entirely.
    pe::ChunkBufferPool pool(0, /*populate=*/false, /*decommit_on_release=*/true);
    const EdgeList src = some_edges(8);
    pe::ChunkBuffer a  = pool.acquire();
    a.append(src.data(), src.size());
    pool.release(a);
    EXPECT_EQ(pool.buffers_retained(), 1u);

    pe::ChunkBuffer b = pool.acquire();
    b.append(src.data(), src.size());
    EXPECT_EQ(pool.buffers_recycled(), 1u);
    EXPECT_EQ(pool.buffers_allocated(), 1u);
    // The decommitted-and-reused payload must read back intact.
    u64 i = 0;
    b.for_each_segment([&](EdgeSpan seg) {
        for (const Edge& e : seg) EXPECT_EQ(e, src[i++]);
    });
    EXPECT_EQ(i, src.size());
}

TEST(ChunkBufferPool, UntouchedBuffersHoldNoSlab) {
    pe::ChunkBufferPool pool;
    pe::ChunkBuffer b = pool.acquire();
    EXPECT_EQ(b.slabs_held(), 0u);
    pool.release(b); // nothing to hand back
    EXPECT_EQ(pool.buffers_retained(), 0u);
    EXPECT_EQ(pool.buffers_allocated(), 0u);
}

// ---------------------------------------------------------------------------
// Recycled ordered delivery through pe::run_chunked
// ---------------------------------------------------------------------------

pe::ChunkFn chunk_fn() {
    return [](u64 chunk, u64 /*num_chunks*/, EdgeSink& sink) {
        for (const auto& e : some_edges(200 + (chunk * 53) % 300, chunk)) {
            sink.emit(e);
        }
    };
}

TEST(RecycledDelivery, MultiWorkerOutputMatchesSequentialAndRecycles) {
    constexpr u64 kChunks = 24;
    pe::ThreadPool pool(3);

    MemorySink ref_sink;
    pe::ChunkOptions seq;
    seq.num_pes      = kChunks;
    seq.total_chunks = kChunks;
    seq.threads      = 1;
    seq.pool         = &pool;
    pe::run_chunked(seq, chunk_fn(), ref_sink);
    const EdgeList reference = ref_sink.take();

    // Whoever delivers chunk 0 releases its slab before acquiring one for
    // its next chunk, so a run recycles unless that participant happened to
    // execute no further chunk — a steal schedule so extreme that three
    // attempts hitting it in a row indicates a real regression.
    u64 recycled = 0;
    for (int attempt = 0; attempt < 3 && recycled == 0; ++attempt) {
        pe::ChunkOptions opt = seq;
        opt.threads          = 4;
        MemorySink sink;
        const auto stats = pe::run_chunked(opt, chunk_fn(), sink);
        EXPECT_EQ(sink.take(), reference);
        // Every chunk here fits one slab, so exactly one slab per chunk.
        EXPECT_EQ(stats.buffers_recycled + stats.buffers_allocated, kChunks)
            << "every chunk binds exactly one slab";
        EXPECT_EQ(stats.arena_chains, 0u);
        recycled = stats.buffers_recycled;
    }
    EXPECT_GT(recycled, 0u) << "arena never recycled a slab";
}

TEST(RecycledDelivery, BoundedMemoryModeKeepsRecyclingAndPeakBound) {
    // Regression for the PR-5 special case this arena removed: bounded
    // runs used to disable the pool because retained vector capacity was
    // resident memory the budget accounting could not see. Slabs decommit
    // their payload pages on release instead (pe/arena.hpp), so recycling
    // stays on AND the documented budget + one-chunk peak bound still
    // holds exactly.
    constexpr u64 kChunks = 16;
    pe::ThreadPool pool(3);

    pe::ChunkOptions opt;
    opt.num_pes            = kChunks;
    opt.total_chunks       = kChunks;
    opt.threads            = 4;
    opt.pool               = &pool;
    opt.max_buffered_bytes = 64;

    MemorySink ref_sink;
    pe::ChunkOptions seq = opt;
    seq.threads          = 1;
    seq.max_buffered_bytes = 0;
    pe::run_chunked(seq, chunk_fn(), ref_sink);
    const EdgeList reference = ref_sink.take();

    u64 max_chunk_bytes = 0;
    for (u64 c = 0; c < kChunks; ++c) {
        max_chunk_bytes =
            std::max<u64>(max_chunk_bytes, (200 + (c * 53) % 300) * sizeof(Edge));
    }

    u64 recycled = 0;
    for (int attempt = 0; attempt < 3 && recycled == 0; ++attempt) {
        MemorySink sink;
        const auto stats = pe::run_chunked(opt, chunk_fn(), sink);
        EXPECT_EQ(sink.take(), reference);
        EXPECT_LE(stats.peak_buffered_bytes,
                  opt.max_buffered_bytes + max_chunk_bytes)
            << "budget + one chunk bound violated";
        recycled = stats.buffers_recycled;
    }
    EXPECT_GT(recycled, 0u) << "bounded mode must keep slab recycling on";
}

TEST(RecycledDelivery, SingleWorkerStreamsWithoutChunkBuffers) {
    // workers == 1 takes the direct-streaming path: no chunk buffers at
    // all, so both pool counters and the buffered-bytes peak stay zero.
    pe::ThreadPool pool(3);
    pe::ChunkOptions opt;
    opt.num_pes      = 8;
    opt.total_chunks = 8;
    opt.threads      = 1;
    opt.pool         = &pool;
    MemorySink sink;
    const auto stats = pe::run_chunked(opt, chunk_fn(), sink);
    EXPECT_EQ(stats.workers, 1u);
    EXPECT_EQ(stats.buffers_recycled, 0u);
    EXPECT_EQ(stats.buffers_allocated, 0u);
    EXPECT_EQ(stats.peak_buffered_bytes, 0u);
    EXPECT_EQ(sink.edges().size(), [&] {
        u64 total = 0;
        for (u64 c = 0; c < 8; ++c) total += 200 + (c * 53) % 300;
        return total;
    }());
}

// ---------------------------------------------------------------------------
// Affinity-aware deal granularity
// ---------------------------------------------------------------------------

TEST(AffinityDeal, EveryTaskRunsExactlyOnceForAnyGranularityAndPhase) {
    pe::ThreadPool pool(3);
    for (const u64 tasks : {u64{1}, u64{7}, u64{24}, u64{100}}) {
        for (const u64 granularity : {u64{0}, u64{1}, u64{3}, u64{4}, u64{64}}) {
            for (const u64 phase : {u64{0}, u64{1}, u64{2}}) {
                std::vector<std::atomic<u64>> hits(tasks);
                for (auto& h : hits) h.store(0);
                pool.parallel_for(
                    tasks, 0, [&](u64 t) { hits[t].fetch_add(1); }, granularity,
                    phase);
                for (u64 t = 0; t < tasks; ++t) {
                    EXPECT_EQ(hits[t].load(), 1u)
                        << "task " << t << " tasks=" << tasks
                        << " granularity=" << granularity << " phase=" << phase;
                }
            }
        }
    }
}

TEST(AffinityDeal, SubrangeRunsAnchorGroupsToAbsoluteChunkIds) {
    // A distributed rank's chunk subrange may start mid-group; the engine
    // must shift the task-space group grid so groups still align to
    // absolute chunk-id multiples of the granularity — and the output is
    // the exact slice either way.
    constexpr u64 kChunks = 30;
    pe::ThreadPool pool(3);

    MemorySink ref_sink;
    pe::ChunkOptions seq;
    seq.num_pes      = kChunks;
    seq.total_chunks = kChunks;
    seq.threads      = 1;
    seq.pool         = &pool;
    seq.chunk_begin  = 5; // not a multiple of the granularity below
    seq.chunk_end    = 29;
    pe::run_chunked(seq, chunk_fn(), ref_sink);

    pe::ChunkOptions opt = seq;
    opt.threads          = 4;
    opt.deal_granularity = 4;
    MemorySink sink;
    pe::run_chunked(opt, chunk_fn(), sink);
    EXPECT_EQ(sink.take(), ref_sink.take());
}

TEST(AffinityDeal, GranularityPreservesOrderedOutput) {
    constexpr u64 kChunks = 30;
    pe::ThreadPool pool(3);

    MemorySink ref_sink;
    pe::ChunkOptions seq;
    seq.num_pes      = kChunks;
    seq.total_chunks = kChunks;
    seq.threads      = 1;
    seq.pool         = &pool;
    pe::run_chunked(seq, chunk_fn(), ref_sink);
    const EdgeList reference = ref_sink.take();

    for (const u64 granularity : {u64{2}, u64{5}, u64{30}}) {
        pe::ChunkOptions opt  = seq;
        opt.threads           = 4;
        opt.deal_granularity  = granularity;
        MemorySink sink;
        pe::run_chunked(opt, chunk_fn(), sink);
        EXPECT_EQ(sink.take(), reference) << "granularity=" << granularity;
    }
}

TEST(AffinityDeal, GeometricModelsRequestChunkGroupDeal) {
    Config cfg;
    cfg.model         = Model::Rgg2D;
    cfg.chunks_per_pe = 4;
    EXPECT_EQ(chunk_deal_granularity(cfg), 4u);
    cfg.model = Model::Rdg3D;
    EXPECT_EQ(chunk_deal_granularity(cfg), 4u);
    cfg.model = Model::GnmDirected;
    EXPECT_EQ(chunk_deal_granularity(cfg), 1u)
        << "non-spatial models keep the plain deal";
    cfg.model         = Model::Rgg3D;
    cfg.chunks_per_pe = 0;
    EXPECT_EQ(chunk_deal_granularity(cfg), 1u);
}

// ---------------------------------------------------------------------------
// Worker pinning
// ---------------------------------------------------------------------------

TEST(PinWorkers, PinsOnceAndKeepsResultsCorrect) {
    pe::ThreadPool pool(3);
    const u64 pinned = pool.pin_workers();
#ifdef __linux__
    EXPECT_EQ(pinned, 3u);
#endif
    EXPECT_EQ(pool.pin_workers(), pinned) << "pin_workers must be idempotent";

    std::vector<std::atomic<u64>> hits(50);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(50, 0, [&](u64 t) { hits[t].fetch_add(1); });
    for (u64 t = 0; t < 50; ++t) EXPECT_EQ(hits[t].load(), 1u);
}

TEST(PinWorkers, PinnedChunkedRunMatchesUnpinned) {
    Config cfg;
    cfg.model         = Model::GnmUndirected;
    cfg.n             = 500;
    cfg.m             = 2500;
    cfg.seed          = 11;
    cfg.chunks_per_pe = 3;

    MemorySink plain;
    generate_chunked(cfg, 4, plain);

    cfg.pin_threads = true;
    pe::ThreadPool pool(3); // private pool: pinning the global one is sticky
    MemorySink pinned;
    generate_chunked(cfg, 4, pinned, /*threads=*/4, &pool);
    EXPECT_EQ(pinned.take(), plain.take());
}

} // namespace
} // namespace kagen
