// Barabási–Albert and R-MAT generators: PE-count invariance (the BA output
// is bit-identical for every P), preferential-attachment statistics,
// R-MAT quadrant distribution and skew.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ba/ba.hpp"
#include "graph/stats.hpp"
#include "pe/pe.hpp"
#include "rmat/rmat.hpp"
#include "testing.hpp"

namespace kagen {
namespace {

class BaPeCounts : public ::testing::TestWithParam<u64> {};

TEST_P(BaPeCounts, OutputIndependentOfPeCount) {
    const u64 P = GetParam();
    const ba::Params params{500, 3, 7};
    const EdgeList sequential = ba::generate(params, 0, 1);
    EdgeList combined;
    for (u64 rank = 0; rank < P; ++rank) {
        append(combined, ba::generate(params, rank, P));
    }
    EXPECT_EQ(combined, sequential) << "BA must be invariant under P";
}

INSTANTIATE_TEST_SUITE_P(PeCounts, BaPeCounts, ::testing::Values(2, 3, 8, 16));

TEST(Ba, ExactEdgeCountAndSources) {
    const ba::Params params{1000, 5, 3};
    const auto edges = ba::generate(params, 0, 1);
    ASSERT_EQ(edges.size(), params.n * params.degree);
    for (u64 v = 0; v < params.n; ++v) {
        for (u64 i = 0; i < params.degree; ++i) {
            EXPECT_EQ(edges[v * params.degree + i].first, v);
        }
    }
}

TEST(Ba, TargetsAreEarlierOrEqualVertices) {
    // Edge i of vertex v resolves through positions < 2(vd+i)+1, so the
    // target can never exceed v.
    const ba::Params params{2000, 4, 11};
    for (const auto& [v, target] : ba::generate(params, 0, 1)) {
        EXPECT_LE(target, v);
    }
}

TEST(Ba, ResolveIsDeterministic) {
    const ba::Params params{100, 2, 13};
    for (u64 pos = 0; pos < 400; ++pos) {
        EXPECT_EQ(ba::resolve(params, pos), ba::resolve(params, pos));
    }
    // Even positions decode directly.
    EXPECT_EQ(ba::resolve(params, 2 * 42), 42 / params.degree);
}

TEST(Ba, DegreeDistributionIsHeavyTailed) {
    // BB preferential attachment yields gamma ~ 3; at minimum the max
    // degree must far exceed the average and early vertices must dominate.
    const ba::Params params{50000, 4, 17};
    const auto edges = ba::generate(params, 0, 1);
    std::vector<u64> degs(params.n, 0);
    for (const auto& [u, v] : edges) {
        ++degs[u];
        ++degs[v];
    }
    const double avg = average_degree(degs);
    EXPECT_NEAR(avg, 2.0 * params.degree, 0.02 * avg);
    EXPECT_GT(max_degree(degs), static_cast<u64>(20 * avg));
    const double gamma = power_law_exponent_mle(degs, 20);
    EXPECT_NEAR(gamma, 3.0, 0.6);
    // The earliest decile must hold a disproportionate share of the degree.
    u128 early = 0, total = 0;
    for (u64 v = 0; v < params.n; ++v) {
        total += degs[v];
        if (v < params.n / 10) early += degs[v];
    }
    EXPECT_GT(static_cast<double>(early) / static_cast<double>(total), 0.2);
}

class RmatPeCounts : public ::testing::TestWithParam<u64> {};

TEST_P(RmatPeCounts, OutputIndependentOfPeCount) {
    const u64 P = GetParam();
    const rmat::Params params{10, 4000, 0.57, 0.19, 0.19, 5};
    const EdgeList sequential = rmat::generate(params, 0, 1);
    EdgeList combined;
    for (u64 rank = 0; rank < P; ++rank) {
        append(combined, rmat::generate(params, rank, P));
    }
    EXPECT_EQ(combined, sequential);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, RmatPeCounts, ::testing::Values(2, 5, 8, 32));

TEST(Rmat, EdgesWithinVertexRange) {
    const rmat::Params params{8, 10000, 0.57, 0.19, 0.19, 9};
    for (const auto& [u, v] : rmat::generate(params, 0, 1)) {
        EXPECT_LT(u, u64{1} << params.log_n);
        EXPECT_LT(v, u64{1} << params.log_n);
    }
}

TEST(Rmat, TopLevelQuadrantProportions) {
    // The first recursion level splits edges among quadrants with
    // probabilities (a, b, c, d); chi-square over the observed split.
    const rmat::Params params{12, 200000, 0.5, 0.2, 0.2, 21};
    const u64 half = u64{1} << (params.log_n - 1);
    std::vector<double> counts(4, 0.0);
    for (const auto& [u, v] : rmat::generate(params, 0, 1)) {
        const int q = (u >= half ? 2 : 0) + (v >= half ? 1 : 0);
        counts[q] += 1.0;
    }
    const double m = static_cast<double>(params.m);
    const std::vector<double> expected{0.5 * m, 0.2 * m, 0.2 * m, 0.1 * m};
    EXPECT_LT(testing::chi_square(counts, expected), testing::chi_square_critical(3));
}

TEST(Rmat, SkewedParametersProduceSkewedDegrees) {
    const rmat::Params params{14, 1u << 18, 0.57, 0.19, 0.19, 33};
    const auto edges = rmat::generate(params, 0, 1);
    const auto degs  = out_degrees(edges, u64{1} << params.log_n);
    const double avg = average_degree(degs);
    EXPECT_GT(max_degree(degs), static_cast<u64>(30 * avg))
        << "R-MAT with Graph500 parameters must produce heavy hubs";
}

TEST(Rmat, UniformParametersApproximateEr) {
    // a = b = c = d = 0.25 degenerates R-MAT to uniform edge sampling.
    const rmat::Params params{10, 100000, 0.25, 0.25, 0.25, 41};
    const auto edges = rmat::generate(params, 0, 1);
    const u64 n      = u64{1} << params.log_n;
    std::vector<double> row_counts(16, 0.0);
    for (const auto& e : edges) row_counts[e.first / (n / 16)] += 1.0;
    const std::vector<double> expected(16, static_cast<double>(params.m) / 16);
    EXPECT_LT(testing::chi_square(row_counts, expected),
              testing::chi_square_critical(15));
}

TEST(Rmat, EdgeAtMatchesGenerate) {
    const rmat::Params params{9, 500, 0.57, 0.19, 0.19, 55};
    const auto edges = rmat::generate(params, 0, 1);
    for (u64 i = 0; i < params.m; i += 37) {
        EXPECT_EQ(edges[i], rmat::edge_at(params, i));
    }
}

} // namespace
} // namespace kagen
