// Sampling without replacement: Floyd, Vitter (A + D), and the distributed
// divide-and-conquer chunk sampler (uniformity, determinism, PE-consistency).
#include <gtest/gtest.h>

#include <set>

#include "common/math.hpp"
#include "sampling/sampling.hpp"
#include "testing.hpp"

namespace kagen {
namespace {

TEST(FloydSample, DistinctInRangeCorrectCount) {
    Rng rng(1);
    for (u64 k : {u64{0}, u64{1}, u64{50}, u64{100}}) {
        const auto s = floyd_sample(rng, 100, k);
        EXPECT_EQ(s.size(), k);
        std::set<u64> set(s.begin(), s.end());
        EXPECT_EQ(set.size(), k);
        for (u64 x : s) EXPECT_LT(x, 100u);
    }
}

TEST(FloydSample, FullUniverse) {
    Rng rng(2);
    const auto s = floyd_sample(rng, 10, 10);
    std::set<u64> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), 10u);
}

TEST(FloydSample, UniformInclusion) {
    Rng rng(3);
    constexpr u64 kUniverse = 40, kK = 10, kRuns = 40000;
    std::vector<double> hits(kUniverse, 0.0);
    for (u64 r = 0; r < kRuns; ++r) {
        for (u64 x : floyd_sample(rng, kUniverse, kK)) hits[x] += 1.0;
    }
    const std::vector<double> expected(kUniverse, kRuns * static_cast<double>(kK) / kUniverse);
    EXPECT_LT(testing::chi_square(hits, expected),
              testing::chi_square_critical(kUniverse - 1));
}

struct SortedCase {
    u64 universe;
    u64 k;
};

class SortedSample : public ::testing::TestWithParam<SortedCase> {};

TEST_P(SortedSample, SortedDistinctInRange) {
    const auto [universe, k] = GetParam();
    Rng rng(7);
    std::vector<u64> out;
    sorted_sample(rng, universe, k, [&](u64 x) { out.push_back(x); });
    ASSERT_EQ(out.size(), k);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_LT(out[i], universe);
        if (i > 0) {
            EXPECT_LT(out[i - 1], out[i]); // strictly increasing
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Spectrum, SortedSample,
    ::testing::Values(SortedCase{10, 0},                    // empty
                      SortedCase{10, 10},                   // everything
                      SortedCase{1u << 20, 5},              // sparse, Method D
                      SortedCase{1u << 20, 1u << 10},       // Method D
                      SortedCase{1000, 400},                // dense, Method A
                      SortedCase{1000, 999},                // nearly everything
                      SortedCase{u64{1} << 45, 2000},       // huge universe
                      SortedCase{1, 1}                      // singleton
                      ));

TEST(SortedSampleStat, UniformInclusionSparse) {
    // Method D path: bucket the universe; inclusion counts must be uniform.
    Rng rng(11);
    constexpr u64 kUniverse = 100000, kK = 500, kRuns = 800, kBuckets = 50;
    std::vector<double> hits(kBuckets, 0.0);
    for (u64 r = 0; r < kRuns; ++r) {
        sorted_sample(rng, kUniverse, kK,
                      [&](u64 x) { hits[x / (kUniverse / kBuckets)] += 1.0; });
    }
    const std::vector<double> expected(
        kBuckets, static_cast<double>(kRuns * kK) / kBuckets);
    EXPECT_LT(testing::chi_square(hits, expected),
              testing::chi_square_critical(kBuckets - 1));
}

TEST(SortedSampleStat, UniformInclusionDense) {
    // Method A path (k/universe > 1/13).
    Rng rng(13);
    constexpr u64 kUniverse = 200, kK = 60, kRuns = 20000;
    std::vector<double> hits(kUniverse, 0.0);
    for (u64 r = 0; r < kRuns; ++r) {
        sorted_sample(rng, kUniverse, kK, [&](u64 x) { hits[x] += 1.0; });
    }
    const std::vector<double> expected(
        kUniverse, static_cast<double>(kRuns) * kK / kUniverse);
    EXPECT_LT(testing::chi_square(hits, expected),
              testing::chi_square_critical(kUniverse - 1));
}

TEST(SortedSampleStat, FirstElementDistribution) {
    // P(min sample = s) has a known closed form; spot-check the head mass:
    // P(min = 0) = k / universe.
    Rng rng(17);
    constexpr u64 kUniverse = 1000, kK = 10, kRuns = 50000;
    u64 zero_first = 0;
    for (u64 r = 0; r < kRuns; ++r) {
        bool first = true;
        sorted_sample(rng, kUniverse, kK, [&](u64 x) {
            if (first && x == 0) ++zero_first;
            first = false;
        });
    }
    const double p   = static_cast<double>(kK) / kUniverse;
    const double tol = 6 * std::sqrt(p * (1 - p) / kRuns);
    EXPECT_NEAR(static_cast<double>(zero_first) / kRuns, p, tol);
}

TEST(ChunkedSampler, CountsSumToTotal) {
    for (u64 chunks : {u64{1}, u64{2}, u64{7}, u64{16}}) {
        ChunkedSampler sampler(99, make_row_universe(1000, chunks, 999), 5000);
        u64 total = 0;
        for (u64 c = 0; c < chunks; ++c) total += sampler.samples_in_chunk(c);
        EXPECT_EQ(total, 5000u) << chunks << " chunks";
    }
}

TEST(ChunkedSampler, DeterministicAcrossInstances) {
    const auto uni = make_row_universe(512, 8, 511);
    ChunkedSampler a(123, uni, 4096);
    ChunkedSampler b(123, uni, 4096);
    for (u64 c = 0; c < 8; ++c) {
        EXPECT_EQ(a.samples_in_chunk(c), b.samples_in_chunk(c));
        std::vector<u64> sa, sb;
        a.sample_chunk(c, [&](u64 x) { sa.push_back(x); });
        b.sample_chunk(c, [&](u64 x) { sb.push_back(x); });
        EXPECT_EQ(sa, sb);
    }
}

TEST(ChunkedSampler, SamplesAreDistinctWithinChunkAndCorrectlySized) {
    ChunkedSampler sampler(5, make_row_universe(100, 4, 99), 2000);
    for (u64 c = 0; c < 4; ++c) {
        const u64 expect = sampler.samples_in_chunk(c);
        std::set<u64> seen;
        u64 count = 0;
        const u128 chunk_size = make_row_universe(100, 4, 99).chunk_size(c);
        sampler.sample_chunk(c, [&](u64 x) {
            EXPECT_LT(static_cast<u128>(x), chunk_size);
            seen.insert(x);
            ++count;
        });
        EXPECT_EQ(count, expect);
        EXPECT_EQ(seen.size(), count);
    }
}

TEST(ChunkedSampler, ChunkCountsAreHypergeometric) {
    // With two equal chunks, the left count is Hypergeometric(N, N/2, m).
    constexpr u64 kRuns = 4000;
    constexpr u64 kM    = 64;
    double sum = 0.0;
    for (u64 seed = 0; seed < kRuns; ++seed) {
        ChunkedSampler sampler(seed, make_row_universe(128, 2, 100), kM);
        sum += static_cast<double>(sampler.samples_in_chunk(0));
    }
    const double mean = sum / kRuns;
    // mean = m/2, var = m * (1/2)(1/2) * (N-m)/(N-1) ~ 16 * 0.995
    const double tol = 6 * std::sqrt(16.0 / kRuns);
    EXPECT_NEAR(mean, kM / 2.0, tol);
}

TEST(ChunkedSampler, UnevenChunkSizesRespected) {
    // 10 rows in 3 chunks: blocks of 4, 3, 3 rows.
    const auto uni = make_row_universe(10, 3, 7);
    EXPECT_EQ(static_cast<u64>(uni.chunk_size(0)), 4u * 7);
    EXPECT_EQ(static_cast<u64>(uni.chunk_size(1)), 3u * 7);
    EXPECT_EQ(static_cast<u64>(uni.range_size(0, 3)), 70u);
    ChunkedSampler sampler(1, uni, 70); // saturate: every slot sampled
    for (u64 c = 0; c < 3; ++c) {
        EXPECT_EQ(sampler.samples_in_chunk(c), static_cast<u64>(uni.chunk_size(c)));
    }
}

TEST(MathHelpers, TriangleInversionRoundTrip) {
    for (u64 k = 0; k < 5000; ++k) {
        const u64 r = triangle_row(k);
        EXPECT_LE(triangle(r), static_cast<u128>(k));
        EXPECT_GT(triangle(r + 1), static_cast<u128>(k));
    }
    // Large values near 2^80.
    const u128 big = (static_cast<u128>(1) << 80) + 12345;
    const u64 r    = triangle_row(big);
    EXPECT_LE(triangle(r), big);
    EXPECT_GT(triangle(static_cast<u128>(r) + 1), big);
}

TEST(MathHelpers, BlockPartitionCoversExactly) {
    for (u64 n : {u64{1}, u64{10}, u64{17}, u64{1000}}) {
        for (u64 parts : {u64{1}, u64{3}, u64{7}}) {
            u64 covered = 0;
            for (u64 p = 0; p < parts; ++p) covered += block_size(n, parts, p);
            EXPECT_EQ(covered, n);
            for (u64 i = 0; i < n; ++i) {
                const u64 owner = block_owner(n, parts, i);
                EXPECT_GE(i, block_begin(n, parts, owner));
                EXPECT_LT(i, block_begin(n, parts, owner + 1));
            }
        }
    }
}

TEST(MathHelpers, Isqrt) {
    EXPECT_EQ(isqrt(0), 0u);
    EXPECT_EQ(isqrt(1), 1u);
    EXPECT_EQ(isqrt(15), 3u);
    EXPECT_EQ(isqrt(16), 4u);
    const u128 x = (static_cast<u128>(1) << 90) - 1;
    const u128 r = isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
}

} // namespace
} // namespace kagen
