// Sampling without replacement: Floyd, Vitter (A + D), and the distributed
// divide-and-conquer chunk sampler (uniformity, determinism, PE-consistency).
// The SamplerV2* and BernoulliSample suites are the acceptance gate of the
// v2 engine (DESIGN.md §10): v2 makes no byte promise, so these pin its
// *distribution* — exact first-skip law (chi-square + KS), uniform
// inclusion, hypergeometric split consistency, and the geometric gap law
// of the Bernoulli fast path.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/math.hpp"
#include "sampling/sampling.hpp"
#include "testing.hpp"

namespace kagen {
namespace {

TEST(FloydSample, DistinctInRangeCorrectCount) {
    Rng rng(1);
    for (u64 k : {u64{0}, u64{1}, u64{50}, u64{100}}) {
        const auto s = floyd_sample(rng, 100, k);
        EXPECT_EQ(s.size(), k);
        std::set<u64> set(s.begin(), s.end());
        EXPECT_EQ(set.size(), k);
        for (u64 x : s) EXPECT_LT(x, 100u);
    }
}

TEST(FloydSample, FullUniverse) {
    Rng rng(2);
    const auto s = floyd_sample(rng, 10, 10);
    std::set<u64> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), 10u);
}

TEST(FloydSample, UniformInclusion) {
    Rng rng(3);
    constexpr u64 kUniverse = 40, kK = 10, kRuns = 40000;
    std::vector<double> hits(kUniverse, 0.0);
    for (u64 r = 0; r < kRuns; ++r) {
        for (u64 x : floyd_sample(rng, kUniverse, kK)) hits[x] += 1.0;
    }
    const std::vector<double> expected(kUniverse, kRuns * static_cast<double>(kK) / kUniverse);
    EXPECT_LT(testing::chi_square(hits, expected),
              testing::chi_square_critical(kUniverse - 1));
}

struct SortedCase {
    u64 universe;
    u64 k;
};

class SortedSample : public ::testing::TestWithParam<SortedCase> {};

TEST_P(SortedSample, SortedDistinctInRange) {
    const auto [universe, k] = GetParam();
    Rng rng(7);
    std::vector<u64> out;
    sorted_sample(rng, universe, k, [&](u64 x) { out.push_back(x); });
    ASSERT_EQ(out.size(), k);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_LT(out[i], universe);
        if (i > 0) {
            EXPECT_LT(out[i - 1], out[i]); // strictly increasing
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Spectrum, SortedSample,
    ::testing::Values(SortedCase{10, 0},                    // empty
                      SortedCase{10, 10},                   // everything
                      SortedCase{1u << 20, 5},              // sparse, Method D
                      SortedCase{1u << 20, 1u << 10},       // Method D
                      SortedCase{1000, 400},                // dense, Method A
                      SortedCase{1000, 999},                // nearly everything
                      SortedCase{u64{1} << 45, 2000},       // huge universe
                      SortedCase{1, 1}                      // singleton
                      ));

TEST(SortedSampleStat, UniformInclusionSparse) {
    // Method D path: bucket the universe; inclusion counts must be uniform.
    Rng rng(11);
    constexpr u64 kUniverse = 100000, kK = 500, kRuns = 800, kBuckets = 50;
    std::vector<double> hits(kBuckets, 0.0);
    for (u64 r = 0; r < kRuns; ++r) {
        sorted_sample(rng, kUniverse, kK,
                      [&](u64 x) { hits[x / (kUniverse / kBuckets)] += 1.0; });
    }
    const std::vector<double> expected(
        kBuckets, static_cast<double>(kRuns * kK) / kBuckets);
    EXPECT_LT(testing::chi_square(hits, expected),
              testing::chi_square_critical(kBuckets - 1));
}

TEST(SortedSampleStat, UniformInclusionDense) {
    // Method A path (k/universe > 1/13).
    Rng rng(13);
    constexpr u64 kUniverse = 200, kK = 60, kRuns = 20000;
    std::vector<double> hits(kUniverse, 0.0);
    for (u64 r = 0; r < kRuns; ++r) {
        sorted_sample(rng, kUniverse, kK, [&](u64 x) { hits[x] += 1.0; });
    }
    const std::vector<double> expected(
        kUniverse, static_cast<double>(kRuns) * kK / kUniverse);
    EXPECT_LT(testing::chi_square(hits, expected),
              testing::chi_square_critical(kUniverse - 1));
}

TEST(SortedSampleStat, FirstElementDistribution) {
    // P(min sample = s) has a known closed form; spot-check the head mass:
    // P(min = 0) = k / universe.
    Rng rng(17);
    constexpr u64 kUniverse = 1000, kK = 10, kRuns = 50000;
    u64 zero_first = 0;
    for (u64 r = 0; r < kRuns; ++r) {
        bool first = true;
        sorted_sample(rng, kUniverse, kK, [&](u64 x) {
            if (first && x == 0) ++zero_first;
            first = false;
        });
    }
    const double p   = static_cast<double>(kK) / kUniverse;
    const double tol = 6 * std::sqrt(p * (1 - p) / kRuns);
    EXPECT_NEAR(static_cast<double>(zero_first) / kRuns, p, tol);
}

TEST_P(SortedSample, V2SortedDistinctInRange) {
    const auto [universe, k] = GetParam();
    Rng rng(7);
    std::vector<u64> out;
    sorted_sample(rng, universe, k, [&](u64 x) { out.push_back(x); },
                  SamplerVersion::v2);
    ASSERT_EQ(out.size(), k);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_LT(out[i], universe);
        if (i > 0) {
            EXPECT_LT(out[i - 1], out[i]); // strictly increasing
        }
    }
}

TEST(SamplerV2Stat, DeterministicGivenRngState) {
    for (u64 seed : {u64{1}, u64{42}, u64{0xdeadULL}}) {
        Rng a(seed), b(seed);
        std::vector<u64> sa, sb;
        sorted_sample(a, u64{1} << 24, 4096, [&](u64 x) { sa.push_back(x); },
                      SamplerVersion::v2);
        sorted_sample(b, u64{1} << 24, 4096, [&](u64 x) { sb.push_back(x); },
                      SamplerVersion::v2);
        EXPECT_EQ(sa, sb);
    }
}

TEST(SamplerV2Stat, UniformInclusionSparse) {
    // v2 Method D path: bucketed inclusion counts must be uniform — the
    // same gate the v1 engine passes above.
    Rng rng(11);
    constexpr u64 kUniverse = 100000, kK = 500, kRuns = 800, kBuckets = 50;
    std::vector<double> hits(kBuckets, 0.0);
    for (u64 r = 0; r < kRuns; ++r) {
        sorted_sample(rng, kUniverse, kK,
                      [&](u64 x) { hits[x / (kUniverse / kBuckets)] += 1.0; },
                      SamplerVersion::v2);
    }
    const std::vector<double> expected(
        kBuckets, static_cast<double>(kRuns * kK) / kBuckets);
    EXPECT_LT(testing::chi_square(hits, expected),
              testing::chi_square_critical(kBuckets - 1));
}

// log C(a, b) via lgamma — exact reference for the skip laws below.
double log_choose(double a, double b) {
    return std::lgamma(a + 1) - std::lgamma(b + 1) - std::lgamma(a - b + 1);
}

TEST(SamplerV2Stat, MethodDFirstSkipChiSquare) {
    // The first Method-D skip has the exact law
    //   P(skip = s) = C(n-1-s, k-1) / C(n, k),   s in [0, n-k],
    // which exercises the whole v2 acceptance pipeline (proposal from the
    // batched exponentials, quick-accept kernels, lgamma D4). Any bias in
    // the fast-math contractions would surface here scaled by ~sqrt(runs).
    constexpr u64 kN = 4096, kK = 8, kRuns = 60000;
    std::map<u64, u64> hist;
    for (u64 r = 0; r < kRuns; ++r) {
        Rng rng(r * 2654435761u + 17);
        bool first = true;
        sorted_sample(rng, kN, kK,
                      [&](u64 x) {
                          if (first) ++hist[x];
                          first = false;
                      },
                      SamplerVersion::v2);
    }
    const double log_total = log_choose(kN, kK);
    std::vector<double> pmf(kN - kK + 1);
    for (u64 s = 0; s <= kN - kK; ++s) {
        pmf[s] = std::exp(log_choose(kN - 1.0 - static_cast<double>(s), kK - 1.0) -
                          log_total);
    }
    const auto r = testing::binned_chi_square(hist, pmf, 0, kRuns);
    ASSERT_GT(r.df, 10.0);
    EXPECT_LT(r.statistic, testing::chi_square_critical(r.df));
}

TEST(SamplerV2Stat, PositionsKSAgainstExactCdf) {
    // Two KS gates on the Method-D regime:
    //  (a) the first-position CDF, P(min <= s) = 1 - C(n-1-s, k)/C(n, k),
    //      iid across runs — a sensitive tail test of the skip law;
    //  (b) all emitted positions pooled vs the uniform marginal (each
    //      element of a uniform k-subset is marginally uniform; the
    //      within-run negative dependence only shrinks the statistic, so
    //      the iid threshold is conservative).
    constexpr u64 kN = u64{1} << 20, kK = 64, kRuns = 500;
    std::vector<double> firsts;
    std::vector<double> pooled;
    for (u64 r = 0; r < kRuns; ++r) {
        Rng rng(r * 40503u + 7);
        bool first = true;
        sorted_sample(rng, kN, kK,
                      [&](u64 x) {
                          if (first) firsts.push_back(static_cast<double>(x));
                          first = false;
                          pooled.push_back(static_cast<double>(x));
                      },
                      SamplerVersion::v2);
    }
    const double log_total = log_choose(static_cast<double>(kN), static_cast<double>(kK));
    const auto first_cdf   = [&](double s) {
        const double rest = static_cast<double>(kN) - 1.0 - std::floor(s);
        if (rest < static_cast<double>(kK)) return 1.0;
        return 1.0 - std::exp(log_choose(rest, static_cast<double>(kK)) - log_total);
    };
    EXPECT_LT(testing::ks_statistic(firsts, first_cdf),
              testing::ks_critical(firsts.size()));
    const auto uniform_cdf = [&](double s) {
        return (std::floor(s) + 1.0) / static_cast<double>(kN);
    };
    EXPECT_LT(testing::ks_statistic(pooled, uniform_cdf),
              testing::ks_critical(pooled.size()));
}

TEST(SamplerV2Stat, HypergeometricSplitConsistency) {
    // The ChunkedSampler count layer is engine-agnostic: v1 and v2 must
    // agree exactly on how many samples each chunk receives (the split is
    // decided before any within-chunk engine runs), and the v2 within-chunk
    // output must be a valid sorted sample of the advertised size.
    for (u64 chunks : {u64{2}, u64{5}, u64{16}}) {
        const auto uni = make_row_universe(4096, chunks, 4095);
        ChunkedSampler sampler(2024, uni, 60000);
        u64 total = 0;
        for (u64 c = 0; c < chunks; ++c) {
            const u64 expect = sampler.samples_in_chunk(c);
            total += expect;
            std::vector<u64> v1_out, v2_out;
            sampler.sample_chunk(c, [&](u64 x) { v1_out.push_back(x); },
                                 SamplerVersion::v1);
            sampler.sample_chunk(c, [&](u64 x) { v2_out.push_back(x); },
                                 SamplerVersion::v2);
            // Same count layer: identical sizes. Different engines:
            // positions may differ, but both are sorted, distinct, in-range.
            ASSERT_EQ(v1_out.size(), expect);
            ASSERT_EQ(v2_out.size(), expect);
            const u128 size = uni.chunk_size(c);
            for (std::size_t i = 0; i < v2_out.size(); ++i) {
                EXPECT_LT(static_cast<u128>(v2_out[i]), size);
                if (i > 0) EXPECT_LT(v2_out[i - 1], v2_out[i]);
            }
        }
        EXPECT_EQ(total, 60000u) << chunks << " chunks";
    }
}

TEST(SamplerV2Stat, ChunkSplitIsHypergeometricUnderV2) {
    // Statistical side of the split consistency: with two equal chunks the
    // left count is Hypergeometric(N, N/2, m) regardless of engine; verify
    // the *v2-sampled* chunk emits exactly that many samples run over run.
    constexpr u64 kRuns = 2000;
    constexpr u64 kM    = 64;
    double sum = 0.0;
    for (u64 seed = 0; seed < kRuns; ++seed) {
        ChunkedSampler sampler(seed, make_row_universe(128, 2, 100), kM);
        u64 emitted = 0;
        sampler.sample_chunk(0, [&](u64) { ++emitted; }, SamplerVersion::v2);
        EXPECT_EQ(emitted, sampler.samples_in_chunk(0));
        sum += static_cast<double>(emitted);
    }
    const double mean = sum / kRuns;
    const double tol  = 6 * std::sqrt(16.0 / kRuns);
    EXPECT_NEAR(mean, kM / 2.0, tol);
}

TEST(BernoulliSample, EdgeCases) {
    Rng rng(1);
    u64 count = 0;
    bernoulli_sample(rng, 0, 0.5, [&](u64) { ++count; });
    EXPECT_EQ(count, 0u);
    bernoulli_sample(rng, 100, 0.0, [&](u64) { ++count; });
    EXPECT_EQ(count, 0u);
    std::vector<u64> all;
    bernoulli_sample(rng, 100, 1.0, [&](u64 x) { all.push_back(x); });
    ASSERT_EQ(all.size(), 100u);
    for (u64 i = 0; i < 100; ++i) EXPECT_EQ(all[i], i);
}

TEST(BernoulliSample, SortedDistinctInRangeAndDeterministic) {
    Rng a(99), b(99);
    std::vector<u64> sa, sb;
    bernoulli_sample(a, u64{1} << 22, 0.001, [&](u64 x) { sa.push_back(x); });
    bernoulli_sample(b, u64{1} << 22, 0.001, [&](u64 x) { sb.push_back(x); });
    EXPECT_EQ(sa, sb);
    ASSERT_FALSE(sa.empty());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_LT(sa[i], u64{1} << 22);
        if (i > 0) EXPECT_LT(sa[i - 1], sa[i]);
    }
}

TEST(BernoulliSample, GapLawIsGeometric) {
    // Successive gaps of the geometric-skip stream are iid with
    // P(gap = s) = (1-p)^s * p — the defining property that makes the
    // fast path *exactly* a Bernoulli(p) process and not an approximation.
    Rng rng(7);
    constexpr double kP     = 0.01;
    constexpr u64 kUniverse = u64{1} << 24;
    std::map<u64, u64> gaps;
    u64 prev = 0, count = 0;
    bool first = true;
    bernoulli_sample(rng, kUniverse, kP, [&](u64 x) {
        const u64 gap = first ? x : x - prev - 1;
        first         = false;
        prev          = x;
        ++gaps[gap];
        ++count;
    });
    ASSERT_GT(count, 100000u);
    // Geometric pmf truncated where expected counts fall below ~1.
    const std::size_t support = static_cast<std::size_t>(12.0 / kP);
    std::vector<double> pmf(support);
    for (std::size_t s = 0; s < support; ++s) {
        pmf[s] = std::pow(1.0 - kP, static_cast<double>(s)) * kP;
    }
    const auto r = testing::binned_chi_square(gaps, pmf, 0, count);
    ASSERT_GT(r.df, 20.0);
    EXPECT_LT(r.statistic, testing::chi_square_critical(r.df));
}

TEST(BernoulliSample, CountMatchesBinomialMoments) {
    // Number emitted over N slots ~ Binomial(N, p).
    constexpr u64 kUniverse = 200000;
    constexpr double kP     = 0.005;
    constexpr u64 kRuns     = 500;
    double sum = 0.0, sum_sq = 0.0;
    for (u64 r = 0; r < kRuns; ++r) {
        Rng rng(r * 7919u + 3);
        u64 c = 0;
        bernoulli_sample(rng, kUniverse, kP, [&](u64) { ++c; });
        const double x = static_cast<double>(c);
        sum += x;
        sum_sq += x * x;
    }
    const double mean     = sum / kRuns;
    const double var      = sum_sq / kRuns - mean * mean;
    const double exp_mean = kUniverse * kP;
    const double exp_var  = exp_mean * (1 - kP);
    EXPECT_NEAR(mean, exp_mean, 6 * std::sqrt(exp_var / kRuns));
    EXPECT_NEAR(var, exp_var, 0.25 * exp_var);
}

TEST(ChunkedSampler, CountsSumToTotal) {
    for (u64 chunks : {u64{1}, u64{2}, u64{7}, u64{16}}) {
        ChunkedSampler sampler(99, make_row_universe(1000, chunks, 999), 5000);
        u64 total = 0;
        for (u64 c = 0; c < chunks; ++c) total += sampler.samples_in_chunk(c);
        EXPECT_EQ(total, 5000u) << chunks << " chunks";
    }
}

TEST(ChunkedSampler, DeterministicAcrossInstances) {
    const auto uni = make_row_universe(512, 8, 511);
    ChunkedSampler a(123, uni, 4096);
    ChunkedSampler b(123, uni, 4096);
    for (u64 c = 0; c < 8; ++c) {
        EXPECT_EQ(a.samples_in_chunk(c), b.samples_in_chunk(c));
        std::vector<u64> sa, sb;
        a.sample_chunk(c, [&](u64 x) { sa.push_back(x); });
        b.sample_chunk(c, [&](u64 x) { sb.push_back(x); });
        EXPECT_EQ(sa, sb);
    }
}

TEST(ChunkedSampler, SamplesAreDistinctWithinChunkAndCorrectlySized) {
    ChunkedSampler sampler(5, make_row_universe(100, 4, 99), 2000);
    for (u64 c = 0; c < 4; ++c) {
        const u64 expect = sampler.samples_in_chunk(c);
        std::set<u64> seen;
        u64 count = 0;
        const u128 chunk_size = make_row_universe(100, 4, 99).chunk_size(c);
        sampler.sample_chunk(c, [&](u64 x) {
            EXPECT_LT(static_cast<u128>(x), chunk_size);
            seen.insert(x);
            ++count;
        });
        EXPECT_EQ(count, expect);
        EXPECT_EQ(seen.size(), count);
    }
}

TEST(ChunkedSampler, ChunkCountsAreHypergeometric) {
    // With two equal chunks, the left count is Hypergeometric(N, N/2, m).
    constexpr u64 kRuns = 4000;
    constexpr u64 kM    = 64;
    double sum = 0.0;
    for (u64 seed = 0; seed < kRuns; ++seed) {
        ChunkedSampler sampler(seed, make_row_universe(128, 2, 100), kM);
        sum += static_cast<double>(sampler.samples_in_chunk(0));
    }
    const double mean = sum / kRuns;
    // mean = m/2, var = m * (1/2)(1/2) * (N-m)/(N-1) ~ 16 * 0.995
    const double tol = 6 * std::sqrt(16.0 / kRuns);
    EXPECT_NEAR(mean, kM / 2.0, tol);
}

TEST(ChunkedSampler, UnevenChunkSizesRespected) {
    // 10 rows in 3 chunks: blocks of 4, 3, 3 rows.
    const auto uni = make_row_universe(10, 3, 7);
    EXPECT_EQ(static_cast<u64>(uni.chunk_size(0)), 4u * 7);
    EXPECT_EQ(static_cast<u64>(uni.chunk_size(1)), 3u * 7);
    EXPECT_EQ(static_cast<u64>(uni.range_size(0, 3)), 70u);
    ChunkedSampler sampler(1, uni, 70); // saturate: every slot sampled
    for (u64 c = 0; c < 3; ++c) {
        EXPECT_EQ(sampler.samples_in_chunk(c), static_cast<u64>(uni.chunk_size(c)));
    }
}

TEST(MathHelpers, TriangleInversionRoundTrip) {
    for (u64 k = 0; k < 5000; ++k) {
        const u64 r = triangle_row(k);
        EXPECT_LE(triangle(r), static_cast<u128>(k));
        EXPECT_GT(triangle(r + 1), static_cast<u128>(k));
    }
    // Large values near 2^80.
    const u128 big = (static_cast<u128>(1) << 80) + 12345;
    const u64 r    = triangle_row(big);
    EXPECT_LE(triangle(r), big);
    EXPECT_GT(triangle(static_cast<u128>(r) + 1), big);
}

TEST(MathHelpers, BlockPartitionCoversExactly) {
    for (u64 n : {u64{1}, u64{10}, u64{17}, u64{1000}}) {
        for (u64 parts : {u64{1}, u64{3}, u64{7}}) {
            u64 covered = 0;
            for (u64 p = 0; p < parts; ++p) covered += block_size(n, parts, p);
            EXPECT_EQ(covered, n);
            for (u64 i = 0; i < n; ++i) {
                const u64 owner = block_owner(n, parts, i);
                EXPECT_GE(i, block_begin(n, parts, owner));
                EXPECT_LT(i, block_begin(n, parts, owner + 1));
            }
        }
    }
}

TEST(MathHelpers, Isqrt) {
    EXPECT_EQ(isqrt(0), 0u);
    EXPECT_EQ(isqrt(1), 1u);
    EXPECT_EQ(isqrt(15), 3u);
    EXPECT_EQ(isqrt(16), 4u);
    const u128 x = (static_cast<u128>(1) << 90) - 1;
    const u128 r = isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
}

} // namespace
} // namespace kagen
