// Distributed backend: multi-process byte-identity against the in-process
// chunked engine, merged-stats exactness, worker failure propagation (no
// hang, no partial files), chunk-range scheduling, and the O_CLOEXEC
// descriptor hygiene that keeps exec'd children off the coordinator's
// files.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "graph/io.hpp"
#include "kagen.hpp"
#include "sink/spill.hpp"

namespace kagen {
namespace {

std::string tmp_path(const std::string& name) {
    return ::testing::TempDir() + "kagen_dist_" + std::to_string(::getpid()) +
           "_" + name;
}

std::string read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

bool file_exists(const std::string& path) {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

Config model_config(Model model) {
    Config cfg;
    cfg.model = model;
    cfg.n     = 1500;
    cfg.seed  = 7;
    switch (model) {
        case Model::GnmDirected:
        case Model::GnmUndirected:
            cfg.m = 9000;
            break;
        case Model::Rgg2D:
            cfg.r = 0.05;
            break;
        case Model::Rhg:
        case Model::RhgStreaming:
            cfg.avg_deg = 6.0;
            cfg.gamma   = 2.8;
            break;
        default:
            break;
    }
    return cfg;
}

/// Single-process reference: generate_chunked into a BinaryFileSink.
std::string single_process_file(const Config& cfg, u64 pes, const std::string& tag) {
    const std::string path = tmp_path(tag + ".ref.bin");
    BinaryFileSink sink(path);
    generate_chunked(cfg, pes, sink);
    sink.finish();
    return path;
}

// ---------------------------------------------------------------------------
// Byte-identity: multi-process output == single-process output
// ---------------------------------------------------------------------------

class DistByteIdentity : public ::testing::TestWithParam<Model> {};

// The acceptance matrix of the subsystem: >= 3 models x ranks {1, 2, 4} x
// K {1, 3}, merged file byte-identical to the single-process chunked run.
TEST_P(DistByteIdentity, MatchesSingleProcessAcrossRanksAndK) {
    const Model model = GetParam();
    const u64 pes     = 4; // decomposition P, shared by both sides
    for (const u64 k : {u64{1}, u64{3}}) {
        Config cfg        = model_config(model);
        cfg.chunks_per_pe = k;
        const std::string tag =
            std::string(model_name(model)) + "_k" + std::to_string(k);
        const std::string ref_path = single_process_file(cfg, pes, tag);
        const std::string ref      = read_bytes(ref_path);
        ASSERT_GE(ref.size(), 8u);
        for (const u64 ranks : {u64{1}, u64{2}, u64{4}}) {
            dist::DistOptions opts;
            opts.num_ranks   = ranks;
            opts.num_pes     = pes;
            opts.output_path = tmp_path(tag + "_r" + std::to_string(ranks) + ".bin");
            const dist::DistResult res = generate_distributed(cfg, opts);
            EXPECT_EQ(res.num_ranks, ranks);
            EXPECT_EQ(res.num_chunks, k * pes);
            EXPECT_EQ(read_bytes(opts.output_path), ref)
                << model_name(model) << " ranks=" << ranks << " K=" << k;
            EXPECT_EQ(res.edges_written * 16 + 8, ref.size());
            std::remove(opts.output_path.c_str());
        }
        std::remove(ref_path.c_str());
    }
}

INSTANTIATE_TEST_SUITE_P(Models, DistByteIdentity,
                         ::testing::Values(Model::GnmDirected, Model::GnmUndirected,
                                           Model::Rgg2D, Model::RhgStreaming));

TEST(Dist, ExactOnceSemanticsStayByteIdentical) {
    // The ownership filters are per-chunk pure functions; process isolation
    // must not change the exact-once stream either.
    Config cfg         = model_config(Model::GnmUndirected);
    cfg.chunks_per_pe  = 3;
    cfg.edge_semantics = EdgeSemantics::exact_once;
    const std::string ref_path = single_process_file(cfg, 4, "exact_once");
    dist::DistOptions opts;
    opts.num_ranks   = 3;
    opts.num_pes     = 4;
    opts.output_path = tmp_path("exact_once_dist.bin");
    generate_distributed(cfg, opts);
    EXPECT_EQ(read_bytes(opts.output_path), read_bytes(ref_path));
    std::remove(opts.output_path.c_str());
    std::remove(ref_path.c_str());
}

TEST(Dist, MoreRanksThanChunksLeavesEmptyRanks) {
    Config cfg        = model_config(Model::GnmDirected);
    cfg.chunks_per_pe = 1;
    cfg.total_chunks  = 2; // ranks 2..4 own empty chunk ranges
    const std::string ref_path = single_process_file(cfg, 2, "fewchunks");
    dist::DistOptions opts;
    opts.num_ranks   = 5;
    opts.num_pes     = 2;
    opts.output_path = tmp_path("fewchunks_dist.bin");
    const dist::DistResult res = generate_distributed(cfg, opts);
    EXPECT_EQ(read_bytes(opts.output_path), read_bytes(ref_path));
    ASSERT_EQ(res.ranks.size(), 5u);
    EXPECT_EQ(res.ranks[4].chunk_begin, res.ranks[4].chunk_end);
    EXPECT_EQ(res.ranks[4].file_edges, 0u);
    std::remove(opts.output_path.c_str());
    std::remove(ref_path.c_str());
}

TEST(Dist, PinnedTotalChunksIndependentOfRankCount) {
    Config cfg       = model_config(Model::Rgg2D);
    cfg.total_chunks = 10; // decomposition pinned: every (ranks, P) agrees
    const std::string ref_path = single_process_file(cfg, 3, "pinned");
    for (const u64 ranks : {u64{2}, u64{4}}) {
        dist::DistOptions opts;
        opts.num_ranks   = ranks;
        opts.num_pes     = 7; // irrelevant under pinned total_chunks
        opts.output_path = tmp_path("pinned_r" + std::to_string(ranks) + ".bin");
        generate_distributed(cfg, opts);
        EXPECT_EQ(read_bytes(opts.output_path), read_bytes(ref_path));
        std::remove(opts.output_path.c_str());
    }
    std::remove(ref_path.c_str());
}

// ---------------------------------------------------------------------------
// Merged coordinator stats == in-process sink stats
// ---------------------------------------------------------------------------

TEST(Dist, MergedStatsEqualInProcessSinks) {
    Config cfg        = model_config(Model::GnmUndirected);
    cfg.chunks_per_pe = 3;

    CountingSink count(cfg.edge_semantics);
    generate_chunked(cfg, 5, count);
    count.finish();
    DegreeStatsSink degrees(num_vertices(cfg), cfg.edge_semantics);
    generate_chunked(cfg, 5, degrees);
    degrees.finish();

    dist::DistOptions opts;
    opts.num_ranks    = 4;
    opts.num_pes      = 5;
    opts.degree_stats = true;
    const dist::DistResult res = generate_distributed(cfg, opts);

    EXPECT_EQ(res.count, count.summarize());
    EXPECT_EQ(res.count.str(), count.summary());
    ASSERT_TRUE(res.has_degrees);
    EXPECT_EQ(res.degrees, degrees.summarize());
    EXPECT_EQ(res.degrees.str(), degrees.summary());
    EXPECT_EQ(res.degrees.degrees, degrees.degrees()); // per-vertex, exact
}

TEST(Dist, ExactOnceMergedCountMatchesUnion) {
    // Distributed exact-once totals equal the canonical edge set size.
    Config cfg         = model_config(Model::GnmUndirected);
    cfg.chunks_per_pe  = 2;
    cfg.edge_semantics = EdgeSemantics::exact_once;
    const u64 C        = 2 * 4;
    const auto per_chunk =
        pe::run_all(C, [&](u64 rank, u64 size) { return generate(cfg, rank, size).edges; });
    Config as_gen         = cfg;
    as_gen.edge_semantics = EdgeSemantics::as_generated;
    const auto legacy =
        pe::run_all(C, [&](u64 rank, u64 size) { return generate(as_gen, rank, size).edges; });
    const u64 canonical = pe::union_undirected(legacy).size();

    dist::DistOptions opts;
    opts.num_ranks = 4;
    opts.num_pes   = 4;
    const dist::DistResult res = generate_distributed(cfg, opts);
    EXPECT_EQ(res.count.num_edges, canonical);
    u64 streamed = 0;
    for (const auto& part : per_chunk) streamed += part.size();
    EXPECT_EQ(res.count.num_edges, streamed);
}

// ---------------------------------------------------------------------------
// Optional dedup pass over the merged output
// ---------------------------------------------------------------------------

TEST(Dist, DedupPassMatchesUnionUndirected) {
    Config cfg        = model_config(Model::GnmUndirected);
    cfg.chunks_per_pe = 2;
    const u64 C       = 2 * 3;
    const auto per_chunk =
        pe::run_all(C, [&](u64 rank, u64 size) { return generate(cfg, rank, size).edges; });
    const EdgeList expected = pe::union_undirected(per_chunk);

    dist::DistOptions opts;
    opts.num_ranks   = 3;
    opts.num_pes     = 3;
    opts.output_path = tmp_path("dedup_raw.bin");
    opts.dedup_path  = tmp_path("dedup_out.bin");
    const dist::DistResult res = generate_distributed(cfg, opts);
    EXPECT_EQ(res.dedup_edges, expected.size());
    EXPECT_EQ(io::read_edge_list_binary(opts.dedup_path), expected);
    std::remove(opts.output_path.c_str());
    std::remove(opts.dedup_path.c_str());
}

// ---------------------------------------------------------------------------
// Worker failure propagation: descriptive error, no hang, no partial files
// ---------------------------------------------------------------------------

/// Runs a failing distributed job with a dedicated scratch dir and returns
/// the thrown message; asserts no file (rank scratch or output) survives.
std::string run_failing(Config cfg, dist::DistOptions opts,
                        const std::string& tag) {
    const std::string scratch = tmp_path(tag + "_scratch");
    if (::mkdir(scratch.c_str(), 0755) != 0) {
        ADD_FAILURE() << "mkdir " << scratch << ": " << std::strerror(errno);
        return {};
    }
    opts.scratch_dir = scratch;
    opts.output_path = tmp_path(tag + "_out.bin");
    std::string message;
    try {
        generate_distributed(cfg, opts);
        ADD_FAILURE() << tag << ": expected generate_distributed to throw";
    } catch (const std::runtime_error& e) {
        message = e.what();
    }
    EXPECT_FALSE(file_exists(opts.output_path)) << tag << ": partial output left";
    // The scratch dir must be empty again: rmdir fails on leftovers.
    EXPECT_EQ(::rmdir(scratch.c_str()), 0)
        << tag << ": rank files left behind in " << scratch;
    std::remove(opts.output_path.c_str());
    return message;
}

TEST(DistFailure, WorkerExceptionPropagatesItsMessage) {
    Config cfg        = model_config(Model::GnmDirected);
    cfg.chunks_per_pe = 2;
    dist::DistOptions opts;
    opts.num_ranks = 3;
    opts.rank_hook = [](u64 rank) {
        if (rank == 1) throw std::runtime_error("injected fault in rank 1");
    };
    const std::string message = run_failing(cfg, opts, "throw");
    EXPECT_NE(message.find("rank 1"), std::string::npos) << message;
    EXPECT_NE(message.find("injected fault in rank 1"), std::string::npos) << message;
}

TEST(DistFailure, WorkerNonzeroExitIsDescribed) {
    Config cfg        = model_config(Model::GnmDirected);
    cfg.chunks_per_pe = 2;
    dist::DistOptions opts;
    opts.num_ranks = 4;
    opts.rank_hook = [](u64 rank) {
        if (rank == 2) ::_exit(7);
    };
    const std::string message = run_failing(cfg, opts, "exit");
    EXPECT_NE(message.find("rank 2"), std::string::npos) << message;
    EXPECT_NE(message.find("exited with status 7"), std::string::npos) << message;
}

TEST(DistFailure, WorkerCrashIsDescribedWithoutHanging) {
    Config cfg        = model_config(Model::GnmDirected);
    cfg.chunks_per_pe = 2;
    dist::DistOptions opts;
    opts.num_ranks = 2;
    opts.rank_hook = [](u64 rank) {
        if (rank == 0) ::raise(SIGKILL);
    };
    const std::string message = run_failing(cfg, opts, "crash");
    EXPECT_NE(message.find("rank 0"), std::string::npos) << message;
    EXPECT_NE(message.find("signal 9"), std::string::npos) << message;
}

TEST(DistFailure, InvalidOptionsThrowBeforeForking) {
    Config cfg = model_config(Model::GnmDirected);
    dist::DistOptions opts;
    opts.dedup_path = "/tmp/never.bin"; // dedup without an output file
    EXPECT_THROW(generate_distributed(cfg, opts), std::invalid_argument);
    Config bad        = cfg;
    bad.chunks_per_pe = 0;
    EXPECT_THROW(generate_distributed(bad, {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Chunk-range scheduling (the pe-level mechanism under the ranks)
// ---------------------------------------------------------------------------

TEST(ChunkRange, SlicesConcatenateToFullRun) {
    Config cfg       = model_config(Model::GnmUndirected);
    cfg.total_chunks = 7;
    MemorySink whole;
    generate_chunked(cfg, 2, whole);
    whole.finish();

    EdgeList sliced;
    for (const auto [lo, hi] :
         std::vector<std::pair<u64, u64>>{{0, 3}, {3, 4}, {4, 4}, {4, 7}}) {
        pe::ChunkOptions opt;
        opt.total_chunks = 7;
        opt.chunk_begin  = lo;
        opt.chunk_end    = hi;
        opt.threads      = 1;
        MemorySink part;
        const auto stats = pe::run_chunked(
            opt,
            [&](u64 chunk, u64 num_chunks, EdgeSink& sink) {
                generate(cfg, chunk, num_chunks, sink);
            },
            part);
        EXPECT_EQ(stats.num_chunks, hi - lo);
        part.finish();
        append(sliced, part.edges());
    }
    EXPECT_EQ(sliced, whole.edges());
}

TEST(ChunkRange, OutOfRangeThrows) {
    pe::ChunkOptions opt;
    opt.total_chunks = 4;
    opt.chunk_begin  = 3;
    opt.chunk_end    = 5;
    MemorySink sink;
    EXPECT_THROW(pe::run_chunked(
                     opt, [](u64, u64, EdgeSink&) {}, sink),
                 std::invalid_argument);
    opt.chunk_begin = 3;
    opt.chunk_end   = 2;
    EXPECT_THROW(pe::run_chunked(
                     opt, [](u64, u64, EdgeSink&) {}, sink),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Descriptor hygiene: O_CLOEXEC on sink/spill fds
// ---------------------------------------------------------------------------

bool has_cloexec(int fd) {
    const int flags = ::fcntl(fd, F_GETFD);
    EXPECT_GE(flags, 0);
    return (flags & FD_CLOEXEC) != 0;
}

TEST(Cloexec, BinaryFileSinkAndSpillFileDescriptors) {
    const std::string sink_path = tmp_path("cloexec_sink.bin");
    BinaryFileSink sink(sink_path);
    EXPECT_TRUE(has_cloexec(sink.fd()));
    sink.finish();
    std::remove(sink_path.c_str());

    spill::SpillFile anon;
    EXPECT_TRUE(has_cloexec(anon.fd()));

    const std::string named_path = tmp_path("cloexec_spill.bin");
    spill::SpillFile named(named_path);
    EXPECT_TRUE(has_cloexec(named.fd()));
}

TEST(Cloexec, ExecdChildCannotClobberCoordinatorSpillFile) {
    // Regression for the satellite contract: a worker that execs a
    // subprocess must not hand it a writable descriptor onto the
    // coordinator's scratch. The child shell tries to write through the
    // inherited fd *number*; with O_CLOEXEC the descriptor is closed by the
    // exec, the redirection fails, and the spilled segment stays intact.
    if (::access("/bin/sh", X_OK) != 0) GTEST_SKIP() << "no /bin/sh";

    const std::string path = tmp_path("clobber_spill.bin");
    spill::SpillFile file(path);
    EdgeList edges;
    for (u64 i = 0; i < 1000; ++i) edges.emplace_back(i, i + 1);
    const auto seg = file.append(edges.data(), edges.size());

    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        const std::string cmd =
            "echo CLOBBERCLOBBER >&" + std::to_string(file.fd());
        ::execl("/bin/sh", "sh", "-c", cmd.c_str(), static_cast<char*>(nullptr));
        ::_exit(127); // exec itself failed
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_NE(WEXITSTATUS(status), 127) << "child failed to exec /bin/sh";
    // The shell must have failed to use the fd at all.
    EXPECT_NE(WEXITSTATUS(status), 0)
        << "child wrote through the inherited spill fd";

    std::vector<Edge> back(edges.size());
    ASSERT_EQ(file.read(seg, 0, back.data(), back.size()), edges.size());
    EXPECT_EQ(EdgeList(back.begin(), back.end()), edges);
}

} // namespace
} // namespace kagen
