// Cross-module property tests: model-level invariants swept over PE counts,
// seeds and parameters — the "communication-freedom" guarantees the paper's
// abstract promises, checked wholesale.
#include <gtest/gtest.h>

#include <set>

#include "common/math.hpp"
#include "er/er.hpp"
#include "graph/stats.hpp"
#include "hyperbolic/hyperbolic.hpp"
#include "pe/pe.hpp"
#include "rdg/rdg.hpp"
#include "rgg/rgg.hpp"
#include "rhg/rhg.hpp"
#include "sampling/sampling.hpp"
#include "testing.hpp"

namespace kagen {
namespace {

// ---- Distributed sampler: the per-chunk counts across *any* chunking
// follow the multivariate hypergeometric marginals.
class ChunkedSamplerSweep : public ::testing::TestWithParam<u64> {};

TEST_P(ChunkedSamplerSweep, MarginalMeansMatch) {
    const u64 chunks = GetParam();
    constexpr u64 kRows = 996, kWidth = 7, kSamples = 2000, kRuns = 600;
    std::vector<double> sums(chunks, 0.0);
    for (u64 seed = 0; seed < kRuns; ++seed) {
        ChunkedSampler sampler(seed, make_row_universe(kRows, chunks, kWidth), kSamples);
        for (u64 c = 0; c < chunks; ++c) {
            sums[c] += static_cast<double>(sampler.samples_in_chunk(c));
        }
    }
    const double total = static_cast<double>(kRows) * kWidth;
    for (u64 c = 0; c < chunks; ++c) {
        const double frac =
            static_cast<double>(block_size(kRows, chunks, c)) * kWidth / total;
        const double expected = kSamples * frac;
        const double sd       = std::sqrt(expected * (1 - frac));
        EXPECT_NEAR(sums[c] / kRuns, expected, 6 * sd / std::sqrt(double(kRuns)))
            << "chunk " << c << " of " << chunks;
    }
}

INSTANTIATE_TEST_SUITE_P(Chunkings, ChunkedSamplerSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 32));

// ---- Sorted sampling agrees with Floyd sampling in distribution
// (cross-validation of two independent implementations).
TEST(SamplerCrossValidation, VitterAndFloydInclusionAgree) {
    constexpr u64 kUniverse = 5000, kK = 200, kRuns = 3000, kBuckets = 25;
    Rng rng_v(1), rng_f(2);
    std::vector<double> vitter(kBuckets, 0.0), floyd(kBuckets, 0.0);
    const u64 width = kUniverse / kBuckets;
    for (u64 r = 0; r < kRuns; ++r) {
        sorted_sample(rng_v, kUniverse, kK, [&](u64 x) { vitter[x / width] += 1.0; });
        for (const u64 x : floyd_sample(rng_f, kUniverse, kK)) {
            floyd[x / width] += 1.0;
        }
    }
    // Both should be uniform; compare each against the common expectation.
    const std::vector<double> expected(kBuckets,
                                       static_cast<double>(kRuns * kK) / kBuckets);
    EXPECT_LT(testing::chi_square(vitter, expected),
              testing::chi_square_critical(kBuckets - 1));
    EXPECT_LT(testing::chi_square(floyd, expected),
              testing::chi_square_critical(kBuckets - 1));
}

// ---- G(n,m): degree distribution is exchangeable — every vertex has the
// same expected degree regardless of which PE owns it.
TEST(ErProperties, DegreesAreExchangeableAcrossChunkBoundaries) {
    constexpr u64 n = 60, m = 200, P = 4, kRuns = 3000;
    std::vector<double> sums(n, 0.0);
    for (u64 seed = 0; seed < kRuns; ++seed) {
        const auto per_pe = pe::run_all(P, [&](u64 r, u64 s) {
            return er::gnm_undirected(n, m, seed, r, s);
        });
        for (const auto& [u, v] : pe::union_undirected(per_pe)) {
            sums[u] += 1.0;
            sums[v] += 1.0;
        }
    }
    const double expected = 2.0 * m / n * kRuns;
    const std::vector<double> exp_vec(n, expected);
    EXPECT_LT(testing::chi_square(sums, exp_vec), testing::chi_square_critical(n - 1));
}

// ---- The three spatial/hyperbolic models: union equality holds for a
// sweep of seeds (not just the single fixed seed of the per-module tests).
class SeedSweep : public ::testing::TestWithParam<u64> {};

TEST_P(SeedSweep, RggUnionExactness) {
    const u64 seed = GetParam();
    const rgg::Params params{400, 0.07, seed};
    const auto per_pe = pe::run_all(5, [&](u64 r, u64 s) {
        return rgg::generate<2>(params, r, s);
    });
    EXPECT_EQ(pe::union_undirected(per_pe), undirected_set(rgg::brute_force<2>(params, 5)));
}

TEST_P(SeedSweep, RdgUnionExactness) {
    const u64 seed = GetParam();
    const rdg::Params params{250, seed};
    const auto per_pe = pe::run_all(4, [&](u64 r, u64 s) {
        return rdg::generate<2>(params, r, s);
    });
    EXPECT_EQ(pe::union_undirected(per_pe), rdg::reference<2>(params, 4));
}

TEST_P(SeedSweep, RhgStreamingMatchesInMemory) {
    const u64 seed = GetParam();
    const hyp::Params params{700, 10, 2.7, seed};
    const auto a = pe::union_undirected(pe::run_all(3, [&](u64 r, u64 s) {
        return rhg::generate_inmemory(params, r, s);
    }));
    const auto b = pe::union_undirected(pe::run_all(3, [&](u64 r, u64 s) {
        return rhg::generate_streaming(params, r, s);
    }));
    EXPECT_EQ(a, b) << "the two generators must produce the same graph";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11, 223, 3117, 48221, 591133));

// ---- Hyperbolic utilities.
TEST(HyperbolicSpace, RadialCdfIsAProperCdf) {
    const hyp::Space space(hyp::Params{10000, 12, 2.6, 1});
    EXPECT_NEAR(space.radial_cdf(0.0), 0.0, 1e-12);
    EXPECT_NEAR(space.radial_cdf(space.radius()), 1.0, 1e-9);
    double prev = -1.0;
    for (int i = 0; i <= 20; ++i) {
        const double c = space.radial_cdf(space.radius() * i / 20);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(HyperbolicSpace, InverseRadialInvertsCdf) {
    const hyp::Space space(hyp::Params{5000, 8, 3.0, 1});
    const double a = 2.0, b = space.radius();
    for (const double u : {0.0, 0.1, 0.5, 0.9, 0.999}) {
        const double r = space.inv_radial(a, b, u);
        EXPECT_GE(r, a - 1e-9);
        EXPECT_LE(r, b + 1e-9);
        // F(r | [a,b]) == u
        const double fa = space.radial_cdf(a), fb = space.radial_cdf(b);
        EXPECT_NEAR((space.radial_cdf(r) - fa) / (fb - fa), u, 1e-6);
    }
}

TEST(HyperbolicSpace, DeltaThetaMonotoneDecreasingInRadius) {
    const hyp::Space space(hyp::Params{100000, 16, 2.9, 1});
    const double r = 0.7 * space.radius();
    double prev    = std::numbers::pi + 1e-9;
    for (int i = 1; i <= 10; ++i) {
        const double b  = space.radius() * i / 10.0;
        const double dt = space.delta_theta(r, b);
        EXPECT_LE(dt, prev + 1e-12) << "wider targets shrink the window";
        prev = dt;
    }
}

TEST(HyperbolicSpace, TriangleShortcutConsistent) {
    // r_p + r_q < R must imply edge under both predicates.
    const hyp::Space space(hyp::Params{10000, 16, 2.9, 1});
    const auto p = space.make_point(0, 0.3 * space.radius(), 1.0);
    const auto q = space.make_point(1, 0.5 * space.radius(), 4.0);
    EXPECT_TRUE(space.edge(p, q));
    EXPECT_LT(space.distance(p, q), space.radius());
}

// ---- PE harness contracts.
TEST(PeHarness, UnionHelpersDeduplicate) {
    const std::vector<EdgeList> parts{{{1, 2}, {3, 1}}, {{2, 1}, {1, 3}}};
    const auto undirected = pe::union_undirected(parts);
    EXPECT_EQ(undirected, (EdgeList{{1, 2}, {1, 3}}));
    const auto directed = pe::union_directed(parts);
    EXPECT_EQ(directed, (EdgeList{{1, 2}, {1, 3}, {2, 1}, {3, 1}}));
}

TEST(PeHarness, SingleRank) {
    const auto parts = pe::run_all(1, [](u64 rank, u64 size) {
        EXPECT_EQ(rank, 0u);
        EXPECT_EQ(size, 1u);
        return EdgeList{{0, 1}};
    });
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0].size(), 1u);
}

// ---- Graph statistics on analytically known inputs.
TEST(GraphStats, PowerLawMleOnSyntheticParetoTail) {
    // Degrees drawn from an exact discrete power law via inverse transform.
    Rng rng(5);
    constexpr double kGamma = 2.5;
    std::vector<u64> degs;
    for (int i = 0; i < 200000; ++i) {
        const double u = rng.uniform_pos();
        degs.push_back(static_cast<u64>(10.0 * std::pow(u, -1.0 / (kGamma - 1.0))));
    }
    // The CSN estimator is a continuous approximation of the discrete MLE;
    // flooring the Pareto draws biases it slightly low.
    EXPECT_NEAR(power_law_exponent_mle(degs, 10), kGamma, 0.12);
}

TEST(GraphStats, ClusteringOfCompleteGraph) {
    EdgeList k5;
    for (u64 u = 0; u < 5; ++u) {
        for (u64 v = u + 1; v < 5; ++v) k5.emplace_back(u, v);
    }
    EXPECT_DOUBLE_EQ(global_clustering_coefficient(k5, 5), 1.0);
}

TEST(GraphStats, DegreeHelpersConsistent) {
    const EdgeList edges{{0, 1}, {0, 2}, {0, 3}, {1, 2}};
    const auto degs = degrees(edges, 4);
    EXPECT_EQ(degs, (std::vector<u64>{3, 2, 2, 1}));
    EXPECT_EQ(max_degree(degs), 3u);
    EXPECT_DOUBLE_EQ(average_degree(degs), 2.0);
    const auto outs = out_degrees(edges, 4);
    EXPECT_EQ(outs, (std::vector<u64>{3, 1, 0, 0}));
}

} // namespace
} // namespace kagen
