// RDG generator: exact equivalence with the periodic (3^D replication)
// reference triangulation, torus Euler identity, cross-PE invariants.
#include <gtest/gtest.h>

#include <set>

#include "common/math.hpp"
#include "graph/stats.hpp"
#include "pe/pe.hpp"
#include "rdg/rdg.hpp"
#include "rgg/rgg.hpp"

namespace kagen {
namespace {

struct RdgCase {
    u64 n;
    u64 P;
};

class Rdg2D : public ::testing::TestWithParam<RdgCase> {};
class Rdg3D : public ::testing::TestWithParam<RdgCase> {};

TEST_P(Rdg2D, UnionEqualsPeriodicReference) {
    const auto [n, P] = GetParam();
    const rdg::Params params{n, /*seed=*/11};
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return rdg::generate<2>(params, rank, size);
    });
    const EdgeList got  = pe::union_undirected(per_pe);
    const EdgeList want = rdg::reference<2>(params, P);
    EXPECT_EQ(got, want);
}

TEST_P(Rdg3D, UnionEqualsPeriodicReference) {
    const auto [n, P] = GetParam();
    const rdg::Params params{n, /*seed=*/12};
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return rdg::generate<3>(params, rank, size);
    });
    const EdgeList got  = pe::union_undirected(per_pe);
    const EdgeList want = rdg::reference<3>(params, P);
    EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Spectrum, Rdg2D,
    ::testing::Values(RdgCase{60, 1},   //
                      RdgCase{60, 4},   //
                      RdgCase{300, 4},  //
                      RdgCase{300, 7},  // non-power-of-two PEs
                      RdgCase{800, 16}, //
                      RdgCase{12, 4},   // few points: halo wraps fully
                      RdgCase{3, 2}     // degenerate torus
                      ));

INSTANTIATE_TEST_SUITE_P(
    Spectrum, Rdg3D,
    ::testing::Values(RdgCase{50, 1},  //
                      RdgCase{50, 8},  //
                      RdgCase{200, 8}, //
                      RdgCase{200, 5}  // non-power-of-eight PEs
                      ));

TEST(Rdg, TorusEulerIdentity2D) {
    // A triangulated torus satisfies V - E + F = 0 and 3F = 2E, hence
    // E = 3V exactly (assuming no collapsed parallel edges, which holds
    // w.h.p. for uniform points at this size).
    for (u64 seed : {1u, 2u, 3u}) {
        const rdg::Params params{500, seed};
        const auto per_pe = pe::run_all(4, [&](u64 rank, u64 size) {
            return rdg::generate<2>(params, rank, size);
        });
        EXPECT_EQ(pe::union_undirected(per_pe).size(), 3 * params.n) << "seed " << seed;
    }
}

TEST(Rdg, MinimumDegreeOnTorus) {
    // Every vertex of a 2D triangulation has degree >= 3; in 3D >= 4.
    const rdg::Params params{400, 9};
    const auto e2 = pe::union_undirected(pe::run_all(4, [&](u64 r, u64 s) {
        return rdg::generate<2>(params, r, s);
    }));
    for (const u64 d : degrees(e2, params.n)) EXPECT_GE(d, 3u);
    const rdg::Params params3{200, 9};
    const auto e3 = pe::union_undirected(pe::run_all(8, [&](u64 r, u64 s) {
        return rdg::generate<3>(params3, r, s);
    }));
    for (const u64 d : degrees(e3, params3.n)) EXPECT_GE(d, 4u);
}

TEST(Rdg, TorusGraphIsConnected) {
    const rdg::Params params{600, 21};
    const auto edges = pe::union_undirected(pe::run_all(4, [&](u64 r, u64 s) {
        return rdg::generate<2>(params, r, s);
    }));
    EXPECT_EQ(connected_components(edges, params.n), 1u);
}

TEST(Rdg, DeterministicPerRank) {
    const rdg::Params params{300, 5};
    EXPECT_EQ(rdg::generate<2>(params, 1, 4), rdg::generate<2>(params, 1, 4));
    EXPECT_EQ(rdg::generate<3>(params, 3, 8), rdg::generate<3>(params, 3, 8));
}

TEST(Rdg, CrossPeEdgesAppearOnBothOwners) {
    const rdg::Params params{400, 33};
    constexpr u64 P = 4;
    const auto grid = rdg::point_grid<2>(params, P);
    const u32 b       = rgg::chunk_levels<2>(P);
    const u32 shift   = (grid.levels() - b) * 2;
    const u64 nchunks = u64{1} << (2 * b);
    std::vector<u64> owner(params.n);
    for (u64 cell = 0; cell < grid.num_cells(); ++cell) {
        const u64 pe = block_owner(nchunks, P, cell >> shift);
        for (const auto& p : grid.cell_points(cell)) owner[p.id] = pe;
    }
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return rdg::generate<2>(params, rank, size);
    });
    std::vector<std::set<Edge>> sets(P);
    for (u64 r = 0; r < P; ++r) sets[r].insert(per_pe[r].begin(), per_pe[r].end());
    for (const auto& e : pe::union_undirected(per_pe)) {
        EXPECT_TRUE(sets[owner[e.first]].count(e));
        EXPECT_TRUE(sets[owner[e.second]].count(e));
    }
}

TEST(Rdg, AverageDegreeNearSixOnTorus2D) {
    // E = 3V  =>  average degree exactly 6 on the torus.
    const rdg::Params params{1000, 77};
    const auto edges = pe::union_undirected(pe::run_all(9, [&](u64 r, u64 s) {
        return rdg::generate<2>(params, r, s);
    }));
    const auto degs = degrees(edges, params.n);
    EXPECT_NEAR(average_degree(degs), 6.0, 0.05);
}

} // namespace
} // namespace kagen
