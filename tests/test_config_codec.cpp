/// \file test_config_codec.cpp
/// \brief Adversarial coverage for encode_config/decode_config (kagen.hpp).
///
/// The config encoding is the TCP backend's job payload today and the
/// planned daemon's cache key tomorrow, so a malformed buffer must never do
/// anything but throw: no out-of-bounds read (the ASan/UBSan configurations
/// of this suite check that mechanically), no silent misdecode into a
/// *different* graph than the one encoded. Three layers of attack:
///   1. every strict prefix of a valid encoding (truncation at each byte);
///   2. every single-bit flip of a valid encoding (must throw or decode —
///      and when it decodes, re-encoding must reproduce the mutated bytes,
///      i.e. the decode was faithful, not a lucky OOB read);
///   3. a committed corpus (tests/corpus/config/*.bin): `ok_*` files must
///      decode and re-encode byte-identically (the content-address
///      property), `bad_*` files must throw with the expected reason.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "kagen.hpp"

namespace {

using kagen::Config;
using kagen::u8;
using kagen::u64;

std::vector<u8> encode(const Config& cfg) {
    std::vector<u8> out;
    kagen::encode_config(out, cfg);
    return out;
}

/// Decodes a whole buffer; fails the test if trailing bytes remain.
Config decode_all(const std::vector<u8>& buf) {
    const u8* p   = buf.data();
    const u8* end = buf.data() + buf.size();
    Config cfg    = kagen::decode_config(p, end);
    EXPECT_EQ(p, end) << "decode_config left trailing bytes";
    return cfg;
}

/// A config exercising every field with distinctive values.
Config rich_config() {
    Config cfg;
    cfg.model              = kagen::Model::Rhg;
    cfg.n                  = 0x0123456789abcdefULL;
    cfg.m                  = 42;
    cfg.p                  = 0.001;
    cfg.r                  = 0.25;
    cfg.avg_deg            = 16.5;
    cfg.gamma              = 2.9;
    cfg.ba_degree          = 7;
    cfg.rmat_a             = 0.5;
    cfg.rmat_b             = 0.3;
    cfg.rmat_c             = 0.1;
    cfg.seed               = 1337;
    cfg.chunks_per_pe      = 8;
    cfg.total_chunks       = 64;
    cfg.max_buffered_bytes = 1 << 20;
    cfg.spill_path         = "/tmp/spill scratch.bin";
    cfg.sink_buffer_edges  = 4096;
    cfg.pin_threads        = true;
    cfg.num_processes      = 4;
    cfg.sampler_version    = kagen::SamplerVersion::v2;
    cfg.edge_semantics     = kagen::EdgeSemantics::exact_once;
    return cfg;
}

bool config_equal(const Config& a, const Config& b) {
    return encode(a) == encode(b); // canonical bytes ARE config identity
}

TEST(ConfigCodec, RoundTripRich) {
    const Config cfg = rich_config();
    const Config dec = decode_all(encode(cfg));
    EXPECT_TRUE(config_equal(cfg, dec));
}

TEST(ConfigCodec, RoundTripDefault) {
    const Config dec = decode_all(encode(Config{}));
    EXPECT_TRUE(config_equal(Config{}, dec));
}

TEST(ConfigCodec, EveryTruncationThrows) {
    const std::vector<u8> full = encode(rich_config());
    for (std::size_t len = 0; len < full.size(); ++len) {
        std::vector<u8> cut(full.begin(), full.begin() + len);
        const u8* p   = cut.data();
        const u8* end = cut.data() + cut.size();
        EXPECT_THROW((void)kagen::decode_config(p, end), std::runtime_error)
            << "prefix of length " << len << " decoded without error";
    }
}

TEST(ConfigCodec, EveryBitFlipThrowsOrDecodesFaithfully) {
    const std::vector<u8> full = encode(rich_config());
    for (std::size_t byte = 0; byte < full.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<u8> mut = full;
            mut[byte] = static_cast<u8>(mut[byte] ^ (1u << bit));
            const u8* p   = mut.data();
            const u8* end = mut.data() + mut.size();
            try {
                const Config dec = kagen::decode_config(p, end);
                // Accepted: the flip hit a non-validated field or the
                // spill-path length shrank consistently. Either way the
                // decode must be faithful: re-encoding reproduces the
                // consumed bytes exactly.
                std::vector<u8> re = encode(dec);
                ASSERT_EQ(re.size(), static_cast<std::size_t>(p - mut.data()))
                    << "byte " << byte << " bit " << bit;
                EXPECT_TRUE(std::equal(re.begin(), re.end(), mut.begin()))
                    << "unfaithful decode at byte " << byte << " bit " << bit;
            } catch (const std::runtime_error&) {
                // Rejected loudly: exactly the contract.
            }
        }
    }
}

TEST(ConfigCodec, HugeStringLengthRejectedWithoutOverflow) {
    // Craft an encoding whose spill_path length field claims 2^64 - 8
    // bytes: a naive `p + size` bound check would wrap and pass.
    Config cfg     = rich_config();
    cfg.spill_path = "";
    std::vector<u8> buf = encode(cfg);
    // The empty string's length field is followed by exactly 5 u64 fields.
    const std::size_t len_off = buf.size() - 6 * 8;
    for (int i = 0; i < 8; ++i) buf[len_off + static_cast<std::size_t>(i)] = 0xff;
    buf[len_off] = 0xf8;
    const u8* p   = buf.data();
    const u8* end = buf.data() + buf.size();
    EXPECT_THROW((void)kagen::decode_config(p, end), std::runtime_error);
}

TEST(ConfigCodec, UnknownEnumsRejected) {
    const Config cfg = rich_config();
    {
        std::vector<u8> buf = encode(cfg);
        buf[8] = 0x7f; // model id 127
        const u8* p = buf.data();
        EXPECT_THROW((void)kagen::decode_config(p, buf.data() + buf.size()),
                     std::runtime_error);
    }
    {
        std::vector<u8> buf = encode(cfg);
        buf[0] = 99; // encoding version 99
        const u8* p = buf.data();
        EXPECT_THROW((void)kagen::decode_config(p, buf.data() + buf.size()),
                     std::runtime_error);
    }
}

// ---------------------------------------------------------------------------
// Committed corpus
// ---------------------------------------------------------------------------

std::vector<u8> read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<u8>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

TEST(ConfigCodecCorpus, CommittedFilesBehaveByName) {
    const std::filesystem::path dir = CONFIG_CORPUS_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
    std::size_t ok = 0, bad = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".bin") continue;
        const std::string name  = entry.path().filename().string();
        const std::vector<u8> b = read_file(entry.path());
        const u8* p   = b.data();
        const u8* end = b.data() + b.size();
        if (name.rfind("ok_", 0) == 0) {
            ++ok;
            Config cfg;
            ASSERT_NO_THROW(cfg = kagen::decode_config(p, end)) << name;
            EXPECT_EQ(p, end) << name << " decoded with trailing bytes";
            EXPECT_EQ(encode(cfg), b)
                << name << " re-encode differs: not a canonical encoding";
        } else if (name.rfind("bad_", 0) == 0) {
            ++bad;
            EXPECT_THROW((void)kagen::decode_config(p, end),
                         std::runtime_error)
                << name;
        } else {
            FAIL() << "corpus file " << name
                   << " must be named ok_* or bad_*";
        }
    }
    // The corpus must actually exist — an empty directory would silently
    // turn this test into a no-op.
    EXPECT_GE(ok, 2u);
    EXPECT_GE(bad, 5u);
}

} // namespace
