// Edge sinks + chunked execution engine: sink semantics, thread-pool
// correctness, engine-vs-per-rank bit-identity, chunked-vs-sequential
// determinism across PE counts and chunks-per-PE, and sink/stats agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>

#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "kagen.hpp"
#include "pe/pe.hpp"
#include "sink/sinks.hpp"

namespace kagen {
namespace {

// ---------------------------------------------------------------------------
// Sink units
// ---------------------------------------------------------------------------

EdgeList some_edges(u64 count) {
    EdgeList edges;
    edges.reserve(count);
    for (u64 i = 0; i < count; ++i) edges.emplace_back(i % 97, (i * 31 + 5) % 89);
    return edges;
}

TEST(MemorySink, CollectsAcrossBufferBoundaries) {
    // 2500 edges straddles multiple internal flushes (buffer is 1024).
    const EdgeList expected = some_edges(2500);
    MemorySink sink;
    for (const auto& e : expected) sink.emit(e);
    EXPECT_EQ(sink.take(), expected);
}

TEST(MemorySink, AppendsIntoExternalList) {
    EdgeList out{{7, 8}};
    MemorySink sink(&out);
    sink.emit(1, 2);
    sink.finish();
    EXPECT_EQ(out, (EdgeList{{7, 8}, {1, 2}}));
}

TEST(CountingSink, CountsEdgesAndSelfLoops) {
    CountingSink sink;
    sink.emit(0, 1);
    sink.emit(2, 2);
    sink.emit(3, 4);
    sink.emit(5, 5);
    sink.finish();
    EXPECT_EQ(sink.num_edges(), 4u);
    EXPECT_EQ(sink.num_self_loops(), 2u);
}

TEST(DegreeStatsSink, MatchesMaterializedDegrees) {
    const EdgeList edges = some_edges(3000);
    DegreeStatsSink sink(100);
    for (const auto& e : edges) sink.emit(e);
    sink.finish();
    EXPECT_EQ(sink.num_edges(), edges.size());
    EXPECT_EQ(sink.degrees(), degrees(edges, 100));
    const auto hist = sink.degree_histogram();
    u64 vertices    = 0;
    for (const u64 h : hist) vertices += h;
    EXPECT_EQ(vertices, 100u);
}

TEST(DegreeStatsSink, OutOfRangeEndpointThrowsWithOffendingVertex) {
    // Regression: an endpoint >= n (corrupt input file, miscounted n) used
    // to write straight past the end of the degree vector.
    DegreeStatsSink sink(10);
    sink.emit(0, 9); // in range: fine
    EXPECT_THROW(
        {
            sink.emit(3, 10); // first out-of-range id is exactly n
            sink.finish();
        },
        std::out_of_range);
    try {
        DegreeStatsSink again(10);
        again.emit(42, 1);
        again.finish();
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range& e) {
        EXPECT_NE(std::string(e.what()).find("42"), std::string::npos)
            << "message should name the offending vertex: " << e.what();
    }
    // The batch that threw must not have corrupted the histogram.
    DegreeStatsSink clean(5);
    clean.emit(1, 2);
    clean.flush();
    EXPECT_THROW(
        {
            clean.emit(3, 4);
            clean.emit(1, 1000);
            clean.flush();
        },
        std::out_of_range);
    EXPECT_EQ(clean.num_edges(), 1u);
    EXPECT_EQ(clean.degrees()[3], 0u) << "failed batch partially applied";
}

TEST(DegreeStatsSink, RejectsCorruptStreamedFile) {
    // The file-replay path the fix protects: a binary file whose edges
    // exceed the declared vertex count must throw, not corrupt the heap.
    const std::string p = ::testing::TempDir() + "kagen_sink_corrupt_ids.bin";
    io::write_edge_list_binary(p, {{0, 1}, {7, 3}, {2, 2}});
    DegreeStatsSink sink(4); // n = 4, but the file contains vertex 7
    EXPECT_THROW(io::stream_edge_list_binary(p, sink), std::out_of_range);
    std::remove(p.c_str());
}

class SinkFileTest : public ::testing::Test {
protected:
    std::string path(const char* name) {
        return ::testing::TempDir() + "kagen_sink_" + name;
    }
    void TearDown() override {
        for (const auto& p : created_) std::remove(p.c_str());
    }
    std::string track(std::string p) {
        created_.push_back(p);
        return p;
    }
    std::vector<std::string> created_;
};

std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST_F(SinkFileTest, BinaryFileSinkMatchesBatchWriterBitForBit) {
    const EdgeList edges = some_edges(2100);
    const auto streamed  = track(path("streamed.bin"));
    const auto batched   = track(path("batched.bin"));
    {
        BinaryFileSink sink(streamed);
        for (const auto& e : edges) sink.emit(e);
        sink.finish(); // back-patches the count header
    }
    io::write_edge_list_binary(batched, edges);
    EXPECT_EQ(slurp(streamed), slurp(batched));
    EXPECT_EQ(io::read_edge_list_binary(streamed), edges);
}

TEST_F(SinkFileTest, StreamingReaderReplaysFileThroughSinks) {
    const EdgeList edges = some_edges(1500);
    const auto p         = track(path("replay.bin"));
    io::write_edge_list_binary(p, edges);

    MemorySink mem;
    EXPECT_EQ(io::stream_edge_list_binary(p, mem), edges.size());
    EXPECT_EQ(mem.take(), edges);

    CountingSink count;
    io::stream_edge_list_binary(p, count);
    count.finish();
    EXPECT_EQ(count.num_edges(), edges.size());
}

// ---------------------------------------------------------------------------
// Work-stealing thread pool
// ---------------------------------------------------------------------------

TEST(ThreadPool, EveryTaskRunsExactlyOnce) {
    pe::ThreadPool pool(3);
    constexpr u64 kTasks = 5000;
    std::vector<std::atomic<u32>> hits(kTasks);
    pool.parallel_for(kTasks, 0, [&](u64 t) { hits[t].fetch_add(1); });
    for (u64 t = 0; t < kTasks; ++t) {
        ASSERT_EQ(hits[t].load(), 1u) << "task " << t;
    }
}

TEST(ThreadPool, StealsFromImbalancedRanges) {
    // A heavy prefix forces the other participants to steal: every task must
    // still run exactly once afterwards.
    pe::ThreadPool pool(3);
    constexpr u64 kTasks = 64;
    std::vector<std::atomic<u32>> hits(kTasks);
    pool.parallel_for(kTasks, 0, [&](u64 t) {
        u64 acc         = 0;
        const u64 spins = t < kTasks / 4 ? 200000 : 100;
        for (u64 i = 0; i < spins; ++i) acc += i;
        asm volatile("" : : "r"(acc) : "memory"); // keep the spin loop alive
        hits[t].fetch_add(1);
    });
    for (u64 t = 0; t < kTasks; ++t) ASSERT_EQ(hits[t].load(), 1u);
}

TEST(ThreadPool, ReusableAcrossParallelSections) {
    pe::ThreadPool pool(2);
    for (int round = 0; round < 20; ++round) {
        std::atomic<u64> sum{0};
        pool.parallel_for(100, 0, [&](u64 t) { sum.fetch_add(t); });
        ASSERT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, TaskExceptionPropagatesAndPoolStaysUsable) {
    pe::ThreadPool pool(3);
    EXPECT_THROW(pool.parallel_for(200, 0,
                                   [&](u64 t) {
                                       if (t == 137) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The section joined cleanly: the pool must keep working afterwards.
    std::atomic<u64> sum{0};
    pool.parallel_for(100, 0, [&](u64 t) { sum.fetch_add(t); });
    EXPECT_EQ(sum.load(), 4950u);
}

// ---------------------------------------------------------------------------
// Chunked engine vs the per-rank sequential path
// ---------------------------------------------------------------------------

Config engine_config(Model model, u64 n = 600) {
    Config cfg;
    cfg.model     = model;
    cfg.n         = n;
    cfg.m         = 5 * n;
    cfg.p         = 0.01;
    cfg.r         = 0.08;
    cfg.avg_deg   = 8;
    cfg.gamma     = 2.8;
    cfg.ba_degree = 3;
    cfg.seed      = 99;
    return cfg;
}

constexpr Model kAllModels[] = {
    Model::GnmDirected,   Model::GnmUndirected, Model::GnpDirected,
    Model::GnpUndirected, Model::Rgg2D,         Model::Rgg3D,
    Model::Rdg2D,         Model::Rdg3D,         Model::Rhg,
    Model::RhgStreaming,  Model::Ba,            Model::Rmat};

class ChunkedEngine : public ::testing::TestWithParam<Model> {};

TEST_P(ChunkedEngine, MatchesPerRankSequentialPath) {
    // With chunks_per_pe = 1 a chunk IS a PE: the engine's MemorySink output
    // must equal the pre-refactor per-rank EdgeList path at the same
    // (seed, n, P) — bitwise as a concatenation, and (a fortiori) after
    // canonical sort.
    const u64 P      = 4;
    const Config cfg = engine_config(GetParam());
    ASSERT_EQ(cfg.chunks_per_pe, 1u);

    EdgeList sequential;
    for (u64 rank = 0; rank < P; ++rank) {
        append(sequential, generate(cfg, rank, P).edges);
    }

    MemorySink sink;
    const ChunkStats stats = generate_chunked(cfg, P, sink);
    sink.finish();
    EXPECT_EQ(stats.num_chunks, P);
    EXPECT_EQ(sink.edges(), sequential) << model_name(cfg.model);
    EXPECT_EQ(undirected_set(sink.edges()), undirected_set(sequential));
}

TEST_P(ChunkedEngine, ThreadedRunIsBitIdenticalToSequential) {
    // Ordered delivery makes the engine's edge stream independent of the
    // worker count and steal schedule. The local 4-participant pool
    // exercises true concurrency even on single-core CI machines.
    Config cfg        = engine_config(GetParam(), 400);
    cfg.chunks_per_pe = 4;
    const u64 P       = 3;

    MemorySink seq_sink;
    generate_chunked(cfg, P, seq_sink, /*threads=*/1);
    seq_sink.finish();

    pe::ThreadPool pool(3);
    MemorySink thr_sink;
    generate_chunked(cfg, P, thr_sink, /*threads=*/4, &pool);
    thr_sink.finish();

    EXPECT_EQ(thr_sink.edges(), seq_sink.edges()) << model_name(cfg.model);
}

TEST_P(ChunkedEngine, PinnedChunksMakeOutputIndependentOfPesAndK) {
    // The determinism contract: with total_chunks pinned, the generated
    // graph is a pure function of (seed, params) — identical for every
    // PE count and every chunks_per_pe, bit for bit.
    Config cfg       = engine_config(GetParam(), 300);
    cfg.total_chunks = 24;

    EdgeList reference;
    bool have_reference = false;
    for (const u64 P : {u64{1}, u64{3}, u64{8}}) {
        for (const u64 K : {u64{1}, u64{4}}) {
            cfg.chunks_per_pe = K;
            MemorySink sink;
            const ChunkStats stats = generate_chunked(cfg, P, sink);
            sink.finish();
            ASSERT_EQ(stats.num_chunks, 24u);
            if (!have_reference) {
                reference      = sink.edges();
                have_reference = true;
                EXPECT_FALSE(reference.empty()) << model_name(cfg.model);
            } else {
                ASSERT_EQ(sink.edges(), reference)
                    << model_name(cfg.model) << " P=" << P << " K=" << K;
            }
        }
    }
}

TEST_P(ChunkedEngine, CountingAndDegreeSinksAgreeWithMaterializedList) {
    Config cfg        = engine_config(GetParam(), 400);
    cfg.chunks_per_pe = 3;
    const u64 P       = 3;

    MemorySink mem;
    generate_chunked(cfg, P, mem);
    mem.finish();

    // Unordered sinks take the concurrent delivery path; run them on a real
    // multi-participant pool to exercise it.
    pe::ThreadPool pool(3);
    CountingSink count;
    generate_chunked(cfg, P, count, /*threads=*/4, &pool);
    count.finish();
    EXPECT_EQ(count.num_edges(), mem.edges().size()) << model_name(cfg.model);
    EXPECT_EQ(count.num_self_loops(),
              static_cast<u64>(std::count_if(
                  mem.edges().begin(), mem.edges().end(),
                  [](const Edge& e) { return e.first == e.second; })));

    DegreeStatsSink stats_sink(num_vertices(cfg));
    generate_chunked(cfg, P, stats_sink, /*threads=*/4, &pool);
    stats_sink.finish();
    EXPECT_EQ(stats_sink.num_edges(), mem.edges().size());
    EXPECT_EQ(stats_sink.degrees(), degrees(mem.edges(), num_vertices(cfg)))
        << model_name(cfg.model);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ChunkedEngine, ::testing::ValuesIn(kAllModels),
                         [](const ::testing::TestParamInfo<Model>& info) {
                             return model_name(info.param);
                         });

TEST_F(SinkFileTest, EngineStreamsBinaryFileIdenticalToMaterializedWrite) {
    Config cfg        = engine_config(Model::GnmUndirected);
    cfg.chunks_per_pe = 4;

    MemorySink mem;
    generate_chunked(cfg, 4, mem);
    mem.finish();

    const auto streamed = track(path("engine.bin"));
    const auto batched  = track(path("materialized.bin"));
    pe::ThreadPool pool(3);
    BinaryFileSink file(streamed);
    generate_chunked(cfg, 4, file, /*threads=*/4, &pool);
    file.finish();
    io::write_edge_list_binary(batched, mem.edges());
    EXPECT_EQ(slurp(streamed), slurp(batched));
}

// ---------------------------------------------------------------------------
// Mergeable summaries: merging per-part summaries must equal the summary of
// the combined stream, exactly — the property the distributed coordinator
// (dist/runner.cpp) relies on, but useful for any multi-run aggregation.
// ---------------------------------------------------------------------------

TEST(CountingSummary, MergeEqualsSummaryOfCombinedStream) {
    const EdgeList edges = some_edges(3000);
    CountingSink whole(EdgeSemantics::exact_once);
    CountingSink lo(EdgeSemantics::exact_once);
    CountingSink hi(EdgeSemantics::exact_once);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        whole.emit(edges[i]);
        (i < 1234 ? lo : hi).emit(edges[i]);
    }
    whole.finish();
    lo.finish();
    hi.finish();
    CountingSummary merged = lo.summarize();
    merged.merge(hi.summarize());
    EXPECT_EQ(merged, whole.summarize());
    EXPECT_EQ(merged.str(), whole.summary());
}

TEST(CountingSummary, MergeRejectsSemanticsMismatch) {
    CountingSummary a, b;
    a.semantics = EdgeSemantics::as_generated;
    b.semantics = EdgeSemantics::exact_once;
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(CountingSummary, SerializeRoundTrips) {
    CountingSink sink(EdgeSemantics::exact_once);
    sink.emit(1, 2);
    sink.emit(3, 3);
    sink.finish();
    const CountingSummary original = sink.summarize();
    std::vector<u8> wire;
    original.serialize(wire);
    const u8* p = wire.data();
    EXPECT_EQ(CountingSummary::deserialize(p, p + wire.size()), original);
    EXPECT_EQ(p, wire.data() + wire.size());
    // Truncation must throw, not decode garbage.
    const u8* q = wire.data();
    EXPECT_THROW(CountingSummary::deserialize(q, q + wire.size() - 1),
                 std::runtime_error);
}

TEST(DegreeStatsSummary, MergeEqualsSummaryOfCombinedStream) {
    const EdgeList edges = some_edges(3000);
    DegreeStatsSink whole(100);
    DegreeStatsSink lo(100);
    DegreeStatsSink hi(100);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        whole.emit(edges[i]);
        (i < 777 ? lo : hi).emit(edges[i]);
    }
    whole.finish();
    lo.finish();
    hi.finish();
    DegreeStatsSummary merged = lo.summarize();
    merged.merge(hi.summarize());
    EXPECT_EQ(merged, whole.summarize());
    EXPECT_EQ(merged.str(), whole.summary());
    EXPECT_EQ(merged.degrees, whole.degrees());
    EXPECT_DOUBLE_EQ(merged.average_degree(), whole.average_degree());
    EXPECT_EQ(merged.max_degree(), whole.max_degree());
}

TEST(DegreeStatsSummary, MergeRejectsMismatchedGraphs) {
    DegreeStatsSink a(10), b(11);
    auto sa = a.summarize();
    EXPECT_THROW(sa.merge(b.summarize()), std::invalid_argument);
    auto sb = DegreeStatsSink(10, EdgeSemantics::exact_once).summarize();
    EXPECT_THROW(sa.merge(sb), std::invalid_argument);
}

TEST(DegreeStatsSummary, SerializeRoundTrips) {
    DegreeStatsSink sink(50, EdgeSemantics::exact_once);
    for (const auto& e : some_edges(500)) sink.emit(e.first % 50, e.second % 50);
    sink.finish();
    const DegreeStatsSummary original = sink.summarize();
    std::vector<u8> wire;
    original.serialize(wire);
    const u8* p = wire.data();
    EXPECT_EQ(DegreeStatsSummary::deserialize(p, p + wire.size()), original);
    const u8* q = wire.data();
    EXPECT_THROW(DegreeStatsSummary::deserialize(q, q + wire.size() - 8),
                 std::runtime_error);
}

TEST(ChunkedEngineApi, RejectsDegenerateShapes) {
    const Config cfg = engine_config(Model::GnmDirected);
    MemorySink sink;
    EXPECT_THROW(generate_chunked(cfg, 0, sink), std::invalid_argument);
    Config bad        = cfg;
    bad.chunks_per_pe = 0;
    EXPECT_THROW(generate_chunked(bad, 1, sink), std::invalid_argument);
}

} // namespace
} // namespace kagen
