// Baseline generators (Fig. 6 / Fig. 9 / Fig. 14 comparators): they must be
// *correct* implementations of their models, or the benchmark comparisons
// against them are meaningless.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/holtgrewe_rgg.hpp"
#include "common/math.hpp"
#include "baselines/nkgen_like.hpp"
#include "baselines/sequential_er.hpp"
#include "graph/stats.hpp"
#include "pe/pe.hpp"
#include "rhg/rhg.hpp"
#include "testing.hpp"

namespace kagen {
namespace {

TEST(BatageljBrandes, GnmExactCountDistinctNoLoops) {
    for (u64 m : {u64{0}, u64{1}, u64{5000}}) {
        const auto dir = baselines::bb_gnm_directed(300, m, 3);
        EXPECT_EQ(dir.size(), m);
        std::set<Edge> set(dir.begin(), dir.end());
        EXPECT_EQ(set.size(), m);
        EXPECT_FALSE(has_self_loop(dir));
        const auto undir = baselines::bb_gnm_undirected(300, m, 3);
        EXPECT_EQ(undir.size(), m);
        for (const auto& [u, v] : undir) EXPECT_GT(u, v);
        std::set<Edge> uset(undir.begin(), undir.end());
        EXPECT_EQ(uset.size(), m);
    }
}

TEST(BatageljBrandes, GnmUniformOverPairs) {
    constexpr u64 n = 20, m = 30, kRuns = 20000;
    std::map<Edge, double> hits;
    for (u64 seed = 0; seed < kRuns; ++seed) {
        for (const auto& e : baselines::bb_gnm_undirected(n, m, seed)) hits[e] += 1.0;
    }
    std::vector<double> observed;
    for (u64 u = 0; u < n; ++u) {
        for (u64 v = 0; v < u; ++v) observed.push_back(hits[{u, v}]);
    }
    const double per_pair = static_cast<double>(kRuns) * m / (n * (n - 1) / 2);
    const std::vector<double> expected(observed.size(), per_pair);
    EXPECT_LT(testing::chi_square(observed, expected),
              testing::chi_square_critical(static_cast<double>(observed.size() - 1)));
}

TEST(BatageljBrandes, GnpEdgeCountConcentrates) {
    constexpr u64 n = 500;
    constexpr double p = 0.02;
    double dir = 0.0, undir = 0.0;
    constexpr u64 kRuns = 50;
    for (u64 seed = 0; seed < kRuns; ++seed) {
        dir += static_cast<double>(baselines::bb_gnp_directed(n, p, seed).size());
        undir += static_cast<double>(baselines::bb_gnp_undirected(n, p, seed).size());
    }
    const double exp_dir   = n * (n - 1) * p;
    const double exp_undir = exp_dir / 2;
    EXPECT_NEAR(dir / kRuns, exp_dir, 6 * std::sqrt(exp_dir / kRuns));
    EXPECT_NEAR(undir / kRuns, exp_undir, 6 * std::sqrt(exp_undir / kRuns));
}

TEST(BatageljBrandes, GnpZeroAndTinyP) {
    EXPECT_TRUE(baselines::bb_gnp_directed(100, 0.0, 1).empty());
    const auto sparse = baselines::bb_gnp_undirected(1000, 1e-7, 1);
    EXPECT_LT(sparse.size(), 10u);
}

TEST(HoltgreweRgg, EdgesMatchBruteForceOverItsPointSet) {
    const baselines::HoltgreweParams params{600, 0.06, 5};
    for (u64 P : {u64{1}, u64{3}, u64{8}}) {
        const auto result = baselines::holtgrewe_generate(params, P);
        // Reconstruct the phase-1 point set exactly as the generator does.
        std::vector<Vec2> pos(params.n);
        for (u64 pe = 0; pe < P; ++pe) {
            Rng rng      = Rng::for_ids(params.seed, {0x401739eeULL, pe});
            const u64 lo = block_begin(params.n, P, pe);
            const u64 hi = block_begin(params.n, P, pe + 1);
            for (u64 id = lo; id < hi; ++id) pos[id] = {rng.uniform(), rng.uniform()};
        }
        EdgeList expected;
        for (u64 i = 0; i < params.n; ++i) {
            for (u64 j = i + 1; j < params.n; ++j) {
                if (distance_sq(pos[i], pos[j]) <= params.r * params.r) {
                    expected.emplace_back(i, j);
                }
            }
        }
        sort_unique(expected);
        EXPECT_EQ(pe::union_undirected(result.per_pe), expected) << "P=" << P;
    }
}

TEST(HoltgreweRgg, CommunicationGrowsWithPeCount) {
    const baselines::HoltgreweParams params{4000, 0.02, 7};
    const auto r1 = baselines::holtgrewe_generate(params, 1);
    const auto r8 = baselines::holtgrewe_generate(params, 8);
    EXPECT_EQ(r1.bytes, 0u) << "single PE exchanges nothing";
    EXPECT_GT(r8.bytes, 0u);
    EXPECT_GT(baselines::simulated_comm_seconds(r8.messages, r8.bytes), 0.0);
}

TEST(NkGenLike, MatchesBruteForceAndInMemory) {
    const hyp::Params params{800, 12, 2.7, 9};
    for (u64 P : {u64{1}, u64{4}}) {
        const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
            return baselines::nkgen_like_generate(params, rank, size);
        });
        EXPECT_EQ(pe::union_undirected(per_pe), rhg::brute_force(params, P));
    }
}

} // namespace
} // namespace kagen
