/// \file testing.hpp
/// \brief Shared statistical and edge-semantics helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace kagen::testing {

/// Redundant emissions in the concatenated per-chunk streams beyond the
/// canonical undirected edge set — i.e. how many duplicate copies the
/// paper's §4.2/§5.1 recomputation trick produced. 0 iff the streams are
/// globally exact-once. (Undirected canonicalization is applied, so use
/// this on undirected models only.)
inline u64 duplicate_excess(const std::vector<EdgeList>& per_chunk) {
    u64 total = 0;
    EdgeList all;
    for (const auto& part : per_chunk) {
        total += part.size();
        append(all, part);
    }
    return total - undirected_set(std::move(all)).size();
}

/// `expected_duplicates`-style assertion: a streamed emission total must be
/// the canonical edge count plus exactly the expected duplicate copies —
/// `expected_duplicates == 0` is the exact-once contract, and
/// `expected_duplicates == duplicate_excess(per_chunk)` pins as-generated
/// streams to the legacy per-chunk outputs.
inline ::testing::AssertionResult total_matches_semantics(u64 streamed_total,
                                                          u64 canonical_edges,
                                                          u64 expected_duplicates) {
    if (streamed_total == canonical_edges + expected_duplicates) {
        return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure()
           << "streamed total " << streamed_total << " != canonical "
           << canonical_edges << " + expected duplicates " << expected_duplicates
           << " (off by "
           << (static_cast<i64>(streamed_total) -
               static_cast<i64>(canonical_edges + expected_duplicates))
           << ")";
}

/// Pearson chi-square statistic over observed vs expected counts.
inline double chi_square(const std::vector<double>& observed,
                         const std::vector<double>& expected) {
    double stat = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double diff = observed[i] - expected[i];
        stat += diff * diff / expected[i];
    }
    return stat;
}

/// Approximate upper critical value of the chi-square distribution with `df`
/// degrees of freedom at significance ~1e-4 (Wilson–Hilferty). Tests using
/// fixed seeds are deterministic, so a rare-tail threshold avoids flakes
/// while still catching real distribution bugs by orders of magnitude.
inline double chi_square_critical(double df, double z = 3.72) {
    const double t = 1.0 - 2.0 / (9.0 * df) + z * std::sqrt(2.0 / (9.0 * df));
    return df * t * t * t;
}

/// Bins integer samples against an exact pmf: consecutive support values are
/// merged until each bin's expected count is >= `min_expected`, then the
/// chi-square statistic and degrees of freedom are computed.
struct BinnedChiSquare {
    double statistic = 0.0;
    double df        = 0.0;
};

inline BinnedChiSquare binned_chi_square(const std::map<u64, u64>& histogram,
                                         const std::vector<double>& pmf, u64 support_lo,
                                         u64 total_samples, double min_expected = 8.0) {
    std::vector<double> obs_bins;
    std::vector<double> exp_bins;
    double obs_acc = 0.0;
    double exp_acc = 0.0;
    for (std::size_t k = 0; k < pmf.size(); ++k) {
        const auto it = histogram.find(support_lo + k);
        obs_acc += (it == histogram.end()) ? 0.0 : static_cast<double>(it->second);
        exp_acc += pmf[k] * static_cast<double>(total_samples);
        if (exp_acc >= min_expected) {
            obs_bins.push_back(obs_acc);
            exp_bins.push_back(exp_acc);
            obs_acc = exp_acc = 0.0;
        }
    }
    if (exp_acc > 0.0 && !exp_bins.empty()) { // fold the tail into the last bin
        obs_bins.back() += obs_acc;
        exp_bins.back() += exp_acc;
    }
    BinnedChiSquare out;
    out.statistic = chi_square(obs_bins, exp_bins);
    out.df        = static_cast<double>(obs_bins.size()) - 1.0;
    return out;
}

/// One-sample Kolmogorov–Smirnov statistic: sup |F_n(x) - F(x)| over the
/// sample, with `cdf` the hypothesized CDF evaluated at each sample value.
/// Samples need not be pre-sorted. For n iid samples the ~1e-4-significance
/// threshold is ks_critical(n) (asymptotic K-distribution tail:
/// c(alpha) / sqrt(n) with c(1e-4) ~ 2.08) — same rare-tail philosophy as
/// chi_square_critical: fixed-seed tests never flake, real bugs exceed the
/// threshold by orders of magnitude.
template <typename Cdf>
double ks_statistic(std::vector<double> samples, Cdf&& cdf) {
    std::sort(samples.begin(), samples.end());
    const double n = static_cast<double>(samples.size());
    double stat    = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double f  = cdf(samples[i]);
        const double lo = static_cast<double>(i) / n;
        const double hi = static_cast<double>(i + 1) / n;
        stat            = std::max({stat, f - lo, hi - f});
    }
    return stat;
}

inline double ks_critical(std::size_t n, double c = 2.08) {
    return c / std::sqrt(static_cast<double>(n));
}

} // namespace kagen::testing
