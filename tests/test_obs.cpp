// Telemetry layer (DESIGN.md §13): metrics-registry semantics (merge,
// subtract, wire codec), the per-thread trace-recorder protocol, hardened
// telemetry-frame decoding (torn, oversized, hostile), Chrome trace JSON
// shape — and the property the whole subsystem exists to preserve:
// generation output stays byte-identical with telemetry on or off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/bytes.hpp"
#include "kagen.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace kagen {
namespace {

std::string tmp_path(const std::string& name) {
    return ::testing::TempDir() + "kagen_obs_" + std::to_string(::getpid()) +
           "_" + name;
}

std::string read_text(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void remove_quiet(const std::string& path) { std::remove(path.c_str()); }

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

TEST(ObsMetrics, HistogramBucketOfIsLog2Shaped) {
    EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
    EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
    EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
    EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
    EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
    EXPECT_EQ(obs::Histogram::bucket_of((u64{1} << 32) - 1), 32);
    EXPECT_EQ(obs::Histogram::bucket_of(u64{1} << 32), 33);
    EXPECT_EQ(obs::Histogram::bucket_of(~u64{0}), 64);
}

TEST(ObsMetrics, CounterRecordMaxKeepsPeak) {
    obs::Counter c;
    c.record_max(10);
    c.record_max(3);
    EXPECT_EQ(c.value(), 10u);
    c.record_max(42);
    EXPECT_EQ(c.value(), 42u);
}

TEST(ObsMetrics, RegistryReturnsSameInstrumentByName) {
    obs::Registry& reg = obs::Registry::global();
    obs::Counter& a    = reg.counter("test_obs.same");
    obs::Counter& b    = reg.counter("test_obs.same");
    EXPECT_EQ(&a, &b);
    const u64 before = reg.snapshot().counter_or("test_obs.same");
    a.add(7);
    EXPECT_EQ(reg.snapshot().counter_or("test_obs.same"), before + 7);
}

// ---------------------------------------------------------------------------
// Snapshot algebra
// ---------------------------------------------------------------------------

TEST(ObsMetrics, SubtractClampsSumsAndPassesMaxThrough) {
    obs::Snapshot base, end;
    base.counters["sum"]  = {10, obs::MergeKind::sum};
    end.counters["sum"]   = {4, obs::MergeKind::sum}; // "newer" base: clamp
    base.counters["peak"] = {100, obs::MergeKind::max};
    end.counters["peak"]  = {60, obs::MergeKind::max};
    end.counters["fresh"] = {5, obs::MergeKind::sum};

    const obs::Snapshot delta = end.subtract(base);
    EXPECT_EQ(delta.counter_or("sum"), 0u);   // clamped, not wrapped
    EXPECT_EQ(delta.counter_or("peak"), 60u); // a peak is not a rate
    EXPECT_EQ(delta.counter_or("fresh"), 5u);
}

TEST(ObsMetrics, MergeSumsMaxesAndFoldsHistograms) {
    obs::Snapshot a, b;
    a.counters["edges"] = {10, obs::MergeKind::sum};
    b.counters["edges"] = {32, obs::MergeKind::sum};
    a.counters["peak"]  = {100, obs::MergeKind::max};
    b.counters["peak"]  = {250, obs::MergeKind::max};
    a.histograms["h"]   = {2, 5, {{1, 1}, {3, 1}}};
    b.histograms["h"]   = {3, 9, {{3, 2}, {7, 1}}};

    a.merge(b);
    EXPECT_EQ(a.counter_or("edges"), 42u);
    EXPECT_EQ(a.counter_or("peak"), 250u);
    const auto& h = a.histograms.at("h");
    EXPECT_EQ(h.count, 5u);
    EXPECT_EQ(h.sum, 14u);
    const std::vector<std::pair<u32, u64>> want = {{1, 1}, {3, 3}, {7, 1}};
    EXPECT_EQ(h.buckets, want);
}

TEST(ObsMetrics, SnapshotSerializeRoundTrips) {
    obs::Snapshot snap;
    snap.counters["a.sum"]  = {123456789, obs::MergeKind::sum};
    snap.counters["b.peak"] = {~u64{0}, obs::MergeKind::max};
    snap.histograms["lat"]  = {7, 1000, {{0, 2}, {12, 4}, {64, 1}}};

    std::vector<u8> wire;
    snap.serialize(wire);
    const u8* p              = wire.data();
    const u8* end            = p + wire.size();
    const obs::Snapshot back = obs::Snapshot::deserialize(p, end);
    EXPECT_EQ(p, end);
    EXPECT_EQ(back.counters.size(), 2u);
    EXPECT_EQ(back.counter_or("a.sum"), 123456789u);
    EXPECT_EQ(back.counters.at("b.peak").kind, obs::MergeKind::max);
    EXPECT_EQ(back.histograms.at("lat").sum, 1000u);
    EXPECT_EQ(back.histograms.at("lat").buckets,
              snap.histograms.at("lat").buckets);
}

// ---------------------------------------------------------------------------
// Telemetry frame codec — round trip and hostile-input rejection
// ---------------------------------------------------------------------------

obs::RankTelemetry sample_telemetry() {
    obs::RankTelemetry t;
    t.rank          = 3;
    t.clock_base_ns = 999;
    t.dropped       = 1;
    obs::TraceEvent ev;
    ev.begin_ns = 100;
    ev.dur_ns   = 50;
    ev.arg      = 7;
    ev.tid      = 2;
    ev.phase    = obs::Phase::spill_replay;
    ev.is_span  = 1;
    t.events.push_back(ev);
    ev.phase   = obs::Phase::steal;
    ev.is_span = 0;
    ev.dur_ns  = 0;
    t.events.push_back(ev);
    t.metrics.counters["edges"] = {42, obs::MergeKind::sum};
    return t;
}

TEST(ObsTelemetry, RoundTrips) {
    const obs::RankTelemetry t    = sample_telemetry();
    const std::vector<u8> wire    = obs::serialize_telemetry(t);
    const obs::RankTelemetry back = obs::deserialize_telemetry(wire);
    EXPECT_EQ(back.rank, t.rank);
    EXPECT_EQ(back.clock_base_ns, t.clock_base_ns);
    EXPECT_EQ(back.dropped, t.dropped);
    ASSERT_EQ(back.events.size(), 2u);
    EXPECT_EQ(back.events[0].phase, obs::Phase::spill_replay);
    EXPECT_EQ(back.events[0].is_span, 1);
    EXPECT_EQ(back.events[1].phase, obs::Phase::steal);
    EXPECT_EQ(back.events[1].is_span, 0);
    EXPECT_EQ(back.events[1].tid, 2u);
    EXPECT_EQ(back.metrics.counter_or("edges"), 42u);
}

TEST(ObsTelemetry, RejectsImplausibleEventCount) {
    // Hand-built frame announcing ~2^61 events with an empty body: must be
    // rejected up front, before any allocation.
    std::vector<u8> wire;
    bytes::put_u64(wire, 0); // rank
    bytes::put_u64(wire, 0); // clock base
    bytes::put_u64(wire, 0); // dropped
    obs::Snapshot{}.serialize(wire);
    bytes::put_u64(wire, u64{1} << 61); // event count
    EXPECT_THROW(obs::deserialize_telemetry(wire), std::runtime_error);
}

TEST(ObsTelemetry, RejectsUnknownPhase) {
    obs::RankTelemetry t = sample_telemetry();
    std::vector<u8> wire = obs::serialize_telemetry(t);
    // The meta word of the first event is its final 8 bytes of the first
    // 32-byte record; poison the phase byte (bits 8..15).
    const std::size_t meta_at = wire.size() - 2 * 32 + 24;
    wire[meta_at + 1]         = 0xee;
    EXPECT_THROW(obs::deserialize_telemetry(wire), std::runtime_error);
}

TEST(ObsTelemetry, RejectsTornAndTrailingFrames) {
    const std::vector<u8> wire = obs::serialize_telemetry(sample_telemetry());
    for (const std::size_t cut : {wire.size() - 1, wire.size() / 2,
                                  std::size_t{8}, std::size_t{0}}) {
        const std::vector<u8> torn(wire.begin(),
                                   wire.begin() + static_cast<long>(cut));
        EXPECT_THROW(obs::deserialize_telemetry(torn), std::runtime_error)
            << "cut at " << cut;
    }
    std::vector<u8> trailing = wire;
    trailing.push_back(0);
    EXPECT_THROW(obs::deserialize_telemetry(trailing), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Recorder protocol
// ---------------------------------------------------------------------------

TEST(ObsRecorder, SpansAndInstantsDrainOnceThroughWatermark) {
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    std::vector<obs::TraceEvent> stale;
    rec.drain(stale); // isolate from earlier tests sharing the process

    rec.enable(true);
    {
        const obs::Span span(obs::Phase::em_sort, 77);
    }
    obs::instant(obs::Phase::budget_park, 5);
    rec.enable(false);

    std::vector<obs::TraceEvent> events;
    rec.drain(events);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, obs::Phase::em_sort);
    EXPECT_EQ(events[0].is_span, 1);
    EXPECT_EQ(events[0].arg, 77u);
    EXPECT_EQ(events[1].phase, obs::Phase::budget_park);
    EXPECT_EQ(events[1].is_span, 0);
    EXPECT_EQ(events[1].arg, 5u);
    EXPECT_GT(events[0].begin_ns, 0u);

    // The watermark advanced: a second drain returns nothing new.
    std::vector<obs::TraceEvent> again;
    rec.drain(again);
    EXPECT_TRUE(again.empty());
}

TEST(ObsRecorder, DisabledRecorderRecordsNothing) {
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    std::vector<obs::TraceEvent> stale;
    rec.drain(stale);
    ASSERT_FALSE(rec.enabled());
    {
        const obs::Span span(obs::Phase::generate, 1);
    }
    obs::instant(obs::Phase::steal);
    std::vector<obs::TraceEvent> events;
    rec.drain(events);
    EXPECT_TRUE(events.empty());
}

// ---------------------------------------------------------------------------
// Chrome trace JSON
// ---------------------------------------------------------------------------

TEST(ObsTrace, ChromeJsonCarriesRankProcessesSpansAndInstants) {
    obs::RankTimeline r0;
    r0.rank  = 0;
    r0.label = "rank 0";
    obs::TraceEvent ev;
    ev.begin_ns = 1500;
    ev.dur_ns   = 2500;
    ev.phase    = obs::Phase::generate;
    ev.is_span  = 1;
    r0.events.push_back(ev);

    obs::RankTimeline r1;
    r1.rank      = 1;
    r1.label     = "coordinator";
    r1.offset_ns = -5000; // clamps the early event to ts 0
    ev.begin_ns  = 1000;
    ev.dur_ns    = 0;
    ev.phase     = obs::Phase::steal;
    ev.is_span   = 0;
    r1.events.push_back(ev);

    const std::string path = tmp_path("trace.json");
    obs::write_chrome_trace(path, {r0, r1});
    const std::string doc = read_text(path);
    remove_quiet(path);

    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"rank 0\""), std::string::npos);
    EXPECT_NE(doc.find("\"coordinator\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"s\": \"t\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"generate\""), std::string::npos);
    // µs with ns fraction: 1500 ns → 1.500; the offset rank clamps to 0.
    EXPECT_NE(doc.find("\"ts\": 1.500"), std::string::npos);
    EXPECT_NE(doc.find("\"ts\": 0.000"), std::string::npos);
    // Balanced braces ⇒ at least structurally a JSON object.
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
    EXPECT_EQ(doc.front(), '{');
}

// ---------------------------------------------------------------------------
// End to end: telemetry must not change a single output byte
// ---------------------------------------------------------------------------

Config sweep_config(Model model) {
    Config cfg;
    cfg.model         = model;
    cfg.n             = 1200;
    cfg.seed          = 5;
    cfg.chunks_per_pe = 4;
    switch (model) {
        case Model::GnmUndirected: cfg.m = 6000; break;
        case Model::Rgg2D: cfg.r = 0.05; break;
        case Model::Rhg:
            cfg.avg_deg = 6.0;
            cfg.gamma   = 2.9;
            break;
        default: break;
    }
    return cfg;
}

std::string chunked_file(const Config& cfg, const std::string& tag) {
    const std::string path = tmp_path(tag + ".bin");
    BinaryFileSink sink(path);
    // Explicit 4-participant pool: the ordered-parallel engine path must be
    // exercised (and instrumented) even on single-core CI machines.
    pe::ThreadPool pool(3);
    generate_chunked(cfg, 4, sink, 4, &pool);
    sink.finish();
    return path;
}

TEST(ObsEndToEnd, ChunkedOutputByteIdenticalWithTelemetryOn) {
    for (const Model model : {Model::GnmUndirected, Model::Rgg2D, Model::Rhg}) {
        Config cfg             = sweep_config(model);
        const std::string off  = chunked_file(cfg, "off");
        cfg.trace_path         = tmp_path("on.trace.json");
        cfg.metrics_path       = tmp_path("on.metrics.json");
        const std::string on   = chunked_file(cfg, "on");
        EXPECT_EQ(read_text(off), read_text(on)) << model_name(model);
        EXPECT_FALSE(read_text(cfg.trace_path).empty());
        EXPECT_FALSE(read_text(cfg.metrics_path).empty());
        remove_quiet(off);
        remove_quiet(on);
        remove_quiet(cfg.trace_path);
        remove_quiet(cfg.metrics_path);
    }
}

TEST(ObsEndToEnd, DistributedOutputByteIdenticalWithTelemetryOn) {
    Config cfg = sweep_config(Model::GnmUndirected);
    dist::DistOptions opts;
    opts.num_ranks   = 3;
    opts.num_pes     = 4;
    opts.output_path = tmp_path("dist_off.bin");
    const dist::DistResult off = generate_distributed(cfg, opts);

    cfg.trace_path   = tmp_path("dist.trace.json");
    cfg.metrics_path = tmp_path("dist.metrics.json");
    opts.output_path = tmp_path("dist_on.bin");
    const dist::DistResult on = generate_distributed(cfg, opts);

    EXPECT_EQ(off.edges_written, on.edges_written);
    EXPECT_EQ(read_text(tmp_path("dist_off.bin")), read_text(tmp_path("dist_on.bin")));

    // The merged trace names every rank timeline plus the coordinator.
    const std::string trace = read_text(cfg.trace_path);
    EXPECT_NE(trace.find("\"rank 0\""), std::string::npos);
    EXPECT_NE(trace.find("\"rank 1\""), std::string::npos);
    EXPECT_NE(trace.find("\"rank 2\""), std::string::npos);
    EXPECT_NE(trace.find("\"coordinator\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\": \"generate\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\": \"merge\""), std::string::npos);

    // Merged metrics agree with the run summary: the file sink of every
    // rank counted exactly the edges the merge wrote out.
    const std::string metrics = read_text(cfg.metrics_path);
    EXPECT_NE(metrics.find("\"sink.edges_written\""), std::string::npos);
    EXPECT_NE(metrics.find("\"dist.merged_bytes\""), std::string::npos);

    remove_quiet(tmp_path("dist_off.bin"));
    remove_quiet(tmp_path("dist_on.bin"));
    remove_quiet(cfg.trace_path);
    remove_quiet(cfg.metrics_path);
}

TEST(ObsEndToEnd, MetricsDeltaMatchesRunSummary) {
    Config cfg       = sweep_config(Model::GnmUndirected);
    cfg.metrics_path = tmp_path("delta.metrics.json");
    const std::string path = tmp_path("delta.bin");

    const obs::Snapshot base = obs::Registry::global().snapshot();
    BinaryFileSink sink(path);
    pe::ThreadPool pool(3);
    const ChunkStats stats = generate_chunked(cfg, 4, sink, 4, &pool);
    sink.finish();
    const obs::Snapshot delta =
        obs::Registry::global().snapshot().subtract(base);

    // Registry view == per-run struct view (satellite of DESIGN.md §13:
    // ChunkRunStats is a thin view over the same instruments).
    EXPECT_EQ(delta.counter_or("pe.chunks"), stats.num_chunks);
    EXPECT_EQ(delta.counter_or("pe.runs"), 1u);
    EXPECT_EQ(delta.counter_or("pe.spilled_chunks"), stats.spilled_chunks);
    EXPECT_EQ(delta.counter_or("sink.edges_written"), sink.num_edges());
    // Every chunk's edge count flowed through the histogram.
    const auto& hist = delta.histograms.at("pe.chunk_edges");
    EXPECT_EQ(hist.count, stats.num_chunks);
    EXPECT_EQ(hist.sum, sink.num_edges());

    remove_quiet(path);
    remove_quiet(cfg.metrics_path);
}

} // namespace
} // namespace kagen
