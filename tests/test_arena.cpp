// Slab-arena units (DESIGN.md §14): slab alignment and capacity, freelist
// reuse, overflow chaining without edge movement, graceful exhaustion
// fallback to the heap, decommit-mode recycling — plus the arena-on
// byte-identity sweep: with chunks materializing in slab chains instead of
// vectors, the chunked engine's output must stay bit-identical to the
// direct-streaming single-worker baseline across models, (P, K) splits,
// thread counts, semantics, and slab sizes.
// ctest labels: pool;arena (re-run under ASan/TSan in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kagen.hpp"
#include "pe/arena.hpp"
#include "pe/pe.hpp"
#include "sink/sinks.hpp"

namespace kagen {
namespace {

// ---------------------------------------------------------------------------
// SlabArena units
// ---------------------------------------------------------------------------

TEST(SlabArena, PayloadIsCacheLineAlignedAtHeaderOffset) {
    pe::SlabArena arena(4096);
    EXPECT_EQ(arena.slab_bytes(), 4096u);
    EXPECT_EQ(arena.slab_capacity_edges(),
              (4096u - pe::Slab::kHeaderBytes) / sizeof(Edge));

    pe::Slab* s = arena.acquire();
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s->edges()) -
                  reinterpret_cast<std::uintptr_t>(s),
              pe::Slab::kHeaderBytes);
    // mmap returns page-aligned bases (the heap fallback is 64-aligned), so
    // the first edge of every slab sits on a cache-line boundary.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s->edges()) % 64, 0u);
    arena.release(s);
}

TEST(SlabArena, SlabBytesClampedToMinimum) {
    pe::SlabArena arena(1);
    EXPECT_GE(arena.slab_bytes(), pe::SlabArena::kMinSlabBytes);
    EXPECT_GT(arena.slab_capacity_edges(), 0u);
}

TEST(SlabArena, FreelistReusesReleasedSlabs) {
    pe::SlabArena arena(4096);
    pe::Slab* a = arena.acquire();
    pe::Slab* b = arena.acquire();
    EXPECT_EQ(arena.slabs_reserved(), 2u);
    EXPECT_EQ(arena.freelist_hits(), 0u);

    arena.release(a);
    arena.release(b);
    EXPECT_EQ(arena.freelist_size(), 2u);

    // LIFO reuse, and no new reservation while the freelist has stock.
    EXPECT_EQ(arena.acquire(), b);
    EXPECT_EQ(arena.acquire(), a);
    EXPECT_EQ(arena.freelist_hits(), 2u);
    EXPECT_EQ(arena.slabs_reserved(), 2u);
    arena.release(a);
    arena.release(b);
}

TEST(SlabArena, ExhaustionFallsBackToHeapGracefully) {
    // Cap kernel-backed slabs at 1: the second acquire must take the heap
    // path and still behave like a slab end to end, including recycling
    // through the same freelist.
    pe::SlabArena arena(4096, /*populate=*/false, /*decommit_on_release=*/false,
                        /*max_mapped_slabs=*/1);
    pe::Slab* a = arena.acquire();
    pe::Slab* b = arena.acquire();
#ifdef __linux__
    EXPECT_FALSE(a->heap);
    EXPECT_TRUE(b->heap);
    EXPECT_EQ(arena.heap_fallbacks(), 1u);
#endif
    b->edges()[0] = Edge{1, 2};
    b->count      = 1;
    EXPECT_EQ(b->edges()[0], (Edge{1, 2}));

    arena.release(a);
    arena.release(b);
    pe::Slab* c = arena.acquire();
    EXPECT_EQ(c, b) << "heap slabs recycle through the same freelist";
    EXPECT_EQ(c->count, 0u) << "recycled slabs come back empty";
    arena.release(c);
}

TEST(SlabArena, DecommitKeepsPayloadUsableAfterReuse) {
    pe::SlabArena arena(4096, /*populate=*/false, /*decommit_on_release=*/true);
    pe::Slab* s = arena.acquire();
    const u64 cap = s->capacity;
    for (u64 i = 0; i < cap; ++i) s->edges()[i] = Edge{i, i};
    s->count = cap;
    arena.release(s); // payload pages returned to the kernel

    pe::Slab* t = arena.acquire();
    EXPECT_EQ(t, s);
    // Re-faulted pages must be writable and readable again.
    for (u64 i = 0; i < cap; ++i) t->edges()[i] = Edge{i, i + 1};
    for (u64 i = 0; i < cap; ++i) EXPECT_EQ(t->edges()[i], (Edge{i, i + 1}));
    arena.release(t);
}

// ---------------------------------------------------------------------------
// ChunkBuffer chaining
// ---------------------------------------------------------------------------

TEST(ChunkBufferChains, OverflowChainsWithoutMovingEdges) {
    pe::SlabArena arena(pe::SlabArena::kMinSlabBytes);
    const u64 cap = arena.slab_capacity_edges();
    pe::ChunkBuffer buf(&arena);

    std::vector<Edge> src;
    for (u64 i = 0; i < cap * 2 + 3; ++i) src.push_back(Edge{i, i + 1});

    buf.append(src.data(), 1);
    const Edge* first = nullptr;
    buf.for_each_segment([&](EdgeSpan seg) { first = seg.data; });
    ASSERT_NE(first, nullptr);

    buf.append(src.data() + 1, src.size() - 1);
    EXPECT_EQ(buf.size(), src.size());
    EXPECT_EQ(buf.slabs_held(), 3u);
    EXPECT_EQ(arena.chains(), 2u);

    // Stitched segments reproduce the source exactly; the first slab's
    // payload never moved when the buffer overflowed.
    u64 i              = 0;
    bool checked_first = false;
    buf.for_each_segment([&](EdgeSpan seg) {
        if (!checked_first) {
            EXPECT_EQ(seg.data, first) << "no edge may move on overflow";
            checked_first = true;
        }
        for (const Edge& e : seg) EXPECT_EQ(e, src[i++]);
    });
    EXPECT_EQ(i, src.size());

    buf.release();
    EXPECT_EQ(arena.freelist_size(), 3u);
}

TEST(ChunkBufferChains, ArenaSinkEmitsInPlaceAcrossSlabBoundaries) {
    pe::SlabArena arena(pe::SlabArena::kMinSlabBytes);
    const u64 cap = arena.slab_capacity_edges();
    const u64 n   = cap + cap / 2; // forces exactly one chain
    pe::ChunkBuffer buf(&arena);
    {
        pe::ArenaSink sink(buf);
        for (u64 i = 0; i < n; ++i) sink.emit(i, i * 2 + 1);
        sink.flush();
    }
    EXPECT_EQ(buf.size(), n);
    EXPECT_EQ(buf.slabs_held(), 2u);
    EXPECT_EQ(arena.chains(), 1u);
    u64 i = 0;
    buf.for_each_segment([&](EdgeSpan seg) {
        for (const Edge& e : seg) {
            EXPECT_EQ(e.first, i);
            EXPECT_EQ(e.second, i * 2 + 1);
            ++i;
        }
    });
    EXPECT_EQ(i, n);
    buf.release();
}

// ---------------------------------------------------------------------------
// Arena-on byte-identity sweep
// ---------------------------------------------------------------------------

// The single-worker run takes the direct-streaming path (no chunk buffers,
// no arena — unchanged across the arena refactor), so it doubles as the
// pre-arena baseline: every golden fixture pins that path, and this sweep
// pins the arena path to it. A deliberately tiny slab size forces chunks to
// chain several slabs, so segmented delivery is exercised, not just the
// one-slab fast case.
TEST(ArenaByteIdentity, SweepMatchesDirectStreamingBaseline) {
    constexpr u64 kTotalChunks = 10; // pinned: output independent of (P, K)
    pe::ThreadPool pool(2);          // 3 participants

    for (const auto semantics :
         {EdgeSemantics::as_generated, EdgeSemantics::exact_once}) {
        for (const auto model :
             {Model::GnmDirected, Model::GnmUndirected, Model::Rgg2D}) {
            Config cfg;
            cfg.model            = model;
            cfg.n                = 600;
            cfg.m                = 2400;
            cfg.r                = 0.08;
            cfg.seed             = 33;
            cfg.total_chunks     = kTotalChunks;
            cfg.edge_semantics   = semantics;
            cfg.arena_slab_bytes = 4096; // force multi-slab chunks

            MemorySink ref;
            generate_chunked(cfg, 1, ref, /*threads=*/1);
            const EdgeList reference = ref.take();
            ASSERT_FALSE(reference.empty());

            for (const u64 pes : {u64{1}, u64{2}, u64{5}}) {
                for (const u64 k : {u64{1}, u64{3}}) {
                    cfg.chunks_per_pe = k;
                    for (const u64 threads : {u64{1}, u64{3}}) {
                        MemorySink sink;
                        generate_chunked(cfg, pes, sink, threads, &pool);
                        EXPECT_EQ(sink.take(), reference)
                            << "model=" << static_cast<int>(model)
                            << " semantics=" << static_cast<int>(semantics)
                            << " P=" << pes << " K=" << k
                            << " threads=" << threads;
                    }
                }
            }
        }
    }
}

TEST(ArenaByteIdentity, SlabSizeNeverChangesOutput) {
    pe::ThreadPool pool(2);
    Config cfg;
    cfg.model         = Model::GnmUndirected;
    cfg.n             = 800;
    cfg.m             = 4000;
    cfg.seed          = 5;
    cfg.total_chunks  = 12;
    cfg.chunks_per_pe = 3;

    MemorySink ref;
    generate_chunked(cfg, 4, ref, /*threads=*/1);
    const EdgeList reference = ref.take();

    for (const u64 slab_bytes : {u64{0}, u64{4096}, u64{1} << 16}) {
        cfg.arena_slab_bytes = slab_bytes;
        MemorySink sink;
        generate_chunked(cfg, 4, sink, /*threads=*/3, &pool);
        EXPECT_EQ(sink.take(), reference) << "slab_bytes=" << slab_bytes;
    }
}

// Bounded-memory (spill) path with a chaining-small slab size: parked
// chunks round-trip segment-wise through the spill file and the drainer's
// scratch-slab replay — output must stay byte-identical.
TEST(ArenaByteIdentity, SpillWithTinySlabsMatchesBaseline) {
    pe::ThreadPool pool(2);
    Config cfg;
    cfg.model         = Model::GnmDirected;
    cfg.n             = 700;
    cfg.m             = 5000;
    cfg.seed          = 17;
    cfg.total_chunks  = 16;
    cfg.chunks_per_pe = 4;

    MemorySink ref;
    generate_chunked(cfg, 4, ref, /*threads=*/1);
    const EdgeList reference = ref.take();

    cfg.arena_slab_bytes   = 4096;
    cfg.max_buffered_bytes = 256; // nearly every out-of-order chunk spills
    MemorySink sink;
    const ChunkStats stats = generate_chunked(cfg, 4, sink, /*threads=*/3, &pool);
    EXPECT_EQ(sink.take(), reference);
    EXPECT_LE(stats.peak_buffered_bytes,
              cfg.max_buffered_bytes +
                  (5000 / 16 + 5000 % 16 + 1) * sizeof(Edge) * 2)
        << "sanity: bounded window stayed near the budget";
}

} // namespace
} // namespace kagen
