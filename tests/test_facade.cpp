// Public facade + cross-module integration: every model generates through
// kagen::generate, respects (rank, size) purity, and downstream graph
// utilities (CSR, BFS, components) consume the outputs.
#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/stats.hpp"
#include "kagen.hpp"
#include "pe/pe.hpp"

namespace kagen {
namespace {

Config small_config(Model model) {
    Config cfg;
    cfg.model     = model;
    cfg.n         = 600;
    cfg.m         = 3000;
    cfg.p         = 0.01;
    cfg.r         = 0.08;
    cfg.avg_deg   = 8;
    cfg.gamma     = 2.8;
    cfg.ba_degree = 3;
    cfg.seed      = 99;
    return cfg;
}

class AllModels : public ::testing::TestWithParam<Model> {};

TEST_P(AllModels, GeneratesAndIsPure) {
    const Config cfg = small_config(GetParam());
    const Result a   = generate(cfg, 1, 4);
    const Result b   = generate(cfg, 1, 4);
    EXPECT_EQ(a.edges, b.edges) << model_name(cfg.model);
    EXPECT_GE(a.n, cfg.n);
    for (const auto& [u, v] : a.edges) {
        EXPECT_LT(u, a.n);
        EXPECT_LT(v, a.n);
    }
}

TEST_P(AllModels, UnionAcrossPesIsNonEmptyAndConsumable) {
    const Config cfg  = small_config(GetParam());
    const auto per_pe = pe::run_all(4, [&](u64 rank, u64 size) {
        return generate(cfg, rank, size).edges;
    });
    const EdgeList all = pe::union_undirected(per_pe);
    ASSERT_FALSE(all.empty()) << model_name(cfg.model);
    const u64 n = generate(cfg, 0, 1).n;
    // Downstream pipeline: CSR + BFS + components must all work.
    const Csr csr = build_csr(all, n, /*symmetrize=*/true);
    u64 reached   = 0;
    bfs(csr, all.front().first, &reached);
    EXPECT_GE(reached, 1u);
    EXPECT_GE(connected_components(all, n), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Everything, AllModels,
    ::testing::Values(Model::GnmDirected, Model::GnmUndirected, Model::GnpDirected,
                      Model::GnpUndirected, Model::Rgg2D, Model::Rgg3D, Model::Rdg2D,
                      Model::Rdg3D, Model::Rhg, Model::RhgStreaming, Model::Ba,
                      Model::Rmat),
    [](const ::testing::TestParamInfo<Model>& info) {
        return model_name(info.param);
    });

TEST(Facade, RmatRoundsVertexCount) {
    Config cfg = small_config(Model::Rmat);
    cfg.n      = 1000; // not a power of two
    EXPECT_EQ(generate(cfg, 0, 1).n, 1024u);
}

TEST(Facade, InvalidRankThrows) {
    const Config cfg = small_config(Model::GnmDirected);
    EXPECT_THROW(generate(cfg, 4, 4), std::invalid_argument);
    EXPECT_THROW(generate(cfg, 0, 0), std::invalid_argument);
}

TEST(PeHarness, ThreadedAndSequentialAgree) {
    const Config cfg = small_config(Model::Rgg2D);
    const auto seq = pe::run_all(8, [&](u64 r, u64 s) { return generate(cfg, r, s).edges; },
                                 /*threaded=*/false);
    const auto thr = pe::run_all(8, [&](u64 r, u64 s) { return generate(cfg, r, s).edges; },
                                 /*threaded=*/true);
    EXPECT_EQ(seq, thr);
}

TEST(PeHarness, RunTimedReturnsPositive) {
    const Config cfg = small_config(Model::GnmDirected);
    const double t = pe::run_timed(4, [&](u64 r, u64 s) { return generate(cfg, r, s).edges; });
    EXPECT_GT(t, 0.0);
}

TEST(GraphStats, CsrAndBfsOnKnownGraph) {
    // Path 0-1-2-3 plus isolated 4.
    const EdgeList edges{{0, 1}, {1, 2}, {2, 3}};
    const Csr g = build_csr(edges, 5, true);
    EXPECT_EQ(g.degree(1), 2u);
    u64 reached = 0;
    const auto dist = bfs(g, 0, &reached);
    EXPECT_EQ(reached, 4u);
    EXPECT_EQ(dist[3], 3u);
    EXPECT_EQ(connected_components(edges, 5), 2u);
}

TEST(GraphStats, ClusteringCoefficientKnownValues) {
    // Triangle: coefficient 1. Star: coefficient 0.
    EXPECT_DOUBLE_EQ(global_clustering_coefficient({{0, 1}, {1, 2}, {0, 2}}, 3), 1.0);
    EXPECT_DOUBLE_EQ(global_clustering_coefficient({{0, 1}, {0, 2}, {0, 3}}, 4), 0.0);
}

} // namespace
} // namespace kagen
