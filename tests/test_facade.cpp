// Public facade + cross-module integration: every model generates through
// kagen::generate, respects (rank, size) purity, and downstream graph
// utilities (CSR, BFS, components) consume the outputs.
#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/stats.hpp"
#include "kagen.hpp"
#include "pe/pe.hpp"

namespace kagen {
namespace {

Config small_config(Model model) {
    Config cfg;
    cfg.model     = model;
    cfg.n         = 600;
    cfg.m         = 3000;
    cfg.p         = 0.01;
    cfg.r         = 0.08;
    cfg.avg_deg   = 8;
    cfg.gamma     = 2.8;
    cfg.ba_degree = 3;
    cfg.seed      = 99;
    return cfg;
}

class AllModels : public ::testing::TestWithParam<Model> {};

TEST_P(AllModels, GeneratesAndIsPure) {
    const Config cfg = small_config(GetParam());
    const Result a   = generate(cfg, 1, 4);
    const Result b   = generate(cfg, 1, 4);
    EXPECT_EQ(a.edges, b.edges) << model_name(cfg.model);
    EXPECT_GE(a.n, cfg.n);
    for (const auto& [u, v] : a.edges) {
        EXPECT_LT(u, a.n);
        EXPECT_LT(v, a.n);
    }
}

TEST_P(AllModels, UnionAcrossPesIsNonEmptyAndConsumable) {
    const Config cfg  = small_config(GetParam());
    const auto per_pe = pe::run_all(4, [&](u64 rank, u64 size) {
        return generate(cfg, rank, size).edges;
    });
    const EdgeList all = pe::union_undirected(per_pe);
    ASSERT_FALSE(all.empty()) << model_name(cfg.model);
    const u64 n = generate(cfg, 0, 1).n;
    // Downstream pipeline: CSR + BFS + components must all work.
    const Csr csr = build_csr(all, n, /*symmetrize=*/true);
    u64 reached   = 0;
    bfs(csr, all.front().first, &reached);
    EXPECT_GE(reached, 1u);
    EXPECT_GE(connected_components(all, n), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Everything, AllModels,
    ::testing::Values(Model::GnmDirected, Model::GnmUndirected, Model::GnpDirected,
                      Model::GnpUndirected, Model::Rgg2D, Model::Rgg3D, Model::Rdg2D,
                      Model::Rdg3D, Model::Rhg, Model::RhgStreaming, Model::Ba,
                      Model::Rmat),
    [](const ::testing::TestParamInfo<Model>& info) {
        return model_name(info.param);
    });

TEST(Facade, RmatRoundsVertexCount) {
    Config cfg = small_config(Model::Rmat);
    cfg.n      = 1000; // not a power of two
    EXPECT_EQ(generate(cfg, 0, 1).n, 1024u);
    EXPECT_EQ(num_vertices(cfg), 1024u);
}

TEST(Facade, RmatHandlesDegenerateVertexCounts) {
    // Regression: the old round-up loop turned n = 0 into a 1-vertex graph
    // and relied on iterating a shift towards overflow; n <= 1 must yield
    // exactly n vertices and no edges (the 2^0-vertex "graph" has no
    // non-trivial adjacency matrix to recurse on).
    Config cfg = small_config(Model::Rmat);
    cfg.m      = 50;
    for (const u64 n : {u64{0}, u64{1}}) {
        cfg.n          = n;
        const Result r = generate(cfg, 0, 1);
        EXPECT_EQ(r.n, n);
        EXPECT_TRUE(r.edges.empty());
    }
    cfg.n = 2; // smallest non-degenerate instance: one recursion level
    const Result r2 = generate(cfg, 0, 1);
    EXPECT_EQ(r2.n, 2u);
    EXPECT_EQ(r2.edges.size(), cfg.m);
    for (const auto& [u, v] : r2.edges) {
        EXPECT_LT(u, 2u);
        EXPECT_LT(v, 2u);
    }
    // Powers of two must not round up further.
    cfg.n = 512;
    EXPECT_EQ(num_vertices(cfg), 512u);
    // Beyond 2^63 the power-of-two round-up cannot be represented — both
    // the EdgeList path and the streaming path must refuse up front.
    cfg.n = (u64{1} << 63) + 1;
    EXPECT_THROW(num_vertices(cfg), std::invalid_argument);
    MemorySink sink;
    EXPECT_THROW(generate(cfg, 0, 1, sink), std::invalid_argument);
    EXPECT_THROW(generate_chunked(cfg, 2, sink), std::invalid_argument);
}

TEST(Facade, InvalidRankThrows) {
    const Config cfg = small_config(Model::GnmDirected);
    EXPECT_THROW(generate(cfg, 4, 4), std::invalid_argument);
    EXPECT_THROW(generate(cfg, 0, 0), std::invalid_argument);
}

TEST(PeHarness, ThreadedAndSequentialAgree) {
    const Config cfg = small_config(Model::Rgg2D);
    const auto seq = pe::run_all(8, [&](u64 r, u64 s) { return generate(cfg, r, s).edges; },
                                 /*threaded=*/false);
    const auto thr = pe::run_all(8, [&](u64 r, u64 s) { return generate(cfg, r, s).edges; },
                                 /*threaded=*/true);
    EXPECT_EQ(seq, thr);
}

TEST(PeHarness, RunTimedReturnsPositive) {
    const Config cfg = small_config(Model::GnmDirected);
    const double t = pe::run_timed(4, [&](u64 r, u64 s) { return generate(cfg, r, s).edges; });
    EXPECT_GT(t, 0.0);
}

TEST(GraphStats, CsrAndBfsOnKnownGraph) {
    // Path 0-1-2-3 plus isolated 4.
    const EdgeList edges{{0, 1}, {1, 2}, {2, 3}};
    const Csr g = build_csr(edges, 5, true);
    EXPECT_EQ(g.degree(1), 2u);
    u64 reached = 0;
    const auto dist = bfs(g, 0, &reached);
    EXPECT_EQ(reached, 4u);
    EXPECT_EQ(dist[3], 3u);
    EXPECT_EQ(connected_components(edges, 5), 2u);
}

TEST(GraphStats, ClusteringCoefficientKnownValues) {
    // Triangle: coefficient 1. Star: coefficient 0.
    EXPECT_DOUBLE_EQ(global_clustering_coefficient({{0, 1}, {1, 2}, {0, 2}}, 3), 1.0);
    EXPECT_DOUBLE_EQ(global_clustering_coefficient({{0, 1}, {0, 2}, {0, 3}}, 4), 0.0);
}

} // namespace
} // namespace kagen
