// Command-line generator: the "library as a product" entry point.
//
// Three execution paths:
//  * per-PE (default): writes one PE's edge list as text ("u v" per line),
//    demonstrating that any rank's output can be produced in isolation —
//    the paper's whole point.
//  * chunked engine (-sink ...): generates the WHOLE graph as K·P logical
//    chunks over the persistent work-stealing pool, streaming into an edge
//    sink — so huge instances can be counted, measured, or written to disk
//    without materializing the edge list (count/stats sinks stream with
//    O(buffer) memory; the ordered file sink holds completed-but-not-yet-
//    delivered chunks in a byte-budgeted window, spilling past it — see
//    -max-buffered-bytes and DESIGN.md §5).
//  * distributed backend (-ranks N -sink ...): forks N worker PROCESSES,
//    each generating a contiguous share of the same chunk decomposition in
//    its own address space with zero inter-worker communication; the
//    coordinator merges per-rank files/stats. Output is byte-identical to
//    the single-process -sink run with the same -pes/-chunks-per-pe
//    (DESIGN.md §8).
//
// Run with -help for the full flag reference grouped by subsystem.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graph/em_sort.hpp"
#include "graph/io.hpp"
#include "kagen.hpp"

using namespace kagen;

namespace {

void print_help(std::FILE* out, const char* argv0) {
    std::fprintf(out,
        "usage: %s <model> [flags]   (or: %s -help)\n"
        "\n"
        "model: gnm_directed | gnm_undirected | gnp_directed | gnp_undirected |\n"
        "       rgg2d | rgg3d | rdg2d | rdg3d | rhg | rhg_streaming | ba | rmat\n"
        "\n"
        "Model parameters:\n"
        "  -n N        vertices (default 1024)\n"
        "  -m M        edges (gnm*/rmat; default 8n)\n"
        "  -p P        edge probability (gnp*)\n"
        "  -r R        radius (rgg*)\n"
        "  -d D        average degree (rhg*) / attachment degree (ba)\n"
        "  -g G        power-law exponent gamma (rhg*)\n"
        "  -s S        seed (default 1)\n"
        "  -sampler V  v1 (default; bit-pinned reference sampler) | v2\n"
        "              (batched-variate throughput engine; same distribution,\n"
        "              different byte stream; ER family)\n"
        "\n"
        "Per-PE path (default; text output):\n"
        "  -rank R     generate only rank R (default 0)\n"
        "  -size P     of P total ranks (default 1)\n"
        "  -o FILE     output file (default: stdout; binary for -sink file)\n"
        "\n"
        "Chunked engine (whole graph through a streaming sink):\n"
        "  -sink KIND  memory | count | stats | file\n"
        "  -pes P      simulated PEs (default 4)\n"
        "  -chunks-per-pe K   logical chunks per PE (default 4)\n"
        "  -chunks C   pin the canonical chunk count (graph then independent\n"
        "              of -pes / -chunks-per-pe / -ranks)\n"
        "  -edge-semantics S  as_generated (default) | exact_once: exact_once\n"
        "              applies the lower-endpoint ownership tie-break so every\n"
        "              edge is emitted exactly once across all chunks\n"
        "\n"
        "Hot path / affinity (DESIGN.md section 9):\n"
        "  -sink-buffer-edges N   inline emit-buffer capacity in edges for the\n"
        "              streaming sinks (default 4096); batches reach the file\n"
        "              sink as single bulk writes of this many edges\n"
        "  -pin-threads 1   pin pool worker threads to distinct CPUs\n"
        "              (affinity-aware scheduling; sticky for the process)\n"
        "\n"
        "Ordered delivery / spill window:\n"
        "  -max-buffered-bytes B   byte budget for chunks completing ahead of\n"
        "              the delivery cursor; past it they spill to disk and\n"
        "              replay in order (0 = unbounded). Output is identical;\n"
        "              peak memory is B + one chunk\n"
        "  -spill-path FILE   spill scratch location (default: anonymous $TMPDIR)\n"
        "\n"
        "External-memory dedup (after -sink file or -ranks ... -sink file):\n"
        "  -dedup-out FILE    sort/dedup pass to FILE — the canonical\n"
        "              undirected edge set (union_undirected) at bounded memory\n"
        "  -sort-memory BYTES memory budget of the dedup sort (default 64 MiB)\n"
        "\n"
        "Distributed backend (multi-process, communication-free):\n"
        "  -ranks N    fork N worker processes; each generates a contiguous\n"
        "              share of the chunk decomposition into a per-rank file,\n"
        "              merged in rank order — byte-identical to the\n"
        "              single-process -sink run (requires -sink count|stats|file)\n"
        "  -threads-per-rank T   pool threads inside each worker (default 1)\n"
        "  -keep-rank-files 1    keep the per-rank scratch files after the merge\n"
        "\n"
        "Help:\n"
        "  -help       this reference\n",
        argv0, argv0);
}

Model parse_model(const std::string& name) {
    const Model all[] = {Model::GnmDirected, Model::GnmUndirected,
                         Model::GnpDirected, Model::GnpUndirected, Model::Rgg2D,
                         Model::Rgg3D, Model::Rdg2D, Model::Rdg3D, Model::Rhg,
                         Model::RhgStreaming, Model::Ba, Model::Rmat};
    for (const Model m : all) {
        if (name == model_name(m)) return m;
    }
    std::fprintf(stderr, "unknown model '%s' (try -help)\n", name.c_str());
    std::exit(2);
}

int run_distributed_sink(const Config& cfg, const std::string& kind, u64 ranks,
                         u64 pes, u64 threads_per_rank, bool keep_rank_files,
                         const char* out_path, const char* dedup_out,
                         u64 sort_memory) {
    dist::DistOptions opts;
    opts.num_ranks        = ranks;
    opts.num_pes          = pes;
    opts.threads_per_rank = threads_per_rank;
    opts.keep_rank_files  = keep_rank_files;
    if (kind == "file") {
        if (out_path == nullptr) {
            std::fprintf(stderr, "-ranks with -sink file requires -o FILE\n");
            return 2;
        }
        opts.output_path = out_path;
        if (dedup_out != nullptr) {
            opts.dedup_path  = dedup_out;
            opts.sort_memory = sort_memory;
        }
    } else if (kind == "stats") {
        opts.degree_stats = true;
    } else if (kind != "count") {
        std::fprintf(stderr, "-ranks requires -sink count|stats|file, got '%s'\n",
                     kind.c_str());
        return 2;
    }
    const dist::DistResult res = generate_distributed(cfg, opts);
    if (kind == "count") {
        std::printf("model=%s n=%llu %s ranks=%llu chunks=%llu seconds=%.6f\n",
                    model_name(cfg.model), static_cast<unsigned long long>(res.n),
                    res.count.str().c_str(),
                    static_cast<unsigned long long>(res.num_ranks),
                    static_cast<unsigned long long>(res.num_chunks), res.seconds);
        return 0;
    }
    if (kind == "stats") {
        std::printf("model=%s n=%llu %s ranks=%llu chunks=%llu seconds=%.6f\n",
                    model_name(cfg.model), static_cast<unsigned long long>(res.n),
                    res.degrees.str().c_str(),
                    static_cast<unsigned long long>(res.num_ranks),
                    static_cast<unsigned long long>(res.num_chunks), res.seconds);
        return 0;
    }
    std::printf("model=%s n=%llu edges[%s]=%llu -> %s (binary) ranks=%llu "
                "chunks=%llu seconds=%.6f spilled_chunks=%llu spilled_bytes=%llu "
                "merged_bytes=%llu copy_file_range_bytes=%llu "
                "copy_file_range_used=%d\n",
                model_name(cfg.model), static_cast<unsigned long long>(res.n),
                semantics_name(cfg.edge_semantics),
                static_cast<unsigned long long>(res.edges_written), out_path,
                static_cast<unsigned long long>(res.num_ranks),
                static_cast<unsigned long long>(res.num_chunks), res.seconds,
                static_cast<unsigned long long>(res.spilled_chunks),
                static_cast<unsigned long long>(res.spilled_bytes),
                static_cast<unsigned long long>(res.merged_bytes),
                static_cast<unsigned long long>(res.copy_file_range_bytes),
                res.copy_file_range_used() ? 1 : 0);
    if (dedup_out != nullptr) {
        std::printf("dedup -> %s unique_edges=%llu sort_memory_bytes=%llu\n",
                    dedup_out, static_cast<unsigned long long>(res.dedup_edges),
                    static_cast<unsigned long long>(sort_memory));
    }
    return 0;
}

int run_chunked_sink(const Config& cfg, const std::string& kind, u64 pes,
                     const char* out_path, const char* dedup_out,
                     u64 sort_memory) {
    const u64 n = num_vertices(cfg);
    if (kind == "count") {
        CountingSink sink(cfg.edge_semantics);
        const ChunkStats stats = generate_chunked(cfg, pes, sink);
        sink.finish();
        // summary() labels the totals with the semantics they were computed
        // under — an as_generated count includes intentional duplicates.
        std::printf("model=%s n=%llu %s chunks=%llu workers=%llu seconds=%.6f\n",
                    model_name(cfg.model), static_cast<unsigned long long>(n),
                    sink.summary().c_str(),
                    static_cast<unsigned long long>(stats.num_chunks),
                    static_cast<unsigned long long>(stats.workers), stats.seconds);
        return 0;
    }
    if (kind == "stats") {
        DegreeStatsSink sink(n, cfg.edge_semantics);
        const ChunkStats stats = generate_chunked(cfg, pes, sink);
        sink.finish();
        std::printf("model=%s n=%llu %s chunks=%llu seconds=%.6f\n",
                    model_name(cfg.model), static_cast<unsigned long long>(n),
                    sink.summary().c_str(),
                    static_cast<unsigned long long>(stats.num_chunks), stats.seconds);
        const auto hist = sink.degree_histogram();
        for (std::size_t d = 0; d < hist.size(); ++d) {
            if (hist[d] != 0) {
                std::printf("deg %zu: %llu\n", d,
                            static_cast<unsigned long long>(hist[d]));
            }
        }
        return 0;
    }
    if (kind == "file") {
        if (out_path == nullptr) {
            std::fprintf(stderr, "-sink file requires -o FILE\n");
            return 2;
        }
        BinaryFileSink sink(out_path,
                            static_cast<std::size_t>(cfg.sink_buffer_edges));
        const ChunkStats stats = generate_chunked(cfg, pes, sink);
        sink.finish();
        std::printf("model=%s n=%llu edges[%s]=%llu -> %s (binary) chunks=%llu "
                    "seconds=%.6f peak_buffered_bytes=%llu spilled_chunks=%llu "
                    "spilled_bytes=%llu bytes_written=%llu buffers_recycled=%llu\n",
                    model_name(cfg.model), static_cast<unsigned long long>(n),
                    semantics_name(cfg.edge_semantics),
                    static_cast<unsigned long long>(sink.num_edges()), out_path,
                    static_cast<unsigned long long>(stats.num_chunks), stats.seconds,
                    static_cast<unsigned long long>(stats.peak_buffered_bytes),
                    static_cast<unsigned long long>(stats.spilled_chunks),
                    static_cast<unsigned long long>(stats.spilled_bytes),
                    static_cast<unsigned long long>(sink.bytes_written()),
                    static_cast<unsigned long long>(stats.buffers_recycled));
        if (dedup_out != nullptr) {
            // External-memory dedup: canonical undirected edge set of the
            // file just written, at bounded memory — union_undirected for
            // graphs that never fit in RAM.
            const em::SortStats sorted =
                em::sort_dedup_file(out_path, dedup_out, sort_memory);
            std::printf("dedup -> %s unique_edges=%llu runs=%llu "
                        "sort_memory_bytes=%llu\n",
                        dedup_out, static_cast<unsigned long long>(sorted.output_edges),
                        static_cast<unsigned long long>(sorted.runs),
                        static_cast<unsigned long long>(sort_memory));
        }
        return 0;
    }
    if (kind == "memory") {
        MemorySink sink;
        generate_chunked(cfg, pes, sink);
        sink.finish();
        FILE* out = out_path ? std::fopen(out_path, "w") : stdout;
        if (out == nullptr) {
            std::perror("fopen");
            return 1;
        }
        std::fprintf(out, "%% kagen model=%s n=%llu edges=%zu (chunked)\n",
                     model_name(cfg.model), static_cast<unsigned long long>(n),
                     sink.edges().size());
        for (const auto& [u, v] : sink.edges()) {
            std::fprintf(out, "%llu %llu\n", static_cast<unsigned long long>(u),
                         static_cast<unsigned long long>(v));
        }
        if (out_path) std::fclose(out);
        return 0;
    }
    std::fprintf(stderr, "unknown sink '%s' (memory|count|stats|file)\n", kind.c_str());
    return 2;
}

int run_per_pe(const Config& cfg, u64 rank, u64 size, const char* out_path) {
    const Result result = generate(cfg, rank, size);
    FILE* out           = out_path ? std::fopen(out_path, "w") : stdout;
    if (out == nullptr) {
        std::perror("fopen");
        return 1;
    }
    std::fprintf(out, "%% kagen model=%s n=%llu rank=%llu/%llu edges=%zu\n",
                 model_name(cfg.model), static_cast<unsigned long long>(result.n),
                 static_cast<unsigned long long>(rank),
                 static_cast<unsigned long long>(size), result.edges.size());
    for (const auto& [u, v] : result.edges) {
        std::fprintf(out, "%llu %llu\n", static_cast<unsigned long long>(u),
                     static_cast<unsigned long long>(v));
    }
    if (out_path) std::fclose(out);
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc >= 2 && (std::strcmp(argv[1], "-help") == 0 ||
                      std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
        print_help(stdout, argv[0]);
        return 0;
    }
    if (argc < 2) {
        print_help(stderr, argv[0]); // error path: keep stdout clean for data
        return 2;
    }
    Config cfg;
    cfg.model         = parse_model(argv[1]);
    cfg.n             = 1024;
    cfg.chunks_per_pe = 4;
    u64 rank = 0, size = 1, pes = 4;
    u64 ranks             = 0; // 0 = in-process; N = distributed backend
    u64 threads_per_rank  = 1;
    bool keep_rank_files  = false;
    u64 sort_memory       = u64{64} << 20; // 64 MiB unless -sort-memory
    const char* out_path  = nullptr;
    const char* dedup_out = nullptr;
    std::string sink_kind;
    bool m_set = false;
    for (int i = 2; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const char* val        = argv[i + 1];
        if (flag == "-n") cfg.n = std::strtoull(val, nullptr, 10);
        else if (flag == "-m") { cfg.m = std::strtoull(val, nullptr, 10); m_set = true; }
        else if (flag == "-p") cfg.p = std::strtod(val, nullptr);
        else if (flag == "-r") cfg.r = std::strtod(val, nullptr);
        else if (flag == "-d") { cfg.avg_deg = std::strtod(val, nullptr);
                                 cfg.ba_degree = std::strtoull(val, nullptr, 10); }
        else if (flag == "-g") cfg.gamma = std::strtod(val, nullptr);
        else if (flag == "-s") cfg.seed = std::strtoull(val, nullptr, 10);
        else if (flag == "-sampler") {
            if (std::strcmp(val, "v1") == 0) cfg.sampler_version = SamplerVersion::v1;
            else if (std::strcmp(val, "v2") == 0) cfg.sampler_version = SamplerVersion::v2;
            else {
                std::fprintf(stderr, "unknown sampler '%s' (v1|v2)\n", val);
                return 2;
            }
        }
        else if (flag == "-rank") rank = std::strtoull(val, nullptr, 10);
        else if (flag == "-size") size = std::strtoull(val, nullptr, 10);
        else if (flag == "-o") out_path = val;
        else if (flag == "-sink") sink_kind = val;
        else if (flag == "-pes") pes = std::strtoull(val, nullptr, 10);
        else if (flag == "-chunks-per-pe") cfg.chunks_per_pe = std::strtoull(val, nullptr, 10);
        else if (flag == "-chunks") cfg.total_chunks = std::strtoull(val, nullptr, 10);
        else if (flag == "-ranks") ranks = std::strtoull(val, nullptr, 10);
        else if (flag == "-threads-per-rank")
            threads_per_rank = std::strtoull(val, nullptr, 10);
        else if (flag == "-keep-rank-files")
            keep_rank_files = std::strtoull(val, nullptr, 10) != 0;
        else if (flag == "-sink-buffer-edges")
            cfg.sink_buffer_edges = std::strtoull(val, nullptr, 10);
        else if (flag == "-pin-threads")
            cfg.pin_threads = std::strtoull(val, nullptr, 10) != 0;
        else if (flag == "-max-buffered-bytes")
            cfg.max_buffered_bytes = std::strtoull(val, nullptr, 10);
        else if (flag == "-spill-path") cfg.spill_path = val;
        else if (flag == "-dedup-out") dedup_out = val;
        else if (flag == "-sort-memory") sort_memory = std::strtoull(val, nullptr, 10);
        else if (flag == "-edge-semantics") {
            if (!parse_semantics(val, &cfg.edge_semantics)) {
                std::fprintf(stderr,
                             "unknown semantics '%s' (as_generated|exact_once)\n", val);
                return 2;
            }
        }
        else {
            std::fprintf(stderr, "unknown flag '%s' (try -help)\n", flag.c_str());
            return 2;
        }
    }
    if (!m_set) cfg.m = 8 * cfg.n;
    if (cfg.p == 0.0) cfg.p = 8.0 / static_cast<double>(cfg.n);
    if (cfg.r == 0.0) {
        cfg.r = 0.6 * std::sqrt(std::log(static_cast<double>(cfg.n)) /
                                static_cast<double>(cfg.n));
    }

    if (dedup_out != nullptr && sink_kind != "file") {
        // Silently ignoring the flag would leave scripts failing later on a
        // missing dedup file with no hint why — also on the per-PE path.
        std::fprintf(stderr, "-dedup-out requires -sink file\n");
        return 2;
    }
    if (ranks != 0 && sink_kind.empty()) {
        std::fprintf(stderr, "-ranks requires -sink count|stats|file\n");
        return 2;
    }

    try {
        if (ranks != 0) {
            return run_distributed_sink(cfg, sink_kind, ranks, pes,
                                        threads_per_rank, keep_rank_files,
                                        out_path, dedup_out, sort_memory);
        }
        if (!sink_kind.empty()) {
            return run_chunked_sink(cfg, sink_kind, pes, out_path, dedup_out,
                                    sort_memory);
        }
        return run_per_pe(cfg, rank, size, out_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
