// Command-line generator: the "library as a product" entry point. Writes an
// edge list (one "u v" pair per line) for any model, optionally restricted
// to a single PE's part — demonstrating that any rank's output can be
// produced in isolation, which is the paper's whole point.
//
// Usage:
//   ./example_kagen_tool <model> [options]
//
//   model: gnm_directed | gnm_undirected | gnp_directed | gnp_undirected |
//          rgg2d | rgg3d | rdg2d | rdg3d | rhg | rhg_streaming | ba | rmat
//   -n N        vertices (default 1024)
//   -m M        edges (gnm*/rmat; default 8n)
//   -p P        probability (gnp*)
//   -r R        radius (rgg*)
//   -d D        average degree (rhg*) / attachment degree (ba)
//   -g G        power-law exponent gamma (rhg*)
//   -s S        seed
//   -rank R -size P   generate only rank R of P (default: 0 of 1)
//   -o FILE     output file (default: stdout)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "kagen.hpp"

using namespace kagen;

namespace {

Model parse_model(const std::string& name) {
    const Model all[] = {Model::GnmDirected, Model::GnmUndirected,
                         Model::GnpDirected, Model::GnpUndirected, Model::Rgg2D,
                         Model::Rgg3D, Model::Rdg2D, Model::Rdg3D, Model::Rhg,
                         Model::RhgStreaming, Model::Ba, Model::Rmat};
    for (const Model m : all) {
        if (name == model_name(m)) return m;
    }
    std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
    std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <model> [-n N] [-m M] [-p P] [-r R] "
                             "[-d D] [-g G] [-s S] [-rank R -size P] [-o FILE]\n",
                     argv[0]);
        return 2;
    }
    Config cfg;
    cfg.model = parse_model(argv[1]);
    cfg.n     = 1024;
    u64 rank = 0, size = 1;
    const char* out_path = nullptr;
    bool m_set           = false;
    for (int i = 2; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const char* val        = argv[i + 1];
        if (flag == "-n") cfg.n = std::strtoull(val, nullptr, 10);
        else if (flag == "-m") { cfg.m = std::strtoull(val, nullptr, 10); m_set = true; }
        else if (flag == "-p") cfg.p = std::strtod(val, nullptr);
        else if (flag == "-r") cfg.r = std::strtod(val, nullptr);
        else if (flag == "-d") { cfg.avg_deg = std::strtod(val, nullptr);
                                 cfg.ba_degree = std::strtoull(val, nullptr, 10); }
        else if (flag == "-g") cfg.gamma = std::strtod(val, nullptr);
        else if (flag == "-s") cfg.seed = std::strtoull(val, nullptr, 10);
        else if (flag == "-rank") rank = std::strtoull(val, nullptr, 10);
        else if (flag == "-size") size = std::strtoull(val, nullptr, 10);
        else if (flag == "-o") out_path = val;
        else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            return 2;
        }
    }
    if (!m_set) cfg.m = 8 * cfg.n;
    if (cfg.p == 0.0) cfg.p = 8.0 / static_cast<double>(cfg.n);
    if (cfg.r == 0.0) {
        cfg.r = 0.6 * std::sqrt(std::log(static_cast<double>(cfg.n)) /
                                static_cast<double>(cfg.n));
    }

    const Result result = generate(cfg, rank, size);
    FILE* out           = out_path ? std::fopen(out_path, "w") : stdout;
    if (out == nullptr) {
        std::perror("fopen");
        return 1;
    }
    std::fprintf(out, "%% kagen model=%s n=%llu rank=%llu/%llu edges=%zu\n",
                 model_name(cfg.model), static_cast<unsigned long long>(result.n),
                 static_cast<unsigned long long>(rank),
                 static_cast<unsigned long long>(size), result.edges.size());
    for (const auto& [u, v] : result.edges) {
        std::fprintf(out, "%llu %llu\n", static_cast<unsigned long long>(u),
                     static_cast<unsigned long long>(v));
    }
    if (out_path) std::fclose(out);
    return 0;
}
