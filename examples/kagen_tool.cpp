// Command-line generator: the "library as a product" entry point.
//
// Four execution paths:
//  * per-PE (default): writes one PE's edge list as text ("u v" per line),
//    demonstrating that any rank's output can be produced in isolation —
//    the paper's whole point.
//  * chunked engine (-sink ...): generates the WHOLE graph as K·P logical
//    chunks over the persistent work-stealing pool, streaming into an edge
//    sink — so huge instances can be counted, measured, or written to disk
//    without materializing the edge list (count/stats sinks stream with
//    O(buffer) memory; the ordered file sink holds completed-but-not-yet-
//    delivered chunks in a byte-budgeted window, spilling past it — see
//    -max-buffered-bytes and DESIGN.md §5).
//  * distributed backend (-ranks N -sink ...): forks N worker PROCESSES,
//    each generating a contiguous share of the same chunk decomposition in
//    its own address space with zero inter-worker communication; the
//    coordinator merges per-rank files/stats. Output is byte-identical to
//    the single-process -sink run with the same -pes/-chunks-per-pe
//    (DESIGN.md §8).
//  * multi-node TCP backend (-listen/-connect ... -sink ..., workers run
//    `kagen_tool -worker host:port`): the same decomposition and merge over
//    sockets instead of fork+pipes, so the workers can live on other
//    machines. Output is byte-identical to both paths above; `-manifest`
//    instead of `-o` leaves each rank file on its worker's machine and
//    writes a text manifest naming every piece (DESIGN.md §11).
//
// Every flag value is parsed strictly: non-numeric, trailing-garbage,
// out-of-range, and valueless flags all exit 2 with a diagnostic instead of
// silently running with a default ("-n banana" used to mean n=0).
//
// Run with -help for the full flag reference grouped by subsystem.
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <climits>
#include <string>
#include <vector>

#include "graph/em_sort.hpp"
#include "graph/io.hpp"
#include "kagen.hpp"
#include "net/coordinator.hpp"
#include "net/worker.hpp"
#include "obs/metrics.hpp"

using namespace kagen;

namespace {

u64 g_verbose = 0; // -v LEVEL

// Engine-stats tail shared by every file-producing backend. The TCP
// summary used to print only merged_bytes, silently dropping the
// spill/recycle/zero-copy accounting the fork backend reported — one
// formatter keeps the backends honest about the same fields.
std::string engine_stats_str(u64 peak_buffered, u64 spilled_chunks,
                             u64 spilled_bytes, u64 buffers_recycled,
                             u64 merged_bytes, u64 cfr_bytes) {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "peak_buffered_bytes=%llu spilled_chunks=%llu "
                  "spilled_bytes=%llu buffers_recycled=%llu merged_bytes=%llu "
                  "copy_file_range_bytes=%llu",
                  static_cast<unsigned long long>(peak_buffered),
                  static_cast<unsigned long long>(spilled_chunks),
                  static_cast<unsigned long long>(spilled_bytes),
                  static_cast<unsigned long long>(buffers_recycled),
                  static_cast<unsigned long long>(merged_bytes),
                  static_cast<unsigned long long>(cfr_bytes));
    return buf;
}

// -v: per-worker pool utilization (busy ns, tasks, steal counters) straight
// from the metrics registry. In-process pools only — forked/TCP workers
// count in their own address space; use -metrics for the merged view.
void print_verbose_metrics() {
    if (g_verbose == 0) return;
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    for (const auto& [name, c] : snap.counters) {
        if (name.rfind("pool.", 0) == 0 || name.rfind("pe.arena.", 0) == 0) {
            std::printf("%s=%llu\n", name.c_str(),
                        static_cast<unsigned long long>(c.value));
        }
    }
}

void print_help(std::FILE* out, const char* argv0) {
    std::fprintf(out,
        "usage: %s <model> [flags]   (or: %s -worker host:port | %s -help)\n"
        "\n"
        "model: gnm_directed | gnm_undirected | gnp_directed | gnp_undirected |\n"
        "       rgg2d | rgg3d | rdg2d | rdg3d | rhg | rhg_streaming | ba | rmat\n"
        "\n"
        "Model parameters:\n"
        "  -n N        vertices (default 1024)\n"
        "  -m M        edges (gnm*/rmat; default 8n)\n"
        "  -p P        edge probability (gnp*)\n"
        "  -r R        radius (rgg*)\n"
        "  -d D        average degree (rhg*) / attachment degree (ba; integer)\n"
        "  -g G        power-law exponent gamma (rhg*)\n"
        "  -s S        seed (default 1)\n"
        "  -sampler V  v1 (default; bit-pinned reference sampler) | v2\n"
        "              (batched-variate throughput engine; same distribution,\n"
        "              different byte stream; ER family)\n"
        "\n"
        "Per-PE path (default; text output):\n"
        "  -rank R     generate only rank R (default 0)\n"
        "  -size P     of P total ranks (default 1)\n"
        "  -o FILE     output file (default: stdout; binary for -sink file)\n"
        "\n"
        "Chunked engine (whole graph through a streaming sink):\n"
        "  -sink KIND  memory | count | stats | file\n"
        "  -pes P      simulated PEs (default 4)\n"
        "  -chunks-per-pe K   logical chunks per PE (default 4)\n"
        "  -chunks C   pin the canonical chunk count (graph then independent\n"
        "              of -pes / -chunks-per-pe / -ranks / worker count)\n"
        "  -edge-semantics S  as_generated (default) | exact_once: exact_once\n"
        "              applies the lower-endpoint ownership tie-break so every\n"
        "              edge is emitted exactly once across all chunks\n"
        "\n"
        "Hot path / affinity (DESIGN.md section 9):\n"
        "  -sink-buffer-edges N   inline emit-buffer capacity in edges for the\n"
        "              streaming sinks (default 4096); batches reach the file\n"
        "              sink as single bulk writes of this many edges\n"
        "  -pin-threads 1   pin pool worker threads to distinct CPUs\n"
        "              (affinity-aware scheduling; sticky for the process)\n"
        "\n"
        "Ordered delivery / spill window:\n"
        "  -max-buffered-bytes B   byte budget for chunks completing ahead of\n"
        "              the delivery cursor; past it they spill to disk and\n"
        "              replay in order (0 = unbounded). Output is identical;\n"
        "              peak memory is B + one chunk\n"
        "  -spill-path FILE   spill scratch location (default: anonymous $TMPDIR)\n"
        "  -arena-slab-bytes B   per-slab size of the chunk arena backing the\n"
        "              ordered multi-worker path (default 1 MiB). Memory layout\n"
        "              only: output is byte-identical for every value\n"
        "\n"
        "External-memory dedup (after -sink file or -ranks ... -sink file):\n"
        "  -dedup-out FILE    sort/dedup pass to FILE — the canonical\n"
        "              undirected edge set (union_undirected) at bounded memory\n"
        "  -sort-memory BYTES memory budget of the dedup sort (default 64 MiB)\n"
        "\n"
        "Distributed backend (multi-process, communication-free):\n"
        "  -ranks N    fork N worker processes; each generates a contiguous\n"
        "              share of the chunk decomposition into a per-rank file,\n"
        "              merged in rank order — byte-identical to the\n"
        "              single-process -sink run (requires -sink count|stats|file)\n"
        "  -threads-per-rank T   pool threads inside each worker (default 1)\n"
        "  -keep-rank-files 1    keep the per-rank scratch files after the merge\n"
        "\n"
        "Multi-node TCP backend (coordinator side; requires -sink count|stats|file,\n"
        "workers run `%s -worker ...` on their machines — DESIGN.md section 11):\n"
        "  -listen H:P    accept -expect-workers worker dial-ins on host:port\n"
        "              (\":P\" listens on every interface)\n"
        "  -connect LIST  dial the comma-separated worker endpoints\n"
        "              (each worker running `-worker :port`)\n"
        "  -expect-workers N   workers a -listen coordinator waits for\n"
        "  -manifest FILE  partitioned output: each worker keeps its rank file\n"
        "              node-local; write a text manifest naming every piece\n"
        "              (instead of -o, which gathers one merged file)\n"
        "  -net-timeout MS   connect/accept, handshake, and file-transfer\n"
        "              inactivity deadline (default 10000)\n"
        "  -net-deadline MS  per-worker report deadline covering generation\n"
        "              itself (default 0 = wait; dead workers still error\n"
        "              immediately via EOF)\n"
        "\n"
        "Worker mode (no model argument; one job, then exit):\n"
        "  -worker H:P    connect to the coordinator at host:port, or with an\n"
        "              empty host (\":P\") listen for the coordinator to dial in\n"
        "  -worker-scratch DIR   rank-file scratch location (default $TMPDIR)\n"
        "\n"
        "Telemetry (trace spans + metrics registry; DESIGN.md section 13):\n"
        "  -trace FILE    write a merged Chrome trace_event JSON timeline with\n"
        "              spans from every rank (load in Perfetto or\n"
        "              chrome://tracing); works on all -sink backends\n"
        "  -metrics FILE  write the merged metrics-registry snapshot as JSON\n"
        "  -v LEVEL    1: also print per-worker pool utilization counters\n"
        "              after the run (default 0)\n"
        "\n"
        "Help:\n"
        "  -help       this reference\n",
        argv0, argv0, argv0, argv0);
}

Model parse_model(const std::string& name) {
    const Model all[] = {Model::GnmDirected, Model::GnmUndirected,
                         Model::GnpDirected, Model::GnpUndirected, Model::Rgg2D,
                         Model::Rgg3D, Model::Rdg2D, Model::Rdg3D, Model::Rhg,
                         Model::RhgStreaming, Model::Ba, Model::Rmat};
    for (const Model m : all) {
        if (name == model_name(m)) return m;
    }
    std::fprintf(stderr, "unknown model '%s' (try -help)\n", name.c_str());
    std::exit(2);
}

// ---- strict flag-value parsing -------------------------------------------
// The old parser fed every value straight into strtoull/strtod with no
// checks: "-n banana" ran with n=0, "-n 1e6" with n=1, "-pin-threads yes"
// silently DISABLED pinning. Each helper rejects empty values, non-numeric
// junk, trailing garbage, range overflow, and (for u64) negative input, and
// exits 2 naming the flag — malformed input must never half-run.

[[noreturn]] void bad_value(const std::string& flag, const char* val,
                            const char* expected) {
    std::fprintf(stderr, "%s: invalid value '%s' (expected %s)\n", flag.c_str(),
                 val, expected);
    std::exit(2);
}

u64 parse_u64(const std::string& flag, const char* val) {
    if (val[0] == '\0' || val[0] == '-' || val[0] == '+' ||
        std::isspace(static_cast<unsigned char>(val[0]))) {
        bad_value(flag, val, "a non-negative base-10 integer");
    }
    errno     = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(val, &end, 10);
    if (errno != 0 || end == val || *end != '\0') {
        bad_value(flag, val, "a non-negative base-10 integer");
    }
    return v;
}

double parse_f64(const std::string& flag, const char* val) {
    errno     = 0;
    char* end = nullptr;
    const double v = std::strtod(val, &end);
    if (errno != 0 || end == val || *end != '\0' || !std::isfinite(v)) {
        bad_value(flag, val, "a finite number");
    }
    return v;
}

bool parse_bool(const std::string& flag, const char* val) {
    if (std::strcmp(val, "1") == 0 || std::strcmp(val, "true") == 0) return true;
    if (std::strcmp(val, "0") == 0 || std::strcmp(val, "false") == 0) return false;
    bad_value(flag, val, "0|1|true|false");
}

int parse_timeout_ms(const std::string& flag, const char* val) {
    const u64 v = parse_u64(flag, val);
    if (v > INT_MAX) bad_value(flag, val, "milliseconds <= INT_MAX");
    return static_cast<int>(v);
}

std::vector<std::string> split_commas(const std::string& list) {
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= list.size()) {
        const std::size_t comma = list.find(',', begin);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        out.push_back(list.substr(begin, end - begin));
        if (comma == std::string::npos) break;
        begin = comma + 1;
    }
    return out;
}

int run_distributed_sink(const Config& cfg, const std::string& kind, u64 ranks,
                         u64 pes, u64 threads_per_rank, bool keep_rank_files,
                         const char* out_path, const char* dedup_out,
                         u64 sort_memory) {
    dist::DistOptions opts;
    opts.num_ranks        = ranks;
    opts.num_pes          = pes;
    opts.threads_per_rank = threads_per_rank;
    opts.keep_rank_files  = keep_rank_files;
    if (kind == "file") {
        if (out_path == nullptr) {
            std::fprintf(stderr, "-ranks with -sink file requires -o FILE\n");
            return 2;
        }
        opts.output_path = out_path;
        if (dedup_out != nullptr) {
            opts.dedup_path  = dedup_out;
            opts.sort_memory = sort_memory;
        }
    } else if (kind == "stats") {
        opts.degree_stats = true;
    } else if (kind != "count") {
        std::fprintf(stderr, "-ranks requires -sink count|stats|file, got '%s'\n",
                     kind.c_str());
        return 2;
    }
    const dist::DistResult res = generate_distributed(cfg, opts);
    if (kind == "count") {
        std::printf("model=%s n=%llu %s ranks=%llu chunks=%llu seconds=%.6f\n",
                    model_name(cfg.model), static_cast<unsigned long long>(res.n),
                    res.count.str().c_str(),
                    static_cast<unsigned long long>(res.num_ranks),
                    static_cast<unsigned long long>(res.num_chunks), res.seconds);
        return 0;
    }
    if (kind == "stats") {
        std::printf("model=%s n=%llu %s ranks=%llu chunks=%llu seconds=%.6f\n",
                    model_name(cfg.model), static_cast<unsigned long long>(res.n),
                    res.degrees.str().c_str(),
                    static_cast<unsigned long long>(res.num_ranks),
                    static_cast<unsigned long long>(res.num_chunks), res.seconds);
        return 0;
    }
    std::printf("model=%s n=%llu edges[%s]=%llu -> %s (binary) ranks=%llu "
                "chunks=%llu seconds=%.6f %s copy_file_range_used=%d\n",
                model_name(cfg.model), static_cast<unsigned long long>(res.n),
                semantics_name(cfg.edge_semantics),
                static_cast<unsigned long long>(res.edges_written), out_path,
                static_cast<unsigned long long>(res.num_ranks),
                static_cast<unsigned long long>(res.num_chunks), res.seconds,
                engine_stats_str(res.peak_buffered_bytes, res.spilled_chunks,
                                 res.spilled_bytes, res.buffers_recycled,
                                 res.merged_bytes, res.copy_file_range_bytes)
                    .c_str(),
                res.copy_file_range_used() ? 1 : 0);
    if (dedup_out != nullptr) {
        std::printf("dedup -> %s unique_edges=%llu sort_memory_bytes=%llu\n",
                    dedup_out, static_cast<unsigned long long>(res.dedup_edges),
                    static_cast<unsigned long long>(sort_memory));
    }
    return 0;
}

int run_net_sink(const Config& cfg, const std::string& kind,
                 net::NetOptions opts, const char* out_path,
                 const char* manifest_path, const char* dedup_out,
                 u64 sort_memory) {
    if (kind == "file") {
        if (manifest_path != nullptr) {
            opts.manifest_path = manifest_path;
        } else if (out_path != nullptr) {
            opts.output_path = out_path;
            if (dedup_out != nullptr) {
                opts.dedup_path  = dedup_out;
                opts.sort_memory = sort_memory;
            }
        } else {
            std::fprintf(
                stderr,
                "multi-node -sink file requires -o FILE (gather) or "
                "-manifest FILE (partitioned)\n");
            return 2;
        }
    } else if (kind == "stats") {
        opts.degree_stats = true;
    } else if (kind != "count") {
        std::fprintf(stderr,
                     "-listen/-connect requires -sink count|stats|file, got '%s'\n",
                     kind.c_str());
        return 2;
    }
    const net::NetResult res = net::run_net_coordinator(cfg, opts);
    if (kind == "count" || kind == "stats") {
        std::printf("model=%s n=%llu %s workers=%llu chunks=%llu seconds=%.6f\n",
                    model_name(cfg.model), static_cast<unsigned long long>(res.n),
                    kind == "count" ? res.count.str().c_str()
                                    : res.degrees.str().c_str(),
                    static_cast<unsigned long long>(res.num_workers),
                    static_cast<unsigned long long>(res.num_chunks), res.seconds);
        return 0;
    }
    if (manifest_path != nullptr) {
        u64 total_edges = 0;
        for (const auto& entry : res.manifest) total_edges += entry.edges;
        std::printf("model=%s n=%llu edges[%s]=%llu partitioned across %zu "
                    "workers -> %s (manifest) chunks=%llu seconds=%.6f\n",
                    model_name(cfg.model), static_cast<unsigned long long>(res.n),
                    semantics_name(cfg.edge_semantics),
                    static_cast<unsigned long long>(total_edges),
                    res.manifest.size(), manifest_path,
                    static_cast<unsigned long long>(res.num_chunks), res.seconds);
        return 0;
    }
    std::printf("model=%s n=%llu edges[%s]=%llu -> %s (binary) workers=%llu "
                "chunks=%llu seconds=%.6f %s\n",
                model_name(cfg.model), static_cast<unsigned long long>(res.n),
                semantics_name(cfg.edge_semantics),
                static_cast<unsigned long long>(res.edges_written), out_path,
                static_cast<unsigned long long>(res.num_workers),
                static_cast<unsigned long long>(res.num_chunks), res.seconds,
                engine_stats_str(res.peak_buffered_bytes, res.spilled_chunks,
                                 res.spilled_bytes, res.buffers_recycled,
                                 res.merged_bytes, 0)
                    .c_str());
    if (dedup_out != nullptr) {
        std::printf("dedup -> %s unique_edges=%llu sort_memory_bytes=%llu\n",
                    dedup_out, static_cast<unsigned long long>(res.dedup_edges),
                    static_cast<unsigned long long>(sort_memory));
    }
    return 0;
}

// `kagen_tool -worker host:port [...]`: no model argument — the job frame
// carries the whole Config.
int run_worker_mode(int argc, char** argv) {
    if (argc < 3 || argv[2][0] == '\0') {
        std::fprintf(stderr, "-worker requires host:port (or :port to listen)\n");
        return 2;
    }
    const std::string endpoint = argv[2];
    net::NetWorkerOptions opts;
    for (int i = 3; i < argc; i += 2) {
        const std::string flag = argv[i];
        if (i + 1 >= argc) {
            std::fprintf(stderr, "flag '%s' is missing its value\n", flag.c_str());
            return 2;
        }
        const char* val = argv[i + 1];
        if (flag == "-worker-scratch") opts.scratch_dir = val;
        else if (flag == "-net-timeout")
            opts.connect_timeout_ms = parse_timeout_ms(flag, val);
        else if (flag == "-net-deadline")
            opts.io_deadline_ms = parse_timeout_ms(flag, val);
        else {
            std::fprintf(stderr, "unknown worker flag '%s' (try -help)\n",
                         flag.c_str());
            return 2;
        }
    }
    try {
        return net::run_net_worker(endpoint, opts);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

int run_chunked_sink(const Config& cfg, const std::string& kind, u64 pes,
                     const char* out_path, const char* dedup_out,
                     u64 sort_memory) {
    const u64 n = num_vertices(cfg);
    if (kind == "count") {
        CountingSink sink(cfg.edge_semantics);
        const ChunkStats stats = generate_chunked(cfg, pes, sink);
        sink.finish();
        // summary() labels the totals with the semantics they were computed
        // under — an as_generated count includes intentional duplicates.
        std::printf("model=%s n=%llu %s chunks=%llu workers=%llu seconds=%.6f\n",
                    model_name(cfg.model), static_cast<unsigned long long>(n),
                    sink.summary().c_str(),
                    static_cast<unsigned long long>(stats.num_chunks),
                    static_cast<unsigned long long>(stats.workers), stats.seconds);
        return 0;
    }
    if (kind == "stats") {
        DegreeStatsSink sink(n, cfg.edge_semantics);
        const ChunkStats stats = generate_chunked(cfg, pes, sink);
        sink.finish();
        std::printf("model=%s n=%llu %s chunks=%llu seconds=%.6f\n",
                    model_name(cfg.model), static_cast<unsigned long long>(n),
                    sink.summary().c_str(),
                    static_cast<unsigned long long>(stats.num_chunks), stats.seconds);
        const auto hist = sink.degree_histogram();
        for (std::size_t d = 0; d < hist.size(); ++d) {
            if (hist[d] != 0) {
                std::printf("deg %zu: %llu\n", d,
                            static_cast<unsigned long long>(hist[d]));
            }
        }
        return 0;
    }
    if (kind == "file") {
        if (out_path == nullptr) {
            std::fprintf(stderr, "-sink file requires -o FILE\n");
            return 2;
        }
        BinaryFileSink sink(out_path,
                            static_cast<std::size_t>(cfg.sink_buffer_edges));
        const ChunkStats stats = generate_chunked(cfg, pes, sink);
        sink.finish();
        std::printf("model=%s n=%llu edges[%s]=%llu -> %s (binary) chunks=%llu "
                    "seconds=%.6f peak_buffered_bytes=%llu spilled_chunks=%llu "
                    "spilled_bytes=%llu bytes_written=%llu buffers_recycled=%llu\n",
                    model_name(cfg.model), static_cast<unsigned long long>(n),
                    semantics_name(cfg.edge_semantics),
                    static_cast<unsigned long long>(sink.num_edges()), out_path,
                    static_cast<unsigned long long>(stats.num_chunks), stats.seconds,
                    static_cast<unsigned long long>(stats.peak_buffered_bytes),
                    static_cast<unsigned long long>(stats.spilled_chunks),
                    static_cast<unsigned long long>(stats.spilled_bytes),
                    static_cast<unsigned long long>(sink.bytes_written()),
                    static_cast<unsigned long long>(stats.buffers_recycled));
        if (dedup_out != nullptr) {
            // External-memory dedup: canonical undirected edge set of the
            // file just written, at bounded memory — union_undirected for
            // graphs that never fit in RAM.
            const em::SortStats sorted =
                em::sort_dedup_file(out_path, dedup_out, sort_memory);
            std::printf("dedup -> %s unique_edges=%llu runs=%llu "
                        "sort_memory_bytes=%llu\n",
                        dedup_out, static_cast<unsigned long long>(sorted.output_edges),
                        static_cast<unsigned long long>(sorted.runs),
                        static_cast<unsigned long long>(sort_memory));
        }
        return 0;
    }
    if (kind == "memory") {
        MemorySink sink;
        generate_chunked(cfg, pes, sink);
        sink.finish();
        FILE* out = out_path ? std::fopen(out_path, "w") : stdout;
        if (out == nullptr) {
            std::perror("fopen");
            return 1;
        }
        std::fprintf(out, "%% kagen model=%s n=%llu edges=%zu (chunked)\n",
                     model_name(cfg.model), static_cast<unsigned long long>(n),
                     sink.edges().size());
        for (const auto& [u, v] : sink.edges()) {
            std::fprintf(out, "%llu %llu\n", static_cast<unsigned long long>(u),
                         static_cast<unsigned long long>(v));
        }
        if (out_path) std::fclose(out);
        return 0;
    }
    std::fprintf(stderr, "unknown sink '%s' (memory|count|stats|file)\n", kind.c_str());
    return 2;
}

int run_per_pe(const Config& cfg, u64 rank, u64 size, const char* out_path) {
    const Result result = generate(cfg, rank, size);
    FILE* out           = out_path ? std::fopen(out_path, "w") : stdout;
    if (out == nullptr) {
        std::perror("fopen");
        return 1;
    }
    std::fprintf(out, "%% kagen model=%s n=%llu rank=%llu/%llu edges=%zu\n",
                 model_name(cfg.model), static_cast<unsigned long long>(result.n),
                 static_cast<unsigned long long>(rank),
                 static_cast<unsigned long long>(size), result.edges.size());
    for (const auto& [u, v] : result.edges) {
        std::fprintf(out, "%llu %llu\n", static_cast<unsigned long long>(u),
                     static_cast<unsigned long long>(v));
    }
    if (out_path) std::fclose(out);
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc >= 2 && (std::strcmp(argv[1], "-help") == 0 ||
                      std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
        print_help(stdout, argv[0]);
        return 0;
    }
    if (argc >= 2 && std::strcmp(argv[1], "-worker") == 0) {
        return run_worker_mode(argc, argv);
    }
    if (argc < 2) {
        print_help(stderr, argv[0]); // error path: keep stdout clean for data
        return 2;
    }
    Config cfg;
    cfg.model         = parse_model(argv[1]);
    cfg.n             = 1024;
    cfg.chunks_per_pe = 4;
    u64 rank = 0, size = 1, pes = 4;
    u64 ranks             = 0; // 0 = in-process; N = distributed backend
    u64 threads_per_rank  = 1;
    bool keep_rank_files  = false;
    u64 sort_memory       = u64{64} << 20; // 64 MiB unless -sort-memory
    const char* out_path  = nullptr;
    const char* dedup_out = nullptr;
    std::string sink_kind;
    net::NetOptions net_opts;
    const char* manifest_path = nullptr;
    bool m_set = false;
    // -p 0 / -r 0 are legitimate requests (empty gnp graph, radius-0 rgg);
    // only an ABSENT flag gets the heuristic default below.
    bool p_set = false, r_set = false;
    for (int i = 2; i < argc; i += 2) {
        const std::string flag = argv[i];
        if (i + 1 >= argc) {
            // The old `i + 1 < argc` loop bound silently DROPPED a trailing
            // flag with no value — "-sink file -o" ran with stdout output.
            std::fprintf(stderr, "flag '%s' is missing its value\n", flag.c_str());
            return 2;
        }
        const char* val = argv[i + 1];
        if (flag == "-n") cfg.n = parse_u64(flag, val);
        else if (flag == "-m") { cfg.m = parse_u64(flag, val); m_set = true; }
        else if (flag == "-p") { cfg.p = parse_f64(flag, val); p_set = true; }
        else if (flag == "-r") { cfg.r = parse_f64(flag, val); r_set = true; }
        else if (flag == "-d") {
            cfg.avg_deg = parse_f64(flag, val);
            if (cfg.model == Model::Ba) {
                // strtoull used to TRUNCATE "-d 2.5" to an attachment degree
                // of 2 — a different graph than the one asked for.
                if (cfg.avg_deg < 0.0 ||
                    cfg.avg_deg != std::floor(cfg.avg_deg)) {
                    bad_value(flag, val,
                              "a non-negative integer attachment degree for ba");
                }
                cfg.ba_degree = static_cast<u64>(cfg.avg_deg);
            }
        }
        else if (flag == "-g") cfg.gamma = parse_f64(flag, val);
        else if (flag == "-s") cfg.seed = parse_u64(flag, val);
        else if (flag == "-sampler") {
            if (std::strcmp(val, "v1") == 0) cfg.sampler_version = SamplerVersion::v1;
            else if (std::strcmp(val, "v2") == 0) cfg.sampler_version = SamplerVersion::v2;
            else {
                std::fprintf(stderr, "unknown sampler '%s' (v1|v2)\n", val);
                return 2;
            }
        }
        else if (flag == "-rank") rank = parse_u64(flag, val);
        else if (flag == "-size") size = parse_u64(flag, val);
        else if (flag == "-o") out_path = val;
        else if (flag == "-sink") sink_kind = val;
        else if (flag == "-pes") pes = parse_u64(flag, val);
        else if (flag == "-chunks-per-pe") cfg.chunks_per_pe = parse_u64(flag, val);
        else if (flag == "-chunks") cfg.total_chunks = parse_u64(flag, val);
        else if (flag == "-ranks") ranks = parse_u64(flag, val);
        else if (flag == "-threads-per-rank")
            threads_per_rank = parse_u64(flag, val);
        else if (flag == "-keep-rank-files")
            keep_rank_files = parse_bool(flag, val);
        else if (flag == "-sink-buffer-edges")
            cfg.sink_buffer_edges = parse_u64(flag, val);
        else if (flag == "-pin-threads")
            cfg.pin_threads = parse_bool(flag, val);
        else if (flag == "-max-buffered-bytes")
            cfg.max_buffered_bytes = parse_u64(flag, val);
        else if (flag == "-spill-path") cfg.spill_path = val;
        else if (flag == "-arena-slab-bytes")
            cfg.arena_slab_bytes = parse_u64(flag, val);
        else if (flag == "-dedup-out") dedup_out = val;
        else if (flag == "-sort-memory") sort_memory = parse_u64(flag, val);
        else if (flag == "-edge-semantics") {
            if (!parse_semantics(val, &cfg.edge_semantics)) {
                std::fprintf(stderr,
                             "unknown semantics '%s' (as_generated|exact_once)\n", val);
                return 2;
            }
        }
        else if (flag == "-listen") net_opts.listen = val;
        else if (flag == "-connect") net_opts.connect = split_commas(val);
        else if (flag == "-expect-workers")
            net_opts.expect_workers = parse_u64(flag, val);
        else if (flag == "-manifest") manifest_path = val;
        else if (flag == "-net-timeout")
            net_opts.connect_timeout_ms = parse_timeout_ms(flag, val);
        else if (flag == "-net-deadline")
            net_opts.job_deadline_ms = parse_timeout_ms(flag, val);
        else if (flag == "-trace") cfg.trace_path = val;
        else if (flag == "-metrics") cfg.metrics_path = val;
        else if (flag == "-v") g_verbose = parse_u64(flag, val);
        else {
            std::fprintf(stderr, "unknown flag '%s' (try -help)\n", flag.c_str());
            return 2;
        }
    }
    if (!m_set) cfg.m = 8 * cfg.n;
    if (!p_set) cfg.p = 8.0 / static_cast<double>(cfg.n);
    if (!r_set) {
        cfg.r = 0.6 * std::sqrt(std::log(static_cast<double>(cfg.n)) /
                                static_cast<double>(cfg.n));
    }

    const bool net_mode = !net_opts.listen.empty() || !net_opts.connect.empty();
    if (!net_opts.listen.empty() && !net_opts.connect.empty()) {
        std::fprintf(stderr, "-listen and -connect are mutually exclusive\n");
        return 2;
    }
    if (!net_opts.listen.empty() && net_opts.expect_workers == 0) {
        std::fprintf(stderr, "-listen requires -expect-workers N\n");
        return 2;
    }
    if (net_mode && ranks != 0) {
        std::fprintf(stderr, "-ranks (fork backend) and -listen/-connect "
                             "(TCP backend) are mutually exclusive\n");
        return 2;
    }
    if (net_mode && sink_kind.empty()) {
        std::fprintf(stderr, "-listen/-connect requires -sink count|stats|file\n");
        return 2;
    }
    if (manifest_path != nullptr && (!net_mode || sink_kind != "file")) {
        std::fprintf(stderr, "-manifest requires -listen/-connect with -sink file\n");
        return 2;
    }
    if (manifest_path != nullptr && dedup_out != nullptr) {
        std::fprintf(stderr, "-dedup-out needs a gathered file (-o), "
                             "not a -manifest run\n");
        return 2;
    }
    if (dedup_out != nullptr && sink_kind != "file") {
        // Silently ignoring the flag would leave scripts failing later on a
        // missing dedup file with no hint why — also on the per-PE path.
        std::fprintf(stderr, "-dedup-out requires -sink file\n");
        return 2;
    }
    if (ranks != 0 && sink_kind.empty()) {
        std::fprintf(stderr, "-ranks requires -sink count|stats|file\n");
        return 2;
    }
    if ((!cfg.trace_path.empty() || !cfg.metrics_path.empty()) &&
        sink_kind.empty()) {
        // The per-PE path returns edges without running the chunk engine;
        // silently writing no telemetry file would look like a lost trace.
        std::fprintf(stderr, "-trace/-metrics require a -sink run\n");
        return 2;
    }

    try {
        int rc;
        if (net_mode) {
            net_opts.num_pes            = pes;
            net_opts.threads_per_worker = threads_per_rank;
            rc = run_net_sink(cfg, sink_kind, net_opts, out_path,
                              manifest_path, dedup_out, sort_memory);
        } else if (ranks != 0) {
            rc = run_distributed_sink(cfg, sink_kind, ranks, pes,
                                      threads_per_rank, keep_rank_files,
                                      out_path, dedup_out, sort_memory);
        } else if (!sink_kind.empty()) {
            rc = run_chunked_sink(cfg, sink_kind, pes, out_path, dedup_out,
                                  sort_memory);
        } else {
            rc = run_per_pe(cfg, rank, size, out_path);
        }
        if (rc == 0) print_verbose_metrics();
        return rc;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
