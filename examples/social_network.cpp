// Complex-network analysis scenario (paper §1/[2, 9]): random hyperbolic
// graphs reproduce the heavy-tailed degree distributions and clustering of
// social networks. Generates RHG instances across power-law exponents and
// reports the fitted exponent, hub structure, and clustering — the checks an
// algorithm designer would run before using synthetic data as a benchmark.
//
//   ./example_social_network [n] [pes]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "graph/stats.hpp"
#include "kagen.hpp"
#include "pe/pe.hpp"

using namespace kagen;

int main(int argc, char** argv) {
    const u64 n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;
    const u64 P = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;

    std::printf("Synthetic social networks via RHG: n = %llu, target degree 16\n\n",
                static_cast<unsigned long long>(n));
    std::printf("%8s %12s %10s %12s %14s %12s %12s\n", "gamma", "edges", "avg deg",
                "max deg", "gamma (MLE)", "clustering", "components");

    for (const double gamma : {2.2, 2.5, 2.8, 3.1}) {
        Config cfg;
        cfg.model   = Model::RhgStreaming;
        cfg.n       = n;
        cfg.avg_deg = 16;
        cfg.gamma   = gamma;
        cfg.seed    = 2718;
        const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
            return generate(cfg, rank, size).edges;
        }, /*threaded=*/true);
        const EdgeList edges = pe::union_undirected(per_pe);
        const auto degs      = degrees(edges, n);
        std::printf("%8.1f %12zu %10.2f %12llu %14.2f %12.4f %12llu\n", gamma,
                    edges.size(), average_degree(degs),
                    static_cast<unsigned long long>(max_degree(degs)),
                    power_law_exponent_mle(degs, 16),
                    global_clustering_coefficient(edges, n),
                    static_cast<unsigned long long>(connected_components(edges, n)));
    }
    std::printf("\nExpected shape: fitted exponent tracks gamma, hubs grow as "
                "gamma drops, clustering stays high (hyperbolic locality).\n");
    return 0;
}
