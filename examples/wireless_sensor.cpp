// Ad-hoc wireless sensor network scenario (paper §1/[1]): random geometric
// graphs model sensor ranges. Sweeps the transmission radius around the
// connectivity threshold r* = sqrt(ln n / (pi n)) and reports how the
// network's connectivity, degree, and clustering respond — the classic
// dimensioning question for sensor deployments.
//
//   ./example_wireless_sensor [n] [pes]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "graph/stats.hpp"
#include "kagen.hpp"
#include "pe/pe.hpp"

using namespace kagen;

int main(int argc, char** argv) {
    const u64 n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
    const u64 P = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;

    const double r_star = std::sqrt(std::log(static_cast<double>(n)) /
                                    (std::numbers::pi * static_cast<double>(n)));
    std::printf("Wireless ad-hoc network dimensioning: n = %llu sensors, "
                "connectivity threshold r* = %.5f\n\n",
                static_cast<unsigned long long>(n), r_star);
    std::printf("%8s %12s %10s %12s %14s %12s\n", "r/r*", "edges", "avg deg",
                "max deg", "components", "clustering");

    for (const double factor : {0.5, 0.75, 1.0, 1.25, 1.5, 2.0}) {
        Config cfg;
        cfg.model = Model::Rgg2D;
        cfg.n     = n;
        cfg.r     = factor * r_star;
        cfg.seed  = 1234;
        const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
            return generate(cfg, rank, size).edges;
        }, /*threaded=*/true);
        const EdgeList edges = pe::union_undirected(per_pe);
        const auto degs      = degrees(edges, n);
        std::printf("%8.2f %12zu %10.2f %12llu %14llu %12.4f\n", factor,
                    edges.size(), average_degree(degs),
                    static_cast<unsigned long long>(max_degree(degs)),
                    static_cast<unsigned long long>(connected_components(edges, n)),
                    global_clustering_coefficient(edges, n));
    }
    std::printf("\nExpected shape: components collapse to 1 just above r*, "
                "clustering stays near the RGG constant ~0.5865.\n");
    return 0;
}
