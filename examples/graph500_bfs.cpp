// Graph500-style benchmark scenario (the paper's motivating use case §1):
// generate a scale-S graph with R-MAT (the incumbent Graph 500 generator)
// and with the communication-free generators the paper proposes as
// replacements (undirected G(n,m), streaming RHG), then run the Graph500
// kernel-2 workload: BFS from random roots, reporting generation rate and
// traversed edges per second (TEPS).
//
//   ./example_graph500_bfs [scale] [edgefactor] [pes]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "graph/csr.hpp"
#include "kagen.hpp"
#include "pe/pe.hpp"
#include "prng/rng.hpp"

using namespace kagen;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

void run_workload(const char* name, const Config& cfg, u64 pes) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto per_pe =
        pe::run_all(pes, [&](u64 rank, u64 size) { return generate(cfg, rank, size).edges; },
                    /*threaded=*/true);
    const double gen_time = seconds_since(t0);

    EdgeList edges = pe::union_undirected(per_pe);
    const u64 n    = generate(cfg, 0, 1).n;
    const Csr g    = build_csr(edges, n, /*symmetrize=*/true);

    // Kernel 2: BFS from 8 random roots with nonzero degree.
    Rng rng(12345);
    double teps_sum = 0.0;
    int runs        = 0;
    for (int i = 0; i < 8; ++i) {
        const VertexId root = rng.range(n);
        if (g.degree(root) == 0) continue;
        const auto t1 = std::chrono::steady_clock::now();
        u64 reached   = 0;
        bfs(g, root, &reached);
        const double bfs_time = seconds_since(t1);
        // Graph500 counts edges in the traversed component.
        teps_sum += static_cast<double>(edges.size()) *
                    (static_cast<double>(reached) / static_cast<double>(n)) /
                    bfs_time;
        ++runs;
    }
    std::printf("%-16s %12zu edges  generated in %7.3fs (%9.2e edges/s)  "
                "BFS: %9.2e TEPS (mean of %d roots)\n",
                name, edges.size(), gen_time,
                static_cast<double>(edges.size()) / gen_time,
                runs > 0 ? teps_sum / runs : 0.0, runs);
}

} // namespace

int main(int argc, char** argv) {
    const u64 scale  = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
    const u64 factor = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
    const u64 pes    = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8;
    const u64 n      = u64{1} << scale;
    const u64 m      = factor * n;

    std::printf("Graph500-style run: scale %llu (n = %llu), edgefactor %llu, "
                "%llu simulated PEs\n\n",
                static_cast<unsigned long long>(scale),
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(factor),
                static_cast<unsigned long long>(pes));

    Config rmat;
    rmat.model = Model::Rmat;
    rmat.n     = n;
    rmat.m     = m;
    rmat.seed  = 7;
    run_workload("rmat", rmat, pes);

    Config gnm;
    gnm.model = Model::GnmUndirected;
    gnm.n     = n;
    gnm.m     = m;
    gnm.seed  = 7;
    run_workload("gnm_undirected", gnm, pes);

    Config rhg;
    rhg.model   = Model::RhgStreaming;
    rhg.n       = n;
    rhg.avg_deg = static_cast<double>(2 * factor);
    rhg.gamma   = 2.2; // heavy-tailed, like real web/social graphs
    rhg.seed    = 7;
    run_workload("rhg_streaming", rhg, pes);

    std::printf("\nThe paper's proposal: the communication-free generators rival "
                "R-MAT's scalability while covering richer graph families.\n");
    return 0;
}
