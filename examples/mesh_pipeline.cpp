// Scientific-computing mesh pipeline (paper §2.1.4: Delaunay graphs "as a
// good model for meshes as they are frequently used in scientific
// computing", with periodic boundary conditions): generate a periodic RDG
// mesh in parallel, validate its structural invariants, and export it in
// METIS format for a graph partitioner plus a binary edge list for fast
// reloading.
//
//   ./example_mesh_pipeline [n] [pes] [outdir]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "kagen.hpp"
#include "pe/pe.hpp"

using namespace kagen;

int main(int argc, char** argv) {
    const u64 n           = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
    const u64 P           = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;
    const std::string dir = argc > 3 ? argv[3] : "/tmp";

    Config cfg;
    cfg.model = Model::Rdg2D;
    cfg.n     = n;
    cfg.seed  = 5;

    std::printf("Periodic Delaunay mesh: n = %llu vertices on %llu PEs\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(P));
    const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
        return generate(cfg, rank, size).edges;
    }, /*threaded=*/true);
    const EdgeList edges = pe::union_undirected(per_pe);

    // Structural validation: a triangulated torus satisfies E = 3V exactly,
    // every vertex has degree >= 3, and the mesh is connected.
    const auto degs = degrees(edges, n);
    std::printf("  edges:           %zu (torus identity 3V = %llu)\n", edges.size(),
                static_cast<unsigned long long>(3 * n));
    std::printf("  degree avg/max:  %.2f / %llu\n", average_degree(degs),
                static_cast<unsigned long long>(max_degree(degs)));
    std::printf("  components:      %llu\n",
                static_cast<unsigned long long>(connected_components(edges, n)));
    if (edges.size() != 3 * n) {
        std::printf("  WARNING: torus Euler identity violated\n");
        return 1;
    }

    const std::string metis_path = dir + "/mesh.metis";
    const std::string bin_path   = dir + "/mesh.bin";
    io::write_metis(metis_path, edges, n);
    io::write_edge_list_binary(bin_path, edges);
    std::printf("  wrote %s and %s\n", metis_path.c_str(), bin_path.c_str());

    // Round-trip check of the binary format.
    const EdgeList reloaded = io::read_edge_list_binary(bin_path);
    std::printf("  binary round-trip: %s\n",
                reloaded == edges ? "identical" : "MISMATCH");
    return reloaded == edges ? 0 : 1;
}
