// Quickstart: generate a small instance of every supported network model —
// first through the classic per-PE facade (materialized edge lists), then
// through the chunked streaming engine (degree statistics without ever
// holding an edge list).
//
//   ./example_quickstart [n] [pes]
#include <cstdio>
#include <cstdlib>

#include "graph/stats.hpp"
#include "kagen.hpp"
#include "pe/pe.hpp"
#include "sink/sinks.hpp"

using namespace kagen;

int main(int argc, char** argv) {
    const u64 n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
    const u64 P = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

    std::printf("KaGen reproduction quickstart: n = %llu vertices on %llu "
                "simulated PEs\n\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(P));
    std::printf("%-16s %12s %10s %10s %12s\n", "model", "edges", "avg deg",
                "max deg", "components");

    const Model models[] = {Model::GnmDirected, Model::GnmUndirected,
                            Model::GnpUndirected, Model::Rgg2D, Model::Rgg3D,
                            Model::Rdg2D, Model::Rdg3D, Model::Rhg,
                            Model::RhgStreaming, Model::Ba, Model::Rmat};

    auto make_config = [&](Model model) {
        Config cfg;
        cfg.model     = model;
        cfg.n         = n;
        cfg.m         = 8 * n;
        cfg.p         = 16.0 / static_cast<double>(n);
        cfg.r         = 0.6 * std::sqrt(std::log(static_cast<double>(n)) /
                                        static_cast<double>(n));
        cfg.avg_deg   = 16;
        cfg.gamma     = 2.8;
        cfg.ba_degree = 8;
        cfg.seed      = 42;
        return cfg;
    };

    for (const Model model : models) {
        const Config cfg = make_config(model);
        // Every PE generates its part independently — no communication; the
        // union below stands in for whatever the application would do with
        // the distributed edge lists.
        const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
            return generate(cfg, rank, size).edges;
        });
        const EdgeList edges = pe::union_undirected(per_pe);
        const u64 nv         = num_vertices(cfg);
        const auto degs      = degrees(edges, nv);
        std::printf("%-16s %12zu %10.2f %10llu %12llu\n", model_name(model),
                    edges.size(), average_degree(degs),
                    static_cast<unsigned long long>(max_degree(degs)),
                    static_cast<unsigned long long>(connected_components(edges, nv)));
    }

    // Streaming path: the same generators emit into an edge sink through the
    // chunked engine — K·P logical chunks, work-stealing-scheduled — so
    // statistics of arbitrarily large instances never materialize an edge
    // list. (Counts include the intentional cross-chunk duplicates of the
    // incident-edge output models, exactly like the per-PE lists above
    // before union_undirected canonicalizes them.)
    std::printf("\nStreaming through the chunked engine (chunks_per_pe = 4, "
                "no edge list in memory):\n");
    std::printf("%-16s %12s %10s %10s %10s\n", "model", "edges", "avg deg",
                "max deg", "makespan");
    for (const Model model : models) {
        Config cfg        = make_config(model);
        cfg.chunks_per_pe = 4;
        DegreeStatsSink sink(num_vertices(cfg));
        const ChunkStats stats = generate_chunked(cfg, P, sink);
        sink.finish();
        std::printf("%-16s %12llu %10.2f %10llu %8.3fms\n", model_name(model),
                    static_cast<unsigned long long>(sink.num_edges()),
                    sink.average_degree(),
                    static_cast<unsigned long long>(sink.max_degree()),
                    stats.seconds * 1e3);
    }

    std::printf("\nAll models generated communication-free: each PE's (and "
                "chunk's) output is a pure function of (rank, P, seed, "
                "params).\n");
    return 0;
}
