// Community-structure scenario using the stochastic block model — the
// extension the paper names first in its future work (§9). Generates
// planted partitions at decreasing signal strength and measures how well a
// trivial label-propagation pass recovers the planted communities,
// demonstrating SBM instances as a benchmark for clustering algorithms.
//
//   ./example_community_detection [n] [blocks] [pes]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "pe/pe.hpp"
#include "prng/rng.hpp"
#include "sbm/sbm.hpp"

using namespace kagen;

namespace {

/// One synchronous sweep of label propagation, `rounds` times.
std::vector<u64> label_propagation(const Csr& g, u64 rounds, u64 seed) {
    const u64 n = g.num_vertices();
    std::vector<u64> label(n);
    for (u64 v = 0; v < n; ++v) label[v] = v;
    Rng rng(seed);
    std::vector<u64> order(n);
    for (u64 v = 0; v < n; ++v) order[v] = v;
    for (u64 round = 0; round < rounds; ++round) {
        // Random visit order avoids pathological propagation fronts.
        for (u64 i = n; i > 1; --i) std::swap(order[i - 1], order[rng.range(i)]);
        for (const u64 v : order) {
            std::vector<std::pair<u64, u64>> counts; // (label, count)
            for (const VertexId* t = g.begin(v); t != g.end(v); ++t) {
                bool found = false;
                for (auto& [l, c] : counts) {
                    if (l == label[*t]) {
                        ++c;
                        found = true;
                        break;
                    }
                }
                if (!found) counts.emplace_back(label[*t], 1);
            }
            u64 best = label[v], best_count = 0;
            for (const auto& [l, c] : counts) {
                if (c > best_count) {
                    best       = l;
                    best_count = c;
                }
            }
            label[v] = best;
        }
    }
    return label;
}

/// Intra-block label agreement minus inter-block label agreement: 1 for a
/// perfect recovery, ~0 when labels carry no community signal (including
/// the everything-one-label collapse).
double recovery_score(const std::vector<u64>& label, u64 block_size, u64 blocks) {
    Rng rng(7);
    u64 intra_agree = 0, intra_total = 0, inter_agree = 0, inter_total = 0;
    for (int s = 0; s < 20000; ++s) {
        const u64 b1 = rng.range(blocks);
        const u64 b2 = rng.range(blocks);
        const u64 u  = b1 * block_size + rng.range(block_size);
        const u64 v  = b2 * block_size + rng.range(block_size);
        if (u == v) continue;
        if (b1 == b2) {
            ++intra_total;
            intra_agree += label[u] == label[v];
        } else {
            ++inter_total;
            inter_agree += label[u] == label[v];
        }
    }
    return static_cast<double>(intra_agree) / static_cast<double>(intra_total) -
           static_cast<double>(inter_agree) / static_cast<double>(inter_total);
}

} // namespace

int main(int argc, char** argv) {
    const u64 n      = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
    const u64 blocks = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;
    const u64 P      = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
    const double p_in = 40.0 / static_cast<double>(n / blocks);

    std::printf("Planted-partition recovery: n = %llu, %llu blocks, "
                "intra-degree ~40\n\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(blocks));
    std::printf("%12s %12s %12s %16s\n", "p_out/p_in", "edges", "intra frac",
                "recovery score");

    for (const double ratio : {0.01, 0.05, 0.1, 0.3, 0.6}) {
        const auto params =
            sbm::planted_partition(n, blocks, p_in, ratio * p_in, 31);
        const auto per_pe = pe::run_all(P, [&](u64 rank, u64 size) {
            return sbm::generate(params, rank, size);
        }, /*threaded=*/true);
        const EdgeList edges = pe::union_undirected(per_pe);
        u64 intra            = 0;
        const u64 bs         = n / blocks;
        for (const auto& [u, v] : edges) intra += (u / bs == v / bs);
        const Csr g       = build_csr(edges, n, /*symmetrize=*/true);
        const auto labels = label_propagation(g, 5, 99);
        std::printf("%12.2f %12zu %12.3f %16.3f\n", ratio, edges.size(),
                    static_cast<double>(intra) / static_cast<double>(edges.size()),
                    recovery_score(labels, bs, blocks));
    }
    std::printf("\nExpected shape: recovery decays as p_out approaches p_in "
                "(the detectability transition).\n");
    return 0;
}
