#include "er/er.hpp"

#include <cassert>

#include "common/math.hpp"
#include "sampling/sampling.hpp"
#include "sink/sinks.hpp"
#include "variates/variates.hpp"

namespace kagen::er {
namespace {

// Structural tags keeping the hash-seeded random streams of distinct
// recursion node types disjoint.
constexpr u64 kTagTriangleNode = 0x7217e5;
constexpr u64 kTagRectNode     = 0x2ec7a0;
constexpr u64 kTagChunk        = 0xc4a9c;
constexpr u64 kTagGnp          = 0x9a9b;

/// Vertex range of chunk row/column `i` (consecutive blocks of ~n/P).
struct Blocks {
    u64 n;
    u64 p;
    u64 begin(u64 i) const { return block_begin(n, p, i); }
    u64 size(u64 i) const { return block_size(n, p, i); }
    u64 span(u64 lo, u64 hi) const { return begin(hi) - begin(lo); }
};

/// --- Directed -----------------------------------------------------------

/// Decodes a stream of *nondecreasing* sample offsets of a row-major
/// universe (rows of `width` slots each) into (row, rel-column) pairs
/// without a u64 division per sample. `sorted_sample` emits offsets in
/// increasing order, so the row advances monotonically: nearby offsets
/// resolve with a few adds (amortized O(samples + rows crossed) over a
/// chunk), and only a jump spanning many rows pays one division — the
/// emit path's former 20–30 ns/edge divide drops out of the dense case
/// entirely (DESIGN.md §9). Output is identical by construction.
class SortedRowDecoder {
public:
    explicit SortedRowDecoder(u64 width) : width_(width) {}

    /// (row index, column offset within the row) of `offset`; offsets must
    /// not decrease between calls on the same decoder.
    std::pair<u64, u64> decode(u64 offset) {
        u64 rel = offset - row_start_;
        if (rel >= width_) {
            if (rel >= kJumpRows * width_) {
                // Sparse stream: one division moves the cursor in O(1); no
                // worse than the old per-sample divide.
                const u64 skip = rel / width_;
                row_ += skip;
                row_start_ += skip * width_;
                rel -= skip * width_;
            } else {
                do {
                    ++row_;
                    row_start_ += width_;
                    rel -= width_;
                } while (rel >= width_);
            }
        }
        return {row_, rel};
    }

private:
    static constexpr u64 kJumpRows = 8; // adds are ~20x cheaper than a divide

    const u64 width_;
    u64 row_       = 0;
    u64 row_start_ = 0;
};

/// Maps a sample offset within a row-block chunk to a directed edge.
/// Row r of the adjacency matrix has n-1 valid columns (self loop removed).
void emit_directed(u64 row_begin, SortedRowDecoder& rows, u64 offset, EdgeSink& out) {
    const auto [r, c] = rows.decode(offset);
    const u64 row     = row_begin + r;
    // Branchless diagonal skip (SNIPPETS.md idiom): col >= row is an
    // unpredictable comparison in the dense regime, so fold it into an add.
    const u64 col = c + (c >= row ? 1 : 0);
    out.emit(row, col);
}

/// --- Undirected chunk materialization ------------------------------------

/// Diagonal chunk (i, i): a triangular universe over the block's vertices.
void emit_diagonal_chunk(const Blocks& blocks, u64 i, u64 count, u64 seed, EdgeSink& out,
                         SamplerVersion version) {
    const u64 base  = blocks.begin(i);
    const u64 sz    = blocks.size(i);
    const u128 uni  = triangle(sz);
    if (count == 0) return;
    assert(static_cast<u128>(count) <= uni);
    Rng rng = Rng::for_ids(seed, {kTagChunk, i, i});
    sorted_sample(rng, static_cast<u64>(uni), count, [&](u64 s) {
        const u64 r = triangle_row(s);
        const u64 c = s - static_cast<u64>(triangle(r));
        out.emit(base + r, base + c);
    }, version);
}

/// Off-diagonal chunk (i, j), i > j: a |V_i| x |V_j| rectangular universe.
void emit_rect_chunk(const Blocks& blocks, u64 i, u64 j, u64 count, u64 seed, EdgeSink& out,
                     SamplerVersion version) {
    if (count == 0) return;
    const u64 rbase = blocks.begin(i);
    const u64 cbase = blocks.begin(j);
    const u64 cols  = blocks.size(j);
    const u128 uni  = static_cast<u128>(blocks.size(i)) * cols;
    assert(static_cast<u128>(count) <= uni);
    Rng rng = Rng::for_ids(seed, {kTagChunk, i, j});
    SortedRowDecoder rows(cols);
    sorted_sample(rng, static_cast<u64>(uni), count, [&](u64 s) {
        const auto [r, c] = rows.decode(s);
        out.emit(rbase + r, cbase + c);
    }, version);
}

void emit_chunk(const Blocks& blocks, u64 i, u64 j, u64 count, u64 seed, EdgeSink& out,
                SamplerVersion version) {
    if (i == j) {
        emit_diagonal_chunk(blocks, i, count, seed, out, version);
    } else {
        emit_rect_chunk(blocks, i, j, count, seed, out, version);
    }
}

/// --- Undirected G(n,m) divide and conquer --------------------------------

struct UTri {
    Blocks blocks;
    u64 seed;
    u64 pe;        // the chunk row/column this PE owns
    EdgeSink* out;
    SamplerVersion version;
};

/// Rectangle of chunks rows [rlo, rhi) x cols [clo, chi); the PE needs either
/// one chunk row (pe in rows) or one chunk column (pe in cols) of it.
void descend_rect(const UTri& ctx, u64 rlo, u64 rhi, u64 clo, u64 chi, u64 k) {
    if (k == 0) return;
    const bool in_rows = ctx.pe >= rlo && ctx.pe < rhi;
    const bool in_cols = ctx.pe >= clo && ctx.pe < chi;
    if (!in_rows && !in_cols) return;
    if (rhi - rlo == 1 && chi - clo == 1) {
        emit_chunk(ctx.blocks, rlo, clo, k, ctx.seed, *ctx.out, ctx.version);
        return;
    }
    const u128 total = static_cast<u128>(ctx.blocks.span(rlo, rhi)) * ctx.blocks.span(clo, chi);
    Rng rng = Rng::for_ids(ctx.seed, {kTagRectNode, rlo, rhi, clo, chi});
    if (rhi - rlo >= chi - clo) {
        const u64 rmid  = rlo + (rhi - rlo) / 2;
        const u128 top  = static_cast<u128>(ctx.blocks.span(rlo, rmid)) * ctx.blocks.span(clo, chi);
        const u64 k_top = hypergeometric(rng, total, top, k);
        descend_rect(ctx, rlo, rmid, clo, chi, k_top);
        descend_rect(ctx, rmid, rhi, clo, chi, k - k_top);
    } else {
        const u64 cmid   = clo + (chi - clo) / 2;
        const u128 left  = static_cast<u128>(ctx.blocks.span(rlo, rhi)) * ctx.blocks.span(clo, cmid);
        const u64 k_left = hypergeometric(rng, total, left, k);
        descend_rect(ctx, rlo, rhi, clo, cmid, k_left);
        descend_rect(ctx, rlo, rhi, cmid, chi, k - k_left);
    }
}

/// Triangular region of chunk rows/cols [lo, hi). Splits into the top
/// triangle, the rectangle, and the bottom triangle (paper Fig. 1, right).
void descend_triangle(const UTri& ctx, u64 lo, u64 hi, u64 k) {
    if (k == 0) return;
    if (hi - lo == 1) {
        emit_chunk(ctx.blocks, lo, lo, k, ctx.seed, *ctx.out, ctx.version);
        return;
    }
    const u64 mid     = lo + (hi - lo) / 2;
    const u128 total  = triangle(ctx.blocks.span(lo, hi));
    const u128 t_top  = triangle(ctx.blocks.span(lo, mid));
    const u128 rect   = static_cast<u128>(ctx.blocks.span(mid, hi)) * ctx.blocks.span(lo, mid);
    Rng rng           = Rng::for_ids(ctx.seed, {kTagTriangleNode, lo, hi});
    const u64 k_top   = hypergeometric(rng, total, t_top, k);
    const u64 k_rect  = hypergeometric(rng, total - t_top, rect, k - k_top);
    const u64 k_bot   = k - k_top - k_rect;
    if (ctx.pe < mid) descend_triangle(ctx, lo, mid, k_top);
    descend_rect(ctx, mid, hi, lo, mid, k_rect);
    if (ctx.pe >= mid) descend_triangle(ctx, mid, hi, k_bot);
}

} // namespace

void gnm_directed(u64 n, u64 m, u64 seed, u64 rank, u64 size, EdgeSink& sink,
                  SamplerVersion version) {
    assert(n >= 2 && size >= 1 && rank < size);
    assert(static_cast<u128>(m) <= directed_universe(n));
    ChunkedSampler sampler(seed, make_row_universe(n, size, n - 1), m);
    const u64 row_begin = block_begin(n, size, rank);
    SortedRowDecoder rows(n - 1);
    sampler.sample_chunk(
        rank, [&](u64 offset) { emit_directed(row_begin, rows, offset, sink); },
        version);
    sink.flush();
}

EdgeList gnm_directed(u64 n, u64 m, u64 seed, u64 rank, u64 size,
                      SamplerVersion version) {
    MemorySink sink;
    gnm_directed(n, m, seed, rank, size, sink, version);
    return sink.take();
}

void gnm_undirected(u64 n, u64 m, u64 seed, u64 rank, u64 size, EdgeSink& sink,
                    SamplerVersion version) {
    assert(n >= 2 && size >= 1 && rank < size);
    assert(static_cast<u128>(m) <= undirected_universe(n));
    UTri ctx{Blocks{n, size}, seed, rank, &sink, version};
    descend_triangle(ctx, 0, size, m);
    sink.flush();
}

EdgeList gnm_undirected(u64 n, u64 m, u64 seed, u64 rank, u64 size,
                        SamplerVersion version) {
    MemorySink sink;
    gnm_undirected(n, m, seed, rank, size, sink, version);
    return sink.take();
}

EdgeList gnm_undirected_chunk(u64 n, u64 m, u64 seed, u64 size, u64 i, u64 j,
                              SamplerVersion version) {
    assert(i >= j && i < size);
    // Run the full recursion as PE i would, then keep only chunk (i, j)'s
    // edges. (Cheap at test scale; exercises the identical code path.)
    EdgeList all = gnm_undirected(n, m, seed, i, size, version);
    const Blocks blocks{n, size};
    EdgeList chunk;
    for (const auto& [u, v] : all) {
        const bool in_rows = u >= blocks.begin(i) && u < blocks.begin(i + 1);
        const bool in_cols = v >= blocks.begin(j) && v < blocks.begin(j + 1);
        if (in_rows && in_cols) chunk.push_back({u, v});
    }
    return chunk;
}

void gnp_directed(u64 n, double p, u64 seed, u64 rank, u64 size, EdgeSink& sink,
                  SamplerVersion version) {
    assert(n >= 2 && size >= 1 && rank < size);
    const u64 row_begin = block_begin(n, size, rank);
    const u128 universe = static_cast<u128>(block_size(n, size, rank)) * (n - 1);
    assert(universe <= static_cast<u128>(~u64{0}));
    SortedRowDecoder rows(n - 1);
    if (version == SamplerVersion::v2) {
        // Geometric-skip fast path: the binomial count + sorted positions of
        // v1 and a single Bernoulli(p) sweep over the universe induce the
        // same product distribution, so v2 fuses them into one stream — no
        // count variate, one exponential per edge.
        Rng rng = Rng::for_ids(seed, {kTagChunk, rank});
        bernoulli_sample(rng, static_cast<u64>(universe), p, [&](u64 offset) {
            emit_directed(row_begin, rows, offset, sink);
        });
        sink.flush();
        return;
    }
    Rng count_rng   = Rng::for_ids(seed, {kTagGnp, rank});
    const u64 count = binomial(count_rng, static_cast<u64>(universe), p);
    Rng rng = Rng::for_ids(seed, {kTagChunk, rank});
    sorted_sample(rng, static_cast<u64>(universe), count,
                  [&](u64 offset) { emit_directed(row_begin, rows, offset, sink); });
    sink.flush();
}

EdgeList gnp_directed(u64 n, double p, u64 seed, u64 rank, u64 size,
                      SamplerVersion version) {
    MemorySink sink;
    gnp_directed(n, p, seed, rank, size, sink, version);
    return sink.take();
}

void gnp_undirected(u64 n, double p, u64 seed, u64 rank, u64 size, EdgeSink& sink,
                    SamplerVersion version) {
    assert(n >= 2 && size >= 1 && rank < size);
    const Blocks blocks{n, size};
    if (version == SamplerVersion::v2) {
        // Per-chunk geometric-skip Bernoulli streams. The chunk rng is
        // seeded exactly as v1's position stream ({kTagChunk, i, j}), so
        // both owners of chunk (i, j) still draw identical edges — the
        // exact-once ownership filter is untouched.
        auto emit_bernoulli = [&](u64 i, u64 j) {
            Rng rng = Rng::for_ids(seed, {kTagChunk, i, j});
            if (i == j) {
                const u64 base = blocks.begin(i);
                bernoulli_sample(rng, static_cast<u64>(triangle(blocks.size(i))), p,
                                 [&](u64 s) {
                                     const u64 r = triangle_row(s);
                                     const u64 c = s - static_cast<u64>(triangle(r));
                                     sink.emit(base + r, base + c);
                                 });
            } else {
                const u64 rbase = blocks.begin(i);
                const u64 cbase = blocks.begin(j);
                const u64 cols  = blocks.size(j);
                const u128 uni  = static_cast<u128>(blocks.size(i)) * cols;
                SortedRowDecoder rows(cols);
                bernoulli_sample(rng, static_cast<u64>(uni), p, [&](u64 s) {
                    const auto [r, c] = rows.decode(s);
                    sink.emit(rbase + r, cbase + c);
                });
            }
        };
        for (u64 j = 0; j <= rank; ++j) emit_bernoulli(rank, j);
        for (u64 i = rank + 1; i < size; ++i) emit_bernoulli(i, rank);
        sink.flush();
        return;
    }
    auto chunk_count = [&](u64 i, u64 j) {
        const u128 uni = (i == j) ? triangle(blocks.size(i))
                                  : static_cast<u128>(blocks.size(i)) * blocks.size(j);
        Rng rng = Rng::for_ids(seed, {kTagGnp, i, j});
        return binomial(rng, static_cast<u64>(uni), p);
    };
    // Row chunks (rank, j <= rank) — edges whose higher endpoint is local.
    for (u64 j = 0; j <= rank; ++j) {
        emit_chunk(blocks, rank, j, chunk_count(rank, j), seed, sink,
                   SamplerVersion::v1);
    }
    // Column chunks (i > rank, rank) — edges whose lower endpoint is local.
    for (u64 i = rank + 1; i < size; ++i) {
        emit_chunk(blocks, i, rank, chunk_count(i, rank), seed, sink,
                   SamplerVersion::v1);
    }
    sink.flush();
}

EdgeList gnp_undirected(u64 n, double p, u64 seed, u64 rank, u64 size,
                        SamplerVersion version) {
    MemorySink sink;
    gnp_undirected(n, p, seed, rank, size, sink, version);
    return sink.take();
}

} // namespace kagen::er
