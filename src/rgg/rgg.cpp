#include "rgg/rgg.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/math.hpp"
#include "sink/sinks.hpp"

namespace kagen::rgg {
namespace {

/// Largest cell depth that still keeps cell side >= r.
u32 levels_for_radius(double r) {
    if (r >= 1.0) return 0;
    const double raw = std::floor(std::log2(1.0 / r));
    return static_cast<u32>(std::max(0.0, raw));
}

/// Cap so the grid has O(n) cells even for tiny radii.
template <int D>
u32 levels_for_density(u64 n) {
    u32 l = 0;
    while ((u64{1} << (static_cast<u64>(l + 1) * D)) <= std::max<u64>(n, 1)) ++l;
    return l;
}

} // namespace

template <int D>
u32 chunk_levels(u64 size) {
    u32 b = 0;
    while ((u64{1} << (static_cast<u64>(b) * D)) < size) ++b;
    return b;
}

template <int D>
u32 cell_levels(u64 n, double r, u64 size) {
    const u32 b = chunk_levels<D>(size);
    const u32 wanted = std::min(levels_for_radius(r), levels_for_density<D>(n));
    const u32 l      = std::max(b, wanted);
    // Morton codes must fit one u64 word (and leave room for D=3 spreads).
    return std::min<u32>(l, D == 2 ? 28 : 18);
}

template <int D>
PointGrid<D> point_grid(const Params& params, u64 size) {
    return PointGrid<D>(params.seed, params.n, cell_levels<D>(params.n, params.r, size));
}

template <int D>
std::pair<u64, u64> cell_range(u32 levels, u64 rank, u64 size) {
    const u32 b          = chunk_levels<D>(size);
    const u32 shift      = (levels - b) * D; // cells per chunk = 2^shift
    const u64 num_chunks = u64{1} << (static_cast<u64>(b) * D);
    return {block_begin(num_chunks, size, rank) << shift,
            block_begin(num_chunks, size, rank + 1) << shift};
}

template <int D>
IdIntervals owned_vertex_range(const Params& params, u64 rank, u64 size) {
    const PointGrid<D> grid        = point_grid<D>(params, size);
    const auto [cell_lo, cell_hi]  = cell_range<D>(grid.levels(), rank, size);
    return {{grid.first_id(cell_lo), grid.first_id(cell_hi)}};
}

template <int D>
void generate(const Params& params, u64 rank, u64 size, EdgeSink& sink) {
    const PointGrid<D> grid       = point_grid<D>(params, size);
    const u32 b                   = chunk_levels<D>(size);
    const u32 l                   = grid.levels();
    const u32 shift               = (l - b) * D; // cells per chunk = 2^shift
    const u64 num_chunks          = u64{1} << (static_cast<u64>(b) * D);
    const u64 chunk_lo            = block_begin(num_chunks, size, rank);
    const u64 chunk_hi            = block_begin(num_chunks, size, rank + 1);
    const auto [cell_lo, cell_hi] = cell_range<D>(l, rank, size);
    const double r_sq             = params.r * params.r;
    const u64 per_dim       = grid.cells_per_dim();
    // Halo width in cells: 1 when the cell side is >= r, wider otherwise.
    const auto halo = static_cast<i64>(
        std::ceil(params.r * static_cast<double>(per_dim)));

    auto is_local = [&](u64 cell) {
        const u64 chunk = cell >> shift;
        return chunk >= chunk_lo && chunk < chunk_hi;
    };

    // Cells are recomputed at most once each (local and halo alike) and
    // memoized, exactly like the "redundantly generated border layers" of
    // §5.1 — all through the deterministic PointGrid, no communication.
    std::unordered_map<u64, std::vector<typename PointGrid<D>::IdPoint>> cache;
    cache.reserve((cell_hi - cell_lo) * 2);

    // Local cells in one walk down the split tree (O(cells) variates, not
    // O(cells * levels) per-cell descends); empty ranges are memoized too so
    // neighbour probes of empty cells stay O(1).
    std::vector<u64> occupied;
    grid.for_cells_in_range(
        cell_lo, cell_hi,
        [&](u64 cell, u64 count, u64 first_id) {
            cache.emplace(cell, grid.cell_points(cell, count, first_id));
            occupied.push_back(cell);
        },
        [&](u64 lo, u64 hi) {
            for (u64 cell = lo; cell < hi; ++cell) cache.emplace(cell, 0);
        });

    auto points_of = [&](u64 cell) -> const auto& {
        auto it = cache.find(cell);
        if (it == cache.end()) it = cache.emplace(cell, grid.cell_points(cell)).first;
        return it->second;
    };

    std::array<u64, D> nb{};
    for (const u64 cell : occupied) {
        const auto& mine = points_of(cell);
        const auto coords = Morton<D>::decode(cell);

        // Enumerate the Chebyshev-ball of neighbouring cells.
        std::array<i64, D> delta;
        delta.fill(-halo);
        for (;;) {
            bool in_grid = true;
            for (int d = 0; d < D; ++d) {
                const i64 c = static_cast<i64>(coords[d]) + delta[d];
                if (c < 0 || c >= static_cast<i64>(per_dim)) {
                    in_grid = false;
                    break;
                }
                nb[d] = static_cast<u64>(c);
            }
            if (in_grid) {
                const u64 other = Morton<D>::encode(nb);
                // Local pairs are processed once (from the lower Morton id);
                // halo cells are always processed (their owner won't emit
                // for us).
                const bool skip = is_local(other) && other < cell;
                if (!skip) {
                    const auto& theirs = points_of(other);
                    if (other == cell) {
                        for (std::size_t i = 0; i < mine.size(); ++i) {
                            for (std::size_t j = i + 1; j < mine.size(); ++j) {
                                if (distance_sq(mine[i].pos, mine[j].pos) <= r_sq) {
                                    sink.emit(mine[i].id, mine[j].id);
                                }
                            }
                        }
                    } else if (!theirs.empty()) {
                        for (const auto& p : mine) {
                            for (const auto& q : theirs) {
                                if (distance_sq(p.pos, q.pos) <= r_sq) {
                                    sink.emit(std::min(p.id, q.id),
                                              std::max(p.id, q.id));
                                }
                            }
                        }
                    }
                }
            }
            // Next delta (odometer increment).
            int d = 0;
            while (d < D && ++delta[d] > halo) {
                delta[d] = -halo;
                ++d;
            }
            if (d == D) break;
        }
    }
    // A local pair of cells both see the pair (A,B) from A's side only, but
    // (A,B) and (B,A) cross-cell scans emit each edge once; within-PE
    // duplicates cannot occur. Cross-PE duplicates are intended (paper §5.1).
    sink.flush();
}

template <int D>
EdgeList generate(const Params& params, u64 rank, u64 size) {
    MemorySink sink;
    generate<D>(params, rank, size, sink);
    return sink.take();
}

template <int D>
EdgeList brute_force(const Params& params, u64 size) {
    const PointGrid<D> grid = point_grid<D>(params, size);
    const auto pts          = grid.all_points();
    const double r_sq       = params.r * params.r;
    EdgeList edges;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        for (std::size_t j = i + 1; j < pts.size(); ++j) {
            if (distance_sq(pts[i].pos, pts[j].pos) <= r_sq) {
                edges.emplace_back(std::min(pts[i].id, pts[j].id),
                                   std::max(pts[i].id, pts[j].id));
            }
        }
    }
    return edges;
}

template u32 chunk_levels<2>(u64);
template u32 chunk_levels<3>(u64);
template u32 cell_levels<2>(u64, double, u64);
template u32 cell_levels<3>(u64, double, u64);
template PointGrid<2> point_grid<2>(const Params&, u64);
template PointGrid<3> point_grid<3>(const Params&, u64);
template std::pair<u64, u64> cell_range<2>(u32, u64, u64);
template std::pair<u64, u64> cell_range<3>(u32, u64, u64);
template IdIntervals owned_vertex_range<2>(const Params&, u64, u64);
template IdIntervals owned_vertex_range<3>(const Params&, u64, u64);
template void generate<2>(const Params&, u64, u64, EdgeSink&);
template void generate<3>(const Params&, u64, u64, EdgeSink&);
template EdgeList generate<2>(const Params&, u64, u64);
template EdgeList generate<3>(const Params&, u64, u64);
template EdgeList brute_force<2>(const Params&, u64);
template EdgeList brute_force<3>(const Params&, u64);

} // namespace kagen::rgg
