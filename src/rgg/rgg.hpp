/// \file rgg.hpp
/// \brief Communication-free random geometric graph generator (paper §5).
///
/// The unit cube is partitioned into 2^(D*b) chunks (b chosen so there are at
/// least P chunks); chunks are assigned to PEs as contiguous Morton-order
/// blocks ("locality-aware via a Z-order curve", §5.1). Chunks subdivide
/// into a power-of-two cell grid whose side length is kept >= r whenever the
/// chunk granularity allows; otherwise the halo widens to ceil(r/side)
/// layers. Each PE generates its own cells plus the halo cells of
/// neighbouring chunks by *recomputation* through the shared `PointGrid`
/// substrate — no communication. Every edge incident to a local vertex is
/// emitted; edges crossing a PE boundary therefore appear on both owners.
#pragma once

#include <utility>

#include "common/types.hpp"
#include "geometry/point_grid.hpp"
#include "graph/edge_list.hpp"
#include "sink/edge_sink.hpp"
#include "sink/ownership.hpp"

namespace kagen::rgg {

struct Params {
    u64 n       = 0;   ///< number of vertices
    double r    = 0.0; ///< connection radius
    u64 seed    = 1;
};

/// Chunk depth: smallest b with 2^(D*b) >= size.
template <int D>
u32 chunk_levels(u64 size);

/// Cell depth used for (n, r, size); >= chunk_levels and chosen so cells
/// have side >= r when possible but stay at O(n) cells.
template <int D>
u32 cell_levels(u64 n, double r, u64 size);

/// The deterministic point set the generator operates on. Exposed so tests
/// and the naive baseline can build the exact reference graph.
template <int D>
PointGrid<D> point_grid(const Params& params, u64 size);

/// Morton cell range [lo, hi) of PE `rank` in a grid with `levels` cell
/// levels shared by `size` PEs: the PE's contiguous chunk block, widened to
/// cell resolution. Shared by the RGG and RDG generators and the ownership
/// layer, so all three agree on the decomposition by construction.
template <int D>
std::pair<u64, u64> cell_range(u32 levels, u64 rank, u64 size);

/// Exact-once ownership (sink/ownership.hpp): vertex ids follow Morton cell
/// order, so PE `rank`'s contiguous cell block owns one consecutive id
/// interval — the Morton-rank tie-break of DESIGN.md §6 reduces to an
/// interval test on the edge's lower endpoint.
template <int D>
IdIntervals owned_vertex_range(const Params& params, u64 rank, u64 size);

/// Edges of PE `rank`: all edges incident to vertices of its chunks.
/// Canonical (min-id, max-id) orientation; each edge appears once per PE.
/// The sink overload streams edges as the cell sweep finds them; the
/// EdgeList overload is a MemorySink wrapper (bit-identical output).
template <int D>
void generate(const Params& params, u64 rank, u64 size, EdgeSink& sink);

template <int D>
EdgeList generate(const Params& params, u64 rank, u64 size);

/// Theta(n^2) reference over the same point set (tests, small benches).
template <int D>
EdgeList brute_force(const Params& params, u64 size);

} // namespace kagen::rgg
