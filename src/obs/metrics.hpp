/// \file metrics.hpp
/// \brief Process-wide metrics registry: named monotonic counters and
///        log-bucketed histograms with mergeable, serializable snapshots.
///
/// The engine's runtime accounting used to be hand-threaded structs
/// (`pe::ChunkRunStats`, ad-hoc fields on `DistResult`/`NetResult`) — every
/// new counter meant touching the struct, the pipe codec, and every
/// printer. The registry replaces that plumbing with named instruments:
/// hot paths `add()` to a cached `Counter&` (one relaxed atomic RMW), and
/// orchestration code takes a `Snapshot` — a deterministic, sorted
/// name→value map that serializes over the dist/net report channel, merges
/// across ranks exactly like the sink summaries (sum for monotonic
/// counters, max for peak gauges), and renders to JSON for `-metrics FILE`.
/// `ChunkRunStats` survives as a thin per-run view for API compatibility;
/// the registry is the superset.
///
/// Because the registry is process-global and lives across runs (tests,
/// the future daemon), per-run numbers are taken as *deltas*: capture a
/// base snapshot before the run and `subtract()` it from the end snapshot.
/// This also makes fork workers free — the child inherits the parent's
/// counts and ships only what it added. DESIGN.md §13.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace kagen::obs {

/// How a counter combines across ranks in `Snapshot::merge`.
enum class MergeKind : u8 {
    sum = 0, ///< monotonic totals (edges written, bytes spilled, steals)
    max = 1, ///< peak gauges (peak buffered bytes): ranks don't coexist in
             ///< one address space, so the fleet peak is the max, not a sum
};

/// Monotonic counter; add/record are wait-free relaxed atomics. Obtain via
/// Registry::counter() once (setup path) and cache the reference — the
/// lookup takes a mutex, the increments never do.
class Counter {
public:
    void add(u64 delta) { value_.fetch_add(delta, std::memory_order_relaxed); }

    /// Raises the counter to `candidate` if larger (for MergeKind::max
    /// gauges tracked as running peaks).
    void record_max(u64 candidate) {
        u64 cur = value_.load(std::memory_order_relaxed);
        while (cur < candidate &&
               !value_.compare_exchange_weak(cur, candidate, std::memory_order_relaxed)) {
        }
    }

    u64 value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<u64> value_{0};
};

/// Log2-bucketed histogram: observe(v) lands in bucket floor(log2(v))+1,
/// bucket 0 holds zeros. Fixed 65 buckets cover the full u64 range with no
/// allocation on the hot path; count/sum give exact totals and means while
/// the buckets give the shape (chunk edge counts, span latencies in ns).
class Histogram {
public:
    static constexpr int kBuckets = 65;

    void observe(u64 value) {
        buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    static int bucket_of(u64 value) {
        return value == 0 ? 0 : 64 - __builtin_clzll(value) ;
    }

    u64 count() const { return count_.load(std::memory_order_relaxed); }
    u64 sum() const { return sum_.load(std::memory_order_relaxed); }
    u64 bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }

private:
    std::atomic<u64> buckets_[kBuckets]{};
    std::atomic<u64> count_{0};
    std::atomic<u64> sum_{0};
};

/// Point-in-time copy of every instrument, detached from the atomics.
/// Deterministically ordered (std::map) so serialization, JSON, and merges
/// are reproducible byte-for-byte across runs and ranks.
struct Snapshot {
    struct CounterValue {
        u64 value      = 0;
        MergeKind kind = MergeKind::sum;
    };
    struct HistogramValue {
        u64 count = 0;
        u64 sum   = 0;
        /// Sparse nonzero buckets, ascending index.
        std::vector<std::pair<u32, u64>> buckets;
    };

    std::map<std::string, CounterValue> counters;
    std::map<std::string, HistogramValue> histograms;

    /// Folds `other` in: sum-kind counters and histograms add, max-kind
    /// counters take the max. Kind mismatches resolve toward `other`
    /// (last writer wins; never happens between same-version peers).
    void merge(const Snapshot& other);

    /// Returns this snapshot minus `base` (per-run delta against a
    /// registry that outlives the run). Counters clamp at 0 rather than
    /// wrap if `base` is newer; max-kind counters pass through unchanged
    /// (a peak is not a rate). Histograms subtract per bucket.
    Snapshot subtract(const Snapshot& base) const;

    /// Convenience: counter value by name, `fallback` when absent.
    u64 counter_or(const std::string& name, u64 fallback = 0) const;

    /// Deterministic pretty-printed JSON document.
    std::string to_json() const;

    /// Explicit little-endian wire form (common/bytes.hpp discipline) for
    /// the dist/net telemetry frames.
    void serialize(std::vector<u8>& out) const;

    /// Bounds-checked decode; throws std::runtime_error on truncation,
    /// implausible element counts, or unknown merge kinds. Does NOT
    /// require consuming `end` — telemetry frames append fields after it.
    static Snapshot deserialize(const u8*& p, const u8* end);
};

/// Name→instrument registry. Lookup is mutex-guarded (setup cost);
/// instruments are never deallocated, so cached references stay valid for
/// the process lifetime.
class Registry {
public:
    /// Returns (creating on first use) the named counter. The merge kind
    /// is fixed at creation; later lookups ignore the argument.
    Counter& counter(const std::string& name, MergeKind kind = MergeKind::sum);

    /// Returns (creating on first use) the named histogram.
    Histogram& histogram(const std::string& name);

    /// Copies every instrument's current value. Safe concurrently with
    /// hot-path increments (values are atomics; the snapshot is a
    /// consistent-enough point-in-time read, exact once writers quiesce).
    Snapshot snapshot() const;

    /// Process-wide instance every instrumented module uses.
    static Registry& global();

private:
    struct Impl;
    Impl& impl() const;
};

/// Writes `snap.to_json()` to `path` (truncating); throws
/// std::runtime_error on I/O failure.
void write_metrics_file(const std::string& path, const Snapshot& snap);

} // namespace kagen::obs
