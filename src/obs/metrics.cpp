#include "obs/metrics.hpp"

#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/bytes.hpp"

namespace kagen::obs {

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Impl {
    mutable std::mutex m;
    // unique_ptr values: instrument addresses must survive map rehashes so
    // cached Counter&/Histogram& references stay valid forever.
    std::map<std::string, std::pair<std::unique_ptr<Counter>, MergeKind>> counters;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Impl& Registry::impl() const {
    static Impl instance;
    return instance;
}

Counter& Registry::counter(const std::string& name, MergeKind kind) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    auto it = im.counters.find(name);
    if (it == im.counters.end()) {
        it = im.counters
                 .emplace(name, std::make_pair(std::make_unique<Counter>(), kind))
                 .first;
    }
    return *it->second.first;
}

Histogram& Registry::histogram(const std::string& name) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    auto it = im.histograms.find(name);
    if (it == im.histograms.end()) {
        it = im.histograms.emplace(name, std::make_unique<Histogram>()).first;
    }
    return *it->second;
}

Snapshot Registry::snapshot() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    Snapshot snap;
    for (const auto& [name, entry] : im.counters) {
        snap.counters.emplace(name,
                              Snapshot::CounterValue{entry.first->value(), entry.second});
    }
    for (const auto& [name, hist] : im.histograms) {
        Snapshot::HistogramValue hv;
        hv.count = hist->count();
        hv.sum   = hist->sum();
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            const u64 c = hist->bucket(i);
            if (c != 0) hv.buckets.emplace_back(static_cast<u32>(i), c);
        }
        snap.histograms.emplace(name, std::move(hv));
    }
    return snap;
}

Registry& Registry::global() {
    static Registry instance;
    return instance;
}

// ---------------------------------------------------------------------------
// Snapshot algebra
// ---------------------------------------------------------------------------

void Snapshot::merge(const Snapshot& other) {
    for (const auto& [name, cv] : other.counters) {
        auto [it, inserted] = counters.emplace(name, cv);
        if (inserted) continue;
        it->second.kind = cv.kind;
        if (cv.kind == MergeKind::max) {
            if (cv.value > it->second.value) it->second.value = cv.value;
        } else {
            it->second.value += cv.value;
        }
    }
    for (const auto& [name, hv] : other.histograms) {
        auto [it, inserted] = histograms.emplace(name, hv);
        if (inserted) continue;
        HistogramValue& mine = it->second;
        mine.count += hv.count;
        mine.sum += hv.sum;
        // Merge two sorted sparse bucket lists.
        std::vector<std::pair<u32, u64>> merged;
        merged.reserve(mine.buckets.size() + hv.buckets.size());
        std::size_t a = 0, b = 0;
        while (a < mine.buckets.size() || b < hv.buckets.size()) {
            if (b == hv.buckets.size() ||
                (a < mine.buckets.size() && mine.buckets[a].first < hv.buckets[b].first)) {
                merged.push_back(mine.buckets[a++]);
            } else if (a == mine.buckets.size() ||
                       hv.buckets[b].first < mine.buckets[a].first) {
                merged.push_back(hv.buckets[b++]);
            } else {
                merged.emplace_back(mine.buckets[a].first,
                                    mine.buckets[a].second + hv.buckets[b].second);
                ++a;
                ++b;
            }
        }
        mine.buckets = std::move(merged);
    }
}

Snapshot Snapshot::subtract(const Snapshot& base) const {
    Snapshot out = *this;
    for (auto& [name, cv] : out.counters) {
        if (cv.kind == MergeKind::max) continue; // a peak is not a rate
        const auto it = base.counters.find(name);
        if (it == base.counters.end()) continue;
        cv.value = cv.value >= it->second.value ? cv.value - it->second.value : 0;
    }
    for (auto& [name, hv] : out.histograms) {
        const auto it = base.histograms.find(name);
        if (it == base.histograms.end()) continue;
        const HistogramValue& old = it->second;
        hv.count = hv.count >= old.count ? hv.count - old.count : 0;
        hv.sum   = hv.sum >= old.sum ? hv.sum - old.sum : 0;
        std::vector<std::pair<u32, u64>> rest;
        for (const auto& [idx, c] : hv.buckets) {
            u64 prev = 0;
            for (const auto& [oidx, oc] : old.buckets) {
                if (oidx == idx) {
                    prev = oc;
                    break;
                }
            }
            const u64 d = c >= prev ? c - prev : 0;
            if (d != 0) rest.emplace_back(idx, d);
        }
        hv.buckets = std::move(rest);
    }
    return out;
}

u64 Snapshot::counter_or(const std::string& name, u64 fallback) const {
    const auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second.value;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

namespace {

/// Counter/histogram names are code-chosen identifiers ([a-z0-9._]); the
/// escape covers the JSON-mandatory set anyway so a stray name cannot
/// produce an invalid document.
void append_json_string(std::string& out, const std::string& s) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void append_u64(std::string& out, u64 v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out += buf;
}

} // namespace

std::string Snapshot::to_json() const {
    std::string out;
    out += "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, cv] : counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        append_json_string(out, name);
        out += ": ";
        append_u64(out, cv.value);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, hv] : histograms) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        append_json_string(out, name);
        out += ": {\"count\": ";
        append_u64(out, hv.count);
        out += ", \"sum\": ";
        append_u64(out, hv.sum);
        out += ", \"log2_buckets\": {";
        bool bfirst = true;
        for (const auto& [idx, c] : hv.buckets) {
            if (!bfirst) out += ", ";
            bfirst = false;
            out.push_back('"');
            append_u64(out, idx);
            out += "\": ";
            append_u64(out, c);
        }
        out += "}}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

// ---------------------------------------------------------------------------
// Wire form
// ---------------------------------------------------------------------------

void Snapshot::serialize(std::vector<u8>& out) const {
    bytes::put_u64(out, counters.size());
    for (const auto& [name, cv] : counters) {
        bytes::put_string(out, name);
        bytes::put_u64(out, cv.value);
        bytes::put_u64(out, static_cast<u64>(cv.kind));
    }
    bytes::put_u64(out, histograms.size());
    for (const auto& [name, hv] : histograms) {
        bytes::put_string(out, name);
        bytes::put_u64(out, hv.count);
        bytes::put_u64(out, hv.sum);
        bytes::put_u64(out, hv.buckets.size());
        for (const auto& [idx, c] : hv.buckets) {
            bytes::put_u64(out, idx);
            bytes::put_u64(out, c);
        }
    }
}

Snapshot Snapshot::deserialize(const u8*& p, const u8* end) {
    Snapshot snap;
    const u64 num_counters = bytes::get_u64(p, end);
    // Each counter is at least name-length + value + kind = 24 bytes; an
    // implausible count fails here instead of looping on a hostile length.
    if (num_counters > static_cast<u64>(end - p) / 24) {
        throw std::runtime_error("obs: implausible snapshot counter count");
    }
    for (u64 i = 0; i < num_counters; ++i) {
        const std::string name = bytes::get_string(p, end);
        CounterValue cv;
        cv.value       = bytes::get_u64(p, end);
        const u64 kind = bytes::get_u64(p, end);
        if (kind > static_cast<u64>(MergeKind::max)) {
            throw std::runtime_error("obs: unknown counter merge kind");
        }
        cv.kind = static_cast<MergeKind>(kind);
        snap.counters.emplace(name, cv);
    }
    const u64 num_hists = bytes::get_u64(p, end);
    if (num_hists > static_cast<u64>(end - p) / 32) {
        throw std::runtime_error("obs: implausible snapshot histogram count");
    }
    for (u64 i = 0; i < num_hists; ++i) {
        const std::string name = bytes::get_string(p, end);
        HistogramValue hv;
        hv.count             = bytes::get_u64(p, end);
        hv.sum               = bytes::get_u64(p, end);
        const u64 num_bucket = bytes::get_u64(p, end);
        if (num_bucket > static_cast<u64>(end - p) / 16) {
            throw std::runtime_error("obs: implausible histogram bucket count");
        }
        for (u64 b = 0; b < num_bucket; ++b) {
            const u64 idx = bytes::get_u64(p, end);
            const u64 c   = bytes::get_u64(p, end);
            if (idx >= static_cast<u64>(Histogram::kBuckets)) {
                throw std::runtime_error("obs: histogram bucket index out of range");
            }
            hv.buckets.emplace_back(static_cast<u32>(idx), c);
        }
        snap.histograms.emplace(name, std::move(hv));
    }
    return snap;
}

void write_metrics_file(const std::string& path, const Snapshot& snap) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("obs: cannot open metrics file " + path);
    out << snap.to_json();
    out.flush();
    if (!out) throw std::runtime_error("obs: write to metrics file failed: " + path);
}

} // namespace kagen::obs
