/// \file trace.hpp
/// \brief Lock-free per-thread trace recorder emitting Chrome `trace_event`
///        JSON, plus the process's single monotonic clock entry point.
///
/// Spans cover the chunk lifecycle (`generate`, `deliver`, `spill_park`,
/// `spill_replay`, `sink_write`, `em_sort`, `merge`); instants mark steals
/// and budget-parks. The hot path is two `monotonic_now()` reads and one
/// store into a thread-local ring — recording threads never share a cache
/// line, never take a lock, and when tracing is disabled a span is a single
/// relaxed flag load. Buffers are bounded (events past capacity are counted
/// as dropped, never reallocated) and drained once at run end by the
/// orchestrator.
///
/// Clock discipline: every timestamp in the codebase flows through
/// `obs::monotonic_now()` — CLOCK_MONOTONIC, never wall clock — so
/// `tools/lint_determinism.py` can enforce "no time-dependent generation"
/// with exactly one allowlisted implementation site (trace.cpp). Traces
/// from remote ranks are aligned by offsetting their timeline with the
/// coordinator's send-time handshake (DESIGN.md §13); fork workers share
/// the machine clock and need offset 0.
///
/// Compile-out: building with -DKAGEN_OBS_OFF=1 turns Span/instant() into
/// empty inlines (no flag load, no code); `monotonic_now()` always works —
/// run timing needs it regardless of tracing.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

#ifndef KAGEN_OBS_OFF
#define KAGEN_OBS_OFF 0
#endif

namespace kagen::obs {

/// Nanoseconds of CLOCK_MONOTONIC — the one place the codebase reads a
/// clock (see file comment).
u64 monotonic_now();

/// Traced phases. Span phases first, instant phases after `steal`.
enum class Phase : u8 {
    generate = 0, ///< chunk generator body (arg = chunk id)
    deliver,      ///< ordered delivery of one chunk into the sink (arg = chunk)
    spill_park,   ///< writing an over-budget chunk to the spill file (arg = chunk)
    spill_replay, ///< reading a spilled chunk back (arg = chunk)
    sink_write,   ///< sink flush of one batch (arg = bytes)
    em_sort,      ///< external-memory sort/dedup pass (arg = input bytes)
    merge,        ///< coordinator merging one rank file (arg = rank)
    steal,        ///< instant: successful steal (arg = tasks taken)
    budget_park,  ///< instant: chunk parked to disk by the byte budget (arg = chunk)
};

/// Stable lowercase name used in trace JSON and reports.
const char* phase_name(Phase phase);

/// One recorded event, 32 bytes. `dur_ns == 0` together with an
/// instant-range phase renders as a Chrome instant event.
struct TraceEvent {
    u64 begin_ns = 0; ///< monotonic_now() at span start / instant time
    u64 dur_ns   = 0;
    u64 arg      = 0; ///< phase-specific payload (chunk id, bytes, rank)
    u32 tid      = 0; ///< recording thread, registration order
    Phase phase  = Phase::generate;
    u8 is_span   = 1;
    u8 pad_[2]   = {0, 0};
};

/// Per-thread ring recorder. One process-wide instance; threads register
/// lazily on first record. Draining uses a per-buffer watermark and never
/// resets the write counters, so it is safe while other runs share the
/// global thread pool (their late events simply land in the next drain).
class TraceRecorder {
public:
    /// Events retained per recording thread; beyond this, events are
    /// dropped (counted, bounded memory: 32 B × capacity × threads).
    static constexpr u64 kDefaultCapacity = u64{1} << 16;

    /// Flips recording on/off. Enabling is monotonic for buffer memory:
    /// buffers stick around until process exit.
    void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    void record(Phase phase, u64 begin_ns, u64 dur_ns, u64 arg, bool is_span);

    /// Appends every event recorded since the previous drain (all
    /// threads), advancing the watermark. Call after the traced work
    /// joined; events recorded concurrently land in the next drain.
    void drain(std::vector<TraceEvent>& out);

    /// Events discarded because a thread buffer was full.
    u64 dropped() const { return dropped_.load(std::memory_order_relaxed); }

    static TraceRecorder& global();

private:
    struct ThreadBuffer;
    ThreadBuffer& local_buffer();

    std::atomic<bool> enabled_{false};
    std::atomic<u64> dropped_{0};
    struct Impl;
    Impl& impl();
};

/// RAII span: stamps begin on construction, records on destruction. When
/// tracing is disabled (runtime flag or KAGEN_OBS_OFF) it costs at most
/// one relaxed load.
class Span {
public:
    explicit Span(Phase phase, u64 arg = 0) {
#if !KAGEN_OBS_OFF
        if (TraceRecorder::global().enabled()) {
            phase_ = phase;
            arg_   = arg;
            begin_ = monotonic_now();
            live_  = true;
        }
#else
        (void)phase;
        (void)arg;
#endif
    }

    ~Span() {
#if !KAGEN_OBS_OFF
        if (live_) {
            TraceRecorder::global().record(phase_, begin_,
                                           monotonic_now() - begin_, arg_, true);
        }
#endif
    }

    Span(const Span&)            = delete;
    Span& operator=(const Span&) = delete;

private:
#if !KAGEN_OBS_OFF
    u64 begin_   = 0;
    u64 arg_     = 0;
    Phase phase_ = Phase::generate;
    bool live_   = false;
#endif
};

/// Records an instant event (steal, budget-park) if tracing is enabled.
inline void instant(Phase phase, u64 arg = 0) {
#if !KAGEN_OBS_OFF
    TraceRecorder& rec = TraceRecorder::global();
    if (rec.enabled()) rec.record(phase, monotonic_now(), 0, arg, false);
#else
    (void)phase;
    (void)arg;
#endif
}

// ---------------------------------------------------------------------------
// Cross-rank aggregation
// ---------------------------------------------------------------------------

/// Everything one rank ships back when telemetry is requested: its trace
/// events, its metrics delta, and `clock_base_ns` — the rank's
/// monotonic_now() at job receipt, which the coordinator pairs with its
/// own send timestamp to place the rank's timeline on the coordinator
/// clock (offset = t_sent − clock_base_ns; 0 for same-machine forks).
struct RankTelemetry {
    u64 rank          = 0;
    u64 clock_base_ns = 0;
    u64 dropped       = 0;
    std::vector<TraceEvent> events;
    Snapshot metrics;
};

/// Arms the process recorder for one rank-scoped run: drains stale events,
/// captures and returns the metrics base, enables recording.
Snapshot begin_rank_telemetry();

/// Disarms the recorder and packages everything recorded since `base` was
/// taken. The caller stamps `clock_base_ns` (0 = same machine as the
/// merger).
RankTelemetry end_rank_telemetry(u64 rank, const Snapshot& base);

std::vector<u8> serialize_telemetry(const RankTelemetry& t);

/// Bounds-checked decode; throws std::runtime_error on truncation,
/// implausible event counts, unknown phases, or trailing bytes.
RankTelemetry deserialize_telemetry(const std::vector<u8>& payload);

/// One rank's events placed on the merged timeline.
struct RankTimeline {
    u64 rank          = 0;     ///< Chrome pid
    i64 offset_ns     = 0;     ///< added to every timestamp
    std::string label;         ///< process_name metadata ("rank 3", "coordinator")
    std::vector<TraceEvent> events;
};

/// Writes a Chrome `trace_event` JSON document (object form, Perfetto and
/// chrome://tracing loadable): one process per rank with named metadata,
/// spans as "X" events, instants as "i". Throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const std::string& path,
                        const std::vector<RankTimeline>& ranks);

} // namespace kagen::obs
