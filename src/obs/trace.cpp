#include "obs/trace.hpp"

#include <ctime>

#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/bytes.hpp"

namespace kagen::obs {

u64 monotonic_now() {
    // The codebase's single clock read (lint_determinism.py: monotonic-clock
    // allowlist). CLOCK_MONOTONIC by design: timestamps must never observe
    // wall-clock adjustments, and generation output must never depend on
    // them either way — tracing only ever *records*.
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<u64>(ts.tv_sec) * 1000000000ull + static_cast<u64>(ts.tv_nsec);
}

const char* phase_name(Phase phase) {
    switch (phase) {
        case Phase::generate: return "generate";
        case Phase::deliver: return "deliver";
        case Phase::spill_park: return "spill_park";
        case Phase::spill_replay: return "spill_replay";
        case Phase::sink_write: return "sink_write";
        case Phase::em_sort: return "em_sort";
        case Phase::merge: return "merge";
        case Phase::steal: return "steal";
        case Phase::budget_park: return "budget_park";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// Single-writer ring: only the owning thread stores events and bumps
/// `count` (release); the drainer reads `count` (acquire) and everything
/// below it. The watermark (drainer-private) makes drains incremental
/// without ever writing the producer's counter — no reset races with pool
/// threads that outlive a run.
struct TraceRecorder::ThreadBuffer {
    std::vector<TraceEvent> slots;
    std::atomic<u64> count{0};
    u64 drained = 0;
    u32 tid     = 0;
};

struct TraceRecorder::Impl {
    std::mutex m; // guards registration and drain bookkeeping only
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

TraceRecorder::Impl& TraceRecorder::impl() {
    static Impl instance;
    return instance;
}

TraceRecorder& TraceRecorder::global() {
    static TraceRecorder instance;
    return instance;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
    thread_local ThreadBuffer* buf = nullptr;
    if (buf == nullptr) {
        auto owned = std::make_unique<ThreadBuffer>();
        owned->slots.resize(kDefaultCapacity);
        buf = owned.get();
        Impl& im = impl();
        std::lock_guard<std::mutex> lock(im.m);
        buf->tid = static_cast<u32>(im.buffers.size());
        im.buffers.push_back(std::move(owned));
    }
    return *buf;
}

void TraceRecorder::record(Phase phase, u64 begin_ns, u64 dur_ns, u64 arg,
                           bool is_span) {
    ThreadBuffer& buf = local_buffer();
    const u64 idx     = buf.count.load(std::memory_order_relaxed);
    if (idx >= buf.slots.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    TraceEvent& ev = buf.slots[idx];
    ev.begin_ns    = begin_ns;
    ev.dur_ns      = dur_ns;
    ev.arg         = arg;
    ev.tid         = buf.tid;
    ev.phase       = phase;
    ev.is_span     = is_span ? 1 : 0;
    buf.count.store(idx + 1, std::memory_order_release);
}

void TraceRecorder::drain(std::vector<TraceEvent>& out) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    for (auto& buf : im.buffers) {
        const u64 upto = buf->count.load(std::memory_order_acquire);
        for (u64 i = buf->drained; i < upto; ++i) out.push_back(buf->slots[i]);
        buf->drained = upto;
    }
}

// ---------------------------------------------------------------------------
// Wire form
// ---------------------------------------------------------------------------

namespace {
constexpr u64 kMaxPhase = static_cast<u64>(Phase::budget_park);
} // namespace

Snapshot begin_rank_telemetry() {
    Snapshot base = Registry::global().snapshot();
    std::vector<TraceEvent> stale;
    TraceRecorder::global().drain(stale); // this run's trace starts empty
    TraceRecorder::global().enable(true);
    return base;
}

RankTelemetry end_rank_telemetry(u64 rank, const Snapshot& base) {
    TraceRecorder& rec = TraceRecorder::global();
    rec.enable(false);
    RankTelemetry t;
    t.rank    = rank;
    t.dropped = rec.dropped();
    rec.drain(t.events);
    t.metrics = Registry::global().snapshot().subtract(base);
    return t;
}

std::vector<u8> serialize_telemetry(const RankTelemetry& t) {
    std::vector<u8> out;
    bytes::put_u64(out, t.rank);
    bytes::put_u64(out, t.clock_base_ns);
    bytes::put_u64(out, t.dropped);
    t.metrics.serialize(out);
    bytes::put_u64(out, t.events.size());
    for (const TraceEvent& ev : t.events) {
        bytes::put_u64(out, ev.begin_ns);
        bytes::put_u64(out, ev.dur_ns);
        bytes::put_u64(out, ev.arg);
        bytes::put_u64(out, (static_cast<u64>(ev.tid) << 16) |
                                (static_cast<u64>(ev.phase) << 8) |
                                static_cast<u64>(ev.is_span));
    }
    return out;
}

RankTelemetry deserialize_telemetry(const std::vector<u8>& payload) {
    const u8* p   = payload.data();
    const u8* end = p + payload.size();
    RankTelemetry t;
    t.rank          = bytes::get_u64(p, end);
    t.clock_base_ns = bytes::get_u64(p, end);
    t.dropped       = bytes::get_u64(p, end);
    t.metrics       = Snapshot::deserialize(p, end);
    const u64 count = bytes::get_u64(p, end);
    // 32 bytes per serialized event; a count past the remaining payload is
    // a corrupt or hostile frame, rejected before any allocation.
    if (count > static_cast<u64>(end - p) / 32) {
        throw std::runtime_error("obs: implausible telemetry event count");
    }
    t.events.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        TraceEvent ev;
        ev.begin_ns     = bytes::get_u64(p, end);
        ev.dur_ns       = bytes::get_u64(p, end);
        ev.arg          = bytes::get_u64(p, end);
        const u64 meta  = bytes::get_u64(p, end);
        const u64 phase = (meta >> 8) & 0xff;
        if (phase > kMaxPhase) {
            throw std::runtime_error("obs: unknown trace phase in telemetry frame");
        }
        ev.tid     = static_cast<u32>(meta >> 16);
        ev.phase   = static_cast<Phase>(phase);
        ev.is_span = (meta & 1) != 0 ? 1 : 0;
        t.events.push_back(ev);
    }
    if (p != end) {
        throw std::runtime_error("obs: trailing bytes in telemetry frame");
    }
    return t;
}

// ---------------------------------------------------------------------------
// Chrome trace_event JSON
// ---------------------------------------------------------------------------

namespace {

void append_ts_us(std::string& out, u64 ns, i64 offset_ns) {
    // Chrome wants microseconds; keep ns precision as a fraction. Offsets
    // can push an early event slightly negative — clamp, Perfetto rejects
    // negative timestamps.
    const i64 shifted = static_cast<i64>(ns) + offset_ns;
    const i64 clamped = shifted < 0 ? 0 : shifted;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(clamped / 1000),
                  static_cast<long long>(clamped % 1000));
    out += buf;
}

void append_u64_str(std::string& out, u64 v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out += buf;
}

} // namespace

void write_chrome_trace(const std::string& path,
                        const std::vector<RankTimeline>& ranks) {
    std::string out;
    out += "{\"traceEvents\": [\n";
    bool first = true;
    for (const RankTimeline& rank : ranks) {
        out += first ? "" : ",\n";
        first = false;
        // Process metadata so Perfetto shows "rank N" instead of a bare pid.
        out += "{\"ph\": \"M\", \"pid\": ";
        append_u64_str(out, rank.rank);
        out += ", \"name\": \"process_name\", \"args\": {\"name\": \"";
        out += rank.label;
        out += "\"}}";
        for (const TraceEvent& ev : rank.events) {
            out += ",\n{\"ph\": \"";
            out += ev.is_span != 0 ? "X" : "i";
            out += "\", \"pid\": ";
            append_u64_str(out, rank.rank);
            out += ", \"tid\": ";
            append_u64_str(out, ev.tid);
            out += ", \"name\": \"";
            out += phase_name(ev.phase);
            out += "\", \"ts\": ";
            append_ts_us(out, ev.begin_ns, rank.offset_ns);
            if (ev.is_span != 0) {
                out += ", \"dur\": ";
                append_ts_us(out, ev.dur_ns, 0);
            } else {
                out += ", \"s\": \"t\"";
            }
            out += ", \"args\": {\"arg\": ";
            append_u64_str(out, ev.arg);
            out += "}}";
        }
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("obs: cannot open trace file " + path);
    file << out;
    file.flush();
    if (!file) throw std::runtime_error("obs: write to trace file failed: " + path);
}

} // namespace kagen::obs
