/// \file rdg.hpp
/// \brief Communication-free random Delaunay graph generator (paper §6).
///
/// Points come from the same `PointGrid` substrate as the RGG generator,
/// with cell side ~ the mean (D+1)-th-nearest-neighbour distance
/// ((D+1)/n)^(1/D) [37]. The triangulation is *periodic* (unit torus): for
/// every point x, conceptual copies x + o, o in {-1,0,1}^D, exist; two
/// vertices are adjacent if any of their copies are adjacent (§2.1.4).
///
/// Each PE triangulates its chunk's cells plus an expanding halo of
/// recomputed neighbour cells. The halo is sufficient once
///   * no simplex incident to a local vertex touches the super-simplex, and
///   * every simplex incident to a local vertex has its circumsphere fully
///     inside generated space (§6);
/// then the star of every local vertex provably coincides with the true
/// periodic Delaunay triangulation, so all incident edges are exact.
#pragma once

#include "common/types.hpp"
#include "geometry/point_grid.hpp"
#include "graph/edge_list.hpp"
#include "sink/edge_sink.hpp"
#include "sink/ownership.hpp"

namespace kagen::rdg {

struct Params {
    u64 n    = 0;
    u64 seed = 1;
};

/// Cell depth: side ~ ((D+1)/n)^(1/D), never finer than the chunk grid.
template <int D>
u32 cell_levels(u64 n, u64 size);

/// The deterministic point set (same ids/positions on every PE and for the
/// reference triangulation).
template <int D>
PointGrid<D> point_grid(const Params& params, u64 size);

/// Exact-once ownership (sink/ownership.hpp): identical scheme to
/// `rgg::owned_vertex_range` — PE `rank`'s Morton cell block owns one
/// consecutive id interval; the §6 halo guarantee ensures both endpoint
/// owners of every Delaunay edge emit it, so the lower-endpoint tie-break
/// keeps exactly one copy.
template <int D>
IdIntervals owned_vertex_range(const Params& params, u64 rank, u64 size);

/// Delaunay edges incident to PE `rank`'s vertices, canonical (min,max) ids,
/// deduplicated within the PE. Cross-PE edges appear on both owners.
/// The sink overload streams the (per-PE deduplicated) edges once the halo
/// triangulation converges; the EdgeList overload wraps a MemorySink.
template <int D>
void generate(const Params& params, u64 rank, u64 size, EdgeSink& sink);

template <int D>
EdgeList generate(const Params& params, u64 rank, u64 size);

/// Sequential reference: triangulates all 3^D periodic copies and projects
/// edges back to the quotient torus. Exact ground truth for tests.
template <int D>
EdgeList reference(const Params& params, u64 size);

} // namespace kagen::rdg
