#include "rdg/rdg.hpp"

#include <cmath>
#include <map>
#include <set>

#include "common/math.hpp"
#include "delaunay/delaunay.hpp"
#include "rgg/rgg.hpp"
#include "sink/sinks.hpp"

namespace kagen::rdg {
namespace {

/// Per-inserted-point bookkeeping: which torus vertex it is a copy of and
/// whether it belongs to one of the PE's own (unwrapped) cells.
struct CopyInfo {
    VertexId gid = 0;
    bool local   = false;
};

template <int D>
using RawCoord = std::array<i64, D>;

/// Deterministic sub-resolution jitter for periodic copies. Non-primary
/// copies are exact translates of their originals, so configurations like
/// {a, b, a+o, b+o} are *exactly* degenerate (coplanar in 3D) — poison for
/// inexact geometric predicates. Perturbing each copy by a hash of
/// (vertex id, offset) breaks the translation symmetry identically on every
/// PE and in the reference triangulation, while staying ~6 orders of
/// magnitude below the minimum point spacing (so no non-degenerate
/// adjacency can flip).
template <int D>
Vec<D> place_copy(const Vec<D>& pos, VertexId id, const std::array<i64, D>& offset) {
    Vec<D> out = pos;
    bool primary = true;
    for (int d = 0; d < D; ++d) {
        out[d] += static_cast<double>(offset[d]);
        primary &= offset[d] == 0;
    }
    if (primary) return out;
    for (int d = 0; d < D; ++d) {
        const u64 h = spooky::hash_words(
            0x7177e2, {id, static_cast<u64>(d),
                       static_cast<u64>(offset[0] + 8),
                       static_cast<u64>(offset[D - 1] + 8),
                       D == 3 ? static_cast<u64>(offset[1] + 8) : 0});
        out[d] += (static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5) * 1e-9;
    }
    return out;
}

/// Triangulates local cells plus an expanding halo; shared by generate().
template <int D>
class HaloTriangulator {
public:
    HaloTriangulator(const PointGrid<D>& grid, u64 cell_lo, u64 cell_hi)
        : grid_(grid),
          cell_lo_(cell_lo),
          cell_hi_(cell_hi),
          g_(static_cast<i64>(grid.cells_per_dim())),
          // All raw coordinates stay within one torus wrap: [-g, 2g).
          dt_(make_lo(), make_hi()) {}

    EdgeList run() {
        // h = 0: own cells; h = 1: the directly adjacent layer (§6).
        insert_ring(0);
        insert_ring(1);
        i64 h = 1;
        // The halo can never usefully exceed one full wrap: at h = g the
        // generated region covers all {-1,0,1}^D copies, i.e. the complete
        // periodic point set.
        while (h < g_ && !halo_sufficient()) {
            ++h;
            insert_ring(h);
        }
        return extract_edges();
    }

private:
    static Vec<D> make_lo() {
        Vec<D> v;
        for (int d = 0; d < D; ++d) v[d] = -1.5;
        return v;
    }
    static Vec<D> make_hi() {
        Vec<D> v;
        for (int d = 0; d < D; ++d) v[d] = 2.5;
        return v;
    }

    bool is_local_cell(u64 cell) const { return cell >= cell_lo_ && cell < cell_hi_; }

    /// Inserts every not-yet-generated cell at Chebyshev distance exactly
    /// `h` from some local cell (h = 0 inserts the local cells themselves).
    void insert_ring(i64 h) {
        for (u64 cell = cell_lo_; cell < cell_hi_; ++cell) {
            const auto base = Morton<D>::decode(cell);
            RawCoord<D> delta;
            delta.fill(-h);
            for (;;) {
                // Only the surface of the box is new at distance h.
                i64 cheb = 0;
                for (int d = 0; d < D; ++d) {
                    cheb = std::max<i64>(cheb, delta[d] < 0 ? -delta[d] : delta[d]);
                }
                if (cheb == h) {
                    RawCoord<D> raw;
                    for (int d = 0; d < D; ++d) {
                        raw[d] = static_cast<i64>(base[d]) + delta[d];
                    }
                    insert_cell(raw);
                }
                int d = 0;
                while (d < D && ++delta[d] > h) {
                    delta[d] = -h;
                    ++d;
                }
                if (d == D) break;
            }
        }
    }

    void insert_cell(const RawCoord<D>& raw) {
        if (!generated_.insert(raw).second) return;
        // Wrap into the torus: cell = raw mod g, offset = floor(raw / g).
        std::array<u64, D> wrapped;
        std::array<i64, D> offset;
        bool primary = true;
        for (int d = 0; d < D; ++d) {
            i64 q = raw[d] / g_;
            i64 r = raw[d] % g_;
            if (r < 0) {
                r += g_;
                --q;
            }
            wrapped[d] = static_cast<u64>(r);
            offset[d]  = q;
            primary &= q == 0;
        }
        const u64 cell   = Morton<D>::encode(wrapped);
        const bool local = is_local_cell(cell) && primary;
        for (const auto& p : grid_.cell_points(cell)) {
            const u32 idx = dt_.insert(place_copy<D>(p.pos, p.id, offset));
            if (idx >= info_.size()) info_.resize(idx + 1);
            info_[idx] = CopyInfo{p.id, local};
        }
    }

    bool simplex_is_relevant(const typename Delaunay<D>::Simplex& s) const {
        for (const u32 v : s.v) {
            if (!dt_.is_super(v) && info_[v].local) return true;
        }
        return false;
    }

    /// The §6 termination test over all simplices incident to local points.
    bool halo_sufficient() const {
        bool ok = true;
        dt_.for_each_simplex([&](const auto& s) {
            if (!ok || !simplex_is_relevant(s)) return;
            std::array<Vec<D>, D + 1> verts;
            for (int i = 0; i <= D; ++i) {
                if (dt_.is_super(s.v[i])) {
                    ok = false; // local vertex on the hull: halo too small
                    return;
                }
                verts[i] = dt_.point(s.v[i]);
            }
            const auto sphere = circumsphere<D>(verts);
            if (!ball_covered(sphere)) ok = false;
        });
        return ok;
    }

    /// Every cell intersecting the circumball's bounding box must have been
    /// generated (conservative over-approximation of ball coverage).
    bool ball_covered(const Circumsphere<D>& sphere) const {
        const double r    = std::sqrt(sphere.radius2);
        const double side = grid_.cell_side();
        RawCoord<D> lo, hi;
        for (int d = 0; d < D; ++d) {
            lo[d] = static_cast<i64>(std::floor((sphere.center[d] - r) / side));
            hi[d] = static_cast<i64>(std::floor((sphere.center[d] + r) / side));
        }
        RawCoord<D> it = lo;
        for (;;) {
            if (!generated_.count(it)) return false;
            int d = 0;
            while (d < D && ++it[d] > hi[d]) {
                it[d] = lo[d];
                ++d;
            }
            if (d == D) break;
        }
        return true;
    }

    EdgeList extract_edges() const {
        EdgeList edges;
        dt_.for_each_simplex([&](const auto& s) {
            if (!simplex_is_relevant(s)) return;
            for (int i = 0; i <= D; ++i) {
                for (int j = i + 1; j <= D; ++j) {
                    const u32 a = s.v[i];
                    const u32 b = s.v[j];
                    if (dt_.is_super(a) || dt_.is_super(b)) continue;
                    if (!info_[a].local && !info_[b].local) continue;
                    const VertexId ga = info_[a].gid;
                    const VertexId gb = info_[b].gid;
                    if (ga == gb) continue; // a point and its own wrap copy
                    edges.emplace_back(std::min(ga, gb), std::max(ga, gb));
                }
            }
        });
        sort_unique(edges);
        return edges;
    }

    const PointGrid<D>& grid_;
    u64 cell_lo_;
    u64 cell_hi_;
    i64 g_;
    Delaunay<D> dt_;
    std::vector<CopyInfo> info_;
    std::set<RawCoord<D>> generated_;
};

} // namespace

template <int D>
u32 cell_levels(u64 n, u64 size) {
    const u32 b = rgg::chunk_levels<D>(size);
    if (n <= D + 1) return b;
    // side = 2^-l ~ ((D+1)/n)^(1/D)  =>  l ~ log2(n/(D+1)) / D
    const double raw =
        std::log2(static_cast<double>(n) / (D + 1)) / static_cast<double>(D);
    const u32 wanted = static_cast<u32>(std::max(0.0, std::floor(raw)));
    return std::min<u32>(std::max(b, wanted), D == 2 ? 28 : 18);
}

template <int D>
PointGrid<D> point_grid(const Params& params, u64 size) {
    return PointGrid<D>(params.seed, params.n, cell_levels<D>(params.n, size));
}

template <int D>
IdIntervals owned_vertex_range(const Params& params, u64 rank, u64 size) {
    if (params.n == 0) return {{0, 0}};
    const PointGrid<D> grid       = point_grid<D>(params, size);
    const auto [cell_lo, cell_hi] = rgg::cell_range<D>(grid.levels(), rank, size);
    return {{grid.first_id(cell_lo), grid.first_id(cell_hi)}};
}

template <int D>
void generate(const Params& params, u64 rank, u64 size, EdgeSink& sink) {
    if (params.n == 0) {
        sink.flush();
        return;
    }
    const PointGrid<D> grid       = point_grid<D>(params, size);
    const auto [cell_lo, cell_hi] = rgg::cell_range<D>(grid.levels(), rank, size);
    HaloTriangulator<D> tri(grid, cell_lo, cell_hi);
    // The incremental triangulation must converge before any edge is final,
    // so the PE's edges stream out after the (local) halo fixpoint.
    for (const auto& [u, v] : tri.run()) sink.emit(u, v);
    sink.flush();
}

template <int D>
EdgeList generate(const Params& params, u64 rank, u64 size) {
    MemorySink sink;
    generate<D>(params, rank, size, sink);
    return sink.take();
}

template <int D>
EdgeList reference(const Params& params, u64 size) {
    if (params.n == 0) return {};
    const PointGrid<D> grid = point_grid<D>(params, size);
    const auto pts          = grid.all_points();

    Vec<D> lo, hi;
    for (int d = 0; d < D; ++d) {
        lo[d] = -1.0;
        hi[d] = 2.0;
    }
    Delaunay<D> dt(lo, hi);
    std::vector<std::pair<VertexId, bool>> info; // (gid, is primary copy)
    RawCoord<D> off;
    off.fill(-1);
    for (;;) {
        bool primary = true;
        for (int d = 0; d < D; ++d) {
            if (off[d] != 0) primary = false;
        }
        for (const auto& p : pts) {
            const u32 idx = dt.insert(place_copy<D>(p.pos, p.id, off));
            if (idx >= info.size()) info.resize(idx + 1);
            info[idx] = {p.id, primary};
        }
        int d = 0;
        while (d < D && ++off[d] > 1) {
            off[d] = -1;
            ++d;
        }
        if (d == D) break;
    }

    EdgeList edges;
    dt.for_each_simplex([&](const auto& s) {
        for (int i = 0; i <= D; ++i) {
            for (int j = i + 1; j <= D; ++j) {
                const u32 a = s.v[i];
                const u32 b = s.v[j];
                if (dt.is_super(a) || dt.is_super(b)) continue;
                if (!info[a].second && !info[b].second) continue;
                const VertexId ga = info[a].first;
                const VertexId gb = info[b].first;
                if (ga == gb) continue;
                edges.emplace_back(std::min(ga, gb), std::max(ga, gb));
            }
        }
    });
    sort_unique(edges);
    return edges;
}

template u32 cell_levels<2>(u64, u64);
template u32 cell_levels<3>(u64, u64);
template PointGrid<2> point_grid<2>(const Params&, u64);
template PointGrid<3> point_grid<3>(const Params&, u64);
template IdIntervals owned_vertex_range<2>(const Params&, u64, u64);
template IdIntervals owned_vertex_range<3>(const Params&, u64, u64);
template void generate<2>(const Params&, u64, u64, EdgeSink&);
template void generate<3>(const Params&, u64, u64, EdgeSink&);
template EdgeList generate<2>(const Params&, u64, u64);
template EdgeList generate<3>(const Params&, u64, u64);
template EdgeList reference<2>(const Params&, u64);
template EdgeList reference<3>(const Params&, u64);

} // namespace kagen::rdg
