/// \file kagen.hpp
/// \brief Public facade of the KaGen reproduction: one entry point for all
///        communication-free generators.
///
/// Usage:
/// \code
///   kagen::Config cfg;
///   cfg.model = kagen::Model::Rgg2D;
///   cfg.n     = 1 << 20;
///   cfg.r     = 0.001;
///   auto result = kagen::generate(cfg, rank, size);   // this PE's edges
/// \endcode
///
/// Every generator is a pure function of (cfg, rank, size): ranks can run
/// on MPI processes, threads, or sequentially — outputs are bit-identical.
/// See DESIGN.md for the model-by-model algorithm map (paper sections) and
/// the per-model headers under er/, rgg/, rdg/, rhg/, ba/, rmat/ for
/// algorithmic detail.
#pragma once

#include <stdexcept>
#include <string>

#include "ba/ba.hpp"
#include "common/types.hpp"
#include "er/er.hpp"
#include "graph/edge_list.hpp"
#include "hyperbolic/hyperbolic.hpp"
#include "rdg/rdg.hpp"
#include "rgg/rgg.hpp"
#include "rhg/rhg.hpp"
#include "rmat/rmat.hpp"

namespace kagen {

enum class Model {
    GnmDirected,   ///< Erdős–Rényi G(n,m), directed (§4.1)
    GnmUndirected, ///< Erdős–Rényi G(n,m), undirected (§4.2)
    GnpDirected,   ///< Gilbert G(n,p), directed (§4.3)
    GnpUndirected, ///< Gilbert G(n,p), undirected (§4.3)
    Rgg2D,         ///< random geometric graph, unit square (§5)
    Rgg3D,         ///< random geometric graph, unit cube (§5)
    Rdg2D,         ///< random Delaunay graph, unit torus (§6)
    Rdg3D,         ///< random Delaunay graph, 3-torus (§6)
    Rhg,           ///< random hyperbolic graph, in-memory generator (§7.1)
    RhgStreaming,  ///< random hyperbolic graph, streaming generator (§7.2)
    Ba,            ///< Barabási–Albert preferential attachment (§3.5.1)
    Rmat,          ///< R-MAT baseline (§3.5.2)
};

struct Config {
    Model model = Model::GnmDirected;
    u64 n       = 0;    ///< vertices (for Rmat: rounded up to 2^ceil(log2 n))
    u64 m       = 0;    ///< edges (GnmDirected/GnmUndirected/Rmat)
    double p    = 0.0;  ///< edge probability (Gnp*)
    double r    = 0.0;  ///< radius (Rgg*)
    double avg_deg = 8.0; ///< target average degree (Rhg*)
    double gamma   = 3.0; ///< power-law exponent (Rhg*)
    u64 ba_degree  = 4;   ///< attachment edges per vertex (Ba)
    double rmat_a = 0.57, rmat_b = 0.19, rmat_c = 0.19;
    u64 seed = 1;
};

struct Result {
    EdgeList edges; ///< this PE's edges (semantics per model header)
    u64 n = 0;      ///< global vertex count
};

inline const char* model_name(Model model) {
    switch (model) {
        case Model::GnmDirected:   return "gnm_directed";
        case Model::GnmUndirected: return "gnm_undirected";
        case Model::GnpDirected:   return "gnp_directed";
        case Model::GnpUndirected: return "gnp_undirected";
        case Model::Rgg2D:         return "rgg2d";
        case Model::Rgg3D:         return "rgg3d";
        case Model::Rdg2D:         return "rdg2d";
        case Model::Rdg3D:         return "rdg3d";
        case Model::Rhg:           return "rhg";
        case Model::RhgStreaming:  return "rhg_streaming";
        case Model::Ba:            return "ba";
        case Model::Rmat:          return "rmat";
    }
    return "unknown";
}

/// Generates the edges PE `rank` of `size` is responsible for.
inline Result generate(const Config& cfg, u64 rank, u64 size) {
    if (size == 0 || rank >= size) {
        throw std::invalid_argument("kagen::generate: rank/size out of range");
    }
    Result out;
    out.n = cfg.n;
    switch (cfg.model) {
        case Model::GnmDirected:
            out.edges = er::gnm_directed(cfg.n, cfg.m, cfg.seed, rank, size);
            break;
        case Model::GnmUndirected:
            out.edges = er::gnm_undirected(cfg.n, cfg.m, cfg.seed, rank, size);
            break;
        case Model::GnpDirected:
            out.edges = er::gnp_directed(cfg.n, cfg.p, cfg.seed, rank, size);
            break;
        case Model::GnpUndirected:
            out.edges = er::gnp_undirected(cfg.n, cfg.p, cfg.seed, rank, size);
            break;
        case Model::Rgg2D:
            out.edges = rgg::generate<2>({cfg.n, cfg.r, cfg.seed}, rank, size);
            break;
        case Model::Rgg3D:
            out.edges = rgg::generate<3>({cfg.n, cfg.r, cfg.seed}, rank, size);
            break;
        case Model::Rdg2D:
            out.edges = rdg::generate<2>({cfg.n, cfg.seed}, rank, size);
            break;
        case Model::Rdg3D:
            out.edges = rdg::generate<3>({cfg.n, cfg.seed}, rank, size);
            break;
        case Model::Rhg:
            out.edges = rhg::generate_inmemory(
                {cfg.n, cfg.avg_deg, cfg.gamma, cfg.seed}, rank, size);
            break;
        case Model::RhgStreaming:
            out.edges = rhg::generate_streaming(
                {cfg.n, cfg.avg_deg, cfg.gamma, cfg.seed}, rank, size);
            break;
        case Model::Ba:
            out.edges = ba::generate({cfg.n, cfg.ba_degree, cfg.seed}, rank, size);
            break;
        case Model::Rmat: {
            u64 log_n = 0;
            while ((u64{1} << log_n) < cfg.n) ++log_n;
            out.n     = u64{1} << log_n;
            out.edges = rmat::generate(
                {log_n, cfg.m, cfg.rmat_a, cfg.rmat_b, cfg.rmat_c, cfg.seed}, rank,
                size);
            break;
        }
    }
    return out;
}

} // namespace kagen
