/// \file kagen.hpp
/// \brief Public facade of the KaGen reproduction: one entry point for all
///        communication-free generators.
///
/// Usage (materialized):
/// \code
///   kagen::Config cfg;
///   cfg.model = kagen::Model::Rgg2D;
///   cfg.n     = 1 << 20;
///   cfg.r     = 0.001;
///   auto result = kagen::generate(cfg, rank, size);   // this PE's edges
/// \endcode
///
/// Usage (streaming — no edge list is ever held in memory; exact_once
/// suppresses the incident-edge models' intentional cross-chunk duplicate
/// emissions, so the sink sees every edge of the graph exactly once):
/// \code
///   cfg.edge_semantics = kagen::EdgeSemantics::exact_once;
///   kagen::DegreeStatsSink sink(kagen::num_vertices(cfg));
///   kagen::generate_chunked(cfg, /*num_pes=*/8, sink); // whole graph
///   sink.finish();
/// \endcode
///
/// Every generator is a pure function of (cfg, rank, size): ranks can run
/// on MPI processes, threads, or sequentially — outputs are bit-identical.
/// The chunked engine reuses the same rank-splitting math with chunk ids in
/// the rank role: `chunks_per_pe` (K) schedules K·P logical chunks over a
/// work-stealing pool for load balancing, and pinning `total_chunks` makes
/// the generated graph independent of both P and K. See DESIGN.md for the
/// model-by-model algorithm map (paper sections), the PE-simulation
/// argument, and the sink/chunk architecture; the per-model headers under
/// er/, rgg/, rdg/, rhg/, ba/, rmat/ have algorithmic detail.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "ba/ba.hpp"
#include "common/bytes.hpp"
#include "common/math.hpp"
#include "common/types.hpp"
#include "dist/runner.hpp"
#include "er/er.hpp"
#include "graph/edge_list.hpp"
#include "hyperbolic/hyperbolic.hpp"
#include "obs/trace.hpp"
#include "pe/pe.hpp"
#include "rdg/rdg.hpp"
#include "rgg/rgg.hpp"
#include "rhg/rhg.hpp"
#include "rmat/rmat.hpp"
#include "sink/ownership.hpp"
#include "sink/sinks.hpp"

namespace kagen {

enum class Model {
    GnmDirected,   ///< Erdős–Rényi G(n,m), directed (§4.1)
    GnmUndirected, ///< Erdős–Rényi G(n,m), undirected (§4.2)
    GnpDirected,   ///< Gilbert G(n,p), directed (§4.3)
    GnpUndirected, ///< Gilbert G(n,p), undirected (§4.3)
    Rgg2D,         ///< random geometric graph, unit square (§5)
    Rgg3D,         ///< random geometric graph, unit cube (§5)
    Rdg2D,         ///< random Delaunay graph, unit torus (§6)
    Rdg3D,         ///< random Delaunay graph, 3-torus (§6)
    Rhg,           ///< random hyperbolic graph, in-memory generator (§7.1)
    RhgStreaming,  ///< random hyperbolic graph, streaming generator (§7.2)
    Ba,            ///< Barabási–Albert preferential attachment (§3.5.1)
    Rmat,          ///< R-MAT baseline (§3.5.2)
};

struct Config {
    Model model = Model::GnmDirected;
    u64 n       = 0;    ///< vertices (for Rmat: rounded up to 2^ceil(log2 n))
    u64 m       = 0;    ///< edges (GnmDirected/GnmUndirected/Rmat)
    double p    = 0.0;  ///< edge probability (Gnp*)
    double r    = 0.0;  ///< radius (Rgg*)
    double avg_deg = 8.0; ///< target average degree (Rhg*)
    double gamma   = 3.0; ///< power-law exponent (Rhg*)
    u64 ba_degree  = 4;   ///< attachment edges per vertex (Ba)
    double rmat_a = 0.57, rmat_b = 0.19, rmat_c = 0.19;
    u64 seed = 1;

    // --- chunked execution engine (generate_chunked) ---
    u64 chunks_per_pe = 1; ///< K: logical chunks scheduled per PE
    u64 total_chunks  = 0; ///< canonical chunk count; 0 = K·P. Pinning this
                           ///< makes the graph independent of P and K.

    /// Byte budget for the ordered-delivery window (pe::ChunkOptions):
    /// chunks completing ahead of the delivery cursor may hold at most this
    /// many resident edge bytes before further out-of-window chunks spill
    /// to disk and are replayed in canonical order. 0 = unbounded. Output
    /// is byte-identical for every budget; only peak memory changes.
    u64 max_buffered_bytes = 0;

    /// Spill scratch location; empty = anonymous temp file under $TMPDIR.
    std::string spill_path;

    /// Per-slab size of the chunk arena backing the ordered multi-worker
    /// path (pe/arena.hpp; tool: -arena-slab-bytes). 0 = the arena default
    /// (1 MiB). Memory layout only — the output stream is byte-identical
    /// for every value, so like trace_path/metrics_path this field is
    /// deliberately NOT part of `encode_config`: it cannot change the
    /// graph, hence it must not change the config's content-address (TCP
    /// workers simply use their local setting).
    u64 arena_slab_bytes = 0;

    /// Inline emit-buffer capacity (edges) for sinks the library constructs
    /// on the caller's behalf — the per-rank BinaryFileSink of the
    /// distributed backend in particular. 0 = EdgeSink::kDefaultBufferEdges.
    /// Sinks the caller constructs directly take the same knob as a
    /// constructor argument (tool: -sink-buffer-edges).
    u64 sink_buffer_edges = 0;

    /// Pin pool worker threads to distinct CPUs for chunked/distributed
    /// runs (pe::ThreadPool::pin_workers; tool: -pin-threads). Opt-in:
    /// pinning is sticky for the pool's lifetime and helps once
    /// chunk→worker affinity matters (see ChunkOptions::deal_granularity).
    bool pin_threads = false;

    /// Worker processes of the distributed backend (dist/runner.hpp):
    /// `generate_distributed` forks this many ranks, each generating a
    /// contiguous share of the canonical chunk decomposition in its own
    /// address space with zero inter-worker communication. 1 = a single
    /// (still forked) worker — useful as the identity baseline; the merged
    /// output is byte-identical to `generate_chunked` for every value.
    u64 num_processes = 1;

    /// Sequential sampling engine (sampling/sampling.hpp) used inside the
    /// ER family's chunks. v1 (default) is the bit-pinned reference stream
    /// every golden file and byte-identity sweep locks; v2 trades byte
    /// identity for throughput — batched variates, inline polynomial
    /// log/exp, and a geometric-skip Bernoulli fast path for Gnp — while
    /// keeping the same output *distribution* (tool: -sampler). Both keep
    /// the pure-function-of-(cfg, rank, size) contract, so chunked /
    /// distributed runs stay reproducible under either engine.
    SamplerVersion sampler_version = SamplerVersion::v1;

    /// Runtime telemetry (src/obs/, DESIGN.md §13; tool: -trace/-metrics).
    /// Non-empty `trace_path`: the run records chunk-lifecycle spans and
    /// steal/park instants and writes a Chrome trace_event JSON timeline
    /// there at the end; non-empty `metrics_path`: the run's metrics-
    /// registry delta is written there as JSON. Observation never perturbs
    /// output (byte-identity is test-pinned), and neither field enters
    /// `encode_config` — telemetry cannot change the graph, so it must not
    /// change the config's content-address either.
    std::string trace_path;
    std::string metrics_path;

    /// Edge-stream semantics (sink/ownership.hpp). `as_generated` keeps the
    /// paper's per-chunk redundancy: the incident-edge models (undirected
    /// ER/Gnp, RGG, RDG, in-memory RHG) emit every cross-chunk edge on both
    /// owning chunks. `exact_once` filters each chunk's stream to the edges
    /// whose canonical lower endpoint the chunk owns, so across all chunks
    /// every edge appears exactly once — with zero communication, and
    /// bit-deterministically for every (P, K, threads) combination once
    /// `total_chunks` is pinned. Models without intentional duplicates are
    /// byte-identical under both settings.
    EdgeSemantics edge_semantics = EdgeSemantics::as_generated;
};

struct Result {
    EdgeList edges; ///< this PE's edges (semantics per model header)
    u64 n = 0;      ///< global vertex count
};

/// Canonical byte encoding of a Config (little-endian, fixed field order,
/// versioned) — ONE encode for every consumer that needs a config to
/// survive a boundary: the TCP job frame of the net backend today, and the
/// daemon's cache key / wire form on the ROADMAP. Two equal configs encode
/// to identical bytes, so the encoding doubles as a content-address.
/// Bump `kConfigEncodingVersion` whenever a field is added or reordered;
/// `decode_config` rejects any other version rather than misreading fields.
constexpr u64 kConfigEncodingVersion = 1;

inline void encode_config(std::vector<u8>& out, const Config& cfg) {
    bytes::put_u64(out, kConfigEncodingVersion);
    bytes::put_u64(out, static_cast<u64>(cfg.model));
    bytes::put_u64(out, cfg.n);
    bytes::put_u64(out, cfg.m);
    bytes::put_f64(out, cfg.p);
    bytes::put_f64(out, cfg.r);
    bytes::put_f64(out, cfg.avg_deg);
    bytes::put_f64(out, cfg.gamma);
    bytes::put_u64(out, cfg.ba_degree);
    bytes::put_f64(out, cfg.rmat_a);
    bytes::put_f64(out, cfg.rmat_b);
    bytes::put_f64(out, cfg.rmat_c);
    bytes::put_u64(out, cfg.seed);
    bytes::put_u64(out, cfg.chunks_per_pe);
    bytes::put_u64(out, cfg.total_chunks);
    bytes::put_u64(out, cfg.max_buffered_bytes);
    bytes::put_string(out, cfg.spill_path);
    bytes::put_u64(out, cfg.sink_buffer_edges);
    bytes::put_u64(out, cfg.pin_threads ? 1 : 0);
    bytes::put_u64(out, cfg.num_processes);
    bytes::put_u64(out, static_cast<u64>(cfg.sampler_version));
    bytes::put_u64(out, static_cast<u64>(cfg.edge_semantics));
    // trace_path / metrics_path are deliberately NOT encoded: telemetry
    // never changes the generated graph, and the encoding doubles as the
    // config's content-address — two runs differing only in observation
    // must hash identically (and the committed codec corpus stays valid).
}

/// Bounds-checked decode of `encode_config`'s layout; advances `p`. Throws
/// std::runtime_error on truncation, version mismatch, or an enum value the
/// decoder does not know — a config must never decode to a *different*
/// graph than the one encoded, so unknown inputs fail loudly.
inline Config decode_config(const u8*& p, const u8* end) {
    const u64 version = bytes::get_u64(p, end);
    if (version != kConfigEncodingVersion) {
        throw std::runtime_error("kagen: config encoding version " +
                                 std::to_string(version) + " not supported (want " +
                                 std::to_string(kConfigEncodingVersion) + ")");
    }
    Config cfg;
    const u64 model = bytes::get_u64(p, end);
    if (model > static_cast<u64>(Model::Rmat)) {
        throw std::runtime_error("kagen: config carries unknown model id " +
                                 std::to_string(model));
    }
    cfg.model              = static_cast<Model>(model);
    cfg.n                  = bytes::get_u64(p, end);
    cfg.m                  = bytes::get_u64(p, end);
    cfg.p                  = bytes::get_f64(p, end);
    cfg.r                  = bytes::get_f64(p, end);
    cfg.avg_deg            = bytes::get_f64(p, end);
    cfg.gamma              = bytes::get_f64(p, end);
    cfg.ba_degree          = bytes::get_u64(p, end);
    cfg.rmat_a             = bytes::get_f64(p, end);
    cfg.rmat_b             = bytes::get_f64(p, end);
    cfg.rmat_c             = bytes::get_f64(p, end);
    cfg.seed               = bytes::get_u64(p, end);
    cfg.chunks_per_pe      = bytes::get_u64(p, end);
    cfg.total_chunks       = bytes::get_u64(p, end);
    cfg.max_buffered_bytes = bytes::get_u64(p, end);
    cfg.spill_path         = bytes::get_string(p, end);
    cfg.sink_buffer_edges  = bytes::get_u64(p, end);
    const u64 pin          = bytes::get_u64(p, end);
    if (pin > 1) {
        // Encoded bytes double as the config's content-address, so decode
        // must accept only the canonical encoding: a bool travels as 0 or 1,
        // never as "any nonzero word" (two byte strings must not alias one
        // config).
        throw std::runtime_error("kagen: config carries non-canonical bool " +
                                 std::to_string(pin));
    }
    cfg.pin_threads        = pin != 0;
    cfg.num_processes      = bytes::get_u64(p, end);
    const u64 sampler      = bytes::get_u64(p, end);
    if (sampler > static_cast<u64>(SamplerVersion::v2)) {
        throw std::runtime_error("kagen: config carries unknown sampler version " +
                                 std::to_string(sampler));
    }
    cfg.sampler_version = static_cast<SamplerVersion>(sampler);
    const u64 semantics = bytes::get_u64(p, end);
    if (semantics > static_cast<u64>(EdgeSemantics::exact_once)) {
        throw std::runtime_error("kagen: config carries unknown edge semantics " +
                                 std::to_string(semantics));
    }
    cfg.edge_semantics = static_cast<EdgeSemantics>(semantics);
    return cfg;
}

inline const char* model_name(Model model) {
    switch (model) {
        case Model::GnmDirected:   return "gnm_directed";
        case Model::GnmUndirected: return "gnm_undirected";
        case Model::GnpDirected:   return "gnp_directed";
        case Model::GnpUndirected: return "gnp_undirected";
        case Model::Rgg2D:         return "rgg2d";
        case Model::Rgg3D:         return "rgg3d";
        case Model::Rdg2D:         return "rdg2d";
        case Model::Rdg3D:         return "rdg3d";
        case Model::Rhg:           return "rhg";
        case Model::RhgStreaming:  return "rhg_streaming";
        case Model::Ba:            return "ba";
        case Model::Rmat:          return "rmat";
    }
    return "unknown";
}

/// Global vertex count of the graph `cfg` describes. Identical to the `n`
/// field of every Result for the same config. For Rmat, n is rounded up to
/// the next power of two — except n <= 1, which stays as-is (2^0 = 1 would
/// otherwise turn an explicitly empty graph into a one-vertex one), and
/// n > 2^63, which cannot be rounded within u64 and throws.
inline u64 num_vertices(const Config& cfg) {
    if (cfg.model != Model::Rmat || cfg.n <= 1) return cfg.n;
    if (cfg.n > (u64{1} << 63)) {
        throw std::invalid_argument(
            "kagen: Rmat vertex count beyond 2^63 cannot be rounded to a power of two");
    }
    return ceil_pow2(cfg.n);
}

/// Whether the model's per-chunk output carries the paper's intentional
/// cross-chunk duplicate edges (the §4.2/§5.1 redundancy trick): every edge
/// crossing a chunk boundary is recomputed — identically — by both owning
/// chunks. These are exactly the models `EdgeSemantics::exact_once`
/// filters; the rest (directed ER/Gnp, both RHG-streaming and the
/// partition-output BA/R-MAT) already emit globally disjoint streams and
/// pass through unfiltered, byte-identically.
inline bool carries_duplicates(Model model) {
    switch (model) {
        case Model::GnmUndirected:
        case Model::GnpUndirected:
        case Model::Rgg2D:
        case Model::Rgg3D:
        case Model::Rdg2D:
        case Model::Rdg3D:
        case Model::Rhg:
            return true;
        case Model::GnmDirected:
        case Model::GnpDirected:
        case Model::RhgStreaming:
        case Model::Ba:
        case Model::Rmat:
            return false;
    }
    return false;
}

/// Vertex-id intervals chunk `rank` of `size` owns under `cfg`'s model —
/// the tie-break table of the exact-once filter (sink/ownership.hpp),
/// dispatched to the per-model builders. Empty for models without
/// intentional duplicates (nothing to filter).
inline IdIntervals owned_vertex_intervals(const Config& cfg, u64 rank, u64 size) {
    switch (cfg.model) {
        case Model::GnmUndirected:
        case Model::GnpUndirected:
            return er::owned_vertex_range(cfg.n, rank, size);
        case Model::Rgg2D:
            return rgg::owned_vertex_range<2>({cfg.n, cfg.r, cfg.seed}, rank, size);
        case Model::Rgg3D:
            return rgg::owned_vertex_range<3>({cfg.n, cfg.r, cfg.seed}, rank, size);
        case Model::Rdg2D:
            return rdg::owned_vertex_range<2>({cfg.n, cfg.seed}, rank, size);
        case Model::Rdg3D:
            return rdg::owned_vertex_range<3>({cfg.n, cfg.seed}, rank, size);
        case Model::Rhg:
            return rhg::owned_vertex_intervals(
                {cfg.n, cfg.avg_deg, cfg.gamma, cfg.seed}, rank, size);
        default:
            return {};
    }
}

/// Affinity-group size for the chunk→worker deal of `cfg`'s model
/// (pe::ChunkOptions::deal_granularity). The geometric point_grid models
/// map consecutive chunk ids to contiguous Morton cell ranges, so dealing
/// chunks in groups of K = chunks_per_pe keeps each simulated PE's
/// spatially compact block on one worker — adjacent chunks share split-tree
/// ancestry and halo cells, so the worker's caches stay warm across the
/// block. Non-spatial models gain nothing from grouping and keep the plain
/// equal-count deal. Scheduling only; output is identical either way.
inline u64 chunk_deal_granularity(const Config& cfg) {
    switch (cfg.model) {
        case Model::Rgg2D:
        case Model::Rgg3D:
        case Model::Rdg2D:
        case Model::Rdg3D:
            return std::max<u64>(cfg.chunks_per_pe, 1);
        default:
            return 1;
    }
}

namespace detail {

/// The raw per-model dispatch: streams chunk `rank` of `size` exactly as
/// the paper's generators produce it (as-generated semantics).
inline void dispatch_generate(const Config& cfg, u64 rank, u64 size, EdgeSink& sink) {
    switch (cfg.model) {
        case Model::GnmDirected:
            er::gnm_directed(cfg.n, cfg.m, cfg.seed, rank, size, sink,
                             cfg.sampler_version);
            break;
        case Model::GnmUndirected:
            er::gnm_undirected(cfg.n, cfg.m, cfg.seed, rank, size, sink,
                               cfg.sampler_version);
            break;
        case Model::GnpDirected:
            er::gnp_directed(cfg.n, cfg.p, cfg.seed, rank, size, sink,
                             cfg.sampler_version);
            break;
        case Model::GnpUndirected:
            er::gnp_undirected(cfg.n, cfg.p, cfg.seed, rank, size, sink,
                               cfg.sampler_version);
            break;
        case Model::Rgg2D:
            rgg::generate<2>({cfg.n, cfg.r, cfg.seed}, rank, size, sink);
            break;
        case Model::Rgg3D:
            rgg::generate<3>({cfg.n, cfg.r, cfg.seed}, rank, size, sink);
            break;
        case Model::Rdg2D:
            rdg::generate<2>({cfg.n, cfg.seed}, rank, size, sink);
            break;
        case Model::Rdg3D:
            rdg::generate<3>({cfg.n, cfg.seed}, rank, size, sink);
            break;
        case Model::Rhg:
            rhg::generate_inmemory({cfg.n, cfg.avg_deg, cfg.gamma, cfg.seed}, rank,
                                   size, sink);
            break;
        case Model::RhgStreaming:
            rhg::generate_streaming({cfg.n, cfg.avg_deg, cfg.gamma, cfg.seed}, rank,
                                    size, sink);
            break;
        case Model::Ba:
            ba::generate({cfg.n, cfg.ba_degree, cfg.seed}, rank, size, sink);
            break;
        case Model::Rmat: {
            const u64 nv = num_vertices(cfg); // throws for n > 2^63
            if (nv <= 1) break; // no non-trivial edges exist; see num_vertices
            const u64 log_n = floor_log2(nv);
            rmat::generate({log_n, cfg.m, cfg.rmat_a, cfg.rmat_b, cfg.rmat_c, cfg.seed},
                           rank, size, sink);
            break;
        }
    }
}

} // namespace detail

/// Streams the edges PE `rank` of `size` is responsible for into `sink`
/// (flushed, not finished — the caller owns the sink lifecycle). Under
/// `cfg.edge_semantics == exact_once` the duplicate-carrying models are
/// wrapped in a per-chunk `OwnershipFilterSink`, so the streams of all
/// ranks are globally disjoint and their union is the graph — each rank
/// still a pure function of (cfg, rank, size), no communication.
inline void generate(const Config& cfg, u64 rank, u64 size, EdgeSink& sink) {
    if (size == 0 || rank >= size) {
        throw std::invalid_argument("kagen::generate: rank/size out of range");
    }
    if (cfg.edge_semantics == EdgeSemantics::exact_once &&
        carries_duplicates(cfg.model)) {
        OwnershipFilterSink filter(owned_vertex_intervals(cfg, rank, size), sink);
        detail::dispatch_generate(cfg, rank, size, filter);
        filter.finish(); // drains the filter and flushes `sink`; no more
        return;          // (the target sink's finish() stays with the caller)
    }
    detail::dispatch_generate(cfg, rank, size, sink);
}

/// Generates the edges PE `rank` of `size` is responsible for.
inline Result generate(const Config& cfg, u64 rank, u64 size) {
    Result out;
    out.n = num_vertices(cfg);
    MemorySink sink(&out.edges);
    generate(cfg, rank, size, sink);
    return out;
}

struct ChunkStats {
    u64 n          = 0;   ///< global vertex count
    u64 num_chunks = 0;   ///< canonical chunks executed
    u64 workers    = 0;   ///< parallel participants used
    double seconds = 0.0; ///< makespan of the generation phase

    // Ordered-delivery accounting (zero for unordered sinks and for
    // single-worker runs, which stream directly — no chunk buffers).
    u64 peak_buffered_bytes = 0; ///< max resident chunk-buffer bytes
    u64 spilled_chunks      = 0; ///< chunks parked on disk
    u64 spilled_bytes       = 0; ///< edge bytes written to the spill file

    // Chunk-arena accounting (multi-worker ordered runs only). A "buffer"
    // is a slab of the chunk arena (pe/arena.hpp).
    u64 buffers_recycled  = 0; ///< slab acquires served from the freelist
    u64 buffers_allocated = 0; ///< slabs freshly reserved (mmap/fallback)
    u64 arena_chains      = 0; ///< chunks that chained a second+ slab
    u64 arena_slab_bytes  = 0; ///< per-slab size the run used
};

/// Whole-graph chunked engine: runs every canonical chunk (total_chunks,
/// or chunks_per_pe·num_pes when unset) of the graph through the generator
/// and streams the edges into `sink`, work-stealing-scheduled over the
/// persistent thread pool with at most `threads` workers (0 = one per
/// simulated PE, capped by the hardware). A chunk id plays exactly the rank
/// role of the per-PE API, so the edge stream equals the concatenation of
/// generate(cfg, c, C) for c = 0..C-1 — bit-identical for every thread
/// count, and for every (P, K) combination once total_chunks is pinned.
/// Under the default `as_generated` semantics, models whose per-PE output
/// carries intentional cross-PE duplicates (undirected ER/Gnp, Rgg, Rdg,
/// in-memory Rhg) keep them here chunk-for-chunk; with
/// `cfg.edge_semantics = exact_once` each chunk's stream is
/// ownership-filtered so the whole run emits every edge exactly once —
/// counting/stats/file sinks then see the true graph with no post-hoc
/// dedup pass. The caller owns sink.finish().
inline ChunkStats generate_chunked(const Config& cfg, u64 num_pes, EdgeSink& sink,
                                   u64 threads = 0, pe::ThreadPool* pool = nullptr) {
    if (num_pes == 0) {
        throw std::invalid_argument("kagen::generate_chunked: num_pes must be >= 1");
    }
    if (cfg.chunks_per_pe == 0) {
        throw std::invalid_argument("kagen::generate_chunked: chunks_per_pe must be >= 1");
    }
    ChunkStats out;
    out.n = num_vertices(cfg); // validates the config before any chunk runs

    // Telemetry scope (DESIGN.md §13): arm the recorder and take a metrics
    // base before the run; drain + write after. The guard disarms on every
    // exit path so an exception never leaves the process-global recorder
    // armed for an un-instrumented caller.
    const bool want_obs = !cfg.trace_path.empty() || !cfg.metrics_path.empty();
    obs::Snapshot obs_base;
    struct RecorderGuard {
        bool active = false;
        ~RecorderGuard() {
            if (active) obs::TraceRecorder::global().enable(false);
        }
    } guard;
    if (want_obs) {
        obs_base = obs::Registry::global().snapshot();
        std::vector<obs::TraceEvent> stale;
        obs::TraceRecorder::global().drain(stale); // trace covers this run only
        obs::TraceRecorder::global().enable(true);
        guard.active = true;
    }

    pe::ChunkOptions opt;
    opt.num_pes            = num_pes;
    opt.chunks_per_pe      = cfg.chunks_per_pe;
    opt.total_chunks       = cfg.total_chunks;
    opt.threads            = threads;
    opt.pool               = pool;
    opt.max_buffered_bytes = cfg.max_buffered_bytes;
    opt.spill_path         = cfg.spill_path;
    opt.arena_slab_bytes   = cfg.arena_slab_bytes;
    opt.pin_threads        = cfg.pin_threads;
    opt.deal_granularity   = chunk_deal_granularity(cfg);
    const auto stats       = pe::run_chunked(
        opt,
        [&cfg](u64 chunk, u64 num_chunks, EdgeSink& chunk_sink) {
            generate(cfg, chunk, num_chunks, chunk_sink);
        },
        sink);
    out.num_chunks          = stats.num_chunks;
    out.workers             = stats.workers;
    out.seconds             = stats.seconds;
    out.peak_buffered_bytes = stats.peak_buffered_bytes;
    out.spilled_chunks      = stats.spilled_chunks;
    out.spilled_bytes       = stats.spilled_bytes;
    out.buffers_recycled    = stats.buffers_recycled;
    out.buffers_allocated   = stats.buffers_allocated;
    out.arena_chains        = stats.arena_chains;
    out.arena_slab_bytes    = stats.arena_slab_bytes;

    if (want_obs) {
        obs::TraceRecorder::global().enable(false);
        guard.active = false;
        if (!cfg.trace_path.empty()) {
            obs::RankTimeline timeline;
            timeline.rank  = 0;
            timeline.label = "rank 0";
            obs::TraceRecorder::global().drain(timeline.events);
            obs::write_chrome_trace(cfg.trace_path, {timeline});
        }
        if (!cfg.metrics_path.empty()) {
            obs::write_metrics_file(
                cfg.metrics_path,
                obs::Registry::global().snapshot().subtract(obs_base));
        }
    }
    return out;
}

/// Multi-process distributed run (dist/runner.hpp): forks
/// `opts.num_ranks` (default `cfg.num_processes`) worker processes, each
/// generating its contiguous share of the canonical chunk decomposition
/// into a per-rank file — no inter-worker communication, only one stats
/// frame per worker back to the coordinator — then merges the rank files in
/// canonical order. The merged output file is byte-identical to a
/// single-process `generate_chunked` run into a `BinaryFileSink` with the
/// same (P, K) decomposition, and the merged `CountingSummary` /
/// `DegreeStatsSummary` equal the in-process sink statistics exactly.
/// Throws with a descriptive message if any rank fails (no hang, no
/// partial files). See DESIGN.md §8.
inline dist::DistResult generate_distributed(const Config& cfg,
                                             dist::DistOptions opts = {}) {
    if (opts.num_ranks == 0) {
        opts.num_ranks = cfg.num_processes != 0 ? cfg.num_processes : 1;
    }
    return dist::run_distributed(cfg, opts);
}

} // namespace kagen
