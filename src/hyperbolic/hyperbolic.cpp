#include "hyperbolic/hyperbolic.hpp"

#include <algorithm>

#include "common/math.hpp"
#include "variates/variates.hpp"

namespace kagen::hyp {

HypGrid::HypGrid(const Params& params, u64 num_chunks)
    : space_(params), seed_(params.seed), num_chunks_(std::max<u64>(num_chunks, 1)) {
    // k = max(1, floor(alpha*R / ln 2)) equal-height annuli (§7.1).
    const double r = space_.radius();
    const auto k   = std::max<u32>(
        1, static_cast<u32>(std::floor(space_.alpha() * r / std::numbers::ln2)));
    bounds_.resize(k + 1);
    for (u32 i = 0; i <= k; ++i) {
        bounds_[i] = r * static_cast<double>(i) / static_cast<double>(k);
    }

    // Annulus occupancy: one multinomial over the radial masses, drawn from
    // a single hash-seeded stream so every PE computes identical counts.
    std::vector<double> probs(k);
    for (u32 i = 0; i < k; ++i) {
        probs[i] = space_.radial_cdf(bounds_[i + 1]) - space_.radial_cdf(bounds_[i]);
    }
    Rng rng        = Rng::for_ids(seed_, {kTagAnnuli});
    annulus_count_ = multinomial(rng, params.n, probs);
    annulus_offset_.resize(k + 1, 0);
    for (u32 i = 0; i < k; ++i) {
        annulus_offset_[i + 1] = annulus_offset_[i] + annulus_count_[i];
    }
}

u64 HypGrid::chunk_of_angle(double theta) const {
    const auto c = static_cast<u64>(theta / chunk_width());
    return std::min(c, num_chunks_ - 1);
}

HypGrid::Node HypGrid::descend(u32 a, u64 chunk) const {
    u64 lo     = 0;
    u64 hi     = num_chunks_;
    u64 count  = annulus_count_[a];
    u64 prefix = 0;
    while (hi - lo > 1 && count > 0) {
        const u64 mid  = lo + (hi - lo) / 2;
        const double p = static_cast<double>(mid - lo) / static_cast<double>(hi - lo);
        Rng rng        = Rng::for_ids(seed_, {kTagChunk, a, lo, hi});
        const u64 left = binomial(rng, count, p);
        if (chunk < mid) {
            hi    = mid;
            count = left;
        } else {
            lo = mid;
            prefix += left;
            count -= left;
        }
    }
    return Node{count, prefix};
}

std::vector<HypPoint> HypGrid::chunk_points(u32 a, u64 chunk) const {
    const Node node = descend(a, chunk);
    std::vector<HypPoint> pts;
    pts.reserve(node.count);
    if (node.count == 0) return pts;

    // Power-of-two cells per chunk targeting a constant occupancy (§7.2.1).
    const u64 cells = ceil_pow2(std::max<u64>(node.count / 8, 1));
    // Per-cell counts by equal-probability binary splits.
    std::vector<u64> cell_count(cells, 0);
    struct Range {
        u64 lo, hi, k;
    };
    std::vector<Range> stack{{0, cells, node.count}};
    while (!stack.empty()) {
        const auto [lo, hi, k] = stack.back();
        stack.pop_back();
        if (hi - lo == 1) {
            cell_count[lo] = k;
            continue;
        }
        const u64 mid  = lo + (hi - lo) / 2;
        Rng rng        = Rng::for_ids(seed_, {kTagCell, a, chunk, lo, hi});
        const u64 left = binomial(rng, k, 0.5);
        if (left > 0) stack.push_back({lo, mid, left});
        if (k - left > 0) stack.push_back({mid, hi, k - left});
    }

    const double c_begin = chunk_begin(chunk);
    const double c_width = chunk_width() / static_cast<double>(cells);
    const double r_lo    = annulus_lower(a);
    const double r_hi    = annulus_upper(a);
    u64 next_id = annulus_first_id(a) + node.prefix;
    std::vector<std::pair<double, double>> cell_pts; // (theta, radius)
    for (u64 cell = 0; cell < cells; ++cell) {
        if (cell_count[cell] == 0) continue;
        Rng rng = Rng::for_ids(seed_, {kTagPoint, a, chunk, cell});
        cell_pts.clear();
        for (u64 i = 0; i < cell_count[cell]; ++i) {
            const double theta =
                c_begin + (static_cast<double>(cell) + rng.uniform()) * c_width;
            const double r = space_.inv_radial(r_lo, r_hi, rng.uniform());
            cell_pts.emplace_back(theta, r);
        }
        // Sort inside the cell so ids are angle-monotone within the chunk —
        // the streaming generator's sweep depends on this order.
        std::sort(cell_pts.begin(), cell_pts.end());
        for (const auto& [theta, r] : cell_pts) {
            pts.push_back(space_.make_point(next_id++, r, theta));
        }
    }
    return pts;
}

std::vector<HypPoint> HypGrid::all_points() const {
    std::vector<HypPoint> pts;
    pts.reserve(space_.n());
    for (u32 a = 0; a < num_annuli(); ++a) {
        for (u64 c = 0; c < num_chunks_; ++c) {
            const auto cp = chunk_points(a, c);
            pts.insert(pts.end(), cp.begin(), cp.end());
        }
    }
    return pts;
}

} // namespace kagen::hyp
