/// \file hyperbolic.hpp
/// \brief Hyperbolic-plane substrate shared by the RHG generators (§7).
///
/// Implements the threshold random hyperbolic graph model of Krioukov et
/// al. [9]: n points on a disk of radius R = 2 ln n + C, angle uniform,
/// radius with density  f(r) = α sinh(αr) / (cosh(αR) − 1); two vertices are
/// adjacent iff their hyperbolic distance is below R. The power-law exponent
/// is γ = 1 + 2α; C is derived from the target average degree via Eq. (2).
///
/// `HypGrid` is the deterministic point structure all RHG variants (and the
/// test brute force) share: the disk is cut into O(log n) constant-height
/// annuli, each annulus into P angular chunks, each chunk into power-of-two
/// cells (§7.1/§7.2.1). Counts at every level come from hash-seeded
/// binomial/multinomial variates, so any PE can recompute any chunk —
/// including the vertex *ids* — without communication, and the point set
/// depends only on (params, seed, P), never on which PE asks.
///
/// Per §7.2.1, points carry precomputed coth(r), 1/sinh(r), cos(θ), sin(θ):
/// a distance threshold test then costs five multiplications and two
/// additions (Eq. 9) instead of trigonometric calls.
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "prng/rng.hpp"

namespace kagen::hyp {

struct Params {
    u64 n          = 0;
    double avg_deg = 8.0;  ///< target average degree d̄
    double gamma   = 3.0;  ///< power-law exponent (> 2), α = (γ-1)/2
    u64 seed       = 1;
};

/// A point of the hyperbolic disk with the §7.2.1 precomputations.
struct HypPoint {
    VertexId id       = 0;
    double r          = 0.0;
    double theta      = 0.0;
    double coth_r     = 0.0;
    double inv_sinh_r = 0.0;
    double cos_t      = 0.0;
    double sin_t      = 0.0;
};

/// Model geometry: disk radius, radial distribution, distance predicates.
class Space {
public:
    explicit Space(const Params& params)
        : n_(params.n), alpha_((params.gamma - 1.0) / 2.0) {
        // Eq. (1)/(2): R = 2 ln n + C with C from the target degree.
        const double k = alpha_ / (alpha_ - 0.5);
        const double c = 2.0 * std::log(2.0 * k * k / (params.avg_deg * std::numbers::pi));
        radius_        = 2.0 * std::log(static_cast<double>(std::max<u64>(n_, 2))) + c;
        radius_        = std::max(radius_, 1e-3);
        cosh_r_        = std::cosh(radius_);
    }

    double alpha() const { return alpha_; }
    double radius() const { return radius_; }
    u64 n() const { return n_; }

    /// P(radius <= r), Eq. (A.2).
    double radial_cdf(double r) const {
        return (std::cosh(alpha_ * r) - 1.0) / (std::cosh(alpha_ * radius_) - 1.0);
    }

    /// Inverse radial cdf restricted to [a, b): maps u in [0,1).
    double inv_radial(double a, double b, double u) const {
        const double ca = std::cosh(alpha_ * a);
        const double cb = std::cosh(alpha_ * b);
        return std::acosh(ca + u * (cb - ca)) / alpha_;
    }

    /// Maximum angular deviation of a neighbour at radius `b` from a point
    /// at radius `r` (Eq. A.3); the query overestimate uses the annulus'
    /// lower boundary for `b`.
    double delta_theta(double r, double b) const {
        if (r + b < radius_) return std::numbers::pi;
        const double num = std::cosh(r) * std::cosh(b) - cosh_r_;
        const double den = std::sinh(r) * std::sinh(b);
        if (den <= 0.0) return std::numbers::pi;
        return std::acos(std::clamp(num / den, -1.0, 1.0));
    }

    /// Hyperbolic distance (Eq. 4) — the slow reference form.
    double distance(const HypPoint& p, const HypPoint& q) const {
        const double arg = std::cosh(p.r) * std::cosh(q.r) -
                           std::sinh(p.r) * std::sinh(q.r) * std::cos(p.theta - q.theta);
        return std::acosh(std::max(arg, 1.0));
    }

    /// Threshold adjacency test via the precomputed form (Eq. 9): no
    /// trigonometric evaluations on the hot path.
    bool edge(const HypPoint& p, const HypPoint& q) const {
        if (p.r + q.r < radius_) return true; // triangle inequality shortcut
        if (p.r < kTinyRadius || q.r < kTinyRadius) {
            return distance(p, q) < radius_; // stable fallback near the pole
        }
        const double lhs = p.cos_t * q.cos_t + p.sin_t * q.sin_t; // cos(Δθ)
        const double rhs =
            p.coth_r * q.coth_r - cosh_r_ * p.inv_sinh_r * q.inv_sinh_r;
        return lhs > rhs;
    }

    HypPoint make_point(VertexId id, double r, double theta) const {
        HypPoint p;
        p.id    = id;
        p.r     = r;
        p.theta = theta;
        const double sh = std::sinh(r);
        p.coth_r        = sh > 0.0 ? std::cosh(r) / sh : 0.0;
        p.inv_sinh_r    = sh > 0.0 ? 1.0 / sh : 0.0;
        p.cos_t         = std::cos(theta);
        p.sin_t         = std::sin(theta);
        return p;
    }

private:
    static constexpr double kTinyRadius = 1e-8;

    u64 n_;
    double alpha_;
    double radius_;
    double cosh_r_;
};

/// Deterministic annulus/chunk/cell point structure.
class HypGrid {
public:
    HypGrid(const Params& params, u64 num_chunks);

    const Space& space() const { return space_; }
    u32 num_annuli() const { return static_cast<u32>(annulus_count_.size()); }
    u64 num_chunks() const { return num_chunks_; }

    double annulus_lower(u32 a) const { return bounds_[a]; }
    double annulus_upper(u32 a) const { return bounds_[a + 1]; }
    u64 annulus_count(u32 a) const { return annulus_count_[a]; }
    u64 annulus_first_id(u32 a) const { return annulus_offset_[a]; }

    double chunk_width() const {
        return 2.0 * std::numbers::pi / static_cast<double>(num_chunks_);
    }
    double chunk_begin(u64 chunk) const {
        return chunk_width() * static_cast<double>(chunk);
    }
    u64 chunk_of_angle(double theta) const;

    /// Number of points of annulus `a` inside chunk `chunk` — O(log P).
    u64 chunk_count(u32 a, u64 chunk) const { return descend(a, chunk).count; }

    /// Global id range [lo, hi) of annulus `a`'s points inside `chunk`
    /// (ids are assigned annulus-major, chunk-minor) — O(log P), one
    /// descend. Bit-identical on every PE, like all grid queries.
    std::pair<u64, u64> chunk_id_range(u32 a, u64 chunk) const {
        const Node node = descend(a, chunk);
        const u64 lo    = annulus_first_id(a) + node.prefix;
        return {lo, lo + node.count};
    }

    /// The chunk's points, sorted by angle, with their global ids.
    /// Bit-identical on every PE.
    std::vector<HypPoint> chunk_points(u32 a, u64 chunk) const;

    /// Every point of the disk (test/baseline helper).
    std::vector<HypPoint> all_points() const;

private:
    static constexpr u64 kTagAnnuli = 0xa22u;
    static constexpr u64 kTagChunk  = 0xc1142u;
    static constexpr u64 kTagCell   = 0xce11u;
    static constexpr u64 kTagPoint  = 0x90147u;

    struct Node {
        u64 count;
        u64 prefix;
    };
    Node descend(u32 a, u64 chunk) const;

    Space space_;
    u64 seed_;
    u64 num_chunks_;
    std::vector<double> bounds_;        // k + 1 radial boundaries
    std::vector<u64> annulus_count_;    // points per annulus
    std::vector<u64> annulus_offset_;   // id offset per annulus
};

} // namespace kagen::hyp
