/// \file delaunay.hpp
/// \brief Incremental Bowyer–Watson Delaunay triangulation in 2D and 3D.
///
/// From-scratch replacement for the CGAL backend the paper uses (§8.5).
/// Design notes:
///  * Geometric predicates (orientation / in-circumsphere) are evaluated as
///    cofactor-expanded determinants in `long double` (64-bit mantissa on
///    x86). The library only ever triangulates *random* point sets, whose
///    degeneracies have measure zero; DESIGN.md records this substitution
///    versus CGAL's exact predicates. Tests validate the empty-circumsphere
///    property against an independent circumcenter computation.
///  * A finite super-simplex (scaled ~10x beyond the input bounding box)
///    hosts the construction. Simplices touching a super vertex are reported
///    so callers (the RDG halo loop, §6) can treat them as "insufficient
///    halo" evidence; interior simplices are unaffected by the finite
///    super-simplex because their circumspheres are verified to stay inside
///    generated space.
///  * Point location uses a visibility walk from the most recent simplex
///    with a linear-scan fallback, conflict regions grow by BFS, and the
///    cavity is re-triangulated by fanning the new point to the cavity
///    boundary facets.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"
#include "geometry/vec.hpp"

namespace kagen {

namespace dt_detail {

inline long double det3(const std::array<std::array<long double, 3>, 3>& m) {
    return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
           m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
           m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
}

inline long double det4(const std::array<std::array<long double, 4>, 4>& m) {
    long double det = 0.0L;
    for (int c = 0; c < 4; ++c) {
        std::array<std::array<long double, 3>, 3> minor{};
        for (int r = 1; r < 4; ++r) {
            int cc = 0;
            for (int k = 0; k < 4; ++k) {
                if (k == c) continue;
                minor[r - 1][cc++] = m[r][k];
            }
        }
        const long double term = m[0][c] * det3(minor);
        det += (c % 2 == 0) ? term : -term;
    }
    return det;
}

} // namespace dt_detail

/// Sphere through the vertices of a simplex (used by the RDG halo test and
/// by the test suite's independent Delaunay verification).
template <int D>
struct Circumsphere {
    Vec<D> center;
    double radius2 = 0.0;
};

/// Circumsphere by solving the (well-conditioned for non-degenerate
/// simplices) linear system |c - v_i|^2 = r^2 via Gaussian elimination.
template <int D>
Circumsphere<D> circumsphere(const std::array<Vec<D>, D + 1>& v) {
    // Subtracting v[0] linearizes: 2*(v_i - v_0) . c' = |v_i - v_0|^2.
    std::array<std::array<long double, D + 1>, D> m{}; // rows: D eqns, D+1 cols (aug)
    for (int i = 0; i < D; ++i) {
        long double norm = 0.0L;
        for (int d = 0; d < D; ++d) {
            const long double diff = static_cast<long double>(v[i + 1][d]) - v[0][d];
            m[i][d]                = 2.0L * diff;
            norm += diff * diff;
        }
        m[i][D] = norm;
    }
    // Gaussian elimination with partial pivoting.
    for (int col = 0; col < D; ++col) {
        int pivot = col;
        for (int r = col + 1; r < D; ++r) {
            if (std::fabs(static_cast<double>(m[r][col])) >
                std::fabs(static_cast<double>(m[pivot][col]))) {
                pivot = r;
            }
        }
        std::swap(m[col], m[pivot]);
        for (int r = col + 1; r < D; ++r) {
            const long double f = m[r][col] / m[col][col];
            for (int c = col; c <= D; ++c) m[r][c] -= f * m[col][c];
        }
    }
    std::array<long double, D> cp{};
    for (int r = D - 1; r >= 0; --r) {
        long double s = m[r][D];
        for (int c = r + 1; c < D; ++c) s -= m[r][c] * cp[c];
        cp[r] = s / m[r][r];
    }
    Circumsphere<D> out;
    long double r2 = 0.0L;
    for (int d = 0; d < D; ++d) {
        out.center[d] = static_cast<double>(cp[d] + static_cast<long double>(v[0][d]));
        r2 += cp[d] * cp[d];
    }
    out.radius2 = static_cast<double>(r2);
    return out;
}

template <int D>
class Delaunay {
public:
    static constexpr u32 kNone       = ~u32{0};
    static constexpr int kSimplexVerts = D + 1;

    struct Simplex {
        std::array<u32, D + 1> v;  // vertex indices (points_ indices)
        std::array<u32, D + 1> nb; // nb[i] = simplex opposite v[i], kNone = hull
    };

    /// \param lo,hi bounding box all later insertions must fall into; the
    ///              super-simplex is sized from it.
    Delaunay(const Vec<D>& lo, const Vec<D>& hi) {
        Vec<D> center;
        double span = 1e-9;
        for (int d = 0; d < D; ++d) {
            center[d] = 0.5 * (lo[d] + hi[d]);
            span      = std::max(span, hi[d] - lo[d]);
        }
        make_super_simplex(center, span * 10.0);
    }

    /// Inserts a point; returns its vertex index. Throws std::runtime_error
    /// if the walk/conflict machinery breaks down (degenerate input).
    u32 insert(const Vec<D>& p) {
        const u32 idx = static_cast<u32>(points_.size());
        points_.push_back(p);
        const u32 start = locate(p);

        // Grow the conflict region by BFS over in-circumsphere neighbours.
        // Membership is tracked by epoch stamps so each insertion costs
        // O(|cavity|), not O(#simplices ever created).
        conflict_.clear();
        ++epoch_;
        mark_.resize(simplices_.size(), 0);
        auto in_conflict = [&](u32 t) { return mark_[t] == epoch_; };
        std::vector<u32> stack{start};
        mark_[start] = epoch_;
        while (!stack.empty()) {
            const u32 s = stack.back();
            stack.pop_back();
            conflict_.push_back(s);
            for (int i = 0; i <= D; ++i) {
                const u32 t = simplices_[s].nb[i];
                if (t == kNone || in_conflict(t) || !alive_[t]) continue;
                if (in_sphere(t, p)) {
                    mark_[t] = epoch_;
                    stack.push_back(t);
                }
            }
        }

        // Re-triangulate: fan `idx` to every boundary facet of the cavity.
        // facet_links maps a sorted (D-1)-subset of old facet vertices to a
        // previously created new simplex so internal adjacencies pair up.
        std::map<std::array<u32, D>, std::pair<u32, int>> facet_links;
        std::vector<u32> created;
        for (const u32 s : conflict_) {
            for (int i = 0; i <= D; ++i) {
                const u32 outside = simplices_[s].nb[i];
                if (outside != kNone && in_conflict(outside)) continue;
                // Boundary facet: vertices of s except v[i].
                Simplex ns;
                int k = 0;
                for (int j = 0; j <= D; ++j) {
                    if (j != i) ns.v[k++] = simplices_[s].v[j];
                }
                ns.v[D] = idx;
                ns.nb.fill(kNone);
                orient_positively(ns);
                const u32 ns_id = add_simplex(ns);
                created.push_back(ns_id);

                // Link across the old facet to the surviving outside simplex.
                link(ns_id, facet_opposite(ns_id, idx), outside, s);

                // Link the D facets that contain `idx` against siblings.
                for (int j = 0; j <= D; ++j) {
                    if (simplices_[ns_id].v[j] == idx) continue;
                    std::array<u32, D> key{};
                    int kk = 0;
                    for (int l = 0; l <= D; ++l) {
                        const u32 w = simplices_[ns_id].v[l];
                        if (l != j && w != idx) key[kk++] = w;
                    }
                    key[D - 1] = kNone; // pad (only D-1 old vertices + idx)
                    std::sort(key.begin(), key.end());
                    auto [it, fresh] = facet_links.try_emplace(key, ns_id, j);
                    if (!fresh) {
                        const auto [other, oj]    = it->second;
                        simplices_[ns_id].nb[j]   = other;
                        simplices_[other].nb[oj]  = ns_id;
                    }
                }
            }
        }
        for (const u32 s : conflict_) kill_simplex(s);
        if (!created.empty()) hint_ = created.front();
        return idx;
    }

    u64 num_points() const { return points_.size(); }
    const Vec<D>& point(u32 i) const { return points_[i]; }
    bool is_super(u32 i) const { return i <= D; }

    /// Invokes `fn(const Simplex&)` for every live simplex (including those
    /// touching super vertices; filter with `is_super`).
    template <typename F>
    void for_each_simplex(F&& fn) const {
        for (std::size_t s = 0; s < simplices_.size(); ++s) {
            if (alive_[s]) fn(simplices_[s]);
        }
    }

    u64 num_live_simplices() const {
        u64 c = 0;
        for (const u8 a : alive_) c += a;
        return c;
    }

private:
    void make_super_simplex(const Vec<D>& c, double s) {
        Simplex root;
        root.nb.fill(kNone);
        if constexpr (D == 2) {
            points_.push_back({c[0], c[1] + 4 * s});
            points_.push_back({c[0] - 4 * s, c[1] - 3 * s});
            points_.push_back({c[0] + 4 * s, c[1] - 3 * s});
        } else {
            points_.push_back({c[0] + 4 * s, c[1] + 4 * s, c[2] + 4 * s});
            points_.push_back({c[0] + 4 * s, c[1] - 4 * s, c[2] - 4 * s});
            points_.push_back({c[0] - 4 * s, c[1] + 4 * s, c[2] - 4 * s});
            points_.push_back({c[0] - 4 * s, c[1] - 4 * s, c[2] + 4 * s});
        }
        for (int i = 0; i <= D; ++i) root.v[i] = static_cast<u32>(i);
        orient_positively(root);
        add_simplex(root);
        hint_ = 0;
    }

    u32 add_simplex(const Simplex& s) {
        simplices_.push_back(s);
        alive_.push_back(1);
        return static_cast<u32>(simplices_.size() - 1);
    }

    void kill_simplex(u32 s) { alive_[s] = 0; }

    int facet_opposite(u32 s, u32 vertex) const {
        for (int i = 0; i <= D; ++i) {
            if (simplices_[s].v[i] == vertex) return i;
        }
        assert(false && "vertex not in simplex");
        return -1;
    }

    /// Links new simplex `ns` (facet position `i`) with `outside`, fixing
    /// outside's back pointer that previously pointed at dead simplex `dead`.
    void link(u32 ns, int i, u32 outside, u32 dead) {
        simplices_[ns].nb[i] = outside;
        if (outside == kNone) return;
        for (int j = 0; j <= D; ++j) {
            if (simplices_[outside].nb[j] == dead) {
                simplices_[outside].nb[j] = ns;
                return;
            }
        }
        assert(false && "stale adjacency");
    }

    /// Signed orientation determinant of (D+1) points.
    long double orientation(const std::array<u32, D + 1>& v) const {
        if constexpr (D == 2) {
            std::array<std::array<long double, 3>, 3> m{};
            for (int r = 0; r < 2; ++r) {
                for (int d = 0; d < 2; ++d) {
                    m[r][d] = static_cast<long double>(points_[v[r + 1]][d]) -
                              points_[v[0]][d];
                }
            }
            return m[0][0] * m[1][1] - m[0][1] * m[1][0];
        } else {
            std::array<std::array<long double, 3>, 3> m{};
            for (int r = 0; r < 3; ++r) {
                for (int d = 0; d < 3; ++d) {
                    m[r][d] = static_cast<long double>(points_[v[r + 1]][d]) -
                              points_[v[0]][d];
                }
            }
            return dt_detail::det3(m);
        }
    }

    void orient_positively(Simplex& s) const {
        if (orientation(s.v) < 0.0L) std::swap(s.v[0], s.v[1]);
    }

    /// p strictly inside the circumsphere of (positively oriented) simplex s.
    bool in_sphere(u32 s, const Vec<D>& p) const {
        const auto& v = simplices_[s].v;
        if constexpr (D == 2) {
            std::array<std::array<long double, 3>, 3> m{};
            for (int r = 0; r < 3; ++r) {
                long double norm = 0.0L;
                for (int d = 0; d < 2; ++d) {
                    const long double diff =
                        static_cast<long double>(points_[v[r]][d]) - p[d];
                    m[r][d] = diff;
                    norm += diff * diff;
                }
                m[r][2] = norm;
            }
            // CCW triangle: positive determinant <=> p inside.
            return dt_detail::det3(m) > 0.0L;
        } else {
            std::array<std::array<long double, 4>, 4> m{};
            for (int r = 0; r < 4; ++r) {
                long double norm = 0.0L;
                for (int d = 0; d < 3; ++d) {
                    const long double diff =
                        static_cast<long double>(points_[v[r]][d]) - p[d];
                    m[r][d] = diff;
                    norm += diff * diff;
                }
                m[r][3] = norm;
            }
            // Sign convention fixed by our positive orientation: det < 0
            // <=> inside (validated against `circumsphere` in the tests).
            return dt_detail::det4(m) < 0.0L;
        }
    }

    /// True if p is not on the outer side of any facet of s.
    bool contains(u32 s, const Vec<D>& p, int* reject_facet) const {
        for (int i = 0; i <= D; ++i) {
            // Replace v[i] with a virtual point p: orientation < 0 means p
            // lies on the far side of the facet opposite v[i].
            const long double det = orientation_with(simplices_[s].v, i, p);
            if (det < 0.0L) {
                *reject_facet = i;
                return false;
            }
        }
        return true;
    }

    long double orientation_with(std::array<u32, D + 1> v, int replace,
                                 const Vec<D>& p) const {
        // Same determinant as `orientation` with vertex `replace` = p.
        auto coord = [&](int r, int d) -> long double {
            return r == replace ? static_cast<long double>(p[d])
                                : static_cast<long double>(points_[v[r]][d]);
        };
        if constexpr (D == 2) {
            const long double m00 = coord(1, 0) - coord(0, 0);
            const long double m01 = coord(1, 1) - coord(0, 1);
            const long double m10 = coord(2, 0) - coord(0, 0);
            const long double m11 = coord(2, 1) - coord(0, 1);
            return m00 * m11 - m01 * m10;
        } else {
            std::array<std::array<long double, 3>, 3> m{};
            for (int r = 0; r < 3; ++r) {
                for (int d = 0; d < 3; ++d) {
                    m[r][d] = coord(r + 1, d) - coord(0, d);
                }
            }
            return dt_detail::det3(m);
        }
    }

    /// Visibility walk from the hint; linear-scan fallback caps pathologies.
    u32 locate(const Vec<D>& p) const {
        u32 s           = alive_[hint_] ? hint_ : first_alive();
        const u64 limit = 4 * simplices_.size() + 64;
        for (u64 step = 0; step < limit; ++step) {
            int reject = -1;
            if (contains(s, p, &reject)) return s;
            const u32 next = simplices_[s].nb[reject];
            if (next == kNone || !alive_[next]) break; // fall through to scan
            s = next;
        }
        for (std::size_t i = 0; i < simplices_.size(); ++i) {
            int reject = -1;
            if (alive_[i] && contains(static_cast<u32>(i), p, &reject)) {
                return static_cast<u32>(i);
            }
        }
        throw std::runtime_error("Delaunay::locate failed (degenerate input?)");
    }

    u32 first_alive() const {
        for (std::size_t i = 0; i < simplices_.size(); ++i) {
            if (alive_[i]) return static_cast<u32>(i);
        }
        throw std::runtime_error("Delaunay: no live simplices");
    }

    std::vector<Vec<D>> points_;
    std::vector<Simplex> simplices_;
    std::vector<u8> alive_;
    std::vector<u32> mark_;   // epoch stamps for cavity membership
    u32 epoch_ = 0;
    std::vector<u32> conflict_;
    u32 hint_ = 0;
};

} // namespace kagen
