/// \file rhg.hpp
/// \brief The two random-hyperbolic-graph generators of paper §7.
///
/// Both consume the identical deterministic point structure (`hyp::HypGrid`),
/// so their outputs are comparable edge-for-edge:
///
///  * `generate_inmemory` (§7.1, "RHG") — query-centric: each PE generates
///    its chunk's vertices, then for every vertex performs an annulus-wise
///    neighbourhood query (outward *and* inward), recomputing non-local
///    chunks on demand through a chunk cache. Produces a partitioned output:
///    every edge incident to a local vertex is emitted locally.
///
///  * `generate_streaming` (§7.2, "sRHG") — request-centric: annuli split
///    into lower *global* annuli (requests wider than a chunk; their
///    vertices are recomputed on all PEs and their request executions
///    distributed) and upper *streaming* annuli (requests no wider than a
///    chunk; processed by an angular sweep whose active-request set uses the
///    vectorization-friendly precomputed form, with an endgame over the two
///    adjacent chunks). Emits each edge from its request source, so the
///    union over PEs is the full graph but the output is not partitioned —
///    exactly the paper's stated trade-off.
#pragma once

#include "common/types.hpp"
#include "graph/edge_list.hpp"
#include "hyperbolic/hyperbolic.hpp"
#include "sink/edge_sink.hpp"
#include "sink/ownership.hpp"

namespace kagen::rhg {

/// In-memory query-centric generator (§7.1). The sink overload streams the
/// PE's (locally deduplicated) edges; the EdgeList overload wraps a
/// MemorySink — both orderings and contents are bit-identical.
void generate_inmemory(const hyp::Params& params, u64 rank, u64 size, EdgeSink& sink);
EdgeList generate_inmemory(const hyp::Params& params, u64 rank, u64 size);

/// Streaming request-centric generator (§7.2).
void generate_streaming(const hyp::Params& params, u64 rank, u64 size, EdgeSink& sink);
EdgeList generate_streaming(const hyp::Params& params, u64 rank, u64 size);

/// Theta(n^2) all-pairs reference over the same point set.
EdgeList brute_force(const hyp::Params& params, u64 size);

/// Exact-once ownership for the *in-memory* generator (sink/ownership.hpp):
/// ids are assigned annulus-major, so angular chunk `rank` owns one id
/// interval per annulus — O(log n) intervals, each an O(log P) grid query.
/// The streaming generator needs no filter: its request-execution rules
/// already hand every edge to exactly one PE (its per-PE outputs are
/// globally disjoint), which `tests/test_exact_once.cpp` asserts.
IdIntervals owned_vertex_intervals(const hyp::Params& params, u64 rank, u64 size);

/// First streaming annulus index for `size` PEs (test/bench introspection);
/// annuli below it are "global" (§7.2).
u32 first_streaming_annulus(const hyp::HypGrid& grid);

} // namespace kagen::rhg
