#include "rhg/rhg.hpp"

#include <algorithm>
#include <map>
#include <numbers>

#include "sink/sinks.hpp"

namespace kagen::rhg {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Memoizing accessor for recomputed chunks (the §7.1 "recompute non-local
/// chunks encountered during the search and store them for future
/// searches").
class ChunkCache {
public:
    explicit ChunkCache(const hyp::HypGrid& grid) : grid_(grid) {}

    const std::vector<hyp::HypPoint>& get(u32 annulus, u64 chunk) {
        const auto key = std::make_pair(annulus, chunk);
        auto it        = cache_.find(key);
        if (it == cache_.end()) {
            it = cache_.emplace(key, grid_.chunk_points(annulus, chunk)).first;
        }
        return it->second;
    }

private:
    const hyp::HypGrid& grid_;
    std::map<std::pair<u32, u64>, std::vector<hyp::HypPoint>> cache_;
};

/// Invokes `fn(u)` for every point of annulus `a` whose angle lies within
/// [center - width, center + width] (mod 2π). Exploits the chunk points'
/// angle order via binary search.
template <typename F>
void for_candidates(ChunkCache& cache, const hyp::HypGrid& grid, u32 a, double center,
                    double width, F&& fn) {
    const auto scan = [&](double lo, double hi) { // 0 <= lo <= hi <= 2π
        const u64 c_lo = grid.chunk_of_angle(lo);
        const u64 c_hi = grid.chunk_of_angle(std::nextafter(hi, 0.0));
        for (u64 c = c_lo; c <= c_hi; ++c) {
            const auto& pts = cache.get(a, c);
            auto it = std::lower_bound(pts.begin(), pts.end(), lo,
                                       [](const hyp::HypPoint& p, double v) {
                                           return p.theta < v;
                                       });
            for (; it != pts.end() && it->theta <= hi; ++it) fn(*it);
        }
    };
    if (width >= std::numbers::pi) {
        scan(0.0, kTwoPi);
        return;
    }
    double lo = center - width;
    double hi = center + width;
    if (lo < 0.0) {
        scan(lo + kTwoPi, kTwoPi);
        lo = 0.0;
    }
    if (hi > kTwoPi) {
        scan(0.0, hi - kTwoPi);
        hi = kTwoPi;
    }
    scan(lo, hi);
}

} // namespace

IdIntervals owned_vertex_intervals(const hyp::Params& params, u64 rank, u64 size) {
    const hyp::HypGrid grid(params, size);
    IdIntervals owned;
    owned.reserve(grid.num_annuli());
    for (u32 a = 0; a < grid.num_annuli(); ++a) {
        const auto [lo, hi] = grid.chunk_id_range(a, rank);
        if (lo < hi) owned.push_back({lo, hi});
    }
    // Annulus-major id assignment makes the per-annulus intervals already
    // sorted and disjoint — the owns_vertex contract.
    return owned;
}

u32 first_streaming_annulus(const hyp::HypGrid& grid) {
    const auto& space  = grid.space();
    const double limit = grid.chunk_width() / 2.0; // requests must fit a chunk
    for (u32 a = 0; a < grid.num_annuli(); ++a) {
        if (space.delta_theta(grid.annulus_lower(a), grid.annulus_lower(a)) <= limit) {
            return a;
        }
    }
    return grid.num_annuli(); // everything global
}

void generate_inmemory(const hyp::Params& params, u64 rank, u64 size, EdgeSink& sink) {
    const hyp::HypGrid grid(params, size);
    const auto& space = grid.space();
    ChunkCache cache(grid);

    EdgeList edges;
    for (u32 a = 0; a < grid.num_annuli(); ++a) {
        for (const auto& v : cache.get(a, rank)) {
            // Annulus-wise query, inward and outward (§7.1): the angular
            // window is the Lemma-10 overestimate from the annulus' lower
            // boundary; non-local chunks are recomputed via the cache.
            for (u32 j = 0; j < grid.num_annuli(); ++j) {
                const double width = space.delta_theta(v.r, grid.annulus_lower(j));
                for_candidates(cache, grid, j, v.theta, width,
                               [&](const hyp::HypPoint& u) {
                                   if (u.id != v.id && space.edge(u, v)) {
                                       edges.emplace_back(std::min(u.id, v.id),
                                                          std::max(u.id, v.id));
                                   }
                               });
            }
        }
    }
    // Each local pair was found from both endpoints; dedupe locally before
    // streaming out (the query loop cannot know an edge is new until the
    // whole annulus sweep is over).
    sort_unique(edges);
    for (const auto& [u, v] : edges) sink.emit(u, v);
    sink.flush();
}

EdgeList generate_inmemory(const hyp::Params& params, u64 rank, u64 size) {
    MemorySink sink;
    generate_inmemory(params, rank, size, sink);
    return sink.take();
}

void generate_streaming(const hyp::Params& params, u64 rank, u64 size, EdgeSink& sink) {
    const hyp::HypGrid grid(params, size);
    const auto& space    = grid.space();
    const u32 stream_lo  = first_streaming_annulus(grid);
    const u32 num_annuli = grid.num_annuli();
    EdgeList edges;

    // ---- Global phase (§7.2): vertices of the global annuli are
    // recomputed on every PE; request execution is distributed.
    std::vector<hyp::HypPoint> global_pts;
    for (u32 a = 0; a < stream_lo; ++a) {
        for (u64 c = 0; c < grid.num_chunks(); ++c) {
            const auto pts = grid.chunk_points(a, c);
            global_pts.insert(global_pts.end(), pts.begin(), pts.end());
        }
    }
    // Global-global pairs, each executed by the PE owning the lower-id
    // endpoint's angular position (even distribution, no duplication).
    for (std::size_t i = 0; i < global_pts.size(); ++i) {
        for (std::size_t j = i + 1; j < global_pts.size(); ++j) {
            const auto& u = global_pts[i];
            const auto& v = global_pts[j];
            const auto& low = u.id < v.id ? u : v;
            if (grid.chunk_of_angle(low.theta) != rank) continue;
            if (space.edge(u, v)) {
                edges.emplace_back(std::min(u.id, v.id), std::max(u.id, v.id));
            }
        }
    }

    // The streaming target chunks this PE owns or must replicate for the
    // endgame: its own chunk plus the two adjacent ones (§7.2 final phase).
    std::vector<u64> target_chunks{rank};
    if (size > 1) {
        target_chunks.push_back((rank + 1) % size);
        target_chunks.push_back((rank + size - 1) % size);
        std::sort(target_chunks.begin(), target_chunks.end());
        target_chunks.erase(std::unique(target_chunks.begin(), target_chunks.end()),
                            target_chunks.end());
    }

    // A request: angular interval plus the (precomputed) source point.
    struct Request {
        double begin;
        double end;
        u32 annulus;         // source annulus
        hyp::HypPoint src;
    };

    // Local chunk points per annulus, generated once.
    std::vector<std::vector<hyp::HypPoint>> local_pts(num_annuli);
    for (u32 a = stream_lo; a < num_annuli; ++a) {
        local_pts[a] = grid.chunk_points(a, rank);
    }

    for (u32 j = stream_lo; j < num_annuli; ++j) {
        // Local points of annulus j (sweep targets) plus replicated
        // neighbours; sorted by angle.
        std::vector<hyp::HypPoint> targets;
        for (const u64 c : target_chunks) {
            if (c == rank) {
                targets.insert(targets.end(), local_pts[j].begin(), local_pts[j].end());
            } else {
                const auto pts = grid.chunk_points(j, c);
                targets.insert(targets.end(), pts.begin(), pts.end());
            }
        }
        std::sort(targets.begin(), targets.end(),
                  [](const auto& a, const auto& b) { return a.theta < b.theta; });
        if (targets.empty()) continue;

        // Requests of local sources from annuli stream_lo..j; a request into
        // annulus j has width delta_theta(r_src, lower_j) <= half a chunk.
        std::vector<Request> requests;
        for (u32 i = stream_lo; i <= j; ++i) {
            for (const auto& v : local_pts[i]) {
                const double w = space.delta_theta(v.r, grid.annulus_lower(j));
                requests.push_back({v.theta - w, v.theta + w, i, v});
            }
        }
        // Global requests clipped to this PE: match all global sources
        // against local targets (their executions are distributed by
        // target ownership).
        for (const auto& v : global_pts) {
            const double w = space.delta_theta(v.r, grid.annulus_lower(j));
            for (const auto& u : local_pts[j]) {
                double d = std::fabs(u.theta - v.theta);
                d        = std::min(d, kTwoPi - d);
                if (d <= w && space.edge(u, v)) {
                    edges.emplace_back(std::min(u.id, v.id), std::max(u.id, v.id));
                }
            }
        }

        // Unwrap: duplicate requests crossing 0/2π so every target angle in
        // [0, 2π) is covered by begin <= θ <= end on the real line.
        const std::size_t base = requests.size();
        for (std::size_t q = 0; q < base; ++q) {
            if (requests[q].begin < 0.0) {
                Request r = requests[q];
                r.begin += kTwoPi;
                r.end += kTwoPi;
                requests.push_back(r);
            } else if (requests[q].end > kTwoPi) {
                Request r = requests[q];
                r.begin -= kTwoPi;
                r.end -= kTwoPi;
                requests.push_back(r);
            }
        }
        std::sort(requests.begin(), requests.end(),
                  [](const Request& a, const Request& b) { return a.begin < b.begin; });

        // Angular sweep: advance over targets, activating requests whose
        // begin has passed and evicting (overwriting) expired ones (§7.2.1).
        std::vector<Request> active;
        std::size_t next = 0;
        for (const auto& u : targets) {
            while (next < requests.size() && requests[next].begin <= u.theta) {
                active.push_back(requests[next++]);
            }
            for (std::size_t q = 0; q < active.size();) {
                if (active[q].end < u.theta) {
                    active[q] = active.back();
                    active.pop_back();
                    continue;
                }
                const auto& v = active[q].src;
                // Same-annulus pairs are emitted once, from the lower id.
                const bool ordered = active[q].annulus < j || v.id < u.id;
                if (ordered && v.id != u.id && space.edge(u, v)) {
                    edges.emplace_back(std::min(u.id, v.id), std::max(u.id, v.id));
                }
                ++q;
            }
        }
    }
    sort_unique(edges);
    for (const auto& [u, v] : edges) sink.emit(u, v);
    sink.flush();
}

EdgeList generate_streaming(const hyp::Params& params, u64 rank, u64 size) {
    MemorySink sink;
    generate_streaming(params, rank, size, sink);
    return sink.take();
}

EdgeList brute_force(const hyp::Params& params, u64 size) {
    const hyp::HypGrid grid(params, size);
    const auto& space = grid.space();
    const auto pts    = grid.all_points();
    EdgeList edges;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        for (std::size_t j = i + 1; j < pts.size(); ++j) {
            if (space.edge(pts[i], pts[j])) {
                edges.emplace_back(std::min(pts[i].id, pts[j].id),
                                   std::max(pts[i].id, pts[j].id));
            }
        }
    }
    sort_unique(edges);
    return edges;
}

} // namespace kagen::rhg
