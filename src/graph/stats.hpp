/// \file stats.hpp
/// \brief Structural statistics used to validate generated graphs against
///        their models (degree distribution, clustering, power-law fit, ...).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace kagen {

/// Per-vertex degrees of an undirected edge list over vertices [0, n).
/// Each undirected edge must appear exactly once (canonical form).
std::vector<u64> degrees(const EdgeList& edges, u64 n);

/// Out-degrees of a directed edge list.
std::vector<u64> out_degrees(const EdgeList& edges, u64 n);

double average_degree(const std::vector<u64>& degs);
u64 max_degree(const std::vector<u64>& degs);

/// Maximum-likelihood estimate of the power-law exponent gamma for the tail
/// d >= d_min of the degree distribution (Clauset-Shalizi-Newman discrete
/// approximation: gamma = 1 + k / sum(ln(d_i / (d_min - 0.5)))).
double power_law_exponent_mle(const std::vector<u64>& degs, u64 d_min);

/// Exact global clustering coefficient (3 * triangles / open wedges).
/// O(sum_v deg(v)^2); intended for validation-sized graphs.
double global_clustering_coefficient(const EdgeList& edges, u64 n);

/// Number of connected components (undirected), via union-find.
u64 connected_components(const EdgeList& edges, u64 n);

} // namespace kagen
