#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>

#include "graph/csr.hpp"
#include "graph/union_find.hpp"

namespace kagen {

std::vector<u64> degrees(const EdgeList& edges, u64 n) {
    std::vector<u64> degs(n, 0);
    for (const auto& [u, v] : edges) {
        ++degs[u];
        ++degs[v];
    }
    return degs;
}

std::vector<u64> out_degrees(const EdgeList& edges, u64 n) {
    std::vector<u64> degs(n, 0);
    for (const auto& e : edges) ++degs[e.first];
    return degs;
}

double average_degree(const std::vector<u64>& degs) {
    if (degs.empty()) return 0.0;
    u128 sum = 0;
    for (u64 d : degs) sum += d;
    return static_cast<double>(sum) / static_cast<double>(degs.size());
}

u64 max_degree(const std::vector<u64>& degs) {
    return degs.empty() ? 0 : *std::max_element(degs.begin(), degs.end());
}

double power_law_exponent_mle(const std::vector<u64>& degs, u64 d_min) {
    double log_sum = 0.0;
    u64 count      = 0;
    for (u64 d : degs) {
        if (d >= d_min) {
            log_sum += std::log(static_cast<double>(d) /
                                (static_cast<double>(d_min) - 0.5));
            ++count;
        }
    }
    if (count == 0 || log_sum <= 0.0) return 0.0;
    return 1.0 + static_cast<double>(count) / log_sum;
}

double global_clustering_coefficient(const EdgeList& edges, u64 n) {
    const Csr g = build_csr(edges, n, /*symmetrize=*/true);
    // Sort each adjacency row once so triangle closure is a merge-count.
    std::vector<VertexId> adj = g.targets;
    for (VertexId v = 0; v < n; ++v) {
        std::sort(adj.data() + g.offsets[v], adj.data() + g.offsets[v + 1]);
    }
    u128 triangles_x3 = 0; // counts each triangle once per corner
    u128 wedges       = 0;
    for (VertexId v = 0; v < n; ++v) {
        const u64 d = g.degree(v);
        if (d < 2) continue;
        wedges += static_cast<u128>(d) * (d - 1) / 2;
        const VertexId* vb = adj.data() + g.offsets[v];
        const VertexId* ve = adj.data() + g.offsets[v + 1];
        for (const VertexId* p = vb; p != ve; ++p) {
            for (const VertexId* q = p + 1; q != ve; ++q) {
                // Is {*p, *q} an edge? Binary search in *p's (sorted) row.
                const VertexId* nb = adj.data() + g.offsets[*p];
                const VertexId* ne = adj.data() + g.offsets[*p + 1];
                if (std::binary_search(nb, ne, *q)) ++triangles_x3;
            }
        }
    }
    if (wedges == 0) return 0.0;
    return static_cast<double>(triangles_x3) / static_cast<double>(wedges);
}

u64 connected_components(const EdgeList& edges, u64 n) {
    UnionFind uf(n);
    for (const auto& [u, v] : edges) uf.unite(u, v);
    return uf.components();
}

} // namespace kagen
