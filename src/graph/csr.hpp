/// \file csr.hpp
/// \brief Compressed-sparse-row adjacency plus BFS (used by the Graph500-
///        style example and by clustering/statistics code).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace kagen {

struct Csr {
    std::vector<u64> offsets;       // size n + 1
    std::vector<VertexId> targets;  // size = directed edge count

    u64 num_vertices() const { return offsets.empty() ? 0 : offsets.size() - 1; }
    u64 degree(VertexId v) const { return offsets[v + 1] - offsets[v]; }

    const VertexId* begin(VertexId v) const { return targets.data() + offsets[v]; }
    const VertexId* end(VertexId v) const { return targets.data() + offsets[v + 1]; }
};

/// Builds a CSR over vertices [0, n). If `symmetrize` is set, each input edge
/// (u, v) is inserted in both directions (for undirected edge lists in
/// canonical single-occurrence form).
Csr build_csr(const EdgeList& edges, u64 n, bool symmetrize);

/// BFS from `source`; returns distance per vertex (max u64 = unreached) and
/// the number of reached vertices via `reached`.
std::vector<u64> bfs(const Csr& g, VertexId source, u64* reached = nullptr);

} // namespace kagen
