#include "graph/csr.hpp"

#include <limits>

namespace kagen {

Csr build_csr(const EdgeList& edges, u64 n, bool symmetrize) {
    Csr g;
    g.offsets.assign(n + 1, 0);
    for (const auto& [u, v] : edges) {
        ++g.offsets[u + 1];
        if (symmetrize) ++g.offsets[v + 1];
    }
    for (u64 i = 1; i <= n; ++i) g.offsets[i] += g.offsets[i - 1];
    g.targets.resize(g.offsets[n]);
    std::vector<u64> cursor(g.offsets.begin(), g.offsets.end() - 1);
    for (const auto& [u, v] : edges) {
        g.targets[cursor[u]++] = v;
        if (symmetrize) g.targets[cursor[v]++] = u;
    }
    return g;
}

std::vector<u64> bfs(const Csr& g, VertexId source, u64* reached) {
    constexpr u64 kUnreached = std::numeric_limits<u64>::max();
    std::vector<u64> dist(g.num_vertices(), kUnreached);
    std::vector<VertexId> frontier{source};
    std::vector<VertexId> next;
    dist[source] = 0;
    u64 count    = 1;
    u64 level    = 0;
    while (!frontier.empty()) {
        ++level;
        next.clear();
        for (VertexId v : frontier) {
            for (const VertexId* t = g.begin(v); t != g.end(v); ++t) {
                if (dist[*t] == kUnreached) {
                    dist[*t] = level;
                    next.push_back(*t);
                    ++count;
                }
            }
        }
        frontier.swap(next);
    }
    if (reached != nullptr) *reached = count;
    return dist;
}

} // namespace kagen
