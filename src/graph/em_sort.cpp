#include "graph/em_sort.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/io.hpp"
#include "obs/trace.hpp"
#include "sink/sinks.hpp"
#include "sink/spill.hpp"

namespace kagen::em {
namespace {

constexpr u64 kMergeBatch = 4096; ///< edges per merge read (64 KiB)

/// Phase 1: accumulates the input stream into budget-sized blocks and parks
/// each block as a sorted, deduplicated run in the scratch spill file.
class RunFormationSink final : public EdgeSink {
public:
    RunFormationSink(spill::SpillFile& scratch, u64 run_edges, bool canonicalize)
        : scratch_(scratch), run_edges_(run_edges), canonicalize_(canonicalize) {
        block_.reserve(static_cast<std::size_t>(std::min<u64>(run_edges_, u64{1} << 16)));
    }

    void finish() override {
        flush();
        if (!block_.empty()) park();
    }

    const std::vector<spill::SpillFile::Segment>& runs() const { return runs_; }
    u64 input_edges() const { return input_edges_; }

protected:
    void consume(const Edge* edges, std::size_t count) override {
        input_edges_ += count;
        for (std::size_t i = 0; i < count; ++i) {
            block_.push_back(edges[i]);
            if (block_.size() >= run_edges_) park();
        }
    }

private:
    void park() {
        if (canonicalize_) kagen::canonicalize(block_);
        sort_unique(block_);
        runs_.push_back(scratch_.append(block_.data(), block_.size()));
        block_.clear();
    }

    spill::SpillFile& scratch_;
    const u64 run_edges_;
    const bool canonicalize_;
    EdgeList block_;
    std::vector<spill::SpillFile::Segment> runs_;
    u64 input_edges_ = 0;
};

/// Phase 2 helper: bounded sequential reader over one sorted run.
struct RunCursor {
    RunCursor(const spill::SpillFile& f, spill::SpillFile::Segment s)
        : file(&f), seg(s) {}

    bool next(Edge* e) {
        if (pos == buf.size()) {
            const u64 remaining = seg.count - fetched;
            if (remaining == 0) return false;
            buf.resize(static_cast<std::size_t>(std::min(kMergeBatch, remaining)));
            file->read(seg, fetched, buf.data(), buf.size());
            fetched += buf.size();
            pos = 0;
        }
        *e = buf[pos++];
        return true;
    }

    const spill::SpillFile* file;
    spill::SpillFile::Segment seg;
    std::vector<Edge> buf;
    std::size_t pos = 0;
    u64 fetched     = 0; ///< edges loaded into `buf` so far
};

} // namespace

SortStats sort_dedup_file(const std::string& input_path,
                          const std::string& output_path, u64 max_memory_bytes,
                          bool canonicalize) {
    const obs::Span span(obs::Phase::em_sort, max_memory_bytes);
    spill::SpillFile scratch;
    const u64 run_edges =
        std::max<u64>(u64{1024}, max_memory_bytes / sizeof(Edge));
    RunFormationSink former(scratch, run_edges, canonicalize);
    io::stream_edge_list_binary(input_path, former);
    former.finish();

    SortStats stats;
    stats.input_edges = former.input_edges();
    stats.runs        = former.runs().size();

    std::vector<RunCursor> cursors;
    cursors.reserve(former.runs().size());
    for (const auto& seg : former.runs()) cursors.emplace_back(scratch, seg);

    // Min-heap over (head edge, run); runs are individually sorted and
    // deduplicated, so dropping repeats of the last emitted edge yields the
    // globally sorted unique sequence.
    using HeapItem = std::pair<Edge, std::size_t>;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
        heap;
    for (std::size_t r = 0; r < cursors.size(); ++r) {
        Edge e;
        if (cursors[r].next(&e)) heap.emplace(e, r);
    }

    BinaryFileSink out(output_path);
    Edge last{};
    bool have_last = false;
    while (!heap.empty()) {
        const auto [e, r] = heap.top();
        heap.pop();
        if (!have_last || e != last) {
            out.emit(e);
            last      = e;
            have_last = true;
            ++stats.output_edges;
        }
        Edge next;
        if (cursors[r].next(&next)) heap.emplace(next, r);
    }
    out.finish();
    obs::Registry& reg = obs::Registry::global();
    reg.counter("em.input_edges").add(stats.input_edges);
    reg.counter("em.output_edges").add(stats.output_edges);
    reg.counter("em.runs").add(stats.runs);
    return stats;
}

} // namespace kagen::em
