/// \file edge_list.hpp
/// \brief Edge-list manipulation helpers shared by tests, benches, examples.
#pragma once

#include <algorithm>

#include "common/types.hpp"

namespace kagen {

/// Non-owning view of a contiguous run of edges — the currency of the
/// arena-backed chunk pipeline (pe/arena.hpp): a chunk parked in a slab
/// chain is delivered as one `EdgeSpan` per slab, so no fixed-capacity
/// buffer ever has to be contiguous (and hence never reallocates).
struct EdgeSpan {
    const Edge* data = nullptr;
    u64 count        = 0;

    const Edge* begin() const { return data; }
    const Edge* end() const { return data + count; }
    u64 bytes() const { return count * sizeof(Edge); }
};

/// Appends a span to a materialized edge list.
inline void append(EdgeList& dst, EdgeSpan src) {
    dst.insert(dst.end(), src.begin(), src.end());
}

/// Orders each undirected edge as (min, max).
inline void canonicalize(EdgeList& edges) {
    for (auto& [u, v] : edges) {
        if (u > v) std::swap(u, v);
    }
}

/// Sorts and removes duplicate edges in place.
inline void sort_unique(EdgeList& edges) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

/// Canonical undirected edge set: canonicalized, sorted, deduplicated.
inline EdgeList undirected_set(EdgeList edges) {
    canonicalize(edges);
    sort_unique(edges);
    return edges;
}

/// Appends `src` to `dst`.
inline void append(EdgeList& dst, const EdgeList& src) {
    dst.insert(dst.end(), src.begin(), src.end());
}

/// True if any edge is a self-loop.
inline bool has_self_loop(const EdgeList& edges) {
    return std::any_of(edges.begin(), edges.end(),
                       [](const Edge& e) { return e.first == e.second; });
}

} // namespace kagen
