/// \file union_find.hpp
/// \brief Union-find with path halving and union by size.
#pragma once

#include <numeric>
#include <vector>

#include "common/types.hpp"

namespace kagen {

class UnionFind {
public:
    explicit UnionFind(u64 n) : parent_(n), size_(n, 1), components_(n) {
        std::iota(parent_.begin(), parent_.end(), u64{0});
    }

    u64 find(u64 x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]]; // path halving
            x          = parent_[x];
        }
        return x;
    }

    /// Returns true if the two sets were distinct before the union.
    bool unite(u64 a, u64 b) {
        a = find(a);
        b = find(b);
        if (a == b) return false;
        if (size_[a] < size_[b]) std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
        --components_;
        return true;
    }

    u64 components() const { return components_; }

private:
    std::vector<u64> parent_;
    std::vector<u64> size_;
    u64 components_;
};

} // namespace kagen
