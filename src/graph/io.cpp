#include "graph/io.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "graph/csr.hpp"

namespace kagen::io {
namespace {

struct File {
    explicit File(const std::string& path, const char* mode)
        : handle(std::fopen(path.c_str(), mode)) {
        if (handle == nullptr) {
            throw std::runtime_error("cannot open '" + path + "'");
        }
    }
    ~File() { std::fclose(handle); }
    File(const File&)            = delete;
    File& operator=(const File&) = delete;

    FILE* handle;
};

/// Reads the u64 edge-count header and validates it against the file size
/// (8-byte header + 16 bytes per edge must fit in the file): a corrupt or
/// truncated header (e.g. 0xFFFF...) must fail cleanly here, not drive a
/// multi-exabyte `reserve` or a billion-iteration read loop downstream.
u64 read_validated_edge_count(FILE* f, const std::string& path) {
    u64 count = 0;
    if (std::fread(&count, sizeof(count), 1, f) != 1) {
        throw std::runtime_error("truncated binary edge list: " + path);
    }
    if (std::fseek(f, 0, SEEK_END) != 0) {
        throw std::runtime_error("cannot seek in '" + path + "'");
    }
    // ftello, not ftell: long is 32-bit on some ABIs, and >2 GiB files are
    // exactly the scale this format exists for.
    const off_t end = ftello(f);
    if (end < 0 || std::fseek(f, sizeof(count), SEEK_SET) != 0) {
        throw std::runtime_error("cannot seek in '" + path + "'");
    }
    const u64 payload = static_cast<u64>(end) - sizeof(count);
    if (count > payload / (2 * sizeof(u64))) {
        throw std::runtime_error(
            "corrupt binary edge list header: '" + path + "' claims " +
            std::to_string(count) + " edges but holds only " +
            std::to_string(payload) + " payload bytes");
    }
    return count;
}

} // namespace

void write_edge_list(const std::string& path, const EdgeList& edges,
                     const std::string& comment) {
    File f(path, "w");
    if (!comment.empty()) std::fprintf(f.handle, "%% %s\n", comment.c_str());
    for (const auto& [u, v] : edges) {
        std::fprintf(f.handle, "%llu %llu\n", static_cast<unsigned long long>(u),
                     static_cast<unsigned long long>(v));
    }
}

EdgeList read_edge_list(const std::string& path) {
    File f(path, "r");
    EdgeList edges;
    char line[256];
    while (std::fgets(line, sizeof(line), f.handle) != nullptr) {
        if (line[0] == '%' || line[0] == '\n') continue;
        unsigned long long u = 0, v = 0;
        if (std::sscanf(line, "%llu %llu", &u, &v) == 2) {
            edges.emplace_back(u, v);
        }
    }
    return edges;
}

void write_edge_list_binary(const std::string& path, const EdgeList& edges) {
    File f(path, "wb");
    const u64 count = edges.size();
    // Fail loudly on any short write (e.g. ENOSPC): the header claims all
    // `count` edges, so a silently truncated file would read back as valid.
    if (std::fwrite(&count, sizeof(count), 1, f.handle) != 1) {
        throw std::runtime_error("cannot write header of '" + path + "'");
    }
    for (const auto& [u, v] : edges) {
        const u64 pair[2] = {u, v};
        if (std::fwrite(pair, sizeof(u64), 2, f.handle) != 2) {
            throw std::runtime_error("short write to '" + path + "'");
        }
    }
    // fwrite only queues into the stdio buffer; ENOSPC commonly surfaces at
    // flush time, which the File destructor's fclose would swallow.
    if (std::fflush(f.handle) != 0) {
        throw std::runtime_error("cannot flush '" + path + "'");
    }
}

EdgeList read_edge_list_binary(const std::string& path) {
    File f(path, "rb");
    const u64 count = read_validated_edge_count(f.handle, path);
    EdgeList edges;
    edges.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        u64 pair[2];
        if (std::fread(pair, sizeof(u64), 2, f.handle) != 2) {
            throw std::runtime_error("truncated binary edge list: " + path);
        }
        edges.emplace_back(pair[0], pair[1]);
    }
    return edges;
}

u64 stream_edge_list_binary(const std::string& path, EdgeSink& sink) {
    File f(path, "rb");
    const u64 count = read_validated_edge_count(f.handle, path);
    for (u64 i = 0; i < count; ++i) {
        u64 pair[2];
        if (std::fread(pair, sizeof(u64), 2, f.handle) != 2) {
            throw std::runtime_error("truncated binary edge list: " + path);
        }
        sink.emit(pair[0], pair[1]);
    }
    sink.flush();
    return count;
}

void write_metis(const std::string& path, const EdgeList& edges, u64 n) {
    Csr g = build_csr(edges, n, /*symmetrize=*/true);
    // Deterministic, human-checkable rows regardless of input edge order.
    for (VertexId v = 0; v < n; ++v) {
        std::sort(g.targets.begin() + static_cast<i64>(g.offsets[v]),
                  g.targets.begin() + static_cast<i64>(g.offsets[v + 1]));
    }
    File f(path, "w");
    std::fprintf(f.handle, "%llu %zu\n", static_cast<unsigned long long>(n),
                 edges.size());
    for (VertexId v = 0; v < n; ++v) {
        const VertexId* t   = g.begin(v);
        const VertexId* end = g.end(v);
        for (; t != end; ++t) {
            // METIS vertices are 1-indexed.
            std::fprintf(f.handle, t + 1 == end ? "%llu" : "%llu ",
                         static_cast<unsigned long long>(*t + 1));
        }
        std::fputc('\n', f.handle);
    }
}

} // namespace kagen::io
