/// \file io.hpp
/// \brief Graph output/input formats: plain edge lists (text + binary) and
///        the METIS adjacency format, so generated instances feed directly
///        into partitioners and benchmark harnesses.
#pragma once

#include <string>

#include "common/types.hpp"
#include "sink/edge_sink.hpp"

namespace kagen::io {

/// Writes "u v" per line; optional '%'-prefixed header comment.
void write_edge_list(const std::string& path, const EdgeList& edges,
                     const std::string& comment = {});

/// Reads the text format written by `write_edge_list` ('%' lines skipped).
EdgeList read_edge_list(const std::string& path);

/// Binary format: u64 count, then count pairs of u64 (host endianness).
/// `BinaryFileSink` (sink/sinks.hpp) streams the same format edge by edge
/// without knowing the count up front.
void write_edge_list_binary(const std::string& path, const EdgeList& edges);
EdgeList read_edge_list_binary(const std::string& path);

/// Streams a binary edge-list file into `sink` without materializing it —
/// the read-side counterpart of `BinaryFileSink` (replay a generated file
/// through counting/statistics sinks at O(1) memory). Returns the edge
/// count; flushes but does not finish the sink.
u64 stream_edge_list_binary(const std::string& path, EdgeSink& sink);

/// METIS graph format (1-indexed, undirected, canonical single-occurrence
/// input edges are symmetrized).
void write_metis(const std::string& path, const EdgeList& edges, u64 n);

} // namespace kagen::io
