/// \file em_sort.hpp
/// \brief External-memory sort/dedup over binary edge-list files.
///
/// `union_undirected` (pe/pe.hpp) produces the canonical deduplicated edge
/// set of a run by materializing every per-chunk list — impossible once the
/// graph exceeds RAM. This pass computes the same result from a *file*
/// produced by `BinaryFileSink`/`io::write_edge_list_binary`, with memory
/// bounded by an explicit budget, via the textbook two-phase scheme:
///
/// 1. **Run formation** — stream the input in budget-sized blocks;
///    canonicalize (optional), sort, dedup each block; park it as a sorted
///    run in an anonymous `spill::SpillFile`.
/// 2. **K-way merge** — merge-heap over one bounded read cursor per run,
///    dropping cross-run duplicates, streamed straight into the output
///    `BinaryFileSink`.
///
/// With `canonicalize = true` the output file is bit-identical to
/// `io::write_edge_list_binary(pe::union_undirected(...))` over the same
/// edge stream; with `false` it matches `pe::union_directed` (sort+dedup
/// without endpoint swapping). So `as_generated` chunked file output plus
/// this pass equals the in-memory union pipeline for graphs of any size.
/// DESIGN.md §5 has the argument.
#pragma once

#include <string>

#include "common/types.hpp"

namespace kagen::em {

struct SortStats {
    u64 input_edges  = 0; ///< edges read from the input file
    u64 output_edges = 0; ///< unique edges written to the output file
    u64 runs         = 0; ///< sorted runs formed (1 = fit in budget)
};

/// Sorts and deduplicates the binary edge-list file `input_path` into
/// `output_path` (same format), holding at most ~`max_memory_bytes` of
/// edge data in RAM at once (minimum one merge batch per run).
/// \param canonicalize orient each edge as (min, max) first — undirected
///        set semantics; `false` keeps directed edges as stored.
SortStats sort_dedup_file(const std::string& input_path,
                          const std::string& output_path, u64 max_memory_bytes,
                          bool canonicalize = true);

} // namespace kagen::em
