/// \file protocol.hpp
/// \brief Wire messages of the multi-node TCP backend.
///
/// Every message is one frame (dist/ipc layout over net/socket.hpp) whose
/// payload starts with a u64 message type. The conversation per worker is:
///
///   worker      → coordinator   hello        {protocol version}
///   coordinator → worker        hello        {protocol version}
///   coordinator → worker        job          {JobSpec: canonical Config
///                                             encode + rank/chunk range}
///   worker      → coordinator   report       {dist::RankReport — the same
///                                             serialize_report bytes the
///                                             pipe transport ships}
///   worker      → coordinator   telemetry    {obs::RankTelemetry}
///                                            (only if the job set want_trace)
///   worker      → coordinator   file header  {edges, payload bytes}   (gather)
///                               …raw payload bytes, outside any frame…
///           or                  file info    {path, edges, bytes}   (manifest)
///
/// The two-way hello catches a non-kagen peer (or a version skew) on both
/// ends before any job state exists. Decoders validate the type tag, every
/// enum, and that the payload is consumed exactly — trailing bytes are a
/// protocol error, not padding.
///
/// Version 2 added `JobSpec::want_trace` and the telemetry message; the
/// strict hello means v1/v2 peers refuse each other up front instead of
/// mis-framing mid-run.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "dist/ipc.hpp"
#include "kagen.hpp"
#include "obs/trace.hpp"

namespace kagen::net {

constexpr u64 kProtocolVersion = 2;

enum class Msg : u64 {
    hello     = 1,
    job       = 2,
    report    = 3,
    file      = 4,
    file_info = 5,
    telemetry = 6,
};

/// First u64 of a frame payload; throws on an empty/truncated payload.
Msg peek_type(const std::vector<u8>& payload);

/// Human-readable message-type name for diagnostics.
const char* msg_name(Msg type);

// --- hello -----------------------------------------------------------------

std::vector<u8> encode_hello();

/// Validates type + protocol version; throws a descriptive error otherwise.
void decode_hello(const std::vector<u8>& payload);

// --- job -------------------------------------------------------------------

/// Everything a worker needs to run its share: the full generation Config
/// (canonical encode, kagen.hpp) plus the slice assignment and the output
/// contract.
struct JobSpec {
    Config cfg;
    u64 rank        = 0;
    u64 num_workers = 0; ///< total workers W of the run (diagnostics)
    u64 num_chunks  = 0; ///< canonical chunk count C
    u64 chunk_begin = 0; ///< [chunk_begin, chunk_end) assigned to this rank
    u64 chunk_end   = 0;
    u64 threads     = 1; ///< pool threads inside the worker
    bool want_file  = false; ///< write a rank file at all
    bool send_file  = false; ///< stream it back (gather) vs keep it (manifest)
    bool degree_stats = false; ///< collect + ship the O(n) degree summary
    bool want_trace = false; ///< record + ship trace spans and metrics (v2)
};

std::vector<u8> encode_job(const JobSpec& job);
JobSpec decode_job(const std::vector<u8>& payload);

// --- report ----------------------------------------------------------------

std::vector<u8> encode_report(const dist::RankReport& report);
dist::RankReport decode_report(const std::vector<u8>& payload);

// --- telemetry -------------------------------------------------------------

/// The rank's trace events + metrics delta (obs::serialize_telemetry bytes
/// behind the type tag). Sent right after the report when the job asked for
/// it, before any file transfer.
std::vector<u8> encode_telemetry(const obs::RankTelemetry& telemetry);
obs::RankTelemetry decode_telemetry(const std::vector<u8>& payload);

// --- file transfer ---------------------------------------------------------

/// Announces the raw rank-file payload that follows the frame: exactly
/// `payload_bytes` bytes (16 per edge, header already stripped by the
/// worker) streamed outside any frame.
struct FileHeader {
    u64 edges         = 0;
    u64 payload_bytes = 0;
};

std::vector<u8> encode_file_header(const FileHeader& header);
FileHeader decode_file_header(const std::vector<u8>& payload);

/// Manifest mode: the worker keeps its rank file node-local and reports
/// where it lives instead of streaming it back.
struct FileInfo {
    std::string path; ///< absolute path on the worker's machine
    u64 edges = 0;
    u64 bytes = 0; ///< on-disk size (8-byte header + 16 per edge)
};

std::vector<u8> encode_file_info(const FileInfo& info);
FileInfo decode_file_info(const std::vector<u8>& payload);

} // namespace kagen::net
