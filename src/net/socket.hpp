/// \file socket.hpp
/// \brief TCP plumbing of the multi-node backend: endpoints, a deadline-
///        aware framed socket, a listener with accept timeouts, and a
///        connector with retry-until-deadline.
///
/// The net transport extends the distributed backend's framed stats
/// protocol (dist/ipc.hpp) from anonymous pipes to sockets: frames keep the
/// exact `[magic u64][payload bytes u64][payload]` layout and the
/// little-endian field encoding of common/bytes.hpp, so a report frame is
/// byte-identical whichever transport carries it. What sockets add over
/// pipes is *distrust*: the peer may be on another machine, may never show
/// up, may die mid-frame, or may not be a kagen process at all. Hence
/// everything here is deadline-aware (poll(2) before every read; connect
/// and accept take explicit timeouts) and every failure is a descriptive
/// std::runtime_error — never a hang, never garbage decoded as a frame.
///
/// Blocking discipline: sends are allowed to block indefinitely (the
/// receiver drains in rank order, so a blocked send just means "not my turn
/// yet" — the same back-pressure argument as the pipe protocol's); receives
/// carry the caller's deadline. Bulk payload transfer (rank files) goes
/// through fileio::copy_bytes with SO_RCVTIMEO as the per-read inactivity
/// bound, so a stalled peer surfaces as an error there too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace kagen::net {

/// A "host:port" pair. An empty host means the wildcard address for
/// listeners (bind every interface) and is invalid for connectors.
struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
};

/// Parses "host:port" (host may be empty: ":5555"). Throws
/// std::invalid_argument on a missing colon, an empty/garbage/out-of-range
/// port, or an empty spec.
Endpoint parse_endpoint(const std::string& spec);

/// Move-only RAII wrapper of a connected TCP socket with framed,
/// deadline-aware I/O. A deadline of 0 ms means "no deadline" everywhere.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();

    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&)            = delete;
    Socket& operator=(const Socket&) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    /// Peer address as "ip:port" (for diagnostics and the output manifest);
    /// "?" if the socket is closed or getpeername fails.
    std::string peer() const;

    /// Writes one frame (dist/ipc layout); loops over partial writes and
    /// EINTR, never raises SIGPIPE (MSG_NOSIGNAL). Throws on I/O error.
    void send_frame(const std::vector<u8>& payload);

    /// Reads one frame into `payload` within `deadline_ms`. Returns false
    /// on clean EOF before the first header byte (peer closed between
    /// frames); throws on a torn frame (EOF mid-frame), bad magic, an
    /// implausible length, the deadline expiring, or an I/O error.
    bool recv_frame(std::vector<u8>& payload, int deadline_ms);

    /// Streams exactly `length` bytes from `file_fd`'s current offset into
    /// the socket via fileio::copy_bytes (the worker's side of the
    /// length-prefixed rank-file transfer). Throws on any failure,
    /// including the file ending early.
    void send_payload_from(int file_fd, u64 length);

    /// Streams exactly `length` bytes from the socket into `out_fd` at its
    /// current offset via fileio::copy_bytes. `deadline_ms` bounds each
    /// read's inactivity (SO_RCVTIMEO), so a stalled or dead peer throws
    /// instead of hanging.
    void recv_payload_to(int out_fd, u64 length, int deadline_ms);

private:
    void send_all(const void* data, std::size_t bytes);

    /// Reads exactly `bytes` within the absolute deadline. Returns false on
    /// EOF at offset 0 when `eof_ok`; throws on mid-buffer EOF, timeout, or
    /// I/O error. `deadline_at_ms` is a CLOCK_MONOTONIC ms stamp; < 0 means
    /// unbounded.
    bool recv_exact(void* data, std::size_t bytes, long long deadline_at_ms,
                    bool eof_ok);

    int fd_ = -1;
};

/// Connects to `ep` within `timeout_ms` (0 = no limit). Connection refusals
/// and unreachable-host errors are retried until the deadline — workers and
/// coordinator may start in any order — then throw with the endpoint and
/// the last error in the message.
Socket connect_to(const Endpoint& ep, int timeout_ms);

/// Listening TCP socket (SO_REUSEADDR, O_CLOEXEC). Port 0 binds an
/// ephemeral port; `port()` reports the actual one.
class Listener {
public:
    explicit Listener(const Endpoint& ep);
    ~Listener();

    Listener(const Listener&)            = delete;
    Listener& operator=(const Listener&) = delete;

    std::uint16_t port() const { return port_; }

    /// Accepts one connection within `timeout_ms` (0 = no limit); throws a
    /// descriptive error on timeout.
    Socket accept(int timeout_ms);

private:
    int fd_             = -1;
    std::uint16_t port_ = 0;
};

} // namespace kagen::net
