#include "net/protocol.hpp"

#include <stdexcept>

#include "common/bytes.hpp"

namespace kagen::net {
namespace {

/// Reads and checks the leading type tag.
void expect_type(const u8*& p, const u8* end, Msg want) {
    const u64 got = bytes::get_u64(p, end);
    if (got != static_cast<u64>(want)) {
        throw std::runtime_error(
            "net: expected a " + std::string(msg_name(want)) +
            " message, got type " + std::to_string(got));
    }
}

/// Decoders must consume the payload exactly: leftover bytes mean the two
/// ends disagree about the message layout.
void expect_consumed(const u8* p, const u8* end, Msg type) {
    if (p != end) {
        throw std::runtime_error("net: trailing bytes in " +
                                 std::string(msg_name(type)) + " message");
    }
}

} // namespace

Msg peek_type(const std::vector<u8>& payload) {
    const u8* p   = payload.data();
    const u8* end = p + payload.size();
    return static_cast<Msg>(bytes::get_u64(p, end));
}

const char* msg_name(Msg type) {
    switch (type) {
        case Msg::hello:     return "hello";
        case Msg::job:       return "job";
        case Msg::report:    return "report";
        case Msg::file:      return "file";
        case Msg::file_info: return "file-info";
        case Msg::telemetry: return "telemetry";
    }
    return "unknown";
}

std::vector<u8> encode_hello() {
    std::vector<u8> out;
    bytes::put_u64(out, static_cast<u64>(Msg::hello));
    bytes::put_u64(out, kProtocolVersion);
    return out;
}

void decode_hello(const std::vector<u8>& payload) {
    const u8* p   = payload.data();
    const u8* end = p + payload.size();
    expect_type(p, end, Msg::hello);
    const u64 version = bytes::get_u64(p, end);
    if (version != kProtocolVersion) {
        throw std::runtime_error("net: peer speaks protocol version " +
                                 std::to_string(version) + ", this build wants " +
                                 std::to_string(kProtocolVersion));
    }
    expect_consumed(p, end, Msg::hello);
}

std::vector<u8> encode_job(const JobSpec& job) {
    std::vector<u8> out;
    bytes::put_u64(out, static_cast<u64>(Msg::job));
    bytes::put_u64(out, job.rank);
    bytes::put_u64(out, job.num_workers);
    bytes::put_u64(out, job.num_chunks);
    bytes::put_u64(out, job.chunk_begin);
    bytes::put_u64(out, job.chunk_end);
    bytes::put_u64(out, job.threads);
    bytes::put_u64(out, job.want_file ? 1 : 0);
    bytes::put_u64(out, job.send_file ? 1 : 0);
    bytes::put_u64(out, job.degree_stats ? 1 : 0);
    bytes::put_u64(out, job.want_trace ? 1 : 0);
    encode_config(out, job.cfg);
    return out;
}

JobSpec decode_job(const std::vector<u8>& payload) {
    const u8* p   = payload.data();
    const u8* end = p + payload.size();
    expect_type(p, end, Msg::job);
    JobSpec job;
    job.rank         = bytes::get_u64(p, end);
    job.num_workers  = bytes::get_u64(p, end);
    job.num_chunks   = bytes::get_u64(p, end);
    job.chunk_begin  = bytes::get_u64(p, end);
    job.chunk_end    = bytes::get_u64(p, end);
    job.threads      = bytes::get_u64(p, end);
    job.want_file    = bytes::get_u64(p, end) != 0;
    job.send_file    = bytes::get_u64(p, end) != 0;
    job.degree_stats = bytes::get_u64(p, end) != 0;
    job.want_trace   = bytes::get_u64(p, end) != 0;
    job.cfg          = decode_config(p, end);
    expect_consumed(p, end, Msg::job);
    if (job.chunk_begin > job.chunk_end || job.chunk_end > job.num_chunks) {
        throw std::runtime_error("net: job carries malformed chunk range [" +
                                 std::to_string(job.chunk_begin) + ", " +
                                 std::to_string(job.chunk_end) + ") of " +
                                 std::to_string(job.num_chunks) + " chunks");
    }
    return job;
}

std::vector<u8> encode_report(const dist::RankReport& report) {
    // The report payload is the pipe transport's serialize_report bytes,
    // prefixed with the type tag — one serializer, two transports.
    std::vector<u8> out;
    bytes::put_u64(out, static_cast<u64>(Msg::report));
    const std::vector<u8> body = dist::serialize_report(report);
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

dist::RankReport decode_report(const std::vector<u8>& payload) {
    const u8* p   = payload.data();
    const u8* end = p + payload.size();
    expect_type(p, end, Msg::report);
    // deserialize_report validates full consumption of its slice itself.
    return dist::deserialize_report(std::vector<u8>(p, end));
}

std::vector<u8> encode_telemetry(const obs::RankTelemetry& telemetry) {
    std::vector<u8> out;
    bytes::put_u64(out, static_cast<u64>(Msg::telemetry));
    const std::vector<u8> body = obs::serialize_telemetry(telemetry);
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

obs::RankTelemetry decode_telemetry(const std::vector<u8>& payload) {
    const u8* p   = payload.data();
    const u8* end = p + payload.size();
    expect_type(p, end, Msg::telemetry);
    // deserialize_telemetry bounds-checks counts and rejects trailing bytes.
    return obs::deserialize_telemetry(std::vector<u8>(p, end));
}

std::vector<u8> encode_file_header(const FileHeader& header) {
    std::vector<u8> out;
    bytes::put_u64(out, static_cast<u64>(Msg::file));
    bytes::put_u64(out, header.edges);
    bytes::put_u64(out, header.payload_bytes);
    return out;
}

FileHeader decode_file_header(const std::vector<u8>& payload) {
    const u8* p   = payload.data();
    const u8* end = p + payload.size();
    expect_type(p, end, Msg::file);
    FileHeader header;
    header.edges         = bytes::get_u64(p, end);
    header.payload_bytes = bytes::get_u64(p, end);
    expect_consumed(p, end, Msg::file);
    return header;
}

std::vector<u8> encode_file_info(const FileInfo& info) {
    std::vector<u8> out;
    bytes::put_u64(out, static_cast<u64>(Msg::file_info));
    bytes::put_string(out, info.path);
    bytes::put_u64(out, info.edges);
    bytes::put_u64(out, info.bytes);
    return out;
}

FileInfo decode_file_info(const std::vector<u8>& payload) {
    const u8* p   = payload.data();
    const u8* end = p + payload.size();
    expect_type(p, end, Msg::file_info);
    FileInfo info;
    info.path  = bytes::get_string(p, end);
    info.edges = bytes::get_u64(p, end);
    info.bytes = bytes::get_u64(p, end);
    expect_consumed(p, end, Msg::file_info);
    return info;
}

} // namespace kagen::net
