#include "net/worker.hpp"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fileio.hpp"
#include "dist/ipc.hpp"
#include "kagen.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"

namespace kagen::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error("net worker: " + what + ": " +
                             std::strerror(errno));
}

/// Distinguishes concurrent workers inside one process (tests run several
/// worker threads); the pid alone covers concurrent processes.
std::atomic<u64> g_job_counter{0};

std::string scratch_base(const NetWorkerOptions& opt) {
    if (!opt.scratch_dir.empty()) return opt.scratch_dir;
    const char* tmpdir = std::getenv("TMPDIR");
    return tmpdir && *tmpdir ? tmpdir : "/tmp";
}

/// Opens the rank file, validates its header and size against the report
/// (the same checks the fork coordinator's append_rank_file runs — here
/// they run worker-side, before any byte crosses the wire), and leaves the
/// offset past the 8-byte header. Returns the fd.
int open_validated_rank_file(const std::string& path, u64 expected_edges) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) throw_errno("cannot reopen rank file '" + path + "'");
    try {
        u64 header = 0;
        if (!dist::read_exact(fd, &header, sizeof(header))) {
            throw std::runtime_error("net worker: rank file '" + path +
                                     "' has no header");
        }
        if (header != expected_edges) {
            throw std::runtime_error(
                "net worker: rank file '" + path + "' header claims " +
                std::to_string(header) + " edges, the run produced " +
                std::to_string(expected_edges));
        }
        struct stat st{};
        if (::fstat(fd, &st) != 0) throw_errno("fstat '" + path + "'");
        const u64 expected_bytes = 8 + 16 * expected_edges;
        if (static_cast<u64>(st.st_size) != expected_bytes) {
            throw std::runtime_error(
                "net worker: rank file '" + path + "' is " +
                std::to_string(st.st_size) + " bytes, expected " +
                std::to_string(expected_bytes));
        }
    } catch (...) {
        fileio::close_or_warn(fd, "rank file (validation failed)");
        throw;
    }
    return fd;
}

std::string absolute_path(const std::string& path) {
    char buf[PATH_MAX];
    if (::realpath(path.c_str(), buf) != nullptr) return buf;
    return path; // diagnostics-quality fallback; the file provably exists
}

} // namespace

int run_net_worker(const std::string& endpoint_spec,
                   const NetWorkerOptions& opt) {
    // A coordinator that died mid-conversation must surface as an EPIPE
    // error from send, not kill the worker with SIGPIPE (same policy as the
    // forked workers'). MSG_NOSIGNAL covers frame sends; the rank-file
    // stream goes through plain write(2) in fileio::copy_bytes.
    ::signal(SIGPIPE, SIG_IGN);

    const Endpoint ep = parse_endpoint(endpoint_spec);
    Socket sock;
    if (ep.host.empty()) {
        Listener listener(ep);
        sock = listener.accept(opt.connect_timeout_ms);
    } else {
        sock = connect_to(ep, opt.connect_timeout_ms);
    }

    // Two-way hello before any state exists on either side.
    sock.send_frame(encode_hello());
    std::vector<u8> payload;
    if (!sock.recv_frame(payload, opt.connect_timeout_ms)) {
        throw std::runtime_error(
            "net worker: coordinator closed the connection during handshake");
    }
    decode_hello(payload);

    if (!sock.recv_frame(payload, opt.io_deadline_ms)) {
        throw std::runtime_error(
            "net worker: coordinator closed the connection before sending a job");
    }
    const JobSpec job = decode_job(payload);
    // Clock handshake: this stamp pairs with the coordinator's job-send
    // timestamp to place this rank's timeline on the coordinator clock
    // (offset = t_sent − clock_base; DESIGN.md §13). Taken unconditionally —
    // it is one clock read and keeps the stamp as close to the job frame's
    // arrival as possible.
    const u64 clock_base_ns = obs::monotonic_now();
    obs::Snapshot obs_base;
    if (job.want_trace) obs_base = obs::begin_rank_telemetry();

    std::string rank_path;
    if (job.want_file) {
        rank_path = scratch_base(opt) + "/kagen_net." +
                    std::to_string(::getpid()) + "." +
                    std::to_string(g_job_counter.fetch_add(1)) + ".rank" +
                    std::to_string(job.rank) + ".bin";
    }

    dist::RankReport report;
    report.rank        = job.rank;
    report.chunk_begin = job.chunk_begin;
    report.chunk_end   = job.chunk_end;
    try {
        if (opt.rank_hook) opt.rank_hook(job.rank);
        dist::RankJob rj;
        rj.rank         = job.rank;
        rj.num_chunks   = job.num_chunks;
        rj.chunk_begin  = job.chunk_begin;
        rj.chunk_end    = job.chunk_end;
        rj.threads      = job.threads;
        rj.degree_stats = job.degree_stats;
        rj.rank_path    = rank_path;
        report          = dist::execute_rank_job(job.cfg, rj);
    } catch (const std::exception& e) {
        report.ok    = false;
        report.error = e.what();
    } catch (...) {
        report.ok    = false;
        report.error = "unknown exception";
    }

    // Disarm the recorder before any send can throw: a worker thread shared
    // with a test harness must never leave recording enabled behind.
    obs::RankTelemetry telemetry;
    if (job.want_trace) {
        telemetry               = obs::end_rank_telemetry(job.rank, obs_base);
        telemetry.clock_base_ns = clock_base_ns;
    }

    if (!report.ok) {
        fileio::unlink_or_warn(rank_path.c_str(), "partial rank file");
    }

    sock.send_frame(encode_report(report));
    // Telemetry follows the report even on failure so the byte stream stays
    // aligned with what the coordinator was told to expect.
    if (job.want_trace) sock.send_frame(encode_telemetry(telemetry));
    if (!report.ok) return 1;

    if (job.want_file && job.send_file) {
        // Gather mode: validate, announce, stream the payload (header
        // stripped — the coordinator writes one global header), discard.
        const int fd = open_validated_rank_file(rank_path, report.file_edges);
        try {
            FileHeader header;
            header.edges         = report.file_edges;
            header.payload_bytes = 16 * report.file_edges;
            sock.send_frame(encode_file_header(header));
            sock.send_payload_from(fd, header.payload_bytes);
        } catch (...) {
            fileio::close_or_warn(fd, "rank file (stream failed)");
            fileio::unlink_or_warn(rank_path.c_str(), "rank file");
            throw;
        }
        // Read-only fd over already-durable data: close cannot fail in a
        // way that matters; the unlink reclaims the gathered temp file.
        fileio::close_or_warn(fd, "rank file");
        fileio::unlink_or_warn(rank_path.c_str(), "rank file");
    } else if (job.want_file) {
        // Manifest mode: keep the rank file node-local, report where it is.
        const int fd = open_validated_rank_file(rank_path, report.file_edges);
        fileio::close_or_warn(fd, "rank file"); // open only for the validation
        FileInfo info;
        info.path  = absolute_path(rank_path);
        info.edges = report.file_edges;
        info.bytes = 8 + 16 * report.file_edges;
        sock.send_frame(encode_file_info(info));
    }
    return 0;
}

} // namespace kagen::net
