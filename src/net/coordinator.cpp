#include "net/coordinator.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "common/fileio.hpp"
#include "common/math.hpp"
#include "graph/em_sort.hpp"
#include "kagen.hpp"
#include "net/protocol.hpp"
#include "obs/trace.hpp"

namespace kagen::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error("net coordinator: " + what + ": " +
                             std::strerror(errno));
}

/// Prefix for every per-rank error so failures are attributable at a
/// glance: "rank 2 (10.0.0.7:41210): ...".
std::string rank_tag(u64 rank, const Socket& sock) {
    return "rank " + std::to_string(rank) + " (" + sock.peer() + ")";
}

/// recv_frame wrapper that converts EOF and every transport error into a
/// rank-attributed message.
std::vector<u8> recv_message(Socket& sock, u64 rank, int deadline_ms,
                             const char* waiting_for) {
    std::vector<u8> payload;
    try {
        if (!sock.recv_frame(payload, deadline_ms)) {
            throw std::runtime_error("connection closed before sending its " +
                                     std::string(waiting_for) +
                                     " (worker died?)");
        }
    } catch (const std::exception& e) {
        throw std::runtime_error("net coordinator: " + rank_tag(rank, sock) +
                                 ": " + e.what());
    }
    return payload;
}

void remove_file(const std::string& path) {
    // Cleanup of partial output on an already-failing path: best effort.
    fileio::unlink_or_warn(path.c_str(), "partial output");
}

void validate_options(const NetOptions& opt) {
    const bool listening = !opt.listen.empty() || opt.listener != nullptr;
    if (listening == !opt.connect.empty()) {
        throw std::invalid_argument(
            "net coordinator: exactly one of listen / connect must be set");
    }
    if (listening && opt.expect_workers == 0) {
        throw std::invalid_argument(
            "net coordinator: listen mode requires expect_workers >= 1");
    }
    if (!opt.connect.empty() && opt.expect_workers != 0 &&
        opt.expect_workers != opt.connect.size()) {
        throw std::invalid_argument(
            "net coordinator: expect_workers (" +
            std::to_string(opt.expect_workers) + ") contradicts the " +
            std::to_string(opt.connect.size()) + " connect endpoints");
    }
    if (!opt.output_path.empty() && !opt.manifest_path.empty()) {
        throw std::invalid_argument(
            "net coordinator: output_path (gather) and manifest_path "
            "(partitioned) are mutually exclusive");
    }
    if (!opt.dedup_path.empty() && opt.output_path.empty()) {
        throw std::invalid_argument(
            "net coordinator: dedup_path requires output_path");
    }
}

} // namespace

NetResult run_net_coordinator(const Config& cfg, const NetOptions& opts) {
    NetOptions opt = opts;
    validate_options(opt);
    if (cfg.chunks_per_pe == 0) {
        throw std::invalid_argument(
            "net coordinator: chunks_per_pe must be >= 1");
    }
    const u64 W =
        !opt.connect.empty() ? opt.connect.size() : opt.expect_workers;
    if (opt.num_pes == 0) opt.num_pes = W;
    if (opt.threads_per_worker == 0) opt.threads_per_worker = 1;

    // A worker that died mid-conversation must surface as a send/recv error
    // on its socket, never as SIGPIPE killing the coordinator.
    ::signal(SIGPIPE, SIG_IGN);

    NetResult result;
    result.n = num_vertices(cfg); // validates the config before any I/O
    result.num_chunks =
        cfg.total_chunks != 0 ? cfg.total_chunks : cfg.chunks_per_pe * opt.num_pes;
    result.num_workers = W;

    const bool want_file = !opt.output_path.empty() || !opt.manifest_path.empty();
    const bool gather    = !opt.output_path.empty();
    const bool want_telemetry =
        !cfg.trace_path.empty() || !cfg.metrics_path.empty();

    // --- reach the fleet --------------------------------------------------
    std::vector<Socket> socks(W);
    if (!opt.connect.empty()) {
        for (u64 w = 0; w < W; ++w) {
            const Endpoint ep = parse_endpoint(opt.connect[w]);
            try {
                socks[w] = connect_to(ep, opt.connect_timeout_ms);
            } catch (const std::exception& e) {
                throw std::runtime_error("net coordinator: worker " +
                                         std::to_string(w) + " of " +
                                         std::to_string(W) + ": " + e.what());
            }
        }
    } else {
        std::unique_ptr<Listener> owned;
        Listener* listener = opt.listener;
        if (listener == nullptr) {
            owned    = std::make_unique<Listener>(parse_endpoint(opt.listen));
            listener = owned.get();
        }
        for (u64 w = 0; w < W; ++w) {
            try {
                socks[w] = listener->accept(opt.connect_timeout_ms);
            } catch (const std::exception& e) {
                throw std::runtime_error(
                    "net coordinator: worker " + std::to_string(w) + " of " +
                    std::to_string(W) + " never connected: " + e.what());
            }
        }
    }

    // --- handshake + job fan-out -----------------------------------------
    for (u64 w = 0; w < W; ++w) {
        decode_hello(recv_message(socks[w], w, opt.connect_timeout_ms, "hello"));
        socks[w].send_frame(encode_hello());
    }
    std::vector<u64> t_job_sent(W, 0);
    for (u64 w = 0; w < W; ++w) {
        JobSpec job;
        job.cfg          = cfg;
        job.rank         = w;
        job.num_workers  = W;
        job.num_chunks   = result.num_chunks;
        job.chunk_begin  = block_begin(result.num_chunks, W, w);
        job.chunk_end    = block_begin(result.num_chunks, W, w + 1);
        job.threads      = opt.threads_per_worker;
        job.want_file    = want_file;
        job.send_file    = gather;
        job.degree_stats = opt.degree_stats;
        job.want_trace   = want_telemetry;
        try {
            // The send stamp is the coordinator half of the clock handshake:
            // paired with the worker's receipt stamp it places that rank's
            // timeline on the coordinator clock (network latency shifts the
            // alignment by less than one RTT — fine for a utilization view).
            t_job_sent[w] = obs::monotonic_now();
            socks[w].send_frame(encode_job(job));
        } catch (const std::exception& e) {
            throw std::runtime_error("net coordinator: " + rank_tag(w, socks[w]) +
                                     ": sending job failed: " + e.what());
        }
    }

    obs::Snapshot obs_base;
    struct ObsGuard {
        bool active = false;
        ~ObsGuard() {
            if (active) obs::TraceRecorder::global().enable(false);
        }
    } obs_guard;
    if (want_telemetry) {
        obs_base         = obs::begin_rank_telemetry();
        obs_guard.active = true;
    }
    std::vector<obs::RankTelemetry> telemetry;

    // --- collect reports (and files) in rank order ------------------------
    // Gathered payloads stream behind a placeholder header; the real total
    // is pwritten once every rank arrived. Any failure unlinks the partial
    // file before rethrowing — no partial outputs, ever.
    int out_fd = -1;
    try {
        if (gather) {
            out_fd = ::open(opt.output_path.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
            if (out_fd < 0) {
                throw_errno("cannot open output '" + opt.output_path + "'");
            }
            const u64 placeholder = 0;
            fileio::write_all(out_fd, &placeholder, sizeof(placeholder));
        }

        result.ranks.resize(W);
        for (u64 w = 0; w < W; ++w) {
            Socket& sock = socks[w];
            dist::RankReport report =
                decode_report(recv_message(sock, w, opt.job_deadline_ms, "report"));
            if (!report.ok) {
                throw std::runtime_error("net coordinator: " + rank_tag(w, sock) +
                                         " failed: " + report.error);
            }
            // Validate every field the merge is about to trust.
            if (report.rank != w) {
                throw std::runtime_error(
                    "net coordinator: " + rank_tag(w, sock) +
                    ": report carries wrong rank id " + std::to_string(report.rank));
            }
            const u64 lo = block_begin(result.num_chunks, W, w);
            const u64 hi = block_begin(result.num_chunks, W, w + 1);
            if (report.chunk_begin != lo || report.chunk_end != hi) {
                throw std::runtime_error(
                    "net coordinator: " + rank_tag(w, sock) + ": report covers chunks [" +
                    std::to_string(report.chunk_begin) + ", " +
                    std::to_string(report.chunk_end) + "), assigned [" +
                    std::to_string(lo) + ", " + std::to_string(hi) + ")");
            }
            if (report.count.semantics != cfg.edge_semantics) {
                throw std::runtime_error(
                    "net coordinator: " + rank_tag(w, sock) +
                    ": report semantics '" + semantics_name(report.count.semantics) +
                    "' do not match the run's '" +
                    semantics_name(cfg.edge_semantics) + "'");
            }
            if (opt.degree_stats &&
                (!report.has_degrees ||
                 report.degrees.degrees.size() != result.n)) {
                throw std::runtime_error(
                    "net coordinator: " + rank_tag(w, sock) +
                    ": degree summary missing or sized for the wrong n");
            }
            if (want_file && report.file_edges != report.count.num_edges) {
                throw std::runtime_error(
                    "net coordinator: " + rank_tag(w, sock) + ": rank file has " +
                    std::to_string(report.file_edges) + " edges but the rank counted " +
                    std::to_string(report.count.num_edges));
            }

            if (want_telemetry) {
                obs::RankTelemetry t = decode_telemetry(recv_message(
                    sock, w, opt.connect_timeout_ms, "telemetry"));
                if (t.rank != w) {
                    throw std::runtime_error(
                        "net coordinator: " + rank_tag(w, sock) +
                        ": telemetry carries wrong rank id " +
                        std::to_string(t.rank));
                }
                telemetry.push_back(std::move(t));
            }

            if (gather) {
                const FileHeader header = decode_file_header(recv_message(
                    sock, w, opt.connect_timeout_ms, "file header"));
                if (header.edges != report.file_edges ||
                    header.payload_bytes != 16 * report.file_edges) {
                    throw std::runtime_error(
                        "net coordinator: " + rank_tag(w, sock) +
                        ": file header announces " + std::to_string(header.edges) +
                        " edges / " + std::to_string(header.payload_bytes) +
                        " bytes, report said " + std::to_string(report.file_edges));
                }
                try {
                    const obs::Span span(obs::Phase::merge, w);
                    sock.recv_payload_to(out_fd, header.payload_bytes,
                                         opt.connect_timeout_ms);
                } catch (const std::exception& e) {
                    throw std::runtime_error("net coordinator: " +
                                             rank_tag(w, sock) + ": " + e.what());
                }
                result.merged_bytes += header.payload_bytes;
            } else if (want_file) {
                const FileInfo info = decode_file_info(recv_message(
                    sock, w, opt.connect_timeout_ms, "file info"));
                if (info.edges != report.file_edges ||
                    info.bytes != 8 + 16 * report.file_edges) {
                    throw std::runtime_error(
                        "net coordinator: " + rank_tag(w, sock) +
                        ": file info contradicts the report (" +
                        std::to_string(info.edges) + " vs " +
                        std::to_string(report.file_edges) + " edges)");
                }
                NetManifestEntry entry;
                entry.rank        = w;
                entry.peer        = sock.peer();
                entry.path        = info.path;
                entry.chunk_begin = report.chunk_begin;
                entry.chunk_end   = report.chunk_end;
                entry.edges       = info.edges;
                entry.bytes       = info.bytes;
                result.manifest.push_back(entry);
            }

            result.edges_written += report.file_edges;
            result.seconds = std::max(result.seconds, report.stats.seconds);
            result.peak_buffered_bytes = std::max(
                result.peak_buffered_bytes, report.stats.peak_buffered_bytes);
            result.spilled_chunks += report.stats.spilled_chunks;
            result.spilled_bytes += report.stats.spilled_bytes;
            result.buffers_recycled += report.stats.buffers_recycled;
            result.ranks[w] = std::move(report);
        }

        // --- merge summaries (exactly the fork coordinator's arithmetic) --
        result.count       = result.ranks[0].count;
        result.has_degrees = opt.degree_stats;
        if (opt.degree_stats) result.degrees = std::move(result.ranks[0].degrees);
        for (u64 w = 1; w < W; ++w) {
            result.count.merge(result.ranks[w].count);
            if (opt.degree_stats) result.degrees.merge(result.ranks[w].degrees);
        }
        for (u64 w = 0; w < W; ++w) {
            std::vector<u64>().swap(result.ranks[w].degrees.degrees);
        }

        if (gather) {
            if (::pwrite(out_fd, &result.edges_written,
                         sizeof(result.edges_written), 0) !=
                static_cast<ssize_t>(sizeof(result.edges_written))) {
                throw_errno("cannot finalize output header");
            }
            const int fd = out_fd;
            out_fd       = -1;
            if (::close(fd) != 0) {
                throw_errno("cannot close output '" + opt.output_path + "'");
            }
        }
    } catch (...) {
        fileio::close_or_warn(out_fd, "merged output (error unwind)");
        if (gather) remove_file(opt.output_path);
        throw;
    }
    if (!gather) result.edges_written = 0;

    if (!opt.manifest_path.empty()) {
        std::FILE* mf = std::fopen(opt.manifest_path.c_str(), "w");
        if (mf == nullptr) {
            throw_errno("cannot open manifest '" + opt.manifest_path + "'");
        }
        u64 total_edges = 0;
        for (const auto& e : result.manifest) total_edges += e.edges;
        std::fprintf(mf,
                     "# kagen partitioned output manifest v1\n"
                     "model=%s n=%llu semantics=%s chunks=%llu workers=%llu "
                     "total_edges=%llu\n",
                     model_name(cfg.model),
                     static_cast<unsigned long long>(result.n),
                     semantics_name(cfg.edge_semantics),
                     static_cast<unsigned long long>(result.num_chunks),
                     static_cast<unsigned long long>(W),
                     static_cast<unsigned long long>(total_edges));
        for (const auto& e : result.manifest) {
            std::fprintf(mf,
                         "rank=%llu peer=%s path=%s chunks=[%llu,%llu) "
                         "edges=%llu bytes=%llu\n",
                         static_cast<unsigned long long>(e.rank), e.peer.c_str(),
                         e.path.c_str(),
                         static_cast<unsigned long long>(e.chunk_begin),
                         static_cast<unsigned long long>(e.chunk_end),
                         static_cast<unsigned long long>(e.edges),
                         static_cast<unsigned long long>(e.bytes));
        }
        if (std::fflush(mf) != 0 || std::ferror(mf)) {
            (void)std::fclose(mf); // stream already failed; error in flight
            remove_file(opt.manifest_path);
            throw_errno("writing manifest '" + opt.manifest_path + "' failed");
        }
        // The manifest is the run's deliverable in manifest mode: a close
        // failure after a clean flush (deferred writeback error) must not
        // leave a silently-corrupt file behind.
        if (std::fclose(mf) != 0) {
            remove_file(opt.manifest_path);
            throw_errno("cannot close manifest '" + opt.manifest_path + "'");
        }
    }

    if (!opt.dedup_path.empty()) {
        try {
            const em::SortStats sorted = em::sort_dedup_file(
                opt.output_path, opt.dedup_path, opt.sort_memory);
            result.dedup_edges = sorted.output_edges;
        } catch (...) {
            remove_file(opt.dedup_path);
            throw;
        }
    }

    if (want_telemetry) {
        obs::Registry::global().counter("net.merged_bytes")
            .add(result.merged_bytes);
        obs::RankTelemetry own = obs::end_rank_telemetry(W, obs_base);
        obs_guard.active       = false;
        if (!cfg.trace_path.empty()) {
            std::vector<obs::RankTimeline> timelines;
            timelines.reserve(telemetry.size() + 1);
            for (obs::RankTelemetry& t : telemetry) {
                obs::RankTimeline tl;
                tl.rank = t.rank;
                // Align the worker's monotonic clock to the coordinator's:
                // its clock base was stamped (one network flight after) the
                // job send the coordinator timed.
                tl.offset_ns = static_cast<i64>(t_job_sent[t.rank]) -
                               static_cast<i64>(t.clock_base_ns);
                tl.label  = "rank " + std::to_string(t.rank);
                tl.events = std::move(t.events);
                timelines.push_back(std::move(tl));
            }
            obs::RankTimeline coord;
            coord.rank   = W;
            coord.label  = "coordinator";
            coord.events = std::move(own.events);
            timelines.push_back(std::move(coord));
            obs::write_chrome_trace(cfg.trace_path, timelines);
        }
        if (!cfg.metrics_path.empty()) {
            obs::Snapshot merged = own.metrics;
            for (const obs::RankTelemetry& t : telemetry) {
                merged.merge(t.metrics);
            }
            obs::write_metrics_file(cfg.metrics_path, merged);
        }
    }
    return result;
}

} // namespace kagen::net
