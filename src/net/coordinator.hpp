/// \file coordinator.hpp
/// \brief TCP coordinator of the multi-node backend: same decomposition,
///        same merge, sockets instead of pipes.
///
/// `run_net_coordinator` is the socket twin of `dist::run_distributed`
/// (dist/runner.hpp): it assigns each of W workers the contiguous
/// `block_begin` slice of the canonical C-chunk decomposition, lets every
/// worker generate its share with zero worker↔worker communication, merges
/// the per-rank summaries with exactly the arithmetic the fork coordinator
/// uses, and assembles the output file in canonical rank order — so the
/// merged file is byte-identical to the forked backend and to a
/// single-process `generate_chunked` run for every (workers, P, K) ×
/// semantics combination. The differences are all about distrust of the
/// transport:
///
///  * workers are reached over TCP (accept W dial-ins, or dial W listening
///    workers) with connect/accept timeouts and a two-way hello;
///  * every report is validated: rank id, chunk-range echo against the
///    assignment, semantics/n of the summaries, file edge counts;
///  * per-worker deadlines bound every receive; dead sockets and torn
///    frames surface as errors naming the rank — no hangs, and a failed run
///    leaves no partial output file behind;
///  * output is either *gathered* (rank files streamed back and
///    concatenated, the pipe backend's shape) or left *partitioned*: each
///    worker keeps its node-local rank file and the coordinator writes a
///    manifest naming every piece — the small-cluster deployment shape of
///    Gupta's external-memory distributed generation (PAPERS.md).
///
/// See DESIGN.md §11 for the wire format and failure semantics.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "dist/ipc.hpp"
#include "net/socket.hpp"

namespace kagen {

struct Config; // kagen.hpp (which includes this header after defining it)

namespace net {

struct NetOptions {
    /// Exactly one of `listen` / `connect` selects how workers are reached:
    /// `listen` = "host:port" (":port" = every interface) accepts
    /// `expect_workers` dial-ins; `connect` dials each listed worker
    /// ("host:port" each, workers running `-worker :port`). Ranks are
    /// assigned in accept/connect order.
    std::string listen;
    std::vector<std::string> connect;
    u64 expect_workers = 0; ///< required with `listen`; with `connect` it
                            ///< must match connect.size() (or stay 0)

    u64 num_pes = 0; ///< simulated PEs P of the decomposition (C = K·P
                     ///< unless Config::total_chunks pins it); 0 = worker
                     ///< count. The graph depends only on C.
    u64 threads_per_worker = 1; ///< pool threads inside each worker

    std::string output_path;   ///< gather mode: merged binary edge file
    std::string manifest_path; ///< partitioned mode: workers keep their rank
                               ///< files; this text manifest names them.
                               ///< Mutually exclusive with output_path.
    bool degree_stats = false; ///< also collect + merge per-vertex degrees

    std::string dedup_path; ///< non-empty: em::sort_dedup_file over the
                            ///< gathered output into this file
    u64 sort_memory = u64{64} << 20;

    int connect_timeout_ms = 10000; ///< accept/connect + handshake + the
                                    ///< post-report file transfer deadline
    int job_deadline_ms = 0; ///< per-worker report deadline, covering the
                             ///< generation itself; 0 = wait forever (a
                             ///< *dead* worker still errors immediately via
                             ///< EOF — this bounds a live-but-hung one)

    /// Test hook: accept on this pre-bound listener instead of binding
    /// `listen` (lets tests use an ephemeral port). `expect_workers` still
    /// sizes the run.
    Listener* listener = nullptr;
};

/// One rank file of a partitioned (manifest-mode) run.
struct NetManifestEntry {
    u64 rank = 0;
    std::string peer; ///< worker address as seen by the coordinator
    std::string path; ///< rank-file path on the worker's machine
    u64 chunk_begin = 0;
    u64 chunk_end   = 0;
    u64 edges       = 0;
    u64 bytes       = 0; ///< on-disk size (8-byte header + 16 per edge)
};

/// Coordinator-side view of a finished multi-node run.
struct NetResult {
    u64 n           = 0; ///< global vertex count
    u64 num_chunks  = 0; ///< canonical chunks C of the decomposition
    u64 num_workers = 0;

    double seconds = 0.0; ///< slowest rank's makespan (critical path)

    u64 edges_written = 0; ///< edges in the gathered output file (0 = none)
    u64 merged_bytes  = 0; ///< rank-file payload bytes received and written
    u64 dedup_edges   = 0; ///< unique edges after the optional dedup pass

    // Fleet-wide engine stats folded from the per-rank reports — the same
    // fields dist::DistResult carries, so both backends print one summary.
    u64 peak_buffered_bytes = 0; ///< max over ranks
    u64 spilled_chunks      = 0; ///< summed over ranks
    u64 spilled_bytes       = 0;
    u64 buffers_recycled    = 0;

    CountingSummary count;    ///< merged counting summary (all ranks)
    bool has_degrees = false; ///< degree summary collected and merged
    DegreeStatsSummary degrees;

    std::vector<dist::RankReport> ranks;     ///< per-rank reports, rank order
    std::vector<NetManifestEntry> manifest;  ///< partitioned mode only
};

/// Runs `cfg`'s graph across the workers `opts` describes and merges their
/// outputs; see the file comment. Throws std::invalid_argument on option
/// conflicts and std::runtime_error naming the rank on any worker or
/// transport failure (no hang, no partial output files left behind).
NetResult run_net_coordinator(const Config& cfg, const NetOptions& opts);

} // namespace net
} // namespace kagen
