/// \file worker.hpp
/// \brief TCP worker of the multi-node backend: one connection, one job,
///        one report — then exit.
///
/// `run_net_worker` is everything behind `kagen_tool -worker host:port`: it
/// reaches the coordinator (dialing "host:port", or — with an empty host,
/// ":port" — listening for the coordinator to dial in, the `-connect`
/// counterpart), handshakes, receives one serialized job, runs exactly the
/// rank-execution core the forked backend runs (`dist::execute_rank_job`,
/// which is why the two backends are byte-identical), and streams back the
/// framed RankReport plus — in gather mode — the rank file. A job that
/// throws is reported as a failure frame (ok == false with the message), so
/// the coordinator can name the rank; only then does the worker exit
/// nonzero. Transport failures (coordinator gone, torn frame, deadline)
/// throw out of `run_net_worker` for the caller to print.
#pragma once

#include <functional>
#include <string>

#include "common/types.hpp"

namespace kagen::net {

struct NetWorkerOptions {
    std::string scratch_dir;       ///< rank-file location; empty = $TMPDIR
    int connect_timeout_ms = 10000; ///< connect/accept + handshake deadline
    int io_deadline_ms     = 0;     ///< job-frame receive deadline; 0 = none
                                    ///< (the coordinator sends jobs only
                                    ///< after every worker connected, so
                                    ///< this waits on the slowest peer)

    /// Test instrumentation, mirror of DistOptions::rank_hook: invoked with
    /// the assigned rank after the job decodes, before any generation.
    std::function<void(u64 rank)> rank_hook;
};

/// Runs one worker against `endpoint_spec` ("host:port" to dial the
/// coordinator, ":port" to listen for it). Returns the process exit code
/// (0 = job succeeded, 1 = job failed but was reported); throws
/// std::runtime_error on transport failures.
int run_net_worker(const std::string& endpoint_spec,
                   const NetWorkerOptions& opts = {});

} // namespace kagen::net
