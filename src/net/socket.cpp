#include "net/socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/bytes.hpp"
#include "common/fileio.hpp"
#include "dist/ipc.hpp"
#include "obs/trace.hpp"

namespace kagen::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error("net: " + what + ": " + std::strerror(errno));
}

/// CLOCK_MONOTONIC now, in ms — the clock all deadlines live on
/// (obs::monotonic_now is the codebase's single clock read).
long long now_ms() {
    return static_cast<long long>(obs::monotonic_now() / 1000000u);
}

/// Absolute deadline stamp for a relative timeout; < 0 = unbounded.
long long deadline_at(int timeout_ms) {
    return timeout_ms > 0 ? now_ms() + timeout_ms : -1;
}

/// Waits for `events` on `fd` until the absolute deadline. Returns true
/// when ready, false when the deadline expired; throws on poll failure.
bool poll_until(int fd, short events, long long deadline_at_ms) {
    for (;;) {
        int wait_ms = -1;
        if (deadline_at_ms >= 0) {
            const long long remaining = deadline_at_ms - now_ms();
            if (remaining <= 0) return false;
            wait_ms = static_cast<int>(remaining);
        }
        struct pollfd pfd{fd, events, 0};
        const int rc = ::poll(&pfd, 1, wait_ms);
        if (rc > 0) return true;
        if (rc == 0) return false;
        if (errno != EINTR) throw_errno("poll failed");
    }
}

void set_recv_timeout(int fd, int timeout_ms) {
    struct timeval tv{};
    tv.tv_sec  = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
        throw_errno("setsockopt(SO_RCVTIMEO) failed");
    }
}

struct AddrInfoGuard {
    struct addrinfo* info = nullptr;
    ~AddrInfoGuard() {
        if (info != nullptr) ::freeaddrinfo(info);
    }
};

/// Resolves host:port for connect (host required) or bind (empty host =
/// wildcard). Throws with the spec in the message on failure.
AddrInfoGuard resolve(const Endpoint& ep, bool for_bind) {
    struct addrinfo hints{};
    hints.ai_family   = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags    = AI_NUMERICSERV | (for_bind ? AI_PASSIVE : 0);
    const std::string port = std::to_string(ep.port);
    AddrInfoGuard out;
    const int rc = ::getaddrinfo(ep.host.empty() ? nullptr : ep.host.c_str(),
                                 port.c_str(), &hints, &out.info);
    if (rc != 0) {
        throw std::runtime_error("net: cannot resolve '" + ep.host + ":" + port +
                                 "': " + ::gai_strerror(rc));
    }
    return out;
}

} // namespace

Endpoint parse_endpoint(const std::string& spec) {
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
        throw std::invalid_argument("net: endpoint '" + spec +
                                    "' is not host:port");
    }
    Endpoint ep;
    ep.host                = spec.substr(0, colon);
    const std::string port = spec.substr(colon + 1);
    if (port.empty() || port.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("net: endpoint '" + spec +
                                    "' has a malformed port");
    }
    errno                 = 0;
    const unsigned long v = std::strtoul(port.c_str(), nullptr, 10);
    if (errno != 0 || v > 65535) {
        throw std::invalid_argument("net: endpoint '" + spec +
                                    "' port is out of range");
    }
    ep.port = static_cast<std::uint16_t>(v);
    return ep;
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_       = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void Socket::close() {
    // A TCP close error cannot be retried (the fd is released regardless)
    // and the framing protocol never treats close as a delivery barrier —
    // every payload is acknowledged at the protocol layer — so warn is the
    // complete response. EBADF here would flag a double-close logic bug.
    fileio::close_or_warn(fd_, "socket");
    fd_ = -1;
}

std::string Socket::peer() const {
    if (fd_ < 0) return "?";
    struct sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    char host[NI_MAXHOST], port[NI_MAXSERV];
    if (::getpeername(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0 ||
        ::getnameinfo(reinterpret_cast<struct sockaddr*>(&addr), len, host,
                      sizeof(host), port, sizeof(port),
                      NI_NUMERICHOST | NI_NUMERICSERV) != 0) {
        return "?";
    }
    return std::string(host) + ":" + port;
}

void Socket::send_all(const void* data, std::size_t bytes) {
    const char* p = static_cast<const char*>(data);
    while (bytes > 0) {
        const ssize_t n = ::send(fd_, p, bytes, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("send failed");
        }
        p += n;
        bytes -= static_cast<std::size_t>(n);
    }
}

void Socket::send_frame(const std::vector<u8>& payload) {
    std::vector<u8> header;
    bytes::put_u64(header, dist::kFrameMagic);
    bytes::put_u64(header, payload.size());
    send_all(header.data(), header.size());
    if (!payload.empty()) send_all(payload.data(), payload.size());
}

bool Socket::recv_exact(void* data, std::size_t bytes, long long deadline_at_ms,
                        bool eof_ok) {
    char* p          = static_cast<char*>(data);
    std::size_t done = 0;
    while (done < bytes) {
        if (!poll_until(fd_, POLLIN, deadline_at_ms)) {
            throw std::runtime_error("net: receive timed out (peer " + peer() +
                                     " sent nothing before the deadline)");
        }
        const ssize_t n = ::recv(fd_, p + done, bytes - done, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("recv failed");
        }
        if (n == 0) {
            if (done == 0 && eof_ok) return false;
            // A torn frame must never decode as a short one.
            throw std::runtime_error(
                "net: connection closed mid-frame (torn frame from " + peer() +
                ")");
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

bool Socket::recv_frame(std::vector<u8>& payload, int deadline_ms) {
    const long long deadline = deadline_at(deadline_ms);
    u8 header[16];
    if (!recv_exact(header, sizeof(header), deadline, /*eof_ok=*/true)) {
        return false;
    }
    const u8* p     = header;
    const u8* end   = header + sizeof(header);
    const u64 magic = bytes::get_u64(p, end);
    const u64 size  = bytes::get_u64(p, end);
    if (magic != dist::kFrameMagic) {
        throw std::runtime_error("net: bad frame magic from " + peer() +
                                 " (not a kagen peer?)");
    }
    if (size > dist::kMaxFrameBytes) {
        throw std::runtime_error("net: implausible frame size " +
                                 std::to_string(size) + " from " + peer());
    }
    payload.resize(size);
    if (size > 0) {
        recv_exact(payload.data(), size, deadline, /*eof_ok=*/false);
    }
    return true;
}

void Socket::send_payload_from(int file_fd, u64 length) {
    // Sockets cannot take copy_file_range; go straight to the fallback.
    fileio::copy_bytes(file_fd, fd_, length, /*allow_copy_file_range=*/false);
}

void Socket::recv_payload_to(int out_fd, u64 length, int deadline_ms) {
    if (deadline_ms > 0) set_recv_timeout(fd_, deadline_ms);
    try {
        fileio::copy_bytes(fd_, out_fd, length, /*allow_copy_file_range=*/false);
    } catch (const std::exception& e) {
        if (deadline_ms > 0) set_recv_timeout(fd_, 0);
        // EAGAIN from the SO_RCVTIMEO bound reads as a generic read failure
        // inside copy_bytes; name the actual cause here.
        throw std::runtime_error("net: file transfer from " + peer() +
                                 " failed (stalled or dead peer): " + e.what());
    }
    if (deadline_ms > 0) set_recv_timeout(fd_, 0);
}

Socket connect_to(const Endpoint& ep, int timeout_ms) {
    if (ep.host.empty()) {
        throw std::invalid_argument("net: connect endpoint needs a host");
    }
    const long long deadline = deadline_at(timeout_ms);
    std::string last_error   = "unknown error";
    for (;;) {
        AddrInfoGuard addrs = resolve(ep, /*for_bind=*/false);
        for (struct addrinfo* ai = addrs.info; ai != nullptr; ai = ai->ai_next) {
            const int fd = ::socket(ai->ai_family,
                                    ai->ai_socktype | SOCK_CLOEXEC | SOCK_NONBLOCK,
                                    ai->ai_protocol);
            if (fd < 0) continue;
            Socket sock(fd);
            if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0 ||
                errno == EINPROGRESS) {
                if (poll_until(fd, POLLOUT, deadline)) {
                    int err       = 0;
                    socklen_t len = sizeof(err);
                    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
                        err == 0) {
                        // Connected: back to blocking for the framed I/O.
                        const int flags = ::fcntl(fd, F_GETFL);
                        ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
                        return sock;
                    }
                    last_error = std::strerror(err != 0 ? err : errno);
                } else {
                    last_error = "connect timed out";
                }
            } else {
                last_error = std::strerror(errno);
            }
        }
        // Refusals and timeouts retry until the deadline: the coordinator
        // and its workers may be launched in any order.
        if (deadline >= 0 && now_ms() >= deadline) {
            throw std::runtime_error(
                "net: cannot connect to " + ep.host + ":" +
                std::to_string(ep.port) + " within " + std::to_string(timeout_ms) +
                " ms: " + last_error);
        }
        struct timespec backoff{0, 50 * 1000 * 1000}; // 50 ms between attempts
        ::nanosleep(&backoff, nullptr);
    }
}

Listener::Listener(const Endpoint& ep) {
    AddrInfoGuard addrs    = resolve(ep, /*for_bind=*/true);
    std::string last_error = "no usable address";
    for (struct addrinfo* ai = addrs.info; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                                ai->ai_protocol);
        if (fd < 0) {
            last_error = std::strerror(errno);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
            ::listen(fd, 64) != 0) {
            last_error = std::strerror(errno);
            fileio::close_or_warn(fd, "listener candidate");
            continue;
        }
        struct sockaddr_storage addr{};
        socklen_t len = sizeof(addr);
        if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) ==
            0) {
            if (addr.ss_family == AF_INET) {
                port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
            } else if (addr.ss_family == AF_INET6) {
                port_ =
                    ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
            }
        }
        fd_ = fd;
        return;
    }
    throw std::runtime_error("net: cannot listen on " + ep.host + ":" +
                             std::to_string(ep.port) + ": " + last_error);
}

Listener::~Listener() {
    fileio::close_or_warn(fd_, "listener");
}

Socket Listener::accept(int timeout_ms) {
    const long long deadline = deadline_at(timeout_ms);
    for (;;) {
        if (!poll_until(fd_, POLLIN, deadline)) {
            throw std::runtime_error("net: no connection arrived within " +
                                     std::to_string(timeout_ms) + " ms");
        }
        const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd >= 0) return Socket(fd);
        if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK) {
            continue; // raced a dying connection; keep waiting for a live one
        }
        throw_errno("accept failed");
    }
}

} // namespace kagen::net
