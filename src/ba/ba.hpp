/// \file ba.hpp
/// \brief Communication-free Barabási–Albert preferential attachment
///        (Sanders & Schulz [4], adopted by the paper §3.5.1).
///
/// The sequential Batagelj–Brandes algorithm fills a virtual edge array
/// E[0..2nd): E[2i] = i/d (the source of edge i) and E[2i+1] = E[r] for a
/// uniformly random r < 2i+1 — choosing an endpoint proportionally to its
/// current degree. Sanders–Schulz parallelize it by deriving r from a hash
/// of the *position* 2i+1: any PE can resolve any entry by chasing the
/// pseudorandom dependency chain until it hits an even position (which
/// decodes to a concrete vertex). Expected chain length is O(1) and the
/// maximum is O(log n) w.h.p., so each PE generates the d edges of each of
/// its n/P vertices independently — zero communication, and the output is
/// *identical for every PE count*.
///
/// As in the original model/algorithm, self-loops and parallel edges may
/// occur (they are rare); the graph is returned as directed "new -> old"
/// attachment edges.
#pragma once

#include "common/types.hpp"
#include "graph/edge_list.hpp"
#include "sink/edge_sink.hpp"

namespace kagen::ba {

struct Params {
    u64 n      = 0; ///< number of vertices
    u64 degree = 1; ///< attachment edges per vertex (d)
    u64 seed   = 1;
};

/// Edges (v, target) for all vertices v owned by `rank` (block partition).
/// The sink overload streams each attachment edge as its dependency chain
/// resolves; the EdgeList overload is a MemorySink wrapper.
void generate(const Params& params, u64 rank, u64 size, EdgeSink& sink);
EdgeList generate(const Params& params, u64 rank, u64 size);

/// Resolves the virtual edge-array entry at `position` (test hook).
VertexId resolve(const Params& params, u64 position);

} // namespace kagen::ba
