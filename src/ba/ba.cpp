#include "ba/ba.hpp"

#include <cassert>

#include "common/math.hpp"
#include "prng/spooky.hpp"
#include "sink/sinks.hpp"

namespace kagen::ba {
namespace {

constexpr u64 kTagChase = 0xbabau;

/// Uniform value in [0, bound) derived from the hash of (seed, position).
/// One hash per chain step; rejection keeps it unbiased.
u64 hashed_uniform(u64 seed, u64 position, u64 bound) {
    const u64 threshold = (0 - bound) % bound;
    for (u64 attempt = 0;; ++attempt) {
        const u64 h = spooky::hash_words(seed, {kTagChase, position, attempt});
        if (h >= threshold) return h % bound;
    }
}

} // namespace

VertexId resolve(const Params& params, u64 position) {
    u64 pos = position;
    while (pos % 2 == 1) {
        // E[pos] = E[r] for pseudorandom r < pos: reproduced identically by
        // every PE that chases through this position.
        pos = hashed_uniform(params.seed, pos, pos);
    }
    return (pos / 2) / params.degree;
}

void generate(const Params& params, u64 rank, u64 size, EdgeSink& sink) {
    assert(params.degree >= 1);
    const u64 v_begin = block_begin(params.n, size, rank);
    const u64 v_end   = block_begin(params.n, size, rank + 1);
    for (u64 v = v_begin; v < v_end; ++v) {
        for (u64 i = v * params.degree; i < (v + 1) * params.degree; ++i) {
            sink.emit(v, resolve(params, 2 * i + 1));
        }
    }
    sink.flush();
}

EdgeList generate(const Params& params, u64 rank, u64 size) {
    MemorySink sink;
    generate(params, rank, size, sink);
    return sink.take();
}

} // namespace kagen::ba
