#include "baselines/holtgrewe_rgg.hpp"

#include <algorithm>
#include <cmath>

#include "common/math.hpp"
#include "obs/trace.hpp"
#include "prng/rng.hpp"

namespace kagen::baselines {
namespace {

struct OwnedPoint {
    VertexId id;
    Vec2 pos;
};

} // namespace

double simulated_comm_seconds(u64 messages, u64 bytes) {
    // SuperMUC-era interconnect ballpark: ~2 microseconds latency per
    // message, ~1.5 GB/s effective per-PE bandwidth.
    constexpr double kLatency   = 2e-6;
    constexpr double kBandwidth = 1.5e9;
    return kLatency * static_cast<double>(messages) +
           static_cast<double>(bytes) / kBandwidth;
}

HoltgreweResult holtgrewe_generate(const HoltgreweParams& params, u64 num_pes) {
    const u64 t0 = obs::monotonic_now();
    const u64 P   = std::max<u64>(num_pes, 1);
    HoltgreweResult result;
    result.per_pe.resize(P);

    // Phase 1: every PE samples its n/P points anywhere in the unit square.
    std::vector<std::vector<OwnedPoint>> sampled(P);
    for (u64 pe = 0; pe < P; ++pe) {
        Rng rng      = Rng::for_ids(params.seed, {0x401739eeULL, pe});
        const u64 lo = block_begin(params.n, P, pe);
        const u64 hi = block_begin(params.n, P, pe + 1);
        sampled[pe].reserve(hi - lo);
        for (u64 id = lo; id < hi; ++id) {
            sampled[pe].push_back({id, {rng.uniform(), rng.uniform()}});
        }
    }

    // Phase 2: exchange — points move to the PE owning their vertical strip.
    std::vector<std::vector<OwnedPoint>> owned(P);
    for (u64 pe = 0; pe < P; ++pe) {
        for (const auto& p : sampled[pe]) {
            const u64 target = std::min<u64>(
                static_cast<u64>(p.pos[0] * static_cast<double>(P)), P - 1);
            owned[target].push_back(p);
            if (target != pe) result.bytes += sizeof(OwnedPoint);
        }
        result.messages += P - 1; // all-to-all exchange round
    }

    // Phase 3: border exchange — each strip ships the points within r of its
    // left/right boundary to the neighbouring strips.
    std::vector<std::vector<OwnedPoint>> halo(P);
    const double strip = 1.0 / static_cast<double>(P);
    for (u64 pe = 0; pe < P; ++pe) {
        const double lo = strip * static_cast<double>(pe);
        const double hi = lo + strip;
        for (const auto& p : owned[pe]) {
            if (pe > 0 && p.pos[0] < lo + params.r) {
                halo[pe - 1].push_back(p);
                result.bytes += sizeof(OwnedPoint);
                }
            if (pe + 1 < P && p.pos[0] > hi - params.r) {
                halo[pe + 1].push_back(p);
                result.bytes += sizeof(OwnedPoint);
            }
        }
        result.messages += (pe > 0 ? 1 : 0) + (pe + 1 < P ? 1 : 0);
    }

    // Phase 4: local edge generation over a per-strip cell grid. Edges with
    // both endpoints local are emitted once; strip-crossing edges are
    // emitted by both involved PEs (like the original, which keeps ghost
    // vertices).
    const double r_sq = params.r * params.r;
    for (u64 pe = 0; pe < P; ++pe) {
        auto& edges = result.per_pe[pe];
        std::vector<OwnedPoint> all = owned[pe];
        const u64 local_count       = all.size();
        all.insert(all.end(), halo[pe].begin(), halo[pe].end());
        if (all.empty()) continue;

        // Cell grid over the strip plus halo margin.
        const double x0    = strip * static_cast<double>(pe) - params.r;
        const double x1    = strip * static_cast<double>(pe + 1) + params.r;
        const double side  = std::max(params.r, 1e-6);
        const u64 cols     = std::max<u64>(1, static_cast<u64>((x1 - x0) / side) + 1);
        const u64 rows     = std::max<u64>(1, static_cast<u64>(1.0 / side) + 1);
        auto cell_of       = [&](const Vec2& p) {
            const u64 cx = std::min<u64>(
                static_cast<u64>(std::max(0.0, (p[0] - x0) / side)), cols - 1);
            const u64 cy =
                std::min<u64>(static_cast<u64>(p[1] / side), rows - 1);
            return cy * cols + cx;
        };
        std::vector<std::vector<u32>> cells(cols * rows);
        for (u32 i = 0; i < all.size(); ++i) cells[cell_of(all[i].pos)].push_back(i);

        auto try_pair = [&](u32 i, u32 j) {
            if (i >= local_count && j >= local_count) return; // halo-halo
            if (distance_sq(all[i].pos, all[j].pos) <= r_sq) {
                const VertexId a = all[i].id;
                const VertexId b = all[j].id;
                if (a != b) edges.emplace_back(std::min(a, b), std::max(a, b));
            }
        };
        for (u64 cy = 0; cy < rows; ++cy) {
            for (u64 cx = 0; cx < cols; ++cx) {
                const auto& home = cells[cy * cols + cx];
                if (home.empty()) continue;
                for (std::size_t a = 0; a < home.size(); ++a) {
                    for (std::size_t b = a + 1; b < home.size(); ++b) {
                        try_pair(home[a], home[b]);
                    }
                }
                // Forward neighbour cells only (each unordered cell pair once).
                static constexpr int kDx[] = {1, -1, 0, 1};
                static constexpr int kDy[] = {0, 1, 1, 1};
                for (int k = 0; k < 4; ++k) {
                    const i64 nx = static_cast<i64>(cx) + kDx[k];
                    const i64 ny = static_cast<i64>(cy) + kDy[k];
                    if (nx < 0 || ny < 0 || nx >= static_cast<i64>(cols) ||
                        ny >= static_cast<i64>(rows)) {
                        continue;
                    }
                    for (const u32 a : home) {
                        for (const u32 b : cells[ny * cols + nx]) try_pair(a, b);
                    }
                }
            }
        }
        sort_unique(edges);
    }
    result.compute_seconds =
        static_cast<double>(obs::monotonic_now() - t0) * 1e-9;
    return result;
}

} // namespace kagen::baselines
