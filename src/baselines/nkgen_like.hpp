/// \file nkgen_like.hpp
/// \brief Query-centric RHG baseline without the §7.2.1 optimizations —
///        stand-in for NkGen (von Looz et al. [31]) in the Fig. 14
///        comparison.
///
/// Identical annuli-based candidate search as the in-memory RHG generator,
/// but every distance test evaluates the raw hyperbolic metric (Eq. 4:
/// cosh/sinh/cos/acosh per comparison) and candidate ranges are scanned
/// without the angle-sorted binary search. This preserves precisely the
/// algorithmic reasons the paper gives for NkGen's higher runtime per edge
/// ("only partial pre-computation ... unstructured accesses").
#pragma once

#include "common/types.hpp"
#include "graph/edge_list.hpp"
#include "hyperbolic/hyperbolic.hpp"

namespace kagen::baselines {

/// Same partitioned semantics as rhg::generate_inmemory, same point set.
EdgeList nkgen_like_generate(const hyp::Params& params, u64 rank, u64 size);

} // namespace kagen::baselines
