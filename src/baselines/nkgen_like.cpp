#include "baselines/nkgen_like.hpp"

#include <map>
#include <numbers>

namespace kagen::baselines {

EdgeList nkgen_like_generate(const hyp::Params& params, u64 rank, u64 size) {
    const hyp::HypGrid grid(params, size);
    const auto& space = grid.space();

    std::map<std::pair<u32, u64>, std::vector<hyp::HypPoint>> cache;
    auto points_of = [&](u32 a, u64 c) -> const std::vector<hyp::HypPoint>& {
        auto it = cache.find({a, c});
        if (it == cache.end()) {
            it = cache.emplace(std::make_pair(a, c), grid.chunk_points(a, c)).first;
        }
        return it->second;
    };

    constexpr double kTwoPi = 2.0 * std::numbers::pi;
    EdgeList edges;
    for (u32 a = 0; a < grid.num_annuli(); ++a) {
        for (const auto& v : points_of(a, rank)) {
            for (u32 j = 0; j < grid.num_annuli(); ++j) {
                const double width = space.delta_theta(v.r, grid.annulus_lower(j));
                const u64 c_lo =
                    width >= std::numbers::pi
                        ? 0
                        : grid.chunk_of_angle(std::fmod(v.theta - width + kTwoPi, kTwoPi));
                const u64 c_hi =
                    width >= std::numbers::pi
                        ? grid.num_chunks() - 1
                        : grid.chunk_of_angle(std::fmod(v.theta + width, kTwoPi));
                // Walk chunks c_lo..c_hi circularly; scan every point (no
                // binary search) and test with the raw metric.
                u64 c = c_lo;
                for (;;) {
                    for (const auto& u : points_of(j, c)) {
                        double d = std::fabs(u.theta - v.theta);
                        d        = std::min(d, kTwoPi - d);
                        if (d <= width && u.id != v.id &&
                            space.distance(u, v) < space.radius()) {
                            edges.emplace_back(std::min(u.id, v.id),
                                               std::max(u.id, v.id));
                        }
                    }
                    if (c == c_hi) break;
                    c = (c + 1) % grid.num_chunks();
                }
            }
        }
    }
    sort_unique(edges);
    return edges;
}

} // namespace kagen::baselines
