#include "baselines/sequential_er.hpp"

#include <cmath>
#include <unordered_map>

#include "common/math.hpp"

namespace kagen::baselines {
namespace {

/// Emits m distinct uniformly random indices of [0, universe) by a virtual
/// Fisher–Yates shuffle: only displaced slots are materialized in a hash
/// map, so memory is O(m) regardless of the universe size.
template <typename Emit>
void virtual_fisher_yates(Rng& rng, u64 universe, u64 m, Emit&& emit) {
    std::unordered_map<u64, u64> displaced;
    displaced.reserve(m * 2);
    for (u64 i = 0; i < m; ++i) {
        const u64 j  = i + rng.range(universe - i);
        const auto it = displaced.find(j);
        u64 value;
        if (it == displaced.end()) {
            value = j;
        } else {
            value = it->second;
        }
        const auto self = displaced.find(i);
        displaced[j]    = (self == displaced.end()) ? i : self->second;
        emit(value);
    }
}

/// Skip-distance (geometric) scan over a linear universe: visits exactly
/// the sampled slots, O(1 + p*universe) expected.
template <typename Emit>
void skip_scan(Rng& rng, u64 universe, double p, Emit&& emit) {
    if (p <= 0.0) return;
    const double log_q = std::log1p(-p);
    double pos         = -1.0;
    for (;;) {
        pos += 1.0 + std::floor(std::log(rng.uniform_pos()) / log_q);
        if (pos >= static_cast<double>(universe)) return;
        emit(static_cast<u64>(pos));
    }
}

Edge directed_edge(u64 n, u64 index) {
    const u64 row = index / (n - 1);
    u64 col       = index % (n - 1);
    if (col >= row) ++col;
    return {row, col};
}

Edge undirected_edge(u128 index) {
    const u64 row = triangle_row(index);
    const u64 col = static_cast<u64>(index - triangle(row));
    return {row, col};
}

} // namespace

EdgeList bb_gnp_directed(u64 n, double p, u64 seed) {
    Rng rng(seed);
    EdgeList edges;
    skip_scan(rng, n * (n - 1), p, [&](u64 i) { edges.push_back(directed_edge(n, i)); });
    return edges;
}

EdgeList bb_gnp_undirected(u64 n, double p, u64 seed) {
    Rng rng(seed);
    EdgeList edges;
    skip_scan(rng, static_cast<u64>(triangle(n)), p,
              [&](u64 i) { edges.push_back(undirected_edge(i)); });
    return edges;
}

EdgeList bb_gnm_directed(u64 n, u64 m, u64 seed) {
    Rng rng(seed);
    EdgeList edges;
    edges.reserve(m);
    virtual_fisher_yates(rng, n * (n - 1), m,
                         [&](u64 i) { edges.push_back(directed_edge(n, i)); });
    return edges;
}

EdgeList bb_gnm_undirected(u64 n, u64 m, u64 seed) {
    Rng rng(seed);
    EdgeList edges;
    edges.reserve(m);
    virtual_fisher_yates(rng, static_cast<u64>(triangle(n)), m,
                         [&](u64 i) { edges.push_back(undirected_edge(i)); });
    return edges;
}

} // namespace kagen::baselines
