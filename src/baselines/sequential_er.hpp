/// \file sequential_er.hpp
/// \brief Sequential Erdős–Rényi baselines in the style of Batagelj &
///        Brandes [25] — the algorithmic family behind the Boost generator
///        the paper compares against in Fig. 6.
///
/// * G(n,p): skip-distance sampling (geometric jumps over the linearized
///   adjacency matrix), O(n + m) expected.
/// * G(n,m): virtual Fisher–Yates shuffle over the pair universe with a
///   sparse displacement map, O(n + m) expected.
///
/// Unlike the distributed generators these walk a vertex-indexed structure,
/// which is exactly why their time per edge grows with n (the effect Fig. 6
/// shows); our benchmark reproduces that contrast.
#pragma once

#include "common/types.hpp"
#include "graph/edge_list.hpp"
#include "prng/rng.hpp"

namespace kagen::baselines {

/// Directed G(n,p) via Batagelj–Brandes skip sampling.
EdgeList bb_gnp_directed(u64 n, double p, u64 seed);

/// Undirected G(n,p) (lower-triangle skip sampling), edges as (u > v).
EdgeList bb_gnp_undirected(u64 n, double p, u64 seed);

/// Directed G(n,m) via a virtual Fisher–Yates shuffle.
EdgeList bb_gnm_directed(u64 n, u64 m, u64 seed);

/// Undirected G(n,m) via a virtual Fisher–Yates shuffle over the triangle.
EdgeList bb_gnm_undirected(u64 n, u64 m, u64 seed);

} // namespace kagen::baselines
