#include "sampling/sampling.hpp"

#include "common/math.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace kagen {

std::vector<u64> floyd_sample(Rng& rng, u64 universe, u64 k) {
    assert(k <= universe);
    std::unordered_set<u64> chosen;
    chosen.reserve(static_cast<std::size_t>(k) * 2);
    std::vector<u64> out;
    out.reserve(k);
    for (u64 j = universe - k; j < universe; ++j) {
        const u64 t = rng.range(j + 1);
        if (chosen.insert(t).second) {
            out.push_back(t);
        } else {
            chosen.insert(j);
            out.push_back(j);
        }
    }
    return out;
}

ChunkUniverse make_row_universe(u64 n, u64 num_chunks, u128 row_width) {
    ChunkUniverse uni;
    uni.num_chunks = num_chunks;
    uni.chunk_size = [n, num_chunks, row_width](u64 chunk) -> u128 {
        return static_cast<u128>(block_size(n, num_chunks, chunk)) * row_width;
    };
    uni.range_size = [n, num_chunks, row_width](u64 lo, u64 hi) -> u128 {
        const u64 rows = block_begin(n, num_chunks, hi) - block_begin(n, num_chunks, lo);
        return static_cast<u128>(rows) * row_width;
    };
    return uni;
}

ChunkedSampler::ChunkedSampler(u64 seed, ChunkUniverse universe, u64 samples)
    : seed_(seed), universe_(std::move(universe)), samples_(samples) {
    assert(universe_.num_chunks >= 1);
    assert(static_cast<u128>(samples_) <= universe_.range_size(0, universe_.num_chunks));
}

u64 ChunkedSampler::descend(u64 chunk) const {
    u64 lo = 0;
    u64 hi = universe_.num_chunks;
    u64 k  = samples_;
    while (hi - lo > 1 && k > 0) {
        const u64 mid         = lo + (hi - lo) / 2;
        const u128 total      = universe_.range_size(lo, hi);
        const u128 left_size  = universe_.range_size(lo, mid);
        // Per-subtree seed: PEs descending through the same (lo, hi) node
        // draw the identical variate regardless of which child they follow.
        Rng rng     = Rng::for_ids(seed_, {0x5eedc0deULL, lo, hi});
        const u64 h = hypergeometric(rng, total, left_size, k);
        if (chunk < mid) {
            hi = mid;
            k  = h;
        } else {
            lo = mid;
            k -= h;
        }
    }
    return k;
}

u64 ChunkedSampler::samples_in_chunk(u64 chunk) const {
    assert(chunk < universe_.num_chunks);
    return descend(chunk);
}

} // namespace kagen
