#include "sampling/sampling.hpp"

#include "common/math.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace kagen {
namespace {

/// Vitter's Method A: sequential scan with direct skip search. O(universe)
/// but with tiny constants; used when the sampling fraction is high.
void method_a(Rng& rng, u64 universe, u64 k, u64 offset, const std::function<void(u64)>& emit) {
    u64 cur      = 0;
    double nreal = static_cast<double>(universe);
    while (k >= 2) {
        const double v = rng.uniform_pos();
        u64 skip       = 0;
        double top     = nreal - static_cast<double>(k);
        double quot    = top / nreal;
        while (quot > v) {
            ++skip;
            top -= 1.0;
            nreal -= 1.0;
            quot *= top / nreal;
        }
        emit(offset + cur + skip);
        cur += skip + 1;
        nreal -= 1.0;
        --k;
    }
    if (k == 1) {
        const u64 skip = std::min<u64>(static_cast<u64>(nreal * rng.uniform()),
                                       static_cast<u64>(nreal) - 1);
        emit(offset + cur + skip);
    }
}

} // namespace

std::vector<u64> floyd_sample(Rng& rng, u64 universe, u64 k) {
    assert(k <= universe);
    std::unordered_set<u64> chosen;
    chosen.reserve(static_cast<std::size_t>(k) * 2);
    std::vector<u64> out;
    out.reserve(k);
    for (u64 j = universe - k; j < universe; ++j) {
        const u64 t = rng.range(j + 1);
        if (chosen.insert(t).second) {
            out.push_back(t);
        } else {
            chosen.insert(j);
            out.push_back(j);
        }
    }
    return out;
}

void sorted_sample(Rng& rng, u64 universe, u64 k, const std::function<void(u64)>& emit) {
    assert(k <= universe);
    if (k == 0) return;
    if (k == universe) {
        for (u64 i = 0; i < universe; ++i) emit(i);
        return;
    }

    // Vitter's Method D with fallback to Method A for dense draws.
    constexpr double kAlphaInv = 13.0; // Vitter's recommended switch point
    u64 offset       = 0;              // universe positions already consumed
    u64 cur          = 0;
    u64 remaining_n  = universe;
    u64 remaining_k  = k;
    double nreal     = static_cast<double>(remaining_n);
    double kreal     = static_cast<double>(remaining_k);
    double kinv      = 1.0 / kreal;
    double vprime    = std::exp(std::log(rng.uniform_pos()) * kinv);
    double threshold = kAlphaInv * kreal;

    while (remaining_k > 1 && threshold < nreal) {
        const double kmin1inv = 1.0 / (kreal - 1.0);
        const double qu1real  = nreal - kreal + 1.0;
        const u64 qu1         = remaining_n - remaining_k + 1;
        u64 skip;
        double x, negSreal;
        for (;;) {
            // Step D2: propose a skip from the continuous approximation.
            for (;;) {
                x    = nreal * (1.0 - vprime);
                skip = static_cast<u64>(x);
                if (skip < qu1) break;
                vprime = std::exp(std::log(rng.uniform_pos()) * kinv);
            }
            const double u = rng.uniform_pos();
            negSreal       = -static_cast<double>(skip);
            // Step D3: quick acceptance.
            const double y1 = std::exp(std::log(u * nreal / qu1real) * kmin1inv);
            vprime          = y1 * (-x / nreal + 1.0) * (qu1real / (negSreal + qu1real));
            if (vprime <= 1.0) break;
            // Step D4: slow acceptance via the exact ratio.
            double y2  = 1.0;
            double top = nreal - 1.0;
            double bottom;
            double limit;
            if (kreal - 1.0 > -negSreal) {
                bottom = nreal - kreal;
                limit  = nreal - static_cast<double>(skip);
            } else {
                bottom = nreal + negSreal - 1.0;
                limit  = qu1real;
            }
            for (double t = nreal - 1.0; t >= limit; t -= 1.0) {
                y2 = y2 * top / bottom;
                top -= 1.0;
                bottom -= 1.0;
            }
            if (nreal / (nreal - x) >= y1 * std::exp(std::log(y2) * kmin1inv)) {
                vprime = std::exp(std::log(rng.uniform_pos()) * kmin1inv);
                break;
            }
            vprime = std::exp(std::log(rng.uniform_pos()) * kinv);
        }
        emit(offset + cur + skip);
        cur += skip + 1;
        remaining_n -= skip + 1;
        nreal = negSreal + (nreal - 1.0);
        --remaining_k;
        kreal -= 1.0;
        kinv = kmin1inv;
        threshold -= kAlphaInv;
    }

    if (remaining_k > 1) {
        method_a(rng, remaining_n, remaining_k, offset + cur, emit);
    } else {
        const u64 skip = std::min<u64>(static_cast<u64>(nreal * vprime), remaining_n - 1);
        emit(offset + cur + skip);
    }
}

ChunkUniverse make_row_universe(u64 n, u64 num_chunks, u128 row_width) {
    ChunkUniverse uni;
    uni.num_chunks = num_chunks;
    uni.chunk_size = [n, num_chunks, row_width](u64 chunk) -> u128 {
        return static_cast<u128>(block_size(n, num_chunks, chunk)) * row_width;
    };
    uni.range_size = [n, num_chunks, row_width](u64 lo, u64 hi) -> u128 {
        const u64 rows = block_begin(n, num_chunks, hi) - block_begin(n, num_chunks, lo);
        return static_cast<u128>(rows) * row_width;
    };
    return uni;
}

ChunkedSampler::ChunkedSampler(u64 seed, ChunkUniverse universe, u64 samples)
    : seed_(seed), universe_(std::move(universe)), samples_(samples) {
    assert(universe_.num_chunks >= 1);
    assert(static_cast<u128>(samples_) <= universe_.range_size(0, universe_.num_chunks));
}

u64 ChunkedSampler::descend(u64 chunk) const {
    u64 lo = 0;
    u64 hi = universe_.num_chunks;
    u64 k  = samples_;
    while (hi - lo > 1 && k > 0) {
        const u64 mid         = lo + (hi - lo) / 2;
        const u128 total      = universe_.range_size(lo, hi);
        const u128 left_size  = universe_.range_size(lo, mid);
        // Per-subtree seed: PEs descending through the same (lo, hi) node
        // draw the identical variate regardless of which child they follow.
        Rng rng     = Rng::for_ids(seed_, {0x5eedc0deULL, lo, hi});
        const u64 h = hypergeometric(rng, total, left_size, k);
        if (chunk < mid) {
            hi = mid;
            k  = h;
        } else {
            lo = mid;
            k -= h;
        }
    }
    return k;
}

u64 ChunkedSampler::samples_in_chunk(u64 chunk) const {
    assert(chunk < universe_.num_chunks);
    return descend(chunk);
}

void ChunkedSampler::sample_chunk(u64 chunk, const std::function<void(u64)>& emit) const {
    const u64 k = descend(chunk);
    if (k == 0) return;
    const u128 size = universe_.chunk_size(chunk);
    assert(size <= static_cast<u128>(~u64{0}) && "per-chunk universe must fit 64 bits");
    Rng rng = Rng::for_ids(seed_, {0x1eafULL, chunk});
    sorted_sample(rng, static_cast<u64>(size), k, emit);
}

} // namespace kagen
