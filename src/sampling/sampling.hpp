/// \file sampling.hpp
/// \brief Sampling without replacement: sequential and distributed (§2.2).
///
/// Three layers:
///  1. `floyd_sample`      — Floyd's O(k) expected set sampling (unsorted).
///  2. `sorted_sample`     — Vitter's sequential sampling (Method A for dense
///                           draws, skip-based Method D otherwise); emits the
///                           sample in increasing order with O(k) work.
///  3. `ChunkedSampler`    — the divide-and-conquer distributed sampler of
///                           Sanders et al. [18]: the universe is split into
///                           consecutive chunks, the number of samples per
///                           chunk subtree follows a hypergeometric
///                           distribution, and per-subtree hash seeds make
///                           every PE that walks the same subtree draw the
///                           same variates — no communication required.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "prng/rng.hpp"
#include "variates/variates.hpp"

namespace kagen {

/// Floyd's algorithm: k distinct integers from [0, universe), unsorted.
std::vector<u64> floyd_sample(Rng& rng, u64 universe, u64 k);

/// Sequential sampling of `k` distinct integers from [0, universe), emitted
/// in increasing order through `emit`. Uses Vitter's Method D (skip
/// distances via acceptance-rejection) and falls back to Method A when the
/// sampling fraction is high. Expected time O(k) regardless of universe.
void sorted_sample(Rng& rng, u64 universe, u64 k, const std::function<void(u64)>& emit);

/// Describes a universe partitioned into `num_chunks` consecutive chunks.
/// `chunk_size(i)` must be O(1); prefix sizes are derived by the sampler's
/// recursion, never by scanning.
struct ChunkUniverse {
    u64 num_chunks = 0;
    std::function<u128(u64)> chunk_size;              // size of chunk i
    std::function<u128(u64, u64)> range_size;         // total size of chunks [lo, hi)
};

/// Convenience constructor for a universe of `n` rows split into nearly
/// equal consecutive blocks of rows, each row having `row_width` slots.
ChunkUniverse make_row_universe(u64 n, u64 num_chunks, u128 row_width);

/// Divide-and-conquer distributed sampler.
class ChunkedSampler {
public:
    /// \param seed     base seed; all subtree seeds derive from it.
    /// \param universe chunk layout (sizes must be stable).
    /// \param samples  total number of samples over the whole universe.
    ChunkedSampler(u64 seed, ChunkUniverse universe, u64 samples);

    /// Number of samples that land in chunk `chunk` (deterministic in
    /// `seed`; identical on every PE). O(log num_chunks) variates.
    u64 samples_in_chunk(u64 chunk) const;

    /// Emits the samples of chunk `chunk` as offsets *within* the chunk,
    /// in increasing order. Deterministic in `seed`.
    void sample_chunk(u64 chunk, const std::function<void(u64)>& emit) const;

private:
    /// Recursion over chunk index ranges; returns the sample count of the
    /// subtree containing `chunk` at its leaf.
    u64 descend(u64 chunk) const;

    u64 seed_;
    ChunkUniverse universe_;
    u64 samples_;
};

} // namespace kagen
