/// \file sampling.hpp
/// \brief Sampling without replacement: sequential and distributed (§2.2).
///
/// Three layers:
///  1. `floyd_sample`      — Floyd's O(k) expected set sampling (unsorted).
///  2. `sorted_sample`     — Vitter's sequential sampling (Method A for dense
///                           draws, skip-based Method D otherwise); emits the
///                           sample in increasing order with O(k) work.
///  3. `ChunkedSampler`    — the divide-and-conquer distributed sampler of
///                           Sanders et al. [18]: the universe is split into
///                           consecutive chunks, the number of samples per
///                           chunk subtree follows a hypergeometric
///                           distribution, and per-subtree hash seeds make
///                           every PE that walks the same subtree draw the
///                           same variates — no communication required.
///
/// The per-sample callbacks are template parameters, not std::function:
/// every sample of every generator funnels through `emit`, and a type-erased
/// indirect call per edge is exactly the kind of per-edge overhead the
/// hot-path work (DESIGN.md §9) eliminates. With a template parameter the
/// decode-and-emit lambdas of the callers inline into the skip loop. The
/// variate sequence is untouched — outputs are bit-identical.
#pragma once

#include <cassert>
#include <cmath>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "prng/rng.hpp"
#include "variates/variates.hpp"

namespace kagen {

/// Floyd's algorithm: k distinct integers from [0, universe), unsorted.
std::vector<u64> floyd_sample(Rng& rng, u64 universe, u64 k);

namespace detail {

/// Vitter's Method A: sequential scan with direct skip search. O(universe)
/// but with tiny constants; used when the sampling fraction is high.
template <typename Emit>
void method_a(Rng& rng, u64 universe, u64 k, u64 offset, Emit&& emit) {
    u64 cur      = 0;
    double nreal = static_cast<double>(universe);
    while (k >= 2) {
        const double v = rng.uniform_pos();
        u64 skip       = 0;
        double top     = nreal - static_cast<double>(k);
        double quot    = top / nreal;
        while (quot > v) {
            ++skip;
            top -= 1.0;
            nreal -= 1.0;
            quot *= top / nreal;
        }
        emit(offset + cur + skip);
        cur += skip + 1;
        nreal -= 1.0;
        --k;
    }
    if (k == 1) {
        const u64 skip = std::min<u64>(static_cast<u64>(nreal * rng.uniform()),
                                       static_cast<u64>(nreal) - 1);
        emit(offset + cur + skip);
    }
}

} // namespace detail

/// Sequential sampling of `k` distinct integers from [0, universe), emitted
/// in increasing order through `emit`. Uses Vitter's Method D (skip
/// distances via acceptance-rejection) and falls back to Method A when the
/// sampling fraction is high. Expected time O(k) regardless of universe.
template <typename Emit>
void sorted_sample(Rng& rng, u64 universe, u64 k, Emit&& emit) {
    assert(k <= universe);
    if (k == 0) return;
    if (k == universe) {
        for (u64 i = 0; i < universe; ++i) emit(i);
        return;
    }

    // Vitter's Method D with fallback to Method A for dense draws.
    constexpr double kAlphaInv = 13.0; // Vitter's recommended switch point
    u64 offset       = 0;              // universe positions already consumed
    u64 cur          = 0;
    u64 remaining_n  = universe;
    u64 remaining_k  = k;
    double nreal     = static_cast<double>(remaining_n);
    double kreal     = static_cast<double>(remaining_k);
    double kinv      = 1.0 / kreal;
    double vprime    = std::exp(std::log(rng.uniform_pos()) * kinv);
    double threshold = kAlphaInv * kreal;

    while (remaining_k > 1 && threshold < nreal) {
        const double kmin1inv = 1.0 / (kreal - 1.0);
        const double qu1real  = nreal - kreal + 1.0;
        const u64 qu1         = remaining_n - remaining_k + 1;
        u64 skip;
        double x, negSreal;
        for (;;) {
            // Step D2: propose a skip from the continuous approximation.
            for (;;) {
                x    = nreal * (1.0 - vprime);
                skip = static_cast<u64>(x);
                if (skip < qu1) break;
                vprime = std::exp(std::log(rng.uniform_pos()) * kinv);
            }
            const double u = rng.uniform_pos();
            negSreal       = -static_cast<double>(skip);
            // Step D3: quick acceptance.
            const double y1 = std::exp(std::log(u * nreal / qu1real) * kmin1inv);
            vprime          = y1 * (-x / nreal + 1.0) * (qu1real / (negSreal + qu1real));
            if (vprime <= 1.0) break;
            // Step D4: slow acceptance via the exact ratio.
            double y2  = 1.0;
            double top = nreal - 1.0;
            double bottom;
            double limit;
            if (kreal - 1.0 > -negSreal) {
                bottom = nreal - kreal;
                limit  = nreal - static_cast<double>(skip);
            } else {
                bottom = nreal + negSreal - 1.0;
                limit  = qu1real;
            }
            for (double t = nreal - 1.0; t >= limit; t -= 1.0) {
                y2 = y2 * top / bottom;
                top -= 1.0;
                bottom -= 1.0;
            }
            if (nreal / (nreal - x) >= y1 * std::exp(std::log(y2) * kmin1inv)) {
                vprime = std::exp(std::log(rng.uniform_pos()) * kmin1inv);
                break;
            }
            vprime = std::exp(std::log(rng.uniform_pos()) * kinv);
        }
        emit(offset + cur + skip);
        cur += skip + 1;
        remaining_n -= skip + 1;
        nreal = negSreal + (nreal - 1.0);
        --remaining_k;
        kreal -= 1.0;
        kinv = kmin1inv;
        threshold -= kAlphaInv;
    }

    if (remaining_k > 1) {
        detail::method_a(rng, remaining_n, remaining_k, offset + cur, emit);
    } else {
        const u64 skip = std::min<u64>(static_cast<u64>(nreal * vprime), remaining_n - 1);
        emit(offset + cur + skip);
    }
}

/// Describes a universe partitioned into `num_chunks` consecutive chunks.
/// `chunk_size(i)` must be O(1); prefix sizes are derived by the sampler's
/// recursion, never by scanning. (These run once per chunk, not per sample,
/// so type erasure is harmless here.)
struct ChunkUniverse {
    u64 num_chunks = 0;
    std::function<u128(u64)> chunk_size;              // size of chunk i
    std::function<u128(u64, u64)> range_size;         // total size of chunks [lo, hi)
};

/// Convenience constructor for a universe of `n` rows split into nearly
/// equal consecutive blocks of rows, each row having `row_width` slots.
ChunkUniverse make_row_universe(u64 n, u64 num_chunks, u128 row_width);

/// Divide-and-conquer distributed sampler.
class ChunkedSampler {
public:
    /// \param seed     base seed; all subtree seeds derive from it.
    /// \param universe chunk layout (sizes must be stable).
    /// \param samples  total number of samples over the whole universe.
    ChunkedSampler(u64 seed, ChunkUniverse universe, u64 samples);

    /// Number of samples that land in chunk `chunk` (deterministic in
    /// `seed`; identical on every PE). O(log num_chunks) variates.
    u64 samples_in_chunk(u64 chunk) const;

    /// Emits the samples of chunk `chunk` as offsets *within* the chunk,
    /// in increasing order. Deterministic in `seed`.
    template <typename Emit>
    void sample_chunk(u64 chunk, Emit&& emit) const {
        const u64 k = descend(chunk);
        if (k == 0) return;
        const u128 size = universe_.chunk_size(chunk);
        assert(size <= static_cast<u128>(~u64{0}) && "per-chunk universe must fit 64 bits");
        Rng rng = Rng::for_ids(seed_, {0x1eafULL, chunk});
        sorted_sample(rng, static_cast<u64>(size), k, emit);
    }

private:
    /// Recursion over chunk index ranges; returns the sample count of the
    /// subtree containing `chunk` at its leaf.
    u64 descend(u64 chunk) const;

    u64 seed_;
    ChunkUniverse universe_;
    u64 samples_;
};

} // namespace kagen
