/// \file sampling.hpp
/// \brief Sampling without replacement: sequential and distributed (§2.2).
///
/// Three layers:
///  1. `floyd_sample`      — Floyd's O(k) expected set sampling (unsorted).
///  2. `sorted_sample`     — Vitter's sequential sampling (Method A for dense
///                           draws, skip-based Method D otherwise); emits the
///                           sample in increasing order with O(k) work.
///  3. `ChunkedSampler`    — the divide-and-conquer distributed sampler of
///                           Sanders et al. [18]: the universe is split into
///                           consecutive chunks, the number of samples per
///                           chunk subtree follows a hypergeometric
///                           distribution, and per-subtree hash seeds make
///                           every PE that walks the same subtree draw the
///                           same variates — no communication required.
///
/// The per-sample callbacks are template parameters, not std::function:
/// every sample of every generator funnels through `emit`, and a type-erased
/// indirect call per edge is exactly the kind of per-edge overhead the
/// hot-path work (DESIGN.md §9) eliminates. With a template parameter the
/// decode-and-emit lambdas of the callers inline into the skip loop. The
/// variate sequence is untouched — outputs are bit-identical.
#pragma once

#include <cassert>
#include <cmath>
#include <functional>
#include <vector>

#include "common/math.hpp"
#include "common/types.hpp"
#include "prng/rng.hpp"
#include "variates/batch.hpp"
#include "variates/variates.hpp"

namespace kagen {

/// Selects the sequential sampling engine inside a chunk.
///
/// `v1` is the reference engine: scalar Vitter Method D, libm
/// transcendentals, one variate per draw. Its output is pinned bit-exactly
/// by the golden-file tests and stays the default.
///
/// `v2` is the throughput engine: the same Method D recurrence fed from
/// block-refilled variate buffers (variates/batch.hpp) with inline
/// polynomial log/exp (variates/fast_math.hpp), a straight-line quick-accept
/// path, and a geometric-skip fast path for Bernoulli-regime draws
/// (`bernoulli_sample`). Identical *distribution*, different byte stream;
/// validated by the statistical suites in tests/test_sampling.cpp.
/// DESIGN.md §10 describes the split.
enum class SamplerVersion { v1, v2 };

/// Floyd's algorithm: k distinct integers from [0, universe), unsorted.
std::vector<u64> floyd_sample(Rng& rng, u64 universe, u64 k);

namespace detail {

/// Vitter's Method A: sequential scan with direct skip search. O(universe)
/// but with tiny constants; used when the sampling fraction is high.
template <typename Emit>
void method_a(Rng& rng, u64 universe, u64 k, u64 offset, Emit&& emit) {
    u64 cur      = 0;
    double nreal = static_cast<double>(universe);
    while (k >= 2) {
        const double v = rng.uniform_pos();
        u64 skip       = 0;
        double top     = nreal - static_cast<double>(k);
        double quot    = top / nreal;
        while (quot > v) {
            ++skip;
            top -= 1.0;
            nreal -= 1.0;
            quot *= top / nreal;
        }
        emit(offset + cur + skip);
        cur += skip + 1;
        nreal -= 1.0;
        --k;
    }
    if (k == 1) {
        const u64 skip = std::min<u64>(static_cast<u64>(nreal * rng.uniform()),
                                       static_cast<u64>(nreal) - 1);
        emit(offset + cur + skip);
    }
}

/// Method D, v2 engine: the same acceptance-rejection scheme as the v1
/// body in `sorted_sample`, in Vitter's *fresh-draw* formulation and
/// restructured so the cross-sample dependency chain is a handful of adds
/// and multiplies instead of a log→exp round trip.
///
/// v1 follows Vitter's "reuse" optimization: the quick-accept test's
/// by-product y1·(1-x/n)·(q/(q-s)) is conditionally U^(1/(k-1))-
/// distributed and becomes the next proposal vprime — saving one exp call
/// per sample at the price of welding every sample's transcendentals into
/// one serial chain (that chain *is* the 45 ns/sample of v1). v2 instead
/// draws each proposal fresh, vprime = U^(1/k) = exp(-E/k), with E pulled
/// from the batched exponential buffer — equally exact (it is the
/// unoptimized form of Vitter's Algorithm D), and the draw depends only
/// on per-sample constants, so it schedules off the chain.
///
/// Remaining per-sample transcendentals are the short series kernels:
/// exp(-E/k) and the quick-accept's (u·n/q)^(1/(k-1)) — rewritten as
/// exp((log(n/q) - E')/(k-1)) with log(n/q) = neg_log1p((k-1)/n) — both
/// hit fast_exp_small for large k. The quick-accept comparison is cleared
/// of its division (y1·vprime·q <= q - s, all factors positive). The rare
/// slow-accept (D4) keeps libm: it contributes nothing to runtime and its
/// y2 product can leave the contracted fast_log domain.
template <typename Emit>
void sorted_sample_v2_core(Rng& rng, u64 universe, u64 k, Emit&& emit) {
    constexpr double kAlphaInv = 13.0; // same Method A switch point as v1
    u64 cur          = 0;
    u64 remaining_n  = universe;
    u64 remaining_k  = k;
    double nreal     = static_cast<double>(remaining_n);
    double kreal     = static_cast<double>(remaining_k);
    double kinv      = 1.0 / kreal;
    BatchedVariates var(rng);
    double vprime    = fast_exp_auto(-var.exponential() * kinv);
    double threshold = kAlphaInv * kreal;

    while (remaining_k > 1 && threshold < nreal) {
        const double kmin1inv = 1.0 / (kreal - 1.0);
        const double qu1real  = nreal - kreal + 1.0;
        const u64 qu1         = remaining_n - remaining_k + 1;
        // log(nreal/qu1real); t = (kreal-1)/nreal < 1/13 inside Method D.
        const double logratio = neg_log1p((kreal - 1.0) / nreal);
        u64 skip;
        double skipreal;
        for (;;) {
            // D2: propose a skip from the continuous approximation.
            const double x = nreal * (1.0 - vprime);
            skip           = static_cast<u64>(x);
            if (skip >= qu1) [[unlikely]] {
                vprime = fast_exp_auto(-var.exponential() * kinv);
                continue;
            }
            // D3: quick acceptance — straight-line, division-free.
            // y1 = (u·nreal/qu1real)^(1/(k-1)), with log u = -E batched.
            const double y1 =
                fast_exp_auto((logratio - var.exponential()) * kmin1inv);
            skipreal = static_cast<double>(skip);
            if (y1 * vprime * qu1real <= qu1real - skipreal) [[likely]] break;
            // D4: slow acceptance via the exact ratio. v1 evaluates the
            // ratio of falling factorials y2 = Π (top-i)/(bottom-i) with an
            // O(skip) serial divide loop; at ~0.14% entry rate × ~n/k
            // iterations that loop still costs more than everything else in
            // the engine combined (~2.4 divide iterations per sample).
            // v2 uses the closed form via lgamma — four calls instead of
            // thousands of divides. The ~1e-5 relative error of differencing
            // large lgammas perturbs a test that decides ~0.1% of samples;
            // distributionally invisible (tests/test_sampling.cpp bounds it).
            double top0 = nreal - 1.0;
            double bot0;
            double niter; // loop length of v1's product, in closed form
            if (kreal - 1.0 > skipreal) {
                bot0  = nreal - kreal;
                niter = skipreal;
            } else {
                bot0  = nreal - skipreal - 1.0;
                niter = kreal - 1.0;
            }
            const double log_y2 = lgamma_threadsafe(top0 + 1.0) -
                                  lgamma_threadsafe(top0 + 1.0 - niter) -
                                  lgamma_threadsafe(bot0 + 1.0) +
                                  lgamma_threadsafe(bot0 + 1.0 - niter);
            if (nreal / (nreal - x) >= y1 * std::exp(log_y2 * kmin1inv)) {
                break; // accepted; the bottom-of-sample draw refreshes vprime
            }
            vprime = fast_exp_auto(-var.exponential() * kinv);
        }
        emit(cur + skip);
        cur += skip + 1;
        remaining_n -= skip + 1;
        nreal -= skipreal + 1.0;
        --remaining_k;
        kreal -= 1.0;
        kinv = kmin1inv;
        threshold -= kAlphaInv;
        // Fresh proposal for the next sample at its k. Depends only on the
        // new kinv and the buffer cursor — off the skip→nreal→skip chain.
        vprime = fast_exp_auto(-var.exponential() * kinv);
    }

    if (remaining_k > 1) {
        // Method A does no transcendental work — shared with v1 verbatim.
        method_a(rng, remaining_n, remaining_k, cur, emit);
    } else {
        // Here vprime = U^(1/1) = U: same final-skip law as v1.
        const u64 skip = std::min<u64>(static_cast<u64>(nreal * vprime), remaining_n - 1);
        emit(cur + skip);
    }
}

} // namespace detail

/// Sequential sampling of `k` distinct integers from [0, universe), emitted
/// in increasing order through `emit`. Uses Vitter's Method D (skip
/// distances via acceptance-rejection) and falls back to Method A when the
/// sampling fraction is high. Expected time O(k) regardless of universe.
/// `version` selects the engine; the default v1 stream is bit-pinned.
template <typename Emit>
void sorted_sample(Rng& rng, u64 universe, u64 k, Emit&& emit,
                   SamplerVersion version = SamplerVersion::v1) {
    assert(k <= universe);
    if (k == 0) return;
    if (k == universe) {
        for (u64 i = 0; i < universe; ++i) emit(i);
        return;
    }
    if (version == SamplerVersion::v2) {
        detail::sorted_sample_v2_core(rng, universe, k, emit);
        return;
    }

    // Vitter's Method D with fallback to Method A for dense draws.
    constexpr double kAlphaInv = 13.0; // Vitter's recommended switch point
    u64 offset       = 0;              // universe positions already consumed
    u64 cur          = 0;
    u64 remaining_n  = universe;
    u64 remaining_k  = k;
    double nreal     = static_cast<double>(remaining_n);
    double kreal     = static_cast<double>(remaining_k);
    double kinv      = 1.0 / kreal;
    double vprime    = std::exp(std::log(rng.uniform_pos()) * kinv);
    double threshold = kAlphaInv * kreal;

    while (remaining_k > 1 && threshold < nreal) {
        const double kmin1inv = 1.0 / (kreal - 1.0);
        const double qu1real  = nreal - kreal + 1.0;
        const u64 qu1         = remaining_n - remaining_k + 1;
        u64 skip;
        double x, negSreal;
        for (;;) {
            // Step D2: propose a skip from the continuous approximation.
            for (;;) {
                x    = nreal * (1.0 - vprime);
                skip = static_cast<u64>(x);
                if (skip < qu1) break;
                vprime = std::exp(std::log(rng.uniform_pos()) * kinv);
            }
            const double u = rng.uniform_pos();
            negSreal       = -static_cast<double>(skip);
            // Step D3: quick acceptance.
            const double y1 = std::exp(std::log(u * nreal / qu1real) * kmin1inv);
            vprime          = y1 * (-x / nreal + 1.0) * (qu1real / (negSreal + qu1real));
            if (vprime <= 1.0) break;
            // Step D4: slow acceptance via the exact ratio.
            double y2  = 1.0;
            double top = nreal - 1.0;
            double bottom;
            double limit;
            if (kreal - 1.0 > -negSreal) {
                bottom = nreal - kreal;
                limit  = nreal - static_cast<double>(skip);
            } else {
                bottom = nreal + negSreal - 1.0;
                limit  = qu1real;
            }
            for (double t = nreal - 1.0; t >= limit; t -= 1.0) {
                y2 = y2 * top / bottom;
                top -= 1.0;
                bottom -= 1.0;
            }
            if (nreal / (nreal - x) >= y1 * std::exp(std::log(y2) * kmin1inv)) {
                vprime = std::exp(std::log(rng.uniform_pos()) * kmin1inv);
                break;
            }
            vprime = std::exp(std::log(rng.uniform_pos()) * kinv);
        }
        emit(offset + cur + skip);
        cur += skip + 1;
        remaining_n -= skip + 1;
        nreal = negSreal + (nreal - 1.0);
        --remaining_k;
        kreal -= 1.0;
        kinv = kmin1inv;
        threshold -= kAlphaInv;
    }

    if (remaining_k > 1) {
        detail::method_a(rng, remaining_n, remaining_k, offset + cur, emit);
    } else {
        const u64 skip = std::min<u64>(static_cast<u64>(nreal * vprime), remaining_n - 1);
        emit(offset + cur + skip);
    }
}

/// Geometric-skip Bernoulli sampling (sampler v2's dense/Gnp fast path):
/// emits each position of [0, universe) independently with probability `p`,
/// in increasing order, in O(p · universe) expected time. Skip lengths are
/// floor(E/λ) with E ~ Exp(1) and λ = -log1p(-p), so
/// P(skip = s) = (1-p)^s · p — exactly the gap law of iid Bernoulli(p)
/// trials. Replaces v1's binomial-count + sorted_sample pair for Gnp: same
/// product distribution over subsets, one exponential per emitted sample
/// instead of a log/exp pair per skip.
template <typename Emit>
void bernoulli_sample(Rng& rng, u64 universe, double p, Emit&& emit) {
    assert(p >= 0.0 && p <= 1.0);
    if (universe == 0 || p <= 0.0) return;
    if (p >= 1.0) {
        for (u64 i = 0; i < universe; ++i) emit(i);
        return;
    }
    BatchedVariates var(rng);
    const double lambda_inv = -1.0 / std::log1p(-p);
    u64 cur                 = 0;
    for (;;) {
        const double skip = var.exponential() * lambda_inv;
        // Compare in double first: skip can exceed u64 range for tiny p.
        if (skip >= static_cast<double>(universe - cur)) return;
        cur += static_cast<u64>(skip);
        if (cur >= universe) return; // double→u64 rounding guard
        emit(cur);
        ++cur;
    }
}

/// Describes a universe partitioned into `num_chunks` consecutive chunks.
/// `chunk_size(i)` must be O(1); prefix sizes are derived by the sampler's
/// recursion, never by scanning. (These run once per chunk, not per sample,
/// so type erasure is harmless here.)
struct ChunkUniverse {
    u64 num_chunks = 0;
    std::function<u128(u64)> chunk_size;              // size of chunk i
    std::function<u128(u64, u64)> range_size;         // total size of chunks [lo, hi)
};

/// Convenience constructor for a universe of `n` rows split into nearly
/// equal consecutive blocks of rows, each row having `row_width` slots.
ChunkUniverse make_row_universe(u64 n, u64 num_chunks, u128 row_width);

/// Divide-and-conquer distributed sampler.
class ChunkedSampler {
public:
    /// \param seed     base seed; all subtree seeds derive from it.
    /// \param universe chunk layout (sizes must be stable).
    /// \param samples  total number of samples over the whole universe.
    ChunkedSampler(u64 seed, ChunkUniverse universe, u64 samples);

    /// Number of samples that land in chunk `chunk` (deterministic in
    /// `seed`; identical on every PE). O(log num_chunks) variates.
    u64 samples_in_chunk(u64 chunk) const;

    /// Emits the samples of chunk `chunk` as offsets *within* the chunk,
    /// in increasing order. Deterministic in `seed` (and, for v2, in
    /// `version` — the hypergeometric count layer above is engine-agnostic,
    /// so v1 and v2 draw the *same number* of samples per chunk and differ
    /// only in the within-chunk positions).
    template <typename Emit>
    void sample_chunk(u64 chunk, Emit&& emit,
                      SamplerVersion version = SamplerVersion::v1) const {
        const u64 k = descend(chunk);
        if (k == 0) return;
        const u128 size = universe_.chunk_size(chunk);
        assert(size <= static_cast<u128>(~u64{0}) && "per-chunk universe must fit 64 bits");
        Rng rng = Rng::for_ids(seed_, {0x1eafULL, chunk});
        sorted_sample(rng, static_cast<u64>(size), k, emit, version);
    }

private:
    /// Recursion over chunk index ranges; returns the sample count of the
    /// subtree containing `chunk` at its leaf.
    u64 descend(u64 chunk) const;

    u64 seed_;
    ChunkUniverse universe_;
    u64 samples_;
};

} // namespace kagen
