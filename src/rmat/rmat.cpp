#include "rmat/rmat.hpp"

#include <cassert>

#include "common/math.hpp"
#include "prng/spooky.hpp"
#include "sink/sinks.hpp"

namespace kagen::rmat {
namespace {

/// Counter-based stream: cheap per-edge seeding (a full PRNG init per edge
/// would dominate the measurement; the Graph 500 reference uses the same
/// trick with a hash-keyed stream).
class SplitMix {
public:
    explicit SplitMix(u64 seed) : state_(seed) {}

    u64 next() {
        state_ += 0x9e3779b97f4a7c15ULL;
        u64 z = state_;
        z     = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z     = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

private:
    u64 state_;
};

} // namespace

Edge edge_at(const Params& params, u64 index) {
    SplitMix rng(spooky::hash_words(params.seed, {0x2a47u, index}));
    u64 row = 0;
    u64 col = 0;
    const double ab  = params.a + params.b;
    const double abc = ab + params.c;
    for (u64 level = 0; level < params.log_n; ++level) {
        const double u = rng.uniform();
        row <<= 1;
        col <<= 1;
        if (u >= ab) row |= 1;                       // lower half
        if (u >= params.a && u < ab) col |= 1;       // quadrant b
        if (u >= abc) col |= 1;                      // quadrant d
    }
    return {row, col};
}

void generate(const Params& params, u64 rank, u64 size, EdgeSink& sink) {
    assert(params.a + params.b + params.c <= 1.0 + 1e-12);
    const u64 lo = block_begin(params.m, size, rank);
    const u64 hi = block_begin(params.m, size, rank + 1);
    for (u64 i = lo; i < hi; ++i) sink.emit(edge_at(params, i));
    sink.flush();
}

EdgeList generate(const Params& params, u64 rank, u64 size) {
    MemorySink sink;
    generate(params, rank, size, sink);
    return sink.take();
}

} // namespace kagen::rmat
