/// \file rmat.hpp
/// \brief R-MAT recursive-matrix generator (Chakrabarti et al. [3]),
///        the Graph 500 baseline the paper benchmarks against (§3.5.2, §8.6.1).
///
/// Each of the m edges is sampled independently by recursively descending
/// the adjacency matrix's quadrants with probabilities (a, b, c, d),
/// a+b+c+d = 1, for log2(n) levels — Θ(m log n) work and Θ(log n) random
/// variates per edge, which is exactly why the paper's generators (O(1)
/// variates per edge) outrun it by an order of magnitude.
///
/// Edges are derived from a counter-based pseudorandom stream keyed by the
/// edge index, so the edge list is independent of the PE count (like the
/// Graph 500 reference implementation). Self-loops and duplicates are kept,
/// Graph 500 style.
#pragma once

#include "common/types.hpp"
#include "graph/edge_list.hpp"
#include "sink/edge_sink.hpp"

namespace kagen::rmat {

struct Params {
    u64 log_n = 0;    ///< n = 2^log_n vertices
    u64 m     = 0;    ///< number of edges
    double a  = 0.57; ///< Graph 500 defaults
    double b  = 0.19;
    double c  = 0.19;
    u64 seed  = 1;
};

/// The edges with indices in `rank`'s block of [0, m). The sink overload
/// streams them in index order; the EdgeList overload wraps a MemorySink.
void generate(const Params& params, u64 rank, u64 size, EdgeSink& sink);
EdgeList generate(const Params& params, u64 rank, u64 size);

/// Single edge by index (test hook; the generator is this, blocked).
Edge edge_at(const Params& params, u64 index);

} // namespace kagen::rmat
