#include "sbm/sbm.hpp"

#include <algorithm>
#include <cassert>

#include "common/math.hpp"
#include "sampling/sampling.hpp"
#include "sink/sinks.hpp"
#include "variates/variates.hpp"

namespace kagen::sbm {
namespace {

constexpr u64 kTagRegion = 0x5b30;

struct Interval {
    u64 lo = 0;
    u64 hi = 0;
    u64 size() const { return hi - lo; }
    bool empty() const { return hi <= lo; }
};

Interval intersect(Interval a, Interval b) {
    return Interval{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

/// Bernoulli-samples the rows x cols rectangle with probability p; all row
/// ids must exceed all col ids (guaranteed by the caller's decomposition).
void sample_rectangle(u64 seed, Interval rows, Interval cols, double p, EdgeSink& out) {
    if (rows.empty() || cols.empty() || p <= 0.0) return;
    const u64 universe = rows.size() * cols.size();
    // Region id = its corner in the global adjacency matrix (unique across
    // the chunk x block overlay); both owners derive the same stream.
    Rng count_rng   = Rng::for_ids(seed, {kTagRegion, rows.lo, cols.lo, 0});
    const u64 count = binomial(count_rng, universe, p);
    if (count == 0) return;
    Rng rng = Rng::for_ids(seed, {kTagRegion, rows.lo, cols.lo, 1});
    sorted_sample(rng, universe, count, [&](u64 idx) {
        out.emit(rows.lo + idx / cols.size(), cols.lo + idx % cols.size());
    });
}

/// Bernoulli-samples the strictly-lower triangle of the square over `span`.
void sample_triangle(u64 seed, Interval span, double p, EdgeSink& out) {
    if (span.size() < 2 || p <= 0.0) return;
    const u64 universe = static_cast<u64>(triangle(span.size()));
    Rng count_rng      = Rng::for_ids(seed, {kTagRegion, span.lo, span.lo, 2});
    const u64 count    = binomial(count_rng, universe, p);
    if (count == 0) return;
    Rng rng = Rng::for_ids(seed, {kTagRegion, span.lo, span.lo, 3});
    sorted_sample(rng, universe, count, [&](u64 idx) {
        const u64 r = triangle_row(idx);
        out.emit(span.lo + r, span.lo + idx - static_cast<u64>(triangle(r)));
    });
}

struct Layout {
    u64 n = 0;
    std::vector<u64> block_offset; // block_sizes.size() + 1 entries

    Interval block(u64 b) const { return {block_offset[b], block_offset[b + 1]}; }

    /// Blocks intersecting a vertex interval.
    std::pair<u64, u64> blocks_over(Interval iv) const {
        const auto lo = static_cast<u64>(
            std::upper_bound(block_offset.begin(), block_offset.end(), iv.lo) -
            block_offset.begin() - 1);
        u64 hi = lo;
        while (hi + 1 < block_offset.size() && block_offset[hi + 1] < iv.hi) ++hi;
        return {lo, hi};
    }
};

/// Generates all edges of the chunk pair (row chunk cp, col chunk cq),
/// cq <= cp, split along block boundaries.
void generate_chunk_pair(const Params& params, const Layout& layout, u64 size, u64 cp,
                         u64 cq, EdgeSink& out) {
    const Interval rows{block_begin(layout.n, size, cp),
                        block_begin(layout.n, size, cp + 1)};
    const Interval cols{block_begin(layout.n, size, cq),
                        block_begin(layout.n, size, cq + 1)};
    if (rows.empty() || cols.empty()) return;
    const auto [rb_lo, rb_hi] = layout.blocks_over(rows);
    const auto [cb_lo, cb_hi] = layout.blocks_over(cols);
    for (u64 bi = rb_lo; bi <= rb_hi; ++bi) {
        for (u64 bj = cb_lo; bj <= cb_hi; ++bj) {
            const Interval r = intersect(rows, layout.block(bi));
            const Interval c = intersect(cols, layout.block(bj));
            if (r.empty() || c.empty()) continue;
            const double p = params.probs[bi][bj];
            if (cp != cq || bi > bj) {
                // Disjoint id ranges: plain rectangle, rows all above cols.
                sample_rectangle(params.seed, r, c, p, out);
            } else if (bi == bj) {
                // Same block on the diagonal chunk: triangle over r == c.
                assert(r.lo == c.lo && r.hi == c.hi);
                sample_triangle(params.seed, r, p, out);
            }
            // bi < bj on the diagonal chunk: the mirror (bj, bi) handles it.
        }
    }
}

} // namespace

u64 num_vertices(const Params& params) {
    u64 n = 0;
    for (const u64 s : params.block_sizes) n += s;
    return n;
}

Params planted_partition(u64 n, u64 blocks, double p_in, double p_out, u64 seed) {
    Params params;
    params.seed = seed;
    params.block_sizes.resize(blocks);
    for (u64 b = 0; b < blocks; ++b) params.block_sizes[b] = block_size(n, blocks, b);
    params.probs.assign(blocks, std::vector<double>(blocks, p_out));
    for (u64 b = 0; b < blocks; ++b) params.probs[b][b] = p_in;
    return params;
}

void generate(const Params& params, u64 rank, u64 size, EdgeSink& sink) {
    assert(params.probs.size() == params.block_sizes.size());
    Layout layout;
    layout.n = num_vertices(params);
    layout.block_offset.resize(params.block_sizes.size() + 1, 0);
    for (std::size_t b = 0; b < params.block_sizes.size(); ++b) {
        layout.block_offset[b + 1] = layout.block_offset[b] + params.block_sizes[b];
    }

    // Row chunks (rank, q <= rank): edges whose higher endpoint is local.
    for (u64 q = 0; q <= rank; ++q) {
        generate_chunk_pair(params, layout, size, rank, q, sink);
    }
    // Column chunks (p > rank, rank): edges whose lower endpoint is local.
    for (u64 p = rank + 1; p < size; ++p) {
        generate_chunk_pair(params, layout, size, p, rank, sink);
    }
    sink.flush();
}

EdgeList generate(const Params& params, u64 rank, u64 size) {
    MemorySink sink;
    generate(params, rank, size, sink);
    return sink.take();
}

} // namespace kagen::sbm
