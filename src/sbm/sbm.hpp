/// \file sbm.hpp
/// \brief Communication-free stochastic block model generator.
///
/// The paper names the SBM as the first target for extending the
/// communication-free paradigm (§9, Future Work); this module implements
/// that extension with the same machinery as the G(n,p) generators (§4.3):
///
/// Vertices are the contiguous blocks B_0, B_1, ... (community k owns a
/// consecutive id range); an edge {u, v}, u in B_i, v in B_j, exists
/// independently with probability probs[i][j]. The undirected adjacency
/// matrix decomposes into rectangles (chunk-pair x block-pair intersections)
/// and diagonal triangles; since Bernoulli sampling is independent across
/// regions, each region's edge count is a Binomial variate seeded by the
/// region's structural id — so both owners of a region regenerate the same
/// edges, exactly like the undirected G(n,p) chunks, and no communication
/// or hypergeometric recursion is needed.
///
/// Output semantics match er::gnp_undirected: every edge incident to PE
/// `rank`'s vertices, emitted as (u, v) with u > v; cross-PE edges appear
/// identically on both owners.
#pragma once

#include <vector>

#include "common/math.hpp"
#include "common/types.hpp"
#include "graph/edge_list.hpp"
#include "sink/edge_sink.hpp"
#include "sink/ownership.hpp"

namespace kagen::sbm {

struct Params {
    /// Size of each block/community; vertex ids are assigned consecutively.
    std::vector<u64> block_sizes;
    /// Symmetric edge-probability matrix, probs[i][j] = probs[j][i],
    /// one row per block.
    std::vector<std::vector<double>> probs;
    u64 seed = 1;
};

/// Total vertex count (sum of block sizes).
u64 num_vertices(const Params& params);

/// Convenience constructor: `blocks` equal communities over n vertices with
/// intra-block probability `p_in` and inter-block probability `p_out`
/// (the planted-partition model).
Params planted_partition(u64 n, u64 blocks, double p_in, double p_out, u64 seed);

/// Edges incident to PE `rank`'s vertex range (block partition of [0, n)).
/// The sink overload streams region by region; the EdgeList overload wraps
/// a MemorySink (bit-identical output).
void generate(const Params& params, u64 rank, u64 size, EdgeSink& sink);
EdgeList generate(const Params& params, u64 rank, u64 size);

/// Exact-once ownership (sink/ownership.hpp): identical to
/// `er::owned_vertex_range` — the SBM shares the undirected G(n,p) chunk
/// geometry, so wrapping a rank's sink in an `OwnershipFilterSink` over
/// this range yields globally duplicate-free streams.
inline IdIntervals owned_vertex_range(const Params& params, u64 rank, u64 size) {
    const u64 n = num_vertices(params);
    return {{block_begin(n, size, rank), block_begin(n, size, rank + 1)}};
}

} // namespace kagen::sbm
