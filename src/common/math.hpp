/// \file math.hpp
/// \brief Exact integer helpers used for chunk/edge index arithmetic.
#pragma once

#include <cassert>
#include <cmath>

#include "common/types.hpp"

namespace kagen {

/// Floor of the square root of a 128-bit integer, exact.
/// Starts from the double approximation and corrects by local search; the
/// correction loop runs at most a few steps because the double estimate is
/// within one ulp-scaled neighbourhood of the true root.
inline u128 isqrt(u128 x) {
    if (x == 0) return 0;
    auto approx = static_cast<u128>(std::sqrt(static_cast<double>(x)));
    // Guard against the double rounding above/below the true root.
    while (approx > 0 && approx * approx > x) --approx;
    while ((approx + 1) * (approx + 1) <= x) ++approx;
    return approx;
}

/// Number of unordered pairs {i, j}, i != j, drawn from t elements.
inline constexpr u128 triangle(u128 t) { return t * (t - 1) / 2; }

/// Inverts `triangle`: given a linear index k into the strictly-lower-
/// triangular part of a matrix (row-major: (1,0),(2,0),(2,1),(3,0),...),
/// returns the row r such that triangle(r) <= k < triangle(r+1).
inline u64 triangle_row(u128 k) {
    // r = floor((1 + sqrt(1 + 8k)) / 2); compute exactly via isqrt.
    const u128 s = isqrt(8 * k + 1);
    auto r       = static_cast<u64>((1 + s) / 2);
    while (triangle(r) > k) --r;
    while (triangle(static_cast<u128>(r) + 1) <= k) ++r;
    return r;
}

/// floor(log2(x)) for x >= 1.
inline constexpr u32 floor_log2(u64 x) {
    assert(x >= 1);
    return 63u - static_cast<u32>(__builtin_clzll(x));
}

/// Smallest power of two >= x (x >= 1).
inline constexpr u64 ceil_pow2(u64 x) {
    assert(x >= 1);
    return x <= 1 ? 1 : u64{1} << (64 - __builtin_clzll(x - 1));
}

inline constexpr bool is_pow2(u64 x) { return x != 0 && (x & (x - 1)) == 0; }

/// Divides a range of `n` items into `parts` nearly equal consecutive blocks;
/// returns the first index of block `part` (block sizes differ by at most 1).
inline constexpr u64 block_begin(u64 n, u64 parts, u64 part) {
    return (n / parts) * part + std::min(part, n % parts);
}

inline constexpr u64 block_size(u64 n, u64 parts, u64 part) {
    return block_begin(n, parts, part + 1) - block_begin(n, parts, part);
}

/// Block that owns item `i` under the `block_begin` partition.
inline constexpr u64 block_owner(u64 n, u64 parts, u64 i) {
    const u64 big   = n % parts;           // first `big` blocks have size q+1
    const u64 q     = n / parts;
    const u64 split = big * (q + 1);       // items covered by the big blocks
    return i < split ? i / (q + 1) : (q == 0 ? parts - 1 : big + (i - split) / q);
}

/// log(Gamma(x)) without the libm `signgam` side channel. std::lgamma
/// WRITES the global `signgam` variable on every call — a data race (found
/// by TSan; DESIGN.md §12) once worker threads evaluate lgamma concurrently,
/// as the hypergeometric samplers do on every chunk. The sampler arguments
/// are always > 0, where Gamma is positive and the sign output is dead, so
/// the reentrant glibc lgamma_r family is a drop-in: bit-identical return
/// values (same algorithm, sign delivered via the out-parameter instead of
/// the global). Non-glibc fallback keeps std::lgamma — single-threaded
/// platforms or ones whose lgamma is already signgam-free.
inline double lgamma_threadsafe(double x) {
#if defined(__GLIBC__)
    int sign = 0;
    return ::lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

inline long double lgamma_threadsafe(long double x) {
#if defined(__GLIBC__)
    int sign = 0;
    return ::lgammal_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

} // namespace kagen
