#include "common/fileio.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <unistd.h>

namespace kagen::fileio {
namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::runtime_error(std::string("fileio: ") + what + ": " +
                             std::strerror(errno));
}

/// Userspace fallback: EINTR-safe read/write loop through a 1 MiB buffer.
u64 copy_user(int in_fd, int out_fd, u64 length) {
    std::vector<char> buf(std::min<u64>(length, u64{1} << 20));
    u64 copied = 0;
    while (copied < length) {
        const std::size_t want =
            static_cast<std::size_t>(std::min<u64>(length - copied, buf.size()));
        const ssize_t n = ::read(in_fd, buf.data(), want);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("read failed");
        }
        if (n == 0) {
            throw std::runtime_error(
                "fileio: source ended " + std::to_string(length - copied) +
                " bytes early");
        }
        write_all(out_fd, buf.data(), static_cast<std::size_t>(n));
        copied += static_cast<u64>(n);
    }
    return copied;
}

} // namespace

void close_or_warn(int fd, const char* what) noexcept {
    if (fd < 0) return;
    if (::close(fd) != 0) {
        // errno is preserved for the message but NOT for the caller: these
        // call sites are cleanup paths where the original error (if any) is
        // already in flight and must not be clobbered silently — hence the
        // save/restore.
        const int saved = errno;
        std::fprintf(stderr, "kagen: warning: close(%s) failed: %s\n", what,
                     std::strerror(saved));
        errno = saved;
    }
}

void unlink_or_warn(const char* path, const char* what) noexcept {
    if (path == nullptr || *path == '\0') return;
    if (::unlink(path) != 0 && errno != ENOENT) {
        const int saved = errno;
        std::fprintf(stderr, "kagen: warning: unlink(%s: %s) failed: %s\n",
                     what, path, std::strerror(saved));
        errno = saved;
    }
}

void write_all(int fd, const void* data, std::size_t bytes) {
    const char* p = static_cast<const char*>(data);
    while (bytes > 0) {
        const ssize_t n = ::write(fd, p, bytes);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("write failed");
        }
        p += n;
        bytes -= static_cast<std::size_t>(n);
    }
}

CopyStats copy_bytes(int in_fd, int out_fd, u64 length,
                     bool allow_copy_file_range) {
    CopyStats stats;
    if (length == 0) return stats;
#ifndef __linux__
    (void)allow_copy_file_range; // no kernel path to opt out of
#else
    while (allow_copy_file_range && stats.bytes_copied < length) {
        const u64 want = length - stats.bytes_copied;
        const ssize_t n =
            ::copy_file_range(in_fd, nullptr, out_fd, nullptr,
                              static_cast<std::size_t>(want), 0);
        if (n > 0) {
            stats.bytes_copied += static_cast<u64>(n);
            stats.cfr_bytes += static_cast<u64>(n);
            continue; // short kernel copies are normal; just keep going
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EXDEV || errno == EINVAL || errno == ENOSYS ||
                      errno == EOPNOTSUPP || errno == EBADF ||
                      errno == EPERM || errno == ETXTBSY)) {
            break; // this descriptor pair wants the userspace fallback
        }
        if (n < 0) throw_errno("copy_file_range failed");
        // n == 0: EOF on the source before `length` bytes existed.
        throw std::runtime_error(
            "fileio: source ended " +
            std::to_string(length - stats.bytes_copied) + " bytes early");
    }
#endif
    if (stats.bytes_copied < length) {
        stats.bytes_copied += copy_user(in_fd, out_fd, length - stats.bytes_copied);
    }
    return stats;
}

} // namespace kagen::fileio
