/// \file bytes.hpp
/// \brief Tiny explicit-layout byte serialization used by the mergeable sink
///        summaries (sink/sinks.hpp) and the distributed stats pipe
///        (dist/ipc.hpp).
///
/// Fixed little-endian encoding rather than raw struct memcpy: the frames
/// cross a process boundary (coordinator ↔ forked worker today, potentially
/// a socket tomorrow), so the layout must not depend on padding or host
/// endianness. Decoding is bounds-checked and throws on truncation — a
/// worker that died mid-frame must surface as a clean error, never as a
/// read past the end of the received buffer.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace kagen::bytes {

inline void put_u64(std::vector<u8>& out, u64 value) {
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<u8>(value >> shift));
    }
}

inline u64 get_u64(const u8*& p, const u8* end) {
    if (end - p < 8) throw std::runtime_error("bytes: truncated u64");
    u64 value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
        value |= static_cast<u64>(*p++) << shift;
    }
    return value;
}

/// Doubles travel as their IEEE-754 bit pattern in a u64.
inline void put_f64(std::vector<u8>& out, double value) {
    u64 bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    put_u64(out, bits);
}

inline double get_f64(const u8*& p, const u8* end) {
    const u64 bits = get_u64(p, end);
    double value;
    __builtin_memcpy(&value, &bits, sizeof(value));
    return value;
}

inline void put_string(std::vector<u8>& out, const std::string& s) {
    put_u64(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

inline std::string get_string(const u8*& p, const u8* end) {
    const u64 size = get_u64(p, end);
    if (static_cast<u64>(end - p) < size) {
        throw std::runtime_error("bytes: truncated string");
    }
    std::string s(reinterpret_cast<const char*>(p), size);
    p += size;
    return s;
}

inline void put_u64_vector(std::vector<u8>& out, const std::vector<u64>& v) {
    put_u64(out, v.size());
    for (const u64 x : v) put_u64(out, x);
}

inline std::vector<u64> get_u64_vector(const u8*& p, const u8* end) {
    const u64 size = get_u64(p, end);
    if (size > static_cast<u64>(end - p) / 8) { // no size*8: it could wrap
        throw std::runtime_error("bytes: truncated u64 vector");
    }
    std::vector<u64> v;
    v.reserve(size);
    for (u64 i = 0; i < size; ++i) v.push_back(get_u64(p, end));
    return v;
}

} // namespace kagen::bytes
