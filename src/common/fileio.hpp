/// \file fileio.hpp
/// \brief Raw-descriptor bulk file plumbing shared by the coordinator-side
///        merge of the distributed runner (DESIGN.md §9).
///
/// The distributed backend's only sequential coordinator work is
/// concatenating the per-rank files into the merged output. Doing that with
/// a userspace read/fwrite loop moves every byte kernel → user buffer →
/// kernel; `copy_bytes` instead asks the kernel to splice the ranges
/// directly with copy_file_range(2) — zero userspace copies, and on
/// reflink-capable filesystems no data movement at all — falling back to an
/// EINTR-safe read/write loop where the syscall is unavailable or refuses
/// the descriptor pair (EXDEV on old kernels, EINVAL/ENOSYS/EOPNOTSUPP,
/// pipes/devices).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace kagen::fileio {

/// Writes exactly `bytes` bytes to `fd`, retrying on EINTR and short
/// writes. Throws std::runtime_error (with errno text) on failure.
void write_all(int fd, const void* data, std::size_t bytes);

/// Outcome of one copy_bytes call.
struct CopyStats {
    u64 bytes_copied = 0; ///< total bytes moved (== requested length)
    u64 cfr_bytes    = 0; ///< bytes moved kernel-side via copy_file_range
};

/// Copies exactly `length` bytes from `in_fd`'s current file offset to
/// `out_fd`'s current file offset, advancing both. Prefers
/// copy_file_range(2); transparently falls back to a read/write loop (which
/// also handles EINTR and short transfers) when the kernel refuses.
/// `allow_copy_file_range = false` forces the fallback — the test hook for
/// pinning byte-identity of both paths, and what the
/// KAGEN_DISABLE_COPY_FILE_RANGE environment variable toggles in the
/// distributed runner. Throws std::runtime_error on any I/O failure,
/// including premature EOF on `in_fd`.
CopyStats copy_bytes(int in_fd, int out_fd, u64 length,
                     bool allow_copy_file_range = true);

} // namespace kagen::fileio
