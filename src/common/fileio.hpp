/// \file fileio.hpp
/// \brief Raw-descriptor bulk file plumbing shared by the coordinator-side
///        merge of the distributed runner (DESIGN.md §9).
///
/// The distributed backend's only sequential coordinator work is
/// concatenating the per-rank files into the merged output. Doing that with
/// a userspace read/fwrite loop moves every byte kernel → user buffer →
/// kernel; `copy_bytes` instead asks the kernel to splice the ranges
/// directly with copy_file_range(2) — zero userspace copies, and on
/// reflink-capable filesystems no data movement at all — falling back to an
/// EINTR-safe read/write loop where the syscall is unavailable or refuses
/// the descriptor pair (EXDEV on old kernels, EINVAL/ENOSYS/EOPNOTSUPP,
/// pipes/devices).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace kagen::fileio {

/// Writes exactly `bytes` bytes to `fd`, retrying on EINTR and short
/// writes. Throws std::runtime_error (with errno text) on failure.
void write_all(int fd, const void* data, std::size_t bytes);

/// Closes `fd` (if >= 0) on a path where failure cannot change the
/// outcome — destructors, error-unwind cleanup, read-only descriptors —
/// and reports a failure to stderr instead of swallowing it. close(2)
/// releases the descriptor even when it fails, so no retry is possible;
/// data-bearing descriptors must instead use a *checked* close before
/// declaring the data durable (see BinaryFileSink::finish and the
/// runner's merged-output close). `what` names the descriptor for the
/// diagnostic.
void close_or_warn(int fd, const char* what) noexcept;

/// unlink(2) for best-effort cleanup of scratch/partial files: ENOENT is
/// silent (already gone — the common double-cleanup case), every other
/// failure is reported to stderr. Never throws; callers on cleanup paths
/// cannot do anything better than proceed.
void unlink_or_warn(const char* path, const char* what) noexcept;

/// Outcome of one copy_bytes call.
struct CopyStats {
    u64 bytes_copied = 0; ///< total bytes moved (== requested length)
    u64 cfr_bytes    = 0; ///< bytes moved kernel-side via copy_file_range
};

/// Copies exactly `length` bytes from `in_fd`'s current file offset to
/// `out_fd`'s current file offset, advancing both. Prefers
/// copy_file_range(2); transparently falls back to a read/write loop (which
/// also handles EINTR and short transfers) when the kernel refuses.
/// `allow_copy_file_range = false` forces the fallback — the test hook for
/// pinning byte-identity of both paths, and what the
/// KAGEN_DISABLE_COPY_FILE_RANGE environment variable toggles in the
/// distributed runner. Throws std::runtime_error on any I/O failure,
/// including premature EOF on `in_fd`.
CopyStats copy_bytes(int in_fd, int out_fd, u64 length,
                     bool allow_copy_file_range = true);

} // namespace kagen::fileio
