/// \file types.hpp
/// \brief Fundamental integer / edge types shared by every module.
///
/// KaGen-style generators address universes of up to n(n-1) potential edges.
/// For n beyond 2^32 this exceeds 64 bits, so universe sizes and edge indices
/// are carried as unsigned 128-bit integers (`sint`), while vertex ids and
/// sample counts stay 64-bit.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace kagen {

using u8   = std::uint8_t;
using u32  = std::uint32_t;
using u64  = std::uint64_t;
using i64  = std::int64_t;
using u128 = unsigned __int128;
using i128 = __int128;

/// Vertex identifier. Vertices are always the contiguous range [0, n).
using VertexId = u64;

/// A directed edge (u, v); undirected edges are stored canonically (u < v)
/// unless a generator's natural output order is documented otherwise.
using Edge = std::pair<VertexId, VertexId>;

/// Flat edge list; the universal *materialized* exchange format between
/// modules. Generator cores emit through the streaming counterpart,
/// `EdgeSink` (sink/edge_sink.hpp), of which an EdgeList is just the
/// `MemorySink` rendering — prefer sinks when the consumer does not need
/// every edge in memory at once.
using EdgeList = std::vector<Edge>;

/// Renders a u128 in decimal (no standard operator<< exists for __int128).
inline std::string to_string(u128 value) {
    if (value == 0) return "0";
    std::string out;
    while (value > 0) {
        out.insert(out.begin(), static_cast<char>('0' + static_cast<int>(value % 10)));
        value /= 10;
    }
    return out;
}

} // namespace kagen
