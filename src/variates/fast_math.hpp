/// \file fast_math.hpp
/// \brief Inline table/polynomial log & exp kernels for the v2 sampler.
///
/// The v1 skip loop's cost is not libm *throughput* — glibc's log/exp run
/// at ~6 ns each here — it is the serial dependency chain of Vitter's
/// reuse formulation, where each sample's transcendentals feed the next
/// proposal. The v2 engine (sampling.hpp) breaks that chain by drawing
/// variates from block-refilled buffers (variates/batch.hpp); what this
/// header supplies are kernels cheap enough to fill those blocks and to
/// sit on the short paths that remain:
///
///  * `fast_log`      — division-free table+polynomial log. 128-entry
///                      reciprocal/log tables over the mantissa, residual
///                      g in [0, 1/128) by one fma-shaped multiply, then a
///                      degree-5 log1p series. No divide means the block
///                      refill loop (-log over 256 uniforms) is pure
///                      mul/add throughput. Absolute error < 1e-11.
///  * `fast_exp`      — full-range exp: two-part ln2 reduction + degree-8
///                      series + exponent-bit scaling. < 1e-9 relative.
///  * `fast_exp_small`— degree-6 series for |r| <= kSmallExpRadius, no
///                      range reduction at all (~2e-12 relative). This is
///                      the Method-D common case: exponents are E/k with k
///                      large, far inside the radius.
///  * `fast_exp_tiny` — degree-3 series for |r| <= kTinyExpRadius, the
///                      dominant case (exponents are E/k, k large).
///  * `fast_exp_auto` — tiered radius tests: tiny, then small, then full.
///                      The first branch is ~always-taken in the sparse
///                      regime.
///  * `neg_log1p`     — -log1p(-t) for t in [0, kNegLog1pMax], plain
///                      series; evaluates log(n/(n-k+1)) without a second
///                      table walk. < 1e-10 relative on its domain.
///
/// Accuracy contract: every kernel here is within ~1e-9 of the exact
/// value over its stated domain (validated in tests/test_variates.cpp).
/// That perturbs a Method-D acceptance threshold orders of magnitude
/// below what any feasible statistical test can resolve; v2 makes no bit
/// promise, so the contract is distributional (DESIGN.md §10).
///
/// Domain contract (asserted, not branched): fast_log needs a finite
/// normal x > 0; fast_exp needs |x| <= 700. The sampler satisfies both by
/// construction — uniforms are in [2^-53, 1], populations are positive.
#pragma once

#include <bit>
#include <cassert>
#include <cmath>

#include "common/types.hpp"

namespace kagen {

/// Series radius of fast_exp_small and switch point of fast_exp_auto.
inline constexpr double kSmallExpRadius = 0.0735;

/// Radius of the degree-3 tier of fast_exp_auto: |r|^4/24 < 5e-10 relative.
/// Method D's exponents are E/k with k in the thousands, so this tier is
/// the ~always-taken one; the quartic tail is orders of magnitude below the
/// distributional contract.
inline constexpr double kTinyExpRadius = 0.01;

/// Domain bound of neg_log1p; covers Method D's t = (k-1)/n < 1/13.
inline constexpr double kNegLog1pMax = 0.08;

namespace fastmath_detail {

/// Mantissa tables: recip[j] ~ 1/(1 + j/128) and logm[j] = -log(recip[j]),
/// so log(m) = logm[j] + log1p(m * recip[j] - 1) holds with the *rounded*
/// reciprocal — table rounding cancels instead of accumulating.
struct LogTables {
    double recip[128];
    double logm[128];
};

inline const LogTables kLogTables = [] {
    LogTables t{};
    for (int j = 0; j < 128; ++j) {
        t.recip[j] = 1.0 / (1.0 + static_cast<double>(j) / 128.0);
        t.logm[j]  = -std::log(t.recip[j]);
    }
    return t;
}();

} // namespace fastmath_detail

/// log(x) for finite normal x > 0. Division-free: table + degree-5 series.
inline double fast_log(double x) {
    assert(x > 0x1.0p-1000 && x < 0x1.0p1000 && "fast_log domain");
    const u64 bits = std::bit_cast<u64>(x);
    const auto e   = static_cast<double>(static_cast<i64>(bits >> 52) - 1023);
    const double m =
        std::bit_cast<double>((bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL);
    const int j    = static_cast<int>((bits >> 45) & 0x7f);
    const double g = m * fastmath_detail::kLogTables.recip[j] - 1.0; // [0, 1/128)
    const double gg  = g * g;
    // log1p(g) = g - g^2/2 + g^3/3 - g^4/4 + g^5/5 - ...; tail < 4e-14.
    const double l1p = g - 0.5 * gg +
                       gg * (g * (1.0 / 3.0) - gg * 0.25 + gg * g * 0.2);
    constexpr double kLn2 = 6.93147180559945309417e-01;
    return e * kLn2 + (fastmath_detail::kLogTables.logm[j] + l1p);
}

/// exp(x) for |x| <= 700 (well inside the normal range on both sides).
inline double fast_exp(double x) {
    assert(x > -700.0 && x < 700.0 && "fast_exp domain");
    // Range-reduce x = k*ln2 + r, |r| <= ln2/2, with ln2 split in two so
    // k*ln2 subtracts exactly; exp(r) by series; scale by 2^k in the
    // exponent field.
    constexpr double kLog2E  = 1.44269504088896340736;
    constexpr double kLn2Hi  = 6.93147180369123816490e-01;
    constexpr double kLn2Lo  = 1.90821492927058770002e-10;
    const double kd = static_cast<double>(static_cast<i64>(
        x * kLog2E + (x >= 0.0 ? 0.5 : -0.5)));
    const double r  = (x - kd * kLn2Hi) - kd * kLn2Lo;
    // Degree-8 series for exp(r), |r| <= 0.3466: tail < 3e-10 relative.
    double p = 1.0 / 40320.0;
    p        = p * r + 1.0 / 5040.0;
    p        = p * r + 1.0 / 720.0;
    p        = p * r + 1.0 / 120.0;
    p        = p * r + 1.0 / 24.0;
    p        = p * r + 1.0 / 6.0;
    p        = p * r + 0.5;
    p        = p * r + 1.0;
    p        = p * r + 1.0;
    const u64 scale = static_cast<u64>(static_cast<i64>(kd) + 1023) << 52;
    return p * std::bit_cast<double>(scale);
}

/// exp(r) for |r| <= kSmallExpRadius: bare degree-6 series, no reduction,
/// no scaling — the shortest latency path to U^(1/k) for large k.
inline double fast_exp_small(double r) {
    assert(r >= -kSmallExpRadius && r <= kSmallExpRadius && "fast_exp_small domain");
    double p = 1.0 / 720.0;
    p        = p * r + 1.0 / 120.0;
    p        = p * r + 1.0 / 24.0;
    p        = p * r + 1.0 / 6.0;
    p        = p * r + 0.5;
    p        = p * r + 1.0;
    p        = p * r + 1.0;
    return p;
}

/// exp(r) for |r| <= kTinyExpRadius: bare degree-3 series — the shortest
/// chain for the dominant Method-D case where exponents are E/k, k large.
inline double fast_exp_tiny(double r) {
    assert(r >= -kTinyExpRadius && r <= kTinyExpRadius && "fast_exp_tiny domain");
    return 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0)));
}

/// exp(x): shortest series that covers |x|, full reduction as last resort.
inline double fast_exp_auto(double x) {
    if (x > -kTinyExpRadius && x < kTinyExpRadius) [[likely]] {
        return fast_exp_tiny(x);
    }
    if (x > -kSmallExpRadius && x < kSmallExpRadius) {
        return fast_exp_small(x);
    }
    return fast_exp(x);
}

/// -log1p(-t) = log(1/(1-t)) for t in [0, kNegLog1pMax]: plain series
/// t + t^2/2 + ... + t^9/9; tail < 2e-11 relative at the domain edge.
inline double neg_log1p(double t) {
    assert(t >= 0.0 && t <= kNegLog1pMax && "neg_log1p domain");
    double p = 1.0 / 9.0;
    p        = p * t + 1.0 / 8.0;
    p        = p * t + 1.0 / 7.0;
    p        = p * t + 1.0 / 6.0;
    p        = p * t + 0.2;
    p        = p * t + 0.25;
    p        = p * t + 1.0 / 3.0;
    p        = p * t + 0.5;
    p        = p * t + 1.0;
    return p * t;
}

} // namespace kagen
