#include "variates/variates.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math.hpp"

namespace kagen {
namespace {

/// log(k!) - log(Stirling core): tail of the Stirling approximation,
/// tabulated for k <= 9 and continued by the asymptotic series above.
double stirling_tail(double k) {
    static constexpr double kTail[] = {
        0.0810614667953272,  0.0413406959554092,  0.0276779256849983,
        0.02079067210376509, 0.0166446911898211,  0.0138761288230707,
        0.0118967099458917,  0.0104112652619720,  0.00925546218271273,
        0.00833056343336287};
    if (k <= 9.0) return kTail[static_cast<int>(k)];
    const double kp1sq = (k + 1) * (k + 1);
    return (1.0 / 12 - (1.0 / 360 - 1.0 / 1260 / kp1sq) / kp1sq) / (k + 1);
}

/// Exact inversion along the pmf recurrence; requires n*p modest (the walk
/// length is O(n*p + sqrt(n*p))) and p <= 0.5.
u64 binomial_inversion(Rng& rng, u64 n, double p) {
    const double q = 1.0 - p;
    const double s = p / q;
    // P(X = 0) = q^n, computed in log space to avoid premature underflow.
    double f = std::exp(static_cast<double>(n) * std::log1p(-p));
    double u = rng.uniform();
    u64 k    = 0;
    double cdf = f;
    while (u > cdf && k < n) {
        ++k;
        f *= s * (static_cast<double>(n - k + 1) / static_cast<double>(k));
        cdf += f;
        if (f <= 0.0) break; // pmf underflow: all remaining mass ~ 0
    }
    return k;
}

/// BTRS transformed rejection (Hörmann 1993), expected O(1).
/// Requires p <= 0.5 and n*p >= 10.
u64 binomial_btrs(Rng& rng, u64 n, double p) {
    const double nd     = static_cast<double>(n);
    const double stddev = std::sqrt(nd * p * (1 - p));
    const double b      = 1.15 + 2.53 * stddev;
    const double a      = -0.0873 + 0.0248 * b + 0.01 * p;
    const double c      = nd * p + 0.5;
    const double v_r    = 0.92 - 4.2 / b;
    const double r      = p / (1 - p);
    const double alpha  = (2.83 + 5.1 / b) * stddev;
    const double m      = std::floor((nd + 1) * p);

    for (;;) {
        double u        = rng.uniform() - 0.5;
        double v        = rng.uniform();
        const double us = 0.5 - std::fabs(u);
        const double kd = std::floor((2 * a / us + b) * u + c);
        if (us >= 0.07 && v <= v_r) return static_cast<u64>(kd);
        if (kd < 0 || kd > nd) continue;
        v = std::log(v * alpha / (a / (us * us) + b));
        const double upper =
            (m + 0.5) * std::log((m + 1) / (r * (nd - m + 1))) +
            (nd + 1) * std::log((nd - m + 1) / (nd - kd + 1)) +
            (kd + 0.5) * std::log(r * (nd - kd + 1) / (kd + 1)) +
            stirling_tail(m) + stirling_tail(nd - m) - stirling_tail(kd) -
            stirling_tail(nd - kd);
        if (v <= upper) return static_cast<u64>(kd);
    }
}

/// Exact inversion over the hypergeometric support, walking the pmf
/// recurrence from the lower support bound. The support has
/// min(success, fail, n, total-n) + 1 points, so callers route here only
/// when that span is small. All pmf-start arithmetic runs in long double:
/// the lgamma terms reach ~1e16 for populations near 2^50 and their
/// *differences* are O(1), so the extra mantissa bits are load-bearing.
u64 hypergeometric_inversion(Rng& rng, double total, double success, double n) {
    const double fail = total - success;
    const double kmin = std::max(0.0, n - fail);
    const double kmax = std::min(n, success);
    // log pmf at kmin via lgamma:
    // p(k) = C(success, k) C(fail, n-k) / C(total, n)
    // lgamma_threadsafe, not std::lgammal: the latter races on the shared
    // libm `signgam` global under concurrent chunks (common/math.hpp).
    const long double logp0 =
        lgamma_threadsafe(static_cast<long double>(success) + 1) -
        lgamma_threadsafe(static_cast<long double>(kmin) + 1) -
        lgamma_threadsafe(static_cast<long double>(success - kmin) + 1) +
        lgamma_threadsafe(static_cast<long double>(fail) + 1) -
        lgamma_threadsafe(static_cast<long double>(n - kmin) + 1) -
        lgamma_threadsafe(static_cast<long double>(fail - n + kmin) + 1) -
        (lgamma_threadsafe(static_cast<long double>(total) + 1) -
         lgamma_threadsafe(static_cast<long double>(n) + 1) -
         lgamma_threadsafe(static_cast<long double>(total - n) + 1));
    double f   = static_cast<double>(std::exp(logp0));
    double u   = rng.uniform();
    double k   = kmin;
    double cdf = f;
    while (u > cdf && k < kmax) {
        // p(k+1)/p(k) = (success-k)(n-k) / ((k+1)(fail-n+k+1))
        f *= (success - k) * (n - k) / ((k + 1) * (fail - n + k + 1));
        k += 1;
        cdf += f;
        if (f <= 0.0) break;
    }
    return static_cast<u64>(k);
}

/// HRUA* ratio-of-uniforms rejection, expected O(1) (Stadlober family; the
/// variant with Frohne's corrections). Parameters as doubles; see header
/// for the >2^53 caveat.
u64 hypergeometric_hrua(Rng& rng, double total, double success, double n) {
    constexpr double kD1 = 1.7155277699214135; // 2*sqrt(2/e)
    constexpr double kD2 = 0.8989161620588988; // 3 - 2*sqrt(3/e)

    const double bad        = total - success;
    const double mingoodbad = std::min(success, bad);
    const double maxgoodbad = std::max(success, bad);
    const double m          = std::min(n, total - n);

    // The acceptance quantity is a difference of lgamma sums whose absolute
    // magnitude grows with the population while the difference stays O(1);
    // long double keeps ~3 extra decimal digits, which keeps the sampler
    // unbiased for populations up to the 2^50 routing threshold.
    // signgam-free lgamma (common/math.hpp): std::lgammal writes the shared
    // libm global on every call, racing across worker threads.
    auto lgl = [](double v) {
        return lgamma_threadsafe(static_cast<long double>(v));
    };

    const double d4       = mingoodbad / total;
    const double d5       = 1.0 - d4;
    const double d6       = m * d4 + 0.5;
    const double d7       = std::sqrt((total - m) * m * d4 * d5 / (total - 1) + 0.5);
    const double d8       = kD1 * d7 + kD2;
    const double d9       = std::floor((m + 1) * (mingoodbad + 1) / (total + 2));
    const long double d10 = lgl(d9 + 1) + lgl(mingoodbad - d9 + 1) +
                            lgl(m - d9 + 1) + lgl(maxgoodbad - m + d9 + 1);
    const double d11 = std::min(m + 1.0, std::floor(d6 + 16 * d7));

    double z = 0;
    for (;;) {
        const double x = rng.uniform_pos();
        const double y = rng.uniform();
        const double w = d6 + d8 * (y - 0.5) / x;
        if (w < 0.0 || w >= d11) continue;
        z              = std::floor(w);
        const double t = static_cast<double>(
            d10 - (lgl(z + 1) + lgl(mingoodbad - z + 1) + lgl(m - z + 1) +
                   lgl(maxgoodbad - m + z + 1)));
        if (x * (4.0 - x) - 3.0 <= t) break;           // squeeze accept
        if (x * (x - t) >= 1.0) continue;              // squeeze reject
        if (2.0 * std::log(x) <= t) break;             // full acceptance test
    }
    if (success > bad) z = m - z;
    if (m < n) z = success - z;
    return static_cast<u64>(z);
}

} // namespace

u64 binomial(Rng& rng, u64 n, double p) {
    if (n == 0 || p <= 0.0) return 0;
    if (p >= 1.0) return n;
    if (p > 0.5) return n - binomial(rng, n, 1.0 - p);
    const double mean = static_cast<double>(n) * p;
    if (mean < 30.0) return binomial_inversion(rng, n, p);
    return binomial_btrs(rng, n, p);
}

u64 hypergeometric(Rng& rng, u128 total, u128 success, u64 n) {
    assert(success <= total);
    assert(n <= total);
    if (n == 0 || success == 0) return 0;
    if (success == total) return n;

    // Populations beyond ~2^50 exceed what even long double lgamma keeps
    // unbiased. There the sampling fraction n/total is astronomically small
    // for every call site in this library (a materialized sample of size n
    // bounds n), so the hypergeometric is replaced by its binomial limit —
    // the same fidelity cut the paper's GMP-backed stocc reimplementation
    // makes when it leaves exact-integer territory (see DESIGN.md).
    if (total > (u128{1} << 50)) {
        const double p = static_cast<double>(success) / static_cast<double>(total);
        const u64 kmax = static_cast<u128>(n) <= success ? n : static_cast<u64>(success);
        const u128 fail128 = total - success;
        const u64 kmin = static_cast<u128>(n) > fail128
                             ? n - static_cast<u64>(fail128)
                             : 0;
        return std::clamp(binomial(rng, n, p), kmin, kmax);
    }

    const u128 fail = total - success;
    const double td = static_cast<double>(total);
    const double sd = static_cast<double>(success);
    const double nd = static_cast<double>(n);
    const double fd = static_cast<double>(fail);

    // Support span = min(success, fail, n, total - n) + 1.
    const double span = std::min(std::min(sd, fd), std::min(nd, td - nd));
    if (span <= 256.0) return hypergeometric_inversion(rng, td, sd, nd);

    // Route through inversion as well when the walk from the support's lower
    // bound is short (mean - kmin small).
    const double mean = nd * sd / td;
    const double kmin = std::max(0.0, nd - fd);
    if (mean - kmin <= 256.0) return hypergeometric_inversion(rng, td, sd, nd);

    const u64 k = hypergeometric_hrua(rng, td, sd, nd);
    return std::min<u64>(k, n);
}

std::vector<u64> multinomial(Rng& rng, u64 n, std::span<const double> probs) {
    std::vector<u64> counts(probs.size(), 0);
    double remaining_p = 1.0;
    u64 remaining_n    = n;
    for (std::size_t i = 0; i + 1 < probs.size() && remaining_n > 0; ++i) {
        const double p = std::clamp(probs[i] / remaining_p, 0.0, 1.0);
        counts[i]      = binomial(rng, remaining_n, p);
        remaining_n -= counts[i];
        remaining_p = std::max(remaining_p - probs[i], 1e-300);
    }
    if (!probs.empty()) counts.back() = remaining_n;
    return counts;
}

} // namespace kagen
