/// \file variates.hpp
/// \brief Non-uniform random variates (binomial, hypergeometric, multinomial).
///
/// From-scratch replacement for the `stocc` library used by the paper (§8.1).
/// Small-parameter cases use exact inversion along the pmf recurrence; large
/// cases use acceptance-rejection samplers with expected O(1) cost:
///   * binomial       — BTRS transformed rejection (Hörmann 1993),
///   * hypergeometric — HRUA* ratio-of-uniforms (Stadlober 1989 family).
/// All samplers draw exclusively from the caller's `Rng`, so a hash-seeded
/// `Rng` yields fully reproducible variates across PEs.
///
/// Universe sizes may exceed 2^64 (undirected adjacency matrices); the
/// hypergeometric sampler therefore accepts 128-bit population parameters.
/// Populations beyond 2^53 lose exact integer resolution in the internal
/// double arithmetic — the same trade-off the original KaGen makes when its
/// GMP-backed path falls back to floating point (documented in DESIGN.md).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "prng/rng.hpp"

namespace kagen {

/// Number of successes among `n` independent trials of probability `p`.
u64 binomial(Rng& rng, u64 n, double p);

/// Number of "successes" when drawing `n` items without replacement from a
/// population of `total` items containing `success` successes.
/// Requires success <= total and n <= total.
u64 hypergeometric(Rng& rng, u128 total, u128 success, u64 n);

/// Splits `n` into `probs.size()` buckets with the given probabilities
/// (which must sum to ~1); returned counts sum to exactly `n`.
std::vector<u64> multinomial(Rng& rng, u64 n, std::span<const double> probs);

} // namespace kagen
