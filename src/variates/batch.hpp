/// \file batch.hpp
/// \brief Block-refilled uniform / exponential variate buffers (sampler v2).
///
/// The v1 skip loop draws one uniform at a time and pays the full scalar
/// cost per draw: a SplitMix64 step whose mix chain serializes on the
/// previous state, plus a libm call per transcendental. This buffer
/// amortizes both. `Rng::fill_uniform_pos` writes a whole block with a
/// counter-based, dependency-free loop (auto-vectorizes), and the
/// exponential block is produced by the fused counter->-log(U) kernel of
/// variates/exp_fill.hpp — so by the time the skip recurrence asks for a
/// variate, the transcendental work has already happened at vector
/// throughput instead of one scalar call per skip.
///
/// Determinism: a BatchedVariates over a chunk-seeded Rng is a pure
/// function of (seed, consumption sequence). Both owners of a duplicated
/// chunk run the identical v2 sampler code, hence consume in the same
/// order and see identical variates — the communication-free
/// recomputation contract (DESIGN.md §2) holds for v2 exactly as for v1.
/// The *stream mapping* differs from scalar draws (uniforms and
/// exponentials pull interleaved blocks from one underlying Rng), which is
/// why v2 is output-changing and lives behind Config::sampler_version.
///
/// Block size: 256 doubles = 2 KiB per buffer, comfortably L1-resident
/// alongside the sampler's working set while long enough that the refill
/// loop's vector throughput dominates its ramp-up.
#pragma once

#include <cstddef>

#include "prng/rng.hpp"
#include "variates/exp_fill.hpp"
#include "variates/fast_math.hpp"

namespace kagen {

class BatchedVariates {
public:
    /// Borrows `rng`; the caller keeps it alive and must not interleave its
    /// own draws with buffered ones if reproducibility matters.
    explicit BatchedVariates(Rng& rng) : rng_(&rng) {}

    /// Next uniform in (0, 1].
    double uniform_pos() {
        if (uni_pos_ == kBlock) refill_uniform();
        return uni_[uni_pos_++];
    }

    /// Next Exp(1) variate, i.e. -log(U) with U in (0, 1].
    double exponential() {
        if (exp_pos_ == kBlock) refill_exponential();
        return exp_[exp_pos_++];
    }

private:
    static constexpr std::size_t kBlock = 256;

    void refill_uniform() {
        rng_->fill_uniform_pos(uni_, kBlock);
        uni_pos_ = 0;
    }

    void refill_exponential() {
        fill_exponential(*rng_, exp_, kBlock);
        exp_pos_ = 0;
    }

    alignas(64) double uni_[kBlock];
    alignas(64) double exp_[kBlock];
    std::size_t uni_pos_ = kBlock;
    std::size_t exp_pos_ = kBlock;
    Rng* rng_;
};

} // namespace kagen
