/// \file exp_fill.hpp
/// \brief Fused bulk Exp(1) fill: counter -> mix -> uniform -> -log, one pass.
///
/// The batched-variate engine's refill cost is the v2 sampler's largest
/// throughput item (~2 exponentials per Method-D sample). A two-pass refill
/// (fill_uniform_pos, then -fast_log per element) costs ~6 ns/element at
/// baseline codegen because the table-indexed log kernel gathers, which
/// blocks vectorization. This header fuses the whole derivation into one
/// branchless, table-free loop — SplitMix64 mix, uniform conversion, and a
/// division-reduced atanh-series log — that the compiler vectorizes end to
/// end when the ISA allows. On AVX-512 (vpmullq for the 64-bit mixes,
/// vdivpd amortized 8-wide) the fused loop measures ~2.3 ns/element.
///
/// Dispatch: an AVX-512 clone is selected once per process via
/// __builtin_cpu_supports; every other build or machine takes the portable
/// scalar loop of the same arithmetic. Both paths evaluate the same
/// formula, but the vector clone is compiled with FMA contraction, so the
/// low bits of the results may differ across machines. That is inside the
/// v2 contract: v2 promises within-process determinism (both owners of a
/// duplicated chunk run the same clone) and distributional correctness
/// (rel. error vs libm < 2e-12, far below statistical resolution), not
/// cross-machine byte identity — which remains v1's job (DESIGN.md §10).
#pragma once

#include <bit>
#include <cstddef>

#include "common/types.hpp"
#include "prng/rng.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define KAGEN_EXP_FILL_AVX512 1
#endif

namespace kagen {

namespace expfill_detail {

/// out[i] = -log(U_i) with U_i in (0, 1] the uniform of draw base+(i+1).
/// log(x): split x = 2^e * m, fold m into [1/sqrt2, sqrt2) branchlessly,
/// then log(m) = 2*atanh(t) with t = (m-1)/(m+1), |t| <= 0.1716, by the
/// odd series through t^13 (abs error < 5e-13). One divide per element,
/// amortized across vector lanes; everything else is mul/add.
#define KAGEN_EXP_FILL_BODY                                                    \
    constexpr double kLn2   = 6.93147180559945309417e-01;                      \
    constexpr double kSqrt2 = 1.41421356237309514547;                          \
    for (std::size_t i = 0; i < n; ++i) {                                      \
        const u64 z    = Rng::mix64(base + (static_cast<u64>(i) + 1) *         \
                                               Rng::kStateGamma);              \
        const double u = 1.0 - static_cast<double>(z >> 11) * 0x1.0p-53;       \
        const u64 bits = std::bit_cast<u64>(u);                                \
        const double e =                                                       \
            static_cast<double>(static_cast<i64>(bits >> 52)) - 1023.0;       \
        const double m = std::bit_cast<double>(                                \
            (bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL);           \
        const bool adj  = m >= kSqrt2;                                         \
        const double ms = adj ? m * 0.5 : m;                                   \
        const double ed = adj ? e + 1.0 : e;                                   \
        const double t  = (ms - 1.0) / (ms + 1.0);                             \
        const double t2 = t * t;                                               \
        double p        = 1.0 / 13.0;                                          \
        p               = p * t2 + 1.0 / 11.0;                                 \
        p               = p * t2 + 1.0 / 9.0;                                  \
        p               = p * t2 + 1.0 / 7.0;                                  \
        p               = p * t2 + 0.2;                                        \
        p               = p * t2 + 1.0 / 3.0;                                  \
        p               = p * t2 + 1.0;                                        \
        out[i]          = -(ed * kLn2 + (2.0 * t) * p);                        \
    }

inline void fill_scalar(u64 base, double* out, std::size_t n) {
    KAGEN_EXP_FILL_BODY
}

#if KAGEN_EXP_FILL_AVX512
__attribute__((target("avx512f,avx512dq,avx512vl,fma"))) inline void
fill_avx512(u64 base, double* out, std::size_t n) {
    KAGEN_EXP_FILL_BODY
}
#endif

#undef KAGEN_EXP_FILL_BODY

} // namespace expfill_detail

/// Fills `out` with `n` Exp(1) variates, consuming `n` draws from `rng`
/// (state-compatible with n bits() calls). ISA-dispatched once per process.
inline void fill_exponential(Rng& rng, double* out, std::size_t n) {
    const u64 base = rng.reserve_block(n);
#if KAGEN_EXP_FILL_AVX512
    static const bool kHaveAvx512 = __builtin_cpu_supports("avx512dq") &&
                                    __builtin_cpu_supports("avx512vl");
    if (kHaveAvx512) {
        expfill_detail::fill_avx512(base, out, n);
        return;
    }
#endif
    expfill_detail::fill_scalar(base, out, n);
}

} // namespace kagen
