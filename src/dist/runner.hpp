/// \file runner.hpp
/// \brief Multi-process distributed backend: communication-free generation
///        across address spaces.
///
/// The paper's headline claim is that every PE generates its partition with
/// *zero* communication. The chunked engine (pe/pe.hpp) already validates
/// that in-process — every chunk is a pure function of (chunk, C, seed,
/// params) — but all "PEs" shared one address space, so nothing proved the
/// claim survives real process isolation. This runner makes it literal:
///
///  * The coordinator forks `num_ranks` worker *processes* and assigns each
///    a contiguous range of the canonical `C = total_chunks` (or K·P)
///    decomposition — the same `block_begin` split the in-process scheduler
///    uses for participants.
///  * Each worker runs `pe::run_chunked` over its chunk range into a
///    per-rank binary edge file plus local statistics sinks. Workers share
///    **nothing**: no memory writes, no locks, no messages — the only bytes
///    that ever cross a process boundary are one end-of-run stats frame per
///    worker (dist/ipc.hpp: serialized `pe::ChunkRunStats` + the mergeable
///    sink summaries of sink/sinks.hpp).
///  * The coordinator concatenates the per-rank files in canonical rank
///    order and merges the summaries. Because rank r's stream is exactly
///    the [block_begin(C,R,r), block_begin(C,R,r+1)) slice of the canonical
///    chunk stream, the merged file is **byte-identical** to a
///    single-process `generate_chunked` run into a `BinaryFileSink` — for
///    every (ranks, P, K) combination and under both edge semantics
///    (exact-once output stays exact-once: the PR-2 ownership filters are
///    per-chunk pure functions and never cared which process runs them).
///
/// Failure containment: a worker that throws reports the message through
/// its stats pipe and exits nonzero; a worker that crashes is detected via
/// EOF + waitpid status. Either way `generate_distributed` throws a
/// descriptive error naming the rank, removes every partial rank/output
/// file, and never hangs. See DESIGN.md §8 and tests/test_dist.cpp.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dist/ipc.hpp"

namespace kagen {

struct Config; // kagen.hpp (which includes this header after defining it)

namespace dist {

/// Execution shape of a distributed run.
struct DistOptions {
    u64 num_ranks = 0;        ///< worker processes; 0 = 1 here — the
                              ///< `kagen::generate_distributed` facade maps
                              ///< 0 to `Config::num_processes` before calling
    u64 num_pes   = 0;        ///< simulated PEs P of the decomposition
                              ///< (C = chunks_per_pe·P unless total_chunks
                              ///< pins it); 0 = num_ranks. The graph depends
                              ///< only on C — identical to a single-process
                              ///< run with the same (P, K).
    u64 threads_per_rank = 1; ///< pool threads inside each worker (each
                              ///< worker builds its own private pool; the
                              ///< forked child never touches the parent's)

    std::string output_path;  ///< merged binary edge file (graph/io format);
                              ///< empty = stats-only run, no files at all
    std::string scratch_dir;  ///< per-rank file location; empty = $TMPDIR
    bool keep_rank_files = false; ///< keep the per-rank files after the merge
                                  ///< (they live in scratch_dir / $TMPDIR as
                                  ///< kagen_dist.<pid>.<run>.rank<r>.bin; see
                                  ///< DistResult::ranks for what each holds)

    bool degree_stats = false; ///< also collect + merge per-vertex degrees
                               ///< (O(n) per worker and per frame)

    std::string dedup_path;   ///< non-empty: run em::sort_dedup_file over the
                              ///< merged output into this file (canonical
                              ///< deduplicated edge set for as_generated runs)
    u64 sort_memory = u64{64} << 20; ///< memory budget of that dedup sort

    /// Test instrumentation: invoked inside each worker process right after
    /// the fork, before any generation. Lets tests inject rank-targeted
    /// faults (throw, _exit, raise) to pin the failure-propagation contract.
    /// Inherited across fork by memory image; must not rely on threads.
    std::function<void(u64 rank)> rank_hook;
};

/// Coordinator-side view of a finished distributed run.
struct DistResult {
    u64 n          = 0; ///< global vertex count
    u64 num_chunks = 0; ///< canonical chunks C of the decomposition
    u64 num_ranks  = 0; ///< worker processes forked

    double seconds          = 0.0; ///< slowest rank's makespan (the
                                   ///< distributed job's critical path)
    u64 peak_buffered_bytes = 0;   ///< max over ranks
    u64 spilled_chunks      = 0;   ///< summed over ranks
    u64 spilled_bytes       = 0;   ///< summed over ranks
    u64 buffers_recycled    = 0;   ///< summed over ranks (chunk-buffer pool)

    u64 edges_written = 0; ///< edges in the merged output file (0 = no file)
    u64 dedup_edges   = 0; ///< unique edges after the optional dedup pass

    // Coordinator merge accounting (DESIGN.md §9): how the rank files'
    // payload bytes reached the merged output.
    u64 merged_bytes          = 0; ///< rank-file payload bytes concatenated
    u64 copy_file_range_bytes = 0; ///< of those, moved kernel-side via
                                   ///< copy_file_range (the rest went
                                   ///< through the read/write fallback)

    /// Whether the kernel-side zero-copy path carried the whole merge.
    bool copy_file_range_used() const {
        return merged_bytes > 0 && copy_file_range_bytes == merged_bytes;
    }

    CountingSummary count;       ///< merged counting summary (all ranks)
    bool has_degrees = false;    ///< degree summary collected and merged
    DegreeStatsSummary degrees;

    std::vector<RankReport> ranks; ///< per-rank reports, rank order
};

/// Runs `cfg`'s graph across `opts.num_ranks` forked worker processes and
/// merges their outputs; see the file comment for the protocol and the
/// byte-identity guarantee. Throws on invalid options and on any rank
/// failure (descriptive, no hang, no partial files left behind).
DistResult run_distributed(const Config& cfg, const DistOptions& opts);

/// One rank's share of a distributed run, transport-agnostic: everything a
/// worker needs to know to execute its chunk range, however the job reached
/// it (inherited across a fork here, or decoded from a TCP job frame in
/// net/worker.cpp).
struct RankJob {
    u64 rank        = 0;
    u64 num_chunks  = 0; ///< canonical chunk count C of the decomposition
    u64 chunk_begin = 0; ///< contiguous range [chunk_begin, chunk_end) to run
    u64 chunk_end   = 0;
    u64 threads     = 1; ///< pool threads inside the worker (own pool)
    bool degree_stats = false;   ///< also collect the O(n) degree summary
    std::string rank_path;       ///< binary edge file to write; empty = stats only
};

/// Executes one rank job: runs `pe::run_chunked` over the job's chunk range
/// into the rank file (when requested) plus local statistics sinks, and
/// returns the finished RankReport (ok == true). The single rank-execution
/// core shared by the forked worker and the TCP worker — byte-identity of
/// both backends rests on them running literally this function. Throws on
/// any failure; the caller owns turning that into a failure report.
RankReport execute_rank_job(const Config& cfg, const RankJob& job);

} // namespace dist
} // namespace kagen
