#include "dist/runner.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/fileio.hpp"
#include "common/math.hpp"
#include "graph/em_sort.hpp"
#include "kagen.hpp"
#include "obs/trace.hpp"

namespace kagen::dist {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error("generate_distributed: " + what + ": " +
                             std::strerror(errno));
}

std::string scratch_base(const DistOptions& opt) {
    if (!opt.scratch_dir.empty()) return opt.scratch_dir;
    const char* tmpdir = std::getenv("TMPDIR");
    return tmpdir && *tmpdir ? tmpdir : "/tmp";
}

/// Distinguishes concurrent distributed runs of one coordinator process in
/// the rank-file names (the pid alone covers concurrent processes).
std::atomic<u64> g_run_counter{0};

/// Worker-side fan-out sink: forwards every batch to the rank's binary file
/// (when writing one) and to the local statistics sinks. With a file the
/// stream must be ordered (canonical chunk order is what makes rank-file
/// concatenation byte-identical to the single-process run); without one the
/// statistics sinks take concurrent delivery themselves, so the engine can
/// stream fully parallel.
class RankSink final : public EdgeSink {
public:
    RankSink(BinaryFileSink* file, CountingSink& count, DegreeStatsSink* degrees)
        : file_(file), count_(count), degrees_(degrees) {}

    bool ordered() const override { return file_ != nullptr; }

protected:
    void consume(const Edge* edges, std::size_t count) override {
        if (file_ != nullptr) file_->deliver(edges, count);
        count_.deliver(edges, count);
        if (degrees_ != nullptr) degrees_->deliver(edges, count);
    }

private:
    BinaryFileSink* file_;
    CountingSink& count_;
    DegreeStatsSink* degrees_;
};

/// Everything a worker process does after the fork. Never returns: the
/// child must leave via _exit so it cannot run the coordinator's atexit
/// handlers or flush inherited stdio buffers twice.
[[noreturn]] void worker_main(const Config& cfg, const DistOptions& opt, u64 rank,
                              u64 num_chunks, u64 chunk_begin, u64 chunk_end,
                              const std::string& rank_path, int write_fd) {
    // A coordinator that died (or closed its read end after a decode
    // failure) must surface as EPIPE from the frame write — not kill the
    // worker with SIGPIPE before the error path can run.
    ::signal(SIGPIPE, SIG_IGN);
    RankReport report;
    report.rank        = rank;
    report.chunk_begin = chunk_begin;
    report.chunk_end   = chunk_end;
    int exit_code      = 0;
    // Telemetry request rides the inherited Config (fork shares the memory
    // image; the TCP twin gets the same bit via JobSpec::want_trace).
    const bool want_telemetry =
        !cfg.trace_path.empty() || !cfg.metrics_path.empty();
    obs::Snapshot obs_base;
    if (want_telemetry) obs_base = obs::begin_rank_telemetry();
    try {
        if (opt.rank_hook) opt.rank_hook(rank);

        RankJob job;
        job.rank         = rank;
        job.num_chunks   = num_chunks;
        job.chunk_begin  = chunk_begin;
        job.chunk_end    = chunk_end;
        job.threads      = opt.threads_per_rank;
        job.degree_stats = opt.degree_stats;
        job.rank_path    = rank_path;
        report           = execute_rank_job(cfg, job);
    } catch (const std::exception& e) {
        report.ok    = false;
        report.error = e.what();
        exit_code    = 1;
    } catch (...) {
        report.ok    = false;
        report.error = "unknown exception";
        exit_code    = 1;
    }
    try {
        write_frame(write_fd, serialize_report(report));
        if (want_telemetry) {
            // Second frame on the same pipe, version-free: the coordinator
            // reads it exactly when it asked for it. clock_base stays 0 —
            // fork workers share the machine's CLOCK_MONOTONIC, so their
            // timelines land on the coordinator clock with no offset.
            obs::RankTelemetry telemetry =
                obs::end_rank_telemetry(rank, obs_base);
            write_frame(write_fd, obs::serialize_telemetry(telemetry));
        }
    } catch (...) {
        exit_code = 1; // coordinator gone; nothing left to report to
    }
    // The process is about to _exit; the pipe fd dies with it either way.
    fileio::close_or_warn(write_fd, "stats pipe");
    ::_exit(exit_code);
}

struct Worker {
    pid_t pid = -1;
    std::unique_ptr<StatsPipe> pipe;
    std::string rank_path;
};

void remove_file(const std::string& path) {
    // Cleanup of partial/temporary files on failure paths: best effort.
    fileio::unlink_or_warn(path.c_str(), "partial output");
}

/// Human-readable death cause from a waitpid status.
std::string describe_status(int status) {
    if (WIFEXITED(status)) {
        return "exited with status " + std::to_string(WEXITSTATUS(status));
    }
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        return "killed by signal " + std::to_string(sig) + " (" +
               strsignal(sig) + ")";
    }
    return "ended with unrecognized wait status " + std::to_string(status);
}

int wait_for(pid_t pid) {
    int status = 0;
    for (;;) {
        if (::waitpid(pid, &status, 0) >= 0) return status;
        if (errno != EINTR) throw_errno("waitpid failed");
    }
}

/// Test/ops escape hatch: force the coordinator merge onto the userspace
/// read/write fallback (pins byte-identity of both paths in CI).
bool copy_file_range_disabled() {
    const char* v = std::getenv("KAGEN_DISABLE_COPY_FILE_RANGE");
    return v != nullptr && *v != '\0' && *v != '0';
}

/// Validates a rank file against the worker's report (header count and
/// exact byte size) and appends its payload to `out_fd` at its current
/// offset. Kernel-side zero-copy via fileio::copy_bytes (copy_file_range
/// with an EINTR-safe read/write fallback); both paths verify the full
/// payload length arrived, so a shrinking rank file still fails loudly.
fileio::CopyStats append_rank_file(int out_fd, const std::string& rank_path,
                                   u64 expected_edges) {
    const int fd = ::open(rank_path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) throw_errno("cannot reopen rank file '" + rank_path + "'");
    struct FdGuard {
        int fd;
        ~FdGuard() { fileio::close_or_warn(fd, "rank file"); }
    } guard{fd};

    u64 header = 0;
    if (!read_exact(fd, &header, sizeof(header))) {
        throw std::runtime_error("generate_distributed: rank file '" + rank_path +
                                 "' has no header");
    }
    if (header != expected_edges) {
        throw std::runtime_error(
            "generate_distributed: rank file '" + rank_path + "' header claims " +
            std::to_string(header) + " edges, worker reported " +
            std::to_string(expected_edges));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) throw_errno("fstat '" + rank_path + "'");
    const u64 expected_bytes = 8 + 16 * expected_edges;
    if (static_cast<u64>(st.st_size) != expected_bytes) {
        throw std::runtime_error(
            "generate_distributed: rank file '" + rank_path + "' is " +
            std::to_string(st.st_size) + " bytes, expected " +
            std::to_string(expected_bytes));
    }

    // read_exact advanced the offset past the header; the payload copy
    // continues from there.
    try {
        return fileio::copy_bytes(fd, out_fd, expected_bytes - 8,
                                  !copy_file_range_disabled());
    } catch (const std::exception& e) {
        throw std::runtime_error("generate_distributed: merging '" + rank_path +
                                 "': " + e.what());
    }
}

} // namespace

RankReport execute_rank_job(const Config& cfg, const RankJob& job) {
    RankReport report;
    report.rank        = job.rank;
    report.chunk_begin = job.chunk_begin;
    report.chunk_end   = job.chunk_end;

    std::unique_ptr<BinaryFileSink> file;
    if (!job.rank_path.empty()) {
        file = std::make_unique<BinaryFileSink>(
            job.rank_path, static_cast<std::size_t>(cfg.sink_buffer_edges));
    }
    CountingSink count(cfg.edge_semantics);
    std::unique_ptr<DegreeStatsSink> degrees;
    if (job.degree_stats) {
        degrees = std::make_unique<DegreeStatsSink>(num_vertices(cfg),
                                                    cfg.edge_semantics);
    }
    RankSink sink(file.get(), count, degrees.get());

    if (job.chunk_begin < job.chunk_end) {
        pe::ChunkOptions copt;
        copt.total_chunks       = job.num_chunks;
        copt.num_pes            = 1; // decomposition pinned by total_chunks
        copt.chunks_per_pe      = 1;
        copt.chunk_begin        = job.chunk_begin;
        copt.chunk_end          = job.chunk_end;
        copt.max_buffered_bytes = cfg.max_buffered_bytes;
        copt.arena_slab_bytes   = cfg.arena_slab_bytes;
        copt.pin_threads        = cfg.pin_threads;
        copt.deal_granularity   = chunk_deal_granularity(cfg);
        if (!cfg.spill_path.empty()) {
            // Each rank needs its own scratch file, not a shared name.
            copt.spill_path = cfg.spill_path + ".rank" + std::to_string(job.rank);
        }
        // A forked child must never run a parallel section on a pool born in
        // another process, and a TCP worker wants its pool sized to the job:
        // threads == 1 keeps run_chunked on the inline path; more threads
        // get a pool born in *this* process, scoped to this job.
        std::unique_ptr<pe::ThreadPool> pool;
        copt.threads = std::max<u64>(job.threads, 1);
        if (copt.threads > 1) {
            pool      = std::make_unique<pe::ThreadPool>(copt.threads - 1);
            copt.pool = pool.get();
        }
        report.stats = pe::run_chunked(
            copt,
            [&cfg](u64 chunk, u64 total, EdgeSink& chunk_sink) {
                generate(cfg, chunk, total, chunk_sink);
            },
            sink);
    }

    sink.finish();
    if (file) {
        file->finish();
        report.file_edges = file->num_edges();
    }
    count.finish();
    if (degrees) degrees->finish();
    report.count = count.summarize();
    if (degrees) {
        report.has_degrees = true;
        report.degrees     = degrees->summarize();
    }
    return report;
}

DistResult run_distributed(const Config& cfg, const DistOptions& opts) {
    DistOptions opt = opts;
    if (opt.num_ranks == 0) opt.num_ranks = 1;
    if (opt.num_pes == 0) opt.num_pes = opt.num_ranks;
    if (opt.threads_per_rank == 0) opt.threads_per_rank = 1;
    if (cfg.chunks_per_pe == 0) {
        throw std::invalid_argument(
            "generate_distributed: chunks_per_pe must be >= 1");
    }
    if (!opt.dedup_path.empty() && opt.output_path.empty()) {
        throw std::invalid_argument(
            "generate_distributed: dedup_path requires output_path");
    }

    DistResult result;
    result.n = num_vertices(cfg); // validates the config before any fork
    result.num_chunks =
        cfg.total_chunks != 0 ? cfg.total_chunks : cfg.chunks_per_pe * opt.num_pes;
    result.num_ranks = opt.num_ranks;

    const bool want_file = !opt.output_path.empty();
    const bool want_telemetry =
        !cfg.trace_path.empty() || !cfg.metrics_path.empty();
    const std::string scratch =
        scratch_base(opt) + "/kagen_dist." + std::to_string(::getpid()) + "." +
        std::to_string(g_run_counter.fetch_add(1)) + ".rank";

    // Fork the fleet. Flush stdio first: the children inherit the parent's
    // FILE buffers, and although they always leave via _exit (which does
    // not flush), any library printf inside the worker must not re-emit
    // buffered coordinator output.
    std::fflush(stdout);
    std::fflush(stderr);
    std::vector<Worker> workers(opt.num_ranks);
    auto cleanup_rank_files = [&] {
        if (opt.keep_rank_files) return;
        for (const auto& w : workers) remove_file(w.rank_path);
    };
    for (u64 r = 0; r < opt.num_ranks; ++r) {
        Worker& w = workers[r];
        if (want_file) w.rank_path = scratch + std::to_string(r) + ".bin";
        w.pipe             = std::make_unique<StatsPipe>();
        const u64 lo       = block_begin(result.num_chunks, opt.num_ranks, r);
        const u64 hi       = block_begin(result.num_chunks, opt.num_ranks, r + 1);
        const pid_t pid    = ::fork();
        if (pid == 0) {
            // Worker process. Only rank r's pipe write end matters; the
            // read ends inherited from earlier ranks are harmless (the
            // coordinator holds its own copies) and all fds are O_CLOEXEC.
            w.pipe->close_read();
            worker_main(cfg, opt, r, result.num_chunks, lo, hi, w.rank_path,
                        w.pipe->write_fd()); // never returns
        }
        if (pid < 0) {
            const int err = errno;
            // Abort the ranks already running; their pipes break and they
            // die on their own, but be prompt about it.
            for (u64 k = 0; k < r; ++k) {
                ::kill(workers[k].pid, SIGKILL);
                wait_for(workers[k].pid);
            }
            cleanup_rank_files();
            errno = err;
            throw_errno("fork failed for rank " + std::to_string(r));
        }
        w.pid = pid;
        w.pipe->close_write(); // worker death must read as EOF
    }

    // Arm the coordinator's own telemetry only now: events recorded before
    // the fork loop would be duplicated into every child's inherited
    // buffers, and the coordinator's interesting spans (merge, em_sort) all
    // happen after this point anyway.
    obs::Snapshot obs_base;
    struct ObsGuard {
        bool active = false;
        ~ObsGuard() {
            if (active) obs::TraceRecorder::global().enable(false);
        }
    } obs_guard;
    if (want_telemetry) {
        obs_base         = obs::begin_rank_telemetry();
        obs_guard.active = true;
    }

    // Collect one report per rank (rank order; each worker blocks at most
    // on its own frame write, so there is no circular wait), then reap.
    std::vector<RankReport> reports(opt.num_ranks);
    std::vector<obs::RankTelemetry> telemetry;
    std::string failure;
    for (u64 r = 0; r < opt.num_ranks; ++r) {
        Worker& w = workers[r];
        reports[r].rank = r;
        try {
            std::vector<u8> payload;
            if (read_frame(w.pipe->read_fd(), payload)) {
                reports[r] = deserialize_report(payload);
                if (reports[r].rank != r) {
                    reports[r].ok    = false;
                    reports[r].error = "report carries wrong rank id " +
                                       std::to_string(reports[r].rank);
                    reports[r].rank = r;
                }
                if (want_telemetry) {
                    // The optional second frame. A worker that died between
                    // frames surfaces as a torn/absent frame; the run
                    // continues (telemetry is best-effort), the wait status
                    // below still attributes the death.
                    std::vector<u8> tpayload;
                    if (read_frame(w.pipe->read_fd(), tpayload)) {
                        telemetry.push_back(obs::deserialize_telemetry(tpayload));
                    }
                }
            } else {
                reports[r].ok    = false;
                reports[r].error = "died before reporting";
            }
        } catch (const std::exception& e) {
            reports[r].ok    = false;
            reports[r].error = e.what();
        }
        w.pipe->close_read();

        const int status = wait_for(w.pid);
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if ((!clean || !reports[r].ok) && failure.empty()) {
            failure = "rank " + std::to_string(r) + " " + describe_status(status);
            if (!reports[r].ok && !reports[r].error.empty()) {
                failure += ": " + reports[r].error;
            }
        }
    }
    if (!failure.empty()) {
        cleanup_rank_files();
        throw std::runtime_error("generate_distributed: " + failure);
    }

    // Merge: summaries first (pure arithmetic), then the rank files in
    // canonical rank order. Rank 0's summaries seed the merge (they carry
    // the semantics/n tags the checks compare against); the scalar fields
    // fold from their zero-initialized defaults. Per-rank degree vectors
    // are released as they are merged — keeping them would make the result
    // O(n·ranks) where only the merged O(n) vector is wanted.
    result.count       = reports[0].count;
    result.has_degrees = opt.degree_stats;
    if (opt.degree_stats) result.degrees = std::move(reports[0].degrees);
    u64 total_edges = 0;
    for (u64 r = 0; r < opt.num_ranks; ++r) {
        RankReport& rep = reports[r];
        if (r > 0) {
            result.count.merge(rep.count);
            if (opt.degree_stats) result.degrees.merge(rep.degrees);
        }
        std::vector<u64>().swap(rep.degrees.degrees);
        total_edges += rep.file_edges;
        result.seconds = std::max(result.seconds, rep.stats.seconds);
        result.peak_buffered_bytes =
            std::max(result.peak_buffered_bytes, rep.stats.peak_buffered_bytes);
        result.spilled_chunks += rep.stats.spilled_chunks;
        result.spilled_bytes += rep.stats.spilled_bytes;
        result.buffers_recycled += rep.stats.buffers_recycled;
    }
    result.ranks = std::move(reports);

    if (want_file) {
        try {
            // Raw descriptor end to end: the header is one checked
            // write_all and the payload concatenation is kernel-side
            // (fileio::copy_bytes), so there is no stdio buffer whose error
            // state could swallow a failed write — every byte is either
            // acknowledged by the kernel or throws here.
            const int out_fd = ::open(opt.output_path.c_str(),
                                      O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
            if (out_fd < 0) {
                throw_errno("cannot open output '" + opt.output_path + "'");
            }
            try {
                fileio::write_all(out_fd, &total_edges, sizeof(total_edges));
                for (u64 r = 0; r < opt.num_ranks; ++r) {
                    const obs::Span span(obs::Phase::merge, r);
                    const fileio::CopyStats copied = append_rank_file(
                        out_fd, workers[r].rank_path, result.ranks[r].file_edges);
                    result.merged_bytes += copied.bytes_copied;
                    result.copy_file_range_bytes += copied.cfr_bytes;
                }
                obs::Registry& reg = obs::Registry::global();
                reg.counter("dist.merged_bytes").add(result.merged_bytes);
                reg.counter("dist.copy_file_range_bytes")
                    .add(result.copy_file_range_bytes);
            } catch (...) {
                fileio::close_or_warn(out_fd, "merged output (error unwind)");
                throw;
            }
            // Close outside the try: close(2) releases the descriptor even
            // when it reports an error, so the catch block above must never
            // see an already-released (possibly recycled) fd.
            if (::close(out_fd) != 0) {
                throw_errno("cannot close output '" + opt.output_path + "'");
            }
            result.edges_written = total_edges;
        } catch (...) {
            remove_file(opt.output_path);
            cleanup_rank_files();
            throw;
        }
        cleanup_rank_files();

        if (!opt.dedup_path.empty()) {
            try {
                const em::SortStats sorted = em::sort_dedup_file(
                    opt.output_path, opt.dedup_path, opt.sort_memory);
                result.dedup_edges = sorted.output_edges;
            } catch (...) {
                remove_file(opt.dedup_path);
                throw;
            }
        }
    }

    if (want_telemetry) {
        // The coordinator is one more timeline: pid num_ranks, holding the
        // merge/em_sort spans. Fork workers share CLOCK_MONOTONIC with it,
        // so every offset is 0 — the merged trace is already aligned.
        obs::RankTelemetry own = obs::end_rank_telemetry(opt.num_ranks, obs_base);
        obs_guard.active       = false;
        if (!cfg.trace_path.empty()) {
            std::vector<obs::RankTimeline> timelines;
            timelines.reserve(telemetry.size() + 1);
            for (obs::RankTelemetry& t : telemetry) {
                obs::RankTimeline tl;
                tl.rank   = t.rank;
                tl.label  = "rank " + std::to_string(t.rank);
                tl.events = std::move(t.events);
                timelines.push_back(std::move(tl));
            }
            obs::RankTimeline coord;
            coord.rank   = opt.num_ranks;
            coord.label  = "coordinator";
            coord.events = std::move(own.events);
            timelines.push_back(std::move(coord));
            obs::write_chrome_trace(cfg.trace_path, timelines);
        }
        if (!cfg.metrics_path.empty()) {
            obs::Snapshot merged = own.metrics;
            for (const obs::RankTelemetry& t : telemetry) {
                merged.merge(t.metrics);
            }
            obs::write_metrics_file(cfg.metrics_path, merged);
        }
    }
    return result;
}

} // namespace kagen::dist
