#include "dist/ipc.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "common/bytes.hpp"
#include "common/fileio.hpp"

namespace kagen::dist {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error("dist ipc: " + what + ": " + std::strerror(errno));
}

void write_all(int fd, const void* data, std::size_t bytes) {
    const char* p = static_cast<const char*>(data);
    while (bytes > 0) {
        const ssize_t n = ::write(fd, p, bytes);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("pipe write failed");
        }
        p += n;
        bytes -= static_cast<std::size_t>(n);
    }
}

void put_chunk_run_stats(std::vector<u8>& out, const pe::ChunkRunStats& s) {
    bytes::put_u64(out, s.num_chunks);
    bytes::put_u64(out, s.workers);
    bytes::put_f64(out, s.seconds);
    bytes::put_u64(out, s.peak_buffered_bytes);
    bytes::put_u64(out, s.spilled_chunks);
    bytes::put_u64(out, s.spilled_bytes);
    bytes::put_u64(out, s.buffers_recycled);
    bytes::put_u64(out, s.buffers_allocated);
}

pe::ChunkRunStats get_chunk_run_stats(const u8*& p, const u8* end) {
    pe::ChunkRunStats s;
    s.num_chunks          = bytes::get_u64(p, end);
    s.workers             = bytes::get_u64(p, end);
    s.seconds             = bytes::get_f64(p, end);
    s.peak_buffered_bytes = bytes::get_u64(p, end);
    s.spilled_chunks      = bytes::get_u64(p, end);
    s.spilled_bytes       = bytes::get_u64(p, end);
    s.buffers_recycled    = bytes::get_u64(p, end);
    s.buffers_allocated   = bytes::get_u64(p, end);
    return s;
}

} // namespace

std::vector<u8> serialize_report(const RankReport& report) {
    std::vector<u8> out;
    bytes::put_u64(out, report.rank);
    bytes::put_u64(out, report.ok ? 1 : 0);
    if (!report.ok) {
        bytes::put_string(out, report.error);
        return out;
    }
    put_chunk_run_stats(out, report.stats);
    bytes::put_u64(out, report.chunk_begin);
    bytes::put_u64(out, report.chunk_end);
    bytes::put_u64(out, report.file_edges);
    report.count.serialize(out);
    bytes::put_u64(out, report.has_degrees ? 1 : 0);
    if (report.has_degrees) report.degrees.serialize(out);
    return out;
}

RankReport deserialize_report(const std::vector<u8>& payload) {
    const u8* p   = payload.data();
    const u8* end = p + payload.size();
    RankReport report;
    report.rank = bytes::get_u64(p, end);
    report.ok   = bytes::get_u64(p, end) != 0;
    if (!report.ok) {
        report.error = bytes::get_string(p, end);
        return report;
    }
    report.stats       = get_chunk_run_stats(p, end);
    report.chunk_begin = bytes::get_u64(p, end);
    report.chunk_end   = bytes::get_u64(p, end);
    report.file_edges  = bytes::get_u64(p, end);
    report.count       = CountingSummary::deserialize(p, end);
    report.has_degrees = bytes::get_u64(p, end) != 0;
    if (report.has_degrees) report.degrees = DegreeStatsSummary::deserialize(p, end);
    if (p != end) throw std::runtime_error("dist ipc: trailing bytes in report frame");
    return report;
}

StatsPipe::StatsPipe() {
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC) != 0) throw_errno("cannot create stats pipe");
    read_fd_  = fds[0];
    write_fd_ = fds[1];
}

StatsPipe::~StatsPipe() {
    close_read();
    close_write();
}

void StatsPipe::close_read() {
    // Pipe halves carry no durable data; a close error is a logic bug
    // (double close) worth a warning, never a recoverable condition.
    fileio::close_or_warn(read_fd_, "stats pipe (read half)");
    read_fd_ = -1;
}

void StatsPipe::close_write() {
    fileio::close_or_warn(write_fd_, "stats pipe (write half)");
    write_fd_ = -1;
}

bool read_exact(int fd, void* data, std::size_t bytes) {
    char* p          = static_cast<char*>(data);
    std::size_t done = 0;
    while (done < bytes) {
        const ssize_t n = ::read(fd, p + done, bytes - done);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("read failed");
        }
        if (n == 0) {
            if (done == 0) return false;
            // A torn frame / truncated file must not decode as a short one.
            throw std::runtime_error("dist ipc: unexpected EOF mid-read");
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

void write_frame(int fd, const std::vector<u8>& payload) {
    std::vector<u8> header;
    bytes::put_u64(header, kFrameMagic);
    bytes::put_u64(header, payload.size());
    write_all(fd, header.data(), header.size());
    if (!payload.empty()) write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::vector<u8>& payload) {
    u8 header[16];
    if (!read_exact(fd, header, sizeof(header))) return false;
    const u8* p    = header;
    const u8* end  = header + sizeof(header);
    const u64 magic = bytes::get_u64(p, end);
    const u64 size  = bytes::get_u64(p, end);
    if (magic != kFrameMagic) {
        throw std::runtime_error("dist ipc: bad frame magic");
    }
    if (size > kMaxFrameBytes) {
        throw std::runtime_error("dist ipc: implausible frame size " +
                                 std::to_string(size));
    }
    payload.resize(size);
    if (size > 0 && !read_exact(fd, payload.data(), size)) {
        throw std::runtime_error("dist ipc: torn frame (worker died mid-report)");
    }
    return true;
}

} // namespace kagen::dist
