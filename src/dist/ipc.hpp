/// \file ipc.hpp
/// \brief Coordinator ↔ worker stats pipe for the distributed runner.
///
/// The paper's generators need *zero* communication to produce the graph;
/// the only bytes that ever cross a process boundary in dist/ are a single
/// tiny end-of-run report per worker — its `pe::ChunkRunStats`, the edge
/// count of its rank file, and the mergeable sink summaries
/// (sink/sinks.hpp) — or, if the worker failed, the error message. This
/// header is that wire protocol: one anonymous pipe per worker, one framed
/// message per lifetime.
///
/// Frames are `[magic u64][payload bytes u64][payload]` with the payload in
/// the explicit little-endian layout of common/bytes.hpp. A worker that
/// dies before (or while) writing its frame is detected as a clean EOF /
/// truncation by `read_frame`, never as garbage decoded into a report —
/// the coordinator then attributes the failure from `waitpid` status.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "pe/pe.hpp"
#include "sink/sinks.hpp"

namespace kagen::dist {

/// Frame header constants, shared by the pipe transport here and the TCP
/// transport (net/socket.hpp): every frame is
/// `[kFrameMagic u64][payload bytes u64][payload]`, little-endian.
constexpr u64 kFrameMagic = 0x4b47444953545321ULL; // "KGDIST!" + version nibble

/// Sanity bound on a frame payload so a corrupt length field fails as a
/// protocol error, not an allocation attempt. A report is the fixed stats
/// fields plus at most one 8-bytes-per-vertex degree vector, so 2^37
/// (128 GiB) leaves room for degree summaries up to ~2^34 vertices —
/// far past what a single frame should ever carry in practice.
constexpr u64 kMaxFrameBytes = u64{1} << 37;

/// Everything one worker reports back to the coordinator.
struct RankReport {
    u64 rank = 0;

    /// Outcome: `ok == true` carries the stats below; `ok == false` carries
    /// only `error` (the worker caught an exception and exited nonzero).
    bool ok = true;
    std::string error;

    pe::ChunkRunStats stats;     ///< the rank's chunk-range run
    u64 chunk_begin = 0;         ///< canonical chunk range the rank executed
    u64 chunk_end   = 0;
    u64 file_edges  = 0;         ///< edges written to the rank file (0 = none)
    CountingSummary count;       ///< always collected (O(1) per worker)
    bool has_degrees = false;    ///< degree summary shipped (opt-in, O(n));
                                 ///< the coordinator releases the per-rank
                                 ///< degree vectors after merging, so in
                                 ///< DistResult::ranks only the merged
                                 ///< DistResult::degrees carries them
    DegreeStatsSummary degrees;
};

/// Serializes a report into the frame payload layout.
std::vector<u8> serialize_report(const RankReport& report);

/// Decodes a frame payload; throws std::runtime_error on malformed input.
RankReport deserialize_report(const std::vector<u8>& payload);

/// Anonymous pipe with both descriptors O_CLOEXEC. The coordinator keeps
/// the read end; the forked worker keeps the write end (fork inherits
/// descriptors regardless of CLOEXEC — the flag protects against *exec'd*
/// grandchildren, same policy as the sinks').
class StatsPipe {
public:
    StatsPipe();
    ~StatsPipe();

    StatsPipe(const StatsPipe&)            = delete;
    StatsPipe& operator=(const StatsPipe&) = delete;

    int read_fd() const { return read_fd_; }
    int write_fd() const { return write_fd_; }

    /// Role commitment after fork: the worker closes the read end, the
    /// coordinator closes the write end (so worker death yields EOF).
    void close_read();
    void close_write();

private:
    int read_fd_  = -1;
    int write_fd_ = -1;
};

/// Writes one frame; loops over partial writes/EINTR. Throws on I/O error
/// (e.g. the coordinator died and the pipe is broken).
void write_frame(int fd, const std::vector<u8>& payload);

/// Reads one frame into `payload`. Returns false on clean EOF before the
/// first byte (worker died without reporting); throws on a torn or
/// malformed frame.
bool read_frame(int fd, std::vector<u8>& payload);

/// Reads exactly `bytes` from `fd`, looping over EINTR and partial reads.
/// Returns false on EOF at offset 0; throws on EOF mid-buffer or I/O
/// error. Shared by the frame reader and the rank-file merge.
bool read_exact(int fd, void* data, std::size_t bytes);

} // namespace kagen::dist
