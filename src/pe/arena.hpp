/// \file arena.hpp
/// \brief Slab arena under the chunk pipeline: mmap-backed fixed-size slabs
///        with an O(1) freelist, chained chunk buffers, and a direct-emit
///        sink facade — zero malloc/free in the steady-state
///        emit→deliver→write loop (DESIGN.md §14).
///
/// Before the arena, every logical chunk materialized into a heap-grown
/// `std::vector<Edge>`: one allocation plus a doubling-reallocation cascade
/// per chunk, times K·P chunks, on every run. The arena replaces that with
/// fixed-size slabs reserved straight from the kernel (`mmap`, anonymous
/// private) and recycled through an intrusive freelist: after warm-up, a
/// chunk's entire lifetime — fill, park, deliver, recycle — touches the
/// allocator zero times. Chunks larger than one slab *chain* additional
/// slabs; nothing is ever `realloc`ed, so no edge is ever copied because a
/// buffer grew.
///
/// NUMA discipline: slabs are not pre-touched by default, so the first
/// writer — the pinned worker generating into the slab under `-pin-threads`
/// — faults the pages in and the kernel's first-touch policy places them on
/// that worker's node. `populate == true` opts into `MAP_POPULATE`
/// (pre-faulted on the constructing thread) for callers that prefer
/// predictable latency over locality.
///
/// Bounded-memory interaction: with `decommit_on_release`, a slab returning
/// to the freelist gives its payload pages back to the kernel
/// (`madvise(MADV_DONTNEED)`) while keeping the mapping — recycling (no
/// mmap/munmap churn, freelist hits still count) without retained capacity
/// that the spill window's budget accounting cannot see. The physical
/// footprint of a freelist slab is then one header page. See DESIGN.md §14
/// and the spill window in pe.cpp.
///
/// Exhaustion fallback: when `mmap` fails (or the test-only mapping cap is
/// reached), the arena falls back to one aligned heap allocation per slab —
/// identical layout and lifecycle, flagged for `operator delete` at arena
/// destruction. Output is unaffected; only the zero-malloc property of the
/// affected slabs is lost.
///
/// Thread-safety: `acquire`/`release` are safe from any thread (short
/// mutex around the freelist pointer swap — two lock acquisitions per
/// *chunk*, not per edge). A `ChunkBuffer` is single-writer, like a sink.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

#ifdef __linux__
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "common/types.hpp"
#include "graph/edge_list.hpp"
#include "sink/edge_sink.hpp"

namespace kagen::pe {

/// Header at the front of every slab; edge payload follows at
/// `kSlabHeaderBytes` so the first edge is cache-line aligned.
struct Slab {
    Slab* next    = nullptr; ///< chain link (in a buffer) or freelist link
    u64 count     = 0;       ///< committed edges
    u64 capacity  = 0;       ///< edge capacity of the payload
    bool heap     = false;   ///< heap-fallback slab (operator delete, not munmap)

    Edge* edges() {
        return reinterpret_cast<Edge*>(reinterpret_cast<char*>(this) + kHeaderBytes);
    }
    const Edge* edges() const {
        return reinterpret_cast<const Edge*>(
            reinterpret_cast<const char*>(this) + kHeaderBytes);
    }

    static constexpr u64 kHeaderBytes = 64;
};

/// Fixed-size slab arena with an O(1) intrusive freelist.
class SlabArena {
public:
    /// 1 MiB slabs: big enough that typical chunks fit one slab (the chain
    /// path stays rare), small enough that the one-slab minimum per live
    /// chunk is cheap at high worker counts.
    static constexpr u64 kDefaultSlabBytes = u64{1} << 20;
    /// Floor: header + at least one page of payload.
    static constexpr u64 kMinSlabBytes = 4096;

    /// \param slab_bytes  per-slab mapping size; 0 = kDefaultSlabBytes.
    ///        Values below kMinSlabBytes are clamped up.
    /// \param populate    pre-fault pages at mmap time (MAP_POPULATE)
    ///        instead of first-touch by the writing worker.
    /// \param decommit_on_release  return payload pages to the kernel when
    ///        a slab enters the freelist (bounded-memory mode).
    /// \param max_mapped_slabs  test hook: cap on kernel-backed slabs; past
    ///        it every acquire takes the heap-fallback path. 0 = no cap.
    explicit SlabArena(u64 slab_bytes = 0, bool populate = false,
                       bool decommit_on_release = false, u64 max_mapped_slabs = 0)
        : slab_bytes_(std::max(slab_bytes != 0 ? slab_bytes : kDefaultSlabBytes,
                               kMinSlabBytes)),
          capacity_edges_((slab_bytes_ - Slab::kHeaderBytes) / sizeof(Edge)),
          populate_(populate), decommit_(decommit_on_release),
          max_mapped_(max_mapped_slabs) {
        slabs_.reserve(16);
    }

    ~SlabArena() {
        // All ChunkBuffers must have released their chains by now; the
        // freelist plus any leaked chains are all reachable via slabs_.
        for (Slab* s : slabs_) {
            if (s->heap) {
                s->~Slab();
                ::operator delete(s, std::align_val_t{Slab::kHeaderBytes});
            } else {
#ifdef __linux__
                s->~Slab();
                ::munmap(s, slab_bytes_);
#else
                s->~Slab();
                ::operator delete(s, std::align_val_t{Slab::kHeaderBytes});
#endif
            }
        }
    }

    SlabArena(const SlabArena&)            = delete;
    SlabArena& operator=(const SlabArena&) = delete;

    /// An empty slab: freelist pop when available, fresh mapping otherwise.
    Slab* acquire() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (free_ != nullptr) {
                Slab* s = free_;
                free_   = s->next;
                s->next = nullptr;
                s->count = 0;
                ++freelist_hits_;
                return s;
            }
        }
        return map_slab();
    }

    /// Hands a single slab back to the freelist. O(1), no deallocation.
    void release(Slab* s) {
        if (s == nullptr) return;
        s->count = 0;
        decommit_payload(s);
        std::lock_guard<std::mutex> lock(mutex_);
        s->next = free_;
        free_   = s;
    }

    /// Releases a whole chain (follows `next` links).
    void release_chain(Slab* head) {
        while (head != nullptr) {
            Slab* next = head->next;
            head->next = nullptr;
            release(head);
            head = next;
        }
    }

    /// Called by ChunkBuffer when a chunk overflows one slab.
    void note_chain() {
        std::lock_guard<std::mutex> lock(mutex_);
        ++chains_;
    }

    u64 slab_bytes() const { return slab_bytes_; }
    u64 slab_capacity_edges() const { return capacity_edges_; }

    /// Slabs ever reserved (mmap + heap fallback).
    u64 slabs_reserved() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return slabs_.size();
    }
    /// Total bytes reserved across all slabs.
    u64 bytes_reserved() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return slabs_.size() * slab_bytes_;
    }
    /// Acquires served from the freelist (the recycling hit count).
    u64 freelist_hits() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return freelist_hits_;
    }
    /// Chunks that chained a second (or later) slab.
    u64 chains() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return chains_;
    }
    /// Slabs currently parked on the freelist.
    u64 freelist_size() const {
        std::lock_guard<std::mutex> lock(mutex_);
        u64 n = 0;
        for (Slab* s = free_; s != nullptr; s = s->next) ++n;
        return n;
    }
    /// Slabs served by the heap fallback (mmap failed or capped).
    u64 heap_fallbacks() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return heap_fallbacks_;
    }

private:
    Slab* map_slab() {
        void* mem = nullptr;
        bool heap = false;
#ifdef __linux__
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (max_mapped_ != 0 && mapped_ >= max_mapped_) heap = true;
        }
        if (!heap) {
            int flags = MAP_PRIVATE | MAP_ANONYMOUS;
#ifdef MAP_POPULATE
            if (populate_) flags |= MAP_POPULATE;
#endif
            mem = ::mmap(nullptr, slab_bytes_, PROT_READ | PROT_WRITE, flags, -1, 0);
            if (mem == MAP_FAILED && populate_) {
                // MAP_POPULATE can fail where plain anonymous maps succeed
                // (cgroup limits); locality is best-effort, retry without.
                mem = ::mmap(nullptr, slab_bytes_, PROT_READ | PROT_WRITE,
                             MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
            }
            if (mem == MAP_FAILED) {
                mem  = nullptr;
                heap = true; // graceful fallback below
            }
        }
#else
        heap = true;
#endif
        if (heap) {
            mem = ::operator new(slab_bytes_, std::align_val_t{Slab::kHeaderBytes});
        }
        Slab* s     = new (mem) Slab;
        s->capacity = capacity_edges_;
        s->heap     = heap;
        std::lock_guard<std::mutex> lock(mutex_);
        slabs_.push_back(s);
        if (heap) {
            ++heap_fallbacks_;
        } else {
            ++mapped_;
        }
        return s;
    }

    void decommit_payload(Slab* s) {
        if (!decommit_ || s->heap) return;
#ifdef __linux__
        // Keep the header page (the freelist link lives there); everything
        // past it goes back to the kernel. Reuse re-faults zero pages —
        // that is the price of the strict bounded-memory footprint, paid
        // per page, never per edge.
        const long page = ::sysconf(_SC_PAGESIZE);
        const u64 skip  = page > 0 ? static_cast<u64>(page) : 4096;
        if (slab_bytes_ > skip) {
            ::madvise(reinterpret_cast<char*>(s) + skip, slab_bytes_ - skip,
                      MADV_DONTNEED);
        }
#endif
    }

    mutable std::mutex mutex_;
    Slab* free_ = nullptr;       ///< intrusive freelist head
    std::vector<Slab*> slabs_;   ///< every slab ever reserved (for teardown)
    const u64 slab_bytes_;
    const u64 capacity_edges_;
    const bool populate_;
    const bool decommit_;
    const u64 max_mapped_;
    u64 mapped_         = 0;
    u64 freelist_hits_  = 0;
    u64 chains_         = 0;
    u64 heap_fallbacks_ = 0;
};

/// Arena-backed chunk payload: a chain of slabs borrowed from a SlabArena,
/// filled once, delivered as per-slab `EdgeSpan` segments, then released
/// back to the freelist. The fixed-capacity replacement for the hot path's
/// former `std::vector<Edge>` — appending never reallocates and never
/// copies an already-written edge; overflow chains a fresh slab instead.
/// Move-only; the destructor releases any held chain.
class ChunkBuffer {
public:
    ChunkBuffer() = default;
    explicit ChunkBuffer(SlabArena* arena) : arena_(arena) {}

    ChunkBuffer(ChunkBuffer&& other) noexcept
        : arena_(other.arena_), head_(other.head_), tail_(other.tail_),
          size_(other.size_) {
        other.head_ = other.tail_ = nullptr;
        other.size_ = 0;
    }
    ChunkBuffer& operator=(ChunkBuffer&& other) noexcept {
        if (this != &other) {
            release();
            arena_ = other.arena_;
            head_  = other.head_;
            tail_  = other.tail_;
            size_  = other.size_;
            other.head_ = other.tail_ = nullptr;
            other.size_ = 0;
        }
        return *this;
    }
    ChunkBuffer(const ChunkBuffer&)            = delete;
    ChunkBuffer& operator=(const ChunkBuffer&) = delete;

    ~ChunkBuffer() { release(); }

    u64 size() const { return size_; }
    bool empty() const { return size_ == 0; }
    u64 bytes() const { return size_ * sizeof(Edge); }

    u64 slabs_held() const {
        u64 n = 0;
        for (const Slab* s = head_; s != nullptr; s = s->next) ++n;
        return n;
    }

    /// Write position in the tail slab, guaranteed to have at least one
    /// free edge slot (chains a fresh slab when the tail is full). Lazily
    /// acquires the first slab — an untouched buffer holds none.
    Edge* write_ptr() {
        if (tail_ == nullptr || tail_->count == tail_->capacity) grow();
        return tail_->edges() + tail_->count;
    }

    /// Free edge slots at `write_ptr()` (0 when no slab is held yet).
    u64 write_capacity() const {
        return tail_ != nullptr ? tail_->capacity - tail_->count : 0;
    }

    /// Commits `n` edges previously written in place at `write_ptr()`.
    void commit(u64 n) {
        assert(tail_ != nullptr && tail_->count + n <= tail_->capacity);
        tail_->count += n;
        size_ += n;
    }

    /// Copy-appends a batch (the foreign-pointer path of `deliver`).
    void append(const Edge* edges, u64 n) {
        while (n > 0) {
            Edge* dst     = write_ptr();
            const u64 fit = std::min<u64>(n, tail_->capacity - tail_->count);
            std::copy(edges, edges + fit, dst);
            commit(fit);
            edges += fit;
            n -= fit;
        }
    }

    /// Visits the committed payload as per-slab contiguous segments, in
    /// emission order.
    template <typename F>
    void for_each_segment(F&& f) const {
        for (const Slab* s = head_; s != nullptr; s = s->next) {
            if (s->count != 0) f(EdgeSpan{s->edges(), s->count});
        }
    }

    /// Returns the whole chain to the arena and empties the buffer.
    void release() {
        if (head_ != nullptr && arena_ != nullptr) {
            arena_->release_chain(head_);
        }
        head_ = tail_ = nullptr;
        size_         = 0;
    }

private:
    void grow() {
        assert(arena_ != nullptr && "ChunkBuffer not bound to an arena");
        Slab* s = arena_->acquire();
        if (head_ == nullptr) {
            head_ = tail_ = s;
        } else {
            tail_->next = s;
            tail_       = s;
            arena_->note_chain();
        }
    }

    SlabArena* arena_ = nullptr;
    Slab* head_       = nullptr;
    Slab* tail_       = nullptr;
    u64 size_         = 0;
};

/// Per-chunk emit facade writing *directly into the chunk's slab chain*:
/// the sink's inline buffer is rebound to the tail slab's free space, so
/// `emit` stores each edge at its final resting place — no facade heap
/// buffer, no memcpy on flush, zero allocations per chunk. Construction
/// eagerly binds the first slab (freelist-served after warm-up).
///
/// `consume` distinguishes the two arrival paths by pointer identity: a
/// flush of the bound region is a pure count commit; a foreign batch
/// (`deliver` from a wrapping filter) is copy-appended. The two are never
/// interleaved mid-buffer by any engine caller (generators either emit or
/// deliver, see edge_sink.hpp).
class ArenaSink final : public EdgeSink {
public:
    explicit ArenaSink(ChunkBuffer& buf)
        : EdgeSink(nullptr, std::size_t{0}), buf_(&buf), bound_(nullptr) {
        bound_ = buf_->write_ptr(); // binds the first slab
        rebind_buffer(bound_, buf_->write_capacity());
    }

protected:
    void consume(const Edge* edges, std::size_t count) override {
        if (edges == bound_) {
            buf_->commit(count);
        } else {
            buf_->append(edges, count);
        }
        bound_ = buf_->write_ptr(); // chains a fresh slab when full
        rebind_buffer(bound_, buf_->write_capacity());
    }

private:
    ChunkBuffer* buf_;
    Edge* bound_; ///< region the inline buffer currently aliases
};

} // namespace kagen::pe
