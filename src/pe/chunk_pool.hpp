/// \file chunk_pool.hpp
/// \brief Recycling pool of chunk edge buffers for the ordered delivery
///        path of the chunked execution engine (DESIGN.md §9).
///
/// Before this pool, `pe::run_chunked` heap-allocated a fresh `EdgeList`
/// for every logical chunk and freed it after delivery: one malloc, a
/// doubling-growth reallocation cascade while the chunk filled, and one
/// free — per chunk, times K·P chunks. Recycling the buffers removes all
/// of it after warm-up: a released buffer keeps its capacity, so the next
/// chunk that acquires it appends with zero reallocations, and the
/// steady-state *payload* allocations of a run drop to at most
/// `max_retained` (plus parked buffers under completion skew). The small
/// fixed-size emit buffer of the per-chunk `MemorySink` facade remains
/// one allocation per chunk — constant-sized, never grown, and dwarfed by
/// a chunk's generation work.
///
/// Concurrency: producers acquire on their worker thread; the designated
/// drainer releases after sink delivery (possibly a different thread). The
/// free list is a mutex-guarded stack — two lock acquisitions per *chunk*
/// (vs. millions of per-edge operations), unmeasurable next to generation.
///
/// Interaction with the spill window: a retained buffer's capacity is
/// resident memory the `max_buffered_bytes` accounting cannot see, so
/// bounded-memory runs construct the pool with `max_retained == 0`
/// (release frees immediately) and keep the documented
/// "budget + one chunk" peak bound exact. See pe.cpp.
#pragma once

#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace kagen::pe {

class ChunkBufferPool {
public:
    /// \param max_retained buffers kept alive on the free list; releases
    ///        beyond it free their memory. 0 disables recycling entirely.
    explicit ChunkBufferPool(u64 max_retained) : max_retained_(max_retained) {}

    ChunkBufferPool(const ChunkBufferPool&)            = delete;
    ChunkBufferPool& operator=(const ChunkBufferPool&) = delete;

    /// An empty buffer: recycled (capacity preserved) when the free list
    /// has one, freshly default-constructed otherwise.
    EdgeList acquire() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!free_.empty()) {
                EdgeList buf = std::move(free_.back());
                free_.pop_back();
                ++recycled_;
                return buf;
            }
            ++allocated_;
        }
        return EdgeList{};
    }

    /// Hands a buffer back. Contents are discarded (cleared); capacity is
    /// retained while the free list is below `max_retained`, else the
    /// memory is released here.
    void release(EdgeList buf) {
        buf.clear();
        if (buf.capacity() == 0) return; // nothing worth keeping
        std::lock_guard<std::mutex> lock(mutex_);
        if (free_.size() < max_retained_) free_.push_back(std::move(buf));
        // else: `buf` frees on scope exit
    }

    /// Acquires that reused a retained buffer (the recycling hit count).
    u64 buffers_recycled() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return recycled_;
    }

    /// Acquires that had to default-construct a fresh buffer.
    u64 buffers_allocated() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return allocated_;
    }

    /// Buffers currently parked on the free list.
    u64 buffers_retained() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return free_.size();
    }

private:
    mutable std::mutex mutex_;
    std::vector<EdgeList> free_;
    const u64 max_retained_;
    u64 recycled_  = 0;
    u64 allocated_ = 0;
};

} // namespace kagen::pe
