/// \file chunk_pool.hpp
/// \brief Arena-backed chunk-buffer pool for the ordered delivery path of
///        the chunked execution engine (DESIGN.md §14).
///
/// `ChunkBufferPool` owns a `SlabArena` (pe/arena.hpp) and hands out
/// `ChunkBuffer`s — non-owning slab-chain views that replace the hot
/// path's former heap-grown `std::vector<Edge>` payloads. Acquiring a
/// buffer is free (the first slab binds lazily on first write); releasing
/// one returns its chain to the arena's O(1) freelist. After warm-up the
/// steady-state fill→park→deliver→recycle cycle of a chunk performs zero
/// malloc/free: slabs come off the freelist, overflow chains slabs instead
/// of reallocating, and delivery hands per-slab `EdgeSpan` segments to the
/// sink.
///
/// Bounded-memory mode (`decommit_on_release == true`): recycling stays on
/// — unlike the pre-arena design, which disabled the pool entirely because
/// a retained vector's capacity was resident memory the spill window's
/// budget accounting could not see. A decommitted freelist slab keeps its
/// mapping (so reuse is still mmap-free and counts as a freelist hit) but
/// returns its payload pages to the kernel, so the documented
/// "budget + one chunk" peak bound holds for physical memory too. See
/// arena.hpp and the spill window in pe.cpp.
///
/// Concurrency: producers acquire on their worker thread; the designated
/// drainer releases after sink delivery (possibly a different thread).
/// Both are two short freelist lock acquisitions per *chunk* (vs. millions
/// of per-edge operations), unmeasurable next to generation.
#pragma once

#include "common/types.hpp"
#include "pe/arena.hpp"

namespace kagen::pe {

class ChunkBufferPool {
public:
    /// \param slab_bytes per-slab size; 0 = SlabArena::kDefaultSlabBytes.
    /// \param populate   pre-fault slab pages (MAP_POPULATE) instead of
    ///        first-touch by the writing worker.
    /// \param decommit_on_release bounded-memory mode: released slabs give
    ///        their payload pages back to the kernel (see file comment).
    explicit ChunkBufferPool(u64 slab_bytes = 0, bool populate = false,
                             bool decommit_on_release = false)
        : arena_(slab_bytes, populate, decommit_on_release) {}

    ChunkBufferPool(const ChunkBufferPool&)            = delete;
    ChunkBufferPool& operator=(const ChunkBufferPool&) = delete;

    /// An empty arena-backed buffer. No slab is held until first write —
    /// acquiring is free; the per-chunk emit facade (`ArenaSink`) binds the
    /// first slab on construction, freelist-served after warm-up.
    ChunkBuffer acquire() { return ChunkBuffer(&arena_); }

    /// Explicit early release (the ChunkBuffer destructor does the same).
    void release(ChunkBuffer& buf) { buf.release(); }

    SlabArena& arena() { return arena_; }
    const SlabArena& arena() const { return arena_; }

    // Legacy-named accessors kept for ChunkRunStats continuity: a "buffer"
    // is now a slab.
    /// Slab acquires served from the freelist (the recycling hit count).
    u64 buffers_recycled() const { return arena_.freelist_hits(); }
    /// Slabs freshly reserved from the kernel (or heap fallback).
    u64 buffers_allocated() const { return arena_.slabs_reserved(); }
    /// Slabs currently parked on the freelist.
    u64 buffers_retained() const { return arena_.freelist_size(); }

private:
    SlabArena arena_;
};

} // namespace kagen::pe
