#include "pe/pe.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/math.hpp"
#include "obs/trace.hpp"
#include "pe/chunk_pool.hpp"
#include "sink/sinks.hpp"
#include "sink/spill.hpp"

namespace kagen::pe {
namespace {

/// True while the current thread executes inside a parallel section; nested
/// parallel_for calls then run inline instead of deadlocking on the pool.
thread_local bool t_inside_pool = false;

constexpr u64 kNoTask = ~u64{0};

/// One participant's task range. `next`/`end` are guarded by `m`; thieves
/// take the upper half of the remainder under the same lock, so every task
/// index is claimed exactly once.
struct StealRange {
    std::mutex m;
    u64 next = 0;
    u64 end  = 0;
};

struct Job {
    const std::function<void(u64)>* fn = nullptr;
    std::vector<std::unique_ptr<StealRange>> ranges;
    /// Affinity group size: steal split points prefer multiples of it, so
    /// groups of adjacent tasks migrate between workers as a unit.
    u64 granularity = 1;
    /// Task index of the first full group boundary: group starts sit at
    /// task == phase (mod granularity). Nonzero when the caller's task 0
    /// maps to an absolute id that is not group-aligned — a distributed
    /// rank whose chunk_begin is not a multiple of the group size.
    u64 grain_phase = 0;
    /// Participants that have left run_participant. The job owner may only
    /// reclaim the (stack-allocated) job once every participant has exited —
    /// "all tasks done" is not enough, late thieves still scan the ranges.
    std::atomic<u64> exited{0};
    /// First exception thrown by any task; rethrown on the submitting
    /// thread once the section has fully joined (a worker must never let an
    /// exception escape into worker_loop — that would std::terminate).
    std::mutex error_m;
    std::exception_ptr error;
    std::atomic<bool> cancelled{false};
};

/// RAII for the nesting flag: exceptions unwinding through a parallel
/// section must not leave the thread marked as inside the pool.
struct InsidePoolGuard {
    InsidePoolGuard() { t_inside_pool = true; }
    ~InsidePoolGuard() { t_inside_pool = false; }
};

u64 pop_own(StealRange& r) {
    std::lock_guard<std::mutex> lock(r.m);
    if (r.next >= r.end) return kNoTask;
    return r.next++;
}

/// Steals the upper half of the victim's remaining range into `self`
/// (which must be empty). Returns false if the victim had nothing.
bool steal_from(StealRange& victim, StealRange& self, u64 granularity,
                u64 grain_phase) {
    // Lock order by address: both directions of stealing may race.
    StealRange* first  = &victim < &self ? &victim : &self;
    StealRange* second = &victim < &self ? &self : &victim;
    std::lock_guard<std::mutex> l1(first->m);
    std::lock_guard<std::mutex> l2(second->m);
    if (self.next < self.end) return true; // someone refilled us meanwhile
    const u64 remaining = victim.end - victim.next;
    if (remaining == 0) return false;
    u64 take = (remaining + 1) / 2;
    if (granularity > 1) {
        // Affinity-aware split: move the cut up to the next group boundary
        // (group starts sit at phase mod granularity in task space, i.e.
        // at absolute-id multiples of the group size) so whole groups of
        // adjacent tasks change hands; keep the raw half when the victim's
        // tail is sub-group.
        const u64 cut  = victim.end - take;
        const u64 past = (cut + granularity - grain_phase) % granularity;
        const u64 aligned = past == 0 ? cut : cut + (granularity - past);
        if (aligned > victim.next && aligned < victim.end) {
            take = victim.end - aligned;
        }
    }
    self.next  = victim.end - take;
    self.end   = victim.end;
    victim.end = victim.end - take;
    return true;
}

/// Per-participant utilization, accumulated locally during the section and
/// flushed to the metrics registry once on exit — the hot loop never takes
/// the registry mutex, and per-worker counters survive as named
/// instruments (`pool.w007.busy_ns`) for the tool's `-v` report.
struct ParticipantStats {
    u64 busy_ns         = 0;
    u64 tasks           = 0;
    u64 steal_attempts  = 0;
    u64 steal_successes = 0;

    void flush(u64 self) {
        if (tasks == 0 && steal_attempts == 0) return;
        obs::Registry& reg = obs::Registry::global();
        char name[48];
        std::snprintf(name, sizeof(name), "pool.w%03llu.",
                      static_cast<unsigned long long>(self));
        const std::string prefix(name);
        reg.counter(prefix + "busy_ns").add(busy_ns);
        reg.counter(prefix + "tasks").add(tasks);
        reg.counter(prefix + "steal_attempts").add(steal_attempts);
        reg.counter(prefix + "steal_successes").add(steal_successes);
        reg.counter("pool.busy_ns").add(busy_ns);
        reg.counter("pool.tasks").add(tasks);
        reg.counter("pool.steal_attempts").add(steal_attempts);
        reg.counter("pool.steal_successes").add(steal_successes);
    }
};

void run_participant(Job& job, u64 self) {
    auto& mine = *job.ranges[self];
    ParticipantStats pstats;
    for (;;) {
        u64 task = pop_own(mine);
        if (task == kNoTask) {
            // Steal from the participant with the most remaining work.
            u64 best = kNoTask, best_remaining = 0;
            for (u64 v = 0; v < job.ranges.size(); ++v) {
                if (v == self) continue;
                auto& r = *job.ranges[v];
                std::lock_guard<std::mutex> lock(r.m);
                const u64 remaining = r.end - r.next;
                if (remaining > best_remaining) {
                    best_remaining = remaining;
                    best           = v;
                }
            }
            if (best == kNoTask) break; // no work anywhere: done
            ++pstats.steal_attempts;
            if (!steal_from(*job.ranges[best], mine, job.granularity,
                            job.grain_phase)) {
                continue;
            }
            ++pstats.steal_successes;
            {
                std::lock_guard<std::mutex> lock(mine.m);
                obs::instant(obs::Phase::steal, mine.end - mine.next);
            }
            task = pop_own(mine);
            if (task == kNoTask) continue;
        }
        if (job.cancelled.load(std::memory_order_acquire)) break;
        const u64 t0 = obs::monotonic_now();
        try {
            (*job.fn)(task);
        } catch (...) {
            pstats.busy_ns += obs::monotonic_now() - t0;
            {
                std::lock_guard<std::mutex> lock(job.error_m);
                if (!job.error) job.error = std::current_exception();
            }
            job.cancelled.store(true, std::memory_order_release);
            break;
        }
        pstats.busy_ns += obs::monotonic_now() - t0;
        ++pstats.tasks;
    }
    pstats.flush(self);
}

} // namespace

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

struct ThreadPool::Impl {
    std::vector<std::thread> workers;
    /// Serializes whole parallel sections: the job slot is single-occupancy,
    /// so concurrent parallel_for calls from distinct external threads must
    /// queue up instead of overwriting each other's published job.
    std::mutex submit_m;
    std::mutex m;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    Job* job         = nullptr;  // currently published job (or null)
    u64 participants = 0;        // participants of the published job
    u64 generation   = 0;
    bool stop        = false;
    bool pinned      = false;    // pin_workers already ran (idempotence)
    u64 pinned_count = 0;

    void worker_loop(u64 index) {
        u64 seen = 0;
        for (;;) {
            Job* my_job = nullptr;
            u64 self    = 0;
            {
                std::unique_lock<std::mutex> lock(m);
                cv_work.wait(lock, [&] { return stop || generation != seen; });
                if (stop) return;
                seen = generation;
                // Participant 0 is the caller; workers take 1 + index.
                if (index + 1 < participants) {
                    my_job = job;
                    self   = index + 1;
                }
            }
            if (my_job == nullptr) continue;
            {
                InsidePoolGuard inside;
                run_participant(*my_job, self);
            }
            {
                std::lock_guard<std::mutex> lock(m);
                my_job->exited.fetch_add(1, std::memory_order_acq_rel);
                cv_done.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(u64 num_threads) : impl_(new Impl) {
    if (num_threads == 0) {
        const u64 hw = std::thread::hardware_concurrency();
        num_threads  = hw > 1 ? hw - 1 : 0;
    }
    impl_->workers.reserve(num_threads);
    for (u64 i = 0; i < num_threads; ++i) {
        impl_->workers.emplace_back([this, i] { impl_->worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->stop = true;
    }
    impl_->cv_work.notify_all();
    for (auto& t : impl_->workers) t.join();
    delete impl_;
}

u64 ThreadPool::num_threads() const { return impl_->workers.size() + 1; }

void ThreadPool::parallel_for(u64 num_tasks, u64 max_workers,
                              const std::function<void(u64)>& fn,
                              u64 deal_granularity, u64 deal_phase) {
    if (num_tasks == 0) return;
    u64 participants = num_threads();
    if (max_workers != 0) participants = std::min(participants, max_workers);
    participants = std::min(participants, num_tasks);
    if (participants <= 1 || t_inside_pool) {
        // Inline path: single participant or nested call from a worker.
        for (u64 t = 0; t < num_tasks; ++t) fn(t);
        return;
    }
    std::lock_guard<std::mutex> submit_lock(impl_->submit_m);

    Job job;
    job.fn          = &fn;
    job.granularity = std::max<u64>(deal_granularity, 1);
    job.grain_phase = job.granularity > 1 ? deal_phase % job.granularity : 0;
    job.ranges.reserve(participants);
    // Initial deal: contiguous equal-count blocks, with interior boundaries
    // rounded down to the previous affinity-group start (task == phase mod
    // granularity) so a group of adjacent tasks never starts split across
    // two participants. Rounding down is monotone, so the boundaries still
    // partition [0, num_tasks); any imbalance it introduces (at most one
    // group per boundary) is repaid by stealing.
    auto boundary = [&](u64 p) {
        const u64 b = block_begin(num_tasks, participants, p);
        if (p == 0 || p == participants || job.granularity <= 1) return b;
        const u64 past =
            (b + job.granularity - job.grain_phase) % job.granularity;
        return b >= past ? b - past : b; // keep b when no group start precedes
    };
    for (u64 p = 0; p < participants; ++p) {
        auto range  = std::make_unique<StealRange>();
        range->next = boundary(p);
        range->end  = boundary(p + 1);
        job.ranges.push_back(std::move(range));
    }

    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->job          = &job;
        impl_->participants = participants;
        ++impl_->generation;
    }
    impl_->cv_work.notify_all();

    {
        InsidePoolGuard inside;
        run_participant(job, 0);
    }

    {
        std::unique_lock<std::mutex> lock(impl_->m);
        job.exited.fetch_add(1, std::memory_order_acq_rel);
        impl_->cv_done.wait(lock, [&] {
            return job.exited.load(std::memory_order_acquire) == participants;
        });
        impl_->job          = nullptr;
        impl_->participants = 0;
    }
    if (job.error) std::rethrow_exception(job.error);
}

u64 ThreadPool::pin_workers() {
#ifdef __linux__
    std::lock_guard<std::mutex> lock(impl_->m);
    if (impl_->pinned) return impl_->pinned_count;
    impl_->pinned = true;
    const u64 hw  = std::max<u64>(std::thread::hardware_concurrency(), 1);
    u64 pinned    = 0;
    for (u64 i = 0; i < impl_->workers.size(); ++i) {
        cpu_set_t set;
        CPU_ZERO(&set);
        // Worker i takes CPU (i+1) mod hw: CPU 0 stays with the calling
        // participant, and on pools wider than the machine the assignment
        // wraps (oversubscribed workers share cores either way).
        CPU_SET(static_cast<int>((i + 1) % hw), &set);
        if (pthread_setaffinity_np(impl_->workers[i].native_handle(),
                                   sizeof(set), &set) == 0) {
            ++pinned;
        }
    }
    impl_->pinned_count = pinned;
    return pinned;
#else
    return 0;
#endif
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool(0);
    return pool;
}

// ---------------------------------------------------------------------------
// Classic per-rank harness (now running on the pool)
// ---------------------------------------------------------------------------

std::vector<EdgeList> run_all(u64 size, const RankFn& fn, bool threaded) {
    std::vector<EdgeList> results(size);
    if (!threaded || size <= 1) {
        for (u64 rank = 0; rank < size; ++rank) results[rank] = fn(rank, size);
        return results;
    }
    ThreadPool::global().parallel_for(
        size, 0, [&](u64 rank) { results[rank] = fn(rank, size); });
    return results;
}

double run_timed(u64 size, const RankFn& fn, u64 hardware_threads) {
    if (hardware_threads == 0) hardware_threads = std::thread::hardware_concurrency();
    // Oversubscription guard: if there are more ranks than cores, ranks are
    // processed by the worker pool; the measured makespan then corresponds
    // to the per-core aggregate — still the quantity weak/strong scaling
    // plots care about, and documented in EXPERIMENTS.md.
    const u64 workers = std::min<u64>(size, hardware_threads);
    const u64 start   = obs::monotonic_now();
    ThreadPool::global().parallel_for(size, workers, [&](u64 rank) {
        EdgeList edges = fn(rank, size); // result dropped: timing only
        // Keep the optimizer from deleting the generation.
        asm volatile("" : : "r"(edges.data()) : "memory");
    });
    return static_cast<double>(obs::monotonic_now() - start) * 1e-9;
}

EdgeList union_undirected(const std::vector<EdgeList>& per_pe) {
    EdgeList all;
    for (const auto& part : per_pe) append(all, part);
    return undirected_set(std::move(all));
}

EdgeList union_directed(const std::vector<EdgeList>& per_pe) {
    EdgeList all;
    for (const auto& part : per_pe) append(all, part);
    sort_unique(all);
    return all;
}

// ---------------------------------------------------------------------------
// Chunked execution engine
// ---------------------------------------------------------------------------

namespace {

/// Per-chunk facade that forwards batches straight into a shared
/// order-insensitive sink (whose consume() is thread-safe by contract).
/// Construction zero-fills the inline buffer — negligible next to a
/// chunk's generation work, so it is not hoisted per participant.
class ForwardingSink final : public EdgeSink {
public:
    explicit ForwardingSink(EdgeSink& target) : target_(target) {}

    /// Edges handed to the target so far (exact after flush()).
    u64 edges_forwarded() const { return forwarded_; }

protected:
    void consume(const Edge* edges, std::size_t count) override {
        target_.deliver(edges, count);
        forwarded_ += count;
    }

private:
    EdgeSink& target_;
    u64 forwarded_ = 0;
};

/// Bounded-memory ordered delivery: completed chunks park (in RAM while the
/// byte budget allows, on disk past it) until the cursor reaches them, and
/// a single *designated drainer* streams the contiguous ready prefix into
/// the sink. The bookkeeping mutex guards only the slot/cursor state —
/// never sink or spill I/O — so one slow disk write no longer stalls every
/// producer, and resident chunk-buffer bytes never exceed the budget plus
/// the one chunk currently in flight to the sink.
///
/// Drainer protocol: whoever completes a chunk while `draining_` is false
/// and the cursor slot is ready becomes the drainer; it re-acquires the
/// lock between chunks, so chunks parked meanwhile are picked up in the
/// same pass. `draining_` flips only under the lock, hence at most one
/// drainer exists and sink delivery stays serialized and in canonical
/// order — the output is byte-identical to a sequential run.
class OrderedDelivery {
public:
    OrderedDelivery(u64 num_chunks, u64 chunk_base, u64 max_buffered_bytes,
                    const std::string& spill_path, EdgeSink& sink,
                    ChunkBufferPool& pool)
        : slots_(num_chunks), chunk_base_(chunk_base),
          budget_(max_buffered_bytes), pool_(pool), sink_(sink) {
        // The spill file is only ever touched in bounded mode; create it
        // eagerly so producers never race on lazy construction.
        if (budget_ != 0) {
            spill_ = std::make_unique<spill::SpillFile>(spill_path);
        }
    }

    /// Called by the producing worker when chunk `chunk` has finished
    /// generating. Takes ownership of `edges`.
    void complete(u64 chunk, EdgeList edges) {
        const u64 bytes = edges.size() * sizeof(Edge);
        std::unique_lock<std::mutex> lock(mutex_);
        Slot& slot = slots_[chunk];
        // After a sink failure the run is unwinding (parallel_for cancels
        // pending tasks, the drainer's exception is propagating) — park
        // in RAM without spill I/O and never re-enter the drain: the
        // cursor slot was already consumed by the failed delivery.
        const bool over_budget =
            !failed_ && budget_ != 0 && resident_bytes_ + bytes > budget_;
        // The cursor chunk is about to leave through the sink anyway; it is
        // the "+ one chunk" allowance and never worth a disk round-trip.
        const bool at_cursor = !draining_ && chunk == cursor_;
        if (over_budget && !at_cursor && !edges.empty()) {
            lock.unlock();
            obs::instant(obs::Phase::budget_park, chunk_base_ + chunk);
            // Spill outside the bookkeeping lock: SpillFile::append only
            // serializes the offset reservation, so concurrent spillers
            // overlap their writes and non-spilling producers are untouched.
            auto parked = std::make_unique<spill::SpillSink>(*spill_);
            {
                obs::Span park_span(obs::Phase::spill_park, chunk_base_ + chunk);
                parked->deliver(edges.data(), edges.size());
                parked->finish();
            }
            pool_.release(std::move(edges)); // hand back before re-locking
                                             // (bounded mode: pool frees)
            lock.lock();
            slot.spilled = std::move(parked);
            slot.state   = Slot::State::spilled;
            ++spilled_chunks_;
            spilled_bytes_ += bytes;
        } else {
            slot.edges = std::move(edges);
            slot.state = Slot::State::buffered;
            resident_bytes_ += bytes;
            peak_buffered_bytes_ = std::max(peak_buffered_bytes_, resident_bytes_);
        }
        if (!draining_ && !failed_ && cursor_ < slots_.size() &&
            slots_[cursor_].state != Slot::State::pending) {
            drain(lock);
        }
    }

    u64 delivered_chunks() const { return cursor_; }
    u64 peak_buffered_bytes() const { return peak_buffered_bytes_; }
    u64 spilled_chunks() const { return spilled_chunks_; }
    u64 spilled_bytes() const { return spilled_bytes_; }

private:
    struct Slot {
        enum class State : u8 { pending, buffered, spilled, delivered };
        State state = State::pending;
        EdgeList edges;                           ///< buffered payload
        std::unique_ptr<spill::SpillSink> spilled; ///< spilled payload
    };

    /// Streams the contiguous ready prefix into the sink. Entered with the
    /// lock held and `draining_` false; the lock is dropped around every
    /// sink/spill I/O operation and re-taken for cursor bookkeeping.
    void drain(std::unique_lock<std::mutex>& lock) {
        draining_ = true;
        while (cursor_ < slots_.size()) {
            Slot& slot = slots_[cursor_];
            if (slot.state == Slot::State::pending) break;
            try {
                if (slot.state == Slot::State::buffered) {
                    EdgeList edges  = std::move(slot.edges);
                    slot.state      = Slot::State::delivered;
                    const u64 bytes = edges.size() * sizeof(Edge);
                    lock.unlock();
                    {
                        obs::Span span(obs::Phase::deliver, chunk_base_ + cursor_);
                        sink_.deliver(edges.data(), edges.size());
                    }
                    // Recycle instead of freeing: the next chunk a producer
                    // acquires appends into this capacity with zero
                    // reallocations (DESIGN.md §9). Outside the lock.
                    pool_.release(std::move(edges));
                    lock.lock();
                    resident_bytes_ -= bytes;
                } else {
                    auto parked = std::move(slot.spilled);
                    slot.state  = Slot::State::delivered;
                    lock.unlock();
                    {
                        obs::Span span(obs::Phase::spill_replay,
                                       chunk_base_ + cursor_);
                        parked->replay(sink_); // bounded batches off the disk
                    }
                    lock.lock();
                }
            } catch (...) {
                // A failing sink (e.g. ENOSPC in BinaryFileSink) must not
                // leave a phantom drainer behind: producers would park
                // forever and the error would surface as a hang instead of
                // the thrown exception. `failed_` additionally keeps
                // still-running producers from re-entering the drain on
                // the cursor slot, whose payload this attempt already
                // consumed.
                if (!lock.owns_lock()) lock.lock();
                draining_ = false;
                failed_   = true;
                throw;
            }
            ++cursor_;
        }
        draining_ = false;
    }

    std::mutex mutex_;
    std::vector<Slot> slots_;
    const u64 chunk_base_;  ///< absolute id of slot 0 (trace span labels)
    u64 cursor_    = 0;     ///< next chunk owed to the sink
    bool draining_ = false; ///< a designated drainer is active
    bool failed_   = false; ///< a delivery threw; no further draining
    const u64 budget_;      ///< resident-byte budget; 0 = unbounded
    u64 resident_bytes_ = 0; ///< parked-in-RAM + in-flight-to-sink bytes
    u64 peak_buffered_bytes_ = 0;
    u64 spilled_chunks_ = 0;
    u64 spilled_bytes_  = 0;
    std::unique_ptr<spill::SpillFile> spill_;
    ChunkBufferPool& pool_;
    EdgeSink& sink_;
};

} // namespace

ChunkRunStats run_chunked(const ChunkOptions& opt, const ChunkFn& fn, EdgeSink& sink) {
    assert(opt.num_pes >= 1 && opt.chunks_per_pe >= 1);
    const u64 num_chunks =
        opt.total_chunks != 0 ? opt.total_chunks : opt.num_pes * opt.chunks_per_pe;
    // Subrange selection: tasks cover [begin, end) of the canonical chunks;
    // fn still sees the full decomposition (chunk id, num_chunks), so the
    // emitted stream is the exact slice of the whole-graph stream.
    const u64 begin = opt.chunk_begin;
    const u64 end   = opt.chunk_end != 0 ? opt.chunk_end : num_chunks;
    if (begin > end || end > num_chunks) {
        throw std::invalid_argument(
            "pe::run_chunked: chunk range [" + std::to_string(begin) + ", " +
            std::to_string(end) + ") outside [0, " + std::to_string(num_chunks) + ")");
    }
    const u64 span = end - begin;
    u64 workers    = opt.threads;
    if (workers == 0) {
        workers = std::min<u64>(opt.num_pes, std::thread::hardware_concurrency());
    }
    workers = std::max<u64>(workers, 1);
    ThreadPool& pool = opt.pool != nullptr ? *opt.pool : ThreadPool::global();

    if (opt.pin_threads) pool.pin_workers();
    const u64 granularity = std::max<u64>(opt.deal_granularity, 1);
    // Group boundaries live at *absolute* chunk-id multiples of the group
    // size (that is where the geometric models' Morton blocks start); a
    // subrange run whose `begin` is mid-group (a distributed rank with
    // chunk_begin % granularity != 0) must shift the task-space alignment
    // accordingly or every "group" would straddle two real blocks.
    const u64 grain_phase =
        granularity > 1 ? (granularity - begin % granularity) % granularity : 0;

    ChunkRunStats stats;
    stats.num_chunks = span;
    stats.workers    = std::min<u64>({workers, std::max<u64>(span, 1), pool.num_threads()});

    obs::Registry& reg        = obs::Registry::global();
    obs::Histogram& edge_hist = reg.histogram("pe.chunk_edges");

    const u64 start = obs::monotonic_now();
    if (!sink.ordered()) {
        // Order-insensitive sink: workers stream straight through private
        // buffered facades; memory stays O(buffer) per worker.
        pool.parallel_for(span, workers, [&](u64 task) {
            ForwardingSink forward(sink);
            {
                obs::Span gen(obs::Phase::generate, begin + task);
                fn(begin + task, num_chunks, forward);
                forward.flush();
            }
            edge_hist.observe(forward.edges_forwarded());
        }, granularity, grain_phase);
    } else if (stats.workers <= 1) {
        // Direct streaming (DESIGN.md §9): a single participant visits the
        // chunks in canonical order, so ordered delivery is automatic and
        // no chunk ever materializes — the generator emits straight into
        // the target sink's own inline buffer (no forwarding facade, no
        // chunk buffers, zero extra copies) and the memory bound holds
        // trivially. The closing flush guarantees every emitted edge has
        // reached consume() by return, whether or not `fn` flushed.
        for (u64 task = 0; task < span; ++task) {
            obs::Span gen(obs::Phase::generate, begin + task);
            fn(begin + task, num_chunks, sink);
        }
        sink.flush();
    } else {
        // Ordered sink, parallel run: chunks materialize into pool-recycled
        // payload buffers which a single designated drainer hands over in
        // canonical chunk order — the output stream is bit-identical to a
        // sequential run, for any worker count and any steal schedule. Sink
        // and spill I/O happen outside the bookkeeping lock, and chunks
        // completing more than `max_buffered_bytes` ahead of the cursor
        // park on disk, so peak memory is budget + one chunk instead of
        // O(completion skew). Buffer recycling is only enabled in unbounded
        // mode: a retained buffer's capacity is resident memory the budget
        // accounting cannot see, and the strict bound wins in bounded mode
        // (chunk_pool.hpp).
        ChunkBufferPool buffers(opt.max_buffered_bytes == 0 ? stats.workers + 1
                                                            : 0);
        OrderedDelivery delivery(span, begin, opt.max_buffered_bytes,
                                 opt.spill_path, sink, buffers);
        pool.parallel_for(span, workers, [&](u64 task) {
            EdgeList buf = buffers.acquire();
            MemorySink local(&buf);
            {
                obs::Span gen(obs::Phase::generate, begin + task);
                fn(begin + task, num_chunks, local);
                local.flush();
            }
            edge_hist.observe(buf.size());
            delivery.complete(task, std::move(buf));
        }, granularity, grain_phase);
        assert(delivery.delivered_chunks() == span);
        stats.peak_buffered_bytes = delivery.peak_buffered_bytes();
        stats.spilled_chunks      = delivery.spilled_chunks();
        stats.spilled_bytes       = delivery.spilled_bytes();
        stats.buffers_recycled    = buffers.buffers_recycled();
        stats.buffers_allocated   = buffers.buffers_allocated();
    }
    stats.seconds = static_cast<double>(obs::monotonic_now() - start) * 1e-9;

    // Mirror the per-run struct into the registry: `ChunkRunStats` stays the
    // thin per-run view, the named instruments are what snapshots, merges,
    // and the `-metrics` report consume.
    reg.counter("pe.runs").add(1);
    reg.counter("pe.chunks").add(span);
    reg.counter("pe.spilled_chunks").add(stats.spilled_chunks);
    reg.counter("pe.spilled_bytes").add(stats.spilled_bytes);
    reg.counter("pe.buffers_recycled").add(stats.buffers_recycled);
    reg.counter("pe.buffers_allocated").add(stats.buffers_allocated);
    reg.counter("pe.peak_buffered_bytes", obs::MergeKind::max)
        .record_max(stats.peak_buffered_bytes);
    return stats;
}

} // namespace kagen::pe
