#include "pe/pe.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/math.hpp"
#include "obs/trace.hpp"
#include "pe/arena.hpp"
#include "pe/chunk_pool.hpp"
#include "sink/spill.hpp"

namespace kagen::pe {
namespace {

/// True while the current thread executes inside a parallel section; nested
/// parallel_for calls then run inline instead of deadlocking on the pool.
thread_local bool t_inside_pool = false;

constexpr u64 kNoTask = ~u64{0};

/// One participant's task range. `next`/`end` are guarded by `m`; thieves
/// take the upper half of the remainder under the same lock, so every task
/// index is claimed exactly once.
struct StealRange {
    std::mutex m;
    u64 next = 0;
    u64 end  = 0;
};

struct Job {
    const std::function<void(u64)>* fn = nullptr;
    std::vector<std::unique_ptr<StealRange>> ranges;
    /// Affinity group size: steal split points prefer multiples of it, so
    /// groups of adjacent tasks migrate between workers as a unit.
    u64 granularity = 1;
    /// Task index of the first full group boundary: group starts sit at
    /// task == phase (mod granularity). Nonzero when the caller's task 0
    /// maps to an absolute id that is not group-aligned — a distributed
    /// rank whose chunk_begin is not a multiple of the group size.
    u64 grain_phase = 0;
    /// Participants that have left run_participant. The job owner may only
    /// reclaim the (stack-allocated) job once every participant has exited —
    /// "all tasks done" is not enough, late thieves still scan the ranges.
    std::atomic<u64> exited{0};
    /// First exception thrown by any task; rethrown on the submitting
    /// thread once the section has fully joined (a worker must never let an
    /// exception escape into worker_loop — that would std::terminate).
    std::mutex error_m;
    std::exception_ptr error;
    std::atomic<bool> cancelled{false};
};

/// RAII for the nesting flag: exceptions unwinding through a parallel
/// section must not leave the thread marked as inside the pool.
struct InsidePoolGuard {
    InsidePoolGuard() { t_inside_pool = true; }
    ~InsidePoolGuard() { t_inside_pool = false; }
};

u64 pop_own(StealRange& r) {
    std::lock_guard<std::mutex> lock(r.m);
    if (r.next >= r.end) return kNoTask;
    return r.next++;
}

/// Steals the upper half of the victim's remaining range into `self`
/// (which must be empty). Returns false if the victim had nothing.
bool steal_from(StealRange& victim, StealRange& self, u64 granularity,
                u64 grain_phase) {
    // Lock order by address: both directions of stealing may race.
    StealRange* first  = &victim < &self ? &victim : &self;
    StealRange* second = &victim < &self ? &self : &victim;
    std::lock_guard<std::mutex> l1(first->m);
    std::lock_guard<std::mutex> l2(second->m);
    if (self.next < self.end) return true; // someone refilled us meanwhile
    const u64 remaining = victim.end - victim.next;
    if (remaining == 0) return false;
    u64 take = (remaining + 1) / 2;
    if (granularity > 1) {
        // Affinity-aware split: move the cut up to the next group boundary
        // (group starts sit at phase mod granularity in task space, i.e.
        // at absolute-id multiples of the group size) so whole groups of
        // adjacent tasks change hands; keep the raw half when the victim's
        // tail is sub-group.
        const u64 cut  = victim.end - take;
        const u64 past = (cut + granularity - grain_phase) % granularity;
        const u64 aligned = past == 0 ? cut : cut + (granularity - past);
        if (aligned > victim.next && aligned < victim.end) {
            take = victim.end - aligned;
        }
    }
    self.next  = victim.end - take;
    self.end   = victim.end;
    victim.end = victim.end - take;
    return true;
}

/// Per-participant utilization, accumulated locally during the section and
/// flushed to the metrics registry once on exit — the hot loop never takes
/// the registry mutex, and per-worker counters survive as named
/// instruments (`pool.w007.busy_ns`) for the tool's `-v` report.
struct ParticipantStats {
    u64 busy_ns         = 0;
    u64 tasks           = 0;
    u64 steal_attempts  = 0;
    u64 steal_successes = 0;

    void flush(u64 self) {
        if (tasks == 0 && steal_attempts == 0) return;
        obs::Registry& reg = obs::Registry::global();
        char name[48];
        std::snprintf(name, sizeof(name), "pool.w%03llu.",
                      static_cast<unsigned long long>(self));
        const std::string prefix(name);
        reg.counter(prefix + "busy_ns").add(busy_ns);
        reg.counter(prefix + "tasks").add(tasks);
        reg.counter(prefix + "steal_attempts").add(steal_attempts);
        reg.counter(prefix + "steal_successes").add(steal_successes);
        reg.counter("pool.busy_ns").add(busy_ns);
        reg.counter("pool.tasks").add(tasks);
        reg.counter("pool.steal_attempts").add(steal_attempts);
        reg.counter("pool.steal_successes").add(steal_successes);
    }
};

void run_participant(Job& job, u64 self) {
    auto& mine = *job.ranges[self];
    ParticipantStats pstats;
    for (;;) {
        u64 task = pop_own(mine);
        if (task == kNoTask) {
            // Steal from the participant with the most remaining work.
            u64 best = kNoTask, best_remaining = 0;
            for (u64 v = 0; v < job.ranges.size(); ++v) {
                if (v == self) continue;
                auto& r = *job.ranges[v];
                std::lock_guard<std::mutex> lock(r.m);
                const u64 remaining = r.end - r.next;
                if (remaining > best_remaining) {
                    best_remaining = remaining;
                    best           = v;
                }
            }
            if (best == kNoTask) break; // no work anywhere: done
            ++pstats.steal_attempts;
            if (!steal_from(*job.ranges[best], mine, job.granularity,
                            job.grain_phase)) {
                continue;
            }
            ++pstats.steal_successes;
            {
                std::lock_guard<std::mutex> lock(mine.m);
                obs::instant(obs::Phase::steal, mine.end - mine.next);
            }
            task = pop_own(mine);
            if (task == kNoTask) continue;
        }
        if (job.cancelled.load(std::memory_order_acquire)) break;
        const u64 t0 = obs::monotonic_now();
        try {
            (*job.fn)(task);
        } catch (...) {
            pstats.busy_ns += obs::monotonic_now() - t0;
            {
                std::lock_guard<std::mutex> lock(job.error_m);
                if (!job.error) job.error = std::current_exception();
            }
            job.cancelled.store(true, std::memory_order_release);
            break;
        }
        pstats.busy_ns += obs::monotonic_now() - t0;
        ++pstats.tasks;
    }
    pstats.flush(self);
}

} // namespace

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

struct ThreadPool::Impl {
    std::vector<std::thread> workers;
    /// Serializes whole parallel sections: the job slot is single-occupancy,
    /// so concurrent parallel_for calls from distinct external threads must
    /// queue up instead of overwriting each other's published job.
    std::mutex submit_m;
    std::mutex m;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    Job* job         = nullptr;  // currently published job (or null)
    u64 participants = 0;        // participants of the published job
    u64 generation   = 0;
    bool stop        = false;
    bool pinned      = false;    // pin_workers already ran (idempotence)
    u64 pinned_count = 0;

    void worker_loop(u64 index) {
        u64 seen = 0;
        for (;;) {
            Job* my_job = nullptr;
            u64 self    = 0;
            {
                std::unique_lock<std::mutex> lock(m);
                cv_work.wait(lock, [&] { return stop || generation != seen; });
                if (stop) return;
                seen = generation;
                // Participant 0 is the caller; workers take 1 + index.
                if (index + 1 < participants) {
                    my_job = job;
                    self   = index + 1;
                }
            }
            if (my_job == nullptr) continue;
            {
                InsidePoolGuard inside;
                run_participant(*my_job, self);
            }
            {
                std::lock_guard<std::mutex> lock(m);
                my_job->exited.fetch_add(1, std::memory_order_acq_rel);
                cv_done.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(u64 num_threads) : impl_(new Impl) {
    if (num_threads == 0) {
        const u64 hw = std::thread::hardware_concurrency();
        num_threads  = hw > 1 ? hw - 1 : 0;
    }
    impl_->workers.reserve(num_threads);
    for (u64 i = 0; i < num_threads; ++i) {
        impl_->workers.emplace_back([this, i] { impl_->worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->stop = true;
    }
    impl_->cv_work.notify_all();
    for (auto& t : impl_->workers) t.join();
    delete impl_;
}

u64 ThreadPool::num_threads() const { return impl_->workers.size() + 1; }

void ThreadPool::parallel_for(u64 num_tasks, u64 max_workers,
                              const std::function<void(u64)>& fn,
                              u64 deal_granularity, u64 deal_phase) {
    if (num_tasks == 0) return;
    u64 participants = num_threads();
    if (max_workers != 0) participants = std::min(participants, max_workers);
    participants = std::min(participants, num_tasks);
    if (participants <= 1 || t_inside_pool) {
        // Inline path: single participant or nested call from a worker.
        for (u64 t = 0; t < num_tasks; ++t) fn(t);
        return;
    }
    std::lock_guard<std::mutex> submit_lock(impl_->submit_m);

    Job job;
    job.fn          = &fn;
    job.granularity = std::max<u64>(deal_granularity, 1);
    job.grain_phase = job.granularity > 1 ? deal_phase % job.granularity : 0;
    job.ranges.reserve(participants);
    // Initial deal: contiguous equal-count blocks, with interior boundaries
    // rounded down to the previous affinity-group start (task == phase mod
    // granularity) so a group of adjacent tasks never starts split across
    // two participants. Rounding down is monotone, so the boundaries still
    // partition [0, num_tasks); any imbalance it introduces (at most one
    // group per boundary) is repaid by stealing.
    auto boundary = [&](u64 p) {
        const u64 b = block_begin(num_tasks, participants, p);
        if (p == 0 || p == participants || job.granularity <= 1) return b;
        const u64 past =
            (b + job.granularity - job.grain_phase) % job.granularity;
        return b >= past ? b - past : b; // keep b when no group start precedes
    };
    for (u64 p = 0; p < participants; ++p) {
        auto range  = std::make_unique<StealRange>();
        range->next = boundary(p);
        range->end  = boundary(p + 1);
        job.ranges.push_back(std::move(range));
    }

    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->job          = &job;
        impl_->participants = participants;
        ++impl_->generation;
    }
    impl_->cv_work.notify_all();

    {
        InsidePoolGuard inside;
        run_participant(job, 0);
    }

    {
        std::unique_lock<std::mutex> lock(impl_->m);
        job.exited.fetch_add(1, std::memory_order_acq_rel);
        impl_->cv_done.wait(lock, [&] {
            return job.exited.load(std::memory_order_acquire) == participants;
        });
        impl_->job          = nullptr;
        impl_->participants = 0;
    }
    if (job.error) std::rethrow_exception(job.error);
}

u64 ThreadPool::pin_workers() {
#ifdef __linux__
    std::lock_guard<std::mutex> lock(impl_->m);
    if (impl_->pinned) return impl_->pinned_count;
    impl_->pinned = true;
    const u64 hw  = std::max<u64>(std::thread::hardware_concurrency(), 1);
    u64 pinned    = 0;
    for (u64 i = 0; i < impl_->workers.size(); ++i) {
        cpu_set_t set;
        CPU_ZERO(&set);
        // Worker i takes CPU (i+1) mod hw: CPU 0 stays with the calling
        // participant, and on pools wider than the machine the assignment
        // wraps (oversubscribed workers share cores either way).
        CPU_SET(static_cast<int>((i + 1) % hw), &set);
        if (pthread_setaffinity_np(impl_->workers[i].native_handle(),
                                   sizeof(set), &set) == 0) {
            ++pinned;
        }
    }
    impl_->pinned_count = pinned;
    return pinned;
#else
    return 0;
#endif
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool(0);
    return pool;
}

// ---------------------------------------------------------------------------
// Classic per-rank harness (now running on the pool)
// ---------------------------------------------------------------------------

std::vector<EdgeList> run_all(u64 size, const RankFn& fn, bool threaded) {
    std::vector<EdgeList> results(size);
    if (!threaded || size <= 1) {
        for (u64 rank = 0; rank < size; ++rank) results[rank] = fn(rank, size);
        return results;
    }
    ThreadPool::global().parallel_for(
        size, 0, [&](u64 rank) { results[rank] = fn(rank, size); });
    return results;
}

double run_timed(u64 size, const RankFn& fn, u64 hardware_threads) {
    if (hardware_threads == 0) hardware_threads = std::thread::hardware_concurrency();
    // Oversubscription guard: if there are more ranks than cores, ranks are
    // processed by the worker pool; the measured makespan then corresponds
    // to the per-core aggregate — still the quantity weak/strong scaling
    // plots care about, and documented in EXPERIMENTS.md.
    const u64 workers = std::min<u64>(size, hardware_threads);
    const u64 start   = obs::monotonic_now();
    ThreadPool::global().parallel_for(size, workers, [&](u64 rank) {
        EdgeList edges = fn(rank, size); // result dropped: timing only
        // Keep the optimizer from deleting the generation.
        asm volatile("" : : "r"(edges.data()) : "memory");
    });
    return static_cast<double>(obs::monotonic_now() - start) * 1e-9;
}

EdgeList union_undirected(const std::vector<EdgeList>& per_pe) {
    EdgeList all;
    for (const auto& part : per_pe) append(all, part);
    return undirected_set(std::move(all));
}

EdgeList union_directed(const std::vector<EdgeList>& per_pe) {
    EdgeList all;
    for (const auto& part : per_pe) append(all, part);
    sort_unique(all);
    return all;
}

// ---------------------------------------------------------------------------
// Chunked execution engine
// ---------------------------------------------------------------------------

namespace {

/// Per-chunk facade that forwards batches straight into a shared
/// order-insensitive sink (whose consume() is thread-safe by contract).
/// Uses external-buffer mode over caller-owned (stack) storage, so
/// constructing one allocates nothing — the unordered path is as
/// heap-quiet as the ordered arena path (DESIGN.md §14).
class ForwardingSink final : public EdgeSink {
public:
    ForwardingSink(EdgeSink& target, Edge* buffer, std::size_t capacity)
        : EdgeSink(buffer, capacity), target_(target) {}

    /// Edges handed to the target so far (exact after flush()).
    u64 edges_forwarded() const { return forwarded_; }

protected:
    void consume(const Edge* edges, std::size_t count) override {
        target_.deliver(edges, count);
        forwarded_ += count;
    }

private:
    EdgeSink& target_;
    u64 forwarded_ = 0;
};

/// Bounded-memory ordered delivery over a lock-free ready queue: completed
/// chunks publish their slab chains into fixed per-chunk slots (in RAM
/// while the byte budget allows, on disk past it), and a single
/// *designated drainer* streams the contiguous ready prefix into the sink.
/// There is no bookkeeping mutex any more: budget admission is a CAS on
/// the resident byte count, slot publication is one release store, and
/// drainer election is a CAS on a flag — producers never serialize against
/// each other or against sink/spill I/O, and slab recycling happens on the
/// arena's own freelist with no delivery state held (DESIGN.md §14).
///
/// Memory-ordering argument: a producer fills its slot's payload fields,
/// then publishes with `state.store(release)`; the drainer reads
/// `state.load(acquire)` before touching the payload, so every fill
/// happens-before its drain. Drainer election: the `draining_` CAS
/// (acq_rel) admits exactly one drainer, so sink delivery stays serialized
/// and in canonical chunk order — the output is byte-identical to a
/// sequential run. A producer whose CAS fails walks away and relies on the
/// active drainer's re-check loop: the drainer clears the flag *then*
/// re-examines the cursor slot, so a slot published concurrently with the
/// hand-off is never stranded. The cursor advances only inside the drainer
/// (release store), after the chunk's bytes left the resident count, so at
/// most one cursor-exempt chunk is ever resident and the documented
/// "budget + one chunk" peak bound is exact.
class OrderedDelivery {
public:
    OrderedDelivery(u64 num_chunks, u64 chunk_base, u64 max_buffered_bytes,
                    const std::string& spill_path, EdgeSink& sink,
                    ChunkBufferPool& pool)
        : slots_(num_chunks), chunk_base_(chunk_base),
          budget_(max_buffered_bytes), pool_(pool), sink_(sink) {
        // The spill file is only ever touched in bounded mode; create it
        // eagerly so producers never race on lazy construction.
        if (budget_ != 0) {
            spill_ = std::make_unique<spill::SpillFile>(spill_path);
        }
    }

    ~OrderedDelivery() {
        if (scratch_ != nullptr) pool_.arena().release(scratch_);
    }

    /// Called by the producing worker when chunk `chunk` has finished
    /// generating. Takes ownership of the slab chain in `buf`.
    void complete(u64 chunk, ChunkBuffer buf) {
        const u64 bytes = buf.bytes();
        Slot& slot      = slots_[chunk];
        // After a sink failure the run is unwinding (parallel_for cancels
        // pending tasks, the drainer's exception is propagating) — park in
        // RAM without spill I/O and never re-enter the drain: the cursor
        // slot was already consumed by the failed delivery.
        const bool failed = failed_.load(std::memory_order_acquire);
        if (!failed && bytes > 0 && !admit(chunk, bytes)) {
            obs::instant(obs::Phase::budget_park, chunk_base_ + chunk);
            // Spill with no delivery state held: SpillFile::append only
            // serializes its offset reservation, so concurrent spillers
            // overlap their writes and non-spilling producers are untouched.
            auto parked = std::make_unique<spill::SpillSink>(*spill_);
            {
                obs::Span park_span(obs::Phase::spill_park, chunk_base_ + chunk);
                buf.for_each_segment([&](EdgeSpan seg) {
                    parked->deliver(seg.data, seg.count);
                });
                parked->finish();
            }
            buf.release(); // chain back to the freelist before publishing
            slot.spilled = std::move(parked);
            spilled_chunks_.fetch_add(1, std::memory_order_relaxed);
            spilled_bytes_.fetch_add(bytes, std::memory_order_relaxed);
            slot.state.store(Slot::kSpilled, std::memory_order_release);
        } else {
            slot.bytes = bytes;
            slot.buf   = std::move(buf);
            slot.state.store(Slot::kBuffered, std::memory_order_release);
        }
        if (!failed) maybe_drain();
    }

    u64 delivered_chunks() const {
        return cursor_.load(std::memory_order_acquire);
    }
    u64 peak_buffered_bytes() const {
        return peak_.load(std::memory_order_acquire);
    }
    u64 spilled_chunks() const {
        return spilled_chunks_.load(std::memory_order_relaxed);
    }
    u64 spilled_bytes() const {
        return spilled_bytes_.load(std::memory_order_relaxed);
    }

private:
    /// One chunk's ready-queue slot. The producing worker fills the payload
    /// fields and publishes with the `state` release store; only the
    /// drainer reads them afterwards. Cache-line alignment keeps
    /// concurrently-publishing neighbours off one line.
    struct alignas(64) Slot {
        static constexpr u8 kPending  = 0;
        static constexpr u8 kBuffered = 1;
        static constexpr u8 kSpilled  = 2;
        std::atomic<u8> state{kPending};
        u64 bytes = 0;                             ///< resident edge bytes
        ChunkBuffer buf;                           ///< buffered payload
        std::unique_ptr<spill::SpillSink> spilled; ///< spilled payload
    };

    /// Budget admission: CAS-reserves `bytes` on the resident count, so the
    /// count never transiently includes a chunk that then spills — the peak
    /// statistic is exact, not a racy over-read. Returns false when the
    /// chunk must spill. The cursor chunk (while no drainer is active) is
    /// exempt: it is about to leave through the sink anyway and is never
    /// worth a disk round-trip — the "+ one chunk" allowance of the bound.
    bool admit(u64 chunk, u64 bytes) {
        const bool at_cursor =
            budget_ != 0 && chunk == cursor_.load(std::memory_order_acquire) &&
            !draining_.load(std::memory_order_acquire);
        u64 cur = resident_.load(std::memory_order_relaxed);
        for (;;) {
            if (budget_ != 0 && cur + bytes > budget_ && !at_cursor) {
                return false;
            }
            if (resident_.compare_exchange_weak(cur, cur + bytes,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
                update_peak(cur + bytes);
                return true;
            }
        }
    }

    /// Drainer election: claim the flag when the cursor slot is ready. The
    /// post-drain re-check closes the hand-off race — a producer that
    /// published while we still held the flag saw its CAS fail and walked
    /// away; its slot must not be stranded.
    void maybe_drain() {
        for (;;) {
            if (failed_.load(std::memory_order_acquire)) return;
            const u64 cur = cursor_.load(std::memory_order_acquire);
            if (cur >= slots_.size() ||
                slots_[cur].state.load(std::memory_order_acquire) ==
                    Slot::kPending) {
                return;
            }
            bool expected = false;
            if (!draining_.compare_exchange_strong(expected, true,
                                                   std::memory_order_acq_rel)) {
                return; // the active drainer re-checks after clearing
            }
            drain_loop();
            draining_.store(false, std::memory_order_release);
        }
    }

    /// Streams the contiguous ready prefix into the sink. Runs with the
    /// drainer flag held; no lock exists. Sink delivery, spill replay and
    /// slab recycling all happen right here, fully concurrent with
    /// producers filling and publishing later slots.
    void drain_loop() {
        u64 cur = cursor_.load(std::memory_order_relaxed); // sole writer
        try {
            while (cur < slots_.size()) {
                Slot& slot  = slots_[cur];
                const u8 st = slot.state.load(std::memory_order_acquire);
                if (st == Slot::kPending) break;
                if (st == Slot::kBuffered) {
                    ChunkBuffer buf = std::move(slot.buf);
                    const u64 bytes = slot.bytes;
                    {
                        obs::Span span(obs::Phase::deliver, chunk_base_ + cur);
                        buf.for_each_segment([&](EdgeSpan seg) {
                            sink_.deliver(seg.data, seg.count);
                        });
                    }
                    // Recycle the chain: producers pull these very slabs
                    // off the arena freelist for their next chunk — the
                    // zero-steady-state-allocation cycle (DESIGN.md §14).
                    buf.release();
                    // Subtract *before* advancing the cursor: the next
                    // chunk's cursor exemption must never overlap this
                    // chunk's resident bytes, or the peak bound would read
                    // budget + two chunks.
                    resident_.fetch_sub(bytes, std::memory_order_acq_rel);
                } else {
                    auto parked = std::move(slot.spilled);
                    obs::Span span(obs::Phase::spill_replay, chunk_base_ + cur);
                    // Replay through a held scratch slab: the replay path
                    // allocates nothing, and the bounded-memory footprint
                    // stays budget + one chunk + one slab.
                    if (scratch_ == nullptr) scratch_ = pool_.arena().acquire();
                    parked->replay(sink_, scratch_->edges(), scratch_->capacity);
                }
                ++cur;
                cursor_.store(cur, std::memory_order_release);
            }
        } catch (...) {
            // A failing sink (e.g. ENOSPC in BinaryFileSink) must not leave
            // a phantom drainer behind: producers would park forever and
            // the error would surface as a hang instead of the thrown
            // exception. Order matters — `failed_` must be visible before
            // the flag clears, or a producer could slip in and re-drain the
            // cursor slot whose payload this attempt already consumed.
            failed_.store(true, std::memory_order_release);
            draining_.store(false, std::memory_order_release);
            throw;
        }
    }

    void update_peak(u64 value) {
        u64 cur = peak_.load(std::memory_order_relaxed);
        while (cur < value &&
               !peak_.compare_exchange_weak(cur, value,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        }
    }

    std::vector<Slot> slots_;
    const u64 chunk_base_; ///< absolute id of slot 0 (trace span labels)
    std::atomic<u64> cursor_{0};       ///< next chunk owed to the sink
    std::atomic<bool> draining_{false}; ///< a designated drainer is active
    std::atomic<bool> failed_{false};   ///< a delivery threw; stop draining
    const u64 budget_; ///< resident-byte budget; 0 = unbounded
    std::atomic<u64> resident_{0}; ///< parked + in-flight-to-sink bytes
    std::atomic<u64> peak_{0};
    std::atomic<u64> spilled_chunks_{0};
    std::atomic<u64> spilled_bytes_{0};
    std::unique_ptr<spill::SpillFile> spill_;
    ChunkBufferPool& pool_;
    EdgeSink& sink_;
    Slab* scratch_ = nullptr; ///< drainer-owned spill-replay scratch slab
};

} // namespace

ChunkRunStats run_chunked(const ChunkOptions& opt, const ChunkFn& fn, EdgeSink& sink) {
    assert(opt.num_pes >= 1 && opt.chunks_per_pe >= 1);
    const u64 num_chunks =
        opt.total_chunks != 0 ? opt.total_chunks : opt.num_pes * opt.chunks_per_pe;
    // Subrange selection: tasks cover [begin, end) of the canonical chunks;
    // fn still sees the full decomposition (chunk id, num_chunks), so the
    // emitted stream is the exact slice of the whole-graph stream.
    const u64 begin = opt.chunk_begin;
    const u64 end   = opt.chunk_end != 0 ? opt.chunk_end : num_chunks;
    if (begin > end || end > num_chunks) {
        throw std::invalid_argument(
            "pe::run_chunked: chunk range [" + std::to_string(begin) + ", " +
            std::to_string(end) + ") outside [0, " + std::to_string(num_chunks) + ")");
    }
    const u64 span = end - begin;
    u64 workers    = opt.threads;
    if (workers == 0) {
        workers = std::min<u64>(opt.num_pes, std::thread::hardware_concurrency());
    }
    workers = std::max<u64>(workers, 1);
    ThreadPool& pool = opt.pool != nullptr ? *opt.pool : ThreadPool::global();

    if (opt.pin_threads) pool.pin_workers();
    const u64 granularity = std::max<u64>(opt.deal_granularity, 1);
    // Group boundaries live at *absolute* chunk-id multiples of the group
    // size (that is where the geometric models' Morton blocks start); a
    // subrange run whose `begin` is mid-group (a distributed rank with
    // chunk_begin % granularity != 0) must shift the task-space alignment
    // accordingly or every "group" would straddle two real blocks.
    const u64 grain_phase =
        granularity > 1 ? (granularity - begin % granularity) % granularity : 0;

    ChunkRunStats stats;
    stats.num_chunks = span;
    stats.workers    = std::min<u64>({workers, std::max<u64>(span, 1), pool.num_threads()});

    obs::Registry& reg        = obs::Registry::global();
    obs::Histogram& edge_hist = reg.histogram("pe.chunk_edges");

    const u64 start = obs::monotonic_now();
    if (!sink.ordered()) {
        // Order-insensitive sink: workers stream straight through private
        // stack-buffered facades; memory stays O(buffer) per worker and no
        // facade ever touches the heap.
        pool.parallel_for(span, workers, [&](u64 task) {
            std::array<Edge, EdgeSink::kDefaultBufferEdges> stack_buf;
            ForwardingSink forward(sink, stack_buf.data(), stack_buf.size());
            {
                obs::Span gen(obs::Phase::generate, begin + task);
                fn(begin + task, num_chunks, forward);
                forward.flush();
            }
            edge_hist.observe(forward.edges_forwarded());
        }, granularity, grain_phase);
    } else if (stats.workers <= 1) {
        // Direct streaming (DESIGN.md §9): a single participant visits the
        // chunks in canonical order, so ordered delivery is automatic and
        // no chunk ever materializes — the generator emits straight into
        // the target sink's own inline buffer (no forwarding facade, no
        // chunk buffers, zero extra copies) and the memory bound holds
        // trivially. The closing flush guarantees every emitted edge has
        // reached consume() by return, whether or not `fn` flushed.
        for (u64 task = 0; task < span; ++task) {
            obs::Span gen(obs::Phase::generate, begin + task);
            fn(begin + task, num_chunks, sink);
        }
        sink.flush();
    } else {
        // Ordered sink, parallel run: chunks generate *directly into* arena
        // slab chains (ArenaSink aliases the tail slab's free space, so
        // every emitted edge lands at its final resting place) and a single
        // designated drainer hands them over in canonical chunk order — the
        // output stream is bit-identical to a sequential run, for any
        // worker count and any steal schedule. Chunks completing more than
        // `max_buffered_bytes` ahead of the cursor park on disk, so peak
        // memory is budget + one chunk instead of O(completion skew).
        // Recycling stays on in bounded mode too: released slabs decommit
        // their payload pages (chunk_pool.hpp), so retained capacity is no
        // longer invisible resident memory and the strict bound survives.
        ChunkBufferPool local_buffers(opt.arena_slab_bytes, /*populate=*/false,
                                      /*decommit=*/opt.max_buffered_bytes != 0);
        ChunkBufferPool& buffers =
            opt.arena != nullptr ? *opt.arena : local_buffers;
        // Stats are deltas: an external arena (ChunkOptions::arena) carries
        // warm slabs and counters across runs.
        const u64 base_recycled  = buffers.buffers_recycled();
        const u64 base_allocated = buffers.buffers_allocated();
        const u64 base_chains    = buffers.arena().chains();
        OrderedDelivery delivery(span, begin, opt.max_buffered_bytes,
                                 opt.spill_path, sink, buffers);
        pool.parallel_for(span, workers, [&](u64 task) {
            ChunkBuffer buf = buffers.acquire();
            {
                ArenaSink local(buf);
                obs::Span gen(obs::Phase::generate, begin + task);
                fn(begin + task, num_chunks, local);
                local.flush();
            }
            edge_hist.observe(buf.size());
            delivery.complete(task, std::move(buf));
        }, granularity, grain_phase);
        assert(delivery.delivered_chunks() == span);
        stats.peak_buffered_bytes = delivery.peak_buffered_bytes();
        stats.spilled_chunks      = delivery.spilled_chunks();
        stats.spilled_bytes       = delivery.spilled_bytes();
        stats.buffers_recycled    = buffers.buffers_recycled() - base_recycled;
        stats.buffers_allocated   = buffers.buffers_allocated() - base_allocated;
        stats.arena_chains        = buffers.arena().chains() - base_chains;
        stats.arena_slab_bytes    = buffers.arena().slab_bytes();
    }
    stats.seconds = static_cast<double>(obs::monotonic_now() - start) * 1e-9;

    // Mirror the per-run struct into the registry: `ChunkRunStats` stays the
    // thin per-run view, the named instruments are what snapshots, merges,
    // and the `-metrics` report consume.
    reg.counter("pe.runs").add(1);
    reg.counter("pe.chunks").add(span);
    reg.counter("pe.spilled_chunks").add(stats.spilled_chunks);
    reg.counter("pe.spilled_bytes").add(stats.spilled_bytes);
    reg.counter("pe.buffers_recycled").add(stats.buffers_recycled);
    reg.counter("pe.buffers_allocated").add(stats.buffers_allocated);
    reg.counter("pe.peak_buffered_bytes", obs::MergeKind::max)
        .record_max(stats.peak_buffered_bytes);
    reg.counter("pe.arena.freelist_hits").add(stats.buffers_recycled);
    reg.counter("pe.arena.slabs_reserved").add(stats.buffers_allocated);
    reg.counter("pe.arena.slab_bytes_reserved")
        .add(stats.buffers_allocated * stats.arena_slab_bytes);
    reg.counter("pe.arena.chains").add(stats.arena_chains);
    reg.counter("pe.arena.slab_bytes", obs::MergeKind::max)
        .record_max(stats.arena_slab_bytes);
    return stats;
}

} // namespace kagen::pe
