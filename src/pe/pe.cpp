#include "pe/pe.hpp"

#include <atomic>
#include <chrono>

namespace kagen::pe {

std::vector<EdgeList> run_all(u64 size, const RankFn& fn, bool threaded) {
    std::vector<EdgeList> results(size);
    if (!threaded || size <= 1) {
        for (u64 rank = 0; rank < size; ++rank) results[rank] = fn(rank, size);
        return results;
    }
    std::vector<std::thread> threads;
    threads.reserve(size);
    for (u64 rank = 0; rank < size; ++rank) {
        threads.emplace_back([&, rank] { results[rank] = fn(rank, size); });
    }
    for (auto& t : threads) t.join();
    return results;
}

double run_timed(u64 size, const RankFn& fn, u64 hardware_threads) {
    if (hardware_threads == 0) hardware_threads = std::thread::hardware_concurrency();
    // Oversubscription guard: if there are more ranks than cores, ranks are
    // processed by a worker pool; the measured makespan then corresponds to
    // the per-core aggregate — still the quantity weak/strong scaling plots
    // care about, and documented in EXPERIMENTS.md.
    const u64 workers = std::min<u64>(size, hardware_threads);
    std::atomic<u64> next{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (u64 w = 0; w < workers; ++w) {
        threads.emplace_back([&] {
            for (;;) {
                const u64 rank = next.fetch_add(1);
                if (rank >= size) return;
                EdgeList edges = fn(rank, size); // result dropped: timing only
                // Keep the optimizer from deleting the generation.
                asm volatile("" : : "r"(edges.data()) : "memory");
            }
        });
    }
    for (auto& t : threads) t.join();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

EdgeList union_undirected(const std::vector<EdgeList>& per_pe) {
    EdgeList all;
    for (const auto& part : per_pe) append(all, part);
    return undirected_set(std::move(all));
}

EdgeList union_directed(const std::vector<EdgeList>& per_pe) {
    EdgeList all;
    for (const auto& part : per_pe) append(all, part);
    sort_unique(all);
    return all;
}

} // namespace kagen::pe
