/// \file pe.hpp
/// \brief Logical-PE simulation harness.
///
/// The paper's generators are communication-free: each MPI rank computes its
/// part of the graph as a pure function of (rank, P, seed, parameters). This
/// harness substitutes MPI with logical PEs executed either sequentially
/// (deterministic debugging / correctness tests) or on std::threads (scaling
/// benchmarks). DESIGN.md §1 documents why this preserves the paper's
/// behaviour: the per-PE code path is identical, and the harness additionally
/// lets tests check cross-PE invariants exactly.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace kagen::pe {

/// Work a single PE performs: produce its local edge list.
using RankFn = std::function<EdgeList(u64 rank, u64 size)>;

/// Runs ranks 0..size-1 and returns each rank's edge list.
std::vector<EdgeList> run_all(u64 size, const RankFn& fn, bool threaded = false);

/// Wall-clock seconds for executing all ranks concurrently on threads
/// (the "makespan" — what an MPI job's slowest rank would take).
double run_timed(u64 size, const RankFn& fn, u64 hardware_threads = 0);

/// Deduplicated, canonicalized union of all per-PE undirected outputs.
EdgeList union_undirected(const std::vector<EdgeList>& per_pe);

/// Deduplicated, sorted union of directed outputs.
EdgeList union_directed(const std::vector<EdgeList>& per_pe);

} // namespace kagen::pe
