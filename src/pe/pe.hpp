/// \file pe.hpp
/// \brief Logical-PE simulation harness and chunked execution engine.
///
/// The paper's generators are communication-free: each MPI rank computes its
/// part of the graph as a pure function of (rank, P, seed, parameters). This
/// harness substitutes MPI with logical PEs executed on a persistent
/// work-stealing thread pool (or sequentially for deterministic debugging).
/// DESIGN.md §1 documents why this preserves the paper's behaviour: the
/// per-PE code path is identical, and the harness additionally lets tests
/// check cross-PE invariants exactly.
///
/// Beyond the classic one-rank-per-thread model, `run_chunked` decouples the
/// graph decomposition from the execution: the generator function is invoked
/// once per *logical chunk* (same rank-splitting math as PEs — a chunk id
/// simply plays the rank role), and K·P chunks are scheduled over the pool.
/// Finer chunks mean better load balancing at identical output: chunk
/// results are delivered to the sink in canonical chunk order, so the edge
/// stream is bit-identical whether the run used 1 thread or 64, 1 chunk per
/// PE or 16. DESIGN.md §5 has the full argument.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"
#include "sink/edge_sink.hpp"

namespace kagen::pe {

class ChunkBufferPool; // pe/chunk_pool.hpp (arena-backed chunk buffers)

/// Work a single PE performs: produce its local edge list.
using RankFn = std::function<EdgeList(u64 rank, u64 size)>;

/// Runs ranks 0..size-1 and returns each rank's edge list.
std::vector<EdgeList> run_all(u64 size, const RankFn& fn, bool threaded = false);

/// Wall-clock seconds for executing all ranks concurrently on the pool
/// (the "makespan" — what an MPI job's slowest rank would take).
double run_timed(u64 size, const RankFn& fn, u64 hardware_threads = 0);

/// Deduplicated, canonicalized union of all per-PE undirected outputs.
EdgeList union_undirected(const std::vector<EdgeList>& per_pe);

/// Deduplicated, sorted union of directed outputs.
EdgeList union_directed(const std::vector<EdgeList>& per_pe);

// ---------------------------------------------------------------------------
// Persistent work-stealing thread pool
// ---------------------------------------------------------------------------

/// Fixed-size pool whose workers persist across parallel sections (thread
/// spin-up would otherwise dominate chunk-granular scheduling). Tasks are
/// dealt as contiguous per-participant index ranges; a participant that
/// drains its range steals the upper half of the largest remaining range —
/// the textbook lazy-splitting scheme. `parallel_for` is not reentrant from
/// worker threads; nested calls degrade to inline sequential execution.
class ThreadPool {
public:
    /// \param num_threads worker threads in addition to the caller;
    ///        0 = hardware_concurrency() - 1.
    explicit ThreadPool(u64 num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&)            = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Maximum participants of a parallel section (workers + caller).
    u64 num_threads() const;

    /// Executes fn(task) for every task in [0, num_tasks), using at most
    /// `max_workers` participants (0 = all). Returns when every task has
    /// completed. Deterministic per task; completion order is not.
    ///
    /// `deal_granularity` > 1 aligns the initial per-participant range
    /// boundaries (and steal split points, where possible) to groups of
    /// that many consecutive tasks, so groups of adjacent tasks stay on one
    /// participant — the affinity knob the chunked engine uses to keep a
    /// simulated PE's Morton-contiguous chunk block on one worker (see
    /// ChunkOptions::deal_granularity). `deal_phase` shifts the group grid:
    /// group starts sit at task == deal_phase (mod deal_granularity), for
    /// callers whose task 0 maps to a mid-group absolute id (a distributed
    /// rank's chunk subrange). Work stealing still rebalances, so the
    /// alignment never costs makespan beyond one group.
    void parallel_for(u64 num_tasks, u64 max_workers, const std::function<void(u64)>& fn,
                      u64 deal_granularity = 1, u64 deal_phase = 0);

    /// Pins each worker thread to a distinct CPU (round-robin over the
    /// hardware set, leaving CPU 0 to the calling participant). Idempotent;
    /// returns the number of workers pinned (0 when unsupported). Opt-in
    /// via ChunkOptions::pin_threads — pinning helps once chunk→worker
    /// affinity matters (stolen ranges stop migrating between cores) and is
    /// a no-op burden otherwise, so it is never the default.
    u64 pin_workers();

    /// Lazily constructed process-wide pool (hardware_concurrency threads).
    static ThreadPool& global();

private:
    struct Impl;
    Impl* impl_;
};

// ---------------------------------------------------------------------------
// Chunked execution engine
// ---------------------------------------------------------------------------

/// Execution shape of a chunked run.
struct ChunkOptions {
    u64 num_pes       = 1; ///< simulated PEs P (worker-parallelism cap)
    u64 chunks_per_pe = 1; ///< K: logical chunks per PE
    u64 total_chunks  = 0; ///< canonical chunk count; 0 = K·P. Pinning this
                           ///< makes the output independent of P and K.
    u64 threads       = 0; ///< worker cap; 0 = min(P, hardware threads)
    ThreadPool* pool  = nullptr; ///< pool to run on; null = global()

    /// Ordered-delivery byte budget: chunks that complete ahead of the
    /// delivery cursor may hold at most this many resident edge bytes
    /// before further out-of-window chunks spill to disk (sink/spill.hpp)
    /// and are replayed in canonical order. 0 = unbounded (no spilling).
    /// Output is byte-identical either way; peak resident chunk-buffer
    /// memory is bounded by `max_buffered_bytes` + one chunk.
    u64 max_buffered_bytes = 0;

    /// Spill scratch file location; empty = anonymous temp file under
    /// $TMPDIR. Only used when `max_buffered_bytes` > 0.
    std::string spill_path;

    /// Canonical chunk subrange [chunk_begin, chunk_end) to execute;
    /// `chunk_end == 0` means "through the last chunk". The decomposition
    /// itself is untouched — `fn` still receives (chunk, num_chunks) against
    /// the full canonical chunk count — so the edge stream of a subrange run
    /// is exactly the corresponding slice of the whole-graph stream. This is
    /// what lets a distributed rank (dist/runner.hpp) generate its
    /// contiguous share of the decomposition in isolation: concatenating the
    /// per-rank streams in rank order reproduces the single-process output
    /// byte for byte, with zero communication.
    u64 chunk_begin = 0;
    u64 chunk_end   = 0;

    /// Pin pool workers to distinct CPUs before the run (see
    /// ThreadPool::pin_workers). Opt-in; pinning a pool is sticky for the
    /// pool's lifetime.
    bool pin_threads = false;

    /// Per-slab size of the chunk arena (pe/arena.hpp) backing the ordered
    /// multi-worker path; 0 = SlabArena::kDefaultSlabBytes. Memory layout
    /// only — the output stream is byte-identical for every value.
    u64 arena_slab_bytes = 0;

    /// External chunk arena to run on; null = a per-run pool-owned arena.
    /// Passing one keeps slab mappings warm across runs (the steady-state
    /// zero-allocation property then spans runs, not just chunks) — the
    /// future daemon's mode, and what the allocation-gate test drives.
    ChunkBufferPool* arena = nullptr;

    /// Affinity-aware deal: align the initial chunk→worker ranges (and
    /// steal splits) to groups of this many consecutive chunks. The
    /// geometric models map consecutive chunk ids to contiguous Morton cell
    /// ranges, so a granularity of K = chunks_per_pe keeps each simulated
    /// PE's spatially compact chunk block on one worker — adjacent chunks
    /// share split-tree ancestry and halo cells, so the worker's caches
    /// stay warm across its whole block (ROADMAP "NUMA / affinity"). 0/1 =
    /// plain equal-count deal. Scheduling only: the output stream is
    /// byte-identical for every value.
    u64 deal_granularity = 1;
};

/// Generator body of one logical chunk: stream chunk `chunk` of
/// `num_chunks` into `sink`. Must be pure in (chunk, num_chunks).
using ChunkFn = std::function<void(u64 chunk, u64 num_chunks, EdgeSink& sink)>;

struct ChunkRunStats {
    u64 num_chunks = 0;    ///< canonical chunks executed
    u64 workers    = 0;    ///< parallel participants used
    double seconds = 0.0;  ///< wall clock of the parallel section (makespan)

    // Ordered-delivery accounting (all zero for unordered sinks and for
    // single-worker runs, which stream chunks straight into the sink with
    // no chunk buffers at all — DESIGN.md §9).
    u64 peak_buffered_bytes = 0; ///< max resident chunk-buffer bytes
                                 ///< (parked + in-flight) at any instant
    u64 spilled_chunks = 0;      ///< chunks parked on disk
    u64 spilled_bytes  = 0;      ///< edge bytes written to the spill file

    // Chunk-arena accounting (multi-worker ordered runs only; deltas of
    // this run when an external arena was passed). A "buffer" is a slab of
    // the chunk arena (pe/arena.hpp).
    u64 buffers_recycled  = 0; ///< slab acquires served from the freelist
    u64 buffers_allocated = 0; ///< slabs freshly reserved (mmap/fallback)
    u64 arena_chains      = 0; ///< chunks that chained a second+ slab
    u64 arena_slab_bytes  = 0; ///< per-slab size the run used
};

/// Runs every canonical chunk through `fn` and streams the results into
/// `sink`. Ordered sinks receive chunks in canonical order (bit-identical
/// output for any thread count). With one effective worker the engine
/// streams each chunk *directly* into the sink — canonical order is
/// automatic, so no chunk is ever materialized (zero chunk buffers, zero
/// copies; DESIGN.md §9). With several workers, completed chunks park in
/// recycled pool buffers in RAM — or, past `max_buffered_bytes`, on disk —
/// and a single designated drainer streams the contiguous ready prefix
/// into the sink *outside* the bookkeeping lock, so producers never stall
/// on sink I/O. Unordered sinks (`ordered() == false`) get concurrent
/// delivery with O(buffer) memory per worker. The caller is responsible
/// for `sink.finish()`.
ChunkRunStats run_chunked(const ChunkOptions& opt, const ChunkFn& fn, EdgeSink& sink);

} // namespace kagen::pe
