/// \file vec.hpp
/// \brief Tiny fixed-dimension point/vector type for the spatial generators.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

#include "common/types.hpp"

namespace kagen {

template <int D>
struct Vec {
    std::array<double, static_cast<std::size_t>(D)> x{};

    double& operator[](int i) { return x[i]; }
    double operator[](int i) const { return x[i]; }

    friend Vec operator+(Vec a, const Vec& b) {
        for (int i = 0; i < D; ++i) a.x[i] += b.x[i];
        return a;
    }
    friend Vec operator-(Vec a, const Vec& b) {
        for (int i = 0; i < D; ++i) a.x[i] -= b.x[i];
        return a;
    }
    friend bool operator==(const Vec& a, const Vec& b) { return a.x == b.x; }
};

template <int D>
inline double distance_sq(const Vec<D>& a, const Vec<D>& b) {
    double s = 0.0;
    for (int i = 0; i < D; ++i) {
        const double d = a.x[i] - b.x[i];
        s += d * d;
    }
    return s;
}

template <int D>
inline double distance(const Vec<D>& a, const Vec<D>& b) {
    return std::sqrt(distance_sq(a, b));
}

/// Distance on the unit torus [0,1)^D (periodic boundary conditions, used by
/// the Delaunay generator, paper §2.1.4).
template <int D>
inline double torus_distance_sq(const Vec<D>& a, const Vec<D>& b) {
    double s = 0.0;
    for (int i = 0; i < D; ++i) {
        double d = std::fabs(a.x[i] - b.x[i]);
        if (d > 0.5) d = 1.0 - d;
        s += d * d;
    }
    return s;
}

using Vec2 = Vec<2>;
using Vec3 = Vec<3>;

} // namespace kagen
