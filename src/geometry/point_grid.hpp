/// \file point_grid.hpp
/// \brief Deterministic uniform points in [0,1)^D, organized in a power-of-
///        two cell grid whose per-cell occupancy any PE can recompute locally.
///
/// This is the shared point substrate of the RGG (§5) and RDG (§6)
/// generators. Space is split recursively into 2^(D*levels) equal cells in
/// Morton order; because every split halves the volume, the number of points
/// in each half is Binomial(k, 1/2), seeded by a hash of the recursion node
/// (§5.1). Consequences used throughout:
///   * the joint cell-occupancy distribution is exactly multinomial —
///     i.e. the grid emulates throwing n i.i.d. uniform points;
///   * any PE can compute any cell's count, its points, and the points'
///     *global ids* (prefix count + index) in O(levels) variates, without
///     communication — this is what makes halo recomputation free of
///     coordination;
///   * the point set depends only on (seed, n, levels) — NOT on the number
///     of PEs — so tests can compare any distributed run against a
///     sequential brute-force reference on the identical point set.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/types.hpp"
#include "geometry/morton.hpp"
#include "geometry/vec.hpp"
#include "prng/rng.hpp"
#include "variates/variates.hpp"

namespace kagen {

template <int D>
class PointGrid {
public:
    /// A point together with its global vertex id.
    struct IdPoint {
        VertexId id;
        Vec<D> pos;
    };

    PointGrid(u64 seed, u64 n, u32 levels) : seed_(seed), n_(n), levels_(levels) {
        assert(levels_ * D < 63);
    }

    u64 num_points() const { return n_; }
    u32 levels() const { return levels_; }
    u64 cells_per_dim() const { return u64{1} << levels_; }
    u64 num_cells() const { return u64{1} << (static_cast<u64>(levels_) * D); }
    double cell_side() const { return 1.0 / static_cast<double>(cells_per_dim()); }

    /// Number of points in Morton cell `cell`.
    u64 count_in_cell(u64 cell) const { return descend(cell).count; }

    /// Number of points in all cells with Morton index < `cell`
    /// (== the global id of the first point of `cell`).
    u64 first_id(u64 cell) const {
        if (cell == num_cells()) return n_;
        return descend(cell).prefix;
    }

    /// The points of `cell` with their global ids, in id order.
    /// Bit-identical on every PE that asks.
    std::vector<IdPoint> cell_points(u64 cell) const {
        const Node node = descend(cell);
        return cell_points(cell, node.count, node.prefix);
    }

    /// Same, with the occupancy already known (e.g. from
    /// `for_cells_in_range`) — skips the O(levels) re-descend.
    std::vector<IdPoint> cell_points(u64 cell, u64 count, u64 first_id) const {
        std::vector<IdPoint> pts;
        pts.reserve(count);
        const auto coords = Morton<D>::decode(cell);
        const double side = cell_side();
        Rng rng = Rng::for_ids(seed_, {kTagPoints, cell});
        for (u64 i = 0; i < count; ++i) {
            IdPoint p;
            p.id = first_id + i;
            for (int d = 0; d < D; ++d) {
                p.pos[d] = (static_cast<double>(coords[d]) + rng.uniform()) * side;
            }
            pts.push_back(p);
        }
        return pts;
    }

    /// Enumerates every cell in the Morton range [lo, hi) in one walk down
    /// the split tree: O(hi - lo + levels) binomial variates total, versus
    /// O((hi - lo) * levels) for per-cell `descend` queries. This is the
    /// "generate all cells of my chunk" path of the generators; the variates
    /// drawn are identical to per-cell queries (same per-node seeds), so
    /// mixing both access patterns across PEs stays consistent.
    ///
    /// `fn(cell, count, first_id)` is invoked for every *non-empty* cell;
    /// `empty(range_lo, range_hi)` (optional) for maximal empty subranges.
    template <typename F, typename E>
    void for_cells_in_range(u64 lo, u64 hi, F&& fn, E&& empty) const {
        walk_range(0, num_cells(), n_, 0, lo, hi, fn, empty);
    }

    template <typename F>
    void for_cells_in_range(u64 lo, u64 hi, F&& fn) const {
        for_cells_in_range(lo, hi, fn, [](u64, u64) {});
    }

    /// Grid coordinates of the cell containing `pos`.
    std::array<u64, static_cast<std::size_t>(D)> cell_coords_of(const Vec<D>& pos) const {
        std::array<u64, static_cast<std::size_t>(D)> c;
        for (int d = 0; d < D; ++d) {
            auto v = static_cast<i64>(pos[d] * static_cast<double>(cells_per_dim()));
            c[d]   = static_cast<u64>(std::clamp<i64>(v, 0, static_cast<i64>(cells_per_dim()) - 1));
        }
        return c;
    }

    /// All points of the grid (test/baseline helper; Θ(n + cells)).
    std::vector<IdPoint> all_points() const {
        std::vector<IdPoint> pts;
        pts.reserve(n_);
        for (u64 cell = 0; cell < num_cells(); ++cell) {
            const auto cp = cell_points(cell);
            pts.insert(pts.end(), cp.begin(), cp.end());
        }
        return pts;
    }

private:
    static constexpr u64 kTagSplit  = 0x5b117;
    static constexpr u64 kTagPoints = 0xb0145;

    struct Node {
        u64 count;  // points inside the cell
        u64 prefix; // points in cells strictly before it
    };

    /// Walks the Morton prefix tree from the root to `cell`, drawing one
    /// Binomial(k, 1/2) per level; accumulates the prefix along the way.
    Node descend(u64 cell) const {
        u64 lo     = 0;
        u64 hi     = num_cells();
        u64 count  = n_;
        u64 prefix = 0;
        while (hi - lo > 1) {
            const u64 mid = lo + (hi - lo) / 2;
            Rng rng       = Rng::for_ids(seed_, {kTagSplit, lo, hi});
            const u64 left = binomial(rng, count, 0.5);
            if (cell < mid) {
                hi    = mid;
                count = left;
            } else {
                lo = mid;
                prefix += left;
                count -= left;
            }
            if (count == 0) break;
        }
        return Node{count, prefix};
    }

    template <typename F, typename E>
    void walk_range(u64 rlo, u64 rhi, u64 count, u64 prefix, u64 lo, u64 hi, F&& fn,
                    E&& empty) const {
        if (rhi <= lo || rlo >= hi) return; // disjoint with the query range
        if (count == 0) {
            empty(std::max(rlo, lo), std::min(rhi, hi));
            return;
        }
        if (rhi - rlo == 1) {
            fn(rlo, count, prefix);
            return;
        }
        const u64 mid = rlo + (rhi - rlo) / 2;
        Rng rng       = Rng::for_ids(seed_, {kTagSplit, rlo, rhi});
        const u64 left = binomial(rng, count, 0.5);
        walk_range(rlo, mid, left, prefix, lo, hi, fn, empty);
        walk_range(mid, rhi, count - left, prefix + left, lo, hi, fn, empty);
    }

    u64 seed_;
    u64 n_;
    u32 levels_;
};

} // namespace kagen
