/// \file morton.hpp
/// \brief Morton (Z-order) codes in 2 and 3 dimensions (paper §5.1: chunks
///        are distributed to PEs along a Z-order curve for locality, and the
///        recursive binomial splitting of space *is* a walk down the Morton
///        prefix tree).
#pragma once

#include <array>

#include "common/types.hpp"

namespace kagen {

namespace detail {

/// Spreads the low 32 bits of x so consecutive bits land 2 apart.
inline constexpr u64 spread2(u64 x) {
    x &= 0xffffffffULL;
    x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
    x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
    x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
    x = (x | (x << 2)) & 0x3333333333333333ULL;
    x = (x | (x << 1)) & 0x5555555555555555ULL;
    return x;
}

inline constexpr u64 compact2(u64 x) {
    x &= 0x5555555555555555ULL;
    x = (x | (x >> 1)) & 0x3333333333333333ULL;
    x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
    x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
    x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
    x = (x | (x >> 16)) & 0x00000000ffffffffULL;
    return x;
}

/// Spreads the low 21 bits of x so consecutive bits land 3 apart.
inline constexpr u64 spread3(u64 x) {
    x &= 0x1fffffULL;
    x = (x | (x << 32)) & 0x1f00000000ffffULL;
    x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
    x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
    x = (x | (x << 2)) & 0x1249249249249249ULL;
    return x;
}

inline constexpr u64 compact3(u64 x) {
    x &= 0x1249249249249249ULL;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3ULL;
    x = (x | (x >> 4)) & 0x100f00f00f00f00fULL;
    x = (x | (x >> 8)) & 0x1f0000ff0000ffULL;
    x = (x | (x >> 16)) & 0x1f00000000ffffULL;
    x = (x | (x >> 32)) & 0x1fffffULL;
    return x;
}

} // namespace detail

/// Interleaves D grid coordinates into a Morton code and back.
template <int D>
struct Morton;

template <>
struct Morton<2> {
    static constexpr u64 encode(const std::array<u64, 2>& c) {
        return detail::spread2(c[0]) | (detail::spread2(c[1]) << 1);
    }
    static constexpr std::array<u64, 2> decode(u64 m) {
        return {detail::compact2(m), detail::compact2(m >> 1)};
    }
};

template <>
struct Morton<3> {
    static constexpr u64 encode(const std::array<u64, 3>& c) {
        return detail::spread3(c[0]) | (detail::spread3(c[1]) << 1) |
               (detail::spread3(c[2]) << 2);
    }
    static constexpr std::array<u64, 3> decode(u64 m) {
        return {detail::compact3(m), detail::compact3(m >> 1), detail::compact3(m >> 2)};
    }
};

} // namespace kagen
