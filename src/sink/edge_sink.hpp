/// \file edge_sink.hpp
/// \brief Streaming edge-sink abstraction: the consumer side of every
///        generator's core loop.
///
/// The paper's generators compute a PE's (or chunk's) edges as a pure
/// function of (chunk, num_chunks, seed, params) — nothing about that
/// requires materializing an EdgeList. `EdgeSink` decouples production from
/// consumption: the same generator loop can fill a vector (`MemorySink`),
/// count edges (`CountingSink`), accumulate a degree histogram without ever
/// storing an edge (`DegreeStatsSink`), or stream to disk in the
/// `graph/io` binary format (`BinaryFileSink`). See DESIGN.md §4 and §9.
///
/// Emission goes through a small inline buffer, so the virtual `consume`
/// dispatch is amortized over the buffer capacity — generator inner loops
/// pay one predictable branch per edge, which benches show is within noise
/// of direct `std::vector::push_back`. The capacity is constructor-tunable
/// (kagen_tool: `-sink-buffer-edges`); the default of 4096 edges (64 KiB
/// batches) measured within noise of 1024 on the bulk-write path while
/// quartering the number of virtual dispatches — see EXPERIMENTS.md.
///
/// Threading contract: a sink instance is single-writer. The chunked
/// execution engine (pe/pe.hpp) gives each worker a private buffer and
/// serializes delivery; sinks that opt into unordered delivery
/// (`ordered() == false`) must make `consume` thread-safe themselves.
#pragma once

#include <cstddef>
#include <memory>

#include "common/types.hpp"

namespace kagen {

class EdgeSink {
public:
    /// Default inline-buffer capacity in edges (see the file comment).
    static constexpr std::size_t kDefaultBufferEdges = 4096;

    virtual ~EdgeSink() = default;

    /// Emits one edge. Inline fast path; flushes to `consume` when the
    /// buffer fills.
    void emit(VertexId u, VertexId v) {
        buffer_[fill_++] = Edge{u, v};
        if (fill_ == capacity_) flush();
    }

    void emit(const Edge& e) { emit(e.first, e.second); }

    /// Drains the inline buffer into `consume`. Idempotent.
    void flush() {
        if (fill_ == 0) return;
        consume(buffer_, fill_);
        fill_ = 0;
    }

    /// Flushes and finalizes (e.g. patches file headers). Call exactly once
    /// when the stream is complete; `emit` must not be called afterwards.
    virtual void finish() { flush(); }

    /// Direct batch delivery, bypassing the inline buffer — used by
    /// execution engines that already hold whole chunks of edges. Must not
    /// be interleaved with `emit` calls on the same sink by other writers.
    void deliver(const Edge* edges, std::size_t count) {
        if (count > 0) consume(edges, count);
    }

    /// Whether the chunked engine must deliver chunks in canonical order.
    /// Order-insensitive sinks (counters, histograms) return false and
    /// accept concurrent `consume` calls, enabling fully streaming parallel
    /// consumption with O(buffer) memory.
    virtual bool ordered() const { return true; }

    /// Inline-buffer capacity this sink was constructed with.
    std::size_t buffer_capacity() const { return capacity_; }

protected:
    /// \param buffer_edges inline-buffer capacity; 0 selects the default.
    explicit EdgeSink(std::size_t buffer_edges = kDefaultBufferEdges)
        : capacity_(buffer_edges != 0 ? buffer_edges : kDefaultBufferEdges),
          owned_(new Edge[capacity_]), buffer_(owned_.get()) {}

    /// External-buffer mode: `emit` writes into caller-owned storage — the
    /// zero-allocation facades of the chunk pipeline (pe/arena.hpp
    /// `ArenaSink` aliases the slab's free space so emitted edges land at
    /// their final resting place; the unordered path's forwarding facade
    /// uses a stack array). The derived class owns the storage and keeps it
    /// valid until rebound; it may pass (nullptr, 0) here and bind the real
    /// region in its constructor body via `rebind_buffer`.
    EdgeSink(Edge* buffer, std::size_t capacity)
        : capacity_(capacity), buffer_(buffer) {}

    /// Repoints the inline buffer (external-buffer mode only). Legal only
    /// from inside `consume` (the pending fill is being committed by that
    /// very call) or before any `emit` — anywhere else it would drop
    /// buffered edges.
    void rebind_buffer(Edge* buffer, std::size_t capacity) {
        buffer_   = buffer;
        capacity_ = capacity;
    }

    /// Receives a batch of edges; count >= 1 (buffered emits arrive in
    /// batches of at most `buffer_capacity()`, `deliver` passes batches
    /// through unchanged). Chunked ordered delivery hands a chunk over as
    /// one call per slab segment (pe/arena.hpp) — sinks must not assume
    /// any correspondence between batch boundaries and chunk boundaries.
    virtual void consume(const Edge* edges, std::size_t count) = 0;

private:
    std::size_t capacity_;
    std::unique_ptr<Edge[]> owned_; ///< null in external-buffer mode
    Edge* buffer_ = nullptr;        ///< active emit region
    std::size_t fill_ = 0;
};

} // namespace kagen
