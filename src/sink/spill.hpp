/// \file spill.hpp
/// \brief Disk-spill layer for bounded-memory ordered delivery.
///
/// The chunked engine's ordered path must hand chunk results to the sink in
/// canonical order, but chunks complete in steal-schedule order. Holding
/// every out-of-order chunk in RAM makes peak memory proportional to the
/// completion skew — unbounded in the worst case. This layer lets the
/// engine park chunks that complete too far ahead of the delivery cursor on
/// disk instead: `SpillFile` is a shared append-only scratch file of raw
/// edge segments, and `SpillSink` is an `EdgeSink` that streams its edges
/// into such a file and can replay them later, in emission order, into any
/// other sink. Replayed output is byte-identical to what the original
/// emission sequence would have produced (DESIGN.md §5).
///
/// Concurrency: `append` reserves its byte range under a short lock and
/// performs the write lock-free via positioned I/O (`pwrite`), so several
/// producers can spill at once and nobody blocks on anyone else's disk
/// write. `read`/`replay` use `pread` and never touch shared state; a
/// segment may be read as soon as `append` has returned it (publication of
/// the `Segment` value is the caller's synchronization point).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sink/edge_sink.hpp"

namespace kagen::spill {

/// Shared append-only scratch file of raw `Edge` segments. Anonymous by
/// default (created under $TMPDIR and unlinked immediately, so the space is
/// reclaimed even on crash); a named path keeps the file visible while the
/// object lives and unlinks it on destruction.
class SpillFile {
public:
    /// One contiguous run of edges inside the file.
    struct Segment {
        u64 offset = 0; ///< byte offset of the first edge
        u64 count  = 0; ///< number of edges
    };

    /// \param path scratch file location; empty = anonymous temp file.
    explicit SpillFile(const std::string& path = {});
    ~SpillFile();

    SpillFile(const SpillFile&)            = delete;
    SpillFile& operator=(const SpillFile&) = delete;

    /// Appends `count` edges and returns their segment. Thread-safe; the
    /// disk write happens outside the reservation lock.
    Segment append(const Edge* edges, std::size_t count);

    /// Reads up to `max_count` edges of `seg` starting at edge index
    /// `first` into `out`; returns the number read. Thread-safe against
    /// concurrent `append`s of other segments.
    std::size_t read(const Segment& seg, u64 first, Edge* out,
                     std::size_t max_count) const;

    /// Streams a whole segment into `sink` in bounded batches (never
    /// materializes the segment).
    void replay(const Segment& seg, EdgeSink& sink) const;

    /// Same, through a caller-owned scratch buffer — the ordered-delivery
    /// drainer replays through an arena slab (pe/arena.hpp), so the replay
    /// path allocates nothing and the bounded-memory footprint stays
    /// budget + one chunk + one slab.
    void replay(const Segment& seg, EdgeSink& sink, Edge* scratch,
                std::size_t scratch_cap) const;

    /// Total bytes ever appended.
    u64 bytes_spilled() const;

    /// Underlying descriptor (diagnostics/tests). Opened with O_CLOEXEC:
    /// a subprocess spawned while the coordinator holds a spill window open
    /// (dist/ forks workers in exactly this situation) must not inherit a
    /// writable handle onto the scratch file — tests/test_dist.cpp proves a
    /// worker cannot clobber it.
    int fd() const { return fd_; }

private:
    mutable std::mutex mutex_;
    int fd_ = -1;
    u64 end_ = 0;       ///< next free byte offset (guarded by mutex_)
    std::string path_;  ///< non-empty for named files (unlinked in dtor)
};

/// EdgeSink that parks its stream in a `SpillFile` instead of RAM: memory
/// stays O(buffer) no matter how many edges pass through. After `finish()`,
/// `replay` re-emits the exact original sequence into another sink.
/// Single-writer like every sink; the underlying file may be shared with
/// any number of other writers.
class SpillSink final : public EdgeSink {
public:
    explicit SpillSink(SpillFile& file) : file_(file) {}

    u64 num_edges() const { return num_edges_; }

    /// Replays the spilled edges, in emission order, into `sink` (batched
    /// through `deliver`; flushes nothing and finishes nothing on `sink`).
    void replay(EdgeSink& sink) const {
        for (const auto& seg : segments_) file_.replay(seg, sink);
    }

    /// Replay through a caller-owned scratch buffer (see SpillFile).
    void replay(EdgeSink& sink, Edge* scratch, std::size_t scratch_cap) const {
        for (const auto& seg : segments_) {
            file_.replay(seg, sink, scratch, scratch_cap);
        }
    }

protected:
    void consume(const Edge* edges, std::size_t count) override {
        segments_.push_back(file_.append(edges, count));
        num_edges_ += count;
    }

private:
    SpillFile& file_;
    std::vector<SpillFile::Segment> segments_;
    u64 num_edges_ = 0;
};

} // namespace kagen::spill
