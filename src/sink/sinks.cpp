#include "sink/sinks.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <type_traits>

#include <fcntl.h>
#include <unistd.h>

#include "common/bytes.hpp"
#include "common/fileio.hpp"
#include "obs/trace.hpp"

namespace kagen {

// ---------------------------------------------------------------------------
// Mergeable summaries
// ---------------------------------------------------------------------------

namespace {

EdgeSemantics semantics_from_wire(u64 value) {
    switch (value) {
        case 0: return EdgeSemantics::as_generated;
        case 1: return EdgeSemantics::exact_once;
    }
    throw std::runtime_error("summary: unknown edge semantics tag " +
                             std::to_string(value));
}

u64 semantics_to_wire(EdgeSemantics semantics) {
    return semantics == EdgeSemantics::exact_once ? 1 : 0;
}

} // namespace

void CountingSummary::merge(const CountingSummary& other) {
    if (semantics != other.semantics) {
        throw std::invalid_argument(
            "CountingSummary::merge: semantics mismatch (" +
            std::string(semantics_name(semantics)) + " vs " +
            semantics_name(other.semantics) + ")");
    }
    num_edges += other.num_edges;
    num_self_loops += other.num_self_loops;
}

std::string CountingSummary::str() const {
    return "edges[" + std::string(semantics_name(semantics)) +
           "]=" + std::to_string(num_edges) +
           " self_loops=" + std::to_string(num_self_loops);
}

void CountingSummary::serialize(std::vector<u8>& out) const {
    bytes::put_u64(out, semantics_to_wire(semantics));
    bytes::put_u64(out, num_edges);
    bytes::put_u64(out, num_self_loops);
}

CountingSummary CountingSummary::deserialize(const u8*& p, const u8* end) {
    CountingSummary s;
    s.semantics      = semantics_from_wire(bytes::get_u64(p, end));
    s.num_edges      = bytes::get_u64(p, end);
    s.num_self_loops = bytes::get_u64(p, end);
    return s;
}

void DegreeStatsSummary::merge(const DegreeStatsSummary& other) {
    if (semantics != other.semantics) {
        throw std::invalid_argument(
            "DegreeStatsSummary::merge: semantics mismatch (" +
            std::string(semantics_name(semantics)) + " vs " +
            semantics_name(other.semantics) + ")");
    }
    if (degrees.size() != other.degrees.size()) {
        throw std::invalid_argument(
            "DegreeStatsSummary::merge: vertex count mismatch (" +
            std::to_string(degrees.size()) + " vs " +
            std::to_string(other.degrees.size()) + ")");
    }
    num_edges += other.num_edges;
    for (std::size_t v = 0; v < degrees.size(); ++v) degrees[v] += other.degrees[v];
}

double DegreeStatsSummary::average_degree() const {
    if (degrees.empty()) return 0.0;
    u128 sum = 0;
    for (const u64 d : degrees) sum += d;
    return static_cast<double>(sum) / static_cast<double>(degrees.size());
}

u64 DegreeStatsSummary::max_degree() const {
    return degrees.empty() ? 0 : *std::max_element(degrees.begin(), degrees.end());
}

std::string DegreeStatsSummary::str() const {
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.4f", average_degree());
    return "edges[" + std::string(semantics_name(semantics)) +
           "]=" + std::to_string(num_edges) + " avg_deg=" + avg +
           " max_deg=" + std::to_string(max_degree());
}

void DegreeStatsSummary::serialize(std::vector<u8>& out) const {
    bytes::put_u64(out, semantics_to_wire(semantics));
    bytes::put_u64(out, num_edges);
    bytes::put_u64_vector(out, degrees);
}

DegreeStatsSummary DegreeStatsSummary::deserialize(const u8*& p, const u8* end) {
    DegreeStatsSummary s;
    s.semantics = semantics_from_wire(bytes::get_u64(p, end));
    s.num_edges = bytes::get_u64(p, end);
    s.degrees   = bytes::get_u64_vector(p, end);
    return s;
}

std::string CountingSink::summary() const {
    return summarize().str();
}

CountingSummary CountingSink::summarize() const {
    CountingSummary s;
    s.semantics      = semantics_;
    s.num_edges      = num_edges_;
    s.num_self_loops = num_self_loops_;
    return s;
}

void CountingSink::consume(const Edge* edges, std::size_t count) {
    u64 loops = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (edges[i].first == edges[i].second) ++loops;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    num_edges_ += count;
    num_self_loops_ += loops;
}

std::string DegreeStatsSink::summary() const {
    return summarize().str();
}

DegreeStatsSummary DegreeStatsSink::summarize() const {
    DegreeStatsSummary s;
    s.semantics = semantics_;
    s.num_edges = num_edges_;
    s.degrees   = degrees_;
    return s;
}

void DegreeStatsSink::consume(const Edge* edges, std::size_t count) {
    // Validate the whole batch before touching any counter: an endpoint
    // >= n (corrupt input file, miscounted n) must throw, not scribble past
    // the end of degrees_ — and must leave the histogram unchanged.
    const u64 n = degrees_.size();
    for (std::size_t i = 0; i < count; ++i) {
        if (edges[i].first >= n || edges[i].second >= n) {
            const VertexId bad =
                edges[i].first >= n ? edges[i].first : edges[i].second;
            throw std::out_of_range(
                "DegreeStatsSink: edge endpoint " + std::to_string(bad) +
                " out of range for n=" + std::to_string(n));
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    num_edges_ += count;
    for (std::size_t i = 0; i < count; ++i) {
        ++degrees_[edges[i].first];
        ++degrees_[edges[i].second];
    }
}

double DegreeStatsSink::average_degree() const {
    if (degrees_.empty()) return 0.0;
    u128 sum = 0;
    for (const u64 d : degrees_) sum += d;
    return static_cast<double>(sum) / static_cast<double>(degrees_.size());
}

u64 DegreeStatsSink::max_degree() const {
    return degrees_.empty() ? 0 : *std::max_element(degrees_.begin(), degrees_.end());
}

std::vector<u64> DegreeStatsSink::degree_histogram() const {
    std::vector<u64> hist(max_degree() + 1, 0);
    for (const u64 d : degrees_) ++hist[d];
    return hist;
}

// The bulk-write fast path hands Edge arrays to fwrite as raw bytes, so the
// in-memory layout must equal the file format (u64 u, u64 v, no padding).
// (Standard-layout members sit in declaration order — first, then second —
// so the array's object representation is exactly the u64 pair stream the
// format specifies; reading an object's bytes for fwrite needs no
// trivially-copyable guarantee. The spill layer has written Edge arrays as
// raw bytes since PR 3 under the same reasoning, and
// tests/test_bulk_io.cpp pins bulk output == the reference writer's.)
static_assert(sizeof(Edge) == 2 * sizeof(u64),
              "Edge must be two packed u64 for the bulk file-sink write");
static_assert(std::is_standard_layout_v<Edge>,
              "Edge layout must be declaration-ordered for the bulk write");

BinaryFileSink::BinaryFileSink(const std::string& path, std::size_t buffer_edges)
    : EdgeSink(buffer_edges), path_(path) {
    // open(2) + fdopen instead of fopen: the descriptor must carry
    // O_CLOEXEC so a subprocess spawned by any thread of this process (the
    // distributed runner's workers in particular) can never inherit a
    // writable handle onto this output file.
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    file_ = fd >= 0 ? ::fdopen(fd, "wb") : nullptr;
    if (file_ == nullptr) {
        fileio::close_or_warn(fd, "output file (fdopen failed)");
        throw std::runtime_error("cannot open '" + path + "'");
    }
    // Large explicit stream buffer: emit batches (tens of KiB) coalesce
    // into ~1 MiB write(2) calls instead of BUFSIZ-sized ones. Must be
    // installed before the first write and outlive fclose (member).
    stream_buffer_ = std::make_unique<char[]>(kStreamBufferBytes);
    std::setvbuf(file_, stream_buffer_.get(), _IOFBF, kStreamBufferBytes);
    const u64 placeholder = 0; // patched by finish()
    if (std::fwrite(&placeholder, sizeof(placeholder), 1, file_) != 1) {
        // Error unwind: the file holds nothing durable yet, so a close
        // failure on top of the write failure adds no information.
        (void)std::fclose(file_);
        file_ = nullptr;
        throw std::runtime_error("cannot write header of '" + path + "'");
    }
    bytes_written_ += sizeof(placeholder);
}

int BinaryFileSink::fd() const {
    return file_ != nullptr ? ::fileno(file_) : -1;
}

BinaryFileSink::~BinaryFileSink() {
    // Reached with file_ != nullptr only when finish() was never called —
    // an abort/exception path where the output is already invalid (header
    // still holds the placeholder count). finish() is where a close error
    // must be (and is) surfaced; here a warning is all a destructor can do.
    if (file_ != nullptr && std::fclose(file_) != 0) {
        std::fprintf(stderr,
                     "kagen: warning: close of abandoned output '%s' failed\n",
                     path_.c_str());
    }
}

void BinaryFileSink::consume(const Edge* edges, std::size_t count) {
    static obs::Counter& edges_ctr =
        obs::Registry::global().counter("sink.edges_written");
    static obs::Counter& bytes_ctr =
        obs::Registry::global().counter("sink.bytes_written");
    const obs::Span span(obs::Phase::sink_write, count * sizeof(Edge));
    // One bulk fwrite per batch: the Edge array *is* the file byte layout
    // (static_assert above), so the whole batch is a single memcpy into the
    // stream buffer — no per-edge call, no staging copy.
    if (std::fwrite(edges, sizeof(Edge), count, file_) != count) {
        // Fail loudly now: finish() would otherwise back-patch a header
        // claiming edges that never reached the disk (e.g. ENOSPC).
        throw std::runtime_error("short write to '" + path_ + "'");
    }
    num_edges_ += count;
    bytes_written_ += count * sizeof(Edge);
    edges_ctr.add(count);
    bytes_ctr.add(count * sizeof(Edge));
}

void BinaryFileSink::finish() {
    if (finished_) return;
    flush();
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(&num_edges_, sizeof(num_edges_), 1, file_) != 1) {
        throw std::runtime_error("cannot patch edge count in '" + path_ + "'");
    }
    bytes_written_ += sizeof(num_edges_);
    if (std::fclose(file_) != 0) {
        file_ = nullptr;
        throw std::runtime_error("cannot close '" + path_ + "'");
    }
    file_     = nullptr;
    finished_ = true;
}

} // namespace kagen
