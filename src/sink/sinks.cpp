#include "sink/sinks.hpp"

#include <algorithm>
#include <stdexcept>

namespace kagen {

std::string CountingSink::summary() const {
    return "edges[" + std::string(semantics_name(semantics_)) +
           "]=" + std::to_string(num_edges_) +
           " self_loops=" + std::to_string(num_self_loops_);
}

void CountingSink::consume(const Edge* edges, std::size_t count) {
    u64 loops = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (edges[i].first == edges[i].second) ++loops;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    num_edges_ += count;
    num_self_loops_ += loops;
}

std::string DegreeStatsSink::summary() const {
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.4f", average_degree());
    return "edges[" + std::string(semantics_name(semantics_)) +
           "]=" + std::to_string(num_edges_) + " avg_deg=" + avg +
           " max_deg=" + std::to_string(max_degree());
}

void DegreeStatsSink::consume(const Edge* edges, std::size_t count) {
    // Validate the whole batch before touching any counter: an endpoint
    // >= n (corrupt input file, miscounted n) must throw, not scribble past
    // the end of degrees_ — and must leave the histogram unchanged.
    const u64 n = degrees_.size();
    for (std::size_t i = 0; i < count; ++i) {
        if (edges[i].first >= n || edges[i].second >= n) {
            const VertexId bad =
                edges[i].first >= n ? edges[i].first : edges[i].second;
            throw std::out_of_range(
                "DegreeStatsSink: edge endpoint " + std::to_string(bad) +
                " out of range for n=" + std::to_string(n));
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    num_edges_ += count;
    for (std::size_t i = 0; i < count; ++i) {
        ++degrees_[edges[i].first];
        ++degrees_[edges[i].second];
    }
}

double DegreeStatsSink::average_degree() const {
    if (degrees_.empty()) return 0.0;
    u128 sum = 0;
    for (const u64 d : degrees_) sum += d;
    return static_cast<double>(sum) / static_cast<double>(degrees_.size());
}

u64 DegreeStatsSink::max_degree() const {
    return degrees_.empty() ? 0 : *std::max_element(degrees_.begin(), degrees_.end());
}

std::vector<u64> DegreeStatsSink::degree_histogram() const {
    std::vector<u64> hist(max_degree() + 1, 0);
    for (const u64 d : degrees_) ++hist[d];
    return hist;
}

BinaryFileSink::BinaryFileSink(const std::string& path)
    : path_(path), file_(std::fopen(path.c_str(), "wb")) {
    if (file_ == nullptr) {
        throw std::runtime_error("cannot open '" + path + "'");
    }
    const u64 placeholder = 0; // patched by finish()
    if (std::fwrite(&placeholder, sizeof(placeholder), 1, file_) != 1) {
        std::fclose(file_);
        file_ = nullptr;
        throw std::runtime_error("cannot write header of '" + path + "'");
    }
}

BinaryFileSink::~BinaryFileSink() {
    if (file_ != nullptr) std::fclose(file_);
}

void BinaryFileSink::consume(const Edge* edges, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
        const u64 pair[2] = {edges[i].first, edges[i].second};
        if (std::fwrite(pair, sizeof(u64), 2, file_) != 2) {
            // Fail loudly now: finish() would otherwise back-patch a header
            // claiming edges that never reached the disk (e.g. ENOSPC).
            throw std::runtime_error("short write to '" + path_ + "'");
        }
    }
    num_edges_ += count;
}

void BinaryFileSink::finish() {
    if (finished_) return;
    flush();
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(&num_edges_, sizeof(num_edges_), 1, file_) != 1) {
        throw std::runtime_error("cannot patch edge count in '" + path_ + "'");
    }
    if (std::fclose(file_) != 0) {
        file_ = nullptr;
        throw std::runtime_error("cannot close '" + path_ + "'");
    }
    file_     = nullptr;
    finished_ = true;
}

} // namespace kagen
