#include "sink/spill.hpp"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <type_traits>

#include <fcntl.h>
#include <unistd.h>

#include "common/fileio.hpp"
#include "obs/metrics.hpp"

namespace kagen::spill {
namespace {

// Segments are written as raw Edge memory: same process writes and reads,
// so layout only has to be self-consistent. (std::pair is not *trivially*
// copyable — its assignment operators are user-provided — but it is
// standard-layout, and its representation here is exactly two VertexIds,
// which is all positioned I/O of whole Edge arrays relies on.)
static_assert(std::is_standard_layout_v<Edge> &&
                  sizeof(Edge) == 2 * sizeof(VertexId),
              "Edge must be raw-copyable as two vertex ids");

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error("spill: " + what + ": " + std::strerror(errno));
}

void write_all(int fd, const void* data, std::size_t bytes, u64 offset) {
    const char* p = static_cast<const char*>(data);
    while (bytes > 0) {
        const ssize_t n = ::pwrite(fd, p, bytes, static_cast<off_t>(offset));
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("write failed"); // e.g. ENOSPC — never silent
        }
        p += n;
        offset += static_cast<u64>(n);
        bytes -= static_cast<std::size_t>(n);
    }
}

void read_all(int fd, void* data, std::size_t bytes, u64 offset) {
    char* p = static_cast<char*>(data);
    while (bytes > 0) {
        const ssize_t n = ::pread(fd, p, bytes, static_cast<off_t>(offset));
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("read failed");
        }
        if (n == 0) throw std::runtime_error("spill: segment truncated");
        p += n;
        offset += static_cast<u64>(n);
        bytes -= static_cast<std::size_t>(n);
    }
}

} // namespace

SpillFile::SpillFile(const std::string& path) {
    if (path.empty()) {
        // Anonymous scratch file: create under $TMPDIR and unlink at once,
        // so the blocks are reclaimed even if the process dies mid-run.
        const char* tmpdir = std::getenv("TMPDIR");
        std::string tmpl   = std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
                           "/kagen_spill_XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        // O_CLOEXEC (see fd() in the header): scratch fds must never leak
        // into subprocesses spawned by this process.
        fd_ = ::mkostemp(buf.data(), O_CLOEXEC);
        if (fd_ < 0) throw_errno("cannot create temp file in '" + tmpl + "'");
        fileio::unlink_or_warn(buf.data(), "anonymous spill scratch");
    } else {
        fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
        if (fd_ < 0) throw_errno("cannot open '" + path + "'");
        path_ = path;
    }
}

SpillFile::~SpillFile() {
    // Scratch data only: everything in the file has already been read back
    // (or the run is aborting), so a failed close/unlink cannot lose user
    // data — warn-and-continue is the strongest response available here.
    fileio::close_or_warn(fd_, "spill file");
    if (!path_.empty()) fileio::unlink_or_warn(path_.c_str(), "spill file");
}

SpillFile::Segment SpillFile::append(const Edge* edges, std::size_t count) {
    const u64 bytes = static_cast<u64>(count) * sizeof(Edge);
    Segment seg;
    seg.count = count;
    {
        // Only the offset reservation is serialized; the write itself runs
        // concurrently with other producers' writes (disjoint ranges).
        std::lock_guard<std::mutex> lock(mutex_);
        seg.offset = end_;
        end_ += bytes;
    }
    if (count > 0) write_all(fd_, edges, bytes, seg.offset);
    static obs::Counter& bytes_ctr =
        obs::Registry::global().counter("spill.bytes_written");
    static obs::Counter& seg_ctr =
        obs::Registry::global().counter("spill.segments");
    bytes_ctr.add(bytes);
    seg_ctr.add(1);
    return seg;
}

std::size_t SpillFile::read(const Segment& seg, u64 first, Edge* out,
                            std::size_t max_count) const {
    if (first >= seg.count) return 0;
    const std::size_t take =
        static_cast<std::size_t>(std::min<u64>(seg.count - first, max_count));
    read_all(fd_, out, take * sizeof(Edge), seg.offset + first * sizeof(Edge));
    return take;
}

void SpillFile::replay(const Segment& seg, EdgeSink& sink) const {
    constexpr std::size_t kBatch = 4096; // 64 KiB of edges per read
    std::vector<Edge> buf(std::min<u64>(std::max<u64>(seg.count, 1), kBatch));
    replay(seg, sink, buf.data(), buf.size());
}

void SpillFile::replay(const Segment& seg, EdgeSink& sink, Edge* scratch,
                       std::size_t scratch_cap) const {
    assert(scratch != nullptr && scratch_cap > 0);
    u64 pos = 0;
    while (pos < seg.count) {
        const std::size_t got = read(seg, pos, scratch, scratch_cap);
        sink.deliver(scratch, got);
        pos += got;
    }
    static obs::Counter& replay_ctr =
        obs::Registry::global().counter("spill.bytes_replayed");
    replay_ctr.add(seg.count * sizeof(Edge));
}

u64 SpillFile::bytes_spilled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return end_;
}

} // namespace kagen::spill
