/// \file sinks.hpp
/// \brief Concrete edge sinks: in-memory, counting, degree statistics, and
///        binary file streaming. See edge_sink.hpp for the contract.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sink/edge_sink.hpp"
#include "sink/ownership.hpp"

namespace kagen {

// ---------------------------------------------------------------------------
// Mergeable sink summaries
// ---------------------------------------------------------------------------
//
// Value-type snapshots of the streaming statistics sinks. They exist so
// statistics survive a process boundary: a distributed rank (dist/) streams
// its chunk range through local sinks, ships the summary over the stats
// pipe, and the coordinator merges the per-rank summaries into exactly the
// numbers a single-process run over the whole chunk range would have
// produced. Merging is exact (integer counters and degree vectors add), so
// "merged equals in-process" is a bit-for-bit equality, not an estimate —
// and the same property makes the summaries useful for any multi-run
// aggregation (e.g. seed sweeps). Serialization goes through common/bytes:
// explicit little-endian layout, bounds-checked decode.

/// Snapshot of a `CountingSink`.
struct CountingSummary {
    EdgeSemantics semantics = EdgeSemantics::as_generated;
    u64 num_edges           = 0;
    u64 num_self_loops      = 0;

    /// Adds `other`'s counts into this summary. The streams being combined
    /// must carry the same semantics — a mixed total would be meaningless —
    /// so a mismatch throws.
    void merge(const CountingSummary& other);

    /// Identical wording to `CountingSink::summary()` over the same totals.
    std::string str() const;

    void serialize(std::vector<u8>& out) const;
    static CountingSummary deserialize(const u8*& p, const u8* end);

    friend bool operator==(const CountingSummary&, const CountingSummary&) = default;
};

/// Snapshot of a `DegreeStatsSink` (degree vector included, so merging is
/// exact per vertex; O(n) like the sink itself).
struct DegreeStatsSummary {
    EdgeSemantics semantics = EdgeSemantics::as_generated;
    u64 num_edges           = 0;
    std::vector<u64> degrees;

    /// Element-wise degree addition. Throws on semantics or vertex-count
    /// mismatch (summaries of different graphs cannot be combined).
    void merge(const DegreeStatsSummary& other);

    double average_degree() const;
    u64 max_degree() const;

    /// Identical wording to `DegreeStatsSink::summary()` over the same data.
    std::string str() const;

    void serialize(std::vector<u8>& out) const;
    static DegreeStatsSummary deserialize(const u8*& p, const u8* end);

    friend bool operator==(const DegreeStatsSummary&, const DegreeStatsSummary&) = default;
};

/// Appends every edge to an EdgeList — the pre-sink behaviour. All legacy
/// EdgeList-returning generator entry points are thin wrappers over this.
class MemorySink final : public EdgeSink {
public:
    /// Owns its edge list.
    MemorySink() : out_(&owned_) {}

    /// Appends into a caller-provided list (no copy on take-out).
    explicit MemorySink(EdgeList* out) : out_(out) {}

    const EdgeList& edges() const { return *out_; }

    /// Moves the collected edges out (owning mode only).
    EdgeList take() {
        flush();
        return std::move(owned_);
    }

protected:
    void consume(const Edge* edges, std::size_t count) override {
        out_->insert(out_->end(), edges, edges + count);
    }

private:
    EdgeList owned_;
    EdgeList* out_;
};

/// Counts edges (and self-loops) without storing anything. Accepts
/// concurrent delivery from the chunked engine.
///
/// The count is of *emissions*: under `EdgeSemantics::as_generated` the
/// incident-edge models deliver their intentional cross-chunk duplicates,
/// so `num_edges()` over-counts the graph by the duplicated boundary edges;
/// under `exact_once` it equals the true undirected edge count. Tag the
/// sink with the semantics it is fed (constructor or `set_semantics`) so
/// `summary()` and downstream reports state what the total means.
class CountingSink final : public EdgeSink {
public:
    explicit CountingSink(EdgeSemantics semantics = EdgeSemantics::as_generated)
        : semantics_(semantics) {}

    u64 num_edges() const { return num_edges_; }
    u64 num_self_loops() const { return num_self_loops_; }
    bool ordered() const override { return false; }

    EdgeSemantics semantics() const { return semantics_; }
    void set_semantics(EdgeSemantics semantics) { semantics_ = semantics; }

    /// One-line report whose totals are explicitly labelled with the
    /// semantics of the stream they were computed from.
    std::string summary() const;

    /// Mergeable/serializable snapshot of the current totals.
    CountingSummary summarize() const;

private:
    void consume(const Edge* edges, std::size_t count) override;

    std::mutex mutex_;
    EdgeSemantics semantics_;
    u64 num_edges_      = 0;
    u64 num_self_loops_ = 0;
};

/// Streams per-vertex degree counts (both endpoints of every emitted edge,
/// matching kagen::degrees on the materialized list) without storing edges.
/// Memory: O(n), independent of the edge count. Accepts concurrent delivery.
///
/// Degrees count *emissions*, so an `as_generated` stream from a
/// duplicate-carrying model inflates the degrees of chunk-boundary
/// vertices (each duplicated edge contributes twice); only an `exact_once`
/// stream yields the true degree sequence of the graph. The sink carries
/// the semantics it was fed (constructor or `set_semantics`), and
/// `summary()` labels its totals with it, so a reader can no longer
/// mistake redundancy-inflated statistics for graph statistics.
class DegreeStatsSink final : public EdgeSink {
public:
    explicit DegreeStatsSink(u64 n,
                             EdgeSemantics semantics = EdgeSemantics::as_generated)
        : semantics_(semantics), degrees_(n, 0) {}

    u64 num_edges() const { return num_edges_; }
    const std::vector<u64>& degrees() const { return degrees_; }
    double average_degree() const;
    u64 max_degree() const;

    /// Histogram over degree values: hist[d] = number of vertices with
    /// degree d (dense up to the maximum degree).
    std::vector<u64> degree_histogram() const;

    bool ordered() const override { return false; }

    EdgeSemantics semantics() const { return semantics_; }
    void set_semantics(EdgeSemantics semantics) { semantics_ = semantics; }

    /// One-line report; totals are labelled with the stream semantics.
    std::string summary() const;

    /// Mergeable/serializable snapshot (copies the degree vector).
    DegreeStatsSummary summarize() const;

protected:
    void consume(const Edge* edges, std::size_t count) override;

private:
    std::mutex mutex_;
    EdgeSemantics semantics_;
    std::vector<u64> degrees_;
    u64 num_edges_ = 0;
};

/// Streams edges to disk in the graph/io binary format (u64 count header,
/// then u64 pairs); the header is back-patched in finish(), so the edge
/// count never needs to be known up front. Output is bit-identical to
/// io::write_edge_list_binary over the same edge sequence.
///
/// Hot path (DESIGN.md §9): each incoming batch is written with a single
/// bulk `fwrite` — `Edge` is a pair of u64 with no padding, so the batch is
/// already the file's on-disk byte layout — into a 1 MiB stream buffer, so
/// the per-edge cost is one 16-byte memcpy plus an amortized slice of a
/// large write(2). `bytes_written()` counts every byte handed to stdio
/// (header, payload, and the finish() back-patch), for throughput
/// accounting.
///
/// The descriptor is opened with O_CLOEXEC: the distributed runner (dist/)
/// forks workers out of a process that may hold open output sinks, and a
/// worker that execs a subprocess must not leak a writable descriptor onto
/// the coordinator's output file (tests/test_dist.cpp pins this).
class BinaryFileSink final : public EdgeSink {
public:
    /// \param buffer_edges inline emit-buffer capacity (0 = default); the
    ///        1 MiB stream buffer is independent of this.
    explicit BinaryFileSink(const std::string& path, std::size_t buffer_edges = 0);
    ~BinaryFileSink() override;

    BinaryFileSink(const BinaryFileSink&)            = delete;
    BinaryFileSink& operator=(const BinaryFileSink&) = delete;

    void finish() override;
    u64 num_edges() const { return num_edges_; }

    /// Total bytes handed to the stream so far (header + edge payload +,
    /// after finish(), the back-patched header again).
    u64 bytes_written() const { return bytes_written_; }

    /// Underlying descriptor (diagnostics/tests; -1 after finish()).
    int fd() const;

protected:
    void consume(const Edge* edges, std::size_t count) override;

private:
    static constexpr std::size_t kStreamBufferBytes = std::size_t{1} << 20;

    std::string path_;
    std::FILE* file_;
    std::unique_ptr<char[]> stream_buffer_;
    u64 num_edges_     = 0;
    u64 bytes_written_ = 0;
    bool finished_     = false;
};

} // namespace kagen
