/// \file ownership.hpp
/// \brief Exact-once edge ownership: the tie-breaking layer that turns the
///        paper's redundancy trick into a duplicate-free edge stream.
///
/// The incident-edge generators (undirected ER/Gnp §4.2–4.3, RGG §5, RDG §6,
/// in-memory RHG §7.1, and the sbm extension) intentionally emit every
/// cross-chunk edge on *both* owning chunks — recomputation replaces
/// communication. For streaming consumers (counting, degree statistics,
/// file output) that redundancy is poison: totals over-count and files need
/// a post-hoc dedup pass that re-materializes the graph.
///
/// The fix is a communication-free tie-break. Every one of those models
/// partitions the vertex ids [0, n) across chunks (consecutive blocks for
/// ER/sbm, Morton-ordered cell ranges for RGG/RDG, annulus×angular-chunk
/// ranges for RHG), every emitted undirected edge carries both owners, and
/// ownership of a *vertex* is locally decidable from (chunk, num_chunks)
/// alone. Declaring the owner of canonical edge {min, max} to be the chunk
/// owning `min` therefore selects exactly one of the two emitters — with
/// zero coordination, and purely as a function of (chunk, num_chunks,
/// seed, params), so exact-once streams inherit the engine's bit-determinism
/// across thread counts and (P, K) schedules. See DESIGN.md §6.
///
/// `OwnershipFilterSink` implements the tie-break as a per-chunk emission
/// filter: it wraps the chunk's target sink and forwards only the edges
/// whose lower endpoint falls into the chunk's owned id intervals. The
/// per-model interval builders live with their generators
/// (`er::owned_vertex_range`, `rgg::owned_vertex_range`,
/// `rdg::owned_vertex_range`, `rhg::owned_vertex_intervals`,
/// `sbm::owned_vertex_range`); `kagen::owned_vertex_intervals` in kagen.hpp
/// dispatches on the facade model.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sink/edge_sink.hpp"

namespace kagen {

/// Which edge stream a generator run produces.
enum class EdgeSemantics {
    as_generated, ///< the paper's per-chunk output: cross-chunk edges of the
                  ///< incident-edge models appear on both owners (legacy)
    exact_once,   ///< ownership-filtered: across all chunks, every edge is
                  ///< emitted exactly once (lower-endpoint tie-break)
};

inline const char* semantics_name(EdgeSemantics semantics) {
    switch (semantics) {
        case EdgeSemantics::as_generated: return "as_generated";
        case EdgeSemantics::exact_once:   return "exact_once";
    }
    return "unknown";
}

/// Parses `semantics_name` spellings; returns false on unknown input.
bool parse_semantics(const std::string& name, EdgeSemantics* out);

/// Half-open vertex-id interval [lo, hi) owned by one chunk.
struct IdInterval {
    u64 lo = 0;
    u64 hi = 0;

    friend bool operator==(const IdInterval& a, const IdInterval& b) {
        return a.lo == b.lo && a.hi == b.hi;
    }
};

/// Sorted, disjoint ownership intervals of one chunk. Most models own a
/// single consecutive block; the in-memory RHG owns one interval per
/// annulus (O(log n) of them).
using IdIntervals = std::vector<IdInterval>;

/// True iff `id` lies in one of the (sorted, disjoint) intervals.
bool owns_vertex(const IdIntervals& intervals, VertexId id);

/// Per-chunk exact-once emission filter: forwards an edge to `target` iff
/// this chunk owns the edge's lower endpoint. Stateless beyond the interval
/// table — wrapping the same generator run twice yields bit-identical
/// filtered streams. Single-writer, like every sink; the wrapped target's
/// buffer is flushed by `finish()` only, so the caller that owns the target
/// keeps owning its lifecycle.
class OwnershipFilterSink final : public EdgeSink {
public:
    OwnershipFilterSink(IdIntervals owned, EdgeSink& target)
        : owned_(std::move(owned)), target_(target) {}

    /// Flushes this filter into the target; does NOT finish the target.
    void finish() override {
        flush();
        target_.flush();
    }

    /// Edges dropped as foreign-owned duplicates so far (flushed ones).
    u64 num_filtered() const { return num_filtered_; }

protected:
    void consume(const Edge* edges, std::size_t count) override;

private:
    IdIntervals owned_;
    EdgeSink& target_;
    u64 num_filtered_ = 0;
};

} // namespace kagen
