#include "sink/ownership.hpp"

#include <algorithm>

namespace kagen {

bool parse_semantics(const std::string& name, EdgeSemantics* out) {
    if (name == semantics_name(EdgeSemantics::as_generated)) {
        *out = EdgeSemantics::as_generated;
        return true;
    }
    if (name == semantics_name(EdgeSemantics::exact_once)) {
        *out = EdgeSemantics::exact_once;
        return true;
    }
    return false;
}

bool owns_vertex(const IdIntervals& intervals, VertexId id) {
    // One interval is the common case (every model but RHG); the binary
    // search below degenerates to a two-compare check there.
    auto it = std::upper_bound(
        intervals.begin(), intervals.end(), id,
        [](VertexId v, const IdInterval& iv) { return v < iv.lo; });
    if (it == intervals.begin()) return false;
    --it;
    return id < it->hi;
}

void OwnershipFilterSink::consume(const Edge* edges, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
        const VertexId lower = std::min(edges[i].first, edges[i].second);
        if (owns_vertex(owned_, lower)) {
            target_.emit(edges[i].first, edges[i].second);
        } else {
            ++num_filtered_;
        }
    }
}

} // namespace kagen
