/// \file spooky.hpp
/// \brief SpookyHash-V2-style 128/64-bit hash used for pseudorandomization.
///
/// Every "communication-free" recomputation in this library boils down to the
/// same discipline the paper describes (§2.2): the seed of a PRNG is derived
/// by hashing a *structural identifier* (recursion-subtree id, chunk id, cell
/// id, ...) so that any PE recomputing the same structural unit draws exactly
/// the same random values.
///
/// This is a from-scratch implementation of Bob Jenkins' SpookyHash V2
/// *ShortHash* round structure (the paper's KaGen uses SpookyHash as well).
/// All messages hashed here are tiny (a handful of 64-bit words), which is
/// precisely ShortHash's domain; the implementation nevertheless accepts
/// arbitrary lengths. Byte-exact equality with the reference implementation
/// is not required anywhere — only statistical quality and determinism, both
/// of which are unit-tested.
#pragma once

#include <cstddef>
#include <initializer_list>

#include "common/types.hpp"

namespace kagen::spooky {

struct Hash128 {
    u64 h1;
    u64 h2;
};

/// Hashes `length` bytes at `data` with a 128-bit seed.
Hash128 hash128(const void* data, std::size_t length, u64 seed1, u64 seed2);

/// 64-bit convenience form.
inline u64 hash64(const void* data, std::size_t length, u64 seed) {
    return hash128(data, length, seed, seed).h1;
}

/// Hashes a short sequence of 64-bit words under `seed`. This is the seeding
/// primitive used throughout the library:
///   seed_of(recursion node) = hash_words(base_seed, {structural ids...}).
inline u64 hash_words(u64 seed, std::initializer_list<u64> words) {
    return hash64(std::data(words), words.size() * sizeof(u64), seed);
}

} // namespace kagen::spooky
