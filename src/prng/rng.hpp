/// \file rng.hpp
/// \brief Deterministic PRNG wrapper seeded by SpookyHash.
///
/// The paper's implementation note (§8.1) initializes a Mersenne Twister
/// from each hash value. Our seeding discipline creates one stream per
/// *structural unit* (recursion node, chunk, cell) — often millions of tiny
/// streams — so generator construction cost matters as much as throughput.
/// We therefore substitute SplitMix64 (O(1) construction, passes standard
/// statistical batteries) for the Twister (whose 312-word state expansion
/// would dominate cell-granular generation); the distribution-level
/// chi-square tests in tests/ validate every consumer of these streams.
/// DESIGN.md §1 records the substitution.
#pragma once

#include <cassert>
#include <initializer_list>

#include "common/types.hpp"
#include "prng/spooky.hpp"

namespace kagen {

class Rng {
public:
    explicit Rng(u64 seed) : state_(seed) {
        // Decorrelate trivially related seeds before the first output.
        (void)bits();
    }

    /// PRNG seeded from the hash of (seed, structural id words) — the core
    /// pseudorandomization discipline: identical ids => identical streams.
    static Rng for_ids(u64 seed, std::initializer_list<u64> ids) {
        return Rng(spooky::hash_words(seed, ids));
    }

    /// 64 uniformly random bits (SplitMix64 step).
    u64 bits() {
        state_ += 0x9e3779b97f4a7c15ULL;
        u64 z = state_;
        z     = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z     = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform integer in [0, bound), bound >= 1. Unbiased (rejection).
    u64 range(u64 bound) {
        assert(bound >= 1);
        const u64 threshold = (0 - bound) % bound; // 2^64 mod bound
        for (;;) {
            const u64 r = bits();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform integer in [0, bound) for 128-bit bounds.
    u128 range128(u128 bound) {
        assert(bound >= 1);
        if (bound <= ~u64{0}) return range(static_cast<u64>(bound));
        const u128 threshold = (0 - bound) % bound;
        for (;;) {
            const u128 r = (static_cast<u128>(bits()) << 64) | bits();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform double in [0, 1) with 53 random bits.
    double uniform() { return static_cast<double>(bits() >> 11) * 0x1.0p-53; }

    /// Uniform double in (0, 1]; safe as a log() argument.
    double uniform_pos() { return 1.0 - uniform(); }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

private:
    u64 state_;
};

} // namespace kagen
