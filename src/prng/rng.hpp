/// \file rng.hpp
/// \brief Deterministic PRNG wrapper seeded by SpookyHash.
///
/// The paper's implementation note (§8.1) initializes a Mersenne Twister
/// from each hash value. Our seeding discipline creates one stream per
/// *structural unit* (recursion node, chunk, cell) — often millions of tiny
/// streams — so generator construction cost matters as much as throughput.
/// We therefore substitute SplitMix64 (O(1) construction, passes standard
/// statistical batteries) for the Twister (whose 312-word state expansion
/// would dominate cell-granular generation); the distribution-level
/// chi-square tests in tests/ validate every consumer of these streams.
/// DESIGN.md §1 records the substitution.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>

#include "common/types.hpp"
#include "prng/spooky.hpp"

namespace kagen {

class Rng {
public:
    explicit Rng(u64 seed) : state_(seed) {
        // Decorrelate trivially related seeds before the first output.
        (void)bits();
    }

    /// PRNG seeded from the hash of (seed, structural id words) — the core
    /// pseudorandomization discipline: identical ids => identical streams.
    static Rng for_ids(u64 seed, std::initializer_list<u64> ids) {
        return Rng(spooky::hash_words(seed, ids));
    }

    /// 64 uniformly random bits (SplitMix64 step).
    u64 bits() {
        state_ += kGamma;
        u64 z = state_;
        z     = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z     = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Fills `out` with `n` draws, identical in sequence to `n` calls of
    /// `bits()`. SplitMix64 is a pure mix of (state + i·gamma), so the loop
    /// body carries no dependency between iterations and auto-vectorizes —
    /// the amortization point of the batched-variate engine (sampler v2,
    /// variates/batch.hpp).
    void fill_bits(u64* out, std::size_t n) {
        const u64 base = state_;
        for (std::size_t i = 0; i < n; ++i) {
            u64 z  = base + static_cast<u64>(i + 1) * kGamma;
            z      = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z      = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            out[i] = z ^ (z >> 31);
        }
        state_ = base + static_cast<u64>(n) * kGamma;
    }

    /// Fills `out` with `n` uniforms in (0, 1], identical in sequence to
    /// `n` calls of `uniform_pos()`. Same vectorizable shape as fill_bits.
    void fill_uniform_pos(double* out, std::size_t n) {
        const u64 base = state_;
        for (std::size_t i = 0; i < n; ++i) {
            u64 z  = base + static_cast<u64>(i + 1) * kGamma;
            z      = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z      = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            z      = z ^ (z >> 31);
            out[i] = 1.0 - static_cast<double>(z >> 11) * 0x1.0p-53;
        }
        state_ = base + static_cast<u64>(n) * kGamma;
    }

    /// Uniform integer in [0, bound), bound >= 1. Unbiased (rejection).
    u64 range(u64 bound) {
        assert(bound >= 1);
        const u64 threshold = (0 - bound) % bound; // 2^64 mod bound
        for (;;) {
            const u64 r = bits();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform integer in [0, bound) for 128-bit bounds.
    u128 range128(u128 bound) {
        assert(bound >= 1);
        if (bound <= ~u64{0}) return range(static_cast<u64>(bound));
        const u128 threshold = (0 - bound) % bound;
        for (;;) {
            const u128 r = (static_cast<u128>(bits()) << 64) | bits();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform double in [0, 1) with 53 random bits.
    double uniform() { return static_cast<double>(bits() >> 11) * 0x1.0p-53; }

    /// Uniform double in (0, 1]; safe as a log() argument.
    double uniform_pos() { return 1.0 - uniform(); }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// SplitMix64 output function: draw i of a block reserved at `base` is
    /// `mix64(base + (i+1) * kStateGamma)`. Public so external bulk kernels
    /// (variates/exp_fill.hpp) can regenerate draws from a reserved counter
    /// range without round-tripping through an intermediate buffer.
    static u64 mix64(u64 z) {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Reserves the next `n` draws and returns the pre-advance state: the
    /// caller owns draws mix64(base + (i+1)*kStateGamma) for i in [0, n).
    /// Equivalent to n calls of bits() as far as this Rng is concerned.
    u64 reserve_block(std::size_t n) {
        const u64 base = state_;
        state_         = base + static_cast<u64>(n) * kGamma;
        return base;
    }

    /// Counter increment per draw; pairs with reserve_block()/mix64().
    static constexpr u64 kStateGamma = 0x9e3779b97f4a7c15ULL;

private:
    static constexpr u64 kGamma = kStateGamma;

    u64 state_;
};

} // namespace kagen
