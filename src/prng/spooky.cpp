#include "prng/spooky.hpp"

#include <cstring>

namespace kagen::spooky {
namespace {

constexpr u64 kConst = 0xdeadbeefdeadbeefULL;

inline u64 rot64(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

inline void short_mix(u64& h0, u64& h1, u64& h2, u64& h3) {
    h2 = rot64(h2, 50); h2 += h3; h0 ^= h2;
    h3 = rot64(h3, 52); h3 += h0; h1 ^= h3;
    h0 = rot64(h0, 30); h0 += h1; h2 ^= h0;
    h1 = rot64(h1, 41); h1 += h2; h3 ^= h1;
    h2 = rot64(h2, 54); h2 += h3; h0 ^= h2;
    h3 = rot64(h3, 48); h3 += h0; h1 ^= h3;
    h0 = rot64(h0, 38); h0 += h1; h2 ^= h0;
    h1 = rot64(h1, 37); h1 += h2; h3 ^= h1;
    h2 = rot64(h2, 62); h2 += h3; h0 ^= h2;
    h3 = rot64(h3, 34); h3 += h0; h1 ^= h3;
    h0 = rot64(h0, 5);  h0 += h1; h2 ^= h0;
    h1 = rot64(h1, 36); h1 += h2; h3 ^= h1;
}

inline void short_end(u64& h0, u64& h1, u64& h2, u64& h3) {
    h3 ^= h2; h2 = rot64(h2, 15); h3 += h2;
    h0 ^= h3; h3 = rot64(h3, 52); h0 += h3;
    h1 ^= h0; h0 = rot64(h0, 26); h1 += h0;
    h2 ^= h1; h1 = rot64(h1, 51); h2 += h1;
    h3 ^= h2; h2 = rot64(h2, 28); h3 += h2;
    h0 ^= h3; h3 = rot64(h3, 9);  h0 += h3;
    h1 ^= h0; h0 = rot64(h0, 47); h1 += h0;
    h2 ^= h1; h1 = rot64(h1, 54); h2 += h1;
    h3 ^= h2; h2 = rot64(h2, 32); h3 += h2;
    h0 ^= h3; h3 = rot64(h3, 25); h0 += h3;
    h1 ^= h0; h0 = rot64(h0, 63); h1 += h0;
}

inline u64 load_u64(const u8* p) {
    u64 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline u32 load_u32(const u8* p) {
    u32 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

} // namespace

Hash128 hash128(const void* data, std::size_t length, u64 seed1, u64 seed2) {
    const u8* p           = static_cast<const u8*>(data);
    std::size_t remainder = length % 32;

    u64 a = seed1;
    u64 b = seed2;
    u64 c = kConst;
    u64 d = kConst;

    if (length > 15) {
        const std::size_t blocks = length / 32;
        for (std::size_t i = 0; i < blocks; ++i) {
            c += load_u64(p);
            d += load_u64(p + 8);
            short_mix(a, b, c, d);
            a += load_u64(p + 16);
            b += load_u64(p + 24);
            p += 32;
        }
        if (remainder >= 16) {
            c += load_u64(p);
            d += load_u64(p + 8);
            short_mix(a, b, c, d);
            p += 16;
            remainder -= 16;
        }
    }

    // Mix the last 0..15 bytes plus the length into (c, d).
    d += static_cast<u64>(length) << 56;
    switch (remainder) {
        case 15: d += static_cast<u64>(p[14]) << 48; [[fallthrough]];
        case 14: d += static_cast<u64>(p[13]) << 40; [[fallthrough]];
        case 13: d += static_cast<u64>(p[12]) << 32; [[fallthrough]];
        case 12: d += load_u32(p + 8); c += load_u64(p); break;
        case 11: d += static_cast<u64>(p[10]) << 16; [[fallthrough]];
        case 10: d += static_cast<u64>(p[9]) << 8; [[fallthrough]];
        case 9:  d += static_cast<u64>(p[8]); [[fallthrough]];
        case 8:  c += load_u64(p); break;
        case 7:  c += static_cast<u64>(p[6]) << 48; [[fallthrough]];
        case 6:  c += static_cast<u64>(p[5]) << 40; [[fallthrough]];
        case 5:  c += static_cast<u64>(p[4]) << 32; [[fallthrough]];
        case 4:  c += load_u32(p); break;
        case 3:  c += static_cast<u64>(p[2]) << 16; [[fallthrough]];
        case 2:  c += static_cast<u64>(p[1]) << 8; [[fallthrough]];
        case 1:  c += static_cast<u64>(p[0]); break;
        case 0:  c += kConst; d += kConst; break;
        default: break;
    }
    short_end(a, b, c, d);
    return Hash128{a, b};
}

} // namespace kagen::spooky
