#!/usr/bin/env python3
"""Determinism lint: machine-checks the project's reproducibility invariants.

The whole value proposition of this repo is that generated output is a pure
function of (config, seed) — bit-identical across threads, ranks, and
machines (DESIGN.md §12). That contract is easy to break with one careless
line: a libc RNG call, a wall-clock read feeding generation, iteration over a
hash container whose order leaks into an emitted stream, a float in a wire
struct (NaN payloads and x87 excess precision are not portable bytes), or an
I/O call whose failure is silently dropped. This lint greps src/ for exactly
those patterns and fails with file:line diagnostics.

Rules (ids are what the allowlist references):
  libc-rng            rand()/srand()/random()/drand48-family/rand_r/
                      std::random_device anywhere in src/ — all randomness
                      must come from the seeded counter PRNG (prng/rng.hpp).
  wall-clock          time()/gettimeofday()/clock()/ftime()/localtime()/
                      std::chrono::system_clock — wall-clock values must
                      never exist in generation code (monotonic time is
                      available via obs::monotonic_now(), see below).
  unordered-iteration range-for or .begin() over a std::unordered_* variable
                      — hash iteration order is libc- and run-dependent, so
                      it must never reach an emit/serialize path. Lookups
                      (find/emplace/operator[]) are fine and idiomatic.
  wire-float          float/double members in wire-layer structs
                      (dist/ipc.hpp, net/protocol.hpp) — doubles cross the
                      wire as explicit IEEE-754 bit patterns via
                      bytes::put_f64/get_f64, never as raw struct bytes.
  discarded-io        statement-position fwrite/fread/write/send/recv whose
                      return value is discarded — short writes and ENOSPC
                      must surface, not truncate files silently.
  sleep               sleep()/usleep()/nanosleep()/std::this_thread::
                      sleep_for/sleep_until in src/ — sleeps hide lost
                      wakeups and turn protocol bugs into flaky slowness;
                      deadlines belong on poll(2), not on naps.
  monotonic-clock     clock_gettime()/std::chrono::steady_clock — every
                      timestamp must flow through obs::monotonic_now()
                      (obs/trace.hpp), the codebase's single allowlisted
                      clock read. One clock site means the "timestamps
                      never feed generation" argument (DESIGN.md §13) is
                      auditable at one place instead of N.
  hot-path-alloc      heap-allocation calls (new, operator new,
                      make_unique/make_shared, push_back/emplace_back/
                      reserve/resize) in the chunked-engine sources (pe/) —
                      the steady-state emit->deliver->write loop is
                      allocation-free by design (arena slabs + lock-free
                      delivery, DESIGN.md §14, gated by test_alloc_gate).
                      Setup/teardown and cold-path allocations are fine but
                      must be allowlisted with a justification saying why
                      they are not per-chunk or per-edge.

Allowlist: one entry per line in the file passed via --allowlist,
  <rule-id> <path-suffix> "<line substring>"  # justification
Every entry must carry a justification comment and must match at least one
current violation — stale entries fail the lint so the file cannot rot.
"""

import argparse
import re
import shlex
import sys
from pathlib import Path

# (rule, compiled regex). Matched per line, after comment stripping.
LINE_RULES = [
    ("libc-rng",
     re.compile(r"\b(s?rand|random|[dlm]rand48|rand_r)\s*\(|std::random_device")),
    ("wall-clock",
     re.compile(r"\b(time|gettimeofday|ftime|localtime|gmtime)\s*\(|"
                r"(?<![\w:])clock\s*\(|system_clock")),
    ("sleep",
     re.compile(r"\b(sleep|usleep|nanosleep)\s*\(|"
                r"this_thread::sleep_(for|until)")),
    ("monotonic-clock",
     re.compile(r"\bclock_gettime\s*\(|steady_clock")),
]

DISCARDED_IO = re.compile(
    r"^\s*(?:std::|::)?(fwrite|fread|write|send|recv)\s*\(")
# A statement continuation: the call is an operand of the previous line.
CONTINUATION_TAIL = re.compile(r"(\(|\|\||&&|=|\?|:|,|return|<<|>>)\s*$")
RESULT_USED_SAME_LINE = re.compile(r"\)\s*(==|!=|<|>|<=|>=)")

# Heap-allocation calls, flagged only under HOT_PATH_PREFIXES. Placement
# new (`new (mem) T`) is excluded — it does not allocate.
HOT_PATH_PREFIXES = ("pe/",)
HOT_PATH_ALLOC = re.compile(
    r"\bnew\s+[A-Za-z_:]|\boperator\s+new\b|std::make_(unique|shared)\b|"
    r"\.(push_back|emplace_back|reserve|resize)\s*\(")

UNORDERED_DECL = re.compile(r"std::unordered_\w+\s*<[^;]*>\s+(\w+)")
WIRE_FILES = ("dist/ipc.hpp", "net/protocol.hpp", "common/bytes.hpp")
WIRE_FLOAT = re.compile(r"^\s*(float|double)\s+\w+\s*(=[^=]|;|\{)")

BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)


def strip_comments(text: str) -> str:
    """Blanks comments and string literals, preserving line numbers."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | '//' | '/*' | '"' | "'"
    while i < n:
        c = text[i]
        if mode is None:
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                mode = "//"
                out.append("  ")
                i += 2
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                mode = "/*"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                mode = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode == "//":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
        elif mode == "/*":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # string/char literal
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == mode:
                mode = None
                out.append(c)
            elif c == "\n":  # unterminated (raw string etc.) — bail out
                mode = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def scan_file(path: Path, rel: str):
    """Yields (rule, rel_path, line_no, line_text) violations."""
    text = path.read_text(encoding="utf-8", errors="replace")
    clean = strip_comments(text)
    lines = clean.splitlines()
    raw_lines = text.splitlines()

    unordered_vars = set()
    for m in UNORDERED_DECL.finditer(clean):
        unordered_vars.add(m.group(1))

    in_struct_depth = 0
    for idx, line in enumerate(lines):
        no = idx + 1
        raw = raw_lines[idx] if idx < len(raw_lines) else line

        for rule, rx in LINE_RULES:
            if rx.search(line):
                yield (rule, rel, no, raw.strip())

        if unordered_vars:
            range_for = re.search(r"for\s*\([^;)]*:\s*&?\s*(\w+)\s*\)", line)
            if range_for and range_for.group(1) in unordered_vars:
                yield ("unordered-iteration", rel, no, raw.strip())
            # begin() starts an iteration; end() alone is the find-idiom
            # sentinel comparison and stays legal.
            begin = re.search(r"\b(\w+)\s*(\.|->)\s*c?r?begin\s*\(", line)
            if begin and begin.group(1) in unordered_vars:
                yield ("unordered-iteration", rel, no, raw.strip())

        if rel.startswith(HOT_PATH_PREFIXES) and \
                not line.lstrip().startswith("#") and \
                HOT_PATH_ALLOC.search(line):
            yield ("hot-path-alloc", rel, no, raw.strip())

        if DISCARDED_IO.search(line):
            prev = lines[idx - 1].rstrip() if idx > 0 else ""
            if not CONTINUATION_TAIL.search(prev) and \
               not RESULT_USED_SAME_LINE.search(line):
                yield ("discarded-io", rel, no, raw.strip())

        if rel.endswith(WIRE_FILES):
            if re.search(r"\bstruct\s+\w+", line):
                in_struct_depth = 1
            elif in_struct_depth and re.match(r"\s*\};", line):
                in_struct_depth = 0
            if in_struct_depth and WIRE_FLOAT.search(line):
                yield ("wire-float", rel, no, raw.strip())


def load_allowlist(path: Path):
    entries = []
    if not path.exists():
        return entries
    for no, line in enumerate(path.read_text().splitlines(), 1):
        code = line.split("#", 1)[0].strip()
        if not code:
            continue
        parts = shlex.split(code)
        if len(parts) != 3:
            print(f"{path}:{no}: malformed allowlist entry (want: "
                  f'rule path-suffix "needle"  # why)', file=sys.stderr)
            sys.exit(2)
        if "#" not in line:
            print(f"{path}:{no}: allowlist entry has no justification "
                  f"comment", file=sys.stderr)
            sys.exit(2)
        entries.append({"rule": parts[0], "path": parts[1],
                        "needle": parts[2], "line_no": no, "used": False})
    return entries


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", required=True, help="source tree to lint")
    ap.add_argument("--allowlist", required=True)
    args = ap.parse_args()

    root = Path(args.root)
    allow = load_allowlist(Path(args.allowlist))

    violations = []
    for path in sorted(root.rglob("*")):
        if path.suffix not in {".hpp", ".cpp", ".h", ".cc"}:
            continue
        rel = path.relative_to(root).as_posix()
        for rule, rpath, no, text in scan_file(path, rel):
            waived = False
            for entry in allow:
                if entry["rule"] == rule and rpath.endswith(entry["path"]) \
                        and entry["needle"] in text:
                    entry["used"] = True
                    waived = True
                    break
            if not waived:
                violations.append((rule, rpath, no, text))

    status = 0
    for rule, rpath, no, text in violations:
        print(f"{rpath}:{no}: [{rule}] {text}")
        status = 1

    for entry in allow:
        if not entry["used"]:
            print(f"allowlist:{entry['line_no']}: stale entry "
                  f"({entry['rule']} {entry['path']}) matches nothing — "
                  f"remove it", file=sys.stderr)
            status = 1

    if status == 0:
        print(f"determinism lint: clean ({len(allow)} allowlisted sites)")
    return status


if __name__ == "__main__":
    sys.exit(main())
