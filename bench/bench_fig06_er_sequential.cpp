// Fig. 6: sequential G(n,m) running time, KaGen vs the Batagelj–Brandes /
// Boost-style baseline, for two vertex counts and growing edge counts.
// Paper scale: n in {2^22, 2^24}, m in 2^16..2^28. Here: n in {2^18, 2^20},
// m in 2^14..2^22 (memory/time budget; the *shape* is the claim).
//
// Expected shape (paper §8.3): KaGen's time per edge is independent of n;
// the baseline's grows with n; KaGen is roughly an order of magnitude
// faster at the largest m.
#include "baselines/sequential_er.hpp"
#include "bench_common.hpp"
#include "er/er.hpp"

namespace {

using namespace kagen;

void KaGen_Directed(benchmark::State& state) {
    const u64 n = u64{1} << state.range(0);
    const u64 m = u64{1} << state.range(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(er::gnm_directed(n, m, 1, 0, 1));
    }
    state.counters["edges"] = static_cast<double>(m);
}

void Baseline_Directed(benchmark::State& state) {
    const u64 n = u64{1} << state.range(0);
    const u64 m = u64{1} << state.range(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(baselines::bb_gnm_directed(n, m, 1));
    }
    state.counters["edges"] = static_cast<double>(m);
}

void KaGen_Undirected(benchmark::State& state) {
    const u64 n = u64{1} << state.range(0);
    const u64 m = u64{1} << state.range(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(er::gnm_undirected(n, m, 1, 0, 1));
    }
    state.counters["edges"] = static_cast<double>(m);
}

void Baseline_Undirected(benchmark::State& state) {
    const u64 n = u64{1} << state.range(0);
    const u64 m = u64{1} << state.range(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(baselines::bb_gnm_undirected(n, m, 1));
    }
    state.counters["edges"] = static_cast<double>(m);
}

void args(benchmark::internal::Benchmark* b) {
    for (const int log_n : {18, 20}) {
        for (int log_m = 14; log_m <= 22; log_m += 2) b->Args({log_n, log_m});
    }
    b->Unit(benchmark::kMillisecond)->MinTime(0.05)->MinWarmUpTime(0.05);
}

BENCHMARK(KaGen_Directed)->Apply(args);
BENCHMARK(Baseline_Directed)->Apply(args);
BENCHMARK(KaGen_Undirected)->Apply(args);
BENCHMARK(Baseline_Undirected)->Apply(args);

} // namespace

KAGEN_BENCH_MAIN(
    "# Fig. 6 — sequential Erdos-Renyi G(n,m): KaGen vs Batagelj-Brandes "
    "baseline.\n"
    "# Args: {log2 n, log2 m}. Scaled down from the paper (n 2^22/2^24 -> "
    "2^18/2^20); see EXPERIMENTS.md.")
