#!/usr/bin/env python3
"""Summarize (and validate) a merged Chrome trace produced by -trace.

Usage:
    bench_trace_report.py TRACE.json                   # utilization table
    bench_trace_report.py --check TRACE.json           # schema gate (CI)
    bench_trace_report.py --check --expect-ranks N ... # + coverage gate

The trace is the cross-rank merge written by the fork/TCP coordinators
(DESIGN.md §13): one Chrome `trace_event` process per rank plus one for
the coordinator, `ph:"X"` complete spans for the engine phases and
`ph:"i"` instants for steals and budget parks, timestamps in
microseconds on the coordinator's clock.

Default mode prints a per-rank, per-phase utilization table: span count,
total busy time, and busy time as a share of that rank's wall span
(first event start to last event end). Threads within a rank overlap, so
shares can legitimately exceed 100% — the table is a load-balance lens,
not an accounting identity.

--check exits non-zero unless the file is structurally sound: the
traceEvents envelope, every event one of M/X/i with the fields Perfetto
needs, phase names drawn from the engine's fixed vocabulary, timestamps
and durations non-negative numbers. --expect-ranks N additionally
requires at least one span from every rank 0..N-1 — the CI smoke run
uses it to prove the telemetry frames from every worker survived the
merge.
"""
import argparse
import json
import sys

# Phase vocabulary, mirroring obs::phase_name() in src/obs/trace.cpp.
SPAN_PHASES = {
    "generate", "deliver", "spill_park", "spill_replay",
    "sink_write", "em_sort", "merge",
}
INSTANT_PHASES = {"steal", "budget_park"}
PHASES = SPAN_PHASES | INSTANT_PHASES


def fail(msg):
    print(f"bench_trace_report: {msg}", file=sys.stderr)
    sys.exit(1)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def validate(doc):
    """Returns a list of schema problems (empty = valid)."""
    problems = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["top level must be an object with a 'traceEvents' list"]
    labelled = set()
    with_events = set()
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("M", "X", "i"):
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: pid missing or not an integer")
            continue
        if ph == "M":
            if ev.get("name") != "process_name" or \
                    not isinstance(ev.get("args", {}).get("name"), str):
                problems.append(f"{where}: metadata record without a "
                                f"process_name args.name")
            else:
                labelled.add(ev["pid"])
            continue
        with_events.add(ev["pid"])
        if not isinstance(ev.get("tid"), int):
            problems.append(f"{where}: tid missing or not an integer")
        if ev.get("name") not in PHASES:
            problems.append(f"{where}: phase {ev.get('name')!r} not in the "
                            f"engine vocabulary")
        if not is_num(ev.get("ts")) or ev.get("ts") < 0:
            problems.append(f"{where}: ts missing, non-numeric, or negative")
        if not isinstance(ev.get("args", {}).get("arg"), int):
            problems.append(f"{where}: args.arg missing or not an integer")
        if ph == "X":
            if not is_num(ev.get("dur")) or ev.get("dur") < 0:
                problems.append(f"{where}: span without a non-negative dur")
        else:
            if ev.get("s") != "t":
                problems.append(f"{where}: instant without thread scope "
                                f"(s: 't')")
    for pid in sorted(with_events - labelled):
        problems.append(f"pid {pid} has events but no process_name metadata")
    return problems


def report(doc):
    events = doc["traceEvents"]
    labels = {}
    # rank -> phase -> [count, total_us]; rank -> [min_ts, max_end]
    phases, walls, instants = {}, {}, {}
    for ev in events:
        pid = ev.get("pid")
        if ev.get("ph") == "M":
            labels[pid] = ev["args"]["name"]
            continue
        if ev.get("ph") == "i":
            instants.setdefault(pid, {}).setdefault(ev["name"], 0)
            instants[pid][ev["name"]] += 1
            continue
        if ev.get("ph") != "X":
            continue
        ts, dur = ev["ts"], ev["dur"]
        slot = phases.setdefault(pid, {}).setdefault(ev["name"], [0, 0.0])
        slot[0] += 1
        slot[1] += dur
        wall = walls.setdefault(pid, [ts, ts + dur])
        wall[0] = min(wall[0], ts)
        wall[1] = max(wall[1], ts + dur)

    print(f"{'rank':14s} {'phase':13s} {'spans':>6s} {'total_ms':>10s} "
          f"{'%wall':>7s}")
    for pid in sorted(phases):
        label = labels.get(pid, f"pid {pid}")
        wall_us = max(walls[pid][1] - walls[pid][0], 1e-9)
        for name in sorted(phases[pid], key=lambda n: -phases[pid][n][1]):
            count, total_us = phases[pid][name]
            print(f"{label:14s} {name:13s} {count:6d} {total_us / 1e3:10.3f} "
                  f"{total_us / wall_us * 100.0:6.1f}%")
        for name, count in sorted(instants.get(pid, {}).items()):
            print(f"{label:14s} {name:13s} {count:6d} {'(instant)':>10s} "
                  f"{'':>7s}")
        print(f"{label:14s} {'— wall':13s} {'':>6s} {wall_us / 1e3:10.3f}")
    n_spans = sum(c for p in phases.values() for c, _ in p.values())
    n_inst = sum(c for p in instants.values() for c in p.values())
    print(f"\n{len(phases)} rank(s), {n_spans} span(s), {n_inst} instant(s)")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--check", action="store_true",
                        help="validate the trace schema and exit")
    parser.add_argument("--expect-ranks", type=int, metavar="N", default=None,
                        help="with --check: require >=1 span from every "
                             "rank 0..N-1")
    parser.add_argument("trace", help="merged Chrome trace JSON (from -trace)")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.trace}: {e}")

    problems = validate(doc)
    if problems:
        for p in problems[:20]:
            print(f"bench_trace_report: {args.trace}: {p}", file=sys.stderr)
        if len(problems) > 20:
            print(f"bench_trace_report: ... and {len(problems) - 20} more",
                  file=sys.stderr)
        return 1

    if args.check:
        span_ranks = {ev["pid"] for ev in doc["traceEvents"]
                      if ev.get("ph") == "X"}
        if args.expect_ranks is not None:
            missing = sorted(set(range(args.expect_ranks)) - span_ranks)
            if missing:
                fail(f"{args.trace}: no spans from rank(s) "
                     f"{', '.join(map(str, missing))}")
        n = len(doc["traceEvents"])
        print(f"bench_trace_report: OK — {n} event(s), spans from "
              f"{len(span_ranks)} rank(s)")
        return 0

    report(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())
