// Fig. 12: weak scaling of the RDG generators (2D and 3D), n/P fixed.
// Paper scale: P up to 2^15, n/P in {2^16..2^22}. Here: P up to 8, n/P in
// {2^12, 2^14} (2D) / {2^11, 2^13} (3D) — Bowyer-Watson in long double is
// the substituted CGAL backend, see DESIGN.md.
//
// Expected shape: a small rise at low P (the adjacent halo layer appears),
// then near-constant time — the halo rarely grows beyond one layer.
#include "bench_common.hpp"
#include "rdg/rdg.hpp"

namespace {

using namespace kagen;

template <int D>
void Weak_Rdg(benchmark::State& state) {
    const u64 pes = static_cast<u64>(state.range(0));
    const u64 n   = (u64{1} << state.range(1)) * pes;
    const rdg::Params params{n, 1};
    bench::scaling_run(state, pes, [&](u64 rank, u64 size) {
        return rdg::generate<D>(params, rank, size);
    });
}

void args2d(benchmark::internal::Benchmark* b) {
    for (const int log_n : {12, 14}) {
        for (const int pes : {1, 2, 4, 8}) b->Args({pes, log_n});
    }
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
}

void args3d(benchmark::internal::Benchmark* b) {
    for (const int log_n : {11, 13}) {
        for (const int pes : {1, 2, 4, 8}) b->Args({pes, log_n});
    }
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(Weak_Rdg<2>)->Apply(args2d);
BENCHMARK(Weak_Rdg<3>)->Apply(args3d);

} // namespace

KAGEN_BENCH_MAIN(
    "# Fig. 12 — weak scaling RDG 2D/3D (n/P fixed, periodic Delaunay).\n"
    "# Args: {P, log2 n/P}. Expected: near-constant after the halo constant.")
