// Ablation (Lemma 10 / Corollary 11): the RHG candidate selection
// overestimates the true query mass by at most OE(ln2/alpha, alpha) <=
// sqrt(e) ~ 1.64 per annulus for the chosen annulus height. This benchmark
// *measures* the realized overestimation — candidate distance tests per
// emitted edge — on real instances, and reports it as a counter alongside
// the generation time.
//
// Expected: candidates/edge stays a small constant (the Cor. 11 regime),
// independent of n — which is what makes the query phase O(m).
#include <atomic>

#include "bench_common.hpp"
#include "hyperbolic/hyperbolic.hpp"
#include "prng/rng.hpp"

namespace {

using namespace kagen;

// A compact reimplementation of the in-memory query loop with candidate
// accounting (the library generator has no instrumentation on its hot path).
void CandidateOverestimation(benchmark::State& state) {
    const hyp::Params params{u64{1} << state.range(0), 16.0,
                             static_cast<double>(state.range(1)) / 10.0, 1};
    const hyp::HypGrid grid(params, 1);
    const auto& space = grid.space();

    std::vector<std::vector<hyp::HypPoint>> annuli(grid.num_annuli());
    for (u32 a = 0; a < grid.num_annuli(); ++a) annuli[a] = grid.chunk_points(a, 0);

    u64 candidates = 0;
    u64 edges      = 0;
    for (auto _ : state) {
        candidates = edges = 0;
        for (u32 a = 0; a < grid.num_annuli(); ++a) {
            for (const auto& v : annuli[a]) {
                for (u32 j = a; j < grid.num_annuli(); ++j) {
                    const double width = space.delta_theta(v.r, grid.annulus_lower(j));
                    for (const auto& u : annuli[j]) {
                        double d = std::fabs(u.theta - v.theta);
                        d        = std::min(d, 2 * std::numbers::pi - d);
                        if (d > width) continue; // outside the query range
                        if (u.id == v.id) continue;
                        ++candidates;
                        if (space.edge(u, v)) ++edges;
                    }
                }
            }
        }
    }
    state.counters["candidates_per_edge"] =
        static_cast<double>(candidates) / static_cast<double>(std::max<u64>(edges, 1));
    state.counters["edges"] = static_cast<double>(edges);
}

BENCHMARK(CandidateOverestimation)
    ->Args({10, 30})
    ->Args({12, 30})
    ->Args({13, 30})
    ->Args({12, 22})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

KAGEN_BENCH_MAIN(
    "# Ablation (Lemma 10 / Cor. 11) — measured candidate overestimation of "
    "the RHG query.\n"
    "# Args: {log2 n, gamma*10}. candidates_per_edge should stay a small "
    "constant as n grows (annulus-height bound ~ sqrt(e) per annulus).")
