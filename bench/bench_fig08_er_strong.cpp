// Fig. 8: strong scaling of the G(n,m) generators — total m fixed, P grows.
// Paper scale: m in {2^34..2^38}, P = 2^10..2^15. Here: m in {2^22, 2^24},
// P = 1..16.
//
// Expected shape: time ~ 1/P (directed); undirected carries the constant 2x
// redundancy overhead but scales the same way.
#include "bench_common.hpp"
#include "er/er.hpp"

namespace {

using namespace kagen;

void Strong_Directed(benchmark::State& state) {
    const u64 pes = static_cast<u64>(state.range(0));
    const u64 m   = u64{1} << state.range(1);
    const u64 n   = m / 16;
    bench::scaling_run(state, pes, [&](u64 rank, u64 size) {
        return er::gnm_directed(n, m, 1, rank, size);
    });
}

void Strong_Undirected(benchmark::State& state) {
    const u64 pes = static_cast<u64>(state.range(0));
    const u64 m   = u64{1} << state.range(1);
    const u64 n   = m / 16;
    bench::scaling_run(state, pes, [&](u64 rank, u64 size) {
        return er::gnm_undirected(n, m, 1, rank, size);
    });
}

void args(benchmark::internal::Benchmark* b) {
    for (const int log_m : {22, 24}) {
        for (const int pes : {1, 2, 4, 8, 16}) b->Args({pes, log_m});
    }
    b->UseManualTime()->Iterations(2)->Unit(benchmark::kMillisecond);
}

BENCHMARK(Strong_Directed)->Apply(args);
BENCHMARK(Strong_Undirected)->Apply(args);

} // namespace

KAGEN_BENCH_MAIN(
    "# Fig. 8 — strong scaling G(n,m) (m fixed, n = m/16).\n"
    "# Args: {P, log2 m}. Expected: time ~ 1/P.")
