// Fig. 11: strong scaling of the RGG generators — n fixed, P grows,
// r = 0.55 * (ln n / n)^(1/d). Paper scale: n in {2^26..2^34}, P >= 2^10.
// Here: n in {2^18, 2^20}, P = 1..16.
//
// Expected shape: time ~ 1/P once the border-recomputation constant is paid.
#include <cmath>

#include "bench_common.hpp"
#include "rgg/rgg.hpp"

namespace {

using namespace kagen;

template <int D>
void Strong_Rgg(benchmark::State& state) {
    const u64 pes = static_cast<u64>(state.range(0));
    const u64 n   = u64{1} << state.range(1);
    const double r =
        0.55 * std::pow(std::log(static_cast<double>(n)) / static_cast<double>(n),
                        1.0 / D);
    const rgg::Params params{n, r, 1};
    bench::scaling_run(state, pes, [&](u64 rank, u64 size) {
        return rgg::generate<D>(params, rank, size);
    });
}

void args(benchmark::internal::Benchmark* b) {
    for (const int log_n : {18, 20}) {
        for (const int pes : {1, 2, 4, 8, 16}) b->Args({pes, log_n});
    }
    b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(Strong_Rgg<2>)->Apply(args);
BENCHMARK(Strong_Rgg<3>)->Apply(args);

} // namespace

KAGEN_BENCH_MAIN(
    "# Fig. 11 — strong scaling RGG 2D/3D (n fixed).\n"
    "# Args: {P, log2 n}; r = 0.55*(ln n/n)^(1/d). Expected: time ~ 1/P.")
