// Ablation (§8.6.1): "Due to the costs of generating these variates,
// minimizing the number of variates yields large performance benefits."
// Quantifies the cost hierarchy the generators are built around:
//   * uniform draws (what R-MAT burns log2 n of per edge),
//   * binomial variates: inversion (small mean) vs BTRS rejection,
//   * hypergeometric variates: inversion vs HRUA rejection,
//   * hash-seeded Mersenne Twister construction (what one recursion-node
//     reseed costs — why seeds are drawn per subtree, not per sample).
#include "bench_common.hpp"
#include "prng/rng.hpp"
#include "variates/variates.hpp"

namespace {

using namespace kagen;

void Uniform64(benchmark::State& state) {
    Rng rng(1);
    u64 acc = 0;
    for (auto _ : state) acc += rng.bits();
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

void Binomial_SmallMean_Inversion(benchmark::State& state) {
    Rng rng(1);
    u64 acc = 0;
    for (auto _ : state) acc += binomial(rng, 1000, 0.005); // mean 5
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

void Binomial_LargeMean_BTRS(benchmark::State& state) {
    Rng rng(1);
    u64 acc = 0;
    for (auto _ : state) acc += binomial(rng, u64{1} << 30, 0.5);
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

void Hypergeometric_Small_Inversion(benchmark::State& state) {
    Rng rng(1);
    u64 acc = 0;
    for (auto _ : state) acc += hypergeometric(rng, 100000, 50, 1000);
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

void Hypergeometric_Large_HRUA(benchmark::State& state) {
    Rng rng(1);
    u64 acc = 0;
    for (auto _ : state) {
        acc += hypergeometric(rng, u64{1} << 40, u64{1} << 39, u64{1} << 24);
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

void HashSeededRngConstruction(benchmark::State& state) {
    u64 acc = 0;
    u64 i   = 0;
    for (auto _ : state) {
        Rng rng = Rng::for_ids(42, {0x5eedULL, i++});
        acc += rng.bits();
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(Uniform64)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(Binomial_SmallMean_Inversion)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(Binomial_LargeMean_BTRS)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(Hypergeometric_Small_Inversion)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(Hypergeometric_Large_HRUA)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(HashSeededRngConstruction)->MinTime(0.2)->MinWarmUpTime(0.05);

} // namespace

KAGEN_BENCH_MAIN(
    "# Ablation (paper §8.6.1) — cost of random variates.\n"
    "# Orders the primitives the generators' O(#variates) arguments rest "
    "on; note the MT construction cost vs a single uniform.")
