// Ablation (§8.6.1): "Due to the costs of generating these variates,
// minimizing the number of variates yields large performance benefits."
// Quantifies the cost hierarchy the generators are built around:
//   * uniform draws (what R-MAT burns log2 n of per edge),
//   * binomial variates: inversion (small mean) vs BTRS rejection,
//   * hypergeometric variates: inversion vs HRUA rejection,
//   * hash-seeded Mersenne Twister construction (what one recursion-node
//     reseed costs — why seeds are drawn per subtree, not per sample),
//   * the sampler-v2 engine pieces (PR 6): fused bulk Exp(1) fill vs the
//     two-pass refill, and sorted_sample v1 vs v2 on the headline chunk
//     shape — the ablation behind the >= 2x Gnm headline claim.
#include "bench_common.hpp"
#include "prng/rng.hpp"
#include "sampling/sampling.hpp"
#include "variates/batch.hpp"
#include "variates/exp_fill.hpp"
#include "variates/variates.hpp"

namespace {

using namespace kagen;

void Uniform64(benchmark::State& state) {
    Rng rng(1);
    u64 acc = 0;
    for (auto _ : state) acc += rng.bits();
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

void Binomial_SmallMean_Inversion(benchmark::State& state) {
    Rng rng(1);
    u64 acc = 0;
    for (auto _ : state) acc += binomial(rng, 1000, 0.005); // mean 5
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

void Binomial_LargeMean_BTRS(benchmark::State& state) {
    Rng rng(1);
    u64 acc = 0;
    for (auto _ : state) acc += binomial(rng, u64{1} << 30, 0.5);
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

void Hypergeometric_Small_Inversion(benchmark::State& state) {
    Rng rng(1);
    u64 acc = 0;
    for (auto _ : state) acc += hypergeometric(rng, 100000, 50, 1000);
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

void Hypergeometric_Large_HRUA(benchmark::State& state) {
    Rng rng(1);
    u64 acc = 0;
    for (auto _ : state) {
        acc += hypergeometric(rng, u64{1} << 40, u64{1} << 39, u64{1} << 24);
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

void HashSeededRngConstruction(benchmark::State& state) {
    u64 acc = 0;
    u64 i   = 0;
    for (auto _ : state) {
        Rng rng = Rng::for_ids(42, {0x5eedULL, i++});
        acc += rng.bits();
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}

void ExpFill_TwoPassTableLog(benchmark::State& state) {
    // The pre-fusion refill: bulk uniforms, then scalar -fast_log per
    // element (the table gather blocks vectorization of the second pass).
    constexpr std::size_t kBlock = 256;
    alignas(64) double buf[kBlock];
    Rng rng(1);
    double acc = 0.0;
    for (auto _ : state) {
        rng.fill_uniform_pos(buf, kBlock);
        for (std::size_t i = 0; i < kBlock; ++i) buf[i] = -fast_log(buf[i]);
        acc += buf[17];
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations() * kBlock);
}

void ExpFill_FusedBranchless(benchmark::State& state) {
    // variates/exp_fill.hpp: counter -> mix -> uniform -> -log in one
    // vectorizable pass (AVX-512 clone where available).
    constexpr std::size_t kBlock = 256;
    alignas(64) double buf[kBlock];
    Rng rng(1);
    double acc = 0.0;
    for (auto _ : state) {
        fill_exponential(rng, buf, kBlock);
        acc += buf[17];
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations() * kBlock);
}

// One chunk of the Gnm headline workload (PerCoreThroughput's shape):
// universe/k ~ 16384, the sparse Method-D regime both engines target.
constexpr u64 kChunkUniverse = u64{16384} * 262143;
constexpr u64 kChunkK        = 262144;

void SortedSample_V1(benchmark::State& state) {
    Rng rng(7);
    u64 acc = 0;
    for (auto _ : state) {
        sorted_sample(rng, kChunkUniverse, kChunkK, [&](u64 s) { acc += s; },
                      SamplerVersion::v1);
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations() * kChunkK);
}

void SortedSample_V2(benchmark::State& state) {
    Rng rng(7);
    u64 acc = 0;
    for (auto _ : state) {
        sorted_sample(rng, kChunkUniverse, kChunkK, [&](u64 s) { acc += s; },
                      SamplerVersion::v2);
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations() * kChunkK);
}

void BernoulliSample_V2(benchmark::State& state) {
    // The Gnp fast path: geometric skips at the headline density p = 1/16384.
    Rng rng(7);
    u64 acc = 0, emitted = 0;
    const double p = 1.0 / 16384.0;
    for (auto _ : state) {
        bernoulli_sample(rng, kChunkUniverse, p, [&](u64 s) {
            acc += s;
            ++emitted;
        });
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(static_cast<int64_t>(emitted));
}

BENCHMARK(Uniform64)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(Binomial_SmallMean_Inversion)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(Binomial_LargeMean_BTRS)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(Hypergeometric_Small_Inversion)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(Hypergeometric_Large_HRUA)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(HashSeededRngConstruction)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(ExpFill_TwoPassTableLog)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(ExpFill_FusedBranchless)->MinTime(0.2)->MinWarmUpTime(0.05);
BENCHMARK(SortedSample_V1)->MinTime(0.5)->MinWarmUpTime(0.1)->Unit(benchmark::kMillisecond);
BENCHMARK(SortedSample_V2)->MinTime(0.5)->MinWarmUpTime(0.1)->Unit(benchmark::kMillisecond);
BENCHMARK(BernoulliSample_V2)->MinTime(0.5)->MinWarmUpTime(0.1)->Unit(benchmark::kMillisecond);

} // namespace

KAGEN_BENCH_MAIN(
    "# Ablation (paper §8.6.1) — cost of random variates.\n"
    "# Orders the primitives the generators' O(#variates) arguments rest "
    "on; note the MT construction cost vs a single uniform.\n"
    "# PR 6 adds the sampler-engine ablation: fused vs two-pass Exp(1) "
    "refill, and sorted_sample v1 vs v2 (plus the Gnp geometric-skip path) "
    "on the headline chunk shape — items/s is samples/s, so the v2/v1 "
    "ratio here is the sampler-only speedup behind the Gnm headline.")
